// Hardware/software co-design sweep: run two communication-bound workloads —
// the halo-exchange-heavy heat application and the allreduce-heavy CG proxy —
// on the full interconnect zoo (torus, mesh, fat tree, dragonfly, star) and
// compare communication cost. This is the architectural what-if loop the
// xSim toolkit exists for.
//
// A second sweep turns on per-link contention (--contention semantics) and
// compares deterministic vs adaptive routing on the same fabrics: adaptive
// routing spreads flows over equal-cost minimal routes (spine choices in the
// fat tree, gateway choices in the dragonfly, dimension orders in the grids),
// relieving hot links where the topology offers path diversity.
//
// The topology x application grid is an exp::ExperimentPlan evaluated on
// exp::ParallelExecutor — pass `--jobs N` (or set EXASIM_JOBS) to evaluate
// configurations concurrently; the table is identical at any job count.
//
// Run: ./build/examples/topology_comparison [--jobs N]

#include <cstdio>
#include <string>
#include <vector>

#include "apps/cgproxy.hpp"
#include "apps/heat3d.hpp"
#include "core/runner.hpp"
#include "exp/axes.hpp"
#include "exp/executor.hpp"
#include "exp/plan.hpp"
#include "metrics/table.hpp"
#include "util/log.hpp"

using namespace exasim;

namespace {

core::SimConfig machine_on(const std::string& topo) {
  core::SimConfig machine;
  machine.ranks = 512;
  machine.topology = topo;
  machine.net.link_latency = sim_us(1);
  machine.net.bandwidth_bytes_per_sec = 32e9;
  machine.proc.slowdown = 1.0;
  machine.proc.reference_ns_per_unit = 2.0;  // Light compute: comm-bound.
  return machine;
}

double run_seconds(const core::SimConfig& machine, vmpi::AppMain app) {
  core::RunnerConfig rc;
  rc.base = machine;
  core::RunnerResult res = core::ResilientRunner(rc, std::move(app)).run();
  return to_seconds(res.total_time);
}

}  // namespace

int main(int argc, char** argv) {
  Log::set_level(LogLevel::kWarn);

  // Halo-exchange workload: nearest-neighbor messages every iteration.
  apps::HeatParams heat;
  heat.nx = heat.ny = heat.nz = 64;  // 8^3 per rank on 512 ranks.
  heat.px = heat.py = heat.pz = 8;
  heat.total_iterations = 100;
  heat.halo_interval = 1;
  heat.checkpoint_interval = 100;
  heat.real_compute = false;

  // Global-reduction workload: two allreduces per iteration.
  apps::CgProxyParams cg;
  cg.total_iterations = 100;
  cg.checkpoint_interval = 0;
  cg.local_elements = 256;
  cg.work_units_per_element = 2.0;

  // The full zoo, every fabric sized for 512 nodes.
  const std::vector<std::string> topologies = {
      "torus:8x8x8", "mesh:8x8x8", "fattree:64x8", "dragonfly:8x8x8", "star:512",
  };

  const auto plan = exp::ExperimentPlan::cross_product(
      {exp::Axis{"topology", topologies}, exp::Axis{"app", {"heat", "cg"}}});
  exp::ParallelExecutor pool(exp::ExecutorOptions{exp::jobs_from_cli(argc, argv), {}});
  auto outcomes = pool.run(plan, [&](const exp::Point& p, const exp::WorkItem&) {
    const auto machine = machine_on(topologies[p.at(0)]);
    return run_seconds(machine, p.at(1) == 0 ? apps::make_heat3d(heat)
                                             : apps::make_cgproxy(cg));
  });

  TablePrinter table({"topology", "diameter", "heat (halo)", "cg (allreduce)"});
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const std::string& topo = topologies[i];
    const double t_heat = *outcomes[i * 2 + 0];
    const double t_cg = *outcomes[i * 2 + 1];
    table.add_row({topo, TablePrinter::integer(make_topology(topo)->diameter()),
                   TablePrinter::num(t_heat * 1e3, 3) + " ms",
                   TablePrinter::num(t_cg * 1e3, 3) + " ms"});
  }
  std::printf("512 ranks, one per node, 1 us link latency, communication-bound:\n\n");
  table.print();
  std::printf(
      "\nNearest-neighbor halo traffic favors the torus (rank-adjacent nodes are\n"
      "1 hop; the fat tree pays 2-4 hops for the same neighbors). The linear\n"
      "collectives of the CG proxy are serialization-bound at the root's NIC —\n"
      "~512 sequential messages per phase — so interconnect diameter barely\n"
      "moves them: a co-design argument for better collective algorithms, not\n"
      "more expensive networks.\n");

  // Routing x contention sweep: same halo workload with per-link occupancy
  // windows folded into delivery times. Contention modeling is exact at one
  // engine worker, so these runs pin sim_workers = 1.
  const auto routing_axis = exp::routing_axis();
  const auto plan2 = exp::ExperimentPlan::cross_product(
      {exp::Axis{"topology", topologies}, routing_axis});
  auto outcomes2 = pool.run(plan2, [&](const exp::Point& p, const exp::WorkItem&) {
    auto machine = machine_on(topologies[p.at(0)]);
    machine.net.contention = true;
    machine.routing = routing_axis.values[p.at(1)];
    machine.sim_workers = 1;
    return run_seconds(machine, apps::make_heat3d(heat));
  });

  TablePrinter table2({"topology", "deterministic", "adaptive", "speedup"});
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const double t_det = *outcomes2[i * routing_axis.values.size() + 0];
    const double t_adp = *outcomes2[i * routing_axis.values.size() + 1];
    table2.add_row({topologies[i], TablePrinter::num(t_det * 1e3, 3) + " ms",
                    TablePrinter::num(t_adp * 1e3, 3) + " ms",
                    TablePrinter::num(t_det / t_adp, 3) + "x"});
  }
  std::printf("\nheat halo with per-link contention, deterministic vs adaptive routing:\n\n");
  table2.print();
  std::printf(
      "\nWith contention on, flows queue behind busy links. Adaptive routing\n"
      "spreads each (src,dst) flow over equal-cost minimal routes — spine\n"
      "choices in the fat tree, dimension orders in the grids — so fabrics\n"
      "whose path diversity covers the bottleneck recover time. Two fabrics\n"
      "do not: the star has exactly one route per pair, and the dragonfly's\n"
      "gateway choices all funnel a group pair's traffic over the same single\n"
      "global link — spreading moves the local hops but not the bottleneck.\n"
      "Routing policy cannot fix those; only more links can.\n");
  return 0;
}
