// Soft-error injection example (paper §VI future-work item 1 + §II-C):
// memory bit flips injected into a simulated MPI process's registered state.
//
//   1. Unprotected run: the flip silently corrupts the result (SDC).
//   2. redMPI-style triple redundancy: the flip is detected at the first
//      message comparison and corrected by majority vote.
//
// Run: ./build/examples/soft_errors

#include <cmath>
#include <cstdio>

#include "core/machine.hpp"
#include "redundancy/redundant.hpp"
#include "util/log.hpp"
#include "vmpi/context.hpp"

using namespace exasim;
using vmpi::Context;

namespace {

constexpr int kAppRanks = 8;
constexpr int kIterations = 40;

/// Iterative "solver": local update + neighbor exchange + allreduce.
/// Returns the final global residual, which any corruption perturbs.
double solver_body(Context& raw, redundancy::RedundantContext* red) {
  const int rank = red != nullptr ? red->rank() : raw.rank();
  const int size = red != nullptr ? red->size() : raw.size();
  double state = std::sin(rank + 1.0);
  raw.register_memory("solver.state", &state, sizeof state);

  double residual = 0;
  for (int it = 0; it < kIterations; ++it) {
    raw.compute(50000.0);
    state = 0.9 * state + 0.1 * std::cos(state);
    const int next = (rank + 1) % size;
    const int prev = (rank + size - 1) % size;
    double from_prev = 0;
    if (red != nullptr) {
      if (rank % 2 == 0) {
        red->send(next, 1, &state, sizeof state);
        red->recv(prev, 1, &from_prev, sizeof from_prev);
      } else {
        red->recv(prev, 1, &from_prev, sizeof from_prev);
        red->send(next, 1, &state, sizeof state);
      }
      double sum = 0;
      red->allreduce(vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &state, &sum, 1);
      residual = sum;
    } else {
      if (rank % 2 == 0) {
        raw.send(next, 1, &state, sizeof state);
        raw.recv(prev, 1, &from_prev, sizeof from_prev);
      } else {
        raw.recv(prev, 1, &from_prev, sizeof from_prev);
        raw.send(next, 1, &state, sizeof state);
      }
      double sum = 0;
      raw.allreduce(raw.world(), vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &state, &sum, 1);
      residual = sum;
    }
    state = 0.5 * (state + from_prev);
  }
  raw.unregister_memory("solver.state");
  return residual;
}

}  // namespace

int main() {
  Log::set_level(LogLevel::kWarn);
  std::printf("=== Soft errors: silent corruption vs redundancy (future work 1) ===\n\n");

  // Ground truth: no injection.
  double clean = 0;
  {
    core::SimConfig cfg;
    cfg.ranks = kAppRanks;
    cfg.topology = "star:8";
    core::Machine m(cfg, [&](Context& ctx) {
      const double r = solver_body(ctx, nullptr);
      if (ctx.rank() == 0) clean = r;
      ctx.finalize();
    });
    m.run();
  }

  // Unprotected: flip bit 30 of rank 3's state mid-run -> silent corruption.
  double corrupted = 0;
  {
    core::SimConfig cfg;
    cfg.ranks = kAppRanks;
    cfg.topology = "star:8";
    cfg.soft_errors = {core::SoftErrorSpec{3, sim_us(900), 30}};
    core::Machine m(cfg, [&](Context& ctx) {
      const double r = solver_body(ctx, nullptr);
      if (ctx.rank() == 0) corrupted = r;
      ctx.finalize();
    });
    m.run();
  }

  // Triple redundancy: same flip into one replica of app rank 3.
  double protected_result = 0;
  std::uint64_t divergences = 0, corrections = 0;
  {
    core::SimConfig cfg;
    cfg.ranks = kAppRanks * 3;
    cfg.topology = "star:24";
    // World rank 19 = replica 2 of app rank 3 (plane-major layout).
    cfg.soft_errors = {core::SoftErrorSpec{19, sim_us(900), 30}};
    core::Machine m(cfg, [&](Context& ctx) {
      redundancy::RedundancyConfig rcfg;
      rcfg.replication = 3;
      redundancy::RedundantContext red(ctx, rcfg);
      const double r = solver_body(ctx, &red);
      if (red.rank() == 0 && red.replica() == 0) protected_result = r;
      divergences += red.stats().divergences;
      corrections += red.stats().corrected;
      ctx.finalize();
    });
    m.run();
  }

  std::printf("clean result                 : %.15f\n", clean);
  std::printf("with soft error, unprotected : %.15f  (%s)\n", corrupted,
              corrupted == clean ? "masked" : "SILENT DATA CORRUPTION");
  std::printf("with soft error, triple-red  : %.15f  (%s)\n", protected_result,
              protected_result == clean ? "corrected" : "NOT corrected");
  std::printf("redundancy layer observed    : %llu divergences, %llu corrections\n",
              static_cast<unsigned long long>(divergences),
              static_cast<unsigned long long>(corrections));
  return 0;
}
