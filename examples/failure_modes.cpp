// Reproduces the paper's §V-D "First Impressions" narrative: inject a single
// MPI process failure at different points of the heat application's
// compute / halo / checkpoint / barrier cycle and observe
//   (a) in which phase the failure is *detected* (always a communication
//       phase, because detection is timeout-based), and
//   (b) what state the checkpoint store is left in (incomplete/corrupted
//       checkpoints, partially deleted old checkpoints).
//
// The five injection cases are independent simulations and run on
// exp::ParallelExecutor — pass `--jobs N` (or set EXASIM_JOBS).
//
// Run: ./build/examples/failure_modes [--jobs N]

#include <cstdio>

#include "apps/heat3d.hpp"
#include "core/machine.hpp"
#include "exp/executor.hpp"
#include "metrics/table.hpp"
#include "resilience/detector.hpp"
#include "util/log.hpp"

using namespace exasim;

namespace {

std::string census(const apps::HeatTelemetry& t, int failed_rank) {
  LabelCounter c;
  for (int r = 0; r < static_cast<int>(t.last_phase.size()); ++r) {
    if (r == failed_rank) continue;
    c.add(apps::to_string(t.last_phase[static_cast<std::size_t>(r)]));
  }
  std::string out;
  for (const auto& [label, n] : c.counts()) {
    if (!out.empty()) out += ", ";
    out += label + ":" + std::to_string(n);
  }
  return out;
}

std::string checkpoint_state(const ckpt::CheckpointStore& store) {
  std::string out;
  for (auto v : store.versions()) {
    if (!out.empty()) out += ", ";
    out += "v" + std::to_string(v);
    if (store.set_complete(v)) {
      out += " complete";
    } else {
      int files = 0, corrupted = 0;
      for (int r = 0; r < store.expected_ranks(); ++r) {
        if (store.file_exists(v, r)) {
          ++files;
          if (!store.file_finalized(v, r)) ++corrupted;
        }
      }
      out += " broken(" + std::to_string(files) + "/" +
             std::to_string(store.expected_ranks()) + " files";
      if (corrupted > 0) out += ", " + std::to_string(corrupted) + " corrupted";
      out += ")";
    }
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

int main(int argc, char** argv) {
  Log::set_level(LogLevel::kWarn);

  core::SimConfig machine;
  machine.ranks = 64;
  machine.topology = "torus:4x4x4";
  machine.proc.slowdown = 1.0;
  machine.proc.reference_ns_per_unit = 1000.0;  // 1 us per point update.
  machine.net.failure_timeout = sim_ms(1);
  machine.pfs.per_client_bandwidth_bytes_per_sec = 1e6;  // Slow PFS: visible
  machine.pfs.metadata_latency = sim_ms(1);              // checkpoint phase.

  apps::HeatParams heat;
  heat.nx = heat.ny = heat.nz = 32;  // 8^3 per rank -> 512 us compute/iter.
  heat.px = heat.py = heat.pz = 4;
  heat.total_iterations = 100;
  heat.halo_interval = 25;
  heat.checkpoint_interval = 25;
  heat.real_compute = false;  // Skeleton mode; physics not needed here.

  const int kFailRank = 21;
  // Sweep the injection time across the application's cycle.
  const std::vector<std::pair<const char*, SimTime>> cases = {
      {"early compute (iter ~3)", sim_us(3 * 512)},
      {"mid compute (iter ~40)", sim_us(40 * 512 + 2000)},
      {"around halo+ckpt (iter 50)", sim_us(50 * 512 + 800)},
      {"during checkpoint write", sim_us(50 * 512 + 2500)},
      {"late compute (iter ~90)", sim_us(90 * 512 + 4000)},
  };
  // Each case runs once per detector model: the paper's instant broadcast vs
  // a heartbeat detector whose miss x period latency delays the abort vs a
  // gossip epidemic whose rounds stagger detection across the survivors.
  const std::vector<const char*> detectors = {"paper-instant", "heartbeat:period=2ms,miss=3",
                                              "gossip:period=2ms,fanout=2"};

  struct Row {
    std::string abort_at;
    std::string survivor_phases;
    std::string store_state;
  };
  exp::ParallelExecutor pool(exp::ExecutorOptions{exp::jobs_from_cli(argc, argv), {}});
  auto outcomes = pool.map(cases.size() * detectors.size(), [&](std::size_t i) {
    const std::size_t c = i / detectors.size();
    apps::HeatTelemetry telemetry(machine.ranks);
    apps::HeatParams p = heat;
    p.telemetry = &telemetry;
    core::SimConfig cfg = machine;
    cfg.failures = {FailureSpec{kFailRank, cases[c].second}};
    cfg.detector = *resilience::parse_detector_spec(detectors[i % detectors.size()]);
    ckpt::CheckpointStore store(machine.ranks);
    core::Machine m(cfg, apps::make_heat3d(p));
    m.set_checkpoint_store(&store);
    core::SimResult r = m.run();
    return Row{r.abort_time.has_value() ? format_sim_time(*r.abort_time) : "-",
               r.outcome == core::SimResult::Outcome::kAborted
                   ? census(telemetry, kFailRank)
                   : "(completed)",
               checkpoint_state(store)};
  });

  TablePrinter table({"injected at", "t_inject", "detector", "abort at",
                      "survivor phases at abort", "checkpoint store after abort"});
  for (std::size_t i = 0; i < cases.size() * detectors.size(); ++i) {
    const std::size_t c = i / detectors.size();
    table.add_row({cases[c].first, format_sim_time(cases[c].second),
                   detectors[i % detectors.size()], outcomes[i]->abort_at,
                   outcomes[i]->survivor_phases, outcomes[i]->store_state});
  }

  std::printf("Failure-mode census (paper §V-D): detection always happens in a\n"
              "communication phase; aborts strand incomplete/corrupted checkpoints.\n"
              "The heartbeat detector postpones detection (and so the abort) by up\n"
              "to miss x period beyond the instant-broadcast baseline.\n\n");
  table.print();
  return 0;
}
