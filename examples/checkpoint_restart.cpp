// End-to-end checkpoint/restart experiment (a single Table II-style row):
// run the heat application on a simulated 4,096-node torus with random MPI
// process failures (uniform within 2*MTTF per launch, §V-C) and report
// E1, E2, F, and MTTF_a = E2/(F+1).
//
// Run: ./build/examples/checkpoint_restart [mttf_seconds] [ckpt_interval]

#include <cstdio>
#include <cstdlib>

#include "apps/heat3d.hpp"
#include "core/runner.hpp"
#include "util/log.hpp"

using namespace exasim;

int main(int argc, char** argv) {
  Log::set_level(LogLevel::kInfo);

  // Defaults produce a failure-free baseline around 1.6 s of virtual time;
  // an MTTF of the same order makes failure/restart cycles likely.
  const double mttf_s = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int ckpt_interval = argc > 2 ? std::atoi(argv[2]) : 50;

  core::SimConfig machine;
  machine.ranks = 4096;
  machine.topology = "torus:16x16x16";
  machine.net.link_latency = sim_us(1);
  machine.net.bandwidth_bytes_per_sec = 32e9;
  machine.net.failure_timeout = sim_ms(100);
  machine.proc.slowdown = 100.0;
  machine.proc.reference_ns_per_unit = 10.0;
  machine.process.fiber_stack_bytes = 64 * 1024;

  apps::HeatParams heat;
  heat.nx = heat.ny = heat.nz = 256;  // 16^3 per rank.
  heat.px = heat.py = heat.pz = 16;
  heat.total_iterations = 400;
  heat.halo_interval = ckpt_interval;
  heat.checkpoint_interval = ckpt_interval;
  heat.real_compute = false;  // Modeled compute: 4,096 points/rank/iter.

  // E1: failure-free baseline.
  core::RunnerConfig base;
  base.base = machine;
  core::RunnerResult e1 = core::ResilientRunner(base, apps::make_heat3d(heat)).run();

  // E2: random failures at the requested system MTTF.
  core::RunnerConfig with_failures = base;
  with_failures.system_mttf = sim_seconds(mttf_s);
  with_failures.seed = 20130710;  // ICPP 2013.
  core::RunnerResult e2 =
      core::ResilientRunner(with_failures, apps::make_heat3d(heat)).run();

  std::printf("\nsimulated system : %d ranks, %s, node 100x slower than reference\n",
              machine.ranks, machine.topology.c_str());
  std::printf("application      : heat3d %d^3, %d iterations, checkpoint every %d\n",
              heat.nx, heat.total_iterations, ckpt_interval);
  std::printf("system MTTF      : %.0f s (uniform within 2*MTTF per launch)\n\n", mttf_s);
  std::printf("  E1 (no failures)        : %9.2f s\n", to_seconds(e1.total_time));
  std::printf("  E2 (failures+restarts)  : %9.2f s\n", to_seconds(e2.total_time));
  std::printf("  F  (failures)           : %9d\n", e2.failures);
  std::printf("  MTTF_a = E2/(F+1)       : %9.2f s\n", e2.app_mttf_seconds);
  std::printf("  lost+overhead time      : %9.2f s\n",
              to_seconds(e2.total_time) - to_seconds(e1.total_time));
  return 0;
}
