// ULFM self-healing example (paper §VI, future-work item 3): an iterative
// solver that, instead of aborting on MPI_ERR_PROC_FAILED, revokes the
// communicator, shrinks it, and continues on the survivors — compared with
// the classic abort+restart handling of the same failure.
//
// Run: ./build/examples/ulfm_recovery

#include <cstdio>

#include "core/runner.hpp"
#include "util/log.hpp"
#include "vmpi/context.hpp"

using namespace exasim;
using vmpi::Context;
using vmpi::Err;

namespace {

/// Iterative "solver": per iteration, compute + allreduce. With ULFM
/// handling, a failure mid-run shrinks the communicator and the survivors
/// finish the remaining iterations.
void ulfm_solver(Context& ctx, int iterations, double* result_out, int* survivors_out) {
  ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
  vmpi::Comm* comm = &ctx.world();
  double acc = 0;
  for (int it = 1; it <= iterations; ++it) {
    ctx.compute(1e6);  // 1 ms of work per iteration.
    double mine = 1.0, sum = 0;
    Err e = ctx.allreduce(*comm, vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &mine, &sum, 1);
    if (e == Err::kProcFailed || e == Err::kRevoked) {
      // ULFM recovery: make sure everyone knows, then shrink and retry.
      ctx.comm_revoke(*comm);
      comm = ctx.comm_shrink(*comm);
      --it;  // Redo the interrupted iteration on the shrunken communicator.
      continue;
    }
    acc += sum;
  }
  if (result_out != nullptr) *result_out = acc;
  if (survivors_out != nullptr) *survivors_out = comm->size();
  ctx.finalize();
}

}  // namespace

int main() {
  Log::set_level(LogLevel::kInfo);

  core::SimConfig machine;
  machine.ranks = 32;
  machine.topology = "torus:4x4x2";
  machine.net.failure_timeout = sim_ms(10);
  machine.proc.slowdown = 1.0;
  machine.proc.reference_ns_per_unit = 1.0;

  const int kIterations = 100;
  const FailureSpec failure{11, sim_ms(40)};  // Mid-run failure of rank 11.

  // --- ULFM path: shrink and continue -------------------------------------
  {
    double result = 0;
    int survivors = 0;
    core::SimConfig cfg = machine;
    cfg.failures = {failure};
    core::Machine m(cfg, [&](Context& ctx) {
      ulfm_solver(ctx, kIterations, ctx.rank() == 0 ? &result : nullptr,
                  ctx.rank() == 0 ? &survivors : nullptr);
    });
    core::SimResult r = m.run();
    std::printf("ULFM shrink-and-continue: finished=%d failed=%d, %d survivors,\n"
                "  total %0.3f s of virtual time, result (contribution-sum) %.0f\n",
                r.finished_count, r.failed_count, survivors, to_seconds(r.max_end_time),
                result);
  }

  // --- Classic path: abort + full restart ----------------------------------
  {
    core::RunnerConfig rc;
    rc.base = machine;
    rc.first_run_failures = {failure};
    core::ResilientRunner runner(rc, [&](Context& ctx) {
      // Same solver without ULFM handling: default handler aborts on the
      // first detected failure; no checkpoints, so the restart recomputes
      // everything.
      for (int it = 1; it <= kIterations; ++it) {
        ctx.compute(1e6);
        double mine = 1.0, sum = 0;
        ctx.allreduce(ctx.world(), vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &mine, &sum, 1);
      }
      ctx.finalize();
    });
    core::RunnerResult res = runner.run();
    std::printf("abort+restart:            launches=%d failures=%d,\n"
                "  total %0.3f s of virtual time (restart recomputes from scratch)\n",
                res.launches, res.failures, to_seconds(res.total_time));
  }
  return 0;
}
