// Quickstart: simulate a 512-rank HPC system (8x8x8 torus), run the 3-D heat
// equation application on it, and report virtual-time performance — first
// without failures, then with one injected MPI process failure handled by
// application-level checkpoint/restart.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "apps/heat3d.hpp"
#include "core/runner.hpp"
#include "util/log.hpp"

using namespace exasim;

int main() {
  Log::set_level(LogLevel::kInfo);  // Show failure/abort messages.

  // --- Describe the simulated machine -------------------------------------
  core::SimConfig machine;
  machine.ranks = 512;
  machine.topology = "torus:8x8x8";             // One rank per node.
  machine.net.link_latency = sim_us(1);         // Paper §V-C parameters.
  machine.net.bandwidth_bytes_per_sec = 32e9;
  machine.net.eager_threshold = 256 * 1024;
  machine.net.failure_timeout = sim_ms(100);
  machine.proc.slowdown = 10.0;                 // Node 10x slower than reference.
  machine.proc.reference_ns_per_unit = 1000.0;  // 1 us per point update.

  // --- Describe the application -------------------------------------------
  apps::HeatParams heat;
  heat.nx = heat.ny = heat.nz = 64;  // 64^3 global grid -> 8^3 per rank.
  heat.px = heat.py = heat.pz = 8;
  heat.total_iterations = 200;
  heat.halo_interval = 25;
  heat.checkpoint_interval = 25;
  heat.real_compute = true;  // Actually solve the PDE.

  // --- Baseline: no failures ----------------------------------------------
  {
    core::RunnerConfig rc;
    rc.base = machine;
    std::vector<apps::HeatReport> reports(static_cast<std::size_t>(machine.ranks));
    core::ResilientRunner runner(rc, apps::make_heat3d(heat, &reports));
    core::RunnerResult res = runner.run();
    std::printf("baseline:      E1 = %8.3f s   launches = %d   checksum[0] = %.6f\n",
                to_seconds(res.total_time), res.launches, reports[0].checksum);
  }

  // --- Same run with one injected MPI process failure ---------------------
  {
    core::RunnerConfig rc;
    rc.base = machine;
    // Kill rank 137 one third into the run (paper §IV-B schedule format:
    // also parsable from "137@<time>" strings).
    rc.first_run_failures = {FailureSpec{137, sim_seconds(0.35)}};
    std::vector<apps::HeatReport> reports(static_cast<std::size_t>(machine.ranks));
    core::ResilientRunner runner(rc, apps::make_heat3d(heat, &reports));
    core::RunnerResult res = runner.run();
    std::printf("with failure:  E2 = %8.3f s   launches = %d   F = %d   MTTF_a = %.1f s\n",
                to_seconds(res.total_time), res.launches, res.failures,
                res.app_mttf_seconds);
    std::printf("               checksum[0] = %.6f (identical to baseline: restart is\n"
                "               transparent to the physics)\n",
                reports[0].checksum);
  }
  return 0;
}
