#include "powermodel/power.hpp"

#include <stdexcept>

namespace exasim {

EnergyLedger::EnergyLedger(int ranks, PowerParams params) : params_(params) {
  if (ranks <= 0) throw std::invalid_argument("ranks <= 0");
  per_rank_.resize(static_cast<std::size_t>(ranks));
}

void EnergyLedger::add_busy(int rank, SimTime dt) { per_rank_.at(rank).busy += dt; }
void EnergyLedger::add_comm(int rank, SimTime dt) { per_rank_.at(rank).comm += dt; }
void EnergyLedger::add_idle(int rank, SimTime dt) { per_rank_.at(rank).idle += dt; }
void EnergyLedger::add_traffic(int rank, std::uint64_t bytes) {
  per_rank_.at(rank).bytes += bytes;
}

double EnergyLedger::rank_joules(int rank) const {
  const PerRank& r = per_rank_.at(rank);
  return to_seconds(r.busy) * params_.busy_watts + to_seconds(r.comm) * params_.comm_watts +
         to_seconds(r.idle) * params_.idle_watts +
         static_cast<double>(r.bytes) * params_.joules_per_byte;
}

double EnergyLedger::total_joules() const {
  double total = 0;
  for (int r = 0; r < ranks(); ++r) total += rank_joules(r);
  return total;
}

}  // namespace exasim
