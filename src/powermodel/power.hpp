#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace exasim {

/// Per-node power states (paper future-work item 5: "developing power
/// consumption models"). Simple state-based model: each simulated node draws
/// a state-dependent wattage; network traffic adds a per-byte energy cost.
struct PowerParams {
  double busy_watts = 100.0;     ///< Node computing.
  double comm_watts = 60.0;      ///< Node blocked in communication.
  double idle_watts = 40.0;      ///< Node idle (e.g. after early finish).
  double joules_per_byte = 1e-9; ///< NIC energy per byte moved.
};

/// Accumulates per-rank busy/comm/idle durations and traffic, and converts
/// them to energy. Attached optionally to a simulation; the vmpi layer feeds
/// it as virtual clocks advance.
class EnergyLedger {
 public:
  EnergyLedger(int ranks, PowerParams params);

  void add_busy(int rank, SimTime dt);
  void add_comm(int rank, SimTime dt);
  void add_idle(int rank, SimTime dt);
  void add_traffic(int rank, std::uint64_t bytes);

  /// Energy consumed by one rank's node, in joules.
  double rank_joules(int rank) const;

  /// Whole-system energy in joules.
  double total_joules() const;

  SimTime busy_time(int rank) const { return per_rank_.at(rank).busy; }
  SimTime comm_time(int rank) const { return per_rank_.at(rank).comm; }
  SimTime idle_time(int rank) const { return per_rank_.at(rank).idle; }
  std::uint64_t traffic_bytes(int rank) const { return per_rank_.at(rank).bytes; }
  int ranks() const { return static_cast<int>(per_rank_.size()); }
  const PowerParams& params() const { return params_; }

 private:
  struct PerRank {
    SimTime busy = 0, comm = 0, idle = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<PerRank> per_rank_;
  PowerParams params_;
};

}  // namespace exasim
