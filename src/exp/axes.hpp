#pragma once

#include "ckpt/tiered.hpp"
#include "exp/plan.hpp"
#include "iomodel/storage.hpp"
#include "netmodel/routing.hpp"
#include "pdes/scheduler.hpp"
#include "resilience/detector.hpp"

namespace exasim::exp {

/// The canonical failure-detector axis: one value per registered detector
/// family (paper-instant, timeout, heartbeat), in registry order. Benches
/// resolve a point's value with `detector_spec_for(point.at(axis))`.
Axis failure_detector_axis();

/// DetectorSpec for a failure_detector_axis() value index (defaults for the
/// parameterized families: heartbeat period auto, miss 3).
resilience::DetectorSpec detector_spec_for(std::size_t value_index);

/// The window-scheduler axis: one value per registered scheduler family
/// (fixed, adaptive), in registry order — for perf campaigns comparing
/// policies (the simulated result is policy-invariant by design).
Axis scheduler_axis();

/// SchedulerSpec for a scheduler_axis() value index (family defaults).
SchedulerSpec scheduler_spec_for(std::size_t value_index);

/// The routing-policy axis: one value per registered routing family
/// (deterministic, adaptive), in registry order — for campaigns comparing
/// route-variant spreading under contention or heterogeneous link timeouts.
Axis routing_axis();

/// RoutingSpec for a routing_axis() value index (family defaults).
RoutingSpec routing_spec_for(std::size_t value_index);

/// The storage-hierarchy axis: one value per registered storage preset
/// (pfs, hpc), in registry order — for co-design campaigns sweeping what
/// checkpoint I/O costs.
Axis storage_axis();

/// StorageSpec for a storage_axis() value index (registered presets).
StorageSpec storage_spec_for(std::size_t value_index);

/// The checkpoint-mode axis: pfs / partner / staged, in registry order.
Axis ckpt_mode_axis();

/// CkptMode for a ckpt_mode_axis() value index.
ckpt::CkptMode ckpt_mode_for(std::size_t value_index);

}  // namespace exasim::exp
