#include "exp/plan.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace exasim::exp {

ExperimentPlan ExperimentPlan::cross_product(std::vector<Axis> axes, int replicates,
                                             std::uint64_t base_seed) {
  if (replicates < 1) throw std::invalid_argument("replicates < 1");
  std::size_t count = 1;
  for (const Axis& a : axes) {
    if (a.values.empty()) throw std::invalid_argument("empty axis: " + a.name);
    count *= a.values.size();
  }

  ExperimentPlan plan;
  plan.axes_ = std::move(axes);
  plan.replicates_ = replicates;
  plan.base_seed_ = base_seed;
  plan.points_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point p;
    p.index = i;
    p.value_index.resize(plan.axes_.size());
    // First axis outermost: decompose i in mixed radix, last axis fastest.
    std::size_t rest = i;
    for (std::size_t a = plan.axes_.size(); a-- > 0;) {
      const std::size_t radix = plan.axes_[a].values.size();
      p.value_index[a] = rest % radix;
      rest /= radix;
    }
    plan.points_.push_back(std::move(p));
  }
  return plan;
}

ExperimentPlan ExperimentPlan::explicit_points(std::size_t count, int replicates,
                                               std::uint64_t base_seed) {
  if (replicates < 1) throw std::invalid_argument("replicates < 1");
  ExperimentPlan plan;
  plan.replicates_ = replicates;
  plan.base_seed_ = base_seed;
  plan.points_.resize(count);
  for (std::size_t i = 0; i < count; ++i) plan.points_[i].index = i;
  return plan;
}

WorkItem ExperimentPlan::item(std::size_t item_index) const {
  const auto reps = static_cast<std::size_t>(replicates_);
  if (item_index >= item_count()) throw std::out_of_range("work item index");
  WorkItem w;
  w.item_index = item_index;
  w.point_index = item_index / reps;
  w.replicate = static_cast<int>(item_index % reps);
  switch (seed_mode_) {
    case SeedMode::kHashed:
      w.seed = derive_seed(base_seed_, w.point_index, w.replicate);
      break;
    case SeedMode::kSequentialPerReplicate:
      w.seed = base_seed_ + static_cast<std::uint64_t>(w.replicate);
      break;
  }
  return w;
}

std::uint64_t ExperimentPlan::derive_seed(std::uint64_t base_seed, std::size_t point_index,
                                          int replicate) {
  // Chain three SplitMix64 steps so (base, point, replicate) each perturb the
  // full state; avoids correlated streams for adjacent points/replicates.
  SplitMix64 mix(base_seed);
  mix.state ^= mix.next() + static_cast<std::uint64_t>(point_index);
  mix.state ^= mix.next() + static_cast<std::uint64_t>(replicate);
  return mix.next();
}

}  // namespace exasim::exp
