#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace exasim::exp {

/// One named parameter axis of an experiment plan. Values are display
/// strings; a bench typically keeps a parallel typed array (topologies,
/// intervals, MTTFs, ...) and indexes it with Point::at().
struct Axis {
  std::string name;
  std::vector<std::string> values;
};

/// One point of a plan: a position along every axis, in plan enumeration
/// order (first axis outermost — the order the old serial nested loops used).
struct Point {
  std::size_t index = 0;                  ///< Position in the plan's point list.
  std::vector<std::size_t> value_index;   ///< Per-axis value position.

  /// Value position along `axis` — index into the bench's typed array.
  std::size_t at(std::size_t axis) const { return value_index.at(axis); }
};

/// One unit of work handed to the executor: a point, a replicate id, and the
/// seed derived for this (point, replicate) pair.
struct WorkItem {
  std::size_t item_index = 0;   ///< Position in plan item order (point-major).
  std::size_t point_index = 0;
  int replicate = 0;
  std::uint64_t seed = 0;
};

/// How per-item seeds are derived from the plan's base seed.
enum class SeedMode {
  /// seed = hash(base_seed, point_index, replicate) — independent streams for
  /// every work item; the default for new experiments.
  kHashed,
  /// seed = base_seed + replicate — the scheme the original serial benches
  /// used (`7000 + seed_index` etc.); keeps their output byte-identical.
  kSequentialPerReplicate,
};

/// A campaign of independent simulated runs: named parameter axes expanded
/// into a cross-product (or an explicit point count), a replication count,
/// and a base seed (paper §III-A/§V: MTTF sweeps, checkpoint-interval
/// sweeps, the co-design sweep).
class ExperimentPlan {
 public:
  /// Cross-product of the given axes; first axis varies slowest.
  static ExperimentPlan cross_product(std::vector<Axis> axes, int replicates = 1,
                                      std::uint64_t base_seed = 1);

  /// An explicit list of `count` points the bench enumerates itself (no
  /// axis structure; Point::value_index stays empty).
  static ExperimentPlan explicit_points(std::size_t count, int replicates = 1,
                                        std::uint64_t base_seed = 1);

  ExperimentPlan& set_seed_mode(SeedMode mode) {
    seed_mode_ = mode;
    return *this;
  }

  std::size_t axis_count() const { return axes_.size(); }
  const Axis& axis(std::size_t i) const { return axes_.at(i); }
  std::size_t point_count() const { return points_.size(); }
  const Point& point(std::size_t i) const { return points_.at(i); }
  int replicates() const { return replicates_; }
  std::uint64_t base_seed() const { return base_seed_; }
  SeedMode seed_mode() const { return seed_mode_; }

  /// Work items enumerate point-major: point 0 replicates 0..R-1, point 1
  /// replicates 0..R-1, ... — the order the old serial loops ran in.
  std::size_t item_count() const { return points_.size() * static_cast<std::size_t>(replicates_); }
  WorkItem item(std::size_t item_index) const;

  /// Deterministic, platform-independent seed for one (point, replicate) of
  /// a campaign: a SplitMix64 chain over (base, point_index, replicate).
  /// Stable across releases — recorded experiment seeds stay reproducible.
  static std::uint64_t derive_seed(std::uint64_t base_seed, std::size_t point_index,
                                   int replicate);

 private:
  ExperimentPlan() = default;

  std::vector<Axis> axes_;
  std::vector<Point> points_;
  int replicates_ = 1;
  std::uint64_t base_seed_ = 1;
  SeedMode seed_mode_ = SeedMode::kHashed;
};

}  // namespace exasim::exp
