#include "exp/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

namespace exasim::exp {

int hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

bool parse_jobs_value(const char* text, int* out) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 0 || v > 1 << 20) return false;
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int default_jobs() {
  int v = 0;
  if (!parse_jobs_value(std::getenv("EXASIM_JOBS"), &v)) return 1;
  return v == 0 ? hardware_jobs() : v;
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (requested == 0) return hardware_jobs();
  return default_jobs();
}

int compose_jobs(int requested_jobs, int sim_workers_per_run) {
  const int jobs = resolve_jobs(requested_jobs);
  const int per_run = std::max(sim_workers_per_run, 1);
  return std::max(1, (jobs + per_run - 1) / per_run);
}

int jobs_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int v = 0;
    if (arg.rfind("--jobs=", 0) == 0) {
      if (parse_jobs_value(arg.c_str() + 7, &v)) return v == 0 ? hardware_jobs() : v;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (parse_jobs_value(argv[i + 1], &v)) return v == 0 ? hardware_jobs() : v;
    }
  }
  return -1;
}

namespace detail {

void run_indexed(std::size_t n, int jobs, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(n, static_cast<std::size_t>(std::max(jobs, 1)));
  if (workers <= 1) {
    // Inline serial execution: exactly the old single-threaded bench loop.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace detail

}  // namespace exasim::exp
