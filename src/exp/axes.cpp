#include "exp/axes.hpp"

#include <stdexcept>

namespace exasim::exp {

Axis failure_detector_axis() {
  Axis axis;
  axis.name = "failure_detector";
  for (const auto& d : resilience::list_detectors()) axis.values.push_back(d.name);
  return axis;
}

resilience::DetectorSpec detector_spec_for(std::size_t value_index) {
  const auto& detectors = resilience::list_detectors();
  if (value_index >= detectors.size()) throw std::out_of_range("detector axis index");
  auto spec = resilience::parse_detector_spec(detectors[value_index].name);
  if (!spec) throw std::logic_error("unparsable registered detector name");
  return *spec;
}

Axis scheduler_axis() {
  Axis axis;
  axis.name = "scheduler";
  for (const auto& name : list_schedulers()) axis.values.push_back(name);
  return axis;
}

SchedulerSpec scheduler_spec_for(std::size_t value_index) {
  const auto& names = list_schedulers();
  if (value_index >= names.size()) throw std::out_of_range("scheduler axis index");
  auto spec = parse_scheduler_spec(names[value_index]);
  if (!spec) throw std::logic_error("unparsable registered scheduler name");
  return *spec;
}

Axis routing_axis() {
  Axis axis;
  axis.name = "routing";
  for (const auto& name : list_routings()) axis.values.push_back(name);
  return axis;
}

RoutingSpec routing_spec_for(std::size_t value_index) {
  const auto& names = list_routings();
  if (value_index >= names.size()) throw std::out_of_range("routing axis index");
  auto spec = parse_routing_spec(names[value_index]);
  if (!spec) throw std::logic_error("unparsable registered routing name");
  return *spec;
}

}  // namespace exasim::exp
