#include "exp/axes.hpp"

#include <stdexcept>

namespace exasim::exp {

Axis failure_detector_axis() {
  Axis axis;
  axis.name = "failure_detector";
  for (const auto& d : resilience::list_detectors()) axis.values.push_back(d.name);
  return axis;
}

resilience::DetectorSpec detector_spec_for(std::size_t value_index) {
  const auto& detectors = resilience::list_detectors();
  if (value_index >= detectors.size()) throw std::out_of_range("detector axis index");
  auto spec = resilience::parse_detector_spec(detectors[value_index].name);
  if (!spec) throw std::logic_error("unparsable registered detector name");
  return *spec;
}

Axis scheduler_axis() {
  Axis axis;
  axis.name = "scheduler";
  for (const auto& name : list_schedulers()) axis.values.push_back(name);
  return axis;
}

SchedulerSpec scheduler_spec_for(std::size_t value_index) {
  const auto& names = list_schedulers();
  if (value_index >= names.size()) throw std::out_of_range("scheduler axis index");
  auto spec = parse_scheduler_spec(names[value_index]);
  if (!spec) throw std::logic_error("unparsable registered scheduler name");
  return *spec;
}

Axis routing_axis() {
  Axis axis;
  axis.name = "routing";
  for (const auto& name : list_routings()) axis.values.push_back(name);
  return axis;
}

RoutingSpec routing_spec_for(std::size_t value_index) {
  const auto& names = list_routings();
  if (value_index >= names.size()) throw std::out_of_range("routing axis index");
  auto spec = parse_routing_spec(names[value_index]);
  if (!spec) throw std::logic_error("unparsable registered routing name");
  return *spec;
}

Axis storage_axis() {
  Axis axis;
  axis.name = "storage";
  for (const auto& p : list_storage()) axis.values.push_back(p.name);
  return axis;
}

StorageSpec storage_spec_for(std::size_t value_index) {
  const auto& presets = list_storage();
  if (value_index >= presets.size()) throw std::out_of_range("storage axis index");
  auto spec = parse_storage_spec(presets[value_index].name);
  if (!spec) throw std::logic_error("unparsable registered storage preset");
  return *spec;
}

Axis ckpt_mode_axis() {
  Axis axis;
  axis.name = "ckpt_mode";
  for (const auto& name : ckpt::list_ckpt_modes()) axis.values.push_back(name);
  return axis;
}

ckpt::CkptMode ckpt_mode_for(std::size_t value_index) {
  const auto& names = ckpt::list_ckpt_modes();
  if (value_index >= names.size()) throw std::out_of_range("ckpt mode axis index");
  auto mode = ckpt::parse_ckpt_mode(names[value_index]);
  if (!mode) throw std::logic_error("unparsable registered ckpt mode");
  return *mode;
}

}  // namespace exasim::exp
