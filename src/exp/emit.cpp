#include "exp/emit.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace exasim::exp {

ResultTable::ResultTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void ResultTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("ResultTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string ResultTable::to_text() const {
  TablePrinter printer(headers_);
  for (const auto& row : rows_) printer.add_row(row);
  return printer.to_string();
}

std::string ResultTable::to_csv() const {
  CsvWriter csv(headers_);
  for (const auto& row : rows_) csv.add_row(row);
  return csv.to_string();
}

std::string ResultTable::to_json() const {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c ? ", " : "") << '"' << json_escape(headers_[c]) << "\": \""
         << json_escape(rows_[r][c]) << '"';
    }
    os << '}' << (r + 1 < rows_.size() ? "," : "") << '\n';
  }
  os << "]\n";
  return os.str();
}

void ResultTable::print(std::FILE* out) const {
  const std::string s = to_text();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

namespace {

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace

bool ResultTable::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

bool ResultTable::write_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace exasim::exp
