#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "exp/plan.hpp"

namespace exasim::exp {

/// Number of hardware threads (always >= 1).
int hardware_jobs();

/// Job count from the EXASIM_JOBS environment variable: a positive value is
/// used as-is, 0 means "all hardware threads", unset/invalid means 1.
int default_jobs();

/// Resolves a requested job count: > 0 as-is, 0 = all hardware threads,
/// < 0 = default_jobs() (the environment knob).
int resolve_jobs(int requested);

/// Scans argv for the `--jobs=N` / `--jobs N` knob every campaign binary
/// supports; returns -1 (use the environment default) when absent. Other
/// arguments are ignored, so benches with no further CLI stay one-liners.
int jobs_from_cli(int argc, char** argv);

/// Composes the campaign-level job count with the engine-level worker count:
/// when every simulation in the campaign itself runs `sim_workers_per_run`
/// engine threads, the campaign should only run ceil(jobs /
/// sim_workers_per_run) simulations at once to keep the total thread count
/// near `requested_jobs` (both knobs resolved first; result >= 1).
int compose_jobs(int requested_jobs, int sim_workers_per_run);

struct ExecutorOptions {
  /// Worker thread count; see resolve_jobs(). Default: EXASIM_JOBS or 1.
  int jobs = -1;

  /// Invoked after each completed item with (done, total). Calls are
  /// serialized; `done` is monotonic. Safe to print from.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Result of one work item: either a value or the error that evaluate threw.
template <typename R>
struct ItemOutcome {
  std::optional<R> value;
  std::string error;

  bool ok() const { return value.has_value(); }
  const R& operator*() const { return *value; }
  const R* operator->() const { return &*value; }
};

namespace detail {
/// Runs body(i) for every i in [0, n) on up to `jobs` threads (inline when
/// jobs <= 1). body must not throw — callers wrap it in a try/catch.
void run_indexed(std::size_t n, int jobs, const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Deterministic parallel campaign executor (the paper's §V experiment
/// campaigns, run one full simulation per work item).
///
/// Work items are claimed dynamically by a fixed-size std::thread pool, but
/// results are collected *by item index*, so the result vector — and
/// everything aggregated from it in order — is bit-identical for any job
/// count, including jobs=1, which executes inline in plain serial order.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(ExecutorOptions options = {})
      : options_(std::move(options)), jobs_(resolve_jobs(options_.jobs)) {}

  /// Resolved worker count.
  int jobs() const { return jobs_; }

  /// Parallel map: evaluates fn(i) for every i in [0, n); returns outcomes
  /// in index order. An exception inside fn is captured per item and does
  /// not take down the pool or the other items.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<ItemOutcome<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<ItemOutcome<R>> out(n);
    std::size_t done = 0;  // Guarded by progress_mutex.
    std::mutex progress_mutex;
    detail::run_indexed(n, jobs_, [&](std::size_t i) {
      try {
        out[i].value.emplace(fn(i));
      } catch (const std::exception& e) {
        out[i].error = e.what()[0] != '\0' ? e.what() : "(empty std::exception message)";
      } catch (...) {
        out[i].error = "non-standard exception";
      }
      if (options_.progress) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        options_.progress(++done, n);
      }
    });
    return out;
  }

  /// Runs every work item of the plan through
  ///   evaluate(const Point&, const WorkItem&) -> row
  /// and returns the outcomes in plan item order (point-major).
  template <typename Fn>
  auto run(const ExperimentPlan& plan, Fn&& evaluate) {
    return map(plan.item_count(), [&](std::size_t i) {
      const WorkItem item = plan.item(i);
      return evaluate(plan.point(item.point_index), item);
    });
  }

 private:
  ExecutorOptions options_;
  int jobs_ = 1;
};

}  // namespace exasim::exp
