#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/table.hpp"

namespace exasim::exp {

/// Ordered result table of a campaign, with the three renderings every
/// experiment wants: a paper-style text table (metrics::TablePrinter), CSV
/// for plotting (metrics::CsvWriter), and JSON for downstream tooling.
///
/// Rows are appended in plan order by the code that aggregates executor
/// outcomes, so every rendering is deterministic for any job count.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  std::string to_text() const;
  std::string to_csv() const;
  /// JSON array of objects keyed by header, e.g.
  /// `[{"topology": "torus:8x8x8", "E2": "1.23 ms"}, ...]`.
  std::string to_json() const;

  void print(std::FILE* out = stdout) const;
  bool write_csv(const std::string& path) const;
  bool write_json(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a string for inclusion in a JSON document (quotes, backslashes,
/// control characters), without the surrounding quotes.
std::string json_escape(const std::string& s);

}  // namespace exasim::exp
