#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exasim {

/// Streaming min/max/mean/stddev over doubles (Welford). O(1) memory; used
/// for the simulator's per-process timing statistics printed at shutdown
/// (paper §IV-D: minimum, maximum, average).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Population variance/stddev (what the Finject table reports).
  double variance() const;
  double stddev() const;
  /// Sample (n-1) variants.
  double sample_variance() const;
  double sample_stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Retains all samples to also provide median and mode — the full statistic
/// set of the paper's Table I (min/max/mean/median/mode/stddev).
class SampleStats {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;         ///< sample stddev (n-1), matching Table I.
  double median() const;
  /// Most frequent value; ties broken toward the smallest value.
  double mode() const;
  double percentile(double p) const;  ///< p in [0,100], linear interpolation.
  const std::vector<double>& samples() const { return samples_; }

 private:
  RunningStats running_;
  std::vector<double> samples_;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples clamp to
/// the edge bins. Used by failure-mode census benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Counter keyed by string label — the failure-mode census of §V-D.
class LabelCounter {
 public:
  void add(const std::string& label, std::uint64_t n = 1);
  std::uint64_t count(const std::string& label) const;
  std::uint64_t total() const;
  const std::map<std::string, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace exasim
