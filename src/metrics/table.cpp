#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace exasim {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print(std::FILE* out) const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

CsvWriter::CsvWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("CsvWriter row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace exasim
