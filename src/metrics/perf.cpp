#include "metrics/perf.hpp"

#include "ckpt/tiered.hpp"
#include "fiber/fiber.hpp"
#include "fiber/stack_pool.hpp"
#include "pdes/engine.hpp"
#include "pdes/event_queue.hpp"
#include "util/pool.hpp"

namespace exasim {

PerfSnapshot perf_snapshot() {
  PerfSnapshot s;
  const util::PoolStats p = util::pool_stats();
  s.pool_allocs = p.allocs;
  s.pool_frees = p.frees;
  s.pool_recycled = p.recycled;
  s.pool_heap_allocs = p.heap_allocs;
  s.pool_slab_bytes = p.slab_bytes;
  const FiberStackPool::Stats f = FiberStackPool::instance().stats();
  s.stacks_mapped = f.mapped;
  s.stacks_reused = f.reused;
  s.stacks_high_water = f.high_water;
  const FanoutStats fo = fanout_stats();
  s.fanout_notices = fo.notices;
  s.fanout_relays = fo.relay_events;
  s.fanout_dead_skips = fo.dead_skips;
  const SchedStats sc = sched_stats();
  s.sched_windows = sc.windows;
  s.sched_window_widenings = sc.window_widenings;
  s.sched_steals = sc.steals;
  s.sched_speculated = sc.speculated;
  s.sched_rollbacks = sc.rollbacks;
  s.sched_barrier_idle_ns = sc.barrier_idle_ns;
  const FiberDispatchStats fd = fiber_dispatch_stats();
  s.fiber_resumes = fd.resumes;
  s.wakeups_suppressed = fd.wakeups_suppressed;
  const QueueStats q = queue_stats();
  s.queue_near_hits = q.near_hits;
  s.bulk_merges = q.bulk_merges;
  const ckpt::CkptStats ck = ckpt::ckpt_stats();
  s.ckpt_stages = ck.stages;
  s.ckpt_drains = ck.drains;
  s.ckpt_partner_copies = ck.partner_copies;
  s.ckpt_restore_tier = ck.restore_tier;
  return s;
}

PerfSnapshot perf_delta(const PerfSnapshot& begin, const PerfSnapshot& end) {
  PerfSnapshot d;
  d.pool_allocs = end.pool_allocs - begin.pool_allocs;
  d.pool_frees = end.pool_frees - begin.pool_frees;
  d.pool_recycled = end.pool_recycled - begin.pool_recycled;
  d.pool_heap_allocs = end.pool_heap_allocs - begin.pool_heap_allocs;
  d.pool_slab_bytes = end.pool_slab_bytes - begin.pool_slab_bytes;
  d.stacks_mapped = end.stacks_mapped - begin.stacks_mapped;
  d.stacks_reused = end.stacks_reused - begin.stacks_reused;
  d.stacks_high_water = end.stacks_high_water;
  d.fanout_notices = end.fanout_notices - begin.fanout_notices;
  d.fanout_relays = end.fanout_relays - begin.fanout_relays;
  d.fanout_dead_skips = end.fanout_dead_skips - begin.fanout_dead_skips;
  d.sched_windows = end.sched_windows - begin.sched_windows;
  d.sched_window_widenings = end.sched_window_widenings - begin.sched_window_widenings;
  d.sched_steals = end.sched_steals - begin.sched_steals;
  d.sched_speculated = end.sched_speculated - begin.sched_speculated;
  d.sched_rollbacks = end.sched_rollbacks - begin.sched_rollbacks;
  d.sched_barrier_idle_ns = end.sched_barrier_idle_ns - begin.sched_barrier_idle_ns;
  d.fiber_resumes = end.fiber_resumes - begin.fiber_resumes;
  d.wakeups_suppressed = end.wakeups_suppressed - begin.wakeups_suppressed;
  d.queue_near_hits = end.queue_near_hits - begin.queue_near_hits;
  d.bulk_merges = end.bulk_merges - begin.bulk_merges;
  d.ckpt_stages = end.ckpt_stages - begin.ckpt_stages;
  d.ckpt_drains = end.ckpt_drains - begin.ckpt_drains;
  d.ckpt_partner_copies = end.ckpt_partner_copies - begin.ckpt_partner_copies;
  // restore_tier is a level (deepest tier reached), not a flow.
  d.ckpt_restore_tier = end.ckpt_restore_tier;
  return d;
}

}  // namespace exasim
