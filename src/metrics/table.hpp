#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace exasim {

/// Plain-text table printer used by every bench to print paper-style rows.
///
/// Columns are right-aligned; a header separator is emitted; `to_string()`
/// gives the full rendering for logging or file capture.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;
  void print(std::FILE* out = stdout) const;

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV emission for downstream plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;
  /// Writes to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace exasim
