#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace exasim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::min() const { return n_ ? min_ : 0.0; }
double RunningStats::max() const { return n_ ? max_ : 0.0; }
double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::sample_stddev() const { return std::sqrt(sample_variance()); }

void SampleStats::add(double x) {
  running_.add(x);
  samples_.push_back(x);
}

double SampleStats::min() const { return running_.min(); }
double SampleStats::max() const { return running_.max(); }
double SampleStats::mean() const { return running_.mean(); }
double SampleStats::stddev() const { return running_.sample_stddev(); }

double SampleStats::median() const { return percentile(50.0); }

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double SampleStats::mode() const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  double best = sorted.front();
  std::size_t best_count = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    if (j - i > best_count) {
      best_count = j - i;
      best = sorted[i];
    }
    i = j;
  }
  return best;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("bad histogram bounds");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

void LabelCounter::add(const std::string& label, std::uint64_t n) { counts_[label] += n; }

std::uint64_t LabelCounter::count(const std::string& label) const {
  auto it = counts_.find(label);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t LabelCounter::total() const {
  std::uint64_t t = 0;
  for (const auto& [k, v] : counts_) t += v;
  return t;
}

}  // namespace exasim
