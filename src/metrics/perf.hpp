#pragma once

#include <cstdint>

namespace exasim {

/// Point-in-time snapshot of the hot-path memory counters (DESIGN.md §9):
/// the util pool (event payloads, PayloadBuf spills) and the fiber stack
/// pool. All counters are monotonic process-wide totals; meter one region —
/// e.g. one Machine::run() — by diffing two snapshots with perf_delta().
struct PerfSnapshot {
  // util::pool (size-class free lists; see src/util/pool.hpp).
  std::uint64_t pool_allocs = 0;       ///< pool_alloc calls (any route).
  std::uint64_t pool_frees = 0;        ///< pool_free calls.
  std::uint64_t pool_recycled = 0;     ///< Allocs served from a free list.
  std::uint64_t pool_heap_allocs = 0;  ///< Allocs routed to ::operator new.
  std::uint64_t pool_slab_bytes = 0;   ///< Bytes of slab carved so far.

  // FiberStackPool (guard-paged mmapped stacks; see src/fiber/stack_pool.hpp).
  std::uint64_t stacks_mapped = 0;      ///< Fresh mmaps.
  std::uint64_t stacks_reused = 0;      ///< Acquires served from the pool.
  std::uint64_t stacks_high_water = 0;  ///< Max concurrently live stacks.

  // Engine::schedule_fanout (batched notification fan-out; DESIGN.md §10).
  std::uint64_t fanout_notices = 0;     ///< Notice events created.
  std::uint64_t fanout_relays = 0;      ///< Cross-group relay carrier events.
  std::uint64_t fanout_dead_skips = 0;  ///< Dead-destination items skipped.

  // Sharded-engine scheduler (window policy / stealing / speculation;
  // DESIGN.md §11). Host-timing-sensitive statistics — never part of the
  // simulated result, which is identical for every worker count and policy.
  std::uint64_t sched_windows = 0;           ///< Window phases decided.
  std::uint64_t sched_window_widenings = 0;  ///< Group bounds wider than fixed.
  std::uint64_t sched_steals = 0;            ///< Groups run by non-home workers.
  std::uint64_t sched_speculated = 0;        ///< Events staged past a bound.
  std::uint64_t sched_rollbacks = 0;         ///< Staged events invalidated.
  std::uint64_t sched_barrier_idle_ns = 0;   ///< Worker ns waiting at barriers.

  // Hot-path dispatch & queue traffic (DESIGN.md §13): fiber context
  // switches, spurious resumes the vmpi wakeup filter skipped, event-queue
  // pops served from the near-horizon bucket array, and bulk inbox merges.
  std::uint64_t fiber_resumes = 0;       ///< Fiber::resume switches.
  std::uint64_t wakeups_suppressed = 0;  ///< Spurious resumes filtered out.
  std::uint64_t queue_near_hits = 0;     ///< Pops from a near bucket.
  std::uint64_t bulk_merges = 0;         ///< EventQueue::push_bulk calls.

  // Tiered checkpointing (DESIGN.md §14): non-PFS checkpoint stages,
  // background tier-to-tier drains, partner replicas shipped over the
  // network, and the deepest tier any restore had to reach (a level:
  // 0 = none, 1 = mem, 2 = bb, 3 = pfs).
  std::uint64_t ckpt_stages = 0;
  std::uint64_t ckpt_drains = 0;
  std::uint64_t ckpt_partner_copies = 0;
  std::uint64_t ckpt_restore_tier = 0;
};

/// Reads the current process-wide counters. Thread-safe; O(#threads).
PerfSnapshot perf_snapshot();

/// Component-wise `end - begin` for the monotonic counters; high_water is
/// carried over from `end` (it is a level, not a flow).
PerfSnapshot perf_delta(const PerfSnapshot& begin, const PerfSnapshot& end);

}  // namespace exasim
