#include "faultlib/campaign.hpp"

#include <stdexcept>

namespace exasim::faultlib {
namespace {

/// Draws a bit index within the configured injection surface.
std::uint64_t draw_bit(const CampaignConfig& config, const MiniVM& vm, Rng& rng) {
  const std::uint64_t reg_bits = static_cast<std::uint64_t>(MiniVM::kRegisters) * 64;
  const std::uint64_t pc_bits = 64;
  const std::uint64_t mem_bits = static_cast<std::uint64_t>(vm.memory().size()) * 8;
  switch (config.target) {
    case InjectTarget::kRegisters:
      return rng.next_below(reg_bits);
    case InjectTarget::kRegistersAndPc:
      return rng.next_below(reg_bits + pc_bits);
    case InjectTarget::kMemory:
      return reg_bits + pc_bits + rng.next_below(mem_bits);
    case InjectTarget::kAll:
      return rng.next_below(reg_bits + pc_bits + mem_bits);
  }
  throw std::invalid_argument("bad inject target");
}

}  // namespace

const char* to_string(InjectTarget t) {
  switch (t) {
    case InjectTarget::kRegisters: return "registers";
    case InjectTarget::kRegistersAndPc: return "registers+pc";
    case InjectTarget::kMemory: return "memory";
    case InjectTarget::kAll: return "all";
  }
  return "?";
}

VictimRecord run_single_victim(const CampaignConfig& config, Rng& rng) {
  MiniVM vm = make_victim_vm(config.victim, config.memory_words);
  VictimRecord record;

  // Warm the victim up so injections land in steady state.
  vm.run(config.steps_between_injections);

  while (record.injections < config.max_injections_per_victim) {
    // Injector: one random bit flip into the configured surface.
    vm.flip_bit(draw_bit(config, vm, rng));
    ++record.injections;

    // Victim continues; detector watches for abnormal exit. A normal halt
    // cannot happen — victims loop forever — so any stop is a failure.
    const VmState state = vm.run(config.steps_between_injections);
    if (state != VmState::kRunning) {
      record.failed = true;
      record.final_state = state;
      record.steps_survived = vm.steps_executed();
      return record;
    }
  }
  record.failed = false;
  record.final_state = VmState::kRunning;
  record.steps_survived = vm.steps_executed();
  return record;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  if (config.victims <= 0) throw std::invalid_argument("victims <= 0");
  CampaignResult result;
  result.victims = config.victims;
  Rng rng(config.seed);

  for (int v = 0; v < config.victims; ++v) {
    Rng victim_rng = rng.split();  // Independent per-victim stream.
    VictimRecord record = run_single_victim(config, victim_rng);
    result.total_injections += static_cast<std::uint64_t>(record.injections);
    if (record.failed) {
      ++result.failed_victims;
      result.injections_to_failure.add(static_cast<double>(record.injections));
      result.failure_modes.add(to_string(record.final_state));
    } else {
      ++result.survivors;
      result.failure_modes.add("survived");
    }
    result.records.push_back(record);
  }
  return result;
}

}  // namespace exasim::faultlib
