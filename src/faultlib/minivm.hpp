#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace exasim::faultlib {

/// Register-machine opcode set. Deliberately small but "real": arithmetic,
/// logic, memory, and control flow — enough that random register/PC/memory
/// bit flips produce the full spectrum of outcomes a ptrace-based injector
/// sees on a native victim (crash, hang, silent data corruption, masked).
enum class Op : std::uint8_t {
  kHalt = 0,
  kLoadImm,   // r[a] = imm
  kMov,       // r[a] = r[b]
  kAdd,       // r[a] = r[b] + r[c]
  kSub,       // r[a] = r[b] - r[c]
  kMul,       // r[a] = r[b] * r[c]
  kDiv,       // r[a] = r[b] / r[c]; r[c] == 0 -> crash
  kAnd,       // r[a] = r[b] & r[c]
  kOr,        // r[a] = r[b] | r[c]
  kXor,       // r[a] = r[b] ^ r[c]
  kShl,       // r[a] = r[b] << (r[c] & 63)
  kShr,       // r[a] = r[b] >> (r[c] & 63)
  kLoad,      // r[a] = mem64[r[b] + imm]; misaligned/oob -> crash
  kStore,     // mem64[r[b] + imm] = r[a]
  kJmp,       // pc = imm
  kJz,        // if (r[a] == 0) pc = imm
  kJnz,       // if (r[a] != 0) pc = imm
  kJlt,       // if (r[a] < r[b]) pc = imm
  kAddImm,    // r[a] = r[b] + imm
};

struct Instr {
  Op op = Op::kHalt;
  std::uint8_t a = 0, b = 0, c = 0;
  std::int64_t imm = 0;
};

/// Why a VM stopped.
enum class VmState : std::uint8_t {
  kRunning = 0,
  kHalted,        ///< Executed kHalt.
  kBadPc,         ///< PC outside the program.
  kBadOpcode,     ///< Corrupted instruction stream.
  kBadAccess,     ///< Out-of-bounds / misaligned memory access.
  kDivByZero,
};

std::string to_string(VmState s);

/// The victim: a tiny deterministic register VM with a byte-addressable
/// memory and word (8-byte) loads/stores.
///
/// 64 x 64-bit architectural registers: victim programs live in the low
/// handful, the rest stay cold — mirroring a real ptrace(2)-reachable
/// register surface (GPRs + flags + segments + x87/SSE state, ~90 x 64 bits
/// on x86-64) where most injected register bits are dead at injection time.
/// The live/dead ratio is what sets the mean injections-to-failure of a
/// campaign; 64 registers is conservative relative to a real process.
class MiniVM {
 public:
  static constexpr int kRegisters = 64;

  MiniVM(std::vector<Instr> program, std::size_t memory_bytes);

  /// Executes up to `max_steps` instructions; returns the state afterwards
  /// (kRunning if the budget ran out — the hang-detection path).
  VmState run(std::uint64_t max_steps);

  /// Executes exactly one instruction.
  VmState step();

  VmState state() const { return state_; }
  std::uint64_t steps_executed() const { return steps_; }

  std::uint64_t reg(int i) const { return regs_.at(static_cast<std::size_t>(i)); }
  void set_reg(int i, std::uint64_t v) { regs_.at(static_cast<std::size_t>(i)) = v; }
  std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }

  std::vector<std::uint8_t>& memory() { return mem_; }
  const std::vector<std::uint8_t>& memory() const { return mem_; }
  const std::vector<Instr>& program() const { return prog_; }

  /// Fault-injection surface: flips one bit in the architectural state.
  /// Register file: 16*64 bits; then 64 PC bits; then memory bits.
  void flip_bit(std::uint64_t bit_index);
  std::uint64_t state_bits() const;

 private:
  std::vector<Instr> prog_;
  std::vector<std::uint8_t> mem_;
  std::vector<std::uint64_t> regs_;
  std::uint64_t pc_ = 0;
  std::uint64_t steps_ = 0;
  VmState state_ = VmState::kRunning;
};

}  // namespace exasim::faultlib
