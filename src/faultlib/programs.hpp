#pragma once

#include <cstddef>
#include <vector>

#include "faultlib/minivm.hpp"

namespace exasim::faultlib {

/// Victim workloads for injection campaigns. All run forever (outer loop), so
/// a campaign can keep injecting until the victim fails — mirroring Finject's
/// setup where injection into a live victim continues until abnormal exit.
enum class VictimKind : std::uint8_t {
  /// Rolling XOR/multiply checksum sweep over memory; writes the digest back.
  /// Data-flow heavy: register flips quickly reach address registers.
  kChecksum,
  /// LCG-fill then bubble-sort memory, repeatedly. Control-flow heavy:
  /// branches on corrupted data change paths before crashing.
  kSort,
  /// Tight increment/store loop. Minimal state: most data flips are masked,
  /// PC/address flips are fatal — the "resilient" end of the spectrum.
  kCounter,
};

const char* to_string(VictimKind k);

/// Builds the victim program. `memory_words` is the number of 8-byte words
/// the matching MiniVM must provide (pass memory_bytes = memory_words * 8).
std::vector<Instr> build_victim(VictimKind kind, std::size_t memory_words);

/// Convenience: VM pre-loaded with the victim program and correctly sized
/// memory.
MiniVM make_victim_vm(VictimKind kind, std::size_t memory_words);

}  // namespace exasim::faultlib
