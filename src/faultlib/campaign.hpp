#pragma once

#include <cstdint>
#include <string>

#include "faultlib/programs.hpp"
#include "metrics/stats.hpp"
#include "util/rng.hpp"

namespace exasim::faultlib {

/// Which architectural state the injector flips bits in. Finject's
/// ptrace-based injector targeted "the core image and registers of a victim
/// process"; kRegistersAndPc mirrors its register experiments (Table I).
enum class InjectTarget : std::uint8_t {
  kRegisters,       ///< General-purpose registers only.
  kRegistersAndPc,  ///< Registers + program counter (ptrace GETREGS surface).
  kMemory,          ///< Victim memory image only.
  kAll,             ///< Registers + PC + memory.
};

const char* to_string(InjectTarget t);

/// Fault-injection campaign configuration (the Finject experiment of the
/// paper's Table I: 100 victims, register bit flips until victim failure,
/// at most 100 injections per victim).
struct CampaignConfig {
  VictimKind victim = VictimKind::kChecksum;
  std::size_t memory_words = 64;
  int victims = 100;
  int max_injections_per_victim = 100;  ///< Finject's "arbitrary maximum".
  std::uint64_t steps_between_injections = 2000;
  InjectTarget target = InjectTarget::kRegistersAndPc;
  std::uint64_t seed = 0xF1A7;
};

/// Per-victim record: the detector's report on the victim's exit.
struct VictimRecord {
  bool failed = false;
  int injections = 0;           ///< Injections performed into this victim.
  VmState final_state = VmState::kRunning;
  std::uint64_t steps_survived = 0;
};

/// Campaign summary — the analyzer role: counts injections and detections.
struct CampaignResult {
  SampleStats injections_to_failure;  ///< Over failed victims only.
  LabelCounter failure_modes;         ///< Crash-state census.
  int victims = 0;
  int failed_victims = 0;
  int survivors = 0;                  ///< Reached the injection cap alive.
  std::uint64_t total_injections = 0;
  std::vector<VictimRecord> records;
};

/// Runs the campaign: for each victim, alternate "run N instructions" /
/// "inject one random bit flip" until the detector observes an abnormal exit
/// or the injection cap is reached. Deterministic for a given config.
CampaignResult run_campaign(const CampaignConfig& config);

/// One victim instance (exposed for tests).
VictimRecord run_single_victim(const CampaignConfig& config, Rng& rng);

}  // namespace exasim::faultlib
