#include "faultlib/minivm.hpp"

#include <cstring>
#include <stdexcept>

namespace exasim::faultlib {

std::string to_string(VmState s) {
  switch (s) {
    case VmState::kRunning: return "running";
    case VmState::kHalted: return "halted";
    case VmState::kBadPc: return "bad-pc";
    case VmState::kBadOpcode: return "bad-opcode";
    case VmState::kBadAccess: return "bad-access";
    case VmState::kDivByZero: return "div-by-zero";
  }
  return "?";
}

MiniVM::MiniVM(std::vector<Instr> program, std::size_t memory_bytes)
    : prog_(std::move(program)), mem_(memory_bytes, 0), regs_(kRegisters, 0) {
  if (prog_.empty()) throw std::invalid_argument("empty program");
}

VmState MiniVM::step() {
  if (state_ != VmState::kRunning) return state_;
  if (pc_ >= prog_.size()) {
    state_ = VmState::kBadPc;
    return state_;
  }
  const Instr& in = prog_[pc_];
  ++steps_;
  ++pc_;

  auto reg_ok = [&](std::uint8_t r) { return r < kRegisters; };
  if (!reg_ok(in.a) || !reg_ok(in.b) || !reg_ok(in.c)) {
    state_ = VmState::kBadOpcode;
    return state_;
  }
  auto& ra = regs_[in.a];
  const std::uint64_t rb = regs_[in.b];
  const std::uint64_t rc = regs_[in.c];

  auto mem_addr = [&](std::uint64_t base) -> std::int64_t {
    const std::uint64_t addr = base + static_cast<std::uint64_t>(in.imm);
    if (addr % 8 != 0 || addr + 8 > mem_.size()) return -1;
    return static_cast<std::int64_t>(addr);
  };

  switch (in.op) {
    case Op::kHalt:
      state_ = VmState::kHalted;
      --pc_;
      break;
    case Op::kLoadImm: ra = static_cast<std::uint64_t>(in.imm); break;
    case Op::kMov: ra = rb; break;
    case Op::kAdd: ra = rb + rc; break;
    case Op::kSub: ra = rb - rc; break;
    case Op::kMul: ra = rb * rc; break;
    case Op::kDiv:
      if (rc == 0) {
        state_ = VmState::kDivByZero;
      } else {
        ra = rb / rc;
      }
      break;
    case Op::kAnd: ra = rb & rc; break;
    case Op::kOr: ra = rb | rc; break;
    case Op::kXor: ra = rb ^ rc; break;
    case Op::kShl: ra = rb << (rc & 63); break;
    case Op::kShr: ra = rb >> (rc & 63); break;
    case Op::kLoad: {
      const std::int64_t addr = mem_addr(rb);
      if (addr < 0) {
        state_ = VmState::kBadAccess;
      } else {
        std::memcpy(&ra, mem_.data() + addr, 8);
      }
      break;
    }
    case Op::kStore: {
      const std::int64_t addr = mem_addr(rb);
      if (addr < 0) {
        state_ = VmState::kBadAccess;
      } else {
        std::memcpy(mem_.data() + addr, &ra, 8);
      }
      break;
    }
    case Op::kJmp: pc_ = static_cast<std::uint64_t>(in.imm); break;
    case Op::kJz:
      if (ra == 0) pc_ = static_cast<std::uint64_t>(in.imm);
      break;
    case Op::kJnz:
      if (ra != 0) pc_ = static_cast<std::uint64_t>(in.imm);
      break;
    case Op::kJlt:
      if (ra < rb) pc_ = static_cast<std::uint64_t>(in.imm);
      break;
    case Op::kAddImm: ra = rb + static_cast<std::uint64_t>(in.imm); break;
    default:
      state_ = VmState::kBadOpcode;
      break;
  }
  return state_;
}

VmState MiniVM::run(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps && state_ == VmState::kRunning; ++i) step();
  return state_;
}

std::uint64_t MiniVM::state_bits() const {
  return static_cast<std::uint64_t>(kRegisters) * 64 + 64 +
         static_cast<std::uint64_t>(mem_.size()) * 8;
}

void MiniVM::flip_bit(std::uint64_t bit_index) {
  bit_index %= state_bits();
  const std::uint64_t reg_bits = static_cast<std::uint64_t>(kRegisters) * 64;
  if (bit_index < reg_bits) {
    regs_[bit_index / 64] ^= 1ull << (bit_index % 64);
    return;
  }
  bit_index -= reg_bits;
  if (bit_index < 64) {
    pc_ ^= 1ull << bit_index;
    return;
  }
  bit_index -= 64;
  mem_[bit_index / 8] ^= static_cast<std::uint8_t>(1u << (bit_index % 8));
}

}  // namespace exasim::faultlib
