#include "faultlib/programs.hpp"

#include <stdexcept>

namespace exasim::faultlib {
namespace {

/// Minimal assembler: emit instructions, record label positions, patch
/// forward jumps afterwards. Jump targets are instruction indices.
class Asm {
 public:
  int here() const { return static_cast<int>(code_.size()); }

  int emit(Op op, int a = 0, int b = 0, int c = 0, std::int64_t imm = 0) {
    code_.push_back(Instr{op, static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                          static_cast<std::uint8_t>(c), imm});
    return here() - 1;
  }

  void patch(int at, std::int64_t imm) { code_.at(static_cast<std::size_t>(at)).imm = imm; }

  std::vector<Instr> take() { return std::move(code_); }

 private:
  std::vector<Instr> code_;
};

std::vector<Instr> checksum_program(std::size_t words) {
  // r0 digest, r1 byte offset, r2 limit, r3 loaded word, r4 = 8,
  // r5 = mixing prime, r6 = 0 (store base).
  const auto limit = static_cast<std::int64_t>(words * 8);
  Asm a;
  a.emit(Op::kLoadImm, 4, 0, 0, 8);
  a.emit(Op::kLoadImm, 5, 0, 0, static_cast<std::int64_t>(0x9E3779B97F4A7C15ull));
  a.emit(Op::kLoadImm, 6, 0, 0, 0);
  const int outer = a.here();
  a.emit(Op::kLoadImm, 0, 0, 0, 0);
  a.emit(Op::kLoadImm, 1, 0, 0, 0);
  a.emit(Op::kLoadImm, 2, 0, 0, limit);
  const int loop = a.here();
  a.emit(Op::kLoad, 3, 1, 0, 0);       // r3 = mem[r1]
  a.emit(Op::kXor, 0, 0, 3, 0);        // digest ^= r3
  a.emit(Op::kMul, 0, 0, 5, 0);        // digest *= prime
  a.emit(Op::kAdd, 1, 1, 4, 0);        // offset += 8
  a.emit(Op::kJlt, 1, 2, 0, loop);     // while offset < limit
  a.emit(Op::kStore, 0, 6, 0, limit - 8);  // write digest into the last word
  a.emit(Op::kJmp, 0, 0, 0, outer);    // forever
  return a.take();
}

std::vector<Instr> sort_program(std::size_t words) {
  // r15 = 8, r4/r6 = LCG constants, r3 = LCG state, r1 byte offset,
  // r2 limit, r7 swap flag, r8/r9 compared words.
  const auto limit = static_cast<std::int64_t>(words * 8);
  Asm a;
  a.emit(Op::kLoadImm, 15, 0, 0, 8);
  a.emit(Op::kLoadImm, 4, 0, 0, static_cast<std::int64_t>(6364136223846793005ull));
  a.emit(Op::kLoadImm, 6, 0, 0, static_cast<std::int64_t>(1442695040888963407ull));
  a.emit(Op::kLoadImm, 3, 0, 0, 42);
  const int outer = a.here();
  // Fill memory with LCG values.
  a.emit(Op::kLoadImm, 1, 0, 0, 0);
  a.emit(Op::kLoadImm, 2, 0, 0, limit);
  const int fill = a.here();
  a.emit(Op::kMul, 3, 3, 4, 0);
  a.emit(Op::kAdd, 3, 3, 6, 0);
  a.emit(Op::kStore, 3, 1, 0, 0);
  a.emit(Op::kAdd, 1, 1, 15, 0);
  a.emit(Op::kJlt, 1, 2, 0, fill);
  // Bubble-sort passes until no swap.
  const int pass = a.here();
  a.emit(Op::kLoadImm, 7, 0, 0, 0);    // swapped = 0
  a.emit(Op::kLoadImm, 1, 0, 0, 0);
  a.emit(Op::kLoadImm, 2, 0, 0, limit - 8);
  const int inner = a.here();
  a.emit(Op::kLoad, 8, 1, 0, 0);       // r8 = mem[r1]
  a.emit(Op::kLoad, 9, 1, 0, 8);       // r9 = mem[r1+8]
  const int jswap = a.emit(Op::kJlt, 9, 8, 0, 0);  // if r9 < r8 -> swap
  const int jnext = a.emit(Op::kJmp, 0, 0, 0, 0);  // -> next
  const int swap = a.here();
  a.patch(jswap, swap);
  a.emit(Op::kStore, 9, 1, 0, 0);
  a.emit(Op::kStore, 8, 1, 0, 8);
  a.emit(Op::kLoadImm, 7, 0, 0, 1);    // swapped = 1
  const int next = a.here();
  a.patch(jnext, next);
  a.emit(Op::kAdd, 1, 1, 15, 0);
  a.emit(Op::kJlt, 1, 2, 0, inner);
  a.emit(Op::kJnz, 7, 0, 0, pass);     // another pass if swapped
  a.emit(Op::kJmp, 0, 0, 0, outer);    // refill & resort forever
  return a.take();
}

std::vector<Instr> counter_program() {
  // r0 counter, r1 = 1, r2 = 0 (store base).
  Asm a;
  a.emit(Op::kLoadImm, 0, 0, 0, 0);
  a.emit(Op::kLoadImm, 1, 0, 0, 1);
  a.emit(Op::kLoadImm, 2, 0, 0, 0);
  const int loop = a.here();
  a.emit(Op::kAdd, 0, 0, 1, 0);
  a.emit(Op::kStore, 0, 2, 0, 0);
  a.emit(Op::kJmp, 0, 0, 0, loop);
  return a.take();
}

}  // namespace

const char* to_string(VictimKind k) {
  switch (k) {
    case VictimKind::kChecksum: return "checksum";
    case VictimKind::kSort: return "sort";
    case VictimKind::kCounter: return "counter";
  }
  return "?";
}

std::vector<Instr> build_victim(VictimKind kind, std::size_t memory_words) {
  if (memory_words < 2) throw std::invalid_argument("victim needs >= 2 memory words");
  switch (kind) {
    case VictimKind::kChecksum: return checksum_program(memory_words);
    case VictimKind::kSort: return sort_program(memory_words);
    case VictimKind::kCounter: return counter_program();
  }
  throw std::invalid_argument("bad victim kind");
}

MiniVM make_victim_vm(VictimKind kind, std::size_t memory_words) {
  MiniVM vm(build_victim(kind, memory_words), memory_words * 8);
  // Deterministic nonzero initial memory so checksum work is meaningful.
  auto& mem = vm.memory();
  for (std::size_t i = 0; i < mem.size(); ++i) {
    mem[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xff);
  }
  return vm;
}

}  // namespace exasim::faultlib
