#pragma once

#include <cstdint>
#include <vector>

#include "vmpi/context.hpp"
#include "vmpi/types.hpp"

namespace exasim::redundancy {

/// Process-level redundancy at the simulated MPI layer — a reproduction of
/// the redMPI prototype the paper describes (§II-C): "RedMPI is capable of
/// online detection and correction of soft errors (bit flips) without
/// requiring any modifications to the application using double or triple
/// redundancy. It can also be used as a fault injection tool by disabling
/// the online correction."
///
/// The simulated world of `app_ranks * replication` MPI processes is split
/// into `replication` planes; each plane executes a full copy of the
/// application. Point-to-point messages flow within a plane; at every
/// receive, the receiving replicas of an application rank exchange message
/// hashes to detect silent data corruption:
///
///   * detection (any replication >= 2): hash mismatch across replicas;
///   * correction (replication >= 3, enabled by default): the majority
///     payload is re-sent to the diverged replica, which continues with
///     corrected data.
///
/// With correction disabled the library is the paper's fault-*injection*
/// observation tool: replicas stay isolated, and comparing a corrupted
/// replica against the clean ones tracks how far a single bit flip
/// propagates through the application's communication.
struct RedundancyConfig {
  int replication = 2;        ///< 2 = dual (detect), 3 = triple (correct).
  bool correct = true;        ///< Online correction (needs replication >= 3).
  bool detect = true;         ///< Hash comparison at every receive.
};

/// Counters describing what the redundancy layer saw (per process).
struct RedundancyStats {
  std::uint64_t messages = 0;          ///< Application-level receives.
  std::uint64_t divergences = 0;       ///< Receives with hash mismatch.
  std::uint64_t corrected = 0;         ///< Divergences repaired by majority.
  std::uint64_t uncorrectable = 0;     ///< Mismatch without a majority/correction.
};

/// FNV-1a hash used for message comparison.
std::uint64_t message_hash(const void* data, std::size_t bytes);

/// The application's view under redundancy: ranks/size are *application*
/// ranks; replication is transparent, exactly redMPI's interposition model.
class RedundantContext {
 public:
  /// The underlying world must have size == app_ranks * config.replication.
  RedundantContext(vmpi::Context& ctx, RedundancyConfig config);

  int rank() const { return app_rank_; }
  int size() const { return app_size_; }
  int replica() const { return replica_; }           ///< My plane index.
  int replication() const { return config_.replication; }

  vmpi::Context& raw() { return ctx_; }

  /// Application-level blocking send/recv (within my plane, plus the
  /// detection/correction protocol on the receive side).
  vmpi::Err send(int dest, int tag, const void* data, std::size_t bytes);
  vmpi::Err recv(int src, int tag, void* buffer, std::size_t bytes,
                 vmpi::MsgStatus* status = nullptr);

  /// Application-level collectives (run within the plane; allreduce results
  /// are hash-compared like receives).
  vmpi::Err barrier();
  vmpi::Err allreduce(vmpi::ReduceOp op, vmpi::Dtype dtype, const void* in, void* out,
                      std::size_t count);

  void compute(double units) { ctx_.compute(units); }
  void finalize() { ctx_.finalize(); }
  double wtime() const { return ctx_.wtime(); }

  const RedundancyStats& stats() const { return stats_; }

 private:
  /// Cross-replica comparison (and optional correction) of `bytes` at
  /// `buffer`. Called after every application-level receive.
  vmpi::Err compare_and_correct(void* buffer, std::size_t bytes);

  vmpi::Context& ctx_;
  RedundancyConfig config_;
  int app_size_ = 0;
  int app_rank_ = 0;
  int replica_ = 0;
  vmpi::Comm* plane_ = nullptr;    ///< My replica plane (size == app_size).
  vmpi::Comm* group_ = nullptr;    ///< Replicas of my app rank (size == replication).
  RedundancyStats stats_;
};

}  // namespace exasim::redundancy
