#include "redundancy/redundant.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace exasim::redundancy {
namespace {

/// Internal tags for the detection/correction protocol (application tags are
/// >= 0; vmpi collectives use their own negative space far from this one).
constexpr int kCorrectionTag = 1 << 20;

}  // namespace

std::uint64_t message_hash(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

RedundantContext::RedundantContext(vmpi::Context& ctx, RedundancyConfig config)
    : ctx_(ctx), config_(config) {
  if (config_.replication < 1) throw std::invalid_argument("replication < 1");
  if (ctx.size() % config_.replication != 0) {
    throw std::invalid_argument("world size not divisible by replication degree");
  }
  if (config_.correct && config_.replication < 3) {
    // Correction requires a majority; silently degrade to detection, like
    // redMPI running in dual-redundancy mode.
    config_.correct = false;
  }
  app_size_ = ctx.size() / config_.replication;
  // Plane-major layout: replica r of app rank a is world rank r*app_size + a.
  replica_ = ctx.rank() / app_size_;
  app_rank_ = ctx.rank() % app_size_;

  // Plane communicator: all app ranks of my replica, ordered by app rank.
  plane_ = ctx_.comm_split(ctx_.world(), /*color=*/replica_, /*key=*/app_rank_);
  // Replica-group communicator: all replicas of my app rank, plane-ordered.
  group_ = ctx_.comm_split(ctx_.world(), /*color=*/config_.replication + app_rank_,
                           /*key=*/replica_);
  if (plane_ == nullptr || group_ == nullptr) {
    throw std::logic_error("redundancy communicator setup failed");
  }
}

vmpi::Err RedundantContext::send(int dest, int tag, const void* data, std::size_t bytes) {
  return ctx_.send(*plane_, dest, tag, data, bytes);
}

vmpi::Err RedundantContext::recv(int src, int tag, void* buffer, std::size_t bytes,
                                 vmpi::MsgStatus* status) {
  vmpi::Err e = ctx_.recv(*plane_, src, tag, buffer, bytes, status);
  if (e != vmpi::Err::kSuccess) return e;
  ++stats_.messages;
  if (!config_.detect || config_.replication < 2) return e;
  return compare_and_correct(buffer, bytes);
}

vmpi::Err RedundantContext::barrier() { return ctx_.barrier(*plane_); }

vmpi::Err RedundantContext::allreduce(vmpi::ReduceOp op, vmpi::Dtype dtype, const void* in,
                                      void* out, std::size_t count) {
  vmpi::Err e = ctx_.allreduce(*plane_, op, dtype, in, out, count);
  if (e != vmpi::Err::kSuccess) return e;
  ++stats_.messages;
  if (!config_.detect || config_.replication < 2) return e;
  return compare_and_correct(out, count * vmpi::dtype_size(dtype));
}

vmpi::Err RedundantContext::compare_and_correct(void* buffer, std::size_t bytes) {
  // redMPI's online detection: the replicas of this app rank compare hashes
  // of the data each one received. Replica 0 gathers and redistributes the
  // hash vector; every replica then derives the same verdict locally.
  const std::uint64_t mine = message_hash(buffer, bytes);
  const int r = config_.replication;

  std::vector<std::uint64_t> hashes(static_cast<std::size_t>(r), 0);
  vmpi::Err e = ctx_.gather(*group_, 0, &mine, sizeof mine, hashes.data());
  if (e != vmpi::Err::kSuccess) return e;
  e = ctx_.bcast(*group_, 0, hashes.data(), hashes.size() * sizeof(std::uint64_t));
  if (e != vmpi::Err::kSuccess) return e;

  bool any_divergence = false;
  for (int i = 1; i < r; ++i) {
    if (hashes[static_cast<std::size_t>(i)] != hashes[0]) any_divergence = true;
  }
  if (!any_divergence) return vmpi::Err::kSuccess;
  ++stats_.divergences;

  // Majority vote (strict majority required, like triple-redundant redMPI).
  std::uint64_t majority = 0;
  int best_count = 0;
  for (int i = 0; i < r; ++i) {
    int count = 0;
    for (int j = 0; j < r; ++j) count += hashes[j] == hashes[i] ? 1 : 0;
    if (count > best_count) {
      best_count = count;
      majority = hashes[static_cast<std::size_t>(i)];
    }
  }
  if (best_count <= r / 2) majority = 0;

  if (majority == 0 || !config_.correct) {
    // Detected but not corrected (dual redundancy, correction disabled, or
    // a no-majority split).
    ++stats_.uncorrectable;
    return vmpi::Err::kSuccess;
  }

  // Correction: the lowest majority-holding replica re-sends the payload to
  // each diverged replica. All group members derive the same plan.
  int source = -1;
  for (int i = 0; i < r; ++i) {
    if (hashes[static_cast<std::size_t>(i)] == majority) {
      source = i;
      break;
    }
  }
  for (int i = 0; i < r; ++i) {
    if (hashes[static_cast<std::size_t>(i)] == majority) continue;
    if (group_->my_rank == source) {
      e = ctx_.send(*group_, i, kCorrectionTag, buffer, bytes);
    } else if (group_->my_rank == i) {
      e = ctx_.recv(*group_, source, kCorrectionTag, buffer, bytes);
      if (e == vmpi::Err::kSuccess) ++stats_.corrected;
    }
    if (e != vmpi::Err::kSuccess) return e;
  }
  return vmpi::Err::kSuccess;
}

}  // namespace exasim::redundancy
