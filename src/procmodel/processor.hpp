#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace exasim {

/// Processor model parameters.
///
/// xSim scales native execution time onto the simulated processor; the paper
/// (§V-C) runs the simulated node at 1000x *slower* than one 1.7 GHz AMD
/// Opteron 6164 HE core. We support both paths:
///  * measured: native (host) time is first normalized from the host to the
///    reference core (`host_to_reference`), then slowed by `slowdown`;
///  * modeled: work is described in reference-core terms (seconds or
///    abstract work units at `reference_ns_per_unit`), then slowed.
struct ProcessorParams {
  double slowdown = 1000.0;          ///< Simulated node vs. reference core.
  double host_to_reference = 1.0;    ///< Host-second → reference-second factor.
  double reference_ns_per_unit = 1.0;  ///< Reference-core cost per work unit.
};

class ProcessorModel {
 public:
  explicit ProcessorModel(ProcessorParams params);

  const ProcessorParams& params() const { return params_; }

  /// Scales a measured native (host) duration to simulated time.
  SimTime scale_native(SimTime native) const;

  /// Simulated time to execute `units` abstract work units.
  SimTime work_time(double units) const;

  /// Simulated time for a duration expressed in reference-core seconds.
  SimTime reference_seconds(double s) const;

 private:
  ProcessorParams params_;
};

}  // namespace exasim
