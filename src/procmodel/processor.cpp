#include "procmodel/processor.hpp"

#include <stdexcept>

namespace exasim {

ProcessorModel::ProcessorModel(ProcessorParams params) : params_(params) {
  if (params_.slowdown <= 0.0 || params_.host_to_reference <= 0.0 ||
      params_.reference_ns_per_unit < 0.0) {
    throw std::invalid_argument("bad processor parameters");
  }
}

SimTime ProcessorModel::scale_native(SimTime native) const {
  return static_cast<SimTime>(static_cast<double>(native) * params_.host_to_reference *
                                  params_.slowdown +
                              0.5);
}

SimTime ProcessorModel::work_time(double units) const {
  if (units < 0.0) throw std::invalid_argument("negative work");
  return static_cast<SimTime>(units * params_.reference_ns_per_unit * params_.slowdown + 0.5);
}

SimTime ProcessorModel::reference_seconds(double s) const {
  if (s < 0.0) throw std::invalid_argument("negative time");
  return sim_seconds(s * params_.slowdown);
}

}  // namespace exasim
