#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "mc/lattice.hpp"
#include "mc/signature.hpp"

namespace exasim::mc {

/// Result of one mc::explore call: lattice geometry echo, equivalence
/// classes, the resilience analyses, and the exploration accounting.
///
/// Byte-identity contract: to_json() emits only integers and config-echo
/// strings — no floating point, no wall-clock, no host identity — and every
/// container is emitted in a deterministically sorted order, so the same
/// lattice produces the same bytes on any host at any `--jobs` setting
/// (the property tests/test_mc and the CI mc-check gate pin).
struct McReport {
  // --- configuration echo -------------------------------------------------
  std::string app;                ///< Application name ("heat3d", ...).
  std::string app_params;         ///< Canonicalized --app-params text.
  int ranks = 0;
  LatticeSpec spec;               ///< Resolved spec (window/quantum filled in).
  std::vector<LatticeRow> rows;
  std::vector<std::string> detector_names;  ///< Canonical spec strings.
  std::vector<std::string> policy_names;
  std::int64_t finest_points = 0;  ///< Per-row finest-grid cardinality F.
  SimTime finest_step = 0;

  // --- exploration accounting ---------------------------------------------
  std::uint64_t raw_scenarios = 0;  ///< rows * F: the lattice answered for.
  std::uint64_t explored = 0;       ///< Scenario evaluations actually run.
  std::uint64_t pruned = 0;         ///< Finest points inferred by equivalence.
  std::uint64_t unknown = 0;        ///< Finest points inside frontier gaps.
  std::uint64_t baseline_runs = 0;  ///< Failure-free probes (not scenarios).
  std::uint64_t eval_errors = 0;    ///< Evaluations that threw.
  bool budget_exhausted = false;
  std::vector<SimTime> baseline_e2;  ///< Failure-free E2 per policy (ns).

  // --- equivalence classes -------------------------------------------------
  struct Class {
    std::uint64_t signature = 0;
    std::uint64_t covered = 0;  ///< Finest points assigned to this class.
    std::size_t row = 0;        ///< Representative: first member in scan order.
    SimTime time = 0;
    ScenarioOutcome rep;
  };
  std::vector<Class> classes;  ///< Sorted by (covered desc, signature).

  // --- analyses -------------------------------------------------------------
  struct WorstLatency {
    bool any = false;
    std::size_t row = 0;
    SimTime time = 0;        ///< Injection time of the worst scenario.
    SimTime latency = 0;     ///< Worst per-observer detection latency (ns).
  };
  WorstLatency worst_latency;

  /// Maximal injection-time interval of one row over which every evaluated
  /// scenario left at least one live (aborted) rank without the failure
  /// notice.
  struct MissedWindow {
    std::size_t row = 0;
    SimTime t_lo = 0, t_hi = 0;
    int max_missed = 0;  ///< Worst per-scenario missed-rank count inside.
  };
  std::uint64_t missed_scenarios = 0;  ///< Evaluated scenarios with misses.
  int max_missed = 0;
  std::vector<MissedWindow> missed_windows;

  /// Injecting *later* cost *less* (E2 dropped by more than one quantum
  /// between adjacent evaluated points of a row) — the non-monotonic
  /// recovery-cost anomalies the checker is after: they mark checkpoint
  /// cliffs where delaying a failure crosses a commit boundary.
  struct NonMonotonic {
    std::size_t row = 0;
    SimTime t_lo = 0, t_hi = 0;
    SimTime e2_drop = 0;  ///< baseline-detrended E2 decrease (ns).
  };
  std::vector<NonMonotonic> non_monotonic;

  /// Signature changes localized to one finest-grid step (fully bisected),
  /// and those left wider because the budget ran out (the frontier a rerun
  /// with a larger --mc-budget would refine next).
  struct Boundary {
    std::size_t row = 0;
    SimTime t_lo = 0, t_hi = 0;
  };
  std::vector<Boundary> boundaries;
  std::vector<Boundary> frontier;

  /// Machine-readable form (see byte-identity contract above).
  std::string to_json() const;
  /// Human summary to `out` (counts, worst cases, anomalies).
  void print_summary(std::FILE* out) const;
};

}  // namespace exasim::mc
