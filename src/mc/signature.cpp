#include "mc/signature.hpp"

#include <algorithm>

namespace exasim::mc {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer as the combining step.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

std::int64_t quantize(std::int64_t value, std::int64_t quantum) {
  if (quantum <= 0) return value;
  // Floor division so negative excursions (e.g. E2 below baseline) still
  // bucket consistently.
  std::int64_t q = value / quantum;
  if (value % quantum != 0 && value < 0) --q;
  return q;
}

}  // namespace

std::uint64_t signature_of(const ScenarioOutcome& o, SimTime quantum,
                           SimTime baseline_e2) {
  std::uint64_t h = 0x5eed0f5eed0f5eedull;
  if (!o.error.empty()) {
    h = mix(h, 0xe7707e77ull);
    for (const char c : o.error) h = mix(h, static_cast<std::uint8_t>(c));
    return h;
  }
  h = mix(h, o.completed ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(o.launches));
  h = mix(h, static_cast<std::uint64_t>(o.failures));
  h = mix(h, o.actual_fail_time == kSimTimeNever ? 0 : 1);
  h = mix(h, o.aborted ? 1 : 0);
  h = mix(h, static_cast<std::uint64_t>(o.abort_origin + 1));
  h = mix(h, o.notices);
  h = mix(h, static_cast<std::uint64_t>(o.missed_notifications));
  const auto sq = static_cast<std::int64_t>(quantum);
  h = mix(h, static_cast<std::uint64_t>(
                 quantize(static_cast<std::int64_t>(o.max_detection_latency), sq)));
  h = mix(h, static_cast<std::uint64_t>(
                 quantize(static_cast<std::int64_t>(o.mean_detection_latency), sq)));
  const std::int64_t abort_lag =
      (o.aborted && o.actual_fail_time != kSimTimeNever)
          ? static_cast<std::int64_t>(o.abort_time) -
                static_cast<std::int64_t>(o.actual_fail_time)
          : 0;
  h = mix(h, static_cast<std::uint64_t>(quantize(abort_lag, sq)));
  h = mix(h, static_cast<std::uint64_t>(
                 quantize(static_cast<std::int64_t>(o.e2) -
                              static_cast<std::int64_t>(baseline_e2),
                          sq)));
  return h;
}

}  // namespace exasim::mc
