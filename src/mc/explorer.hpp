#pragma once

#include "core/runner.hpp"
#include "mc/lattice.hpp"
#include "mc/report.hpp"
#include "vmpi/process.hpp"

namespace exasim::mc {

/// Everything mc::explore needs: the lattice to answer for, the machine and
/// runner configuration every scenario shares, and the application under
/// test.
struct ExplorerConfig {
  LatticeSpec lattice;

  /// Shared per-launch machine configuration. `base.failures`,
  /// `base.initial_time`, `base.detector` and `base.ckpt_mode` are overridden
  /// per scenario; `system_mttf` / `first_run_failures` must be left empty —
  /// the explorer owns failure injection.
  core::RunnerConfig runner;

  vmpi::AppMain app;
  std::string app_name;
  std::string app_params;  ///< Echo for the report.

  /// Campaign-level parallelism (exp::resolve_jobs semantics: -1 =
  /// EXASIM_JOBS, 0 = all hardware threads).
  int jobs = -1;

  /// Per-wave progress callback (wave number, evaluations so far, raw
  /// lattice size). Optional; called from the coordinating thread only.
  std::function<void(int wave, std::uint64_t explored, std::uint64_t raw)> progress;
};

/// Runs the model-checking loop (DESIGN.md §15):
///
///  1. Failure-free probe per recovery policy -> baseline E2 (also derives
///     the injection window when the spec left it open).
///  2. Wave 0: evaluate the coarse grid of every row in parallel
///     (exp::ParallelExecutor; results keyed by item index, so any --jobs
///     value yields identical state).
///  3. Refinement waves: subdivide exactly the intervals whose endpoint
///     signatures disagree (all intervals when pruning is off), until the
///     finest grid, the budget, or convergence.
///  4. Classify, then scan for worst detection latency, missed-notification
///     windows, non-monotonic recovery cost, and boundary/frontier intervals.
///
/// Throws std::invalid_argument on an unusable spec (no victims/detectors/
/// policies, victim out of range).
McReport explore(const ExplorerConfig& config);

/// Evaluates a single scenario (exposed for tests): one ResilientRunner run
/// with `victim` killed at absolute time `t` under the row's detector and
/// recovery policy.
ScenarioOutcome evaluate_scenario(const core::RunnerConfig& runner,
                                  const vmpi::AppMain& app, const LatticeRow& row,
                                  const LatticeSpec& spec, SimTime t);

}  // namespace exasim::mc
