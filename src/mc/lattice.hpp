#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/tiered.hpp"
#include "resilience/detector.hpp"
#include "util/time.hpp"

namespace exasim::mc {

/// The discrete part of one lattice row: which rank is killed, which detector
/// model governs notice delivery, and which recovery (checkpoint placement)
/// policy the restart uses. The injection-*time* axis is the continuous
/// dimension the explorer refines adaptively per row (DESIGN.md §15).
struct LatticeRow {
  int victim = 0;
  std::size_t detector_index = 0;
  std::size_t policy_index = 0;
};

/// Configuration of the failure-scenario lattice explored by mc::explore.
///
/// The time axis is an integer grid: the *finest* grid has
///   F = (grid - 1) * 2^depth + 1
/// points across [window_lo, window_hi]; the explorer starts from the `grid`
/// coarse points (every 2^depth-th finest index) and subdivides only the
/// intervals whose endpoint outcome signatures disagree, so a discontinuity
/// (an abort-time boundary, a checkpoint-interval cliff) ends up localized
/// within one finest-grid step while flat regions cost two evaluations total.
struct LatticeSpec {
  std::vector<int> victims;                           ///< World ranks to kill.
  std::vector<resilience::DetectorSpec> detectors;    ///< Detector axis.
  std::vector<ckpt::CkptMode> policies;               ///< Recovery-policy axis.

  /// Injection window (absolute virtual time of the first launch). A zero
  /// window_hi means "derive from a failure-free probe run": the explorer
  /// sets [0, 1.05 * max over policies of the baseline E2], so the lattice
  /// straddles the completion boundary where injection stops mattering.
  SimTime window_lo = 0;
  SimTime window_hi = 0;

  int grid = 9;    ///< Initial grid points per row (>= 2).
  int depth = 4;   ///< Refinement depth (>= 0).
  bool prune = true;       ///< false = evaluate the full finest grid.
  std::uint64_t budget = 0;  ///< Max scenario evaluations; 0 = unlimited.

  /// Outcome-signature quantization step for the continuous fields
  /// (detection latencies, abort lag, E2 excess). 0 = derive from the
  /// machine's failure timeout (its natural outcome resolution).
  SimTime quantum = 0;
};

/// Expanded lattice geometry: rows plus the integer time grid. Times are
/// pure integer arithmetic on the finest-grid index, so every refinement
/// midpoint is an exact finest-grid member and the schedule is identical on
/// every host and job count.
class ScenarioLattice {
 public:
  explicit ScenarioLattice(LatticeSpec spec);

  const LatticeSpec& spec() const { return spec_; }
  const std::vector<LatticeRow>& rows() const { return rows_; }

  /// Finest-grid point count F (per row).
  std::int64_t finest_points() const { return finest_points_; }
  /// Total lattice cardinality at the finest resolution = rows * F — the
  /// "raw scenarios" the explorer answers for.
  std::uint64_t raw_scenarios() const {
    return rows_.size() * static_cast<std::uint64_t>(finest_points_);
  }
  /// Virtual-time distance between adjacent finest-grid points.
  SimTime finest_step() const;
  /// Injection time of finest-grid index f (0 <= f < finest_points).
  SimTime time_of(std::int64_t f) const;
  /// Finest-grid indices of the initial coarse grid (spacing 2^depth).
  std::vector<std::int64_t> initial_indices() const;

 private:
  LatticeSpec spec_;
  std::vector<LatticeRow> rows_;
  std::int64_t finest_points_ = 0;
};

/// Parses "0,5,63", "stride:K" (ranks 0, K, 2K, ...), or "all" against the
/// machine's rank count. Returns nullopt on malformed input or out-of-range
/// ranks.
std::optional<std::vector<int>> parse_victims(const std::string& text, int ranks);

/// Parses a ';'-separated list of detector specs (';' because specs contain
/// ',' options), e.g. "paper-instant;timeout;heartbeat:period=auto,miss=3".
std::optional<std::vector<resilience::DetectorSpec>> parse_detector_list(
    const std::string& text);

/// Parses a ','-separated list of recovery policies, e.g. "pfs,partner".
std::optional<std::vector<ckpt::CkptMode>> parse_policy_list(const std::string& text);

}  // namespace exasim::mc
