#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace exasim::mc {

/// The resilience-relevant outcome of one scenario evaluation (one
/// ResilientRunner run with a single injected failure). This is the record
/// the signature hashes, the report aggregates, and the analyses (worst
/// latency, missed-notification windows, non-monotonic recovery cost) scan.
struct ScenarioOutcome {
  bool completed = false;
  int launches = 0;
  int failures = 0;           ///< Activated failures across all launches (F).
  SimTime e2 = 0;             ///< Total simulated time including restarts.
  /// When the injected failure actually fired in launch 0 (kSimTimeNever if
  /// the app completed first and the injection was a no-op).
  SimTime actual_fail_time = kSimTimeNever;
  bool aborted = false;
  SimTime abort_time = 0;     ///< Launch-0 abort time (0 when !aborted).
  int abort_origin = -1;      ///< Rank that initiated the abort (-1 = none).
  std::uint64_t notices = 0;  ///< Failure notices delivered in launch 0.
  SimTime max_detection_latency = 0;   ///< Launch-0 worst observer latency.
  SimTime mean_detection_latency = 0;  ///< Launch-0 mean observer latency (ns).
  /// Live ranks the failure notice never reached: ranks (other than the
  /// victim) that ended launch 0 aborted or deadlocked *without* a
  /// NoticeArrival record for the injected failure — they were cut off by
  /// the abort before detection reached them (DESIGN.md §15).
  int missed_notifications = 0;
  /// Non-empty when the evaluation itself threw; such scenarios class by
  /// error text and are excluded from the latency/cost analyses.
  std::string error;
};

/// Equivalence-class signature of an outcome. Discrete fields (completion,
/// launch/failure counts, abort origin, notice and missed counts) hash
/// exactly; continuous times hash *detrended and quantized*:
///
///   - detection latencies and the abort lag (abort_time - actual_fail_time)
///     in units of `quantum`,
///   - E2 as its excess over the failure-free baseline of the same recovery
///     policy (`baseline_e2`), in units of `quantum`.
///
/// Raw injection/abort/finish times deliberately do not participate: they
/// advance with the injection time itself, so hashing them would put every
/// grid point in its own class and defeat pruning. Two scenarios with equal
/// signatures are "the same failure story" — same detection path, same
/// abort/recovery shape, same cost to within quantum.
std::uint64_t signature_of(const ScenarioOutcome& o, SimTime quantum,
                           SimTime baseline_e2);

}  // namespace exasim::mc
