#include "mc/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace exasim::mc {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_int(std::string& out, std::int64_t v) { out += std::to_string(v); }

void append_hex(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"%016" PRIx64 "\"", v);
  out += buf;
}

/// kSimTimeNever renders as -1: the JSON carries only small signed integers.
void append_time(std::string& out, SimTime t) {
  if (t == kSimTimeNever) {
    out += "-1";
    return;
  }
  append_int(out, static_cast<std::int64_t>(t));
}

void append_outcome(std::string& out, const ScenarioOutcome& o) {
  out += "{\"completed\":";
  append_int(out, o.completed ? 1 : 0);
  out += ",\"launches\":";
  append_int(out, o.launches);
  out += ",\"failures\":";
  append_int(out, o.failures);
  out += ",\"e2_ns\":";
  append_time(out, o.e2);
  out += ",\"fail_time_ns\":";
  append_time(out, o.actual_fail_time);
  out += ",\"aborted\":";
  append_int(out, o.aborted ? 1 : 0);
  out += ",\"abort_time_ns\":";
  append_time(out, o.abort_time);
  out += ",\"abort_origin\":";
  append_int(out, o.abort_origin);
  out += ",\"notices\":";
  append_int(out, static_cast<std::int64_t>(o.notices));
  out += ",\"max_detection_latency_ns\":";
  append_time(out, o.max_detection_latency);
  out += ",\"mean_detection_latency_ns\":";
  append_time(out, o.mean_detection_latency);
  out += ",\"missed_notifications\":";
  append_int(out, o.missed_notifications);
  out += ",\"error\":";
  append_escaped(out, o.error);
  out += "}";
}

template <typename T, typename Fn>
void append_array(std::string& out, const std::vector<T>& items, Fn&& one) {
  out += "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n    ";
    one(out, items[i]);
  }
  if (!items.empty()) out += "\n  ";
  out += "]";
}

void append_interval(std::string& out, const McReport::Boundary& b) {
  out += "{\"row\":";
  append_int(out, static_cast<std::int64_t>(b.row));
  out += ",\"t_lo_ns\":";
  append_time(out, b.t_lo);
  out += ",\"t_hi_ns\":";
  append_time(out, b.t_hi);
  out += "}";
}

double to_sec(SimTime t) { return static_cast<double>(t) * 1e-9; }

}  // namespace

std::string McReport::to_json() const {
  // Hand-rolled for a pinned, diffable byte layout: fixed key order,
  // integers and config strings only (see the header's byte-identity
  // contract). The CI mc-check golden and the jobs-identity test both
  // compare these bytes directly.
  std::string out;
  out.reserve(4096);
  out += "{\n";
  out += "  \"app\": ";
  append_escaped(out, app);
  out += ",\n  \"app_params\": ";
  append_escaped(out, app_params);
  out += ",\n  \"ranks\": ";
  append_int(out, ranks);
  out += ",\n  \"window_lo_ns\": ";
  append_time(out, spec.window_lo);
  out += ",\n  \"window_hi_ns\": ";
  append_time(out, spec.window_hi);
  out += ",\n  \"grid\": ";
  append_int(out, spec.grid);
  out += ",\n  \"depth\": ";
  append_int(out, spec.depth);
  out += ",\n  \"prune\": ";
  append_int(out, spec.prune ? 1 : 0);
  out += ",\n  \"budget\": ";
  append_int(out, static_cast<std::int64_t>(spec.budget));
  out += ",\n  \"quantum_ns\": ";
  append_time(out, spec.quantum);
  out += ",\n  \"victims\": ";
  append_array(out, spec.victims,
               [](std::string& o, int v) { append_int(o, v); });
  out += ",\n  \"detectors\": ";
  append_array(out, detector_names,
               [](std::string& o, const std::string& s) { append_escaped(o, s); });
  out += ",\n  \"policies\": ";
  append_array(out, policy_names,
               [](std::string& o, const std::string& s) { append_escaped(o, s); });
  out += ",\n  \"rows\": ";
  append_array(out, rows, [](std::string& o, const LatticeRow& r) {
    o += "{\"victim\":";
    append_int(o, r.victim);
    o += ",\"detector\":";
    append_int(o, static_cast<std::int64_t>(r.detector_index));
    o += ",\"policy\":";
    append_int(o, static_cast<std::int64_t>(r.policy_index));
    o += "}";
  });
  out += ",\n  \"finest_points\": ";
  append_int(out, finest_points);
  out += ",\n  \"finest_step_ns\": ";
  append_time(out, finest_step);
  out += ",\n  \"raw_scenarios\": ";
  append_int(out, static_cast<std::int64_t>(raw_scenarios));
  out += ",\n  \"explored\": ";
  append_int(out, static_cast<std::int64_t>(explored));
  out += ",\n  \"pruned\": ";
  append_int(out, static_cast<std::int64_t>(pruned));
  out += ",\n  \"unknown\": ";
  append_int(out, static_cast<std::int64_t>(unknown));
  out += ",\n  \"baseline_runs\": ";
  append_int(out, static_cast<std::int64_t>(baseline_runs));
  out += ",\n  \"eval_errors\": ";
  append_int(out, static_cast<std::int64_t>(eval_errors));
  out += ",\n  \"budget_exhausted\": ";
  append_int(out, budget_exhausted ? 1 : 0);
  out += ",\n  \"baseline_e2_ns\": ";
  append_array(out, baseline_e2,
               [](std::string& o, SimTime t) { append_time(o, t); });
  out += ",\n  \"classes\": ";
  append_array(out, classes, [](std::string& o, const Class& c) {
    o += "{\"signature\":";
    append_hex(o, c.signature);
    o += ",\"covered\":";
    append_int(o, static_cast<std::int64_t>(c.covered));
    o += ",\"row\":";
    append_int(o, static_cast<std::int64_t>(c.row));
    o += ",\"time_ns\":";
    append_time(o, c.time);
    o += ",\"outcome\":";
    append_outcome(o, c.rep);
    o += "}";
  });
  out += ",\n  \"worst_detection_latency\": {\"any\":";
  append_int(out, worst_latency.any ? 1 : 0);
  out += ",\"row\":";
  append_int(out, static_cast<std::int64_t>(worst_latency.row));
  out += ",\"time_ns\":";
  append_time(out, worst_latency.time);
  out += ",\"latency_ns\":";
  append_time(out, worst_latency.latency);
  out += "}";
  out += ",\n  \"missed\": {\"scenarios\":";
  append_int(out, static_cast<std::int64_t>(missed_scenarios));
  out += ",\"max_missed\":";
  append_int(out, max_missed);
  out += ",\"windows\":";
  append_array(out, missed_windows, [](std::string& o, const MissedWindow& w) {
    o += "{\"row\":";
    append_int(o, static_cast<std::int64_t>(w.row));
    o += ",\"t_lo_ns\":";
    append_time(o, w.t_lo);
    o += ",\"t_hi_ns\":";
    append_time(o, w.t_hi);
    o += ",\"max_missed\":";
    append_int(o, w.max_missed);
    o += "}";
  });
  out += "}";
  out += ",\n  \"non_monotonic\": ";
  append_array(out, non_monotonic, [](std::string& o, const NonMonotonic& n) {
    o += "{\"row\":";
    append_int(o, static_cast<std::int64_t>(n.row));
    o += ",\"t_lo_ns\":";
    append_time(o, n.t_lo);
    o += ",\"t_hi_ns\":";
    append_time(o, n.t_hi);
    o += ",\"e2_drop_ns\":";
    append_time(o, n.e2_drop);
    o += "}";
  });
  out += ",\n  \"boundaries\": ";
  append_array(out, boundaries, append_interval);
  out += ",\n  \"frontier\": ";
  append_array(out, frontier, append_interval);
  out += "\n}\n";
  return out;
}

void McReport::print_summary(std::FILE* out) const {
  std::fprintf(out, "exasim_mc: %s x %d ranks, %zu rows (%zu victims x %zu detectors x %zu policies)\n",
               app.c_str(), ranks, rows.size(), spec.victims.size(),
               spec.detectors.size(), spec.policies.size());
  std::fprintf(out, "  window [%.6f s, %.6f s], finest grid %" PRId64
                    " pts/row (step %.6f s), quantum %.3f ms\n",
               to_sec(spec.window_lo), to_sec(spec.window_hi), finest_points,
               to_sec(finest_step), to_sec(spec.quantum) * 1e3);
  std::fprintf(out, "  lattice: %" PRIu64 " raw scenarios -> %" PRIu64
                    " explored, %" PRIu64 " pruned by equivalence, %" PRIu64
                    " unknown (%" PRIu64 " eval errors)\n",
               raw_scenarios, explored, pruned, unknown, eval_errors);
  if (budget_exhausted) {
    std::fprintf(out, "  budget of %" PRIu64
                      " exhausted: %zu frontier interval(s) left unrefined\n",
                 spec.budget, frontier.size());
  }
  std::fprintf(out, "  %zu outcome class(es):\n", classes.size());
  const std::size_t show = std::min<std::size_t>(classes.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    const Class& c = classes[i];
    std::fprintf(out, "    %016" PRIx64 "  covers %6" PRIu64
                      "  e.g. row %zu t=%.6f s: launches=%d missed=%d%s\n",
                 c.signature, c.covered, c.row, to_sec(c.time), c.rep.launches,
                 c.rep.missed_notifications,
                 c.rep.error.empty() ? "" : " (error)");
  }
  if (classes.size() > show) {
    std::fprintf(out, "    ... %zu more\n", classes.size() - show);
  }
  if (worst_latency.any) {
    std::fprintf(out, "  worst detection latency: %.6f s (row %zu, injection t=%.6f s)\n",
                 to_sec(worst_latency.latency), worst_latency.row,
                 to_sec(worst_latency.time));
  }
  std::fprintf(out, "  missed notifications: %" PRIu64
                    " scenario(s), worst %d rank(s) uninformed, %zu window(s)\n",
               missed_scenarios, max_missed, missed_windows.size());
  for (const MissedWindow& w : missed_windows) {
    std::fprintf(out, "    row %zu: t in [%.6f s, %.6f s], up to %d rank(s)\n",
                 w.row, to_sec(w.t_lo), to_sec(w.t_hi), w.max_missed);
  }
  std::fprintf(out, "  non-monotonic recovery cost: %zu interval(s)\n",
               non_monotonic.size());
  for (const NonMonotonic& n : non_monotonic) {
    std::fprintf(out, "    row %zu: injecting at %.6f s costs %.6f s MORE than at %.6f s\n",
                 n.row, to_sec(n.t_lo), to_sec(n.e2_drop), to_sec(n.t_hi));
  }
  std::fprintf(out, "  %zu signature boundar%s localized to one grid step, %zu frontier interval(s)\n",
               boundaries.size(), boundaries.size() == 1 ? "y" : "ies",
               frontier.size());
}

}  // namespace exasim::mc
