#include "mc/lattice.hpp"

#include <algorithm>

#include "util/parse.hpp"

namespace exasim::mc {

ScenarioLattice::ScenarioLattice(LatticeSpec spec) : spec_(std::move(spec)) {
  spec_.grid = std::max(spec_.grid, 2);
  spec_.depth = std::clamp(spec_.depth, 0, 20);
  if (spec_.window_hi < spec_.window_lo) spec_.window_hi = spec_.window_lo;
  finest_points_ =
      static_cast<std::int64_t>(spec_.grid - 1) * (std::int64_t{1} << spec_.depth) + 1;
  // Row order is the report/schedule order: victim-major, then detector, then
  // policy — fixed so mc-report.json is stable across flag spellings.
  rows_.reserve(spec_.victims.size() * spec_.detectors.size() * spec_.policies.size());
  for (std::size_t v = 0; v < spec_.victims.size(); ++v) {
    for (std::size_t d = 0; d < spec_.detectors.size(); ++d) {
      for (std::size_t p = 0; p < spec_.policies.size(); ++p) {
        rows_.push_back(LatticeRow{spec_.victims[v], d, p});
      }
    }
  }
}

SimTime ScenarioLattice::finest_step() const {
  return (spec_.window_hi - spec_.window_lo) / std::max<std::int64_t>(finest_points_ - 1, 1);
}

SimTime ScenarioLattice::time_of(std::int64_t f) const {
  const std::int64_t span = finest_points_ - 1;
  if (span <= 0) return spec_.window_lo;
  // Integer interpolation keyed on the finest index: deterministic and exact
  // at both window endpoints. (window * f stays well inside int64 for any
  // realistic window/grid: hours of virtual time x tens of thousands of
  // points.)
  return spec_.window_lo + (spec_.window_hi - spec_.window_lo) * f / span;
}

std::vector<std::int64_t> ScenarioLattice::initial_indices() const {
  const std::int64_t stride = std::int64_t{1} << spec_.depth;
  std::vector<std::int64_t> out;
  out.reserve(spec_.grid);
  for (std::int64_t f = 0; f < finest_points_; f += stride) out.push_back(f);
  return out;
}

std::optional<std::vector<int>> parse_victims(const std::string& text, int ranks) {
  std::vector<int> out;
  if (text == "all") {
    for (int r = 0; r < ranks; ++r) out.push_back(r);
    return out;
  }
  if (text.rfind("stride:", 0) == 0) {
    try {
      const int stride = std::stoi(text.substr(7));
      if (stride <= 0) return std::nullopt;
      for (int r = 0; r < ranks; r += stride) out.push_back(r);
      return out;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  for (const auto& piece : split_trimmed(text, ',')) {
    try {
      const int r = std::stoi(piece);
      if (r < 0 || r >= ranks) return std::nullopt;
      out.push_back(r);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<resilience::DetectorSpec>> parse_detector_list(
    const std::string& text) {
  std::vector<resilience::DetectorSpec> out;
  for (const auto& piece : split_trimmed(text, ';')) {
    auto spec = resilience::parse_detector_spec(piece);
    if (!spec) return std::nullopt;
    out.push_back(*spec);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<ckpt::CkptMode>> parse_policy_list(const std::string& text) {
  std::vector<ckpt::CkptMode> out;
  for (const auto& piece : split_trimmed(text, ',')) {
    auto mode = ckpt::parse_ckpt_mode(piece);
    if (!mode) return std::nullopt;
    out.push_back(*mode);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace exasim::mc
