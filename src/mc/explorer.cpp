#include "mc/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "exp/executor.hpp"

namespace exasim::mc {
namespace {

/// One evaluated lattice point.
struct Eval {
  ScenarioOutcome outcome;
  std::uint64_t sig = 0;
};

/// Evaluated points of one row, keyed by finest-grid index.
using RowEvals = std::map<std::int64_t, Eval>;

bool usable(const Eval& e) { return e.outcome.error.empty(); }
bool activated(const Eval& e) {
  return usable(e) && e.outcome.actual_fail_time != kSimTimeNever;
}

}  // namespace

ScenarioOutcome evaluate_scenario(const core::RunnerConfig& runner,
                                  const vmpi::AppMain& app, const LatticeRow& row,
                                  const LatticeSpec& spec, SimTime t) {
  core::RunnerConfig rc = runner;
  rc.system_mttf.reset();
  rc.base.failures.clear();
  rc.base.initial_time = 0;
  rc.base.detector = spec.detectors[row.detector_index];
  rc.base.ckpt_mode = ckpt::to_string(spec.policies[row.policy_index]);
  rc.first_run_failures = {FailureSpec{row.victim, t}};

  core::ResilientRunner engine(std::move(rc), app);
  const core::RunnerResult res = engine.run();

  ScenarioOutcome o;
  o.completed = res.completed;
  o.launches = res.launches;
  o.failures = res.failures;
  o.e2 = res.total_time;
  if (res.run_results.empty()) {
    o.error = "runner produced no launches";
    return o;
  }
  const core::SimResult& launch0 = res.run_results.front();
  for (const FailureSpec& f : launch0.activated_failures) {
    if (f.rank == row.victim) {
      o.actual_fail_time = f.time;
      break;
    }
  }
  o.aborted = launch0.abort_time.has_value();
  o.abort_time = launch0.abort_time.value_or(0);
  o.abort_origin = launch0.abort_origin;
  o.notices = launch0.failure_notices;
  o.max_detection_latency = launch0.max_detection_latency;
  o.mean_detection_latency =
      static_cast<SimTime>(std::llround(launch0.mean_detection_latency_sec * 1e9));
  if (o.actual_fail_time != kSimTimeNever) {
    for (std::size_t r = 0; r < launch0.rank_outcomes.size(); ++r) {
      if (static_cast<int>(r) == row.victim) continue;
      const auto out = launch0.rank_outcomes[r];
      // "Live rank the notice never reached": it ended launch 0 aborted (or
      // never terminated at all), so it needed the failure notice — did one
      // arrive within its lifetime? Notices can be *delivered* after the
      // rank's logical end time (a blocked process only activates a pending
      // abort at engine stall, after the event queue — including late
      // detector notices — has drained), so arrival <= end_time is the
      // informed-in-time predicate, not mere record existence.
      if (out != vmpi::ProcOutcome::kAborted && out != vmpi::ProcOutcome::kRunning) {
        continue;
      }
      const SimTime horizon = out == vmpi::ProcOutcome::kRunning
                                  ? kSimTimeNever
                                  : launch0.rank_end_times[r];
      bool informed = false;
      for (const resilience::NoticeArrival& a : launch0.notice_arrivals) {
        if (a.observer == static_cast<int>(r) && a.failed_rank == row.victim &&
            a.arrival <= horizon) {
          informed = true;
          break;
        }
      }
      if (!informed) ++o.missed_notifications;
    }
  }
  return o;
}

McReport explore(const ExplorerConfig& config) {
  LatticeSpec spec = config.lattice;
  if (spec.victims.empty()) spec.victims = {0};
  if (spec.detectors.empty()) spec.detectors = {resilience::DetectorSpec{}};
  if (spec.policies.empty()) spec.policies = {ckpt::CkptMode::kPfs};
  const int ranks = config.runner.base.ranks;
  for (const int v : spec.victims) {
    if (v < 0 || v >= ranks) {
      throw std::invalid_argument("mc victim rank " + std::to_string(v) +
                                  " outside machine (" + std::to_string(ranks) +
                                  " ranks)");
    }
  }
  if (spec.quantum == 0) {
    const SimTime timeout = config.runner.base.net.failure_timeout;
    spec.quantum = timeout > 0 ? timeout : sim_ms(100);
  }

  exp::ParallelExecutor pool(exp::ExecutorOptions{config.jobs, {}});

  // Failure-free probe per recovery policy: the signature detrends E2
  // against these, and an open window derives its upper edge from them.
  std::vector<SimTime> baseline_e2(spec.policies.size(), 0);
  {
    auto probes = pool.map(spec.policies.size(), [&](std::size_t p) {
      core::RunnerConfig rc = config.runner;
      rc.system_mttf.reset();
      rc.first_run_failures.clear();
      rc.base.failures.clear();
      rc.base.initial_time = 0;
      rc.base.detector = spec.detectors.front();
      rc.base.ckpt_mode = ckpt::to_string(spec.policies[p]);
      core::ResilientRunner engine(std::move(rc), config.app);
      return engine.run().total_time;
    });
    for (std::size_t p = 0; p < probes.size(); ++p) {
      if (!probes[p].ok()) {
        throw std::invalid_argument("mc baseline probe failed for policy " +
                                    std::string(ckpt::to_string(spec.policies[p])) +
                                    ": " + probes[p].error);
      }
      baseline_e2[p] = *probes[p];
    }
  }
  if (spec.window_hi <= spec.window_lo) {
    const SimTime max_e2 = *std::max_element(baseline_e2.begin(), baseline_e2.end());
    // Straddle the completion boundary: injections past E2 are no-ops, and
    // having that regime in-window is what lets bisection localize the
    // boundary itself.
    spec.window_hi = max_e2 + max_e2 / 20;
  }

  const ScenarioLattice lat(spec);
  spec = lat.spec();  // Clamped grid/depth.
  const auto& rows = lat.rows();
  const std::int64_t F = lat.finest_points();

  McReport rep;
  rep.app = config.app_name;
  rep.app_params = config.app_params;
  rep.ranks = ranks;
  rep.spec = spec;
  rep.rows = rows;
  for (const auto& d : spec.detectors) rep.detector_names.push_back(resilience::to_string(d));
  for (const auto& p : spec.policies) rep.policy_names.push_back(ckpt::to_string(p));
  rep.finest_points = F;
  rep.finest_step = lat.finest_step();
  rep.raw_scenarios = lat.raw_scenarios();
  rep.baseline_runs = spec.policies.size();
  rep.baseline_e2 = baseline_e2;

  std::vector<RowEvals> evals(rows.size());
  std::uint64_t explored = 0;

  // Evaluates one wave of (row, finest-index) points. The wave is sorted and
  // mapped by item index, so the evaluated state after every wave — and
  // therefore the whole report — is byte-identical for any --jobs value.
  auto run_wave = [&](std::vector<std::pair<std::size_t, std::int64_t>> wave) {
    std::sort(wave.begin(), wave.end());
    if (spec.budget > 0 && explored + wave.size() > spec.budget) {
      wave.resize(spec.budget > explored ? spec.budget - explored : 0);
      rep.budget_exhausted = true;
    }
    if (wave.empty()) return;
    auto outcomes = pool.map(wave.size(), [&](std::size_t i) {
      const auto [row_idx, fidx] = wave[i];
      return evaluate_scenario(config.runner, config.app, rows[row_idx], spec,
                               lat.time_of(fidx));
    });
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const auto [row_idx, fidx] = wave[i];
      Eval e;
      if (outcomes[i].ok()) {
        e.outcome = *outcomes[i];
      } else {
        e.outcome.error = outcomes[i].error;
        ++rep.eval_errors;
      }
      e.sig = signature_of(e.outcome, spec.quantum,
                           baseline_e2[rows[row_idx].policy_index]);
      evals[row_idx].emplace(fidx, std::move(e));
    }
    explored += wave.size();
  };

  // Wave 0: the coarse grid of every row.
  {
    std::vector<std::pair<std::size_t, std::int64_t>> wave;
    const auto initial = lat.initial_indices();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (const std::int64_t f : initial) wave.emplace_back(r, f);
    }
    run_wave(std::move(wave));
    if (config.progress) config.progress(0, explored, rep.raw_scenarios);
  }

  // Refinement waves: subdivide exactly the disagreeing intervals (all
  // intervals when pruning is off), halving the gap each round until the
  // finest grid or the budget.
  for (int d = 1; d <= spec.depth && !rep.budget_exhausted; ++d) {
    std::vector<std::pair<std::size_t, std::int64_t>> wave;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const RowEvals& row = evals[r];
      for (auto it = row.begin(); it != row.end(); ++it) {
        const auto next = std::next(it);
        if (next == row.end()) break;
        const std::int64_t gap = next->first - it->first;
        if (gap < 2) continue;
        if (spec.prune && it->second.sig == next->second.sig) continue;
        wave.emplace_back(r, it->first + gap / 2);
      }
    }
    if (wave.empty()) break;
    run_wave(std::move(wave));
    if (config.progress) config.progress(d, explored, rep.raw_scenarios);
  }
  rep.explored = explored;

  // --- classification -------------------------------------------------------
  std::map<std::uint64_t, McReport::Class> classes;
  auto credit = [&](std::uint64_t sig, std::uint64_t count, std::size_t row_idx,
                    SimTime t, const ScenarioOutcome& rep_outcome) {
    auto [it, inserted] = classes.try_emplace(sig);
    if (inserted) {
      it->second.signature = sig;
      it->second.row = row_idx;
      it->second.time = t;
      it->second.rep = rep_outcome;
    }
    it->second.covered += count;
  };
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RowEvals& row = evals[r];
    if (row.empty()) {
      rep.unknown += static_cast<std::uint64_t>(F);
      continue;
    }
    rep.unknown += static_cast<std::uint64_t>(row.begin()->first);
    rep.unknown += static_cast<std::uint64_t>((F - 1) - row.rbegin()->first);
    for (auto it = row.begin(); it != row.end(); ++it) {
      credit(it->second.sig, 1, r, lat.time_of(it->first), it->second.outcome);
      const auto next = std::next(it);
      if (next == row.end()) continue;
      const std::int64_t gap = next->first - it->first;
      const bool same = it->second.sig == next->second.sig;
      if (gap > 1) {
        const std::uint64_t interior = static_cast<std::uint64_t>(gap - 1);
        if (same) {
          // Equivalence pruning: the interval's interior inherits the shared
          // endpoint signature without ever being simulated.
          credit(it->second.sig, interior, r, lat.time_of(it->first),
                 it->second.outcome);
          rep.pruned += interior;
        } else {
          rep.unknown += interior;
          rep.frontier.push_back({r, lat.time_of(it->first), lat.time_of(next->first)});
        }
      } else if (!same) {
        rep.boundaries.push_back({r, lat.time_of(it->first), lat.time_of(next->first)});
      }
    }
  }
  for (auto& [sig, cls] : classes) rep.classes.push_back(cls);
  std::sort(rep.classes.begin(), rep.classes.end(),
            [](const McReport::Class& a, const McReport::Class& b) {
              if (a.covered != b.covered) return a.covered > b.covered;
              return a.signature < b.signature;
            });

  // --- analyses -------------------------------------------------------------
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RowEvals& row = evals[r];
    // Worst detection latency + missed-notification accounting.
    std::optional<std::int64_t> window_start;
    int window_missed = 0;
    auto close_window = [&](std::int64_t end_fidx) {
      if (!window_start) return;
      rep.missed_windows.push_back(
          {r, lat.time_of(*window_start), lat.time_of(end_fidx), window_missed});
      window_start.reset();
      window_missed = 0;
    };
    std::optional<std::int64_t> prev_fidx;
    for (const auto& [fidx, e] : row) {
      if (activated(e)) {
        if (e.outcome.max_detection_latency > rep.worst_latency.latency ||
            !rep.worst_latency.any) {
          rep.worst_latency = {true, r, lat.time_of(fidx),
                               e.outcome.max_detection_latency};
        }
        if (e.outcome.missed_notifications > 0) {
          ++rep.missed_scenarios;
          rep.max_missed = std::max(rep.max_missed, e.outcome.missed_notifications);
          if (!window_start) window_start = fidx;
          window_missed = std::max(window_missed, e.outcome.missed_notifications);
          prev_fidx = fidx;
          continue;
        }
      }
      if (prev_fidx) close_window(*prev_fidx);
      prev_fidx = fidx;
    }
    if (prev_fidx) close_window(*prev_fidx);

    // Non-monotonic recovery cost: between adjacent evaluated points whose
    // failures both activated, did injecting later cost more than one
    // quantum *less*? (Both-activated keeps the trivial completion cliff —
    // injection past E1 is a no-op — out of the anomaly list.)
    for (auto it = row.begin(); it != row.end(); ++it) {
      const auto next = std::next(it);
      if (next == row.end()) break;
      if (!activated(it->second) || !activated(next->second)) continue;
      if (!it->second.outcome.completed || !next->second.outcome.completed) continue;
      const std::int64_t drop =
          static_cast<std::int64_t>(it->second.outcome.e2) -
          static_cast<std::int64_t>(next->second.outcome.e2);
      if (drop > static_cast<std::int64_t>(spec.quantum)) {
        rep.non_monotonic.push_back({r, lat.time_of(it->first), lat.time_of(next->first),
                                     static_cast<SimTime>(drop)});
      }
    }
  }
  return rep;
}

}  // namespace exasim::mc
