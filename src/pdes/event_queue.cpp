#include "pdes/event_queue.hpp"

#include <atomic>
#include <bit>
#include <utility>

namespace exasim {

namespace {

// Process-wide queue traffic counters (relaxed: statistics, not
// synchronization). Folded in per run, not per operation, so the hot path
// never touches an atomic.
std::atomic<std::uint64_t> g_queue_near_hits{0};
std::atomic<std::uint64_t> g_queue_bulk_merges{0};

}  // namespace

QueueStats queue_stats() {
  QueueStats s;
  s.near_hits = g_queue_near_hits.load(std::memory_order_relaxed);
  s.bulk_merges = g_queue_bulk_merges.load(std::memory_order_relaxed);
  return s;
}

void queue_note(const EventQueue::LocalStats& s) {
  if (s.near_hits != 0) g_queue_near_hits.fetch_add(s.near_hits, std::memory_order_relaxed);
  if (s.bulk_merges != 0) {
    g_queue_bulk_merges.fetch_add(s.bulk_merges, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Slab
// ---------------------------------------------------------------------------

std::uint32_t EventQueue::slab_put(Event&& ev) {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    slab_[slot] = std::move(ev);
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slab_.size());
  slab_.push_back(std::move(ev));
  return slot;
}

Event EventQueue::slab_take(std::uint32_t slot) {
  Event ev = std::move(slab_[slot]);
  free_.push_back(slot);
  return ev;
}

// ---------------------------------------------------------------------------
// Entry heaps (shared by the far heap and every near bucket)
// ---------------------------------------------------------------------------

void EventQueue::heap_up(std::vector<Entry>& h, std::size_t i) {
  const Entry e = h[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!entry_less(e, h[parent])) break;
    h[i] = h[parent];
    i = parent;
  }
  h[i] = e;
}

void EventQueue::heap_down(std::vector<Entry>& h, std::size_t i) {
  const std::size_t n = h.size();
  const Entry e = h[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && entry_less(h[child + 1], h[child])) ++child;
    if (!entry_less(h[child], e)) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = e;
}

EventQueue::Entry EventQueue::heap_pop_root(std::vector<Entry>& h) {
  const Entry top = h.front();
  h.front() = h.back();
  h.pop_back();
  if (!h.empty()) heap_down(h, 0);
  return top;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

int EventQueue::bucket_of(SimTime t) const {
  if (t >= near_end_) return -1;  // Also the near_end_ == 0 disabled state.
  const SimTime rel = t > near_base_ ? t - near_base_ : 0;
  const SimTime b = rel >> width_shift_;
  // The overflow-clamped horizon (near_end_ == kSimTimeNever) admits times
  // past the last bucket slice; they belong to the far heap.
  return b < kBuckets ? static_cast<int>(b) : -1;
}

void EventQueue::route(Entry e) {
  const int b = bucket_of(e.time);
  if (b < 0) {
    far_.push_back(e);
    heap_up(far_, far_.size() - 1);
    return;
  }
  std::vector<Entry>& bucket = near_[static_cast<std::size_t>(b)];
  bucket.push_back(e);
  heap_up(bucket, bucket.size() - 1);
  occupied_ |= std::uint64_t{1} << b;
}

void EventQueue::set_horizon(SimTime base, SimTime span) {
  if (span < 1) span = 1;
  int shift = 0;
  while ((static_cast<SimTime>(kBuckets) << shift) < span && shift < 48) ++shift;
  near_base_ = base;
  width_shift_ = shift;
  near_end_ = base + (static_cast<SimTime>(kBuckets) << shift);
  if (near_end_ < base) near_end_ = kSimTimeNever;  // Overflow clamp.
  if (occupied_ == 0) return;
  // Re-route leftover near entries under the new slicing (usually none: a
  // window drains everything below its bound before the horizon moves).
  scratch_.clear();
  std::uint64_t occ = occupied_;
  occupied_ = 0;
  while (occ != 0) {
    const int b = std::countr_zero(occ);
    occ &= occ - 1;
    std::vector<Entry>& bucket = near_[static_cast<std::size_t>(b)];
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  for (const Entry& e : scratch_) route(e);
  scratch_.clear();
}

// ---------------------------------------------------------------------------
// Queue operations
// ---------------------------------------------------------------------------

void EventQueue::push(Event&& ev) {
  Entry e;
  e.time = ev.time;
  e.ps = pack_ps(ev.priority, ev.source);
  e.slot = slab_put(std::move(ev));
  route(e);
  ++size_;
}

void EventQueue::push_bulk(std::vector<Event>& evs) {
  if (evs.empty()) return;
  ++stats_.bulk_merges;
  scratch_.clear();
  for (Event& ev : evs) {
    Entry e;
    e.time = ev.time;
    e.ps = pack_ps(ev.priority, ev.source);
    e.slot = slab_put(std::move(ev));
    ++size_;
    if (bucket_of(e.time) >= 0) {
      route(e);  // Near buckets are small; per-entry sifts stay cheap.
    } else {
      scratch_.push_back(e);
    }
  }
  evs.clear();
  if (scratch_.empty()) return;
  if (scratch_.size() * 8 >= far_.size()) {
    // Batch large relative to the heap: append, then one Floyd rebuild.
    far_.insert(far_.end(), scratch_.begin(), scratch_.end());
    for (std::size_t i = far_.size() / 2; i-- > 0;) heap_down(far_, i);
  } else {
    for (const Entry& e : scratch_) {
      far_.push_back(e);
      heap_up(far_, far_.size() - 1);
    }
  }
  scratch_.clear();
}

const std::vector<EventQueue::Entry>* EventQueue::min_heap(int* bucket) const {
  const std::vector<Entry>* best = nullptr;
  *bucket = -1;
  if (occupied_ != 0) {
    const int b = std::countr_zero(occupied_);
    best = &near_[static_cast<std::size_t>(b)];
    *bucket = b;
  }
  if (!far_.empty() && (best == nullptr || entry_less(far_.front(), best->front()))) {
    best = &far_;
    *bucket = -1;
  }
  return best;
}

Event EventQueue::pop() {
  int bucket = -1;
  min_heap(&bucket);
  Entry top;
  if (bucket >= 0) {
    std::vector<Entry>& h = near_[static_cast<std::size_t>(bucket)];
    top = heap_pop_root(h);
    if (h.empty()) occupied_ &= ~(std::uint64_t{1} << bucket);
    ++stats_.near_hits;
  } else {
    top = heap_pop_root(far_);
  }
  --size_;
  return slab_take(top.slot);
}

SimTime EventQueue::min_time() const {
  int bucket = -1;
  const std::vector<Entry>* h = min_heap(&bucket);
  return h == nullptr ? kSimTimeNever : h->front().time;
}

const Event& EventQueue::peek() const {
  int bucket = -1;
  const std::vector<Entry>* h = min_heap(&bucket);
  return slab_[h->front().slot];
}

}  // namespace exasim
