#include "pdes/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace exasim {

void EventQueue::push(Event&& ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), QueueOrder{});
}

Event EventQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), QueueOrder{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

}  // namespace exasim
