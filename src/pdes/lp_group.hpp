#pragma once

#include <cstdint>
#include <vector>

#include "pdes/event.hpp"
#include "pdes/event_queue.hpp"
#include "util/time.hpp"

namespace exasim {

/// One shard of the sharded engine: a contiguous block of LPs, their event
/// heap, and the per-(this-group → target-group) outbox mailboxes — xSim's
/// partitioning of simulated MPI processes over native processes (§IV-A),
/// here over native threads.
///
/// Engine-internal. Threading contract: everything in an LpGroup (queue,
/// outboxes, counters, clock) is touched only by the group's own worker
/// thread during a parallel run, except that *other* groups' workers read
/// and drain `outbox_for(their index)` during the mailbox-merge step — which
/// is separated from this group's writes by the window barriers.
class LpGroup {
 public:
  LpGroup(int index, int group_count) : index_(index), outbox_(group_count) {}

  LpGroup(const LpGroup&) = delete;
  LpGroup& operator=(const LpGroup&) = delete;

  int index() const { return index_; }

  EventQueue& queue() { return queue_; }

  /// Mailbox of cross-group events this group scheduled for group `dst`.
  std::vector<Event>& outbox_for(int dst) { return outbox_[dst]; }

  /// Drains the inbound mailbox `src` filled for this group into the heap.
  /// Runs on this group's worker, after the pre-merge barrier.
  void merge_inbox(std::vector<Event>& inbox) {
    for (Event& ev : inbox) queue_.push(std::move(ev));
    inbox.clear();
  }

  /// Group-local clock: maximum timestamp delivered by this group. Used as
  /// the reference time of the causality guard for schedules made from this
  /// group's LPs.
  SimTime now() const { return now_; }
  void advance_now(SimTime t) { if (t > now_) now_ = t; }

  /// LP whose on_event/on_stall handler is currently executing on this
  /// group's worker (kExternalSource between deliveries) — the `source` half
  /// of the deterministic ordering key.
  LpId current_source() const { return current_source_; }
  void set_current_source(LpId id) { current_source_ = id; }

  /// LPs owned by this group, ascending id order.
  std::vector<LpId>& members() { return members_; }
  const std::vector<LpId>& members() const { return members_; }

  std::uint64_t events_processed = 0;
  std::uint64_t events_dropped_dead = 0;
  /// Whether the most recent stall phase made progress (published to the
  /// window synchronizer for the global two-phase deadlock check).
  bool stall_progressed = false;

 private:
  int index_;
  EventQueue queue_;
  std::vector<std::vector<Event>> outbox_;
  std::vector<LpId> members_;
  SimTime now_ = 0;
  LpId current_source_ = kExternalSource;
};

}  // namespace exasim
