#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "pdes/event.hpp"
#include "pdes/event_queue.hpp"
#include "util/time.hpp"

namespace exasim {

/// One shard of the sharded engine: a contiguous block of LPs, their event
/// heap, and the per-(this-group → target-group) outbox mailboxes — xSim's
/// partitioning of simulated MPI processes over native processes (§IV-A),
/// here over native threads.
///
/// Engine-internal. Threading contract: everything in an LpGroup (queue,
/// outboxes, stage, counters, clock) is touched only by the single worker
/// thread currently holding the group's claim token (WindowSync); claim
/// hand-offs between workers are separated by the window barriers. Within
/// one cycle, the worker that merged a group's mailboxes may differ from the
/// worker that executes its window — the merge/execute claims are distinct —
/// and other groups' workers drain `outbox_for(their group)` during their own
/// merge step, again across a barrier from this group's writes.
class LpGroup {
 public:
  LpGroup(int index, int group_count) : index_(index), outbox_(group_count) {}

  LpGroup(const LpGroup&) = delete;
  LpGroup& operator=(const LpGroup&) = delete;

  int index() const { return index_; }

  EventQueue& queue() { return queue_; }

  /// Mailbox of cross-group events this group scheduled for group `dst`.
  std::vector<Event>& outbox_for(int dst) { return outbox_[dst]; }

  /// Drains the inbound mailbox `src` filled for this group into the heap as
  /// one bulk merge (EventQueue::push_bulk: Floyd heapify when the inbox is
  /// large relative to the heap). Runs on this group's worker, after the
  /// pre-merge barrier.
  void merge_inbox(std::vector<Event>& inbox) {
    if (!inbox.empty()) queue_.push_bulk(inbox);
  }

  /// Group-local clock: maximum timestamp delivered by this group. Used as
  /// the reference time of the causality guard for schedules made from this
  /// group's LPs.
  SimTime now() const { return now_; }
  void advance_now(SimTime t) { if (t > now_) now_ = t; }

  /// LP whose on_event/on_stall handler is currently executing on this
  /// group's worker (kExternalSource between deliveries) — the `source` half
  /// of the deterministic ordering key.
  LpId current_source() const { return current_source_; }
  void set_current_source(LpId id) { current_source_ = id; }

  /// LPs owned by this group, ascending id order.
  std::vector<LpId>& members() { return members_; }
  const std::vector<LpId>& members() const { return members_; }

  /// Speculation stage (`--speculate=N`): events popped past the window bound
  /// ahead of their commit, kept in ascending EventKey order. Delivery merges
  /// the stage front against the heap top; the mailbox merge rolls back any
  /// staged suffix that an incoming event orders before (rollbacks counter).
  std::deque<Event>& stage() { return stage_; }
  Event pop_stage() {
    Event ev = std::move(stage_.front());
    stage_.pop_front();
    return ev;
  }

  /// Earliest pending event time over heap + stage — what this group
  /// publishes for the window-bound computation (kSimTimeNever when idle).
  SimTime pending_min() const {
    return stage_.empty() ? queue_.min_time() : stage_.front().time;
  }

  std::uint64_t events_processed = 0;
  std::uint64_t events_dropped_dead = 0;
  /// Events delivered in the most recent window phase — the per-group
  /// event-density feedback of the adaptive scheduler policy.
  std::uint64_t window_events_last = 0;
  /// Events ever staged past a window bound / staged events invalidated by a
  /// later-merged earlier event (folded into the process-wide SchedStats).
  std::uint64_t speculated_events = 0;
  std::uint64_t rollbacks = 0;
  /// Whether the most recent stall phase made progress (published to the
  /// window synchronizer for the global two-phase deadlock check).
  bool stall_progressed = false;

 private:
  int index_;
  EventQueue queue_;
  std::vector<std::vector<Event>> outbox_;
  std::deque<Event> stage_;
  std::vector<LpId> members_;
  SimTime now_ = 0;
  LpId current_source_ = kExternalSource;
};

}  // namespace exasim
