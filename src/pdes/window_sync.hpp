#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <vector>

#include "pdes/scheduler.hpp"
#include "util/time.hpp"

namespace exasim {

/// Lock-step conservative window synchronization for the sharded engine
/// (paper §IV-A: simulated MPI processes advance under conservative
/// synchronization) — the *mechanism* half of the scheduling stack. The
/// *policy* half (how wide each group's next window is) is a SchedulerPolicy
/// (DESIGN.md §11) invoked once per cycle from the decide barrier.
///
/// Worker threads and LP groups are decoupled: `workers` threads rendezvous
/// at the barriers while `groups >= workers` groups are claimed per phase
/// through atomic claim tokens — a worker first claims its home groups, then
/// scans the remaining groups in id order and steals any still-unclaimed one
/// (deterministic steal *order*; which groups actually get stolen depends on
/// host timing, which is safe because group state is only ever touched by
/// the claim holder and the delivered schedule is claim-independent).
///
/// Each cycle every worker performs:
///
///   sync_outboxes();            // barrier: previous-window writes visible;
///                               // completion resets the merge claims
///   for g: try_claim_merge(g) → merge g's inbound mailboxes, roll back
///          invalidated speculation, publish g's pending min + feedback
///   publish_idle_ns(worker, …);
///   sync_decide();              // barrier; completion runs decide() once
///   switch (phase()) {
///     kWindow: for g: try_claim_exec(g) → run events of g below bound(g)
///     kStall:  for g: try_claim_exec(g) → run g's on_stall hooks
///     kExit:   return
///   }
///
/// decide() — executed exactly once per cycle, by the barrier completion, so
/// every group observes an identical snapshot — picks the next phase:
///   * stop requested → kExit
///   * any event pending → kWindow; the SchedulerPolicy fills the per-group
///     bounds (the fixed policy: global-min + lookahead for everyone; the
///     adaptive policy widens inside the safe envelope min-over-others +
///     lookahead)
///   * all queues empty → kStall (the two-phase global deadlock check: each
///     group runs its own LPs' on_stall hooks, then the next decide() sees
///     the OR of their progress); a stall round with no progress → kExit.
class WindowSync {
 public:
  enum class Phase : std::uint8_t { kWindow, kStall, kExit };

  /// `policy` decides per-group bounds, not owned, must outlive the run.
  /// `stop` is the engine's stop flag, sampled once per decide() so that all
  /// groups observe a stop request at the same window boundary.
  WindowSync(int workers, int groups, SimTime lookahead, SchedulerPolicy* policy,
             const std::atomic<bool>* stop);

  // Per-group publications — written by the worker holding the group's merge
  // claim, read by decide() across the decide barrier.
  void publish_min(int group, SimTime t) { mins_[static_cast<std::size_t>(group)] = t; }
  void publish_window_events(int group, std::uint64_t n) {
    window_events_[static_cast<std::size_t>(group)] = n;
  }
  void publish_progressed(int group, bool p) {
    progressed_[static_cast<std::size_t>(group)] = p ? 1 : 0;
  }
  /// Barrier-idle feedback: ns this worker spent waiting at barriers since
  /// its previous publication (consumed by the next decide()).
  void publish_idle_ns(int worker, std::uint64_t ns) {
    idle_ns_[static_cast<std::size_t>(worker)] = ns;
  }

  /// Pre-merge rendezvous: after it, all groups' outbox/stage writes of the
  /// previous phase are visible and no new writes happen until sync_decide().
  /// The completion re-arms the merge claim tokens.
  void sync_outboxes() { pre_merge_.arrive_and_wait(); }

  /// Post-publish rendezvous; the completion runs decide() and re-arms the
  /// execute claim tokens. Afterwards read phase() / bound(g).
  void sync_decide() { decide_barrier_.arrive_and_wait(); }

  /// Withdraws a worker from both barriers — called once by a worker that is
  /// unwinding on an exception, so the surviving workers are not left
  /// waiting. The caller must set the engine stop flag first.
  void withdraw() {
    pre_merge_.arrive_and_drop();
    decide_barrier_.arrive_and_drop();
  }

  /// Claim tokens: exactly one worker per cycle wins each group's merge
  /// claim / execute claim. Non-blocking.
  bool try_claim_merge(int group) {
    return merge_claims_[static_cast<std::size_t>(group)].exchange(
               1, std::memory_order_acq_rel) == 0;
  }
  bool try_claim_exec(int group) {
    return exec_claims_[static_cast<std::size_t>(group)].exchange(
               1, std::memory_order_acq_rel) == 0;
  }

  Phase phase() const { return phase_; }
  SimTime bound(int group) const { return bounds_[static_cast<std::size_t>(group)]; }

 private:
  struct RunDecide {
    WindowSync* sync;
    void operator()() noexcept { sync->decide(); }
  };
  struct ArmMergeClaims {
    WindowSync* sync;
    void operator()() noexcept {
      for (auto& c : sync->merge_claims_) c.store(0, std::memory_order_relaxed);
    }
  };

  void decide() noexcept;

  SimTime lookahead_;
  SchedulerPolicy* policy_;
  const std::atomic<bool>* stop_;
  std::vector<SimTime> mins_;
  std::vector<std::uint64_t> window_events_;
  std::vector<std::uint8_t> progressed_;
  std::vector<std::uint64_t> idle_ns_;
  std::vector<std::atomic<std::uint8_t>> merge_claims_;
  std::vector<std::atomic<std::uint8_t>> exec_claims_;
  Phase phase_ = Phase::kWindow;
  std::vector<SimTime> bounds_;
  std::barrier<ArmMergeClaims> pre_merge_;
  std::barrier<RunDecide> decide_barrier_;
};

}  // namespace exasim
