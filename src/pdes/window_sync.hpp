#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace exasim {

/// Lock-step conservative window synchronization for the sharded engine
/// (paper §IV-A: simulated MPI processes advance under conservative
/// synchronization).
///
/// Each iteration every group worker performs the same cycle:
///
///   sync_outboxes();          // barrier: all previous-window writes done
///   <merge inbound mailboxes, publish queue-min + stall progress>
///   sync_decide();            // barrier; completion runs decide() once
///   switch (phase()) { process window < bound() | run stall | exit }
///
/// decide() — executed exactly once per cycle, by the barrier completion, so
/// every group observes an identical snapshot — picks the next phase:
///   * stop requested → kExit
///   * any event pending → kWindow with bound = global-min + lookahead
///     (every group processes strictly below the bound; cross-group events
///     generated inside the window land at ≥ bound by the lookahead
///     guarantee, so merging them at the next barrier loses nothing)
///   * all queues empty → kStall (the two-phase global deadlock check: each
///     group runs its own LPs' on_stall hooks, then the next decide() sees
///     the OR of their progress); a stall round with no progress → kExit.
///
/// The window partition depends only on event timestamps and the lookahead —
/// not on the number of groups or thread interleaving — which is what makes
/// the delivered schedule reproducible across `--sim-workers` values.
class WindowSync {
 public:
  enum class Phase : std::uint8_t { kWindow, kStall, kExit };

  /// `stop` is the engine's stop flag, sampled once per decide() so that all
  /// groups observe a stop request at the same window boundary.
  WindowSync(int groups, SimTime lookahead, const std::atomic<bool>* stop);

  void publish_min(int group, SimTime t) { mins_[static_cast<std::size_t>(group)] = t; }
  void publish_progressed(int group, bool p) {
    progressed_[static_cast<std::size_t>(group)] = p ? 1 : 0;
  }

  /// Pre-merge rendezvous: after it, all groups' outbox writes of the
  /// previous phase are visible and no new writes happen until sync_decide().
  void sync_outboxes() { pre_merge_.arrive_and_wait(); }

  /// Post-publish rendezvous; the completion runs decide(). Afterwards read
  /// phase() / bound().
  void sync_decide() { decide_barrier_.arrive_and_wait(); }

  /// Withdraws a group from both barriers — called once by a worker that is
  /// unwinding on an exception, so the surviving groups are not left waiting.
  /// The caller must set the engine stop flag first.
  void withdraw() {
    pre_merge_.arrive_and_drop();
    decide_barrier_.arrive_and_drop();
  }

  Phase phase() const { return phase_; }
  SimTime bound() const { return bound_; }

 private:
  struct RunDecide {
    WindowSync* sync;
    void operator()() noexcept { sync->decide(); }
  };

  void decide() noexcept;

  SimTime lookahead_;
  const std::atomic<bool>* stop_;
  std::vector<SimTime> mins_;
  std::vector<std::uint8_t> progressed_;
  Phase phase_ = Phase::kWindow;
  SimTime bound_ = 0;
  std::barrier<> pre_merge_;
  std::barrier<RunDecide> decide_barrier_;
};

}  // namespace exasim
