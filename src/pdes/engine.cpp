#include "pdes/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace exasim {

void Engine::add_process(LpId id, LogicalProcess* lp) {
  if (id < 0) throw std::invalid_argument("negative LP id");
  if (static_cast<std::size_t>(id) >= processes_.size()) {
    processes_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  if (processes_[static_cast<std::size_t>(id)] != nullptr) {
    throw std::invalid_argument("duplicate LP id");
  }
  processes_[static_cast<std::size_t>(id)] = lp;
}

std::uint64_t Engine::schedule(SimTime time, LpId target, int kind,
                               std::unique_ptr<EventPayload> payload,
                               EventPriority priority) {
  const std::uint64_t seq = next_seq_++;
  Event ev;
  ev.time = time;
  ev.priority = priority;
  ev.seq = seq;
  ev.target = target;
  ev.kind = kind;
  ev.payload = std::move(payload);
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), QueueOrder{});
  return seq;
}

Event Engine::pop_next_event() {
  std::pop_heap(queue_.begin(), queue_.end(), QueueOrder{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

void Engine::mark_dead(LpId id) { dead_.insert(id); }

void Engine::run() {
  stop_requested_ = false;
  for (;;) {
    while (!queue_.empty() && !stop_requested_) {
      Event ev = pop_next_event();
      if (dead_.count(ev.target) != 0) {
        ++events_dropped_dead_;
        continue;
      }
      if (ev.target < 0 || static_cast<std::size_t>(ev.target) >= processes_.size() ||
          processes_[static_cast<std::size_t>(ev.target)] == nullptr) {
        throw std::logic_error("event for unknown LP");
      }
      now_ = ev.time;
      ++events_processed_;
      processes_[static_cast<std::size_t>(ev.target)]->on_event(*this, std::move(ev));
    }
    if (stop_requested_) return;

    // Quiescence: give stalled LPs a chance to make progress (release failed
    // ANY_SOURCE waits etc.). If nobody progresses, stop — unterminated()
    // then reports the deadlocked set.
    bool progressed = false;
    for (std::size_t id = 0; id < processes_.size(); ++id) {
      LogicalProcess* lp = processes_[id];
      if (lp == nullptr || lp->terminated() || dead_.count(static_cast<LpId>(id)) != 0) {
        continue;
      }
      if (lp->on_stall(*this)) progressed = true;
    }
    if (!progressed && queue_.empty()) return;
  }
}

std::vector<LpId> Engine::unterminated() const {
  std::vector<LpId> out;
  for (std::size_t id = 0; id < processes_.size(); ++id) {
    LogicalProcess* lp = processes_[id];
    if (lp != nullptr && !lp->terminated() && dead_.count(static_cast<LpId>(id)) == 0) {
      out.push_back(static_cast<LpId>(id));
    }
  }
  return out;
}

}  // namespace exasim
