#include "pdes/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "pdes/lp_group.hpp"
#include "pdes/window_sync.hpp"

namespace exasim {

namespace {

/// Identifies the group worker the current thread is driving, so that
/// Engine::schedule / Engine::now called from inside an LP handler resolve
/// against the group-local state without locks.
struct WorkerCtx {
  Engine* engine = nullptr;
  LpGroup* group = nullptr;
};

thread_local WorkerCtx t_worker;

// Process-wide fan-out traffic counters (relaxed: they are statistics, not
// synchronization). Process-wide rather than per-engine so metrics/perf can
// read them without a handle on the Machine's engine.
std::atomic<std::uint64_t> g_fanout_notices{0};
std::atomic<std::uint64_t> g_fanout_relays{0};
std::atomic<std::uint64_t> g_fanout_dead_skips{0};

}  // namespace

FanoutStats fanout_stats() {
  FanoutStats s;
  s.notices = g_fanout_notices.load(std::memory_order_relaxed);
  s.relay_events = g_fanout_relays.load(std::memory_order_relaxed);
  s.dead_skips = g_fanout_dead_skips.load(std::memory_order_relaxed);
  return s;
}

void Engine::add_process(LpId id, LogicalProcess* lp) {
  if (id < 0) throw std::invalid_argument("negative LP id");
  if (static_cast<std::size_t>(id) >= processes_.size()) {
    processes_.resize(static_cast<std::size_t>(id) + 1, nullptr);
  }
  if (processes_[static_cast<std::size_t>(id)] != nullptr) {
    throw std::invalid_argument("duplicate LP id");
  }
  processes_[static_cast<std::size_t>(id)] = lp;
}

void Engine::set_sharding(ShardingOptions opts) {
  if (opts.workers < 1) opts.workers = 1;
  if (opts.lookahead < 1) opts.lookahead = 1;  // windows must make progress
  if (opts.block_alignment < 1) opts.block_alignment = 1;
  if (opts.speculate < 0) opts.speculate = 0;
  if (opts.scheduler.groups_per_worker < 0) opts.scheduler.groups_per_worker = 0;
  sharding_ = std::move(opts);
}

std::uint64_t Engine::next_seq_for(LpId source) {
  const std::size_t idx = static_cast<std::size_t>(source) + 1;
  // Growth only happens pre-run or in sequential mode; parallel runs presize
  // the vector so worker threads only touch their own LPs' slots.
  if (idx >= seq_by_source_.size()) seq_by_source_.resize(idx + 1, 0);
  return seq_by_source_[idx]++;
}

void Engine::note_causality_violation(SimTime time, SimTime local_now) {
  CausalityMode mode = causality_mode_;
  if (mode == CausalityMode::kDefault) {
#ifdef NDEBUG
    mode = CausalityMode::kCount;
#else
    mode = CausalityMode::kThrow;
#endif
  }
  if (mode == CausalityMode::kThrow) {
    throw std::logic_error("causality violation: scheduled event at " +
                           std::to_string(time) + " ns before local time " +
                           std::to_string(local_now) + " ns");
  }
  causality_violations_.fetch_add(1, std::memory_order_relaxed);
  if (!causality_warned_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "[exasim] warning: causality violation (event at %" PRIu64
                 " ns before local time %" PRIu64
                 " ns); counting further ones silently\n",
                 static_cast<std::uint64_t>(time),
                 static_cast<std::uint64_t>(local_now));
  }
}

std::uint64_t Engine::schedule(SimTime time, LpId target, int kind,
                               std::unique_ptr<EventPayload> payload,
                               EventPriority priority) {
  LpGroup* grp = (t_worker.engine == this) ? t_worker.group : nullptr;
  const LpId source = grp ? grp->current_source() : current_source_;
  const SimTime local_now = grp ? grp->now() : now_;
  if (time < local_now) note_causality_violation(time, local_now);

  Event ev;
  ev.time = time;
  ev.priority = priority;
  ev.source = source;
  ev.seq = next_seq_for(source);
  ev.target = target;
  ev.kind = kind;
  ev.payload = std::move(payload);

  // Hoisted before the moves below: reading ev.seq after std::move(ev) only
  // worked because moving leaves POD members behind, and reads as a
  // use-after-move either way.
  const std::uint64_t seq = ev.seq;

  if (grp != nullptr) {
    if (target < 0 || static_cast<std::size_t>(target) >= group_of_.size()) {
      throw std::logic_error("event for unknown LP");
    }
    const int dst = group_of_[static_cast<std::size_t>(target)];
    if (dst == grp->index()) {
      grp->queue().push(std::move(ev));
    } else {
      grp->outbox_for(dst).push_back(std::move(ev));
    }
  } else {
    queue_.push(std::move(ev));
  }
  return seq;
}

void Engine::schedule_fanout(const std::vector<FanoutItem>& items, int kind,
                             const FanoutPayloadFn& make_payload,
                             EventPriority priority) {
  LpGroup* grp = (t_worker.engine == this) ? t_worker.group : nullptr;
  const LpId source = grp ? grp->current_source() : current_source_;
  const SimTime local_now = grp ? grp->now() : now_;

  if (grp == nullptr) {
    // Sequential (or pre-run) path: literally the per-item schedule() loop,
    // minus events whose target is already dead.
    for (const FanoutItem& it : items) {
      if (it.time < local_now) note_causality_violation(it.time, local_now);
      if (is_dead(it.target)) {
        ++events_dropped_dead_;
        g_fanout_dead_skips.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Event ev;
      ev.time = it.time;
      ev.priority = priority;
      ev.source = source;
      ev.seq = next_seq_for(source);
      ev.target = it.target;
      ev.kind = kind;
      ev.payload = make_payload(it);
      queue_.push(std::move(ev));
      g_fanout_notices.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Parallel path: same-group items go straight to our heap; remote items are
  // grouped into one RelayPayload batch per destination group. Seq values are
  // drawn in item order for exactly the events that are created, so the
  // delivered schedule matches the sequential per-item loop (dead flags are
  // monotonic, hence the skipped set is partition-independent; remote dead
  // targets are filtered at unpack by their owning worker instead of here).
  std::vector<std::unique_ptr<RelayPayload>> batches(
      static_cast<std::size_t>(last_groups_));
  for (const FanoutItem& it : items) {
    if (it.time < local_now) note_causality_violation(it.time, local_now);
    if (it.target < 0 || static_cast<std::size_t>(it.target) >= group_of_.size()) {
      throw std::logic_error("event for unknown LP");
    }
    const int dst = group_of_[static_cast<std::size_t>(it.target)];
    if (dst == grp->index() &&
        dead_[static_cast<std::size_t>(it.target)] != 0) {
      ++grp->events_dropped_dead;
      g_fanout_dead_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Event ev;
    ev.time = it.time;
    ev.priority = priority;
    ev.source = source;
    ev.seq = next_seq_for(source);
    ev.target = it.target;
    ev.kind = kind;
    ev.payload = make_payload(it);
    if (dst == grp->index()) {
      // Remote items are counted at unpack instead, so a notice either
      // shows up in fanout_notices or in fanout_dead_skips — never both.
      g_fanout_notices.fetch_add(1, std::memory_order_relaxed);
      grp->queue().push(std::move(ev));
    } else {
      auto& batch = batches[static_cast<std::size_t>(dst)];
      if (!batch) batch = std::make_unique<RelayPayload>();
      batch->batch.push_back(std::move(ev));
    }
  }
  for (int dst = 0; dst < last_groups_; ++dst) {
    auto& batch = batches[static_cast<std::size_t>(dst)];
    if (!batch) continue;
    // The relay carrier adopts the minimum EventOrder key over its batch
    // (fan-out times are not sorted by rank — gossip detection times depend
    // on the epidemic order), so it is popped and unpacked in the destination
    // group before any batch item could have run.
    const Event* min_ev = &batch->batch.front();
    for (const Event& ev : batch->batch) {
      if (EventOrder{}(ev, *min_ev)) min_ev = &ev;
    }
    Event relay;
    relay.time = min_ev->time;
    relay.priority = min_ev->priority;
    relay.source = min_ev->source;
    relay.seq = min_ev->seq;
    relay.target = min_ev->target;  // Routing address only; never delivered.
    relay.kind = kRelayEventKind;
    relay.payload = std::move(batch);
    grp->outbox_for(dst).push_back(std::move(relay));
    g_fanout_relays.fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::unpack_relay(LpGroup& grp, Event&& relay) {
  auto* payload = static_cast<RelayPayload*>(relay.payload.get());
  std::vector<Event>& batch = payload->batch;
  // Compact the dead-target items out in place, then hand the survivors to
  // the queue as one bulk merge instead of per-event heap sifts.
  std::size_t kept = 0;
  for (Event& ev : batch) {
    if (dead_[static_cast<std::size_t>(ev.target)] != 0) {
      ++grp.events_dropped_dead;
      g_fanout_dead_skips.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    g_fanout_notices.fetch_add(1, std::memory_order_relaxed);
    batch[kept++] = std::move(ev);
  }
  batch.resize(kept);
  grp.queue().push_bulk(batch);
}

void Engine::requeue_relay_items(Event&& relay) {
  // Leftover cross-group batch from a previous parallel run: unpack into the
  // engine's flat queue (the items are re-routed individually on the next
  // distribution — a new partition may split them differently).
  auto* payload = static_cast<RelayPayload*>(relay.payload.get());
  queue_.push_bulk(payload->batch);
}

void Engine::mark_dead(LpId id) {
  if (id < 0) return;
  const std::size_t idx = static_cast<std::size_t>(id);
  // Growth only happens pre-run or in sequential mode; parallel runs presize.
  if (idx >= dead_.size()) dead_.resize(idx + 1, 0);
  dead_[idx] = 1;
}

SimTime Engine::now() const {
  if (t_worker.engine == this) return t_worker.group->now();
  return now_;
}

void Engine::plan_shape(int* workers, int* group_count) const {
  const std::size_t n = processes_.size();
  const std::size_t align = static_cast<std::size_t>(sharding_.block_alignment);
  const std::size_t blocks = (n + align - 1) / align;
  std::size_t w = static_cast<std::size_t>(sharding_.workers);
  if (w > blocks) w = blocks;
  if (w < 1) w = 1;
  // Groups-per-worker oversubscription gives finished workers something to
  // steal; the fixed policy defaults to the legacy one-group-per-worker
  // shape, the adaptive policy to 4 (more, smaller groups even out uneven
  // event density).
  std::size_t gpw = static_cast<std::size_t>(sharding_.scheduler.groups_per_worker);
  if (gpw < 1) gpw = sharding_.scheduler.kind == SchedulerKind::kAdaptive ? 4 : 1;
  std::size_t g = w * gpw;
  if (g > blocks) g = blocks;
  if (g < w) g = w;
  *workers = static_cast<int>(w);
  *group_count = static_cast<int>(g);
}

std::vector<int> Engine::plan_partition(int group_count) const {
  const std::size_t n = processes_.size();
  std::vector<int> map(n, 0);
  if (sharding_.group_of) {
    for (std::size_t id = 0; id < n; ++id) {
      const int g = sharding_.group_of(static_cast<LpId>(id));
      if (g < 0 || g >= group_count) {
        throw std::invalid_argument("ShardingOptions::group_of returned a group out of range");
      }
      map[id] = g;
    }
    return map;
  }
  // Contiguous blocks of `align` LPs, distributed over the groups as evenly
  // as possible with the first `rem` groups holding one extra block.
  const std::size_t align = static_cast<std::size_t>(sharding_.block_alignment);
  const std::size_t blocks = (n + align - 1) / align;
  const std::size_t groups = static_cast<std::size_t>(group_count);
  const std::size_t base = blocks / groups;
  const std::size_t rem = blocks % groups;
  for (std::size_t id = 0; id < n; ++id) {
    const std::size_t b = id / align;
    std::size_t g;
    if (b < rem * (base + 1)) {
      g = b / (base + 1);
    } else {
      g = rem + (b - rem * (base + 1)) / base;
    }
    map[id] = static_cast<int>(g);
  }
  return map;
}

void Engine::run() {
  int workers = 1;
  int group_count = 1;
  plan_shape(&workers, &group_count);
  last_groups_ = group_count;
  if (group_count <= 1) {
    run_sequential();
  } else {
    run_parallel(workers, group_count);
  }
  queue_note(queue_.take_stats());
}

void Engine::run_sequential() {
  stop_requested_.store(false, std::memory_order_relaxed);
  // Rolling near-horizon: 64 lookahead-wide bucket slices starting at the
  // current event time, rebased whenever delivery crosses the horizon. New
  // schedules land in the buckets; the pre-run backlog drains from the far
  // heap as the horizon sweeps over it.
  const SimTime horizon_span = sharding_.lookahead < (kSimTimeNever >> 7)
                                   ? sharding_.lookahead * 64
                                   : sharding_.lookahead;
  for (;;) {
    while (!queue_.empty() && !stop_requested_.load(std::memory_order_relaxed)) {
      Event ev = queue_.pop();
      if (ev.time >= queue_.horizon_end()) {
        // The popped event is the global minimum, so every pending event is
        // at or past it — rebasing never strands anything below the base.
        queue_.set_horizon(ev.time, horizon_span);
      }
      if (ev.kind == kRelayEventKind) {
        requeue_relay_items(std::move(ev));
        continue;
      }
      if (is_dead(ev.target)) {
        ++events_dropped_dead_;
        continue;
      }
      if (ev.target < 0 || static_cast<std::size_t>(ev.target) >= processes_.size() ||
          processes_[static_cast<std::size_t>(ev.target)] == nullptr) {
        throw std::logic_error("event for unknown LP");
      }
      now_ = ev.time;
      ++events_processed_;
      current_source_ = ev.target;
      processes_[static_cast<std::size_t>(ev.target)]->on_event(*this, std::move(ev));
      current_source_ = kExternalSource;
    }
    if (stop_requested_.load(std::memory_order_relaxed)) return;

    // Quiescence: give stalled LPs a chance to make progress (release failed
    // ANY_SOURCE waits etc.). If nobody progresses, stop — unterminated()
    // then reports the deadlocked set.
    bool progressed = false;
    for (std::size_t id = 0; id < processes_.size(); ++id) {
      LogicalProcess* lp = processes_[id];
      if (lp == nullptr || lp->terminated() || is_dead(static_cast<LpId>(id))) {
        continue;
      }
      current_source_ = static_cast<LpId>(id);
      if (lp->on_stall(*this)) progressed = true;
      current_source_ = kExternalSource;
    }
    if (!progressed && queue_.empty()) return;
  }
}

/// Shared state of one run_parallel invocation, handed to every worker.
struct Engine::WorkerPlan {
  std::vector<std::unique_ptr<LpGroup>> groups;
  std::vector<int> home;                ///< Group id → home worker.
  WindowSync* sync = nullptr;
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::uint64_t> steals_by_worker;
  std::vector<std::uint64_t> idle_ns_by_worker;
};

void Engine::run_parallel(int workers, int group_count) {
  stop_requested_.store(false, std::memory_order_relaxed);
  const std::size_t n = processes_.size();
  group_of_ = plan_partition(group_count);
  // Presize shared vectors so worker threads never reallocate them.
  if (dead_.size() < n) dead_.resize(n, 0);
  if (seq_by_source_.size() < n + 1) seq_by_source_.resize(n + 1, 0);

  WorkerPlan plan;
  plan.groups.reserve(static_cast<std::size_t>(group_count));
  for (int g = 0; g < group_count; ++g) {
    plan.groups.push_back(std::make_unique<LpGroup>(g, group_count));
  }
  for (std::size_t id = 0; id < n; ++id) {
    plan.groups[static_cast<std::size_t>(group_of_[id])]->members().push_back(
        static_cast<LpId>(id));
  }
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    if (ev.kind == kRelayEventKind) {
      requeue_relay_items(std::move(ev));
      continue;
    }
    if (ev.target < 0 || static_cast<std::size_t>(ev.target) >= n) {
      throw std::logic_error("event for unknown LP");
    }
    plan.groups[static_cast<std::size_t>(group_of_[static_cast<std::size_t>(ev.target)])]
        ->queue()
        .push(std::move(ev));
  }
  // Carry the engine clock into every group (relevant when run() is called
  // again after a previous run advanced the clock).
  for (auto& grp : plan.groups) grp->advance_now(now_);

  // Contiguous monotone home assignment: groups g with home[g] == w are
  // worker w's first claim targets each phase.
  plan.home.resize(static_cast<std::size_t>(group_count));
  for (int g = 0; g < group_count; ++g) {
    plan.home[static_cast<std::size_t>(g)] =
        static_cast<int>((static_cast<long long>(g) * workers) / group_count);
  }
  plan.steals_by_worker.assign(static_cast<std::size_t>(workers), 0);
  plan.idle_ns_by_worker.assign(static_cast<std::size_t>(workers), 0);

  const std::unique_ptr<SchedulerPolicy> policy = make_scheduler(sharding_.scheduler);
  WindowSync sync(workers, group_count, sharding_.lookahead, policy.get(), &stop_requested_);
  plan.sync = &sync;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back([this, &plan, w] { worker_main(plan, w); });
  }
  worker_main(plan, 0);
  for (std::thread& t : threads) t.join();

  // Fold group-local state back into the engine for the post-run accessors,
  // and the run's scheduler bookkeeping into the process-wide counters.
  std::uint64_t speculated = 0;
  std::uint64_t rollbacks = 0;
  for (auto& grp : plan.groups) {
    events_processed_ += grp->events_processed;
    events_dropped_dead_ += grp->events_dropped_dead;
    speculated += grp->speculated_events;
    rollbacks += grp->rollbacks;
    if (grp->now() > now_) now_ = grp->now();
    queue_note(grp->queue().take_stats());
    while (!grp->stage().empty()) queue_.push(grp->pop_stage());
    while (!grp->queue().empty()) queue_.push(grp->queue().pop());
    for (int dst = 0; dst < group_count; ++dst) {
      for (Event& ev : grp->outbox_for(dst)) queue_.push(std::move(ev));
      grp->outbox_for(dst).clear();
    }
  }
  std::uint64_t steals = 0;
  std::uint64_t idle_ns = 0;
  for (std::uint64_t s : plan.steals_by_worker) steals += s;
  for (std::uint64_t ns : plan.idle_ns_by_worker) idle_ns += ns;
  sched_note_run(steals, speculated, rollbacks, idle_ns);
  group_of_.clear();
  if (plan.first_error) std::rethrow_exception(plan.first_error);
}

void Engine::worker_main(WorkerPlan& plan, int worker) {
  WindowSync& sync = *plan.sync;
  const int group_count = static_cast<int>(plan.groups.size());
  // Claim scan order: home groups first, then everyone else's — both in
  // ascending group id, so the steal *order* is deterministic even though
  // which claims this worker wins depends on host timing.
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(group_count));
  for (int g = 0; g < group_count; ++g) {
    if (plan.home[static_cast<std::size_t>(g)] == worker) order.push_back(g);
  }
  for (int g = 0; g < group_count; ++g) {
    if (plan.home[static_cast<std::size_t>(g)] != worker) order.push_back(g);
  }

  using Clock = std::chrono::steady_clock;
  std::uint64_t idle_ns = 0;        ///< Barrier wait since last publication.
  std::uint64_t idle_total = 0;
  std::uint64_t steals = 0;
  auto timed_wait = [&idle_ns](auto&& wait) {
    const Clock::time_point t0 = Clock::now();
    wait();
    idle_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
  };

  try {
    for (;;) {
      timed_wait([&sync] { sync.sync_outboxes(); });
      for (int g : order) {
        if (!sync.try_claim_merge(g)) continue;
        LpGroup& grp = *plan.groups[static_cast<std::size_t>(g)];
        merge_group(plan.groups, grp);
        sync.publish_min(g, grp.pending_min());
        sync.publish_window_events(g, grp.window_events_last);
        sync.publish_progressed(g, grp.stall_progressed);
      }
      sync.publish_idle_ns(worker, idle_ns);
      idle_total += idle_ns;
      idle_ns = 0;
      timed_wait([&sync] { sync.sync_decide(); });
      switch (sync.phase()) {
        case WindowSync::Phase::kWindow:
          for (int g : order) {
            if (!sync.try_claim_exec(g)) continue;
            if (plan.home[static_cast<std::size_t>(g)] != worker) ++steals;
            LpGroup& grp = *plan.groups[static_cast<std::size_t>(g)];
            t_worker = WorkerCtx{this, &grp};
            run_window(grp, sync.bound(g));
            grp.stall_progressed = false;
            t_worker = WorkerCtx{};
          }
          break;
        case WindowSync::Phase::kStall:
          for (int g : order) {
            if (!sync.try_claim_exec(g)) continue;
            LpGroup& grp = *plan.groups[static_cast<std::size_t>(g)];
            t_worker = WorkerCtx{this, &grp};
            grp.stall_progressed = run_stall(grp);
            t_worker = WorkerCtx{};
          }
          break;
        case WindowSync::Phase::kExit:
          plan.steals_by_worker[static_cast<std::size_t>(worker)] = steals;
          plan.idle_ns_by_worker[static_cast<std::size_t>(worker)] = idle_total + idle_ns;
          return;
      }
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(plan.error_mu);
      if (!plan.first_error) plan.first_error = std::current_exception();
    }
    // Stop before withdrawing so the next decide() already observes it; the
    // early barrier arrivals then stand in for this worker's missing ones.
    stop_requested_.store(true, std::memory_order_release);
    sync.withdraw();
    plan.steals_by_worker[static_cast<std::size_t>(worker)] = steals;
    plan.idle_ns_by_worker[static_cast<std::size_t>(worker)] = idle_total + idle_ns;
    t_worker = WorkerCtx{};
  }
}

void Engine::merge_group(std::vector<std::unique_ptr<LpGroup>>& groups, LpGroup& grp) {
  // Track the minimum incoming key while draining, to invalidate staged
  // speculation: any staged event an incoming one orders before must go back
  // to the heap (it would otherwise be delivered too early). The stage is
  // kept ascending, so the invalidated set is a suffix.
  const bool watch_min = !grp.stage().empty();
  bool have_min = false;
  EventKey inc_min{};
  for (auto& src : groups) {
    if (src.get() == &grp) continue;
    std::vector<Event>& inbox = src->outbox_for(grp.index());
    if (watch_min) {
      for (const Event& ev : inbox) {
        const EventKey k = key_of(ev);
        if (!have_min || key_less(k, inc_min)) {
          inc_min = k;
          have_min = true;
        }
      }
    }
    grp.merge_inbox(inbox);
  }
  if (have_min) {
    auto& stage = grp.stage();
    while (!stage.empty() && key_less(inc_min, key_of(stage.back()))) {
      grp.queue().push(std::move(stage.back()));
      stage.pop_back();
      ++grp.rollbacks;
    }
  }
}

void Engine::run_window(LpGroup& grp, SimTime bound) {
  EventQueue& q = grp.queue();
  auto& stage = grp.stage();
  std::uint64_t delivered = 0;
  // The window bound is the natural O(1) near-horizon for this group's
  // queue: everything deliverable this window lands in the buckets, the rest
  // falls back to the far heap.
  const SimTime base = grp.now();
  q.set_horizon(base, bound > base ? bound - base : 1);
  // Deliberately no stop check inside the window: every group finishes the
  // full window, so the delivered set stays deterministic per worker count.
  // Delivery is a two-way merge of the speculation stage and the heap: a
  // handler may self-schedule an event that orders before a later staged
  // entry (same timestamp, control priority), and the merge keeps the global
  // key order exact either way.
  for (;;) {
    const bool stage_has = !stage.empty();
    const bool heap_has = !q.empty();
    bool from_stage;
    if (stage_has && heap_has) {
      from_stage = EventOrder{}(stage.front(), q.peek());
    } else if (stage_has || heap_has) {
      from_stage = stage_has;
    } else {
      break;
    }
    if ((from_stage ? stage.front().time : q.peek().time) >= bound) break;
    Event ev = from_stage ? grp.pop_stage() : q.pop();
    if (ev.kind == kRelayEventKind) {
      // The carrier's key is the minimum over its batch, so every item lands
      // in the heap before it could have been due; relays are transport, not
      // delivery — no clock advance, no events_processed.
      unpack_relay(grp, std::move(ev));
      continue;
    }
    if (dead_[static_cast<std::size_t>(ev.target)] != 0) {
      ++grp.events_dropped_dead;
      continue;
    }
    LogicalProcess* lp = processes_[static_cast<std::size_t>(ev.target)];
    if (lp == nullptr) throw std::logic_error("event for unknown LP");
    grp.advance_now(ev.time);
    ++grp.events_processed;
    ++delivered;
    grp.set_current_source(ev.target);
    lp->on_event(*this, std::move(ev));
    grp.set_current_source(kExternalSource);
  }
  grp.window_events_last = delivered;

  // Bounded speculation: pop (stage) up to `speculate` events past the bound
  // so the next window starts from pre-decoded, pre-sorted work. Handlers of
  // this window may have self-scheduled events ordering before a staged
  // leftover — push such suffixes back first so the stage stays ascending
  // and staging pops append in key order.
  const int depth = sharding_.speculate;
  if (depth <= 0) return;
  while (!stage.empty() && !q.empty() && EventOrder{}(q.peek(), stage.back())) {
    q.push(std::move(stage.back()));
    stage.pop_back();
    ++grp.rollbacks;
  }
  while (static_cast<int>(stage.size()) < depth && !q.empty()) {
    Event ev = q.pop();
    if (ev.kind == kRelayEventKind) {
      unpack_relay(grp, std::move(ev));
      continue;
    }
    ++grp.speculated_events;
    stage.push_back(std::move(ev));
  }
}

bool Engine::run_stall(LpGroup& grp) {
  bool progressed = false;
  for (LpId id : grp.members()) {
    LogicalProcess* lp = processes_[static_cast<std::size_t>(id)];
    if (lp == nullptr || lp->terminated() || dead_[static_cast<std::size_t>(id)] != 0) {
      continue;
    }
    grp.set_current_source(id);
    if (lp->on_stall(*this)) progressed = true;
    grp.set_current_source(kExternalSource);
  }
  return progressed;
}

std::vector<LpId> Engine::unterminated() const {
  std::vector<LpId> out;
  for (std::size_t id = 0; id < processes_.size(); ++id) {
    LogicalProcess* lp = processes_[id];
    if (lp != nullptr && !lp->terminated() && !is_dead(static_cast<LpId>(id))) {
      out.push_back(static_cast<LpId>(id));
    }
  }
  return out;
}

}  // namespace exasim
