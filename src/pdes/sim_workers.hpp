#pragma once

namespace exasim {

/// Number of CPUs this process may actually use, never less than 1: hardware
/// threads, capped by the process CPU affinity mask (sched_getaffinity — a
/// `taskset`/container restriction) and by the cgroup CPU quota (v2 cpu.max
/// or v1 cfs_quota/cfs_period, rounded up). Plain hardware_concurrency()
/// oversubscribes restricted environments and the extra workers only add
/// window-barrier idle time.
int hardware_sim_workers();

/// Worker count implied by the environment: EXASIM_SIM_WORKERS set to a
/// positive integer wins, "auto" means hardware_sim_workers(), anything else
/// (including unset) means 1 — the sequential engine.
int default_sim_workers();

/// Resolves a configured worker count (e.g. SimConfig::sim_workers) to the
/// count the engine should use: a positive request is taken literally, 0
/// defers to the environment via default_sim_workers(), and a negative value
/// means "auto" (one worker per hardware thread).
int resolve_sim_workers(int requested);

}  // namespace exasim
