#include "pdes/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace exasim {

namespace {

// Process-wide scheduler counters (relaxed: statistics, not synchronization),
// mirroring the fan-out counters in engine.cpp so metrics/perf can read them
// without a handle on the engine.
std::atomic<std::uint64_t> g_sched_windows{0};
std::atomic<std::uint64_t> g_sched_widenings{0};
std::atomic<std::uint64_t> g_sched_steals{0};
std::atomic<std::uint64_t> g_sched_speculated{0};
std::atomic<std::uint64_t> g_sched_rollbacks{0};
std::atomic<std::uint64_t> g_sched_idle_ns{0};

/// Feedback thresholds for the adaptive stretch controller: a group that
/// delivered fewer events than kSparseEvents in its last window is running
/// windows too fine (barrier overhead dominates) and may widen; one that
/// delivered more than kDenseEvents narrows back so no group runs unboundedly
/// far ahead of the merge point.
constexpr std::uint64_t kSparseEvents = 64;
constexpr std::uint64_t kDenseEvents = 8192;

bool parse_int_field(const std::string& v, int* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end != v.c_str() + v.size() || parsed < 1 || parsed > 1 << 20) return false;
  *out = static_cast<int>(parsed);
  return true;
}

}  // namespace

std::optional<SchedulerSpec> parse_scheduler_spec(const std::string& text) {
  SchedulerSpec spec;
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }
  if (head == "fixed") {
    spec.kind = SchedulerKind::kFixed;
  } else if (head == "adaptive") {
    spec.kind = SchedulerKind::kAdaptive;
  } else {
    return std::nullopt;
  }
  while (!opts.empty()) {
    std::string field = opts;
    if (auto comma = opts.find(','); comma != std::string::npos) {
      field = opts.substr(0, comma);
      opts = opts.substr(comma + 1);
    } else {
      opts.clear();
    }
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "stretch") {
      if (!parse_int_field(value, &spec.stretch_max)) return std::nullopt;
    } else if (key == "gpw") {
      if (!parse_int_field(value, &spec.groups_per_worker)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

std::string to_string(const SchedulerSpec& spec) {
  if (spec.kind == SchedulerKind::kFixed) {
    std::string s = "fixed";
    if (spec.groups_per_worker > 0) s += ":gpw=" + std::to_string(spec.groups_per_worker);
    return s;
  }
  std::string s = "adaptive";
  const SchedulerSpec defaults;
  std::string opts;
  if (spec.stretch_max != defaults.stretch_max) {
    opts += "stretch=" + std::to_string(spec.stretch_max);
  }
  if (spec.groups_per_worker > 0) {
    if (!opts.empty()) opts += ",";
    opts += "gpw=" + std::to_string(spec.groups_per_worker);
  }
  if (!opts.empty()) s += ":" + opts;
  return s;
}

const std::vector<std::string>& list_schedulers() {
  static const std::vector<std::string> kNames = {"fixed", "adaptive"};
  return kNames;
}

SchedulerSpec resolve_scheduler_spec(const std::string& configured) {
  if (!configured.empty()) {
    auto spec = parse_scheduler_spec(configured);
    if (!spec) throw std::invalid_argument("malformed scheduler spec: " + configured);
    return *spec;
  }
  if (const char* env = std::getenv(kSchedulerEnvVar); env != nullptr && *env != '\0') {
    if (auto spec = parse_scheduler_spec(env)) return *spec;
  }
  return SchedulerSpec{};
}

int resolve_speculation(int configured) {
  if (configured >= 0) return configured;
  if (const char* env = std::getenv(kSpeculateEnvVar); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 0) return static_cast<int>(parsed);
  }
  return 0;
}

int FixedWindowPolicy::plan(const SchedFeedback& fb, SimTime lookahead,
                            std::vector<SimTime>& bounds) {
  SimTime global_min = kSimTimeNever;
  for (SimTime t : fb.mins) global_min = std::min(global_min, t);
  const SimTime bound =
      global_min > kSimTimeNever - lookahead ? kSimTimeNever : global_min + lookahead;
  std::fill(bounds.begin(), bounds.end(), bound);
  return 0;
}

int AdaptiveWindowPolicy::plan(const SchedFeedback& fb, SimTime lookahead,
                               std::vector<SimTime>& bounds) {
  const std::size_t groups = fb.mins.size();
  if (stretch_.size() != groups) stretch_.assign(groups, 1);

  // Saturating t + n*lookahead.
  auto widen = [&](SimTime t, std::uint64_t n) {
    if (t == kSimTimeNever) return kSimTimeNever;
    const SimTime span = lookahead > kSimTimeNever / static_cast<SimTime>(n)
                             ? kSimTimeNever
                             : lookahead * static_cast<SimTime>(n);
    return t > kSimTimeNever - span ? kSimTimeNever : t + span;
  };

  // Two smallest pending minima: min over i != g is global_min unless g is
  // the unique argmin, in which case it is the second smallest.
  SimTime global_min = kSimTimeNever;
  SimTime second_min = kSimTimeNever;
  std::size_t min_count = 0;
  for (SimTime t : fb.mins) {
    if (t < global_min) {
      second_min = global_min;
      global_min = t;
      min_count = 1;
    } else if (t == global_min) {
      ++min_count;
    } else {
      second_min = std::min(second_min, t);
    }
  }
  const SimTime fixed_bound = widen(global_min, 1);

  // Stretch feedback: groups that delivered sparse windows (and workers did
  // idle at the barriers) widen; dense groups narrow back. The stretch only
  // caps the group's own headroom — safety comes from the envelope below.
  const bool idled = fb.idle_ns > 0;
  int widenings = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    if (fb.window_events[g] > kDenseEvents) {
      stretch_[g] = std::max<std::uint32_t>(1, stretch_[g] / 2);
    } else if (idled && fb.window_events[g] < kSparseEvents) {
      stretch_[g] = std::min<std::uint32_t>(static_cast<std::uint32_t>(stretch_max_),
                                            stretch_[g] * 2);
    }
    const SimTime others_min =
        (fb.mins[g] == global_min && min_count == 1) ? second_min : global_min;
    const SimTime envelope = widen(others_min, 1);
    const SimTime desired = widen(fb.mins[g], stretch_[g]);
    SimTime bound = std::min(envelope, desired);
    if (bound < fixed_bound) bound = fixed_bound;  // never narrower than fixed
    bounds[g] = bound;
    if (bound > fixed_bound) ++widenings;
  }
  return widenings;
}

std::unique_ptr<SchedulerPolicy> make_scheduler(const SchedulerSpec& spec) {
  if (spec.kind == SchedulerKind::kAdaptive) {
    return std::make_unique<AdaptiveWindowPolicy>(spec.stretch_max);
  }
  return std::make_unique<FixedWindowPolicy>();
}

SchedStats sched_stats() {
  SchedStats s;
  s.windows = g_sched_windows.load(std::memory_order_relaxed);
  s.window_widenings = g_sched_widenings.load(std::memory_order_relaxed);
  s.steals = g_sched_steals.load(std::memory_order_relaxed);
  s.speculated = g_sched_speculated.load(std::memory_order_relaxed);
  s.rollbacks = g_sched_rollbacks.load(std::memory_order_relaxed);
  s.barrier_idle_ns = g_sched_idle_ns.load(std::memory_order_relaxed);
  return s;
}

void sched_note_window(std::uint64_t widenings) {
  g_sched_windows.fetch_add(1, std::memory_order_relaxed);
  if (widenings != 0) g_sched_widenings.fetch_add(widenings, std::memory_order_relaxed);
}

void sched_note_run(std::uint64_t steals, std::uint64_t speculated,
                    std::uint64_t rollbacks, std::uint64_t barrier_idle_ns) {
  if (steals != 0) g_sched_steals.fetch_add(steals, std::memory_order_relaxed);
  if (speculated != 0) g_sched_speculated.fetch_add(speculated, std::memory_order_relaxed);
  if (rollbacks != 0) g_sched_rollbacks.fetch_add(rollbacks, std::memory_order_relaxed);
  if (barrier_idle_ns != 0) {
    g_sched_idle_ns.fetch_add(barrier_idle_ns, std::memory_order_relaxed);
  }
}

}  // namespace exasim
