#include "pdes/sim_workers.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace exasim {

namespace {

/// CPUs allowed by the process affinity mask, 0 when unknown. A container or
/// `taskset` can restrict the process to far fewer CPUs than the machine has;
/// std::thread::hardware_concurrency() is allowed to (and on glibc does not)
/// reflect that, so ask the kernel directly.
int affinity_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) return CPU_COUNT(&set);
#endif
  return 0;
}

/// CPUs implied by the cgroup CPU quota (cgroup v2 `cpu.max`, then cgroup v1
/// cfs_quota/cfs_period), rounded up; 0 when unlimited or unknown. Kubernetes
/// and CI runners typically cap simulators this way without shrinking the
/// affinity mask, and oversubscribing the quota just adds barrier idle time.
int cgroup_quota_cpus() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r")) {
    char buf[64] = {0};
    const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    if (got > 0) {
      long long quota = 0;
      long long period = 0;
      if (std::sscanf(buf, "%lld %lld", &quota, &period) == 2 && quota > 0 && period > 0) {
        return static_cast<int>((quota + period - 1) / period);
      }
      // "max <period>" means unlimited.
    }
  }
  long long quota = 0;
  long long period = 0;
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "r")) {
    const int n = std::fscanf(f, "%lld", &quota);
    std::fclose(f);
    if (n != 1) quota = 0;
  }
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_period_us", "r")) {
    const int n = std::fscanf(f, "%lld", &period);
    std::fclose(f);
    if (n != 1) period = 0;
  }
  if (quota > 0 && period > 0) return static_cast<int>((quota + period - 1) / period);
#endif
  return 0;
}

}  // namespace

int hardware_sim_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  int n = hw == 0 ? 1 : static_cast<int>(hw);
  if (const int affinity = affinity_cpus(); affinity > 0 && affinity < n) n = affinity;
  if (const int quota = cgroup_quota_cpus(); quota > 0 && quota < n) n = quota;
  return n < 1 ? 1 : n;
}

int default_sim_workers() {
  const char* env = std::getenv("EXASIM_SIM_WORKERS");
  if (env == nullptr || *env == '\0') return 1;
  if (std::strcmp(env, "auto") == 0) return hardware_sim_workers();
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1) return 1;
  return static_cast<int>(parsed);
}

int resolve_sim_workers(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return hardware_sim_workers();
  return default_sim_workers();
}

}  // namespace exasim
