#include "pdes/sim_workers.hpp"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace exasim {

int hardware_sim_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int default_sim_workers() {
  const char* env = std::getenv("EXASIM_SIM_WORKERS");
  if (env == nullptr || *env == '\0') return 1;
  if (std::strcmp(env, "auto") == 0) return hardware_sim_workers();
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 1) return 1;
  return static_cast<int>(parsed);
}

int resolve_sim_workers(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return hardware_sim_workers();
  return default_sim_workers();
}

}  // namespace exasim
