#pragma once

#include <cstddef>
#include <vector>

#include "pdes/event.hpp"
#include "util/time.hpp"

namespace exasim {

/// Min-priority queue of events under EventOrder — the per-LP-group event
/// heap of the sharded engine (one per group; the sequential engine is the
/// one-group degenerate case). Not thread-safe: each queue is owned by
/// exactly one worker thread.
class EventQueue {
 public:
  void push(Event&& ev);

  /// Pops the earliest event; undefined on an empty queue.
  Event pop();

  /// Timestamp of the earliest event, kSimTimeNever when empty — the value a
  /// group publishes for the conservative window-bound computation.
  SimTime min_time() const { return heap_.empty() ? kSimTimeNever : heap_.front().time; }

  /// The earliest event without removing it; undefined on an empty queue.
  /// Used by the engine's stage/heap two-way delivery merge.
  const Event& peek() const { return heap_.front(); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct QueueOrder {
    // std::push_heap/pop_heap build a max-heap; invert EventOrder.
    bool operator()(const Event& a, const Event& b) const { return EventOrder{}(b, a); }
  };

  std::vector<Event> heap_;  ///< Heap-ordered via std::push_heap/pop_heap.
};

}  // namespace exasim
