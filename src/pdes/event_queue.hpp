#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdes/event.hpp"
#include "util/time.hpp"

namespace exasim {

/// Min-priority queue of events under EventOrder — the per-LP-group event
/// heap of the sharded engine (one per group; the sequential engine is the
/// one-group degenerate case). Not thread-safe: each queue is owned by
/// exactly one worker thread.
///
/// Two-level structure (DESIGN.md §13). Full Event structs live in a
/// slot-stable slab (vector + free list); the orderings only ever move
/// 24-byte Entry keys (time, packed priority|source, slab slot), so heap
/// sifts stop shuffling 56-byte events and their unique_ptr payloads around.
/// Entries inside the current conservative window land in a 64-bucket
/// near-horizon array — each bucket a small binary heap covering a
/// power-of-two time slice — while everything at or past the horizon falls
/// back to one big far heap. The engine sets the horizon from the window
/// bound (WindowSync) or, sequentially, as a rolling lookahead-sized window,
/// so the bucket a pop comes from is almost always the first occupied one
/// and its heap holds only a sliver of the pending set. Bucket routing is a
/// placement heuristic only: pop/peek/min_time compare the best near entry
/// against the far-heap root under the full key, so any horizon (including
/// none — the initial state routes everything far) delivers the exact
/// EventOrder sequence.
///
/// The per-source `seq` tie-break is not packed into the entry: the
/// comparator dereferences the slab only when (time, priority, source) tie,
/// which keeps the common compare at two branch-free word compares.
class EventQueue {
 public:
  void push(Event&& ev);

  /// Drains `evs` into the queue — the bulk half of a mailbox merge or relay
  /// unpack. Entries bound for the far heap are appended and re-heapified in
  /// one Floyd pass when the batch is large relative to the heap (>= 1/8 of
  /// its size), which beats per-event sifts for inbox-sized batches.
  void push_bulk(std::vector<Event>& evs);

  /// Pops the earliest event; undefined on an empty queue.
  Event pop();

  /// Timestamp of the earliest event, kSimTimeNever when empty — the value a
  /// group publishes for the conservative window-bound computation.
  SimTime min_time() const;

  /// The earliest event without removing it; undefined on an empty queue.
  /// Used by the engine's stage/heap two-way delivery merge.
  const Event& peek() const;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Points the near-horizon bucket array at [base, base + span'): span is
  /// rounded up so the 64 buckets have a power-of-two width. Events already
  /// queued are re-routed between levels lazily (near leftovers re-bucket
  /// now; far entries stay far) — placement is a heuristic, never a
  /// correctness input. Called by the engine once per conservative window
  /// (bound from WindowSync) or per rolling sequential window.
  void set_horizon(SimTime base, SimTime span);

  /// Exclusive upper time bound of the near buckets (0 until the first
  /// set_horizon: everything routes to the far heap).
  SimTime horizon_end() const { return near_end_; }

  /// Queue-local traffic counters, folded into the process-wide stats
  /// (queue_note) by the engine at the end of a run.
  struct LocalStats {
    std::uint64_t near_hits = 0;    ///< Pops served from a near bucket.
    std::uint64_t bulk_merges = 0;  ///< push_bulk calls.
  };
  LocalStats take_stats() {
    LocalStats s = stats_;
    stats_ = LocalStats{};
    return s;
  }

 private:
  /// Compact ordering key + slab slot. `ps` packs (priority << 32) |
  /// sign-biased source so one unsigned compare orders both fields.
  struct Entry {
    SimTime time = 0;
    std::uint64_t ps = 0;
    std::uint32_t slot = 0;
  };

  static constexpr int kBuckets = 64;

  static std::uint64_t pack_ps(EventPriority priority, LpId source) {
    return (static_cast<std::uint64_t>(priority) << 32) |
           (static_cast<std::uint32_t>(source) ^ 0x80000000u);
  }

  bool entry_less(const Entry& a, const Entry& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.ps != b.ps) return a.ps < b.ps;
    return slab_[a.slot].seq < slab_[b.slot].seq;
  }

  std::uint32_t slab_put(Event&& ev);
  Event slab_take(std::uint32_t slot);

  void heap_up(std::vector<Entry>& h, std::size_t i);
  void heap_down(std::vector<Entry>& h, std::size_t i);
  Entry heap_pop_root(std::vector<Entry>& h);

  /// Bucket index for time t under the current horizon; -1 = far heap.
  /// Times below the base clamp into bucket 0, so every bucket still covers
  /// a contiguous ascending time range.
  int bucket_of(SimTime t) const;
  void route(Entry e);

  /// Locates the minimum entry under the full key: pointer to the winning
  /// heap (a near bucket or the far heap), or nullptr when empty.
  const std::vector<Entry>* min_heap(int* bucket) const;

  std::vector<Event> slab_;          ///< Slot-stable event storage.
  std::vector<std::uint32_t> free_;  ///< Recyclable slab slots.
  std::vector<Entry> far_;           ///< Heap of entries at/past the horizon.
  std::array<std::vector<Entry>, kBuckets> near_;  ///< Per-slice mini-heaps.
  std::uint64_t occupied_ = 0;       ///< Bit g set <=> near_[g] nonempty.
  SimTime near_base_ = 0;
  SimTime near_end_ = 0;             ///< 0 = near level disabled.
  int width_shift_ = 0;              ///< Bucket width = 1 << width_shift_.
  std::size_t size_ = 0;
  std::vector<Entry> scratch_;       ///< push_bulk staging (reused).
  LocalStats stats_;
};

/// Process-wide queue traffic counters (metrics/perf surfaces them next to
/// the pool and fan-out counters); engines fold per-queue LocalStats in at
/// the end of each run.
struct QueueStats {
  std::uint64_t near_hits = 0;
  std::uint64_t bulk_merges = 0;
};
QueueStats queue_stats();
void queue_note(const EventQueue::LocalStats& s);

}  // namespace exasim
