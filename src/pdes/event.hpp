#pragma once

#include <cstdint>
#include <memory>

#include "util/time.hpp"

namespace exasim {

/// Identifies a logical process (LP). For the simulated MPI layer, LP id ==
/// simulated MPI rank. Negative ids are reserved for engine-internal LPs.
using LpId = std::int32_t;

/// Event source for schedules made from outside any LP's event handler
/// (machine setup, tests). Sorts before every real LP at equal
/// (time, priority), so pre-run setup events keep their schedule order.
inline constexpr LpId kExternalSource = -1;

/// Event delivery class at equal timestamps. Control events (simulator-
/// internal failure/abort notifications) sort before regular messages so a
/// process learns of a peer's death before it would match a message that was
/// in flight at the same instant.
enum class EventPriority : std::uint8_t {
  kControl = 0,
  kMessage = 1,
  kTimer = 2,
};

/// Base class for event payloads. Layers above the engine (the simulated MPI
/// layer, timers) derive their own payload types and dispatch on Event::kind.
struct EventPayload {
  virtual ~EventPayload() = default;
};

/// A scheduled simulation event. Ordering is (time, priority, source, seq):
/// `source` is the LP whose handler scheduled the event (kExternalSource for
/// setup events) and `seq` is a per-source sequence number. The key is a pure
/// function of the simulation plan — independent of how LP groups interleave
/// on native threads — which is what makes the sharded engine's schedule
/// bit-reproducible for any worker count (paper §V-E requires repeatable
/// experiments).
struct Event {
  SimTime time = 0;
  EventPriority priority = EventPriority::kMessage;
  LpId source = kExternalSource;
  std::uint64_t seq = 0;
  LpId target = 0;
  int kind = 0;
  std::unique_ptr<EventPayload> payload;
};

struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time < b.time;
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.source != b.source) return a.source < b.source;
    return a.seq < b.seq;
  }
};

}  // namespace exasim
