#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <vector>

#include "util/pool.hpp"
#include "util/time.hpp"

namespace exasim {

/// Identifies a logical process (LP). For the simulated MPI layer, LP id ==
/// simulated MPI rank. Negative ids are reserved for engine-internal LPs.
using LpId = std::int32_t;

/// Event source for schedules made from outside any LP's event handler
/// (machine setup, tests). Sorts before every real LP at equal
/// (time, priority), so pre-run setup events keep their schedule order.
inline constexpr LpId kExternalSource = -1;

/// Event delivery class at equal timestamps. Control events (simulator-
/// internal failure/abort notifications) sort before regular messages so a
/// process learns of a peer's death before it would match a message that was
/// in flight at the same instant.
enum class EventPriority : std::uint8_t {
  kControl = 0,
  kMessage = 1,
  kTimer = 2,
};

/// Base class for event payloads. Layers above the engine (the simulated MPI
/// layer, timers) derive their own payload types and dispatch on Event::kind.
///
/// Payloads are the per-event heap traffic of the hot path, so allocation is
/// routed through the thread-local slab pool (util::pool_alloc — thread-local
/// means LP-group-local under the sharded engine; DESIGN.md §9). Derived
/// classes inherit the class-level operator new/delete; deletion through the
/// base pointer resolves to them via the virtual destructor.
struct EventPayload {
  virtual ~EventPayload() = default;

  static void* operator new(std::size_t bytes) { return util::pool_alloc(bytes); }
  static void operator delete(void* p) { util::pool_free(p); }
};

/// A scheduled simulation event. Ordering is (time, priority, source, seq):
/// `source` is the LP whose handler scheduled the event (kExternalSource for
/// setup events) and `seq` is a per-source sequence number. The key is a pure
/// function of the simulation plan — independent of how LP groups interleave
/// on native threads — which is what makes the sharded engine's schedule
/// bit-reproducible for any worker count (paper §V-E requires repeatable
/// experiments).
struct Event {
  SimTime time = 0;
  EventPriority priority = EventPriority::kMessage;
  LpId source = kExternalSource;
  std::uint64_t seq = 0;
  LpId target = 0;
  int kind = 0;
  std::unique_ptr<EventPayload> payload;
};

/// The ordering key of an Event, detached from its payload — copyable, so
/// the engine can remember "the minimum key seen" (speculation rollback)
/// without copying events.
struct EventKey {
  SimTime time = 0;
  EventPriority priority = EventPriority::kMessage;
  LpId source = kExternalSource;
  std::uint64_t seq = 0;
};

inline EventKey key_of(const Event& e) { return EventKey{e.time, e.priority, e.source, e.seq}; }

inline bool key_less(const EventKey& a, const EventKey& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.source != b.source) return a.source < b.source;
  return a.seq < b.seq;
}

struct EventOrder {
  bool operator()(const Event& a, const Event& b) const { return key_less(key_of(a), key_of(b)); }
};

/// Engine-internal event kind for a batched cross-group fan-out relay
/// (Engine::schedule_fanout). Reserved: layers above the engine must not use
/// it. Chosen outside any plausible user kind range.
inline constexpr int kRelayEventKind = std::numeric_limits<int>::min();

/// Payload of a kRelayEventKind event: the per-destination-group batch of a
/// fan-out. The carrier event adopts the minimum EventOrder key over the
/// batch, so the relay is unpacked into the destination group's queue before
/// any of its items could run; the batch items then sort normally.
struct RelayPayload final : EventPayload {
  std::vector<Event> batch;
};

}  // namespace exasim
