#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "pdes/event.hpp"
#include "util/time.hpp"

namespace exasim {

class Engine;

/// A logical process driven by the engine. The simulated MPI layer implements
/// one LP per simulated MPI process; the LP reacts to message arrivals,
/// simulator-internal notifications, and timer wakeups.
class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;

  /// Delivers an event. The LP may advance its local state, switch into its
  /// application fiber, and schedule further events on the engine.
  virtual void on_event(Engine& engine, Event&& ev) = 0;

  /// Invoked when the event queue drains while this LP has not terminated —
  /// the conservative-PDES deadlock-detection hook ("synchronization
  /// mechanism", paper §IV-C). Return true if the LP made progress (scheduled
  /// new events or terminated); returning false from every stalled LP ends
  /// the run with those LPs reported as deadlocked.
  virtual bool on_stall(Engine& engine) { (void)engine; return false; }

  /// True once the LP needs no more events (finished, failed, or aborted).
  virtual bool terminated() const = 0;
};

/// Sequential conservative discrete-event engine.
///
/// Events execute in deterministic (time, priority, seq) order. This is the
/// single-native-process degenerate case of xSim's PDES: all simulated
/// processes are sequentialized and interleaved on one native process using a
/// schedule based on message receive time stamps (paper §IV-A).
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an LP. Ids must be dense [0, n) for process LPs; the engine
  /// does not own the LP.
  void add_process(LpId id, LogicalProcess* lp);

  /// Schedules an event; returns its sequence number.
  std::uint64_t schedule(SimTime time, LpId target, int kind,
                         std::unique_ptr<EventPayload> payload,
                         EventPriority priority = EventPriority::kMessage);

  /// Marks an LP dead: all pending and future events targeted at it are
  /// dropped at delivery ("all messages directed to this simulated MPI
  /// process are deleted", paper §IV-B).
  void mark_dead(LpId id);
  bool is_dead(LpId id) const { return dead_.count(id) != 0; }

  /// Runs until the queue drains and no stalled LP makes progress.
  void run();

  /// Requests run() to stop after the current event (used once every
  /// simulated process has aborted and the simulator shuts down).
  void request_stop() { stop_requested_ = true; }

  /// Time of the most recently delivered event.
  SimTime now() const { return now_; }

  /// LPs that had not terminated when run() returned (deadlock diagnostics).
  std::vector<LpId> unterminated() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t events_pending() const { return queue_.size(); }
  std::uint64_t events_dropped_dead() const { return events_dropped_dead_; }

 private:
  struct QueueOrder {
    // std::push_heap/pop_heap build a max-heap; invert EventOrder.
    bool operator()(const Event& a, const Event& b) const { return EventOrder{}(b, a); }
  };

  /// Pops the earliest event off queue_ (a binary heap under QueueOrder).
  Event pop_next_event();

  std::vector<LogicalProcess*> processes_;
  std::vector<Event> queue_;  ///< Heap-ordered via std::push_heap/pop_heap.
  std::unordered_set<LpId> dead_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t events_dropped_dead_ = 0;
  bool stop_requested_ = false;
};

}  // namespace exasim
