#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "pdes/event.hpp"
#include "pdes/event_queue.hpp"
#include "pdes/scheduler.hpp"
#include "util/time.hpp"

namespace exasim {

class Engine;
class LpGroup;
class WindowSync;

/// A logical process driven by the engine. The simulated MPI layer implements
/// one LP per simulated MPI process; the LP reacts to message arrivals,
/// simulator-internal notifications, and timer wakeups.
class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;

  /// Delivers an event. The LP may advance its local state, switch into its
  /// application fiber, and schedule further events on the engine.
  virtual void on_event(Engine& engine, Event&& ev) = 0;

  /// Invoked when the event queue drains while this LP has not terminated —
  /// the conservative-PDES deadlock-detection hook ("synchronization
  /// mechanism", paper §IV-C). Return true if the LP made progress (scheduled
  /// new events or terminated); returning false from every stalled LP ends
  /// the run with those LPs reported as deadlocked.
  virtual bool on_stall(Engine& engine) { (void)engine; return false; }

  /// True once the LP needs no more events (finished, failed, or aborted).
  virtual bool terminated() const = 0;
};

/// Conservative discrete-event engine, sharded over LP groups.
///
/// Events execute in deterministic (time, priority, source, per-source seq)
/// order — a key that does not depend on cross-LP scheduling interleaving, so
/// the delivered schedule is a pure function of the simulated communication
/// plan. With `ShardingOptions::workers == 1` (the default) the engine is the
/// original sequential loop: all simulated processes interleaved on one
/// native thread using a schedule based on message receive time stamps
/// (paper §IV-A). With N > 1 workers the LPs are partitioned into contiguous
/// groups (aligned to `block_alignment`, normally ranks-per-node, so
/// intra-node traffic stays group-local) — at least one group per worker,
/// more when the scheduler oversubscribes for work-stealing — each group has
/// its own event heap, and the groups advance in lock-step conservative
/// windows bounded below `lookahead` — the minimum cross-node delivery
/// latency — past the global minimum (the SchedulerPolicy may widen a
/// group's bound inside the provably safe per-group envelope; DESIGN.md
/// §11). Each cycle, worker threads claim ready groups home-first and then
/// steal leftovers in group-id order. Cross-group events ride per-(source →
/// target) mailboxes merged at the window barrier; because the safe window
/// bounds and the ordering key are both partition-independent, every worker
/// count, scheduler policy, and speculation depth delivers the identical
/// event schedule.
class Engine {
 public:
  /// How to shard the LPs over worker threads. Applies to the next run().
  struct ShardingOptions {
    /// Worker threads. 1 selects the sequential engine (with the default
    /// one-group-per-worker scheduler); clamped down to the number of
    /// alignment blocks.
    int workers = 1;
    /// Conservative window width, normally
    /// NetworkModel::min_remote_latency() — a provable lower bound over any
    /// route/variant of the network model (contention waits and per-link
    /// timeouts only ever add delay, so the bound survives the link-level
    /// layers; DESIGN.md §12). Clamped up to 1 ns so windows always make
    /// progress.
    SimTime lookahead = 1;
    /// Partition granularity in LPs: groups are unions of contiguous blocks
    /// of this many LPs (normally ranks-per-node, keeping sub-lookahead
    /// intra-node traffic inside one group).
    int block_alignment = 1;
    /// Optional explicit partition override mapping LP id → group index in
    /// [0, groups); when set it replaces the contiguous-block partition.
    std::function<int(LpId)> group_of;
    /// Window scheduling policy (fixed or adaptive) and its parameters,
    /// including groups-per-worker oversubscription for work-stealing.
    SchedulerSpec scheduler;
    /// Bounded speculation depth: maximum events per group popped (staged)
    /// past the window bound ahead of their commit; 0 disables. Staged
    /// events that a merged-in earlier event invalidates are rolled back to
    /// the heap, so the delivered schedule is unchanged (DESIGN.md §11).
    int speculate = 0;
  };

  /// What Engine::schedule does when an event is scheduled before the
  /// scheduling group's local clock (a causality violation — conservative
  /// windows only stay exact for events at or after "now").
  enum class CausalityMode : std::uint8_t {
    kDefault,  ///< kThrow in debug builds, kCount when NDEBUG.
    kThrow,    ///< Throw std::logic_error at the offending schedule() call.
    kCount,    ///< Count (see causality_violations()) and warn once.
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers an LP. Ids must be dense [0, n) for process LPs; the engine
  /// does not own the LP.
  void add_process(LpId id, LogicalProcess* lp);

  /// Schedules an event; returns its per-source sequence number. Callable
  /// from any worker thread during a parallel run: the event is routed to
  /// the target's group-local heap or, cross-group, to the scheduling
  /// group's outbox for merge at the next window barrier.
  std::uint64_t schedule(SimTime time, LpId target, int kind,
                         std::unique_ptr<EventPayload> payload,
                         EventPriority priority = EventPriority::kMessage);

  /// One destination of a schedule_fanout() call.
  struct FanoutItem {
    SimTime time = 0;
    LpId target = 0;
  };

  /// Builds the payload for one fan-out item. Invoked once per live item, in
  /// item order, on the scheduling thread.
  using FanoutPayloadFn = std::function<std::unique_ptr<EventPayload>(const FanoutItem&)>;

  /// Schedules one event per item — semantically identical to calling
  /// schedule() per item (same per-source seq draw order, so the delivered
  /// schedule is bit-identical) — but batched for the sharded engine: items
  /// for the scheduling group's own LPs go straight to its heap, while all
  /// items bound for another group travel as ONE relay event per destination
  /// group (kind kRelayEventKind, RelayPayload carrying the batch), unpacked
  /// into the group's heap on arrival. A ranks-wide failure broadcast thus
  /// costs O(groups) cross-group mailbox events instead of O(ranks). Items
  /// whose target is already dead are skipped where the dead flag is safely
  /// readable (scheduler's own group at enqueue, destination group at
  /// unpack) and counted in events_dropped_dead either way, so the delivered
  /// set and every counter are partition-independent.
  void schedule_fanout(const std::vector<FanoutItem>& items, int kind,
                       const FanoutPayloadFn& make_payload,
                       EventPriority priority = EventPriority::kControl);

  /// Marks an LP dead: all pending and future events targeted at it are
  /// dropped at delivery ("all messages directed to this simulated MPI
  /// process are deleted", paper §IV-B).
  void mark_dead(LpId id);
  bool is_dead(LpId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < dead_.size() &&
           dead_[static_cast<std::size_t>(id)] != 0;
  }

  void set_sharding(ShardingOptions opts);
  void set_causality_mode(CausalityMode mode) { causality_mode_ = mode; }

  /// Number of schedule() calls that targeted a time before the scheduler's
  /// local clock (only counted in CausalityMode::kCount).
  std::uint64_t causality_violations() const {
    return causality_violations_.load(std::memory_order_relaxed);
  }

  /// Group count the most recent run() used (1 = sequential loop).
  int worker_groups() const { return last_groups_; }

  /// Runs until every queue drains and no stalled LP makes progress.
  void run();

  /// Requests run() to stop (used once every simulated process has aborted
  /// and the simulator shuts down). Sequential runs stop after the current
  /// event; parallel runs stop at the next window boundary, so that the set
  /// of delivered events stays deterministic for a given worker count.
  void request_stop() { stop_requested_.store(true, std::memory_order_release); }

  /// Time of the most recently delivered event — group-local when called
  /// from a worker thread during a parallel run, the global maximum after
  /// run() returns.
  SimTime now() const;

  /// LPs that had not terminated when run() returned (deadlock diagnostics).
  std::vector<LpId> unterminated() const;

  std::uint64_t events_processed() const { return events_processed_; }
  std::size_t events_pending() const { return queue_.size(); }
  std::uint64_t events_dropped_dead() const { return events_dropped_dead_; }

 private:
  struct WorkerPlan;  // Shared state of one run_parallel (defined in .cpp).

  void run_sequential();
  void run_parallel(int workers, int group_count);
  void worker_main(WorkerPlan& plan, int worker);
  void merge_group(std::vector<std::unique_ptr<LpGroup>>& groups, LpGroup& grp);
  void run_window(LpGroup& grp, SimTime bound);
  void unpack_relay(LpGroup& grp, Event&& relay);
  void requeue_relay_items(Event&& relay);
  bool run_stall(LpGroup& grp);
  void plan_shape(int* workers, int* group_count) const;
  std::vector<int> plan_partition(int group_count) const;
  std::uint64_t next_seq_for(LpId source);
  void note_causality_violation(SimTime time, SimTime local_now);

  ShardingOptions sharding_;
  CausalityMode causality_mode_ = CausalityMode::kDefault;
  std::vector<LogicalProcess*> processes_;
  EventQueue queue_;  ///< Sequential heap; staging/leftover area otherwise.
  /// Liveness flags indexed by LP id. Preallocated before worker threads
  /// start; each slot is then written only by the owning group's worker.
  std::vector<std::uint8_t> dead_;
  /// Per-source sequence counters, indexed source + 1 (slot 0 is
  /// kExternalSource). Preallocated before worker threads start; each LP
  /// slot is then touched only by the owning group's worker.
  std::vector<std::uint64_t> seq_by_source_;
  std::vector<int> group_of_;  ///< LP id → group index; set during run().
  SimTime now_ = 0;
  LpId current_source_ = kExternalSource;  ///< Sequential-mode source tracking.
  std::uint64_t events_processed_ = 0;
  std::uint64_t events_dropped_dead_ = 0;
  int last_groups_ = 1;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> causality_violations_{0};
  std::atomic<bool> causality_warned_{false};
};

/// Process-wide counters for schedule_fanout traffic (src/metrics/perf
/// surfaces them next to the pool counters): notice events created, relay
/// carrier events used for cross-group batches, and dead-destination items
/// skipped.
struct FanoutStats {
  std::uint64_t notices = 0;
  std::uint64_t relay_events = 0;
  std::uint64_t dead_skips = 0;
};
FanoutStats fanout_stats();

}  // namespace exasim
