#include "pdes/window_sync.hpp"

#include <algorithm>

namespace exasim {

WindowSync::WindowSync(int workers, int groups, SimTime lookahead, SchedulerPolicy* policy,
                       const std::atomic<bool>* stop)
    : lookahead_(lookahead),
      policy_(policy),
      stop_(stop),
      mins_(static_cast<std::size_t>(groups), kSimTimeNever),
      window_events_(static_cast<std::size_t>(groups), 0),
      progressed_(static_cast<std::size_t>(groups), 0),
      idle_ns_(static_cast<std::size_t>(workers), 0),
      merge_claims_(static_cast<std::size_t>(groups)),
      exec_claims_(static_cast<std::size_t>(groups)),
      bounds_(static_cast<std::size_t>(groups), 0),
      pre_merge_(workers, ArmMergeClaims{this}),
      decide_barrier_(workers, RunDecide{this}) {}

void WindowSync::decide() noexcept {
  // Re-arm the execute claims for the phase about to start. The barrier
  // release orders these stores before any worker's try_claim_exec.
  for (auto& c : exec_claims_) c.store(0, std::memory_order_relaxed);

  if (stop_->load(std::memory_order_acquire)) {
    phase_ = Phase::kExit;
    return;
  }
  SimTime global_min = kSimTimeNever;
  for (SimTime t : mins_) global_min = std::min(global_min, t);
  if (global_min != kSimTimeNever) {
    phase_ = Phase::kWindow;
    std::uint64_t idle = 0;
    for (auto& ns : idle_ns_) {
      idle += ns;
      ns = 0;
    }
    const SchedFeedback fb{mins_, window_events_, idle};
    const int widenings = policy_->plan(fb, lookahead_, bounds_);
    sched_note_window(static_cast<std::uint64_t>(widenings));
    return;
  }
  // All heaps, stages and mailboxes drained. If the previous phase was
  // already a stall round and nobody progressed, the remaining LPs are
  // deadlocked.
  bool progressed = false;
  for (std::uint8_t p : progressed_) progressed = progressed || p != 0;
  phase_ = (phase_ == Phase::kStall && !progressed) ? Phase::kExit : Phase::kStall;
}

}  // namespace exasim
