#include "pdes/window_sync.hpp"

#include <algorithm>

namespace exasim {

WindowSync::WindowSync(int groups, SimTime lookahead, const std::atomic<bool>* stop)
    : lookahead_(lookahead),
      stop_(stop),
      mins_(static_cast<std::size_t>(groups), kSimTimeNever),
      progressed_(static_cast<std::size_t>(groups), 0),
      pre_merge_(groups),
      decide_barrier_(groups, RunDecide{this}) {}

void WindowSync::decide() noexcept {
  if (stop_->load(std::memory_order_acquire)) {
    phase_ = Phase::kExit;
    return;
  }
  SimTime global_min = kSimTimeNever;
  for (SimTime t : mins_) global_min = std::min(global_min, t);
  if (global_min != kSimTimeNever) {
    phase_ = Phase::kWindow;
    bound_ = global_min > kSimTimeNever - lookahead_ ? kSimTimeNever : global_min + lookahead_;
    return;
  }
  // All heaps and mailboxes drained. If the previous phase was already a
  // stall round and nobody progressed, the remaining LPs are deadlocked.
  bool progressed = false;
  for (std::uint8_t p : progressed_) progressed = progressed || p != 0;
  phase_ = (phase_ == Phase::kStall && !progressed) ? Phase::kExit : Phase::kStall;
}

}  // namespace exasim
