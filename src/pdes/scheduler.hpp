#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace exasim {

/// Which window-scheduling policy the sharded engine runs (DESIGN.md §11).
enum class SchedulerKind : std::uint8_t {
  kFixed,     ///< Uniform conservative window: bound = global-min + lookahead.
  kAdaptive,  ///< Per-group windows widened inside the provably safe envelope.
};

/// Parsed `--scheduler` configuration. The canonical spec strings are
/// "fixed" and "adaptive"; the adaptive policy takes optional parameters
/// "adaptive:stretch=N,gpw=N" (maximum window stretch factor and LP groups
/// per worker thread).
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kFixed;
  /// Maximum window width in lookahead units a group may run ahead of its own
  /// pending minimum (adaptive only).
  int stretch_max = 64;
  /// LP groups per worker thread: > 1 oversubscribes groups so finished
  /// workers can steal ready groups. 0 = policy default (fixed 1, adaptive 4).
  int groups_per_worker = 0;
};

/// Parses a scheduler spec string ("fixed", "adaptive",
/// "adaptive:stretch=N,gpw=N"); nullopt on malformed input.
std::optional<SchedulerSpec> parse_scheduler_spec(const std::string& text);

/// Canonical spec string for `spec` (round-trips through parse).
std::string to_string(const SchedulerSpec& spec);

/// Registered scheduler family names, registry order ("fixed", "adaptive") —
/// the values of exp::scheduler_axis().
const std::vector<std::string>& list_schedulers();

/// Environment variable consulted when no --scheduler flag is given.
inline constexpr const char* kSchedulerEnvVar = "EXASIM_SCHEDULER";

/// Resolves a configured spec string (e.g. core::SimConfig::scheduler) to a
/// SchedulerSpec: empty defers to EXASIM_SCHEDULER, unset/malformed
/// environment means "fixed". Throws std::invalid_argument on a malformed
/// non-empty `configured`.
SchedulerSpec resolve_scheduler_spec(const std::string& configured);

/// Environment variable consulted when SimConfig::speculate is negative.
inline constexpr const char* kSpeculateEnvVar = "EXASIM_SPECULATE";

/// Resolves a configured speculation depth: >= 0 is taken literally, < 0
/// defers to EXASIM_SPECULATE (unset/malformed = 0, speculation off).
int resolve_speculation(int configured);

/// Per-cycle feedback the window synchronizer hands the policy. All vectors
/// are indexed by LP-group id.
struct SchedFeedback {
  /// Pending minimum of each group's event heap + speculation stage after the
  /// mailbox merge (kSimTimeNever when empty).
  const std::vector<SimTime>& mins;
  /// Events each group delivered in the previous window phase.
  const std::vector<std::uint64_t>& window_events;
  /// Total ns the worker threads spent waiting at barriers since the previous
  /// plan() call (one-cycle-lagged; a coarse contention signal).
  std::uint64_t idle_ns = 0;
};

/// Strategy deciding the per-group window bounds of the next cycle — the
/// policy half of the WindowSync split (the mechanism half keeps the barriers
/// and phase machine). Called once per cycle, single-threaded, from the
/// decide barrier's completion. Implementations MUST keep every bound inside
/// the safe envelope (see AdaptiveWindowPolicy) or byte-identity across
/// worker counts is lost.
class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  virtual const char* name() const = 0;

  /// Fills bounds[g] (exclusive upper bound on event *time* group g may
  /// deliver next window) for every group; the caller guarantees at least one
  /// fb.mins entry is not kSimTimeNever. Returns the number of groups whose
  /// bound exceeds the uniform conservative bound (the window_widenings
  /// perf counter increment).
  virtual int plan(const SchedFeedback& fb, SimTime lookahead,
                   std::vector<SimTime>& bounds) = 0;
};

/// The pre-refactor behavior: every group processes strictly below
/// global-min + lookahead. Never widens.
class FixedWindowPolicy final : public SchedulerPolicy {
 public:
  const char* name() const override { return "fixed"; }
  int plan(const SchedFeedback& fb, SimTime lookahead,
           std::vector<SimTime>& bounds) override;
};

/// Widens each group's window inside the safe envelope
///
///   bound_g <= min_{i != g}(mins[i]) + lookahead
///
/// which preserves the delivered schedule exactly: any event another group i
/// sends to g during the cycle carries time >= mins[i] + lookahead >=
/// bound_g, i.e. it lands beyond g's window and is merged at the next
/// barrier exactly as under the fixed policy. Only the virtual-time
/// straggler (the argmin group) has headroom — the one group the fixed
/// policy forces everyone to wait for. Event-density / idle feedback
/// modulates a per-group stretch factor that caps how far a group may run
/// ahead of its own pending minimum, bounding outbox growth and stop
/// latency.
class AdaptiveWindowPolicy final : public SchedulerPolicy {
 public:
  explicit AdaptiveWindowPolicy(int stretch_max)
      : stretch_max_(stretch_max < 1 ? 1 : stretch_max) {}

  const char* name() const override { return "adaptive"; }
  int plan(const SchedFeedback& fb, SimTime lookahead,
           std::vector<SimTime>& bounds) override;

 private:
  int stretch_max_;
  std::vector<std::uint32_t> stretch_;  ///< Per-group widening factor, >= 1.
};

/// Policy instance for a spec (one per Engine::run, not shared).
std::unique_ptr<SchedulerPolicy> make_scheduler(const SchedulerSpec& spec);

/// Process-wide scheduler counters (metrics/perf surfaces them next to the
/// pool and fan-out counters). Relaxed statistics: `speculated` / `rollbacks`
/// are deterministic for a given (worker count, policy, workload); `steals`,
/// `window_widenings` and `barrier_idle_ns` depend on host timing — none of
/// them feed back into the simulated schedule.
struct SchedStats {
  std::uint64_t windows = 0;           ///< Window phases decided.
  std::uint64_t window_widenings = 0;  ///< Per-group bounds wider than fixed.
  std::uint64_t steals = 0;            ///< Groups run by a non-home worker.
  std::uint64_t speculated = 0;        ///< Events staged past a window bound.
  std::uint64_t rollbacks = 0;         ///< Staged events invalidated by a merge.
  std::uint64_t barrier_idle_ns = 0;   ///< Worker ns spent waiting at barriers.
};
SchedStats sched_stats();

/// Engine-internal accumulation hooks for the process-wide SchedStats.
void sched_note_window(std::uint64_t widenings);
void sched_note_run(std::uint64_t steals, std::uint64_t speculated,
                    std::uint64_t rollbacks, std::uint64_t barrier_idle_ns);

}  // namespace exasim
