#include "fiber/stack_pool.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdio>
#include <new>

#include "util/pool.hpp"

// Recycled stacks under AddressSanitizer: frames abandoned on a parked stack
// (a fiber destroyed while suspended) leave stale redzone poison in ASan's
// shadow; a later fiber reusing the stack would trip false positives. Clear
// the shadow on release.
#if defined(__SANITIZE_ADDRESS__)
#define EXASIM_ASAN_STACKS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EXASIM_ASAN_STACKS 1
#endif
#endif
#if defined(EXASIM_ASAN_STACKS)
extern "C" void __asan_unpoison_memory_region(void const volatile* addr, std::size_t size);
#define EXASIM_UNPOISON_STACK(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define EXASIM_UNPOISON_STACK(p, n) ((void)0)
#endif

namespace exasim {

namespace {

std::size_t page_bytes() {
  static const std::size_t ps = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

/// Reads the kernel's VMA limit; falls back to the Linux default when the
/// proc file is unavailable (containers, non-Linux).
std::uint64_t read_max_map_count() {
  std::uint64_t count = 65530;
  if (std::FILE* f = std::fopen("/proc/sys/vm/max_map_count", "re")) {
    unsigned long long v = 0;
    if (std::fscanf(f, "%llu", &v) == 1 && v > 0) count = v;
    std::fclose(f);
  }
  return count;
}

}  // namespace

FiberStackPool::FiberStackPool() {
  // Each guarded stack holds two VMAs (guard + writable); everything else in
  // the process — code, heap, libraries, slabs, unguarded stacks — shares
  // the rest. Reserve a generous margin so a 32,768-rank machine (the
  // paper's Table II scale) fits under the default 65,530 with every rank
  // that can be guarded guarded.
  const std::uint64_t max_maps = read_max_map_count();
  const std::uint64_t margin = 8192;
  guard_budget_ = max_maps > 2 * margin ? (max_maps - margin) / 2 : 0;
}

FiberStackPool& FiberStackPool::instance() {
  static FiberStackPool* pool = new FiberStackPool;  // Immortal (see slabs).
  return *pool;
}

FiberStackPool::Stack FiberStackPool::map_locked(std::size_t bytes) {
  const std::size_t ps = page_bytes();
  const bool guarded = stats_.guarded < guard_budget_;
  const std::size_t total = guarded ? bytes + ps : bytes;
  void* raw = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (raw == MAP_FAILED) throw std::bad_alloc();
  if (!guarded) {
    ++stats_.unguarded;
    return Stack{raw, bytes, false};
  }
  // Low page becomes the guard: stacks grow down, so an overflow walks off
  // the low end and hits PROT_NONE (SIGSEGV) instead of a neighboring
  // mapping.
  if (::mprotect(raw, ps, PROT_NONE) != 0) {
    ::munmap(raw, total);
    throw std::bad_alloc();
  }
  ++stats_.guarded;
  return Stack{static_cast<std::byte*>(raw) + ps, bytes, true};
}

void FiberStackPool::unmap_locked(const Stack& stack) {
  if (stack.guarded) {
    const std::size_t ps = page_bytes();
    ::munmap(static_cast<std::byte*>(stack.base) - ps, stack.bytes + ps);
    --stats_.guarded;
  } else {
    ::munmap(stack.base, stack.bytes);
    --stats_.unguarded;
  }
  ++stats_.unmapped;
}

FiberStackPool::Stack FiberStackPool::acquire(std::size_t bytes) {
  const std::size_t ps = page_bytes();
  bytes = (bytes + ps - 1) / ps * ps;

  std::lock_guard<std::mutex> lock(mu_);
  Stack out;
  if (util::pool_enabled()) {
    auto it = free_.find(bytes);
    if (it != free_.end() && !it->second.empty()) {
      out = it->second.back();
      it->second.pop_back();
      ++stats_.reused;
      --stats_.pooled;
    }
  }
  if (out.base == nullptr) {
    out = map_locked(bytes);
    ++stats_.mapped;
  }
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.high_water) stats_.high_water = stats_.outstanding;
  return out;
}

void FiberStackPool::release(Stack stack) {
  if (stack.base == nullptr) return;
  EXASIM_UNPOISON_STACK(stack.base, stack.bytes);
  std::lock_guard<std::mutex> lock(mu_);
  --stats_.outstanding;
  if (!util::pool_enabled()) {
    unmap_locked(stack);
    return;
  }
  // Drop the committed pages but keep the mapping (and any guard page): the
  // next acquire of this size reuses the address range with zero syscalls
  // beyond this one, and an idle pool holds no physical memory.
  ::madvise(stack.base, stack.bytes, MADV_DONTNEED);
  free_[stack.bytes].push_back(stack);
  ++stats_.pooled;
}

FiberStackPool::Stats FiberStackPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FiberStackPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [bytes, stacks] : free_) {
    for (const Stack& s : stacks) unmap_locked(s);
  }
  free_.clear();
  stats_.pooled = 0;
}

}  // namespace exasim
