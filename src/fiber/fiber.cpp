#include "fiber/fiber.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

#include "fiber/stack_pool.hpp"

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

// ---------------------------------------------------------------------------
// ThreadSanitizer fiber support
//
// TSan tracks a shadow stack per thread; switching stacks behind its back
// (our hand-rolled exasim_ctx_switch, or swapcontext) corrupts that tracking
// and produces false reports or crashes. The __tsan_*_fiber interface tells
// the sanitizer about every user-space context switch. Compiled in only
// under -fsanitize=thread (the EXASIM_TSAN build preset).
// ---------------------------------------------------------------------------
#if defined(__SANITIZE_THREAD__)
#define EXASIM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define EXASIM_TSAN_FIBERS 1
#endif
#endif

#if defined(EXASIM_TSAN_FIBERS)
extern "C" {
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void* __tsan_get_current_fiber(void);
}
#define EXASIM_TSAN_FIBER_CREATE() __tsan_create_fiber(0)
#define EXASIM_TSAN_FIBER_DESTROY(f) \
  do {                               \
    if ((f) != nullptr) __tsan_destroy_fiber(f); \
  } while (0)
#define EXASIM_TSAN_FIBER_CURRENT() __tsan_get_current_fiber()
#define EXASIM_TSAN_FIBER_SWITCH(f) __tsan_switch_to_fiber((f), 0)
#else
#define EXASIM_TSAN_FIBER_CREATE() nullptr
#define EXASIM_TSAN_FIBER_DESTROY(f) (void)(f)
#define EXASIM_TSAN_FIBER_CURRENT() nullptr
#define EXASIM_TSAN_FIBER_SWITCH(f) (void)(f)
#endif

// ---------------------------------------------------------------------------
// AddressSanitizer fiber support
//
// ASan tracks the current thread's stack bounds; switching to a fiber stack
// behind its back leaves those bounds stale. That is survivable for plain
// execution, but the moment an exception unwinds on a fiber stack (the
// process-failure/abort unwind signals of vmpi::SimProcess), the unwinder's
// __asan_handle_no_return consults the stale bounds and corrupts sanitizer
// state. The __sanitizer_*_switch_fiber interface publishes every stack
// switch: start_switch declares the target stack before leaving the current
// one, finish_switch commits on arrival (and reports the previous bounds,
// which we keep to switch back). Compiled in only under -fsanitize=address
// (the EXASIM_ASAN build preset).
// ---------------------------------------------------------------------------
#if defined(__SANITIZE_ADDRESS__)
#define EXASIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EXASIM_ASAN_FIBERS 1
#endif
#endif

#if defined(EXASIM_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     std::size_t* size_old);
}
#define EXASIM_ASAN_START_SWITCH(save, bottom, size) \
  __sanitizer_start_switch_fiber((save), (bottom), (size))
#define EXASIM_ASAN_FINISH_SWITCH(fake, bottom_old, size_old) \
  __sanitizer_finish_switch_fiber((fake), (bottom_old), (size_old))
#else
#define EXASIM_ASAN_START_SWITCH(save, bottom, size) ((void)0)
#define EXASIM_ASAN_FINISH_SWITCH(fake, bottom_old, size_old) ((void)0)
#endif

namespace exasim {

namespace {

// Process-wide dispatch traffic (relaxed: statistics, not synchronization).
// A resume is one switch into a fiber; suppressed wakeups are reported by the
// simulated MPI layer's blocked-condition filter (vmpi::SimProcess).
std::atomic<std::uint64_t> g_fiber_resumes{0};
std::atomic<std::uint64_t> g_wakeups_suppressed{0};

}  // namespace

FiberDispatchStats fiber_dispatch_stats() {
  FiberDispatchStats s;
  s.resumes = g_fiber_resumes.load(std::memory_order_relaxed);
  s.wakeups_suppressed = g_wakeups_suppressed.load(std::memory_order_relaxed);
  return s;
}

void fiber_note_wakeup_suppressed() {
  g_wakeups_suppressed.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Context switching
//
// On x86-64 we use a minimal hand-rolled switch (callee-saved registers +
// stack pointer, ~20 ns). glibc's swapcontext costs ~0.5 us because it
// saves/restores the signal mask with two rt_sigprocmask system calls per
// switch — at millions of simulated-process context switches per run that
// dominates the whole simulation. Simulated processes never touch the signal
// mask or change the FP environment, so the cheap switch is sufficient.
// Other architectures fall back to ucontext.
// ---------------------------------------------------------------------------

#if defined(__x86_64__)

struct Fiber::Impl {
  void* self_sp = nullptr;    ///< Fiber's saved stack pointer while suspended.
  void* caller_sp = nullptr;  ///< Resumer's saved stack pointer while fiber runs.
  void* tsan_fiber = nullptr;   ///< TSan fiber handle (sanitizer builds only).
  void* tsan_caller = nullptr;  ///< TSan handle of the resumer's context.
  void* asan_self_fake = nullptr;    ///< Fiber's ASan fake stack while suspended.
  void* asan_caller_fake = nullptr;  ///< Resumer's fake stack while fiber runs.
  const void* asan_caller_bottom = nullptr;  ///< Resumer's stack bounds, learned
  std::size_t asan_caller_size = 0;          ///< on each entry into the fiber.
};

extern "C" void exasim_ctx_switch(void** save_sp, void* load_sp);

// System V AMD64: save the six callee-saved GPRs + return address on the
// current stack, publish rsp, adopt the new stack, restore, return.
asm(R"(
.text
.globl exasim_ctx_switch
.type exasim_ctx_switch, @function
.align 16
exasim_ctx_switch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size exasim_ctx_switch, .-exasim_ctx_switch
)");

#else  // Portable fallback.

struct Fiber::Impl {
  ucontext_t self{};
  ucontext_t caller{};
  void* tsan_fiber = nullptr;   ///< TSan fiber handle (sanitizer builds only).
  void* tsan_caller = nullptr;  ///< TSan handle of the resumer's context.
  void* asan_self_fake = nullptr;    ///< Fiber's ASan fake stack while suspended.
  void* asan_caller_fake = nullptr;  ///< Resumer's fake stack while fiber runs.
  const void* asan_caller_bottom = nullptr;  ///< Resumer's stack bounds, learned
  std::size_t asan_caller_size = 0;          ///< on each entry into the fiber.
};

#endif

namespace {

// Per-thread pointer to the running fiber, so yield() can find its way back
// and the entry trampoline can find its Fiber.
thread_local Fiber* t_current = nullptr;

}  // namespace

#if defined(__x86_64__)

namespace {

/// First function every fiber executes (entered via `ret` from the switch).
/// Must never return: when the body finishes, control switches back to the
/// resumer permanently.
[[noreturn]] void fiber_entry() {
  Fiber* self = t_current;
  self->run_body_and_exit();
}

}  // namespace

void Fiber::run_body_and_exit() {
  // First instructions on the fiber stack: commit the switch the resumer
  // started (asan_self_fake is null on first entry) and record where to
  // switch back to.
  EXASIM_ASAN_FINISH_SWITCH(impl_->asan_self_fake, &impl_->asan_caller_bottom,
                            &impl_->asan_caller_size);
  try {
    body_();
  } catch (const Unwind&) {
    // ~Fiber is draining an abandoned fiber; the unwind already ran the
    // suspended frames' destructors — just exit the fiber.
  }
  finished_ = true;
  t_current = nullptr;
  void* dummy = nullptr;
  EXASIM_TSAN_FIBER_SWITCH(impl_->tsan_caller);
  // Null save slot: the fiber is exiting for good, so ASan may free its fake
  // stack frames instead of preserving them.
  EXASIM_ASAN_START_SWITCH(nullptr, impl_->asan_caller_bottom, impl_->asan_caller_size);
  exasim_ctx_switch(&dummy, impl_->caller_sp);
  std::abort();  // Unreachable: a finished fiber is never resumed.
}

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()), body_(std::move(body)) {
  if (stack_bytes < 16 * 1024) stack_bytes = 16 * 1024;
  FiberStackPool::Stack s = FiberStackPool::instance().acquire(stack_bytes);
  stack_ = s.base;
  stack_bytes_ = s.bytes;
  stack_guarded_ = s.guarded;

  // Craft the initial stack so the first switch `ret`s into fiber_entry with
  // the ABI-required alignment: the return-address slot sits on a 16-byte
  // boundary, with six zeroed callee-saved slots below it.
  auto top = reinterpret_cast<std::uintptr_t>(stack_) + stack_bytes_;
  std::uintptr_t ret_slot = (top - 64) & ~std::uintptr_t{15};
  auto* slots = reinterpret_cast<void**>(ret_slot);
  *slots = reinterpret_cast<void*>(&fiber_entry);
  for (int i = 1; i <= 6; ++i) *(slots - i) = nullptr;  // rbp,rbx,r12-r15.
  impl_->self_sp = slots - 6;
  impl_->tsan_fiber = EXASIM_TSAN_FIBER_CREATE();
}

void Fiber::resume() {
  if (finished_) throw std::logic_error("resume() on finished fiber");
  if (t_current != nullptr) throw std::logic_error("nested fiber resume on one thread");
  started_ = true;
  t_current = this;
  g_fiber_resumes.fetch_add(1, std::memory_order_relaxed);
  impl_->tsan_caller = EXASIM_TSAN_FIBER_CURRENT();
  EXASIM_TSAN_FIBER_SWITCH(impl_->tsan_fiber);
  EXASIM_ASAN_START_SWITCH(&impl_->asan_caller_fake, stack_, stack_bytes_);
  exasim_ctx_switch(&impl_->caller_sp, impl_->self_sp);
  EXASIM_ASAN_FINISH_SWITCH(impl_->asan_caller_fake, nullptr, nullptr);
  // Either the fiber yielded (t_current reset in yield) or finished
  // (t_current reset in run_body_and_exit).
}

void Fiber::yield() {
  Fiber* self = t_current;
  if (self == nullptr) throw std::logic_error("Fiber::yield outside fiber");
  t_current = nullptr;
  EXASIM_TSAN_FIBER_SWITCH(self->impl_->tsan_caller);
  EXASIM_ASAN_START_SWITCH(&self->impl_->asan_self_fake, self->impl_->asan_caller_bottom,
                           self->impl_->asan_caller_size);
  exasim_ctx_switch(&self->impl_->self_sp, self->impl_->caller_sp);
  // Resumed again, possibly from a different caller stack than last time.
  EXASIM_ASAN_FINISH_SWITCH(self->impl_->asan_self_fake, &self->impl_->asan_caller_bottom,
                            &self->impl_->asan_caller_size);
  if (self->unwinding_) throw Unwind{};
}

#else  // ucontext fallback

void Fiber::run_body_and_exit() { std::abort(); }  // Unused on this path.

namespace {

void trampoline(unsigned hi, unsigned lo);

}  // namespace

Fiber::Fiber(Body body, std::size_t stack_bytes)
    : impl_(std::make_unique<Impl>()), body_(std::move(body)) {
  if (stack_bytes < 16 * 1024) stack_bytes = 16 * 1024;
  FiberStackPool::Stack s = FiberStackPool::instance().acquire(stack_bytes);
  stack_ = s.base;
  stack_bytes_ = s.bytes;
  stack_guarded_ = s.guarded;

  if (::getcontext(&impl_->self) != 0) {
    FiberStackPool::instance().release(
        FiberStackPool::Stack{stack_, stack_bytes_, stack_guarded_});
    stack_ = nullptr;
    throw std::runtime_error("getcontext failed");
  }
  impl_->self.uc_stack.ss_sp = stack_;
  impl_->self.uc_stack.ss_size = stack_bytes_;
  impl_->self.uc_link = &impl_->caller;

  // makecontext only passes ints; split the this-pointer into two 32-bit
  // halves (the portable ucontext idiom).
  auto ptr = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&impl_->self, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned>(ptr >> 32), static_cast<unsigned>(ptr & 0xffffffffu));
  impl_->tsan_fiber = EXASIM_TSAN_FIBER_CREATE();
}

namespace {

void trampoline(unsigned hi, unsigned lo) {
  auto ptr = (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  auto* self = reinterpret_cast<Fiber*>(ptr);
  self->ucontext_body();
  // Returning lets ucontext switch to uc_link (the caller context).
}

}  // namespace

void Fiber::resume() {
  if (finished_) throw std::logic_error("resume() on finished fiber");
  if (t_current != nullptr) throw std::logic_error("nested fiber resume on one thread");
  started_ = true;
  t_current = this;
  g_fiber_resumes.fetch_add(1, std::memory_order_relaxed);
  impl_->tsan_caller = EXASIM_TSAN_FIBER_CURRENT();
  EXASIM_TSAN_FIBER_SWITCH(impl_->tsan_fiber);
  EXASIM_ASAN_START_SWITCH(&impl_->asan_caller_fake, stack_, stack_bytes_);
  if (::swapcontext(&impl_->caller, &impl_->self) != 0) {
    EXASIM_ASAN_FINISH_SWITCH(impl_->asan_caller_fake, nullptr, nullptr);
    t_current = nullptr;
    throw std::runtime_error("swapcontext failed");
  }
  EXASIM_ASAN_FINISH_SWITCH(impl_->asan_caller_fake, nullptr, nullptr);
}

void Fiber::yield() {
  Fiber* self = t_current;
  if (self == nullptr) throw std::logic_error("Fiber::yield outside fiber");
  t_current = nullptr;
  EXASIM_TSAN_FIBER_SWITCH(self->impl_->tsan_caller);
  EXASIM_ASAN_START_SWITCH(&self->impl_->asan_self_fake, self->impl_->asan_caller_bottom,
                           self->impl_->asan_caller_size);
  if (::swapcontext(&self->impl_->self, &self->impl_->caller) != 0) {
    EXASIM_ASAN_FINISH_SWITCH(self->impl_->asan_self_fake, &self->impl_->asan_caller_bottom,
                              &self->impl_->asan_caller_size);
    throw std::runtime_error("swapcontext failed");
  }
  // Resumed again, possibly from a different caller stack than last time.
  EXASIM_ASAN_FINISH_SWITCH(self->impl_->asan_self_fake, &self->impl_->asan_caller_bottom,
                            &self->impl_->asan_caller_size);
  if (self->unwinding_) throw Unwind{};
}

#endif

void Fiber::ucontext_body() {
  // First statements on the fiber stack: commit the switch the resumer
  // started (asan_self_fake is null on first entry).
  EXASIM_ASAN_FINISH_SWITCH(impl_->asan_self_fake, &impl_->asan_caller_bottom,
                            &impl_->asan_caller_size);
  try {
    body_();
  } catch (const Unwind&) {
    // ~Fiber is draining an abandoned fiber; the unwind already ran the
    // suspended frames' destructors — just exit the fiber.
  }
  finished_ = true;
  t_current = nullptr;
  // Returning switches to uc_link (the caller) inside libc; tell the
  // sanitizers first. Null save slot: the fiber is exiting for good, so ASan
  // may free its fake stack frames instead of preserving them.
  EXASIM_TSAN_FIBER_SWITCH(impl_->tsan_caller);
  EXASIM_ASAN_START_SWITCH(nullptr, impl_->asan_caller_bottom, impl_->asan_caller_size);
}

Fiber::~Fiber() {
  // A started-but-unfinished fiber (e.g. a simulated process still blocked
  // when the run ends in deadlock) holds live objects in its suspended
  // frames; resume it one last time so yield() throws Unwind and ordinary
  // stack unwinding releases them. Destroying from inside a fiber cannot
  // resume another one, so there the frame is abandoned (stack memory is
  // still reclaimed below).
  if (started_ && !finished_ && t_current == nullptr) {
    unwinding_ = true;
    resume();
  }
  EXASIM_TSAN_FIBER_DESTROY(impl_->tsan_fiber);
  if (stack_ != nullptr) {
    FiberStackPool::instance().release(
        FiberStackPool::Stack{stack_, stack_bytes_, stack_guarded_});
  }
}

bool Fiber::in_fiber() { return t_current != nullptr; }

}  // namespace exasim
