#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace exasim {

/// Cooperative user-space thread (xSim-style: "each simulated MPI rank has
/// its own full thread context — CPU registers, stack, heap, and global
/// variables" — we provide registers + stack; heap/globals are shared, which
/// is sufficient because simulated processes keep their state in per-process
/// objects).
///
/// Built on ucontext. Stacks are allocated with mmap(MAP_ANONYMOUS) and are
/// only *lazily* committed by the kernel, so tens of thousands of fibers with
/// generous virtual stacks stay cheap in physical memory (32,768 ranks x
/// 128 KiB virtual is 4 GiB virtual but typically < 300 MiB resident).
///
/// A fiber runs until it calls Fiber::yield() (from inside the fiber) or its
/// body returns. resume() switches into the fiber and returns when the fiber
/// yields or finishes. Exceptions escaping the body terminate the process by
/// design — simulated processes catch their own control-flow exceptions.
///
/// On x86-64 the context switch is a hand-rolled callee-saved-register swap
/// (~20 ns); elsewhere it falls back to ucontext (whose glibc implementation
/// pays two rt_sigprocmask system calls per switch).
///
/// Threading contract: a fiber is pinned to one native thread at a time —
/// yield() returns control to whichever thread last called resume(), via
/// that thread's thread-local resumer slot. The sharded engine satisfies
/// this by construction: each simulated process's fiber is only ever resumed
/// by the worker thread owning its LP group (creation happens lazily on the
/// first kEvStart delivery, i.e. already on the owning worker).
class Fiber {
 public:
  using Body = std::function<void()>;

  /// Thrown through a suspended fiber's frames when the fiber is destroyed
  /// before its body finished (see ~Fiber), so frame-held resources are
  /// released by ordinary stack unwinding. The entry trampoline catches it;
  /// bodies must let it propagate (don't swallow it in a catch(...)).
  struct Unwind {};

  /// stack_bytes is rounded up to the page size; minimum 16 KiB.
  explicit Fiber(Body body, std::size_t stack_bytes = 128 * 1024);

  /// If the fiber started but never finished, resumes it one last time with
  /// the unwind flag set: yield() throws Unwind, destructors in the
  /// suspended frames run, and the body exits. Skipped when called from
  /// inside a fiber (the stack frame is then abandoned unreleased).
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches into the fiber. Must not be called from inside any fiber
  /// belonging to the same thread, and not after finished().
  void resume();

  /// Yields from inside the currently running fiber back to its resumer.
  static void yield();

  /// True if a fiber is currently running on this thread.
  static bool in_fiber();

  bool finished() const { return finished_; }
  bool started() const { return started_; }

  /// Virtual stack bytes reserved for this fiber.
  std::size_t stack_bytes() const { return stack_bytes_; }

  /// Internal entry shims (public only for the per-platform trampolines).
  [[noreturn]] void run_body_and_exit();
  void ucontext_body();

 private:
  struct Impl;

  std::unique_ptr<Impl> impl_;
  Body body_;
  void* stack_ = nullptr;
  std::size_t stack_bytes_ = 0;
  bool stack_guarded_ = false;  ///< Guard page below stack_ (FiberStackPool).
  bool started_ = false;
  bool finished_ = false;
  bool unwinding_ = false;  ///< Set by ~Fiber; makes yield() throw Unwind.
};

/// Process-wide fiber dispatch counters (relaxed atomics; src/metrics/perf
/// surfaces them). `resumes` counts every Fiber::resume() switch; the
/// simulated MPI layer's wakeup filter reports each spurious resume it
/// avoided via fiber_note_wakeup_suppressed(). Lives here rather than in the
/// vmpi layer because exasim_metrics links fiber but not vmpi.
struct FiberDispatchStats {
  std::uint64_t resumes = 0;
  std::uint64_t wakeups_suppressed = 0;
};
FiberDispatchStats fiber_dispatch_stats();
void fiber_note_wakeup_suppressed();

}  // namespace exasim
