#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace exasim {

/// Process-wide recycler for fiber stacks (DESIGN.md §9).
///
/// Stacks are anonymous mmaps with a PROT_NONE guard page at the low end, so
/// a simulated-process stack overflow faults loudly instead of silently
/// corrupting the adjacent fiber's stack. A guarded stack costs two kernel
/// VMAs (the guard and the writable region cannot merge); at xSim scale —
/// 32,768+ simulated ranks, one stack each — that would exceed the kernel's
/// default vm.max_map_count (65,530). The pool therefore guards every stack
/// up to a budget derived from vm.max_map_count and hands out unguarded
/// stacks beyond it: debugging-scale runs always get guards, extreme
/// oversubscription trades the last few thousand guards for fitting in the
/// default VMA limit.
///
/// Stacks are recycled across fibers — and therefore across simulated
/// machines and campaign items: standing up C = 10^4–10^5 simulated MPI
/// ranks used to cost one mmap/munmap pair per rank per launch, which
/// dominates short runs. On release the committed pages are dropped with
/// madvise(MADV_DONTNEED) (physical memory returns to the kernel; the
/// virtual mapping and the guard page stay), so an idle pool costs address
/// space, not RSS.
///
/// With pooling disabled (util::pool_enabled() == false, i.e. --no-pool /
/// EXASIM_NO_POOL), acquire/release degrade to plain mmap/munmap — still
/// guard-paged within the budget.
///
/// Thread-safe: fibers are created on whichever engine worker owns the LP
/// group, so the free lists are mutex-protected (stack churn is orders of
/// magnitude rarer than event churn; the lock is not on the event hot path).
class FiberStackPool {
 public:
  /// A usable stack region. `base` is the low end of the writable region;
  /// when `guarded`, the guard page sits immediately below it. `bytes` is
  /// writable size.
  struct Stack {
    void* base = nullptr;
    std::size_t bytes = 0;
    bool guarded = false;
  };

  /// Monotonic counters (diff two snapshots to meter one region).
  struct Stats {
    std::uint64_t mapped = 0;    ///< Fresh mmaps (pool misses + unpooled).
    std::uint64_t reused = 0;    ///< Acquires served from the free list.
    std::uint64_t unmapped = 0;  ///< munmaps (unpooled releases / trim).
    std::uint64_t outstanding = 0;  ///< Currently acquired stacks.
    std::uint64_t pooled = 0;       ///< Currently parked on free lists.
    std::uint64_t high_water = 0;   ///< Max outstanding ever observed.
    std::uint64_t guarded = 0;      ///< Live guard pages (mapped stacks).
    std::uint64_t unguarded = 0;    ///< Live stacks mapped past the budget.
  };

  static FiberStackPool& instance();

  /// Returns a stack of at least `bytes` (rounded up to whole pages),
  /// guard-paged while the VMA budget lasts. Throws std::bad_alloc on mmap
  /// failure.
  Stack acquire(std::size_t bytes);

  /// Returns a stack obtained from acquire(). Pooled stacks are parked
  /// (MADV_DONTNEED); unpooled ones are munmapped.
  void release(Stack stack);

  Stats stats() const;

  /// Unmaps every parked stack (memory pressure valve / test isolation).
  void trim();

 private:
  FiberStackPool();

  Stack map_locked(std::size_t bytes);
  void unmap_locked(const Stack& stack);

  mutable std::mutex mu_;
  std::map<std::size_t, std::vector<Stack>> free_;  ///< bytes → parked stacks.
  Stats stats_;
  std::uint64_t guard_budget_ = 0;  ///< Max concurrently live guard pages.
};

}  // namespace exasim
