#include "core/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "ckpt/tiered.hpp"
#include "core/failure.hpp"
#include "iomodel/storage.hpp"
#include "netmodel/routing.hpp"
#include "pdes/scheduler.hpp"
#include "resilience/detector.hpp"
#include "util/log.hpp"
#include "util/parse.hpp"
#include "util/pool.hpp"

namespace exasim::core {
namespace {

bool parse_double(const std::string& v, double* out) {
  try {
    std::size_t pos = 0;
    *out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& v, long long* out) {
  try {
    std::size_t pos = 0;
    *out = std::stoll(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

std::string cli_usage() {
  return
      "options:\n"
      "  --ranks=N --topology=SPEC --ranks-per-node=N\n"
      "  --link-latency=DUR --bandwidth=B/s --overhead=DUR\n"
      "  --eager-threshold=BYTES --failure-timeout=DUR\n"
      "  --routing=deterministic|adaptive[:spread=K]\n"
      "                   (route-variant policy over equal-cost minimal\n"
      "                    routes; adaptive spreads flows keyed by\n"
      "                    (src,dst,seq); or env EXASIM_ROUTING; default\n"
      "                    deterministic)\n"
      "  --link-timeouts=uniform[:LO..HI[,seed=N]]|hot:ID=DUR[;..]|plane:P=DUR[;..]\n"
      "                   (per-link failure-timeout overrides; pair timeout =\n"
      "                    max over the route's links; or env\n"
      "                    EXASIM_LINK_TIMEOUTS; default uniform)\n"
      "  --contention     (fold per-link occupancy waits into delivery times;\n"
      "                    exact at --sim-workers=1, approximate otherwise)\n"
      "  --slowdown=X --ns-per-unit=X\n"
      "  --pfs-bandwidth=B/s --pfs-latency=DUR\n"
      "  --storage=pfs|hpc|mem[:k=v,..];bb[:..];pfs[:..]\n"
      "                   (storage hierarchy; tier keys bw, cbw, lat, cap,\n"
      "                    contend; '+' accepted for ';'; or env\n"
      "                    EXASIM_STORAGE; default single free PFS)\n"
      "  --ckpt-mode=pfs|partner|staged\n"
      "                   (checkpoint placement: direct PFS, diskless partner\n"
      "                    copy in node memory, or partner + background drain\n"
      "                    through bb to PFS; or env EXASIM_CKPT_MODE;\n"
      "                    default pfs)\n"
      "  --failures=R@T,R@T   (or env EXASIM_FAILURES)\n"
      "  --failure-detector=paper-instant|timeout|heartbeat[:period=DUR][,miss=N]\n"
      "                   |gossip[:period=DUR][,fanout=K][,seed=N]\n"
      "                   (or env EXASIM_FAILURE_DETECTOR; when survivors\n"
      "                    learn of a failure; default paper-instant)\n"
      "  --mttf=DUR --distribution=uniform2m|exponential|weibull\n"
      "  --seed=N --max-restarts=N --stack-bytes=N\n"
      "  --measured-compute --sim-time-file=PATH --verbose\n"
      "  --replicates=N   (repeat with seeds seed..seed+N-1, report stats)\n"
      "  --jobs=N         (worker threads for replicates; 0 = all cores,\n"
      "                    default from EXASIM_JOBS)\n"
      "  --sim-workers=N|auto\n"
      "                   (engine worker threads inside one simulation;\n"
      "                    1 = sequential, auto = usable CPUs (affinity/\n"
      "                    cgroup aware), default from EXASIM_SIM_WORKERS;\n"
      "                    identical results for any N)\n"
      "  --scheduler=fixed|adaptive[:stretch=N][,gpw=N]\n"
      "                   (window scheduling policy of the sharded engine;\n"
      "                    adaptive widens per-group windows inside the safe\n"
      "                    envelope and steals ready LP groups across\n"
      "                    workers; or env EXASIM_SCHEDULER; identical\n"
      "                    results for either policy)\n"
      "  --speculate=N    (stage up to N events per LP group past the\n"
      "                    conservative window, rolled back when invalidated;\n"
      "                    0 = off; or env EXASIM_SPECULATE; identical\n"
      "                    results at any depth)\n"
      "  --no-pool        (disable the hot-path memory pools — payloads and\n"
      "                    fiber stacks fall back to plain heap/mmap; also\n"
      "                    env EXASIM_NO_POOL=1; identical results either way)\n";
}

std::optional<CliOptions> parse_cli(int argc, const char* const* argv, std::string* error) {
  CliOptions opts;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  // Environment first; explicit flags override (command line wins over
  // environment, like xSim).
  {
    auto schedule = FailureSchedule::from_env();
    if (!schedule) return fail(std::string("malformed ") + kFailureScheduleEnvVar);
    opts.machine.failures = schedule->specs();
  }
  if (const char* env = std::getenv(resilience::kDetectorEnvVar)) {
    auto spec = resilience::parse_detector_spec(env);
    if (!spec) return fail(std::string("malformed ") + resilience::kDetectorEnvVar);
    opts.machine.detector = *spec;
  }
  if (const char* env = std::getenv(kLinkTimeoutsEnvVar)) {
    auto spec = parse_link_timeout_spec(env);
    if (!spec) return fail(std::string("malformed ") + kLinkTimeoutsEnvVar);
    opts.machine.net.link_timeouts = *spec;
  }

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    }

    long long ll = 0;
    double d = 0;
    if (key == "ranks" && parse_int(value, &ll)) {
      opts.machine.ranks = static_cast<int>(ll);
    } else if (key == "topology" && !value.empty()) {
      opts.machine.topology = value;
    } else if (key == "ranks-per-node" && parse_int(value, &ll)) {
      opts.machine.ranks_per_node = static_cast<int>(ll);
    } else if (key == "link-latency") {
      auto t = parse_duration(value);
      if (!t) return fail("bad --link-latency");
      opts.machine.net.link_latency = *t;
    } else if (key == "bandwidth" && parse_double(value, &d)) {
      opts.machine.net.bandwidth_bytes_per_sec = d;
      opts.machine.net.injection_bandwidth_bytes_per_sec = d;
    } else if (key == "overhead") {
      auto t = parse_duration(value);
      if (!t) return fail("bad --overhead");
      opts.machine.net.per_message_overhead = *t;
    } else if (key == "eager-threshold" && parse_int(value, &ll)) {
      opts.machine.net.eager_threshold = static_cast<std::size_t>(ll);
    } else if (key == "failure-timeout") {
      auto t = parse_duration(value);
      if (!t) return fail("bad --failure-timeout");
      opts.machine.net.failure_timeout = *t;
    } else if (key == "routing") {
      if (!parse_routing_spec(value)) return fail("bad --routing");
      opts.machine.routing = value;
    } else if (key == "link-timeouts") {
      auto spec = parse_link_timeout_spec(value);
      if (!spec) return fail("bad --link-timeouts");
      opts.machine.net.link_timeouts = *spec;
    } else if (key == "contention") {
      opts.machine.net.contention = true;
    } else if (key == "slowdown" && parse_double(value, &d)) {
      opts.machine.proc.slowdown = d;
    } else if (key == "ns-per-unit" && parse_double(value, &d)) {
      opts.machine.proc.reference_ns_per_unit = d;
    } else if (key == "pfs-bandwidth" && parse_double(value, &d)) {
      opts.machine.pfs.aggregate_bandwidth_bytes_per_sec = d;
    } else if (key == "pfs-latency") {
      auto t = parse_duration(value);
      if (!t) return fail("bad --pfs-latency");
      opts.machine.pfs.metadata_latency = *t;
    } else if (key == "storage") {
      if (!parse_storage_spec(value)) return fail("bad --storage");
      opts.machine.storage = value;
    } else if (key == "ckpt-mode") {
      if (!ckpt::parse_ckpt_mode(value)) return fail("bad --ckpt-mode");
      opts.machine.ckpt_mode = value;
    } else if (key == "failures") {
      auto schedule = FailureSchedule::parse(value);
      if (!schedule) return fail("bad --failures");
      opts.machine.failures = schedule->specs();
    } else if (key == "failure-detector") {
      auto spec = resilience::parse_detector_spec(value);
      if (!spec) return fail("bad --failure-detector");
      opts.machine.detector = *spec;
    } else if (key == "mttf") {
      auto t = parse_duration(value);
      if (!t) return fail("bad --mttf");
      opts.mttf = *t;
    } else if (key == "distribution") {
      if (value == "uniform2m") {
        opts.distribution = FailureDistribution::kUniform2Mttf;
      } else if (value == "exponential") {
        opts.distribution = FailureDistribution::kExponential;
      } else if (value == "weibull") {
        opts.distribution = FailureDistribution::kWeibull;
      } else {
        return fail("bad --distribution");
      }
    } else if (key == "seed" && parse_int(value, &ll)) {
      opts.seed = static_cast<std::uint64_t>(ll);
    } else if (key == "max-restarts" && parse_int(value, &ll)) {
      opts.max_restarts = static_cast<int>(ll);
    } else if (key == "replicates" && parse_int(value, &ll)) {
      if (ll < 1) return fail("bad --replicates");
      opts.replicates = static_cast<int>(ll);
    } else if (key == "jobs" && parse_int(value, &ll)) {
      opts.jobs = static_cast<int>(ll);
    } else if (key == "sim-workers") {
      if (value == "auto") {
        opts.machine.sim_workers = -1;
      } else if (parse_int(value, &ll) && ll >= 1) {
        opts.machine.sim_workers = static_cast<int>(ll);
      } else {
        return fail("bad --sim-workers");
      }
    } else if (key == "scheduler") {
      if (!parse_scheduler_spec(value)) return fail("bad --scheduler");
      opts.machine.scheduler = value;
    } else if (key == "speculate") {
      if (!parse_int(value, &ll) || ll < 0) return fail("bad --speculate");
      opts.machine.speculate = static_cast<int>(ll);
    } else if (key == "stack-bytes" && parse_int(value, &ll)) {
      opts.machine.process.fiber_stack_bytes = static_cast<std::size_t>(ll);
    } else if (key == "no-pool") {
      // Escape hatch for debugging/benchmarking: provenance headers let
      // blocks allocated before the flip still free correctly.
      util::set_pool_enabled(false);
      opts.no_pool = true;
    } else if (key == "measured-compute") {
      opts.machine.process.measured_compute = true;
    } else if (key == "sim-time-file") {
      opts.sim_time_file = value;
    } else if (key == "verbose") {
      opts.verbose = true;
      Log::set_level(LogLevel::kInfo);
    } else {
      return fail("unknown or malformed option: " + arg);
    }
  }

  // Unless a topology was given, default to a star big enough for the rank
  // count (the flat model every rank-pair is 2 hops away in).
  if (opts.machine.topology == SimConfig{}.topology) {
    const int nodes =
        (opts.machine.ranks + opts.machine.ranks_per_node - 1) / opts.machine.ranks_per_node;
    opts.machine.topology = "star:" + std::to_string(nodes);
  }

  if (auto bad = FailureSchedule(opts.machine.failures).first_invalid_rank(opts.machine.ranks)) {
    return fail("failure schedule rank out of range: " + std::to_string(*bad));
  }
  return opts;
}

RunnerConfig runner_config_from(const CliOptions& options) {
  RunnerConfig rc;
  rc.base = options.machine;
  rc.first_run_failures = options.machine.failures;
  rc.base.failures.clear();
  rc.system_mttf = options.mttf;
  rc.distribution = options.distribution;
  rc.seed = options.seed;
  rc.max_restarts = options.max_restarts;
  rc.sim_time_file = options.sim_time_file;
  return rc;
}

}  // namespace exasim::core
