#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/tiered.hpp"
#include "iomodel/pfs.hpp"
#include "iomodel/storage.hpp"
#include "metrics/perf.hpp"
#include "metrics/stats.hpp"
#include "netmodel/network.hpp"
#include "pdes/engine.hpp"
#include "powermodel/power.hpp"
#include "procmodel/processor.hpp"
#include "resilience/bus.hpp"
#include "resilience/detector.hpp"
#include "resilience/notice_log.hpp"
#include "util/parse.hpp"
#include "util/time.hpp"
#include "vmpi/process.hpp"

namespace exasim::core {

/// One scheduled soft error: a memory bit flip in a simulated process.
struct SoftErrorSpec {
  int rank = -1;
  SimTime time = 0;
  std::uint64_t bit_index = 0;
};

/// Full configuration of one simulated machine + one application execution.
struct SimConfig {
  int ranks = 1;

  /// Topology spec ("torus:32x32x32", "mesh:4x4x4", "fattree:16x8",
  /// "dragonfly:8x8x8", "star:64"), or leave empty and set `network`
  /// directly.
  std::string topology = "star:1";
  NetworkParams net;
  int ranks_per_node = 1;
  /// Prebuilt network model (e.g. a HierarchicalNetwork); overrides
  /// topology/net *and* `routing` when set.
  std::shared_ptr<const NetworkModel> network;

  /// Routing policy spec ("deterministic", "adaptive", "adaptive:spread=K");
  /// empty defers to EXASIM_ROUTING, unset environment means "deterministic"
  /// (exasim::resolve_routing_spec). Route choice is keyed by
  /// (src, dst, seq), so every setting is reproducible across worker counts
  /// (DESIGN.md §12).
  std::string routing;

  ProcessorParams proc;
  /// Legacy flat-PFS knobs (--pfs-bandwidth/--pfs-latency). When `storage`
  /// resolves to the default single-tier spec, these seed its PFS tier — so
  /// pre-hierarchy configurations keep their exact cost model.
  PfsParams pfs;
  /// Storage-hierarchy spec ("pfs", "hpc", "mem:...;bb:...;pfs:..."); empty
  /// defers to EXASIM_STORAGE, unset environment means the paper-default
  /// single free PFS tier (exasim::resolve_storage_spec).
  std::string storage;
  /// Checkpoint placement policy ("pfs", "partner", "staged"); empty defers
  /// to EXASIM_CKPT_MODE, unset environment means "pfs"
  /// (ckpt::resolve_ckpt_mode).
  std::string ckpt_mode;
  std::optional<PowerParams> power;
  vmpi::ProcessConfig process;

  /// Injected MPI process failure schedule (rank/time pairs, absolute
  /// virtual time; paper §IV-B). Owned/derived by resilience::FailureSchedule
  /// (CLI flag, EXASIM_FAILURES, or reliability-model draws).
  std::vector<FailureSpec> failures;
  std::vector<SoftErrorSpec> soft_errors;

  /// Failure-detector model governing when survivors learn about a failure
  /// (--failure-detector / EXASIM_FAILURE_DETECTOR). The default paper-instant
  /// detector reproduces the paper's simulator-internal broadcast exactly.
  resilience::DetectorSpec detector;

  /// Error-handler policy installed on every process's world communicator at
  /// startup (paper §IV-D; applications may override per communicator).
  vmpi::ErrorHandlerKind default_error_handler = vmpi::ErrorHandlerKind::kFatal;

  /// Initial virtual clock for every process — the restart-continuity value
  /// read back from a SimTimeFile (paper §IV-E).
  SimTime initial_time = 0;

  /// Print per-process timing statistics at shutdown (paper §IV-D).
  bool print_stats = false;

  /// Record every MPI-level operation into an in-memory trace (expensive at
  /// scale; for performance investigation on small/medium machines).
  bool trace = false;

  /// Engine worker threads (LP groups): 1 = sequential engine, N > 1 =
  /// conservative-window parallel engine with N groups, 0 = defer to the
  /// EXASIM_SIM_WORKERS environment variable, -1 = one per usable CPU
  /// (exasim::resolve_sim_workers — affinity/cgroup aware). Every setting
  /// delivers the identical simulated schedule.
  int sim_workers = 0;

  /// Window scheduler policy spec ("fixed", "adaptive",
  /// "adaptive:stretch=N,gpw=N"); empty defers to EXASIM_SCHEDULER, unset
  /// environment means "fixed" (exasim::resolve_scheduler_spec). Every
  /// setting delivers the identical simulated schedule (DESIGN.md §11).
  std::string scheduler;

  /// Bounded speculation depth (--speculate=N): maximum events per LP group
  /// staged past the conservative window bound, rolled back when a merged-in
  /// event invalidates them; 0 = off, negative defers to EXASIM_SPECULATE.
  /// Identical simulated schedule at any depth.
  int speculate = -1;
};

/// Result of one simulated application execution.
struct SimResult {
  enum class Outcome : std::uint8_t { kCompleted, kAborted, kDeadlock };

  Outcome outcome = Outcome::kCompleted;

  /// Simulated time of application exit = max simulated MPI process time —
  /// exactly what xSim persists for restart continuity (§IV-E).
  SimTime max_end_time = 0;
  SimTime min_end_time = 0;
  double avg_end_time_sec = 0;

  /// Failures that actually activated (rank + *actual* failure time, which
  /// is >= the scheduled time; §IV-B).
  std::vector<FailureSpec> activated_failures;

  /// Resolved window-scheduler configuration (canonical spec string, e.g.
  /// "fixed" or "adaptive"). Config echo only — the simulated result is
  /// policy-independent.
  std::string scheduler;

  /// Resolved routing policy and link-timeout configuration (canonical spec
  /// strings; DESIGN.md §12). Config echo only — not part of
  /// sim_result_json(), whose field set is pinned by the bench_smoke golden.
  std::string routing;
  std::string link_timeouts;

  /// Resolved resilience configuration (canonical spec strings) and the
  /// detection-latency accounting from the notification bus: one notice per
  /// (survivor, failure) pair; latency = delivery time - time of failure.
  /// Resolved storage hierarchy and checkpoint mode (canonical spec
  /// strings). In sim_result_json() only when either differs from the
  /// default "pfs"/"pfs" — the default field set stays pinned by the
  /// bench_smoke golden.
  std::string storage;
  std::string ckpt_mode;

  std::string detector;
  std::string error_policy;
  std::uint64_t failure_notices = 0;
  SimTime max_detection_latency = 0;
  double mean_detection_latency_sec = 0;

  /// First MPI_Abort, if any.
  std::optional<SimTime> abort_time;
  int abort_origin = -1;

  int finished_count = 0;
  int failed_count = 0;
  int aborted_count = 0;

  std::vector<LpId> deadlocked_ranks;  ///< Non-empty only for kDeadlock.

  /// Per-rank failure-notice arrival log (DESIGN.md §15): one record per
  /// failure notice the engine actually delivered, sorted by (t_fail,
  /// failed_rank, observer) so the log is byte-identical across
  /// `--sim-workers` settings. Not part of sim_result_json() — the model
  /// checker consumes it directly for missed-notification detection.
  std::vector<resilience::NoticeArrival> notice_arrivals;
  /// Final virtual time of every rank (index = world rank; 0 for a rank that
  /// never terminated — cross-check against deadlocked_ranks). Gives the
  /// model checker the "was this rank still alive when the failure happened"
  /// predicate. Not part of sim_result_json().
  std::vector<SimTime> rank_end_times;
  /// Final per-rank outcome (index = world rank). Together with
  /// `notice_arrivals` this is the model checker's missed-notification
  /// predicate: an *aborted* survivor with no arrival record was cut off
  /// before detection reached it. Not part of sim_result_json().
  std::vector<vmpi::ProcOutcome> rank_outcomes;

  std::uint64_t events_processed = 0;
  /// Events scheduled before the scheduler's local clock (Engine causality
  /// guard in counting mode). Nonzero values come from simulator-internal
  /// notices broadcast "at now" across LP groups; they are delivered at most
  /// one conservative window late, which the failure-timeout scale absorbs.
  std::uint64_t causality_violations = 0;
  double total_energy_joules = 0;  ///< 0 unless power modeling enabled.

  /// Aggregate performance breakdown: virtual time spent computing vs in
  /// communication, summed over all processes (always collected).
  SimTime total_busy_time = 0;
  SimTime total_comm_time = 0;
  /// Fraction of total accounted time spent computing (1.0 if no comm).
  double compute_fraction = 1.0;

  /// Hot-path memory counters, metered over this run() only (DESIGN.md §9).
  /// Simulated behavior is identical with pooling on or off; these exist so
  /// perf regressions in allocator traffic are visible without a profiler.
  PerfSnapshot perf;
  /// Host wall-clock seconds spent inside run() — real time, not SimTime.
  /// Host-dependent: excluded from any determinism comparison.
  double wall_seconds = 0;
  double events_per_sec = 0;   ///< events_processed / wall_seconds.
  double ns_per_event = 0;     ///< Inverse, in nanoseconds.
  /// Heap allocations (pool misses routed to ::operator new) per processed
  /// event — the headline "allocs/event" figure of bench_baseline.sh.
  double heap_allocs_per_event = 0;
};

/// Serializes a SimResult as a single JSON object (machine-readable run
/// summary for tooling; exasim_run --result-json).
std::string sim_result_json(const SimResult& r);

/// Services exposed to simulated applications through Context::services.
struct Services {
  ckpt::CheckpointStore* checkpoints = nullptr;
  /// The durable tier's cost model (== storage->pfs_model()); kept for
  /// legacy write_rank_checkpoint callers.
  const PfsModel* pfs = nullptr;
  /// The machine's storage stack (always set; single free PFS by default).
  StorageHierarchy* storage = nullptr;
  /// Resolved checkpoint placement policy for TieredWriter construction.
  ckpt::CkptMode ckpt_mode = ckpt::CkptMode::kPfs;
  EnergyLedger* energy = nullptr;
  int run_index = 0;          ///< 0 for the first launch, +1 per restart.
  SimTime run_start_time = 0; ///< Virtual time this launch started at.
};

inline Services& services_of(vmpi::Context& ctx) {
  return *static_cast<Services*>(ctx.services);
}

/// A simulated machine executing one application launch: builds the engine,
/// models, and one SimProcess per simulated MPI rank; injects the failure
/// schedule; runs to completion/abort/deadlock; reports timing statistics.
class Machine final : public vmpi::SystemHooks {
 public:
  Machine(SimConfig config, vmpi::AppMain app);
  ~Machine() override;

  /// Optional external services (persistent checkpoint store etc.).
  void set_checkpoint_store(ckpt::CheckpointStore* store) { services_.checkpoints = store; }
  void set_run_index(int idx) { services_.run_index = idx; }

  SimResult run();

  /// Valid after run() when power modeling is enabled.
  const EnergyLedger* energy() const { return energy_.get(); }

  /// Valid after run() when SimConfig::trace is set.
  const vmpi::MemoryTraceSink* trace() const { return trace_.get(); }

  /// Per-rank compute/communication breakdown (valid after run()).
  SimTime rank_busy_time(int rank) const { return processes_.at(rank)->busy_time(); }
  SimTime rank_comm_time(int rank) const { return processes_.at(rank)->comm_time(); }

  // -- SystemHooks -------------------------------------------------------
  void process_failed(vmpi::SimProcess& proc, SimTime when) override;
  void abort_called(vmpi::SimProcess& proc, SimTime when) override;
  void comm_revoked(vmpi::SimProcess& proc, int comm_id, SimTime when) override;
  void process_terminated(vmpi::SimProcess& proc) override;
  std::vector<vmpi::Rank> alive_world_ranks() const override;

 private:
  SimConfig config_;
  vmpi::AppMain app_;
  Services services_;

  Engine engine_;
  vmpi::CommRegistry registry_;
  std::shared_ptr<const NetworkModel> network_;
  std::unique_ptr<vmpi::Fabric> fabric_;
  std::unique_ptr<resilience::DetectorModel> detector_model_;
  std::unique_ptr<resilience::NotificationBus> bus_;
  resilience::NoticeLog notice_log_;
  std::unique_ptr<ProcessorModel> proc_model_;
  std::unique_ptr<StorageHierarchy> storage_;
  std::unique_ptr<EnergyLedger> energy_;
  std::unique_ptr<vmpi::MemoryTraceSink> trace_;
  std::vector<std::unique_ptr<vmpi::SimProcess>> processes_;

  /// Guards activated_/abort_time_/abort_origin_: SystemHooks fire from
  /// whichever engine worker owns the reporting rank's LP group.
  mutable std::mutex hooks_mutex_;
  std::vector<FailureSpec> activated_;
  std::optional<SimTime> abort_time_;
  int abort_origin_ = -1;
  std::atomic<int> terminated_count_{0};
};

}  // namespace exasim::core
