#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/runner.hpp"

namespace exasim::core {

/// Command-line / environment configuration of a simulation, xSim-style.
///
/// The paper (§IV-B): "xSim additionally offers to pass a simulated MPI
/// process failure schedule in the form of rank/time pairs on the command
/// line or via an environment variable on startup. This is the typical
/// method for injecting failures."
///
/// Recognized options (all `--key=value`):
///   --ranks=N                 --topology=torus:32x32x32
///   --ranks-per-node=N
///   --link-latency=1us        --bandwidth=32e9        --overhead=500ns
///   --eager-threshold=262144  --failure-timeout=100ms
///   --routing=deterministic|adaptive[:spread=K]
///                             (or environment EXASIM_ROUTING)
///   --link-timeouts=uniform:LO..HI | hot:ID=DUR;.. | plane:P=DUR;..
///                             (or environment EXASIM_LINK_TIMEOUTS)
///   --contention              (per-link occupancy waits in delivery times)
///   --slowdown=1000           --ns-per-unit=1281
///   --pfs-bandwidth=0         --pfs-latency=0
///   --failures=R@T,R@T        (or environment EXASIM_FAILURES)
///   --mttf=3000s              --distribution=uniform2m|exponential|weibull
///   --seed=N                  --max-restarts=N
///   --stack-bytes=N           --measured-compute
///   --sim-time-file=PATH      --verbose
///   --replicates=N            --jobs=N
///   --sim-workers=N|auto      (or environment EXASIM_SIM_WORKERS)
///   --scheduler=fixed|adaptive[:stretch=N][,gpw=N]
///                             (or environment EXASIM_SCHEDULER)
///   --speculate=N             (or environment EXASIM_SPECULATE)
///   --no-pool                 (or environment EXASIM_NO_POOL=1)
struct CliOptions {
  SimConfig machine;
  std::optional<SimTime> mttf;
  FailureDistribution distribution = FailureDistribution::kUniform2Mttf;
  std::uint64_t seed = 1;
  int max_restarts = 10000;
  std::string sim_time_file;
  bool verbose = false;

  /// Replication campaign size: N > 1 repeats the whole simulation with
  /// seeds seed, seed+1, ..., seed+N-1 and reports statistics.
  int replicates = 1;

  /// Worker threads for replication campaigns: -1 = EXASIM_JOBS env default,
  /// 0 = all hardware threads. Interpreted by exp::resolve_jobs() — core
  /// itself only carries the value (layering: core must not depend on exp).
  int jobs = -1;

  /// --no-pool was given: hot-path memory pooling globally disabled (the
  /// flag also calls util::set_pool_enabled(false) as a parse side effect,
  /// mirroring the EXASIM_NO_POOL environment variable).
  bool no_pool = false;

  std::vector<std::string> positional;  ///< Non-option arguments.
};

/// Parses argv plus the EXASIM_FAILURES environment variable. Returns
/// nullopt and fills *error on malformed input.
std::optional<CliOptions> parse_cli(int argc, const char* const* argv, std::string* error);

/// The environment variable consulted for a failure schedule (paper §IV-B).
inline constexpr const char* kFailureScheduleEnvVar = "EXASIM_FAILURES";

/// One-line usage text listing the recognized options.
std::string cli_usage();

/// Builds a RunnerConfig from parsed options (failures from the schedule go
/// into the first launch; random failures come from --mttf).
RunnerConfig runner_config_from(const CliOptions& options);

}  // namespace exasim::core
