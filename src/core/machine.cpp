#include "core/machine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "netmodel/topology.hpp"
#include "pdes/scheduler.hpp"
#include "pdes/sim_workers.hpp"
#include "util/log.hpp"
#include "vmpi/context.hpp"

namespace exasim::core {

Machine::Machine(SimConfig config, vmpi::AppMain app)
    : config_(std::move(config)), app_(std::move(app)) {
  if (config_.ranks <= 0) throw std::invalid_argument("ranks <= 0");
  for (const auto& f : config_.failures) {
    if (f.rank < 0 || f.rank >= config_.ranks) {
      throw std::invalid_argument("failure schedule rank out of range");
    }
  }
  for (const auto& s : config_.soft_errors) {
    if (s.rank < 0 || s.rank >= config_.ranks) {
      throw std::invalid_argument("soft error rank out of range");
    }
  }

  if (config_.network) {
    network_ = config_.network;
  } else {
    std::shared_ptr<const Topology> topo = make_topology(config_.topology);
    const int needed_nodes =
        (config_.ranks + config_.ranks_per_node - 1) / config_.ranks_per_node;
    if (topo->node_count() < needed_nodes) {
      throw std::invalid_argument("topology too small for rank count");
    }
    network_ = std::make_shared<NetworkModel>(std::move(topo), config_.net,
                                              resolve_routing_spec(config_.routing));
  }
  fabric_ = std::make_unique<vmpi::Fabric>(network_, config_.ranks_per_node);

  // Resilience pipeline: the detector model decides when each survivor
  // learns of a failure; the notification bus performs the broadcasts. The
  // timeout detector consults the fabric's per-pair (per-network-level)
  // failure timeout; gossip orders observers by the fabric's zero-byte
  // delivery latency (hop distance under a HierarchicalNetwork); a zero
  // heartbeat/gossip period defaults to the network's largest
  // failure-detection timeout.
  resilience::DetectorWiring det_wiring;
  det_wiring.pair_timeout = [f = fabric_.get()](int observer, int failed) {
    return f->failure_timeout(observer, failed);
  };
  det_wiring.pair_latency = [f = fabric_.get()](int observer, int failed) {
    return f->delivery(observer, failed, 0);
  };
  det_wiring.default_period = network_->max_failure_timeout();
  det_wiring.ranks = config_.ranks;
  detector_model_ = resilience::make_detector(config_.detector, std::move(det_wiring));
  resilience::NotificationBus::Wiring wiring;
  wiring.engine = &engine_;
  wiring.ranks = config_.ranks;
  wiring.detector = detector_model_.get();
  wiring.failure_kind = vmpi::kEvFailureNotice;
  wiring.abort_kind = vmpi::kEvAbortNotice;
  wiring.revoke_kind = vmpi::kEvRevokeNotice;
  bus_ = std::make_unique<resilience::NotificationBus>(wiring);
  proc_model_ = std::make_unique<ProcessorModel>(config_.proc);
  StorageSpec storage_spec = resolve_storage_spec(config_.storage);
  if (storage_spec.is_default() && !(config_.pfs == PfsParams{})) {
    // Legacy flat-PFS knobs seed the default hierarchy's PFS tier, keeping
    // pre-hierarchy configurations (--pfs-bandwidth etc.) cost-identical.
    storage_spec.tiers.front().io = config_.pfs;
    storage_spec.preset.clear();
  }
  storage_ = std::make_unique<StorageHierarchy>(std::move(storage_spec));
  if (config_.power) {
    energy_ = std::make_unique<EnergyLedger>(config_.ranks, *config_.power);
  }
  if (config_.trace) {
    trace_ = std::make_unique<vmpi::MemoryTraceSink>();
  }

  services_.pfs = &storage_->pfs_model();
  services_.storage = storage_.get();
  services_.ckpt_mode = ckpt::resolve_ckpt_mode(config_.ckpt_mode);
  services_.energy = energy_.get();
  services_.run_start_time = config_.initial_time;
}

Machine::~Machine() = default;

SimResult Machine::run() {
  const PerfSnapshot perf_begin = perf_snapshot();
  const auto wall_begin = std::chrono::steady_clock::now();

  // Build one simulated MPI process per rank. The application entry point is
  // wrapped so every process sees the machine services.
  processes_.clear();
  processes_.reserve(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    auto proc = std::make_unique<vmpi::SimProcess>(
        r, config_.ranks, &engine_, fabric_.get(), proc_model_.get(), this, &registry_, app_,
        config_.process, config_.initial_time);
    proc->context().services = &services_;
    proc->context().set_error_handler(proc->context().world(), config_.default_error_handler);
    if (energy_) proc->attach_energy(energy_.get());
    if (trace_) proc->attach_trace(trace_.get());
    proc->attach_notice_log(&notice_log_);
    engine_.add_process(r, proc.get());
    processes_.push_back(std::move(proc));
  }

  // Inject the failure schedule (paper §IV-B): per-process time of failure +
  // an activation event so blocked processes fail on time.
  for (const auto& f : config_.failures) {
    auto& proc = *processes_[static_cast<std::size_t>(f.rank)];
    proc.set_time_of_failure(std::min(proc.time_of_failure(), f.time));
    engine_.schedule(f.time, f.rank, vmpi::kEvFailureActivation, nullptr,
                     EventPriority::kControl);
  }
  for (const auto& s : config_.soft_errors) {
    processes_[static_cast<std::size_t>(s.rank)]->schedule_bit_flip(s.time, s.bit_index);
  }

  // Start every process at the (possibly restored) initial virtual time.
  for (int r = 0; r < config_.ranks; ++r) {
    engine_.schedule(config_.initial_time, r, vmpi::kEvStart, nullptr);
  }

  // Engine sharding: LP groups aligned to nodes so that only cross-node
  // traffic — which the network model bounds below by min_remote_latency()
  // — crosses groups. Causality mode is counting, not throwing: the
  // simulator-internal failure/abort/revoke notices broadcast "at now" can
  // cross groups below the window bound; they arrive at most one
  // conservative window (µs-scale) late, which the ms-scale failure
  // timeouts governing observable behavior absorb.
  const auto* hier = dynamic_cast<const HierarchicalNetwork*>(network_.get());
  const SchedulerSpec scheduler = resolve_scheduler_spec(config_.scheduler);
  Engine::ShardingOptions shard;
  shard.workers = resolve_sim_workers(config_.sim_workers);
  shard.lookahead = network_->min_remote_latency();
  shard.block_alignment = hier ? hier->ranks_per_node() : config_.ranks_per_node;
  shard.scheduler = scheduler;
  shard.speculate = resolve_speculation(config_.speculate);
  if (network_->params().contention && shard.workers > 1) {
    // Busy-window interleaving across LP groups depends on window boundaries:
    // contention delays are a modeled approximation there, not the exact
    // sequential schedule. Everything else stays deterministic.
    EXASIM_WARN() << "link contention with " << shard.workers
                  << " sim workers: contended delays are approximate; use "
                     "--sim-workers=1 for exact contention modeling";
  }
  if (storage_->any_contended() && shard.workers > 1) {
    EXASIM_WARN() << "storage contention with " << shard.workers
                  << " sim workers: occupancy-window delays are approximate; "
                     "use --sim-workers=1 for exact contention modeling";
  }
  engine_.set_sharding(std::move(shard));
  engine_.set_causality_mode(Engine::CausalityMode::kCount);

  engine_.run();

  // Collect results.
  SimResult result;
  RunningStats end_times;
  for (const auto& proc : processes_) {
    switch (proc->outcome()) {
      case vmpi::ProcOutcome::kFinished: ++result.finished_count; break;
      case vmpi::ProcOutcome::kFailed: ++result.failed_count; break;
      case vmpi::ProcOutcome::kAborted: ++result.aborted_count; break;
      case vmpi::ProcOutcome::kRunning: break;  // Deadlocked.
    }
    if (proc->outcome() != vmpi::ProcOutcome::kRunning) {
      end_times.add(to_seconds(proc->end_time()));
      result.max_end_time = std::max(result.max_end_time, proc->end_time());
    }
  }
  result.min_end_time = sim_seconds(end_times.min());
  result.avg_end_time_sec = end_times.mean();
  // Hook order across LP groups is scheduling-dependent; (time, rank) is the
  // order the sequential engine produces, so sorting makes the report
  // identical for every worker count.
  std::sort(activated_.begin(), activated_.end(),
            [](const FailureSpec& a, const FailureSpec& b) {
              return a.time != b.time ? a.time < b.time : a.rank < b.rank;
            });
  result.activated_failures = activated_;
  result.abort_time = abort_time_;
  result.abort_origin = abort_origin_;
  result.scheduler = exasim::to_string(scheduler);
  result.routing = exasim::to_string(network_->routing());
  result.link_timeouts = exasim::to_string(network_->params().link_timeouts);
  result.storage = exasim::to_string(storage_->spec());
  result.ckpt_mode = ckpt::to_string(services_.ckpt_mode);
  result.detector = resilience::to_string(config_.detector);
  result.error_policy = resilience::to_string(config_.default_error_handler);
  const auto det_stats = bus_->detection_stats();
  result.failure_notices = det_stats.notices;
  result.max_detection_latency = det_stats.max_latency;
  result.mean_detection_latency_sec = det_stats.mean_latency_sec();
  result.notice_arrivals = notice_log_.snapshot();
  result.rank_end_times.reserve(processes_.size());
  result.rank_outcomes.reserve(processes_.size());
  for (const auto& proc : processes_) {
    result.rank_end_times.push_back(proc->end_time());
    result.rank_outcomes.push_back(proc->outcome());
  }
  result.events_processed = engine_.events_processed();
  result.causality_violations = engine_.causality_violations();
  result.perf = perf_delta(perf_begin, perf_snapshot());
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
  if (result.wall_seconds > 0 && result.events_processed > 0) {
    result.events_per_sec = static_cast<double>(result.events_processed) / result.wall_seconds;
    result.ns_per_event = 1e9 / result.events_per_sec;
  }
  if (result.events_processed > 0) {
    result.heap_allocs_per_event = static_cast<double>(result.perf.pool_heap_allocs) /
                                   static_cast<double>(result.events_processed);
  }
  if (energy_) result.total_energy_joules = energy_->total_joules();
  for (const auto& proc : processes_) {
    result.total_busy_time += proc->busy_time();
    result.total_comm_time += proc->comm_time();
  }
  const double accounted =
      static_cast<double>(result.total_busy_time) + static_cast<double>(result.total_comm_time);
  if (accounted > 0) {
    result.compute_fraction = static_cast<double>(result.total_busy_time) / accounted;
  }

  result.deadlocked_ranks = engine_.unterminated();
  if (!result.deadlocked_ranks.empty()) {
    result.outcome = SimResult::Outcome::kDeadlock;
    EXASIM_WARN() << "simulation deadlocked with " << result.deadlocked_ranks.size()
                  << " blocked processes";
  } else if (abort_time_.has_value()) {
    result.outcome = SimResult::Outcome::kAborted;
  } else if (result.failed_count > 0 && result.finished_count < config_.ranks) {
    // Failures without an abort (e.g. ULFM recovery did not complete
    // everywhere) still count as an aborted execution if anyone is missing.
    result.outcome = result.finished_count + result.failed_count == config_.ranks
                         ? SimResult::Outcome::kCompleted
                         : SimResult::Outcome::kAborted;
  } else {
    result.outcome = SimResult::Outcome::kCompleted;
  }

  if (config_.print_stats) {
    // Shutdown timing statistics: minimum, maximum, and average simulated
    // MPI process time (paper §IV-D).
    EXASIM_INFO() << "simulated process times: min=" << end_times.min()
                  << "s max=" << end_times.max() << "s avg=" << end_times.mean() << "s";
  }
  return result;
}

void Machine::process_failed(vmpi::SimProcess& proc, SimTime when) {
  // Informational message on the command line (paper §IV-B).
  EXASIM_INFO() << "simulated MPI process failure: rank " << proc.world_rank() << " at "
                << format_sim_time(when);
  engine_.mark_dead(proc.world_rank());
  {
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    activated_.push_back(FailureSpec{proc.world_rank(), when});
  }

  // Simulator-internal broadcast: every simulated process learns the rank
  // and time of failure (paper §IV-B), delivered at the detector model's
  // per-observer detection time.
  bus_->broadcast_failure(proc.world_rank(), when);
}

void Machine::abort_called(vmpi::SimProcess& proc, SimTime when) {
  EXASIM_INFO() << "simulated MPI_Abort: rank " << proc.world_rank() << " at "
                << format_sim_time(when);
  {
    std::lock_guard<std::mutex> lock(hooks_mutex_);
    // (when, rank) tie-break keeps the reported origin deterministic when
    // two groups abort at the same virtual time.
    if (!abort_time_.has_value() || when < *abort_time_ ||
        (when == *abort_time_ && proc.world_rank() < abort_origin_)) {
      abort_time_ = when;
      abort_origin_ = proc.world_rank();
    }
  }
  bus_->broadcast_abort(proc.world_rank(), when);
}

void Machine::comm_revoked(vmpi::SimProcess& proc, int comm_id, SimTime when) {
  bus_->broadcast_revoke(proc.world_rank(), comm_id, when);
}

void Machine::process_terminated(vmpi::SimProcess& proc) {
  (void)proc;
  if (terminated_count_.fetch_add(1, std::memory_order_relaxed) + 1 == config_.ranks) {
    // "The simulator terminates after all simulated MPI processes aborted"
    // (§IV-D) — or finished/failed.
    engine_.request_stop();
  }
}

std::string sim_result_json(const SimResult& r) {
  auto outcome_str = [](SimResult::Outcome o) {
    switch (o) {
      case SimResult::Outcome::kCompleted: return "completed";
      case SimResult::Outcome::kAborted: return "aborted";
      case SimResult::Outcome::kDeadlock: return "deadlock";
    }
    return "?";
  };
  std::ostringstream os;
  os << "{";
  os << "\"outcome\":\"" << outcome_str(r.outcome) << "\",";
  os << "\"max_end_time_ns\":" << r.max_end_time << ",";
  os << "\"max_end_time_sec\":" << to_seconds(r.max_end_time) << ",";
  os << "\"avg_end_time_sec\":" << r.avg_end_time_sec << ",";
  os << "\"scheduler\":\"" << r.scheduler << "\",";
  // Storage fields appear only off the default, so the default-config field
  // set stays byte-identical to the pre-hierarchy golden.
  const bool default_storage =
      (r.storage.empty() || r.storage == "pfs") && (r.ckpt_mode.empty() || r.ckpt_mode == "pfs");
  if (!default_storage) {
    os << "\"storage\":\"" << r.storage << "\",";
    os << "\"ckpt_mode\":\"" << r.ckpt_mode << "\",";
  }
  os << "\"detector\":\"" << r.detector << "\",";
  os << "\"error_policy\":\"" << r.error_policy << "\",";
  os << "\"failure_notices\":" << r.failure_notices << ",";
  os << "\"max_detection_latency_ns\":" << r.max_detection_latency << ",";
  os << "\"mean_detection_latency_sec\":" << r.mean_detection_latency_sec << ",";
  os << "\"activated_failures\":[";
  for (std::size_t i = 0; i < r.activated_failures.size(); ++i) {
    const auto& f = r.activated_failures[i];
    os << (i == 0 ? "" : ",") << "{\"rank\":" << f.rank << ",\"time_ns\":" << f.time << "}";
  }
  os << "],";
  if (r.abort_time.has_value()) {
    os << "\"abort_time_ns\":" << *r.abort_time << ",";
    os << "\"abort_origin\":" << r.abort_origin << ",";
  }
  os << "\"finished\":" << r.finished_count << ",";
  os << "\"failed\":" << r.failed_count << ",";
  os << "\"aborted\":" << r.aborted_count << ",";
  os << "\"deadlocked\":" << r.deadlocked_ranks.size() << ",";
  os << "\"events_processed\":" << r.events_processed << ",";
  os << "\"total_energy_joules\":" << r.total_energy_joules << ",";
  os << "\"compute_fraction\":" << r.compute_fraction << ",";
  os << "\"wall_seconds\":" << r.wall_seconds << ",";
  os << "\"events_per_sec\":" << r.events_per_sec;
  os << "}";
  return os.str();
}

std::vector<vmpi::Rank> Machine::alive_world_ranks() const {
  std::vector<vmpi::Rank> alive;
  alive.reserve(processes_.size());
  for (const auto& p : processes_) {
    if (p->outcome() != vmpi::ProcOutcome::kFailed) alive.push_back(p->world_rank());
  }
  return alive;
}

}  // namespace exasim::core
