#pragma once

// Compatibility shim: the reliability/failure-schedule machinery moved into
// the resilience subsystem (src/resilience/schedule.hpp). Core-layer code and
// applications keep the core:: spellings.

#include "resilience/schedule.hpp"

namespace exasim::core {

using FailureDistribution = resilience::FailureDistribution;
using ReliabilityModel = resilience::ReliabilityModel;
using FailureSchedule = resilience::FailureSchedule;
using resilience::kWeibullShape;

}  // namespace exasim::core
