#pragma once

#include <cstdint>
#include <vector>

#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace exasim::core {

/// How failure times are drawn for random injection.
enum class FailureDistribution : std::uint8_t {
  /// The paper's worst-case scenario (§V-C): time uniform in [0, 2*MTTF),
  /// one draw per application launch, rank uniform.
  kUniform2Mttf,
  /// First arrival of a Poisson process with the given system MTTF.
  kExponential,
  /// Weibull with shape 0.7 (infant-mortality-heavy, a common HPC fit)
  /// scaled so the mean equals the system MTTF.
  kWeibull,
};

/// Component-based system reliability model (paper future-work item 2, in
/// its simplest useful form): the system fails when its least-lucky node
/// fails; we expose the equivalent single-draw system-level model plus
/// explicit deterministic schedules.
class ReliabilityModel {
 public:
  ReliabilityModel(FailureDistribution dist, SimTime system_mttf, int ranks,
                   std::uint64_t seed);

  /// Draws the next application launch's failure (rank + time relative to
  /// launch start). The caller decides whether the time lands inside the
  /// run. Each call advances the deterministic RNG stream.
  FailureSpec draw();

  /// Expected failures for an execution of the given length (diagnostics).
  double expected_failures(SimTime run_length) const;

  SimTime system_mttf() const { return system_mttf_; }
  FailureDistribution distribution() const { return dist_; }

 private:
  FailureDistribution dist_;
  SimTime system_mttf_;
  int ranks_;
  Rng rng_;
};

/// Weibull shape used by FailureDistribution::kWeibull.
inline constexpr double kWeibullShape = 0.7;

}  // namespace exasim::core
