#include "core/simtimefile.hpp"

#include <cstdio>
#include <fstream>

namespace exasim::core {

bool SimTimeFile::save(SimTime exit_time) const {
  std::ofstream f(path_, std::ios::trunc);
  if (!f) return false;
  f << exit_time << '\n';
  return static_cast<bool>(f);
}

std::optional<SimTime> SimTimeFile::load() const {
  std::ifstream f(path_);
  if (!f) return std::nullopt;
  SimTime t = 0;
  f >> t;
  if (f.fail()) return std::nullopt;
  return t;
}

void SimTimeFile::reset() const { std::remove(path_.c_str()); }

}  // namespace exasim::core
