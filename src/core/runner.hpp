#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/failure.hpp"
#include "core/machine.hpp"

namespace exasim::core {

/// Configuration for a full failure/restart experiment (one Table II row).
struct RunnerConfig {
  /// Machine + application config of a single launch. `failures` and
  /// `initial_time` are managed by the runner and must be left empty/zero
  /// (deterministic extra failures go in `first_run_failures`).
  SimConfig base;

  /// System MTTF for random injection; nullopt = no random failures (the E1
  /// baseline). Times are drawn per launch, relative to launch start
  /// (paper §V-C: "applies to each application run separately").
  std::optional<SimTime> system_mttf;
  FailureDistribution distribution = FailureDistribution::kUniform2Mttf;
  std::uint64_t seed = 1;

  /// Deterministic failures injected into the first launch only (relative to
  /// its start) — used by failure-mode census experiments.
  std::vector<FailureSpec> first_run_failures;

  /// Virtual time lost to relaunching (job requeue etc.); applied per
  /// restart. The paper does not model it; default 0.
  SimTime restart_overhead = 0;

  int max_restarts = 10000;

  /// Optional path for xSim-style on-disk exit-time persistence (§IV-E).
  std::string sim_time_file;
};

/// Outcome of a failure/restart experiment.
struct RunnerResult {
  bool completed = false;

  /// Total simulated execution time including all failure/restart cycles —
  /// the paper's E2 (equal to E1 when no failures were injected).
  SimTime total_time = 0;

  /// Number of failure-caused abort/restart cycles — the paper's F.
  int failures = 0;

  /// Experienced application MTTF — the paper's MTTF_a = E2 / (F + 1).
  double app_mttf_seconds = 0;

  int launches = 0;  ///< F + 1 when completed.

  std::vector<SimResult> run_results;  ///< Per-launch details.
};

/// Orchestrates the paper's operational loop: launch the application on a
/// simulated machine; on a failure-triggered MPI abort, persist the exit
/// time, scrub incomplete checkpoints (the paper's shell script), and
/// relaunch with the virtual clock restored — until the application
/// completes (paper §III-B, §IV-E, §V).
class ResilientRunner {
 public:
  ResilientRunner(RunnerConfig config, vmpi::AppMain app);

  /// Runs launches until completion (or max_restarts). The checkpoint store
  /// persists across launches and is reachable from the application via
  /// Services::checkpoints.
  RunnerResult run();

  ckpt::CheckpointStore& checkpoints() { return store_; }

 private:
  RunnerConfig config_;
  vmpi::AppMain app_;
  ckpt::CheckpointStore store_;
};

}  // namespace exasim::core
