#pragma once

#include <optional>
#include <string>

#include "util/time.hpp"

namespace exasim::core {

/// Persistence of the simulated exit time across simulator restarts
/// (paper §IV-E): "xSim optionally writes out the simulated time of the
/// application exit (maximum simulated MPI process time) to a file. This
/// file can be read in upon restart to initialize the clock of all simulated
/// MPI processes with this time."
///
/// The in-process ResilientRunner keeps the value in memory; this file form
/// supports the paper's original operational mode where the simulator
/// process itself is restarted (e.g. by a shell script).
class SimTimeFile {
 public:
  explicit SimTimeFile(std::string path) : path_(std::move(path)) {}

  /// Writes the exit time; returns false on I/O failure.
  bool save(SimTime exit_time) const;

  /// Reads the stored time; nullopt if the file is missing or malformed
  /// (cold start).
  std::optional<SimTime> load() const;

  /// Deletes the file (fresh experiment).
  void reset() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace exasim::core
