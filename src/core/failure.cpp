#include "core/failure.hpp"

#include <cmath>
#include <stdexcept>

namespace exasim::core {

ReliabilityModel::ReliabilityModel(FailureDistribution dist, SimTime system_mttf, int ranks,
                                   std::uint64_t seed)
    : dist_(dist), system_mttf_(system_mttf), ranks_(ranks), rng_(seed) {
  if (system_mttf == 0) throw std::invalid_argument("zero MTTF");
  if (ranks <= 0) throw std::invalid_argument("ranks <= 0");
}

FailureSpec ReliabilityModel::draw() {
  FailureSpec spec;
  spec.rank = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(ranks_)));
  const double mttf_s = to_seconds(system_mttf_);
  double t_s = 0;
  switch (dist_) {
    case FailureDistribution::kUniform2Mttf:
      t_s = rng_.uniform(0.0, 2.0 * mttf_s);
      break;
    case FailureDistribution::kExponential:
      t_s = rng_.exponential(mttf_s);
      break;
    case FailureDistribution::kWeibull: {
      // Scale so the Weibull mean equals the MTTF: mean = scale * Gamma(1 + 1/k).
      const double scale = mttf_s / std::tgamma(1.0 + 1.0 / kWeibullShape);
      t_s = rng_.weibull(kWeibullShape, scale);
      break;
    }
  }
  spec.time = sim_seconds(t_s);
  return spec;
}

double ReliabilityModel::expected_failures(SimTime run_length) const {
  const double len = to_seconds(run_length);
  const double mttf = to_seconds(system_mttf_);
  switch (dist_) {
    case FailureDistribution::kUniform2Mttf:
      // One draw per launch; P(failure inside run) = min(1, len / (2*MTTF)).
      return std::min(1.0, len / (2.0 * mttf));
    case FailureDistribution::kExponential:
    case FailureDistribution::kWeibull:
      return len / mttf;
  }
  return 0;
}

}  // namespace exasim::core
