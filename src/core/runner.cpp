#include "core/runner.hpp"

#include <stdexcept>
#include <utility>

#include "core/simtimefile.hpp"
#include "util/log.hpp"

namespace exasim::core {

ResilientRunner::ResilientRunner(RunnerConfig config, vmpi::AppMain app)
    : config_(std::move(config)), app_(std::move(app)), store_(config_.base.ranks) {
  if (!config_.base.failures.empty() || config_.base.initial_time != 0) {
    throw std::invalid_argument(
        "RunnerConfig::base.failures/initial_time are managed by the runner");
  }
}

RunnerResult ResilientRunner::run() {
  RunnerResult result;
  std::optional<ReliabilityModel> reliability;
  if (config_.system_mttf) {
    reliability.emplace(config_.distribution, *config_.system_mttf, config_.base.ranks,
                        config_.seed);
  }
  std::optional<SimTimeFile> time_file;
  if (!config_.sim_time_file.empty()) {
    time_file.emplace(config_.sim_time_file);
    time_file->reset();
  }

  SimTime accumulated = 0;
  for (int launch = 0; launch <= config_.max_restarts; ++launch) {
    SimConfig cfg = config_.base;
    cfg.initial_time = accumulated;

    // Per-launch failure schedule: one random draw per launch (paper §V-C:
    // rank uniform, time uniform within 2*MTTF, applied to each run
    // separately), plus the deterministic first-launch extras; drawn relative
    // to launch start, then shifted to absolute virtual time (§IV-E).
    FailureSchedule schedule;
    if (reliability) schedule.add_draw(*reliability);
    if (launch == 0) {
      for (const FailureSpec& f : config_.first_run_failures) schedule.add(f);
    }
    schedule.shift(accumulated);
    cfg.failures = schedule.specs();

    Machine machine(std::move(cfg), app_);
    machine.set_checkpoint_store(&store_);
    machine.set_run_index(launch);
    SimResult run = machine.run();
    accumulated = run.max_end_time;
    if (time_file) time_file->save(accumulated);
    result.run_results.push_back(run);
    ++result.launches;

    if (run.outcome == SimResult::Outcome::kCompleted) {
      result.completed = true;
      break;
    }
    if (run.outcome == SimResult::Outcome::kDeadlock) {
      EXASIM_ERROR() << "launch " << launch << " deadlocked; stopping experiment";
      break;
    }
    // Aborted: count the failure/restart cycle, lose the checkpoint copies
    // the failures took with them (a victim's node memory, drains it was
    // sourcing, drains still in flight at abort), scrub incomplete sets (the
    // paper's pre-restart shell script), and relaunch with continuous
    // virtual time.
    if (!run.activated_failures.empty()) ++result.failures;
    store_.apply_failures(run.activated_failures, run.max_end_time);
    store_.scrub();
    accumulated += config_.restart_overhead;
  }

  result.total_time = accumulated;
  const int denominator = result.failures + 1;
  result.app_mttf_seconds = to_seconds(result.total_time) / denominator;
  return result;
}

}  // namespace exasim::core
