#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/time.hpp"

namespace exasim::resilience {

/// One delivered failure notice: `observer` learned at `arrival` that
/// `failed_rank` died at `t_fail`. Records exist only for notices the engine
/// actually delivered — an observer that was already dead or finished when
/// its notice would have arrived produces no record, which is exactly the
/// gap the model checker's missed-notification analysis looks for.
struct NoticeArrival {
  std::int32_t observer = -1;
  std::int32_t failed_rank = -1;
  SimTime t_fail = 0;
  SimTime arrival = 0;

  friend bool operator==(const NoticeArrival&, const NoticeArrival&) = default;
};

/// Per-rank failure-notice arrival log (DESIGN.md §15). The simulated MPI
/// layer records every delivered failure notice here; core::Machine snapshots
/// the log into SimResult::notice_arrivals at the end of the run. Appends
/// come from whichever engine worker owns the observer's LP group, so the
/// log is mutex-guarded and the snapshot is sorted by (t_fail, failed_rank,
/// observer) — the same record set, in the same order, for every
/// `--sim-workers` setting.
class NoticeLog {
 public:
  void record(int observer, int failed_rank, SimTime t_fail, SimTime arrival);

  /// Sorted copy of the records (deterministic across worker counts).
  std::vector<NoticeArrival> snapshot() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<NoticeArrival> arrivals_;
};

}  // namespace exasim::resilience
