#pragma once

#include <cstdint>
#include <mutex>

#include "pdes/engine.hpp"
#include "resilience/detector.hpp"
#include "resilience/notice.hpp"
#include "util/time.hpp"

namespace exasim::resilience {

/// Carries the simulator-internal failure/abort/revoke notices to every
/// simulated process (paper §IV-B/§IV-D/§VI), replacing the ad-hoc payload
/// broadcasts that used to live in core::Machine.
///
/// Ordering contract: one broadcast schedules its notices in ascending rank
/// order from the LP whose handler is running, at EventPriority::kControl.
/// The engine's (time, priority, source LP, per-source seq) key therefore
/// delivers same-time notices in rank order, and — because the key is
/// partition-independent — the delivery order is identical for every
/// `--sim-workers` setting. Failure notices are delivered at the detector
/// model's per-observer detection time (>= the failure time); abort and
/// revoke notices at the event time itself, as in the paper.
class NotificationBus {
 public:
  struct Wiring {
    Engine* engine = nullptr;
    int ranks = 0;
    /// Delivery-time model for failure notices; nullptr = instant.
    const DetectorModel* detector = nullptr;
    /// Event kinds the MPI layer dispatches on (vmpi::kEvFailureNotice etc.
    /// — passed as ints so this library stays below vmpi in the link order).
    int failure_kind = 0;
    int abort_kind = 0;
    int revoke_kind = 0;
  };

  explicit NotificationBus(Wiring wiring);

  /// Broadcasts a failure notice to every rank except the failed one; each
  /// observer's notice is delivered at detector->detection_time(...).
  void broadcast_failure(int failed_rank, SimTime t_fail);
  /// Broadcasts an abort notice to every rank except the origin.
  void broadcast_abort(int origin_rank, SimTime t_abort);
  /// Broadcasts a ULFM revoke notice to every rank except the origin.
  void broadcast_revoke(int origin_rank, int comm_id, SimTime when);

  /// Detection-latency accounting over all failure notices broadcast so far
  /// (latency = detect_time - time_of_failure per observer). Thread-safe:
  /// broadcasts run on whichever engine worker owns the reporting LP group.
  struct DetectionStats {
    std::uint64_t notices = 0;
    SimTime max_latency = 0;
    double total_latency_sec = 0;
    double mean_latency_sec() const {
      return notices == 0 ? 0.0 : total_latency_sec / static_cast<double>(notices);
    }
  };
  DetectionStats detection_stats() const;

 private:
  Wiring wiring_;
  mutable std::mutex stats_mutex_;
  DetectionStats stats_;
};

}  // namespace exasim::resilience
