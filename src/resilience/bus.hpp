#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "pdes/engine.hpp"
#include "resilience/detector.hpp"
#include "resilience/notice.hpp"
#include "util/time.hpp"

namespace exasim::resilience {

/// Carries the simulator-internal failure/abort/revoke notices to every
/// simulated process (paper §IV-B/§IV-D/§VI), replacing the ad-hoc payload
/// broadcasts that used to live in core::Machine.
///
/// Ordering contract: one broadcast creates its notices in ascending rank
/// order from the LP whose handler is running, at EventPriority::kControl, so
/// the engine's (time, priority, source LP, per-source seq) key delivers
/// same-time notices in rank order, identically for every `--sim-workers`
/// setting. The notices travel through Engine::schedule_fanout: each
/// destination LP group receives ONE relay event carrying its batch of
/// notices, so a failure at 10^5 ranks costs O(groups) cross-group mailbox
/// events instead of O(ranks); destinations already dead are skipped.
/// Failure notices are delivered at the detector model's per-observer
/// detection time (>= the failure time); abort and revoke notices at the
/// event time itself, as in the paper.
class NotificationBus {
 public:
  struct Wiring {
    Engine* engine = nullptr;
    int ranks = 0;
    /// Delivery-time model for failure notices; nullptr = instant.
    const DetectorModel* detector = nullptr;
    /// Event kinds the MPI layer dispatches on (vmpi::kEvFailureNotice etc.
    /// — passed as ints so this library stays below vmpi in the link order).
    int failure_kind = 0;
    int abort_kind = 0;
    int revoke_kind = 0;
  };

  explicit NotificationBus(Wiring wiring);

  /// Broadcasts a failure notice to every rank except the failed one; each
  /// observer's notice is delivered at detector->detection_time(...).
  void broadcast_failure(int failed_rank, SimTime t_fail);
  /// Broadcasts an abort notice to every rank except the origin.
  void broadcast_abort(int origin_rank, SimTime t_abort);
  /// Broadcasts a ULFM revoke notice to every rank except the origin.
  void broadcast_revoke(int origin_rank, int comm_id, SimTime when);

  /// Detection-latency accounting (latency = detect_time - time_of_failure
  /// per observer). Computed on demand from the log of broadcast failures:
  /// an observer counts for a failure unless it had itself failed at or
  /// before its would-be detection time — matching which notices the engine
  /// actually delivers once dead destinations are skipped. The double
  /// summation runs in a (t_fail, rank)-sorted order, so the result is
  /// independent of which worker thread logged which failure first.
  struct DetectionStats {
    std::uint64_t notices = 0;
    SimTime max_latency = 0;
    double total_latency_sec = 0;
    double mean_latency_sec() const {
      return notices == 0 ? 0.0 : total_latency_sec / static_cast<double>(notices);
    }
  };
  DetectionStats detection_stats() const;

 private:
  struct FailureRecord {
    int rank = 0;
    SimTime t_fail = 0;
  };

  Wiring wiring_;
  /// Failures broadcast so far. Guarded: broadcasts run on whichever engine
  /// worker owns the reporting LP group.
  mutable std::mutex log_mutex_;
  std::vector<FailureRecord> failures_;
};

}  // namespace exasim::resilience
