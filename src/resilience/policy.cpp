#include "resilience/policy.hpp"

namespace exasim::resilience {

std::string to_string(ErrorPolicy p) {
  switch (p) {
    case ErrorPolicy::kFatal: return "errors-are-fatal";
    case ErrorPolicy::kReturn: return "errors-return";
    case ErrorPolicy::kUser: return "user-handler";
  }
  return "?";
}

ErrorAction ErrorHandlerPolicy::dispatch(ErrorPolicy policy, bool has_user_handler) {
  switch (policy) {
    case ErrorPolicy::kFatal:
      return ErrorAction::kAbort;
    case ErrorPolicy::kUser:
      return has_user_handler ? ErrorAction::kInvokeUserThenReturn : ErrorAction::kReturn;
    case ErrorPolicy::kReturn:
      return ErrorAction::kReturn;
  }
  return ErrorAction::kReturn;
}

}  // namespace exasim::resilience
