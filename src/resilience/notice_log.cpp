#include "resilience/notice_log.hpp"

#include <algorithm>

namespace exasim::resilience {

void NoticeLog::record(int observer, int failed_rank, SimTime t_fail, SimTime arrival) {
  std::lock_guard<std::mutex> lock(mutex_);
  arrivals_.push_back(NoticeArrival{observer, failed_rank, t_fail, arrival});
}

std::vector<NoticeArrival> NoticeLog::snapshot() const {
  std::vector<NoticeArrival> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = arrivals_;
  }
  // Append order depends on which engine worker delivered which notice
  // first; (t_fail, failed_rank, observer) is a total order over the record
  // set (one notice per observer per failure), so the snapshot is identical
  // for every worker count.
  std::sort(out.begin(), out.end(), [](const NoticeArrival& a, const NoticeArrival& b) {
    if (a.t_fail != b.t_fail) return a.t_fail < b.t_fail;
    if (a.failed_rank != b.failed_rank) return a.failed_rank < b.failed_rank;
    return a.observer < b.observer;
  });
  return out;
}

std::size_t NoticeLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arrivals_.size();
}

}  // namespace exasim::resilience
