#include "resilience/detector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/parse.hpp"

namespace exasim::resilience {

namespace {

std::optional<long> parse_positive_int(const std::string& value) {
  try {
    std::size_t used = 0;
    const long n = std::stol(value, &used);
    if (used != value.size() || n < 1) return std::nullopt;
    return n;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::uint64_t> parse_u64(const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(value, &used);
    if (used != value.size() || value.empty() || value[0] == '-') return std::nullopt;
    return static_cast<std::uint64_t>(n);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<DetectorSpec> parse_detector_spec(const std::string& text) {
  DetectorSpec spec;
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }

  if (head == "paper-instant") {
    spec.kind = DetectorKind::kPaperInstant;
  } else if (head == "timeout") {
    spec.kind = DetectorKind::kTimeout;
  } else if (head == "heartbeat") {
    spec.kind = DetectorKind::kHeartbeat;
  } else if (head == "gossip") {
    spec.kind = DetectorKind::kGossip;
  } else {
    return std::nullopt;
  }
  if (opts.empty()) return spec;
  if (spec.kind != DetectorKind::kHeartbeat && spec.kind != DetectorKind::kGossip) {
    return std::nullopt;  // No options.
  }

  std::size_t pos = 0;
  while (pos < opts.size()) {
    std::size_t comma = opts.find(',', pos);
    if (comma == std::string::npos) comma = opts.size();
    const std::string item = opts.substr(pos, comma - pos);
    pos = comma + 1;

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    SimTime* period = spec.kind == DetectorKind::kHeartbeat ? &spec.heartbeat_period
                                                            : &spec.gossip_period;
    if (key == "period") {
      if (value == "auto") {
        *period = 0;  // Resolved to the network timeout later.
        continue;
      }
      auto t = parse_duration(value);
      if (!t || *t == 0) return std::nullopt;
      *period = *t;
    } else if (key == "miss" && spec.kind == DetectorKind::kHeartbeat) {
      auto n = parse_positive_int(value);
      if (!n) return std::nullopt;
      spec.heartbeat_miss = static_cast<int>(*n);
    } else if (key == "fanout" && spec.kind == DetectorKind::kGossip) {
      auto n = parse_positive_int(value);
      if (!n) return std::nullopt;
      spec.gossip_fanout = static_cast<int>(*n);
    } else if (key == "seed" && spec.kind == DetectorKind::kGossip) {
      auto n = parse_u64(value);
      if (!n) return std::nullopt;
      spec.gossip_seed = *n;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

namespace {

/// Canonical duration spelling ("100ms", "2s", "750ns") that
/// parse_detector_spec reads back — unlike the human-facing format_sim_time,
/// which inserts spaces and fixed decimals.
std::string canonical_duration(SimTime t) {
  if (t >= sim_seconds(1.0) && t % sim_seconds(1.0) == 0) {
    return std::to_string(t / sim_seconds(1.0)) + "s";
  }
  if (t >= sim_ms(1) && t % sim_ms(1) == 0) return std::to_string(t / sim_ms(1)) + "ms";
  if (t >= sim_us(1) && t % sim_us(1) == 0) return std::to_string(t / sim_us(1)) + "us";
  return std::to_string(t) + "ns";
}

}  // namespace

std::string to_string(const DetectorSpec& spec) {
  switch (spec.kind) {
    case DetectorKind::kPaperInstant:
      return "paper-instant";
    case DetectorKind::kTimeout:
      return "timeout";
    case DetectorKind::kHeartbeat: {
      std::string out = "heartbeat:period=";
      out += spec.heartbeat_period == 0 ? std::string("auto")
                                        : canonical_duration(spec.heartbeat_period);
      out += ",miss=" + std::to_string(spec.heartbeat_miss);
      return out;
    }
    case DetectorKind::kGossip: {
      std::string out = "gossip:period=";
      out += spec.gossip_period == 0 ? std::string("auto")
                                     : canonical_duration(spec.gossip_period);
      out += ",fanout=" + std::to_string(spec.gossip_fanout);
      out += ",seed=" + std::to_string(spec.gossip_seed);
      return out;
    }
  }
  return "?";
}

const std::vector<DetectorInfo>& list_detectors() {
  static const std::vector<DetectorInfo> infos = {
      {"paper-instant",
       "simulator-internal broadcast at the failure time (paper SIV-B, default)"},
      {"timeout",
       "notice after the per-pair network failure-detection timeout (paper SIV-C)"},
      {"heartbeat",
       "declared dead after N missed heartbeats; options :period=DUR,miss=N "
       "(default period=network timeout, miss=3)"},
      {"gossip",
       "SWIM-style epidemic: notice after hop-distance latency plus epidemic "
       "rounds; options :period=DUR,fanout=K,seed=N (default period=network "
       "timeout, fanout=2, seed=1)"},
  };
  return infos;
}

SimTime InstantDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  (void)observer;
  (void)failed;
  return t_fail;
}

TimeoutDetector::TimeoutDetector(PairTimeoutFn pair_timeout)
    : pair_timeout_(std::move(pair_timeout)) {
  if (!pair_timeout_) throw std::invalid_argument("null pair timeout");
}

SimTime TimeoutDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  return t_fail + pair_timeout_(observer, failed);
}

HeartbeatDetector::HeartbeatDetector(SimTime period, int miss) : period_(period), miss_(miss) {
  if (period_ == 0) throw std::invalid_argument("zero heartbeat period");
  if (miss_ < 1) throw std::invalid_argument("heartbeat miss < 1");
}

SimTime HeartbeatDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  (void)observer;
  (void)failed;
  return (t_fail / period_ + static_cast<SimTime>(miss_)) * period_;
}

namespace {

/// splitmix64 finalizer — a cheap, well-mixed 64-bit hash used to shuffle
/// equidistant observers deterministically from (seed, failed, observer).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GossipDetector::GossipDetector(SimTime period, int fanout, std::uint64_t seed,
                               PairLatencyFn pair_latency, int ranks)
    : period_(period),
      fanout_(fanout),
      seed_(seed),
      pair_latency_(std::move(pair_latency)),
      ranks_(ranks) {
  if (period_ == 0) throw std::invalid_argument("zero gossip period");
  if (fanout_ < 1) throw std::invalid_argument("gossip fanout < 1");
  if (!pair_latency_) throw std::invalid_argument("null gossip pair latency");
  if (ranks_ <= 0) throw std::invalid_argument("gossip needs a positive rank count");
}

const std::vector<int>& GossipDetector::rounds_for(int failed) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = rounds_cache_.find(failed);
  if (it != rounds_cache_.end()) return it->second;

  struct Entry {
    SimTime latency;
    std::uint64_t hash;
    int rank;
  };
  std::vector<Entry> order;
  order.reserve(static_cast<std::size_t>(ranks_ > 0 ? ranks_ - 1 : 0));
  for (int r = 0; r < ranks_; ++r) {
    if (r == failed) continue;
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(failed)) << 32) |
        static_cast<std::uint32_t>(r);
    order.push_back({pair_latency_(r, failed), splitmix64(seed_ ^ splitmix64(pair)), r});
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.latency != b.latency) return a.latency < b.latency;
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.rank < b.rank;
  });

  std::vector<int> rounds(static_cast<std::size_t>(ranks_), 0);
  // The epidemic multiplies (fanout + 1)-fold per round: after round r the
  // rumor has reached (fanout + 1)^r members including the origin, so the
  // observer at 0-based position p joins in the first round r with
  // (fanout + 1)^r >= p + 2. Walk the boundary instead of taking logs.
  std::uint64_t boundary = 1;  // Members infected after `round` rounds.
  int round = 0;
  const std::uint64_t growth = static_cast<std::uint64_t>(fanout_) + 1;
  for (std::size_t p = 0; p < order.size(); ++p) {
    while (boundary < p + 2) {
      boundary = boundary > (~0ULL) / growth ? ~0ULL : boundary * growth;
      ++round;
    }
    rounds[static_cast<std::size_t>(order[p].rank)] = round;
  }
  return rounds_cache_.emplace(failed, std::move(rounds)).first->second;
}

int GossipDetector::rounds(int observer, int failed) const {
  if (observer == failed) return 0;
  return rounds_for(failed)[static_cast<std::size_t>(observer)];
}

SimTime GossipDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  if (observer == failed) return t_fail;
  return t_fail + static_cast<SimTime>(rounds(observer, failed)) * period_ +
         pair_latency_(observer, failed);
}

std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec, DetectorWiring wiring) {
  switch (spec.kind) {
    case DetectorKind::kPaperInstant:
      return std::make_unique<InstantDetector>();
    case DetectorKind::kTimeout:
      return std::make_unique<TimeoutDetector>(std::move(wiring.pair_timeout));
    case DetectorKind::kHeartbeat: {
      const SimTime period =
          spec.heartbeat_period != 0 ? spec.heartbeat_period : wiring.default_period;
      return std::make_unique<HeartbeatDetector>(period, spec.heartbeat_miss);
    }
    case DetectorKind::kGossip: {
      const SimTime period =
          spec.gossip_period != 0 ? spec.gossip_period : wiring.default_period;
      return std::make_unique<GossipDetector>(period, spec.gossip_fanout, spec.gossip_seed,
                                              std::move(wiring.pair_latency), wiring.ranks);
    }
  }
  throw std::invalid_argument("bad detector kind");
}

std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec,
                                             PairTimeoutFn pair_timeout,
                                             SimTime default_heartbeat_period) {
  DetectorWiring wiring;
  wiring.pair_timeout = std::move(pair_timeout);
  wiring.default_period = default_heartbeat_period;
  return make_detector(spec, std::move(wiring));
}

}  // namespace exasim::resilience
