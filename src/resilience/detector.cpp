#include "resilience/detector.hpp"

#include <stdexcept>
#include <utility>

#include "util/parse.hpp"

namespace exasim::resilience {

std::optional<DetectorSpec> parse_detector_spec(const std::string& text) {
  DetectorSpec spec;
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }

  if (head == "paper-instant") {
    spec.kind = DetectorKind::kPaperInstant;
  } else if (head == "timeout") {
    spec.kind = DetectorKind::kTimeout;
  } else if (head == "heartbeat") {
    spec.kind = DetectorKind::kHeartbeat;
  } else {
    return std::nullopt;
  }
  if (opts.empty()) return spec;
  if (spec.kind != DetectorKind::kHeartbeat) return std::nullopt;  // No options.

  std::size_t pos = 0;
  while (pos < opts.size()) {
    std::size_t comma = opts.find(',', pos);
    if (comma == std::string::npos) comma = opts.size();
    const std::string item = opts.substr(pos, comma - pos);
    pos = comma + 1;

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "period") {
      if (value == "auto") {
        spec.heartbeat_period = 0;  // Resolved to the network timeout later.
        continue;
      }
      auto t = parse_duration(value);
      if (!t || *t == 0) return std::nullopt;
      spec.heartbeat_period = *t;
    } else if (key == "miss") {
      try {
        std::size_t used = 0;
        const long n = std::stol(value, &used);
        if (used != value.size() || n < 1) return std::nullopt;
        spec.heartbeat_miss = static_cast<int>(n);
      } catch (...) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

namespace {

/// Canonical duration spelling ("100ms", "2s", "750ns") that
/// parse_detector_spec reads back — unlike the human-facing format_sim_time,
/// which inserts spaces and fixed decimals.
std::string canonical_duration(SimTime t) {
  if (t >= sim_seconds(1.0) && t % sim_seconds(1.0) == 0) {
    return std::to_string(t / sim_seconds(1.0)) + "s";
  }
  if (t >= sim_ms(1) && t % sim_ms(1) == 0) return std::to_string(t / sim_ms(1)) + "ms";
  if (t >= sim_us(1) && t % sim_us(1) == 0) return std::to_string(t / sim_us(1)) + "us";
  return std::to_string(t) + "ns";
}

}  // namespace

std::string to_string(const DetectorSpec& spec) {
  switch (spec.kind) {
    case DetectorKind::kPaperInstant:
      return "paper-instant";
    case DetectorKind::kTimeout:
      return "timeout";
    case DetectorKind::kHeartbeat: {
      std::string out = "heartbeat:period=";
      out += spec.heartbeat_period == 0 ? std::string("auto")
                                        : canonical_duration(spec.heartbeat_period);
      out += ",miss=" + std::to_string(spec.heartbeat_miss);
      return out;
    }
  }
  return "?";
}

const std::vector<DetectorInfo>& list_detectors() {
  static const std::vector<DetectorInfo> infos = {
      {"paper-instant",
       "simulator-internal broadcast at the failure time (paper SIV-B, default)"},
      {"timeout",
       "notice after the per-pair network failure-detection timeout (paper SIV-C)"},
      {"heartbeat",
       "declared dead after N missed heartbeats; options :period=DUR,miss=N "
       "(default period=network timeout, miss=3)"},
  };
  return infos;
}

SimTime InstantDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  (void)observer;
  (void)failed;
  return t_fail;
}

TimeoutDetector::TimeoutDetector(PairTimeoutFn pair_timeout)
    : pair_timeout_(std::move(pair_timeout)) {
  if (!pair_timeout_) throw std::invalid_argument("null pair timeout");
}

SimTime TimeoutDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  return t_fail + pair_timeout_(observer, failed);
}

HeartbeatDetector::HeartbeatDetector(SimTime period, int miss) : period_(period), miss_(miss) {
  if (period_ == 0) throw std::invalid_argument("zero heartbeat period");
  if (miss_ < 1) throw std::invalid_argument("heartbeat miss < 1");
}

SimTime HeartbeatDetector::detection_time(int observer, int failed, SimTime t_fail) const {
  (void)observer;
  (void)failed;
  return (t_fail / period_ + static_cast<SimTime>(miss_)) * period_;
}

std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec,
                                             PairTimeoutFn pair_timeout,
                                             SimTime default_heartbeat_period) {
  switch (spec.kind) {
    case DetectorKind::kPaperInstant:
      return std::make_unique<InstantDetector>();
    case DetectorKind::kTimeout:
      return std::make_unique<TimeoutDetector>(std::move(pair_timeout));
    case DetectorKind::kHeartbeat: {
      const SimTime period =
          spec.heartbeat_period != 0 ? spec.heartbeat_period : default_heartbeat_period;
      return std::make_unique<HeartbeatDetector>(period, spec.heartbeat_miss);
    }
  }
  throw std::invalid_argument("bad detector kind");
}

}  // namespace exasim::resilience
