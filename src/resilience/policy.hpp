#pragma once

#include <cstdint>
#include <string>

namespace exasim::resilience {

/// Error-handler policy attached to a communicator (paper §IV-D: supports
/// MPI_ERRORS_ARE_FATAL (default), MPI_ERRORS_RETURN, and user handlers).
/// The simulated MPI layer aliases this as vmpi::ErrorHandlerKind; ULFM
/// recovery (paper §VI) runs on top of kReturn/kUser.
enum class ErrorPolicy : std::uint8_t { kFatal, kReturn, kUser };

std::string to_string(ErrorPolicy p);

/// What the MPI layer must do with a non-success operation error.
enum class ErrorAction : std::uint8_t {
  kAbort,               ///< MPI_ERRORS_ARE_FATAL: MPI_Abort, does not return.
  kInvokeUserThenReturn,///< User handler runs, then the error is returned.
  kReturn,              ///< MPI_ERRORS_RETURN / ULFM: caller handles it.
};

/// Unifies the kFatal / kUser / ULFM-return dispatch that used to be inlined
/// in SimProcess::apply_error_handler. Pure policy: the caller performs the
/// action (it owns the abort machinery and the user-handler invocation).
class ErrorHandlerPolicy {
 public:
  /// `has_user_handler` distinguishes a kUser policy with no handler
  /// installed (treated as plain return, matching MPI's errhandler-free
  /// fallback) from one that must invoke the handler first.
  static ErrorAction dispatch(ErrorPolicy policy, bool has_user_handler);
};

}  // namespace exasim::resilience
