#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace exasim::resilience {

/// How failure times are drawn for random injection.
enum class FailureDistribution : std::uint8_t {
  /// The paper's worst-case scenario (§V-C): time uniform in [0, 2*MTTF),
  /// one draw per application launch, rank uniform.
  kUniform2Mttf,
  /// First arrival of a Poisson process with the given system MTTF.
  kExponential,
  /// Weibull with shape 0.7 (infant-mortality-heavy, a common HPC fit)
  /// scaled so the mean equals the system MTTF.
  kWeibull,
};

/// Weibull shape used by FailureDistribution::kWeibull.
inline constexpr double kWeibullShape = 0.7;

/// Component-based system reliability model (paper future-work item 2, in
/// its simplest useful form): the system fails when its least-lucky node
/// fails; we expose the equivalent single-draw system-level model plus
/// explicit deterministic schedules.
class ReliabilityModel {
 public:
  ReliabilityModel(FailureDistribution dist, SimTime system_mttf, int ranks,
                   std::uint64_t seed);

  /// Draws the next application launch's failure (rank + time relative to
  /// launch start). The caller decides whether the time lands inside the
  /// run. Each call advances the deterministic RNG stream.
  FailureSpec draw();

  /// Expected failures for an execution of the given length (diagnostics).
  double expected_failures(SimTime run_length) const;

  SimTime system_mttf() const { return system_mttf_; }
  FailureDistribution distribution() const { return dist_; }

 private:
  FailureDistribution dist_;
  SimTime system_mttf_;
  int ranks_;
  Rng rng_;
};

/// Owns a rank/time failure schedule: parsing the paper's `R@T,R@T` notation
/// from the command line or environment (§IV-B: "xSim additionally offers to
/// pass a simulated MPI process failure schedule in the form of rank/time
/// pairs on the command line or via an environment variable"), derivation of
/// per-launch random failures from a ReliabilityModel, and the
/// relative-to-absolute time shift a restarting runner applies.
class FailureSchedule {
 public:
  FailureSchedule() = default;
  explicit FailureSchedule(std::vector<FailureSpec> specs) : specs_(std::move(specs)) {}

  /// Environment variable carrying the default schedule (paper §IV-B).
  static constexpr const char* kEnvVar = "EXASIM_FAILURES";

  /// Parses the `R@T,R@T,...` notation; nullopt on malformed input.
  static std::optional<FailureSchedule> parse(const std::string& text);
  /// Reads `var` from the environment. Unset -> an empty schedule; set but
  /// malformed -> nullopt.
  static std::optional<FailureSchedule> from_env(const char* var = kEnvVar);

  void add(FailureSpec f) { specs_.push_back(f); }
  /// Derivation: appends one random failure drawn from the model (times
  /// relative to launch start; shift() afterwards for restart continuity).
  void add_draw(ReliabilityModel& model) { specs_.push_back(model.draw()); }
  /// Shifts every failure time by `offset` (relative -> absolute virtual
  /// time when relaunching at accumulated time `offset`, paper §IV-E).
  void shift(SimTime offset);

  /// First out-of-range rank for a machine of `ranks`, or nullopt if valid.
  std::optional<int> first_invalid_rank(int ranks) const;

  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FailureSpec>& specs() const { return specs_; }
  std::string to_string() const { return format_failure_schedule(specs_); }

 private:
  std::vector<FailureSpec> specs_;
};

}  // namespace exasim::resilience
