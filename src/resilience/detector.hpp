#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace exasim::resilience {

/// Failure-detector families (the pipeline stage between a process failure
/// and the moment each survivor learns about it):
///
///  - kPaperInstant: xSim's simulator-internal broadcast — every survivor is
///    notified at the failure time itself (paper §IV-B). Zero detection
///    latency; the observable failure semantics are produced entirely by the
///    per-request communication timeouts of §IV-C. The default.
///  - kTimeout: the notice reaches each observer one network failure-detection
///    timeout after the failure, using the per-pair timeout of the network
///    level connecting observer and failed rank (§IV-C: "each simulated
///    network ... has its own network communication timeout").
///  - kHeartbeat: the failed process emits heartbeats every `period`; an
///    observer declares it dead after `miss` consecutive missed beats, giving
///    a detection latency between (miss-1) and miss periods (the
///    fault-scenario literature's model of real deployed detectors).
///  - kGossip: SWIM-style epidemic dissemination — the death rumor spreads in
///    rounds of `period`, each infected member telling `fanout` others, so an
///    observer's detection latency grows with its (network-distance-ordered)
///    position in the epidemic: close survivors learn within one round, far
///    ones after O(log_{fanout+1} ranks) rounds, giving the non-uniform
///    per-observer detection-latency distributions of real deployed
///    detectors.
enum class DetectorKind : std::uint8_t { kPaperInstant, kTimeout, kHeartbeat, kGossip };

/// Parsed `--failure-detector` configuration. A zero period (heartbeat or
/// gossip) means "derive from the network": the machine substitutes the
/// network model's largest failure-detection timeout as the period.
struct DetectorSpec {
  DetectorKind kind = DetectorKind::kPaperInstant;
  SimTime heartbeat_period = 0;
  int heartbeat_miss = 3;
  SimTime gossip_period = 0;  ///< Epidemic round length; 0 = auto.
  int gossip_fanout = 2;      ///< Rumor targets per infected member per round.
  std::uint64_t gossip_seed = 1;  ///< Tie-break stream for equal-distance observers.

  friend bool operator==(const DetectorSpec&, const DetectorSpec&) = default;
};

/// Grammar: `paper-instant` | `timeout` | `heartbeat[:period=DUR][,miss=N]`
/// | `gossip[:period=DUR][,fanout=K][,seed=N]` (options separated by ','
/// after a ':'; `period=auto` selects the network-derived default). Returns
/// nullopt on malformed text.
std::optional<DetectorSpec> parse_detector_spec(const std::string& text);

/// Canonical round-trippable form, e.g. "heartbeat:period=100ms,miss=3".
std::string to_string(const DetectorSpec& spec);

/// Environment variable consulted when no --failure-detector is given.
inline constexpr const char* kDetectorEnvVar = "EXASIM_FAILURE_DETECTOR";

/// One row of `exasim_run --list-failure-detectors`.
struct DetectorInfo {
  std::string name;
  std::string summary;
};
const std::vector<DetectorInfo>& list_detectors();

/// Per-pair failure-detection timeout supplied by the layer that owns the
/// network model (core wires Fabric::failure_timeout in) — keeps this library
/// below vmpi/core in the link order. With per-link timeout overrides
/// (NetworkParams::link_timeouts, DESIGN.md §12) this is the max over the
/// pair's canonical route, so a hot link anywhere on the path stretches the
/// observer's detection bound.
using PairTimeoutFn = std::function<SimTime(int observer_rank, int failed_rank)>;

/// Per-pair zero-byte delivery latency (core wires Fabric::delivery with
/// bytes = 0), the gossip detector's network-propagation term: for a
/// HierarchicalNetwork this is overhead + hops x per-level link latency, so
/// it orders observers by hop distance from the failed rank.
using PairLatencyFn = std::function<SimTime(int observer_rank, int failed_rank)>;

/// A detector model answers one question: at what virtual time does
/// `observer` learn that `failed` died at `t_fail`? The NotificationBus uses
/// the answer as the delivery time of the failure notice. Implementations
/// must behave as pure functions of their arguments (internal caches are
/// allowed but must be thread-safe and value-deterministic): the bus may
/// invoke them from any engine worker thread, and determinism across
/// `--sim-workers` settings depends on it.
class DetectorModel {
 public:
  virtual ~DetectorModel() = default;
  virtual const char* name() const = 0;
  /// Must return a time >= t_fail (a notice cannot precede the failure).
  virtual SimTime detection_time(int observer, int failed, SimTime t_fail) const = 0;
};

/// paper-instant: detection_time == t_fail.
class InstantDetector final : public DetectorModel {
 public:
  const char* name() const override { return "paper-instant"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;
};

/// timeout: detection_time == t_fail + pair_timeout(observer, failed).
class TimeoutDetector final : public DetectorModel {
 public:
  explicit TimeoutDetector(PairTimeoutFn pair_timeout);
  const char* name() const override { return "timeout"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;

 private:
  PairTimeoutFn pair_timeout_;
};

/// heartbeat: the failed process's last beat is at the last period boundary
/// at/before t_fail; the observer declares death after `miss` missed beats:
/// detection_time == (floor(t_fail / period) + miss) * period.
class HeartbeatDetector final : public DetectorModel {
 public:
  HeartbeatDetector(SimTime period, int miss);
  const char* name() const override { return "heartbeat"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;

  SimTime period() const { return period_; }
  int miss() const { return miss_; }

 private:
  SimTime period_;
  int miss_;
};

/// gossip: SWIM-style epidemic dissemination. Observers of a failed rank f
/// are ordered by (pair_latency(o, f), seeded per-pair hash, rank) — network
/// distance first, with a deterministic seeded shuffle breaking ties among
/// equidistant observers — and the epidemic doubles `fanout + 1`-fold per
/// round: the observer at 0-based position p in that order is infected in
/// round r(p) = min { r >= 1 : (fanout + 1)^r >= p + 2 }. Its notice is
/// delivered at
///   t_fail + r(p) * period + pair_latency(o, f),
/// which is strictly increasing in hop distance (the latency term) while the
/// round term spreads equidistant observers across epidemic generations.
class GossipDetector final : public DetectorModel {
 public:
  GossipDetector(SimTime period, int fanout, std::uint64_t seed,
                 PairLatencyFn pair_latency, int ranks);
  const char* name() const override { return "gossip"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;

  /// Epidemic round in which `observer` is infected (>= 1; 0 for the failed
  /// rank itself). Exposed for tests and the detector sweep.
  int rounds(int observer, int failed) const;

  SimTime period() const { return period_; }
  int fanout() const { return fanout_; }
  std::uint64_t seed() const { return seed_; }

 private:
  const std::vector<int>& rounds_for(int failed) const;

  SimTime period_;
  int fanout_;
  std::uint64_t seed_;
  PairLatencyFn pair_latency_;
  int ranks_;
  /// Per-failed-rank infection rounds, computed once per failure target
  /// (O(ranks log ranks)) so a ranks-wide broadcast costs O(1) per observer.
  /// Guarded: detection_time may run on any engine worker.
  mutable std::mutex cache_mutex_;
  mutable std::map<int, std::vector<int>> rounds_cache_;
};

/// Everything a detector family may need from the layers that own the
/// network: per-pair timeouts (timeout), per-pair zero-byte latency and the
/// rank count (gossip), and the network-derived default period substituted
/// for `period=auto` (heartbeat, gossip).
struct DetectorWiring {
  PairTimeoutFn pair_timeout;
  PairLatencyFn pair_latency;
  SimTime default_period = 0;
  int ranks = 0;
};

/// Builds the detector for a spec from the supplied wiring. Throws
/// std::invalid_argument when the spec needs wiring that is absent (e.g.
/// gossip without pair_latency/ranks).
std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec, DetectorWiring wiring);

/// Legacy convenience overload (pre-gossip callers): `pair_timeout` feeds the
/// timeout detector; `default_heartbeat_period` replaces a zero
/// heartbeat_period (callers pass the network's largest failure-detection
/// timeout).
std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec,
                                             PairTimeoutFn pair_timeout,
                                             SimTime default_heartbeat_period);

}  // namespace exasim::resilience
