#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace exasim::resilience {

/// Failure-detector families (the pipeline stage between a process failure
/// and the moment each survivor learns about it):
///
///  - kPaperInstant: xSim's simulator-internal broadcast — every survivor is
///    notified at the failure time itself (paper §IV-B). Zero detection
///    latency; the observable failure semantics are produced entirely by the
///    per-request communication timeouts of §IV-C. The default.
///  - kTimeout: the notice reaches each observer one network failure-detection
///    timeout after the failure, using the per-pair timeout of the network
///    level connecting observer and failed rank (§IV-C: "each simulated
///    network ... has its own network communication timeout").
///  - kHeartbeat: the failed process emits heartbeats every `period`; an
///    observer declares it dead after `miss` consecutive missed beats, giving
///    a detection latency between (miss-1) and miss periods (the
///    fault-scenario literature's model of real deployed detectors).
enum class DetectorKind : std::uint8_t { kPaperInstant, kTimeout, kHeartbeat };

/// Parsed `--failure-detector` configuration. heartbeat_period == 0 means
/// "derive from the network": the machine substitutes the network model's
/// largest failure-detection timeout as the period.
struct DetectorSpec {
  DetectorKind kind = DetectorKind::kPaperInstant;
  SimTime heartbeat_period = 0;
  int heartbeat_miss = 3;

  friend bool operator==(const DetectorSpec&, const DetectorSpec&) = default;
};

/// Grammar: `paper-instant` | `timeout` | `heartbeat[:period=DUR][,miss=N]`
/// (options separated by ',' after a ':'). Returns nullopt on malformed text.
std::optional<DetectorSpec> parse_detector_spec(const std::string& text);

/// Canonical round-trippable form, e.g. "heartbeat:period=100ms,miss=3".
std::string to_string(const DetectorSpec& spec);

/// Environment variable consulted when no --failure-detector is given.
inline constexpr const char* kDetectorEnvVar = "EXASIM_FAILURE_DETECTOR";

/// One row of `exasim_run --list-failure-detectors`.
struct DetectorInfo {
  std::string name;
  std::string summary;
};
const std::vector<DetectorInfo>& list_detectors();

/// Per-pair failure-detection timeout supplied by the layer that owns the
/// network model (core wires Fabric::failure_timeout in) — keeps this library
/// below vmpi/core in the link order.
using PairTimeoutFn = std::function<SimTime(int observer_rank, int failed_rank)>;

/// A detector model answers one question: at what virtual time does
/// `observer` learn that `failed` died at `t_fail`? The NotificationBus uses
/// the answer as the delivery time of the failure notice. Implementations
/// must be pure functions of their arguments (no internal state): the bus
/// may invoke them from any engine worker thread, and determinism across
/// `--sim-workers` settings depends on it.
class DetectorModel {
 public:
  virtual ~DetectorModel() = default;
  virtual const char* name() const = 0;
  /// Must return a time >= t_fail (a notice cannot precede the failure).
  virtual SimTime detection_time(int observer, int failed, SimTime t_fail) const = 0;
};

/// paper-instant: detection_time == t_fail.
class InstantDetector final : public DetectorModel {
 public:
  const char* name() const override { return "paper-instant"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;
};

/// timeout: detection_time == t_fail + pair_timeout(observer, failed).
class TimeoutDetector final : public DetectorModel {
 public:
  explicit TimeoutDetector(PairTimeoutFn pair_timeout);
  const char* name() const override { return "timeout"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;

 private:
  PairTimeoutFn pair_timeout_;
};

/// heartbeat: the failed process's last beat is at the last period boundary
/// at/before t_fail; the observer declares death after `miss` missed beats:
/// detection_time == (floor(t_fail / period) + miss) * period.
class HeartbeatDetector final : public DetectorModel {
 public:
  HeartbeatDetector(SimTime period, int miss);
  const char* name() const override { return "heartbeat"; }
  SimTime detection_time(int observer, int failed, SimTime t_fail) const override;

  SimTime period() const { return period_; }
  int miss() const { return miss_; }

 private:
  SimTime period_;
  int miss_;
};

/// Builds the detector for a spec. `pair_timeout` feeds the timeout detector;
/// `default_heartbeat_period` replaces a zero heartbeat_period (callers pass
/// the network's largest failure-detection timeout).
std::unique_ptr<DetectorModel> make_detector(const DetectorSpec& spec,
                                             PairTimeoutFn pair_timeout,
                                             SimTime default_heartbeat_period);

}  // namespace exasim::resilience
