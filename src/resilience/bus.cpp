#include "resilience/bus.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace exasim::resilience {

NotificationBus::NotificationBus(Wiring wiring) : wiring_(wiring) {
  if (wiring_.engine == nullptr) throw std::invalid_argument("null engine");
  if (wiring_.ranks <= 0) throw std::invalid_argument("ranks <= 0");
}

void NotificationBus::broadcast_failure(int failed_rank, SimTime t_fail) {
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    failures_.push_back({failed_rank, t_fail});
  }
  std::vector<Engine::FanoutItem> items;
  items.reserve(static_cast<std::size_t>(wiring_.ranks > 0 ? wiring_.ranks - 1 : 0));
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == failed_rank) continue;
    const SimTime detect = wiring_.detector != nullptr
                               ? wiring_.detector->detection_time(rank, failed_rank, t_fail)
                               : t_fail;
    items.push_back({detect, rank});
  }
  wiring_.engine->schedule_fanout(
      items, wiring_.failure_kind,
      [&](const Engine::FanoutItem& it) {
        auto payload = std::make_unique<FailureNoticePayload>();
        payload->failed_rank = failed_rank;
        payload->time_of_failure = t_fail;
        payload->detect_time = it.time;
        return payload;
      },
      EventPriority::kControl);
}

void NotificationBus::broadcast_abort(int origin_rank, SimTime t_abort) {
  std::vector<Engine::FanoutItem> items;
  items.reserve(static_cast<std::size_t>(wiring_.ranks > 0 ? wiring_.ranks - 1 : 0));
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == origin_rank) continue;
    items.push_back({t_abort, rank});
  }
  wiring_.engine->schedule_fanout(
      items, wiring_.abort_kind,
      [&](const Engine::FanoutItem&) {
        auto payload = std::make_unique<AbortNoticePayload>();
        payload->origin_rank = origin_rank;
        payload->time_of_abort = t_abort;
        return payload;
      },
      EventPriority::kControl);
}

void NotificationBus::broadcast_revoke(int origin_rank, int comm_id, SimTime when) {
  std::vector<Engine::FanoutItem> items;
  items.reserve(static_cast<std::size_t>(wiring_.ranks > 0 ? wiring_.ranks - 1 : 0));
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == origin_rank) continue;
    items.push_back({when, rank});
  }
  wiring_.engine->schedule_fanout(
      items, wiring_.revoke_kind,
      [&](const Engine::FanoutItem&) {
        auto payload = std::make_unique<RevokeNoticePayload>();
        payload->comm_id = comm_id;
        payload->time = when;
        return payload;
      },
      EventPriority::kControl);
}

NotificationBus::DetectionStats NotificationBus::detection_stats() const {
  std::vector<FailureRecord> log;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    log = failures_;
  }
  // Broadcast order depends on which worker's mutex acquisition won, so sort
  // by (t_fail, rank) before accumulating: the floating-point summation order
  // — and therefore the mean — is then identical for every worker count.
  std::sort(log.begin(), log.end(), [](const FailureRecord& a, const FailureRecord& b) {
    if (a.t_fail != b.t_fail) return a.t_fail < b.t_fail;
    return a.rank < b.rank;
  });
  DetectionStats stats;
  for (const FailureRecord& f : log) {
    for (int rank = 0; rank < wiring_.ranks; ++rank) {
      if (rank == f.rank) continue;
      const SimTime detect = wiring_.detector != nullptr
                                 ? wiring_.detector->detection_time(rank, f.rank, f.t_fail)
                                 : f.t_fail;
      // An observer that itself failed at or before its would-be detection
      // time never sees the notice (the engine drops events to dead LPs), so
      // it must not count: otherwise a second failure re-counts every rank
      // that is already down and inflates the mean.
      bool observer_dead = false;
      for (const FailureRecord& other : log) {
        if (other.rank == rank && other.t_fail <= detect) {
          observer_dead = true;
          break;
        }
      }
      if (observer_dead) continue;
      const SimTime latency = detect - f.t_fail;
      stats.max_latency = std::max(stats.max_latency, latency);
      stats.total_latency_sec += to_seconds(latency);
      ++stats.notices;
    }
  }
  return stats;
}

}  // namespace exasim::resilience
