#include "resilience/bus.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace exasim::resilience {

NotificationBus::NotificationBus(Wiring wiring) : wiring_(wiring) {
  if (wiring_.engine == nullptr) throw std::invalid_argument("null engine");
  if (wiring_.ranks <= 0) throw std::invalid_argument("ranks <= 0");
}

void NotificationBus::broadcast_failure(int failed_rank, SimTime t_fail) {
  SimTime max_latency = 0;
  double total_latency_sec = 0;
  std::uint64_t notices = 0;
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == failed_rank) continue;
    const SimTime detect = wiring_.detector != nullptr
                               ? wiring_.detector->detection_time(rank, failed_rank, t_fail)
                               : t_fail;
    auto payload = std::make_unique<FailureNoticePayload>();
    payload->failed_rank = failed_rank;
    payload->time_of_failure = t_fail;
    payload->detect_time = detect;
    wiring_.engine->schedule(detect, rank, wiring_.failure_kind, std::move(payload),
                             EventPriority::kControl);
    const SimTime latency = detect - t_fail;
    max_latency = std::max(max_latency, latency);
    total_latency_sec += to_seconds(latency);
    ++notices;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.notices += notices;
  stats_.max_latency = std::max(stats_.max_latency, max_latency);
  stats_.total_latency_sec += total_latency_sec;
}

void NotificationBus::broadcast_abort(int origin_rank, SimTime t_abort) {
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == origin_rank) continue;
    auto payload = std::make_unique<AbortNoticePayload>();
    payload->origin_rank = origin_rank;
    payload->time_of_abort = t_abort;
    wiring_.engine->schedule(t_abort, rank, wiring_.abort_kind, std::move(payload),
                             EventPriority::kControl);
  }
}

void NotificationBus::broadcast_revoke(int origin_rank, int comm_id, SimTime when) {
  for (int rank = 0; rank < wiring_.ranks; ++rank) {
    if (rank == origin_rank) continue;
    auto payload = std::make_unique<RevokeNoticePayload>();
    payload->comm_id = comm_id;
    payload->time = when;
    wiring_.engine->schedule(when, rank, wiring_.revoke_kind, std::move(payload),
                             EventPriority::kControl);
  }
}

NotificationBus::DetectionStats NotificationBus::detection_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace exasim::resilience
