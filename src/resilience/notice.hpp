#pragma once

#include <cstdint>

#include "pdes/event.hpp"
#include "util/time.hpp"

namespace exasim::resilience {

/// Typed payloads for the simulator-internal resilience notices carried by
/// the NotificationBus (paper §IV-B: "each simulated MPI process is notified
/// using a simulator-internal broadcast mechanism"; §IV-D for aborts; §VI for
/// ULFM revocation). The simulated MPI layer aliases these into its own
/// namespace and dispatches on its event kinds; the bus itself only needs the
/// engine, which is why these live below vmpi in the layering.
struct FailureNoticePayload final : EventPayload {
  int failed_rank = -1;
  /// Actual virtual time the process failed (>= its scheduled time, §IV-B).
  SimTime time_of_failure = 0;
  /// Virtual time this observer's detector declared the failure — equal to
  /// time_of_failure for the paper's instant detector, later for timeout or
  /// heartbeat detection. The notice event itself is delivered at this time.
  SimTime detect_time = 0;
};

struct AbortNoticePayload final : EventPayload {
  int origin_rank = -1;
  SimTime time_of_abort = 0;
};

struct RevokeNoticePayload final : EventPayload {
  int comm_id = 0;
  SimTime time = 0;
};

}  // namespace exasim::resilience
