#include "resilience/schedule.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace exasim::resilience {

ReliabilityModel::ReliabilityModel(FailureDistribution dist, SimTime system_mttf, int ranks,
                                   std::uint64_t seed)
    : dist_(dist), system_mttf_(system_mttf), ranks_(ranks), rng_(seed) {
  if (system_mttf == 0) throw std::invalid_argument("zero MTTF");
  if (ranks <= 0) throw std::invalid_argument("ranks <= 0");
}

FailureSpec ReliabilityModel::draw() {
  FailureSpec spec;
  spec.rank = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(ranks_)));
  const double mttf_s = to_seconds(system_mttf_);
  double t_s = 0;
  switch (dist_) {
    case FailureDistribution::kUniform2Mttf:
      t_s = rng_.uniform(0.0, 2.0 * mttf_s);
      break;
    case FailureDistribution::kExponential:
      t_s = rng_.exponential(mttf_s);
      break;
    case FailureDistribution::kWeibull: {
      // Scale so the Weibull mean equals the MTTF: mean = scale * Gamma(1 + 1/k).
      const double scale = mttf_s / std::tgamma(1.0 + 1.0 / kWeibullShape);
      t_s = rng_.weibull(kWeibullShape, scale);
      break;
    }
  }
  spec.time = sim_seconds(t_s);
  return spec;
}

double ReliabilityModel::expected_failures(SimTime run_length) const {
  const double len = to_seconds(run_length);
  const double mttf = to_seconds(system_mttf_);
  switch (dist_) {
    case FailureDistribution::kUniform2Mttf:
      // One draw per launch; P(failure inside run) = min(1, len / (2*MTTF)).
      return std::min(1.0, len / (2.0 * mttf));
    case FailureDistribution::kExponential:
    case FailureDistribution::kWeibull:
      return len / mttf;
  }
  return 0;
}

std::optional<FailureSchedule> FailureSchedule::parse(const std::string& text) {
  auto specs = parse_failure_schedule(text);
  if (!specs) return std::nullopt;
  return FailureSchedule(std::move(*specs));
}

std::optional<FailureSchedule> FailureSchedule::from_env(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr) return FailureSchedule{};
  return parse(env);
}

void FailureSchedule::shift(SimTime offset) {
  for (auto& f : specs_) f.time += offset;
}

std::optional<int> FailureSchedule::first_invalid_rank(int ranks) const {
  for (const auto& f : specs_) {
    if (f.rank < 0 || f.rank >= ranks) return f.rank;
  }
  return std::nullopt;
}

}  // namespace exasim::resilience
