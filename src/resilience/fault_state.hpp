#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace exasim::resilience {

/// Per-process failure/abort bookkeeping, extracted from vmpi::SimProcess so
/// the process class is clock + message matching and the resilience pipeline
/// state lives in one place (paper §IV-B: "each simulated MPI process
/// maintains its own list of failed simulated MPI processes and their
/// corresponding time of failure").
class FaultState {
 public:
  /// Earliest virtual time this process is scheduled to fail (injection
  /// schedule or Context::inject_failure); kSimTimeNever = never.
  SimTime time_of_failure = kSimTimeNever;
  /// Earliest MPI_Abort time this process has been notified of (§IV-D).
  SimTime pending_abort = kSimTimeNever;
  /// Set by engine-side handlers to unwind a blocked fiber at a given time.
  SimTime forced_failure = kSimTimeNever;
  SimTime forced_abort = kSimTimeNever;

  /// Records a delivered failure notice. t_detect is the notice's delivery
  /// time per the detector model (== t_fail for paper-instant).
  void record_peer_failure(int world_rank, SimTime t_fail, SimTime t_detect);

  /// Failed peers (world rank -> actual time of failure), in the shape the
  /// public Context::failed_peers API exposes.
  const std::map<int, SimTime>& failed_peers() const { return failed_peers_; }
  bool knows_failed(int world_rank) const { return failed_peers_.count(world_rank) != 0; }
  /// kSimTimeNever when the peer is not known failed.
  SimTime peer_failure_time(int world_rank) const;
  /// Detector delivery time of the peer's notice; kSimTimeNever if unknown.
  SimTime peer_detect_time(int world_rank) const;

  /// ULFM MPI_Comm_failure_ack: snapshots the currently-known failed peers
  /// accepted by `member` (the communicator-membership predicate) for the
  /// given communicator.
  void ack_failures(int comm_id, const std::function<bool(int)>& member);
  /// ULFM MPI_Comm_failure_get_acked for the given communicator.
  std::vector<int> acked(int comm_id) const;

 private:
  std::map<int, SimTime> failed_peers_;  ///< world rank -> time of failure.
  std::map<int, SimTime> detect_times_;  ///< world rank -> notice delivery time.
  std::map<int, std::vector<int>> acked_failures_;  ///< per-comm ack snapshots.
};

/// Soft-error injection state (paper §VI future-work item 1): registered
/// application memory regions plus the pending bit-flip schedule. Flips apply
/// at the first clock update at/after their time — the same activation
/// semantics as process failures.
class SoftErrorState {
 public:
  /// Registers (or re-registers) a named application memory region.
  void register_region(const std::string& name, void* ptr, std::size_t bytes);
  void unregister_region(const std::string& name);
  std::size_t registered_bytes() const;

  /// Schedules a single bit flip at virtual time t. bit_index selects the
  /// target bit across all registered regions (modulo total bits at
  /// activation); flips with no registered memory are dropped and counted.
  void schedule_flip(SimTime t, std::uint64_t bit_index);
  bool pending() const { return !pending_flips_.empty(); }
  /// Applies every flip due at/before `clock`.
  void apply_due(SimTime clock);

  std::uint64_t applied() const { return applied_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct MemRegion {
    std::string name;
    void* ptr;
    std::size_t bytes;
  };
  struct PendingFlip {
    SimTime time;
    std::uint64_t bit_index;
    std::uint64_t seq;  ///< Insertion order; deterministic tie-break.
  };
  /// std::push_heap/pop_heap build a max-heap; invert (time, seq) so the
  /// earliest pending flip sits at the front.
  static bool flip_after(const PendingFlip& a, const PendingFlip& b) {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  std::vector<MemRegion> regions_;
  std::vector<PendingFlip> pending_flips_;  ///< Min-heap by (time, seq).
  std::uint64_t next_seq_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace exasim::resilience
