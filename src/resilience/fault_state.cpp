#include "resilience/fault_state.hpp"

#include <algorithm>

namespace exasim::resilience {

void FaultState::record_peer_failure(int world_rank, SimTime t_fail, SimTime t_detect) {
  failed_peers_[world_rank] = t_fail;
  detect_times_[world_rank] = t_detect;
}

SimTime FaultState::peer_failure_time(int world_rank) const {
  auto it = failed_peers_.find(world_rank);
  return it == failed_peers_.end() ? kSimTimeNever : it->second;
}

SimTime FaultState::peer_detect_time(int world_rank) const {
  auto it = detect_times_.find(world_rank);
  return it == detect_times_.end() ? kSimTimeNever : it->second;
}

void FaultState::ack_failures(int comm_id, const std::function<bool(int)>& member) {
  auto& acked = acked_failures_[comm_id];
  acked.clear();
  for (const auto& [peer, when] : failed_peers_) {
    (void)when;
    if (member(peer)) acked.push_back(peer);
  }
}

std::vector<int> FaultState::acked(int comm_id) const {
  auto it = acked_failures_.find(comm_id);
  return it == acked_failures_.end() ? std::vector<int>{} : it->second;
}

void SoftErrorState::register_region(const std::string& name, void* ptr, std::size_t bytes) {
  for (auto& r : regions_) {
    if (r.name == name) {
      r.ptr = ptr;
      r.bytes = bytes;
      return;
    }
  }
  regions_.push_back(MemRegion{name, ptr, bytes});
}

void SoftErrorState::unregister_region(const std::string& name) {
  std::erase_if(regions_, [&](const MemRegion& r) { return r.name == name; });
}

std::size_t SoftErrorState::registered_bytes() const {
  std::size_t total = 0;
  for (const auto& r : regions_) total += r.bytes;
  return total;
}

void SoftErrorState::schedule_flip(SimTime t, std::uint64_t bit_index) {
  pending_flips_.push_back(PendingFlip{t, bit_index, next_seq_++});
  std::push_heap(pending_flips_.begin(), pending_flips_.end(), flip_after);
}

void SoftErrorState::apply_due(SimTime clock) {
  while (!pending_flips_.empty() && clock >= pending_flips_.front().time) {
    std::pop_heap(pending_flips_.begin(), pending_flips_.end(), flip_after);
    const PendingFlip flip = pending_flips_.back();
    pending_flips_.pop_back();
    const std::size_t total_bits = registered_bytes() * 8;
    if (total_bits == 0) {
      ++dropped_;
      continue;
    }
    std::uint64_t bit = flip.bit_index % total_bits;
    for (auto& region : regions_) {
      const std::uint64_t region_bits = static_cast<std::uint64_t>(region.bytes) * 8;
      if (bit < region_bits) {
        auto* bytes = static_cast<unsigned char*>(region.ptr);
        bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
        ++applied_;
        break;
      }
      bit -= region_bits;
    }
  }
}

}  // namespace exasim::resilience
