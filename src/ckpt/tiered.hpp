#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "iomodel/storage.hpp"
#include "vmpi/context.hpp"

namespace exasim::ckpt {

/// Checkpoint placement policy (SCR levels, Kohl et al.):
///  - kPfs:     every rank writes straight to the PFS — the paper's scheme
///              and the byte-identical default.
///  - kPartner: diskless — each rank keeps its image in node memory and
///              replicates it to a partner's node memory over the real
///              network route (src/redundancy's cost math as a recovery
///              path). Survives single-node loss; lost iff victim AND
///              partner die.
///  - kStaged:  partner copy for speed, then an asynchronous background
///              drain mem → burst buffer → PFS in sim-time; the next
///              checkpoint blocks only if the mem→bb drain is still in
///              flight.
enum class CkptMode : std::uint8_t { kPfs = 0, kPartner = 1, kStaged = 2 };

const char* to_string(CkptMode mode);
std::optional<CkptMode> parse_ckpt_mode(const std::string& text);
const std::vector<std::string>& list_ckpt_modes();

/// Environment variable consulted when no --ckpt-mode flag is given.
inline constexpr const char* kCkptModeEnvVar = "EXASIM_CKPT_MODE";

/// Empty defers to EXASIM_CKPT_MODE (unset/malformed -> kPfs); throws
/// std::invalid_argument on a malformed non-empty `configured`.
CkptMode resolve_ckpt_mode(const std::string& configured);

/// Process-wide tiered-checkpoint counters (monotonic, like fanout_stats):
/// surfaced through metrics::PerfSnapshot and the exasim_run rollup.
struct CkptStats {
  std::uint64_t stages = 0;          ///< Non-PFS synchronous checkpoint writes.
  std::uint64_t drains = 0;          ///< Background tier-to-tier drains issued.
  std::uint64_t partner_copies = 0;  ///< Partner replicas shipped over the net.
  /// Deepest tier any restore had to reach: 0 = no restore yet, 1 = node
  /// memory, 2 = burst buffer, 3 = PFS.
  std::uint64_t restore_tier = 0;
};
CkptStats ckpt_stats();

/// Reserved application-range tags for checkpoint traffic (apps use small
/// tags; collectives use the negative range).
inline constexpr int kCkptSizeTag = 29002;
inline constexpr int kCkptCopyTag = 29001;
inline constexpr int kCkptRestoreTag = 29003;

/// Partner-replication buddy: the next rank around the ring. With
/// ranks-per-node > 1 a buddy can share the victim's node; real SCR picks
/// buddy *nodes* — a refinement the failure model here does not need, since
/// failures are per-rank.
inline int partner_of(int rank, int world) { return (rank + 1) % world; }

/// Ranks concurrently checkpointing at this sim-time from this rank's view:
/// everyone still alive. Deterministic (fiber event order), worker-invariant
/// up to the same one-window notice tolerance every failure notice has.
int checkpoint_clients(const vmpi::Context& ctx);

/// Per-rank tiered checkpoint writer. Owns the drain horizon: a staged
/// write returns once the fast-tier copy is safe, and only a *subsequent*
/// write blocks on the still-draining previous one.
class TieredWriter {
 public:
  TieredWriter(const StorageHierarchy& storage, CkptMode mode)
      : storage_(storage), mode_(mode) {}

  CkptMode mode() const { return mode_; }

  /// Writes one rank's checkpoint under the configured mode. Charges
  /// sim-time exactly like write_rank_checkpoint for kPfs (the byte-identity
  /// contract); partner/staged modes add the replica exchange and record
  /// tier copies for apply_failures. A communication error (dead partner
  /// under a kReturn handler) comes back with the file left unfinalized —
  /// the §V-D corrupted-checkpoint failure mode.
  vmpi::Err write(vmpi::Context& ctx, CheckpointStore& store, std::uint64_t version,
                  std::span<const std::byte> payload, std::size_t logical_bytes = 0);

 private:
  vmpi::Err write_pfs(vmpi::Context& ctx, CheckpointStore& store, std::uint64_t version,
                      std::span<const std::byte> payload, std::size_t logical_bytes);

  const StorageHierarchy& storage_;
  CkptMode mode_;
  /// Sim-time when this rank's previous staged drain frees the memory
  /// staging buffer (mem -> next tier leg done).
  SimTime drain_ready_ = 0;
};

/// Tier-aware restart read: picks the nearest surviving copy of this rank's
/// file in the latest complete set (node memory beats burst buffer beats
/// PFS; a copy held in a *remote* rank's memory is fetched over the modeled
/// network). All ranks compute the same deterministic restore plan, so
/// fetch sends and receives pair up without negotiation. Returns nullopt on
/// cold start (before any messaging). `tier_out` gets the StorageTierKind
/// ordinal served from.
std::optional<std::vector<std::byte>> read_latest_checkpoint_tiered(
    vmpi::Context& ctx, CheckpointStore& store, const StorageHierarchy& storage,
    std::uint64_t* version_out = nullptr, int* tier_out = nullptr);

}  // namespace exasim::ckpt
