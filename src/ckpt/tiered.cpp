#include "ckpt/tiered.hpp"

#include <atomic>
#include <stdexcept>

namespace exasim::ckpt {

namespace {

std::atomic<std::uint64_t> g_stages{0};
std::atomic<std::uint64_t> g_drains{0};
std::atomic<std::uint64_t> g_partner_copies{0};
std::atomic<std::uint64_t> g_restore_tier{0};

void note_restore_tier(int level) {
  const std::uint64_t depth = static_cast<std::uint64_t>(level) + 1;
  std::uint64_t cur = g_restore_tier.load(std::memory_order_relaxed);
  while (cur < depth &&
         !g_restore_tier.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
  }
}

/// How a rank reaches a copy, cheapest first: its own node memory, a shared
/// tier (bb/pfs), a remote rank's node memory (needs a network fetch).
int access_class(const CopyRecord& copy, int rank) {
  if (copy.holder == rank) return 0;
  if (copy.holder < 0) return 1;
  return 2;
}

/// The copy rank `q` restores from: fastest tier, then cheapest access.
/// An empty copy list is a legacy indestructible file — treat as PFS.
CopyRecord best_copy(const std::vector<CopyRecord>& copies, int q) {
  CopyRecord best;  // Defaults: level 2, holder -1 (shared PFS).
  bool have = false;
  for (const auto& c : copies) {
    if (!have || c.level < best.level ||
        (c.level == best.level && access_class(c, q) < access_class(best, q))) {
      best = c;
      have = true;
    }
  }
  return best;
}

}  // namespace

const char* to_string(CkptMode mode) {
  switch (mode) {
    case CkptMode::kPfs: return "pfs";
    case CkptMode::kPartner: return "partner";
    case CkptMode::kStaged: return "staged";
  }
  return "?";
}

std::optional<CkptMode> parse_ckpt_mode(const std::string& text) {
  if (text == "pfs") return CkptMode::kPfs;
  if (text == "partner") return CkptMode::kPartner;
  if (text == "staged") return CkptMode::kStaged;
  return std::nullopt;
}

const std::vector<std::string>& list_ckpt_modes() {
  static const std::vector<std::string> kNames = {"pfs", "partner", "staged"};
  return kNames;
}

CkptMode resolve_ckpt_mode(const std::string& configured) {
  if (!configured.empty()) {
    auto mode = parse_ckpt_mode(configured);
    if (!mode) throw std::invalid_argument("unknown ckpt mode: " + configured);
    return *mode;
  }
  if (const char* env = std::getenv(kCkptModeEnvVar); env != nullptr && *env != '\0') {
    if (auto mode = parse_ckpt_mode(env)) return *mode;
  }
  return CkptMode::kPfs;
}

CkptStats ckpt_stats() {
  CkptStats s;
  s.stages = g_stages.load(std::memory_order_relaxed);
  s.drains = g_drains.load(std::memory_order_relaxed);
  s.partner_copies = g_partner_copies.load(std::memory_order_relaxed);
  s.restore_tier = g_restore_tier.load(std::memory_order_relaxed);
  return s;
}

int checkpoint_clients(const vmpi::Context& ctx) {
  const int alive = ctx.size() - static_cast<int>(ctx.failed_peers().size());
  return alive < 1 ? 1 : alive;
}

vmpi::Err TieredWriter::write_pfs(vmpi::Context& ctx, CheckpointStore& store,
                                  std::uint64_t version, std::span<const std::byte> payload,
                                  std::size_t logical_bytes) {
  const int rank = ctx.rank();
  const int clients = checkpoint_clients(ctx);
  store.begin(version, rank);
  const auto pfs = StorageTierKind::kPfs;
  SimTime t = storage_.model(pfs).write_time(logical_bytes, clients);
  t += storage_.occupy(pfs, ctx.now(), t);
  // Elapse before finalize: a failure activating mid-write leaves the file
  // corrupted (§V-D), exactly as write_rank_checkpoint.
  ctx.elapse(t);
  store.append(version, rank, payload);
  store.finalize(version, rank);
  store.record_copy(version, rank,
                    CopyRecord{.level = 2, .holder = -1, .ready_time = ctx.now()});
  return vmpi::Err::kSuccess;
}

vmpi::Err TieredWriter::write(vmpi::Context& ctx, CheckpointStore& store,
                              std::uint64_t version, std::span<const std::byte> payload,
                              std::size_t logical_bytes) {
  if (logical_bytes == 0) logical_bytes = payload.size();
  const int rank = ctx.rank();
  const int world = ctx.size();
  const auto mem = StorageTierKind::kMemory;
  const auto bb = StorageTierKind::kBurstBuffer;
  const auto pfs = StorageTierKind::kPfs;
  // Diskless modes need a partner and room for two images (own + hosted) in
  // the node-memory staging budget; otherwise degrade to the flat PFS path.
  if (mode_ == CkptMode::kPfs || world < 2 ||
      !storage_.fits(mem, logical_bytes, world, /*replicas=*/2)) {
    return write_pfs(ctx, store, version, payload, logical_bytes);
  }

  // A still-draining previous checkpoint owns the memory staging buffer:
  // block until the mem -> next-tier leg lands (Kohl et al.'s back-pressure).
  if (mode_ == CkptMode::kStaged && drain_ready_ > ctx.now()) {
    ctx.elapse(drain_ready_ - ctx.now());
  }

  store.begin(version, rank);
  const int clients = checkpoint_clients(ctx);
  // Local node-memory write: one writer into its own memory.
  SimTime local = storage_.model(mem).write_time(logical_bytes, /*clients=*/1);
  local += storage_.occupy(mem, ctx.now(), local);
  ctx.elapse(local);

  // Partner replica over the real network route. Payload sizes can differ
  // across ranks (uneven decompositions) and modeled recv treats a short
  // posting as truncation, so exchange exact sizes first.
  const int partner = partner_of(rank, world);
  const int prev = (rank - 1 + world) % world;
  std::uint64_t my_bytes = logical_bytes;
  std::uint64_t prev_bytes = 0;
  vmpi::Err err = ctx.sendrecv(ctx.world(), partner, kCkptSizeTag, &my_bytes,
                               sizeof(my_bytes), prev, kCkptSizeTag, &prev_bytes,
                               sizeof(prev_bytes));
  if (err != vmpi::Err::kSuccess) return err;
  auto send_req = ctx.isend_modeled(ctx.world(), partner, kCkptCopyTag, my_bytes);
  auto recv_req = ctx.irecv_modeled(ctx.world(), prev, kCkptCopyTag,
                                    static_cast<std::size_t>(prev_bytes));
  err = ctx.waitall(ctx.world(), {send_req, recv_req});
  if (err != vmpi::Err::kSuccess) return err;  // Partner died: file stays corrupted.

  store.append(version, rank, payload);
  store.finalize(version, rank);
  // Two memory-tier copies: the local image and the replica in the
  // partner's memory. The replica's ready time is this rank's clock when
  // the exchange completed — the partner's receive completes at the same
  // modeled event, so the skew is at most the partner's own clock drift.
  store.record_copy(version, rank,
                    CopyRecord{.level = 0, .holder = rank, .ready_time = ctx.now()});
  store.record_copy(version, rank,
                    CopyRecord{.level = 0, .holder = partner, .ready_time = ctx.now()});
  g_partner_copies.fetch_add(1, std::memory_order_relaxed);
  g_stages.fetch_add(1, std::memory_order_relaxed);
  if (mode_ == CkptMode::kPartner) return vmpi::Err::kSuccess;

  // Staged mode: background drain in sim-time. The drain sources from this
  // rank's memory image until it lands on the next tier, so the copies it
  // produces die with this rank if it fails before that hand-off.
  const SimTime t0 = ctx.now();
  if (storage_.has(bb) && storage_.fits(bb, logical_bytes, world)) {
    SimTime bb_w = storage_.model(bb).write_time(logical_bytes, clients);
    bb_w += storage_.occupy(bb, t0, bb_w);
    const SimTime t_bb = t0 + bb_w;
    store.record_copy(version, rank,
                      CopyRecord{.level = 1, .holder = -1, .ready_time = t_bb,
                                 .depends_on = rank, .depends_until = t_bb});
    SimTime pfs_w = storage_.model(pfs).write_time(logical_bytes, clients);
    pfs_w += storage_.occupy(pfs, t_bb, pfs_w);
    // The PFS leg reads from the burst-buffer copy, so it only needs this
    // rank alive until the bb copy landed.
    store.record_copy(version, rank,
                      CopyRecord{.level = 2, .holder = -1, .ready_time = t_bb + pfs_w,
                                 .depends_on = rank, .depends_until = t_bb});
    drain_ready_ = t_bb;
    g_drains.fetch_add(2, std::memory_order_relaxed);
  } else {
    // No burst buffer: drain straight to the PFS, holding the memory
    // staging buffer (and the dependency on this rank) the whole way.
    SimTime pfs_w = storage_.model(pfs).write_time(logical_bytes, clients);
    pfs_w += storage_.occupy(pfs, t0, pfs_w);
    store.record_copy(version, rank,
                      CopyRecord{.level = 2, .holder = -1, .ready_time = t0 + pfs_w,
                                 .depends_on = rank, .depends_until = t0 + pfs_w});
    drain_ready_ = t0 + pfs_w;
    g_drains.fetch_add(1, std::memory_order_relaxed);
  }
  return vmpi::Err::kSuccess;
}

std::optional<std::vector<std::byte>> read_latest_checkpoint_tiered(
    vmpi::Context& ctx, CheckpointStore& store, const StorageHierarchy& storage,
    std::uint64_t* version_out, int* tier_out) {
  const auto version = store.latest_complete();
  if (!version) return std::nullopt;  // Cold start: decided before any messaging.
  const int rank = ctx.rank();
  const int world = ctx.size();

  // Every rank derives the same restore plan from the (global, pre-run)
  // store state, so memory-tier fetches pair up without negotiation.
  std::vector<CopyRecord> plan;
  plan.reserve(static_cast<std::size_t>(world));
  for (int q = 0; q < world; ++q) {
    plan.push_back(best_copy(store.copies(*version, q), q));
  }

  std::vector<vmpi::RequestHandle> reqs;
  const CopyRecord& mine = plan[static_cast<std::size_t>(rank)];
  if (mine.holder >= 0 && mine.holder != rank) {
    reqs.push_back(ctx.irecv_modeled(ctx.world(), mine.holder, kCkptRestoreTag,
                                     store.file_bytes(*version, rank)));
  }
  for (int q = 0; q < world; ++q) {
    if (q == rank) continue;
    if (plan[static_cast<std::size_t>(q)].holder == rank) {
      reqs.push_back(ctx.isend_modeled(ctx.world(), q, kCkptRestoreTag,
                                       store.file_bytes(*version, q)));
    }
  }
  if (!reqs.empty()) {
    const vmpi::Err err = ctx.waitall(ctx.world(), reqs);
    if (err != vmpi::Err::kSuccess) return std::nullopt;
  }

  auto data = store.read(*version, rank);
  const auto kind = static_cast<StorageTierKind>(mine.level);
  ctx.elapse(storage.model(kind).read_time(data.size(), checkpoint_clients(ctx)));
  note_restore_tier(mine.level);
  if (version_out != nullptr) *version_out = *version;
  if (tier_out != nullptr) *tier_out = mine.level;
  return data;
}

}  // namespace exasim::ckpt
