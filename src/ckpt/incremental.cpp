#include "ckpt/incremental.hpp"

#include <cstring>
#include <stdexcept>

namespace exasim::ckpt {
namespace {

/// On-store layout of an incremental checkpoint file.
struct IncHeader {
  std::uint32_t magic = 0x494E4331;  // "INC1"
  std::uint8_t is_full = 1;
  std::uint64_t base_version = 0;    ///< Previous checkpoint (deltas only).
  std::uint64_t payload_bytes = 0;   ///< Full application state size.
  std::uint64_t block_bytes = 0;
  std::uint64_t changed_blocks = 0;  ///< Delta record count.
};

struct BlockRecord {
  std::uint64_t index = 0;
  // Followed by min(block_bytes, payload - index*block_bytes) data bytes.
};

std::uint64_t block_hash(std::span<const std::byte> block) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::byte b : block) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 1099511628211ull;
  }
  return h;
}

void append_pod(std::vector<std::byte>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  out.insert(out.end(), b, b + n);
}

}  // namespace

IncrementalCheckpointer::IncrementalCheckpointer(IncrementalPolicy policy) : policy_(policy) {
  if (policy_.block_bytes == 0) throw std::invalid_argument("block_bytes == 0");
  if (policy_.full_every < 1) throw std::invalid_argument("full_every < 1");
}

vmpi::Err IncrementalCheckpointer::write(vmpi::Context& ctx, CheckpointStore& store,
                                         std::uint64_t version,
                                         std::span<const std::byte> payload,
                                         const PfsModel& pfs, int concurrent_clients) {
  if (checkpoints_ > 0 && version <= last_version_) {
    throw std::invalid_argument("checkpoint versions must increase");
  }
  const std::size_t nblocks = (payload.size() + policy_.block_bytes - 1) / policy_.block_bytes;

  // Hash current blocks; decide full vs delta.
  std::vector<std::uint64_t> hashes(nblocks);
  for (std::size_t i = 0; i < nblocks; ++i) {
    const std::size_t off = i * policy_.block_bytes;
    hashes[i] = block_hash(payload.subspan(off, std::min(policy_.block_bytes,
                                                         payload.size() - off)));
  }
  const bool full = since_full_ < 0 || since_full_ + 1 >= policy_.full_every ||
                    payload.size() != last_payload_bytes_;

  IncHeader header;
  header.is_full = full ? 1 : 0;
  header.base_version = last_version_;
  header.payload_bytes = payload.size();
  header.block_bytes = policy_.block_bytes;

  std::vector<std::byte> file;
  if (full) {
    file.reserve(sizeof header + payload.size());
    append_pod(file, &header, sizeof header);
    file.insert(file.end(), payload.begin(), payload.end());
  } else {
    std::vector<std::size_t> changed;
    for (std::size_t i = 0; i < nblocks; ++i) {
      if (hashes[i] != block_hashes_[i]) changed.push_back(i);
    }
    header.changed_blocks = changed.size();
    append_pod(file, &header, sizeof header);
    for (std::size_t i : changed) {
      BlockRecord rec{i};
      append_pod(file, &rec, sizeof rec);
      const std::size_t off = i * policy_.block_bytes;
      const std::size_t n = std::min(policy_.block_bytes, payload.size() - off);
      append_pod(file, payload.data() + off, n);
    }
  }

  // Write through the store, charging the PFS for the bytes actually
  // written. Like write_rank_checkpoint, the time elapses before finalize so
  // a failure mid-write leaves a corrupted file.
  const int rank = ctx.rank();
  store.begin(version, rank);
  ctx.elapse(pfs.write_time(file.size(), concurrent_clients));
  store.append(version, rank, file);
  store.finalize(version, rank);

  if (full) {
    bytes_full_ += file.size();
    since_full_ = 0;
    base_full_version_ = version;
  } else {
    bytes_delta_ += file.size();
    ++since_full_;
  }
  block_hashes_ = std::move(hashes);
  last_payload_bytes_ = payload.size();
  last_version_ = version;
  ++checkpoints_;
  return vmpi::Err::kSuccess;
}

std::optional<std::vector<std::byte>> IncrementalCheckpointer::read_latest(
    vmpi::Context& ctx, CheckpointStore& store, int rank, const PfsModel& pfs,
    int concurrent_clients, std::uint64_t* version_out) {
  // Candidate = newest complete version; walk its delta chain backwards. If
  // the chain is broken (a base was deleted or never completed), fall back
  // to the next-older complete version.
  auto versions = store.versions();
  for (auto vit = versions.rbegin(); vit != versions.rend(); ++vit) {
    if (!store.set_complete(*vit)) continue;

    // Collect the chain newest -> base full.
    std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> chain;
    std::uint64_t cursor = *vit;
    bool ok = true;
    for (;;) {
      if (!store.set_complete(cursor)) {
        ok = false;
        break;
      }
      std::vector<std::byte> data = store.read(cursor, rank);
      if (data.size() < sizeof(IncHeader)) {
        ok = false;
        break;
      }
      IncHeader header;
      std::memcpy(&header, data.data(), sizeof header);
      if (header.magic != IncHeader{}.magic) {
        ok = false;
        break;
      }
      const bool is_full = header.is_full != 0;
      const std::uint64_t base = header.base_version;
      chain.emplace_back(cursor, std::move(data));
      if (is_full) break;
      cursor = base;
    }
    if (!ok) continue;

    // Replay: full payload first, then deltas oldest -> newest.
    std::vector<std::byte> state;
    std::size_t read_bytes = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const std::vector<std::byte>& data = it->second;
      read_bytes += data.size();
      IncHeader header;
      std::memcpy(&header, data.data(), sizeof header);
      if (header.is_full != 0) {
        state.assign(data.begin() + sizeof header, data.end());
        continue;
      }
      if (state.size() != header.payload_bytes) return std::nullopt;  // Corrupt chain.
      std::size_t off = sizeof header;
      for (std::uint64_t r = 0; r < header.changed_blocks; ++r) {
        BlockRecord rec;
        if (off + sizeof rec > data.size()) return std::nullopt;
        std::memcpy(&rec, data.data() + off, sizeof rec);
        off += sizeof rec;
        const std::size_t block_off = rec.index * header.block_bytes;
        const std::size_t n =
            std::min<std::size_t>(header.block_bytes, header.payload_bytes - block_off);
        if (off + n > data.size() || block_off + n > state.size()) return std::nullopt;
        std::memcpy(state.data() + block_off, data.data() + off, n);
        off += n;
      }
    }
    ctx.elapse(pfs.read_time(read_bytes, concurrent_clients));
    if (version_out != nullptr) *version_out = *vit;
    return state;
  }
  return std::nullopt;
}

}  // namespace exasim::ckpt
