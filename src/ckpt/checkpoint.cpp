#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <stdexcept>

namespace exasim::ckpt {

CheckpointStore::CheckpointStore(int expected_ranks) : expected_ranks_(expected_ranks) {
  if (expected_ranks <= 0) throw std::invalid_argument("expected_ranks <= 0");
}

void CheckpointStore::begin(std::uint64_t version, int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rank < 0 || rank >= expected_ranks_) throw std::invalid_argument("bad rank");
  VersionSet& set = versions_[version];
  auto [it, inserted] = set.files.try_emplace(rank);
  if (!inserted) {
    if (it->second.finalized) --set.finalized_count;
    it->second = File{};
  }
}

void CheckpointStore::append(std::uint64_t version, int rank,
                             std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) throw std::logic_error("append before begin");
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) throw std::logic_error("append before begin");
  if (fit->second.finalized) throw std::logic_error("append after finalize");
  fit->second.data.insert(fit->second.data.end(), data.begin(), data.end());
}

void CheckpointStore::finalize(std::uint64_t version, int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) throw std::logic_error("finalize before begin");
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) throw std::logic_error("finalize before begin");
  if (!fit->second.finalized) {
    fit->second.finalized = true;
    ++vit->second.finalized_count;
  }
}

bool CheckpointStore::file_exists(std::uint64_t version, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  return vit != versions_.end() && vit->second.files.count(rank) != 0;
}

bool CheckpointStore::file_finalized(std::uint64_t version, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return false;
  auto fit = vit->second.files.find(rank);
  return fit != vit->second.files.end() && fit->second.finalized;
}

bool CheckpointStore::set_complete(std::uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  return set_complete_unlocked(version);
}

bool CheckpointStore::set_complete_unlocked(std::uint64_t version) const {
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return false;
  return static_cast<int>(vit->second.files.size()) == expected_ranks_ &&
         vit->second.finalized_count == expected_ranks_;
}

std::optional<std::uint64_t> CheckpointStore::latest_complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (set_complete_unlocked(it->first)) return it->first;
  }
  return std::nullopt;
}

std::vector<std::byte> CheckpointStore::read(std::uint64_t version, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return {};
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) return {};
  return fit->second.data;
}

std::size_t CheckpointStore::file_bytes(std::uint64_t version, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return 0;
  auto fit = vit->second.files.find(rank);
  return fit == vit->second.files.end() ? 0 : fit->second.data.size();
}

void CheckpointStore::record_copy(std::uint64_t version, int rank,
                                  const CopyRecord& copy) {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) throw std::logic_error("record_copy before begin");
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) throw std::logic_error("record_copy before begin");
  fit->second.copies.push_back(copy);
  std::stable_sort(fit->second.copies.begin(), fit->second.copies.end(),
                   [](const CopyRecord& a, const CopyRecord& b) { return a.level < b.level; });
}

std::vector<CopyRecord> CheckpointStore::copies(std::uint64_t version, int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return {};
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) return {};
  return fit->second.copies;
}

int CheckpointStore::apply_failures(const std::vector<FailureSpec>& failures,
                                    SimTime end_time) {
  std::lock_guard<std::mutex> lock(mu_);
  // Earliest failure time per rank: a rank that died at t takes its node
  // memory (and any drain it was sourcing) with it from t on.
  std::map<int, SimTime> died;
  for (const auto& f : failures) {
    auto [it, inserted] = died.try_emplace(f.rank, f.time);
    if (!inserted) it->second = std::min(it->second, f.time);
  }
  int lost = 0;
  std::vector<std::uint64_t> doomed_versions;
  for (auto& [version, set] : versions_) {
    std::vector<int> doomed_files;
    for (auto& [rank, file] : set.files) {
      if (file.copies.empty()) continue;  // Legacy indestructible file.
      auto survives = [&](const CopyRecord& c) {
        if (c.ready_time > end_time) return false;  // Drain still in flight.
        if (c.holder >= 0 && died.count(c.holder) != 0) return false;
        if (c.depends_on >= 0) {
          auto dit = died.find(c.depends_on);
          if (dit != died.end() && dit->second < c.depends_until) return false;
        }
        return true;
      };
      const auto old_size = file.copies.size();
      file.copies.erase(
          std::remove_if(file.copies.begin(), file.copies.end(),
                         [&](const CopyRecord& c) { return !survives(c); }),
          file.copies.end());
      lost += static_cast<int>(old_size - file.copies.size());
      if (file.copies.empty()) doomed_files.push_back(rank);
    }
    for (int rank : doomed_files) {
      auto fit = set.files.find(rank);
      if (fit->second.finalized) --set.finalized_count;
      set.files.erase(fit);
    }
    if (set.files.empty()) doomed_versions.push_back(version);
  }
  for (auto v : doomed_versions) versions_.erase(v);
  return lost;
}

void CheckpointStore::remove_file(std::uint64_t version, int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  auto vit = versions_.find(version);
  if (vit == versions_.end()) return;
  auto fit = vit->second.files.find(rank);
  if (fit == vit->second.files.end()) return;
  if (fit->second.finalized) --vit->second.finalized_count;
  vit->second.files.erase(fit);
  if (vit->second.files.empty()) versions_.erase(vit);
}

void CheckpointStore::remove_version(std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  versions_.erase(version);
}

int CheckpointStore::scrub() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> doomed;
  for (const auto& [version, files] : versions_) {
    if (!set_complete_unlocked(version)) doomed.push_back(version);
  }
  for (auto v : doomed) versions_.erase(v);
  return static_cast<int>(doomed.size());
}

std::vector<std::uint64_t> CheckpointStore::versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(versions_.size());
  for (const auto& [v, files] : versions_) out.push_back(v);
  return out;
}

std::size_t CheckpointStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [v, set] : versions_) {
    for (const auto& [r, f] : set.files) total += f.data.size();
  }
  return total;
}

std::size_t CheckpointStore::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [v, set] : versions_) total += set.files.size();
  return total;
}

vmpi::Err write_rank_checkpoint(vmpi::Context& ctx, CheckpointStore& store,
                                std::uint64_t version, std::span<const std::byte> payload,
                                const PfsModel& pfs, int concurrent_clients,
                                std::size_t logical_bytes) {
  const int rank = ctx.rank();
  if (logical_bytes == 0) logical_bytes = payload.size();
  store.begin(version, rank);
  // The write time elapses before the file is finalized: a failure activating
  // inside elapse() unwinds this fiber and leaves the file corrupted.
  ctx.elapse(pfs.write_time(logical_bytes, concurrent_clients));
  store.append(version, rank, payload);
  store.finalize(version, rank);
  return vmpi::Err::kSuccess;
}

std::optional<std::vector<std::byte>> read_latest_checkpoint(vmpi::Context& ctx,
                                                             CheckpointStore& store, int rank,
                                                             const PfsModel& pfs,
                                                             int concurrent_clients,
                                                             std::uint64_t* version_out) {
  auto version = store.latest_complete();
  if (!version) return std::nullopt;
  auto data = store.read(*version, rank);
  ctx.elapse(pfs.read_time(data.size(), concurrent_clients));
  if (version_out != nullptr) *version_out = *version;
  return data;
}

}  // namespace exasim::ckpt
