#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace exasim::ckpt {

/// Incremental/differential checkpointing — one of the advanced resilience
/// technologies the paper's introduction lists ("incremental/differential
/// checkpointing", cf. hybrid checkpointing [18]) and exactly the kind of
/// technique the co-design toolkit exists to price against plain
/// checkpoint/restart.
///
/// The application state is treated as fixed-size blocks; a delta checkpoint
/// stores only blocks whose content hash changed since the previous
/// checkpoint, paying proportionally less file-system time. Every
/// `full_every`-th checkpoint is a full one, bounding the reconstruction
/// chain that a restart has to replay.
struct IncrementalPolicy {
  std::size_t block_bytes = 4096;
  int full_every = 8;  ///< 1 = always full (degenerates to write_rank_checkpoint).
};

/// Per-rank incremental writer. Lives for one application launch; after a
/// restart the hash state is gone, so the first post-restart checkpoint is
/// automatically full (exactly what a real incremental library must do).
class IncrementalCheckpointer {
 public:
  explicit IncrementalCheckpointer(IncrementalPolicy policy);

  /// Writes `payload` for this rank as version `version` (full or delta as
  /// the policy dictates), charging the PFS model for the bytes actually
  /// written. Versions must strictly increase per rank.
  vmpi::Err write(vmpi::Context& ctx, CheckpointStore& store, std::uint64_t version,
                  std::span<const std::byte> payload, const PfsModel& pfs,
                  int concurrent_clients);

  /// Oldest version still needed to reconstruct the latest checkpoint; the
  /// application may delete anything older.
  std::uint64_t retention_floor() const { return base_full_version_; }

  std::uint64_t bytes_written_full() const { return bytes_full_; }
  std::uint64_t bytes_written_delta() const { return bytes_delta_; }
  int checkpoints_written() const { return checkpoints_; }

  /// Reconstructs this rank's latest restorable state: finds the newest
  /// complete version whose delta chain (down to its base full checkpoint)
  /// is fully present, reads the chain (charging PFS read time), and replays
  /// it. Returns nullopt on cold start or if every chain is broken.
  static std::optional<std::vector<std::byte>> read_latest(vmpi::Context& ctx,
                                                           CheckpointStore& store, int rank,
                                                           const PfsModel& pfs,
                                                           int concurrent_clients,
                                                           std::uint64_t* version_out = nullptr);

 private:
  IncrementalPolicy policy_;
  std::vector<std::uint64_t> block_hashes_;  ///< Of the last written payload.
  std::size_t last_payload_bytes_ = 0;       ///< Size change forces a full.
  int since_full_ = -1;                      ///< -1: nothing written yet.
  std::uint64_t last_version_ = 0;
  std::uint64_t base_full_version_ = 0;
  std::uint64_t bytes_full_ = 0;
  std::uint64_t bytes_delta_ = 0;
  int checkpoints_ = 0;
};

}  // namespace exasim::ckpt
