#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "iomodel/pfs.hpp"
#include "util/parse.hpp"
#include "util/time.hpp"
#include "vmpi/context.hpp"

namespace exasim::ckpt {

/// One physical copy of a rank's checkpoint file somewhere in the storage
/// hierarchy. A file with no copy records is *indestructible* — the legacy
/// flat-PFS behaviour, where the store models an always-durable file system.
/// A file that has copy records survives a failure only through copies that
/// themselves survive (CheckpointStore::apply_failures).
struct CopyRecord {
  /// StorageTierKind ordinal: 0 = node memory, 1 = burst buffer, 2 = PFS.
  int level = 2;
  /// Rank whose node memory holds the copy; -1 for shared tiers (bb/pfs).
  int holder = -1;
  /// Sim-time at which the copy finishes materializing. A background drain
  /// that was still in flight when the run ended never happened.
  SimTime ready_time = 0;
  /// Staged drains source from a node-memory image: if `depends_on` (a rank)
  /// dies before `depends_until`, the drain loses its source and the copy is
  /// lost even though its own holder is a durable tier. -1 = no dependency.
  int depends_on = -1;
  SimTime depends_until = 0;

  friend bool operator==(const CopyRecord&, const CopyRecord&) = default;
};

/// Application-level checkpoint storage, simulating the parallel file system
/// the paper's heat application checkpoints to (§V-B).
///
/// A checkpoint *set* is one version: one file per rank. A file is
/// *corrupted* if it exists but was never finalized ("checkpoint file that
/// exists, but misses some information"); a set is *incomplete* if some
/// ranks' files are missing ("missing checkpoint files due to a failure
/// during checkpointing"). Only sets where every rank's file exists and is
/// finalized are valid restart candidates.
///
/// The store outlives individual simulation runs — it is the persistent
/// state that survives an abort/restart cycle. All methods are thread-safe:
/// ranks checkpointing concurrently live on different engine workers.
class CheckpointStore {
 public:
  explicit CheckpointStore(int expected_ranks);

  int expected_ranks() const { return expected_ranks_; }

  /// Creates rank's file in `version`, unfinalized (overwrites any previous
  /// attempt by the same rank for this version).
  void begin(std::uint64_t version, int rank);

  /// Appends payload bytes to rank's file.
  void append(std::uint64_t version, int rank, std::span<const std::byte> data);

  /// Marks rank's file complete.
  void finalize(std::uint64_t version, int rank);

  bool file_exists(std::uint64_t version, int rank) const;
  bool file_finalized(std::uint64_t version, int rank) const;

  /// True if every rank's file exists and is finalized.
  bool set_complete(std::uint64_t version) const;

  /// Highest version with a complete set, if any.
  std::optional<std::uint64_t> latest_complete() const;

  /// File contents (valid whether finalized or not; empty if missing).
  std::vector<std::byte> read(std::uint64_t version, int rank) const;

  /// Stored size of rank's file (0 if missing) — restore planning needs exact
  /// sizes for modeled transfers (vmpi::recv truncation is an error).
  std::size_t file_bytes(std::uint64_t version, int rank) const;

  /// Records where a copy of rank's file lives (tiered checkpointing).
  void record_copy(std::uint64_t version, int rank, const CopyRecord& copy);

  /// All surviving copies of rank's file, fastest tier first (empty for
  /// legacy indestructible files and for missing files).
  std::vector<CopyRecord> copies(std::uint64_t version, int rank) const;

  /// Applies a run's activated failures to the stored copies: a copy is lost
  /// if its holder died, if it was not ready by `end_time` (in-flight drain),
  /// or if its drain source died before the drain finished reading it. Files
  /// whose copy list goes empty are deleted (legacy files without copy
  /// records are indestructible). Returns the number of copies lost. Call
  /// before scrub(): a version that lost a rank's file is incomplete.
  int apply_failures(const std::vector<FailureSpec>& failures, SimTime end_time);

  /// Deletes one rank's file ("the previous checkpoint can be deleted
  /// safely" after the post-checkpoint barrier).
  void remove_file(std::uint64_t version, int rank);

  /// Deletes a whole version.
  void remove_version(std::uint64_t version);

  /// Deletes every incomplete/corrupted version — the paper's pre-restart
  /// shell script ("incomplete checkpoints ... are deleted using a shell
  /// script"). Returns the number of versions removed.
  int scrub();

  std::vector<std::uint64_t> versions() const;
  std::size_t total_bytes() const;
  std::size_t file_count() const;

 private:
  struct File {
    std::vector<std::byte> data;
    bool finalized = false;
    /// Physical placements; empty = legacy indestructible file.
    std::vector<CopyRecord> copies;
  };
  /// Per-version bookkeeping. The finalized counter makes set_complete()
  /// O(1): at restart every one of n ranks asks for the latest complete
  /// version, and an O(n) scan per ask would make restarts O(n^2).
  struct VersionSet {
    std::map<int, File> files;
    int finalized_count = 0;
  };
  bool set_complete_unlocked(std::uint64_t version) const;

  int expected_ranks_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, VersionSet> versions_;
};

/// Writes one rank's checkpoint file, charging the PFS model's write time to
/// the process's virtual clock *before* the file is finalized — so a process
/// failure during the write leaves a corrupted (unfinalized) file, exactly
/// the §V-D failure mode.
///
/// `concurrent_clients` models all ranks checkpointing together.
/// `logical_bytes` is the size charged to the PFS model — pass the real
/// application state size when the stored payload is a small modeled header
/// (skeleton apps); 0 means "use payload.size()".
vmpi::Err write_rank_checkpoint(vmpi::Context& ctx, CheckpointStore& store,
                                std::uint64_t version, std::span<const std::byte> payload,
                                const PfsModel& pfs, int concurrent_clients,
                                std::size_t logical_bytes = 0);

/// Reads this rank's file from the latest complete set, charging PFS read
/// time; returns nullopt when no complete checkpoint exists (cold start).
std::optional<std::vector<std::byte>> read_latest_checkpoint(vmpi::Context& ctx,
                                                             CheckpointStore& store, int rank,
                                                             const PfsModel& pfs,
                                                             int concurrent_clients,
                                                             std::uint64_t* version_out = nullptr);

}  // namespace exasim::ckpt
