#include "iomodel/pfs.hpp"

#include <algorithm>
#include <stdexcept>

namespace exasim {

PfsModel::PfsModel(PfsParams params) : params_(params) {
  if (params_.aggregate_bandwidth_bytes_per_sec < 0 ||
      params_.per_client_bandwidth_bytes_per_sec < 0) {
    throw std::invalid_argument("negative bandwidth");
  }
}

bool PfsModel::is_free() const {
  return params_.metadata_latency == 0 && params_.aggregate_bandwidth_bytes_per_sec == 0 &&
         params_.per_client_bandwidth_bytes_per_sec == 0;
}

SimTime PfsModel::transfer_time(std::size_t bytes, int concurrent_clients) const {
  if (concurrent_clients < 1) throw std::invalid_argument("clients < 1");
  if (bytes == 0) return 0;

  double bw = 0;
  if (params_.aggregate_bandwidth_bytes_per_sec > 0) {
    bw = params_.aggregate_bandwidth_bytes_per_sec / concurrent_clients;
  }
  if (params_.per_client_bandwidth_bytes_per_sec > 0) {
    bw = bw > 0 ? std::min(bw, params_.per_client_bandwidth_bytes_per_sec)
                : params_.per_client_bandwidth_bytes_per_sec;
  }
  if (bw <= 0) return 0;  // Free I/O: bandwidth unmodeled.
  return sim_seconds(static_cast<double>(bytes) / bw);
}

SimTime PfsModel::write_time(std::size_t bytes, int concurrent_clients) const {
  return params_.metadata_latency + transfer_time(bytes, concurrent_clients);
}

SimTime PfsModel::read_time(std::size_t bytes, int concurrent_clients) const {
  return params_.metadata_latency + transfer_time(bytes, concurrent_clients);
}

}  // namespace exasim
