#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "iomodel/pfs.hpp"
#include "util/time.hpp"

namespace exasim {

/// Storage tier kinds, ordered fast-and-volatile to slow-and-durable — the
/// SCR-style multilevel stack (Kohl et al., PAPERS.md): node memory holds
/// diskless/partner checkpoint copies and dies with its node; the burst
/// buffer is shared flash that absorbs staged writes; the PFS is the durable
/// backing store the paper's (free) file-system placeholder modeled.
enum class StorageTierKind : std::uint8_t { kMemory = 0, kBurstBuffer = 1, kPfs = 2 };

inline constexpr int kStorageTierKinds = 3;

const char* to_string(StorageTierKind kind);

/// One tier of the hierarchy. The cost math is the flat PfsModel's
/// (metadata latency + min(per-client, aggregate/clients) bandwidth); a tier
/// with all-zero parameters charges nothing — the paper's configuration.
struct TierParams {
  StorageTierKind kind = StorageTierKind::kPfs;
  PfsParams io;
  /// Capacity in bytes; 0 = unlimited. Node memory is a per-node staging
  /// budget (a rank's own copy plus the partner replica it hosts must fit);
  /// shared tiers divide capacity evenly over the world size.
  double capacity_bytes = 0;
  /// Fold occupancy-window waits into transfer times (the same queueing
  /// shape as per-link network contention, DESIGN.md §12): exact at
  /// --sim-workers=1, approximate otherwise (core::Machine warns).
  bool contended = false;

  friend bool operator==(const TierParams&, const TierParams&) = default;
};

/// Parsed `--storage` configuration: tiers ordered mem < bb < pfs, each at
/// most once, the PFS tier always present. The default is a single free PFS
/// tier — byte-identical to the pre-hierarchy flat model.
///
/// Grammar (canonical spec strings round-trip through parse):
///   "pfs" | "hpc" | ...                     registered preset names
///   TIER[;TIER...]  with TIER = (mem|bb|pfs)[:k=v[,k=v...]]
/// keys: bw (aggregate bytes/s), cbw (per-client bytes/s), lat (duration,
/// util/parse.hpp suffixes), cap (bytes), contend (0|1). '+' is accepted in
/// place of ';' so specs survive shells unquoted.
struct StorageSpec {
  std::vector<TierParams> tiers = {TierParams{}};
  /// Set when the spec came from a registered preset name (display only).
  std::string preset = "pfs";

  /// True for the paper-default single free PFS tier.
  bool is_default() const {
    return tiers.size() == 1 && tiers.front() == TierParams{};
  }

  friend bool operator==(const StorageSpec& a, const StorageSpec& b) {
    return a.tiers == b.tiers;  // The preset name is presentation, not config.
  }
};

/// Parses a storage spec string (preset name or tier list); nullopt on
/// malformed input — unknown tier/key, duplicate or misordered tiers, a
/// missing pfs tier, negative/overflowing/trailing-garbage numbers.
std::optional<StorageSpec> parse_storage_spec(const std::string& text);

/// Canonical spec string (round-trips through parse; preset names are
/// preserved).
std::string to_string(const StorageSpec& spec);

/// Registered storage presets, registry order — the values of
/// exp::storage_axis() and the rows of `exasim_run --list-storage`.
struct StoragePresetInfo {
  std::string name;
  std::string spec;
  std::string summary;
};
const std::vector<StoragePresetInfo>& list_storage();

/// Environment variable consulted when no --storage flag is given.
inline constexpr const char* kStorageEnvVar = "EXASIM_STORAGE";

/// Resolves a configured spec string (core::SimConfig::storage): empty
/// defers to EXASIM_STORAGE, unset/malformed environment means the default
/// free PFS. Throws std::invalid_argument on a malformed non-empty
/// `configured`.
StorageSpec resolve_storage_spec(const std::string& configured);

/// The machine's storage stack: per-tier PfsModel cost math plus optional
/// occupancy-window contention. Tiers absent from the spec behave as free,
/// uncontended, unlimited — node memory and a burst buffer always exist
/// physically; the spec only prices them.
class StorageHierarchy {
 public:
  explicit StorageHierarchy(StorageSpec spec);

  const StorageSpec& spec() const { return spec_; }

  /// True when the spec prices the tier (present in the tier list).
  bool has(StorageTierKind kind) const;

  /// Cost model for a tier kind (a shared free model when unpriced).
  const PfsModel& model(StorageTierKind kind) const;

  /// The durable tier's model — what Services::pfs points at; identical to
  /// the flat PfsModel for the default spec.
  const PfsModel& pfs_model() const { return model(StorageTierKind::kPfs); }

  /// True when no tier charges time and none is contended (the paper's
  /// configuration).
  bool is_free() const;

  bool any_contended() const;

  /// Whether `bytes` fit the tier's capacity budget: node memory must hold
  /// `replicas` copies per rank (own + hosted partner images); shared tiers
  /// divide capacity over `world_ranks`. Unlimited (cap 0) always fits.
  bool fits(StorageTierKind kind, std::size_t bytes, int world_ranks,
            int replicas = 1) const;

  /// Occupancy-window wait for a transfer of `duration` starting at `start`
  /// on a contended tier (0 when uncontended): the tier serves overlapping
  /// transfers back to back, exactly the per-link busy-until queueing of
  /// NetworkModel::contention_delay.
  SimTime occupy(StorageTierKind kind, SimTime start, SimTime duration) const;

 private:
  StorageSpec spec_;
  /// Index into spec_.tiers per kind; -1 = unpriced.
  int index_[kStorageTierKinds];
  std::vector<PfsModel> models_;
  /// Occupancy windows are queueing state of the model, not configuration —
  /// mutable so cost queries stay const for callers holding const refs.
  mutable std::mutex mu_;
  mutable SimTime busy_until_[kStorageTierKinds];
};

}  // namespace exasim
