#include "iomodel/storage.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace exasim {

namespace {

/// Non-negative finite double with full-string consumption — the same
/// hardening posture as make_topology / parse_link_timeout_spec (PR 7):
/// reject trailing garbage, overflow (ERANGE), inf/nan, and negatives.
bool parse_double_field(const std::string& v, double* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || errno == ERANGE) return false;
  if (!std::isfinite(parsed) || parsed < 0) return false;
  *out = parsed;
  return true;
}

bool parse_bool_field(const std::string& v, bool* out) {
  if (v == "0") { *out = false; return true; }
  if (v == "1") { *out = true; return true; }
  return false;
}

std::string format_duration(SimTime t) {
  if (t % 1'000'000'000 == 0) return std::to_string(t / 1'000'000'000) + "s";
  if (t % 1'000'000 == 0) return std::to_string(t / 1'000'000) + "ms";
  if (t % 1'000 == 0) return std::to_string(t / 1'000) + "us";
  return std::to_string(t) + "ns";
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

std::optional<StorageTierKind> tier_kind_of(const std::string& name) {
  if (name == "mem") return StorageTierKind::kMemory;
  if (name == "bb") return StorageTierKind::kBurstBuffer;
  if (name == "pfs") return StorageTierKind::kPfs;
  return std::nullopt;
}

std::optional<TierParams> parse_tier(const std::string& text) {
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }
  const auto kind = tier_kind_of(head);
  if (!kind) return std::nullopt;
  TierParams tier;
  tier.kind = *kind;
  // split_trimmed drops empty pieces, so "mem:" or "mem:bw=1,," would slip
  // through silently; insist options are non-empty when the colon is present.
  if (text.find(':') != std::string::npos && opts.empty()) return std::nullopt;
  for (const auto& field : split_trimmed(opts, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "bw") {
      if (!parse_double_field(value, &tier.io.aggregate_bandwidth_bytes_per_sec))
        return std::nullopt;
    } else if (key == "cbw") {
      if (!parse_double_field(value, &tier.io.per_client_bandwidth_bytes_per_sec))
        return std::nullopt;
    } else if (key == "lat") {
      const auto t = parse_duration(value);
      if (!t) return std::nullopt;
      tier.io.metadata_latency = *t;
    } else if (key == "cap") {
      if (!parse_double_field(value, &tier.capacity_bytes)) return std::nullopt;
    } else if (key == "contend") {
      if (!parse_bool_field(value, &tier.contended)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return tier;
}

/// Tier-list grammar only (no preset lookup) — `parse_storage_spec` resolves
/// preset names through this, so a preset named like a tier ("pfs") cannot
/// recurse.
std::optional<StorageSpec> parse_tier_list(const std::string& text) {
  // Accept '+' as the tier separator so specs survive unquoted shells.
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), '+', ';');
  StorageSpec spec;
  spec.tiers.clear();
  spec.preset.clear();
  int last_kind = -1;
  for (const auto& piece : split_trimmed(normalized, ';')) {
    const auto tier = parse_tier(piece);
    if (!tier) return std::nullopt;
    // Strictly increasing kind order mem < bb < pfs: rejects duplicates and
    // misordered tiers in one comparison.
    if (static_cast<int>(tier->kind) <= last_kind) return std::nullopt;
    last_kind = static_cast<int>(tier->kind);
    spec.tiers.push_back(*tier);
  }
  if (spec.tiers.empty() || spec.tiers.back().kind != StorageTierKind::kPfs)
    return std::nullopt;
  return spec;
}

}  // namespace

const char* to_string(StorageTierKind kind) {
  switch (kind) {
    case StorageTierKind::kMemory: return "mem";
    case StorageTierKind::kBurstBuffer: return "bb";
    case StorageTierKind::kPfs: return "pfs";
  }
  return "?";
}

std::optional<StorageSpec> parse_storage_spec(const std::string& text) {
  if (text.empty()) return std::nullopt;
  for (const auto& preset : list_storage()) {
    if (text == preset.name) {
      auto spec = parse_tier_list(preset.spec);
      if (spec) spec->preset = preset.name;
      return spec;
    }
  }
  return parse_tier_list(text);
}

std::string to_string(const StorageSpec& spec) {
  if (!spec.preset.empty()) return spec.preset;
  std::string s;
  for (const auto& tier : spec.tiers) {
    if (!s.empty()) s += ";";
    s += to_string(tier.kind);
    std::string opts;
    const auto add = [&opts](const std::string& kv) {
      opts += opts.empty() ? "" : ",";
      opts += kv;
    };
    if (tier.io.aggregate_bandwidth_bytes_per_sec != 0)
      add("bw=" + format_double(tier.io.aggregate_bandwidth_bytes_per_sec));
    if (tier.io.per_client_bandwidth_bytes_per_sec != 0)
      add("cbw=" + format_double(tier.io.per_client_bandwidth_bytes_per_sec));
    if (tier.io.metadata_latency != 0)
      add("lat=" + format_duration(tier.io.metadata_latency));
    if (tier.capacity_bytes != 0) add("cap=" + format_double(tier.capacity_bytes));
    if (tier.contended) add("contend=1");
    if (!opts.empty()) s += ":" + opts;
  }
  return s;
}

const std::vector<StoragePresetInfo>& list_storage() {
  static const std::vector<StoragePresetInfo> kPresets = {
      {"pfs", "pfs",
       "single free parallel file system (paper default: checkpoint I/O "
       "charges no time)"},
      {"hpc",
       "mem:cbw=5e10,lat=1us,cap=4e9;bb:bw=2e11,cbw=1e10,lat=10us;"
       "pfs:bw=1e11,cbw=5e9,lat=1ms",
       "three-tier reference machine: 50 GB/s node memory (4 GB staging "
       "budget), 200 GB/s burst buffer, 100 GB/s PFS with 1 ms metadata"},
  };
  return kPresets;
}

StorageSpec resolve_storage_spec(const std::string& configured) {
  if (!configured.empty()) {
    auto spec = parse_storage_spec(configured);
    if (!spec) throw std::invalid_argument("malformed storage spec: " + configured);
    return *spec;
  }
  if (const char* env = std::getenv(kStorageEnvVar); env != nullptr && *env != '\0') {
    if (auto spec = parse_storage_spec(env)) return *spec;
  }
  return StorageSpec{};
}

StorageHierarchy::StorageHierarchy(StorageSpec spec) : spec_(std::move(spec)) {
  for (int k = 0; k < kStorageTierKinds; ++k) {
    index_[k] = -1;
    busy_until_[k] = 0;
  }
  models_.reserve(spec_.tiers.size());
  for (std::size_t i = 0; i < spec_.tiers.size(); ++i) {
    index_[static_cast<int>(spec_.tiers[i].kind)] = static_cast<int>(i);
    models_.emplace_back(spec_.tiers[i].io);
  }
}

bool StorageHierarchy::has(StorageTierKind kind) const {
  return index_[static_cast<int>(kind)] >= 0;
}

const PfsModel& StorageHierarchy::model(StorageTierKind kind) const {
  static const PfsModel kFree{PfsParams{}};
  const int i = index_[static_cast<int>(kind)];
  return i < 0 ? kFree : models_[static_cast<std::size_t>(i)];
}

bool StorageHierarchy::is_free() const {
  for (const auto& m : models_) {
    if (!m.is_free()) return false;
  }
  return !any_contended();
}

bool StorageHierarchy::any_contended() const {
  for (const auto& tier : spec_.tiers) {
    if (tier.contended) return true;
  }
  return false;
}

bool StorageHierarchy::fits(StorageTierKind kind, std::size_t bytes,
                            int world_ranks, int replicas) const {
  const int i = index_[static_cast<int>(kind)];
  if (i < 0) return true;
  const double cap = spec_.tiers[static_cast<std::size_t>(i)].capacity_bytes;
  if (cap <= 0) return true;
  const double need = static_cast<double>(bytes);
  if (kind == StorageTierKind::kMemory) {
    // Node memory is a per-node budget: a rank's own image plus every
    // partner replica it hosts must fit together.
    return need * std::max(1, replicas) <= cap;
  }
  // Shared tiers split capacity evenly over the world.
  return need * static_cast<double>(std::max(1, world_ranks)) <= cap;
}

SimTime StorageHierarchy::occupy(StorageTierKind kind, SimTime start,
                                 SimTime duration) const {
  const int i = index_[static_cast<int>(kind)];
  if (i < 0 || !spec_.tiers[static_cast<std::size_t>(i)].contended) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  SimTime& busy = busy_until_[static_cast<int>(kind)];
  const SimTime begin = std::max(start, busy);
  busy = begin + duration;
  return begin - start;
}

}  // namespace exasim
