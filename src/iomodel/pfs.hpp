#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace exasim {

/// Parallel file system cost model (paper future-work item 4; the paper's
/// experiments set checkpoint I/O overhead to zero because "xSim's file
/// system model is a work in progress" — our default parameters reproduce
/// that, and benches can turn real costs on).
///
/// Per-client effective bandwidth is min(per_client, aggregate / clients);
/// every operation additionally pays one metadata round trip.
struct PfsParams {
  SimTime metadata_latency = 0;                 ///< Open/create/close round trip.
  double aggregate_bandwidth_bytes_per_sec = 0; ///< 0 = free I/O (paper default).
  double per_client_bandwidth_bytes_per_sec = 0;

  friend bool operator==(const PfsParams&, const PfsParams&) = default;
};

class PfsModel {
 public:
  explicit PfsModel(PfsParams params);

  const PfsParams& params() const { return params_; }

  /// True when the model charges no time at all (the paper's configuration).
  bool is_free() const;

  /// Time for one client to write `bytes` while `concurrent_clients` clients
  /// (including itself) stripe into the same file system.
  SimTime write_time(std::size_t bytes, int concurrent_clients) const;

  /// Reads share the same bandwidth model.
  SimTime read_time(std::size_t bytes, int concurrent_clients) const;

  /// Metadata-only operation (delete, stat).
  SimTime metadata_time() const { return params_.metadata_latency; }

 private:
  SimTime transfer_time(std::size_t bytes, int concurrent_clients) const;

  PfsParams params_;
};

}  // namespace exasim
