#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "netmodel/topology.hpp"
#include "util/time.hpp"

namespace exasim {

/// Message transfer protocol selected by payload size (paper §V-C: eager
/// threshold 256 kB; larger payloads use the rendezvous protocol).
enum class Protocol { kEager, kRendezvous };

/// LogGP-style link/NIC parameters for one network level.
struct NetworkParams {
  SimTime link_latency = sim_us(1);            ///< L: per-hop wire latency.
  double bandwidth_bytes_per_sec = 32e9;       ///< Per-link bandwidth (32 GB/s, §V-C).
  SimTime per_message_overhead = sim_ns(500);  ///< o: software send/recv overhead.
  double injection_bandwidth_bytes_per_sec = 32e9;  ///< NIC serialization at the sender.
  std::size_t eager_threshold = 256 * 1024;    ///< Bytes; above this, rendezvous.
  SimTime failure_timeout = sim_ms(100);       ///< Communication timeout used for
                                               ///< failure detection (paper §IV-C).
};

/// Single-level network model over a topology.
///
/// For a payload of B bytes over h hops the one-way delivery time is
///   o + h*L + B / bandwidth
/// and the sender's NIC is occupied for
///   o + B / injection_bandwidth
/// (charged to the sender's virtual clock — this is what serializes linear
/// collectives at the root). Control messages (RTS/CTS) use B = 0.
class NetworkModel {
 public:
  NetworkModel(std::shared_ptr<const Topology> topology, NetworkParams params);

  const Topology& topology() const { return *topology_; }
  const NetworkParams& params() const { return params_; }

  Protocol protocol_for(std::size_t bytes) const {
    return bytes <= params_.eager_threshold ? Protocol::kEager : Protocol::kRendezvous;
  }

  /// One-way in-flight time for `bytes` from node src to node dst.
  SimTime delivery_time(int src, int dst, std::size_t bytes) const;

  /// Time the sender's virtual clock is charged to push `bytes` into the NIC.
  SimTime sender_occupancy(std::size_t bytes) const;

  /// Receiver-side software overhead charged at match time.
  SimTime receiver_overhead() const { return params_.per_message_overhead; }

  /// Failure-detection timeout for the (src, dst) pair.
  virtual SimTime failure_timeout(int src, int dst) const;

  /// Largest failure-detection timeout across all network levels — the
  /// conservative system-wide detection bound. Used by the resilience layer
  /// as the default heartbeat period (a heartbeat slower than the worst-case
  /// timeout would detect later than the timeout detector).
  virtual SimTime max_failure_timeout() const { return params_.failure_timeout; }

  /// Lower bound on the delivery time of any message between two distinct
  /// nodes (o + at least one hop of L, with zero payload) — the engine's
  /// conservative-window lookahead: no cross-node event scheduled at virtual
  /// time t can arrive before t + min_remote_latency(). For a
  /// HierarchicalNetwork this is the system level, matching the engine's
  /// node-aligned LP grouping (intra-node traffic never crosses groups).
  virtual SimTime min_remote_latency() const;

  virtual ~NetworkModel() = default;

 protected:
  std::shared_ptr<const Topology> topology_;
  NetworkParams params_;
};

/// Hierarchical network: on-chip / on-node / system levels, each with its own
/// parameters and failure-detection timeout (paper §IV-C: "each simulated
/// network, such as the on-chip, on-node, and system-wide network, has its
/// own network communication timeout").
///
/// Ranks are mapped to nodes/chips by `ranks_per_chip` and `chips_per_node`;
/// the system level routes between nodes over the given topology (node id =
/// rank / ranks_per_node). With ranks_per_node == 1 this degenerates to the
/// paper's experiment configuration (one MPI rank per node, MPI+X assumed).
class HierarchicalNetwork final : public NetworkModel {
 public:
  HierarchicalNetwork(std::shared_ptr<const Topology> system_topology,
                      NetworkParams system, NetworkParams on_node, NetworkParams on_chip,
                      int ranks_per_chip, int chips_per_node);

  enum class Level { kOnChip, kOnNode, kSystem };

  Level level_for(int src_rank, int dst_rank) const;
  const NetworkParams& params_for(Level level) const;

  int node_of_rank(int rank) const { return rank / ranks_per_node_; }
  int ranks_per_node() const { return ranks_per_node_; }

  SimTime delivery_time_ranks(int src_rank, int dst_rank, std::size_t bytes) const;
  SimTime failure_timeout(int src, int dst) const override;
  SimTime max_failure_timeout() const override;

 private:
  NetworkParams on_node_;
  NetworkParams on_chip_;
  int ranks_per_chip_;
  int ranks_per_node_;
};

}  // namespace exasim
