#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "netmodel/routing.hpp"
#include "netmodel/topology.hpp"
#include "util/time.hpp"

namespace exasim {

/// Message transfer protocol selected by payload size (paper §V-C: eager
/// threshold 256 kB; larger payloads use the rendezvous protocol).
enum class Protocol { kEager, kRendezvous };

/// LogGP-style link/NIC parameters for one network level.
struct NetworkParams {
  SimTime link_latency = sim_us(1);            ///< L: per-hop wire latency.
  double bandwidth_bytes_per_sec = 32e9;       ///< Per-link bandwidth (32 GB/s, §V-C).
  SimTime per_message_overhead = sim_ns(500);  ///< o: software send/recv overhead.
  double injection_bandwidth_bytes_per_sec = 32e9;  ///< NIC serialization at the sender.
  std::size_t eager_threshold = 256 * 1024;    ///< Bytes; above this, rendezvous.
  SimTime failure_timeout = sim_ms(100);       ///< Communication timeout used for
                                               ///< failure detection (paper §IV-C).
  /// Per-link failure-timeout overrides (DESIGN.md §12). The default uniform
  /// spec keeps `failure_timeout` for every link and builds no table.
  LinkTimeoutSpec link_timeouts;
  /// Fold per-link occupancy windows into delivery times (off by default;
  /// exactly deterministic only at --sim-workers=1).
  bool contention = false;
};

/// Single-level network model over a topology.
///
/// For a payload of B bytes over h hops the one-way delivery time is
///   o + h*L + B / bandwidth
/// and the sender's NIC is occupied for
///   o + B / injection_bandwidth
/// (charged to the sender's virtual clock — this is what serializes linear
/// collectives at the root). Control messages (RTS/CTS) use B = 0.
///
/// On top of the hop-count cost the model knows the *route* each flow takes
/// (Topology::route_into + the RoutingPolicy's variant selection), which
/// feeds two optional layers, both off by default:
///  - per-link contention (NetworkParams::contention): each link keeps a
///    busy-until window; delivery_time_at() adds the wait a message's route
///    accumulates behind earlier flows sharing its links.
///  - per-link failure timeouts (NetworkParams::link_timeouts): when a table
///    is configured, failure_timeout(src, dst) is the max over the canonical
///    route's link timeouts and max_failure_timeout() the max over all links.
class NetworkModel {
 public:
  NetworkModel(std::shared_ptr<const Topology> topology, NetworkParams params,
               RoutingSpec routing = {});

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  const Topology& topology() const { return *topology_; }
  const NetworkParams& params() const { return params_; }
  const RoutingSpec& routing() const { return routing_spec_; }

  Protocol protocol_for(std::size_t bytes) const {
    return bytes <= params_.eager_threshold ? Protocol::kEager : Protocol::kRendezvous;
  }

  /// One-way in-flight time for `bytes` from node src to node dst, with no
  /// contention (the uncontended LogGP cost, identical for every route
  /// variant of a pair — all variants are minimal).
  SimTime delivery_time(int src, int dst, std::size_t bytes) const;

  /// delivery_time plus the contention wait of the flow's route when
  /// NetworkParams::contention is on (`now` is the send time). With
  /// contention off this is exactly delivery_time — the default fast path.
  SimTime delivery_time_at(SimTime now, int src, int dst, std::size_t bytes) const;

  /// Time the sender's virtual clock is charged to push `bytes` into the NIC.
  SimTime sender_occupancy(std::size_t bytes) const;

  /// Receiver-side software overhead charged at match time.
  SimTime receiver_overhead() const { return params_.per_message_overhead; }

  /// Failure-detection timeout for the (src, dst) pair: the configured
  /// uniform timeout, or — with a per-link table — the max over the canonical
  /// (variant-0) route's links, so a hot link anywhere on the path stretches
  /// the pair's detection bound. The canonical route keeps this independent
  /// of per-flow adaptive variant choices (detection configuration must not
  /// depend on message interleaving).
  virtual SimTime failure_timeout(int src, int dst) const;

  /// Largest failure-detection timeout across all links and network levels —
  /// the conservative system-wide detection bound. Used by the resilience
  /// layer as the default heartbeat period (a heartbeat slower than the
  /// worst-case timeout would detect later than the timeout detector).
  /// Computed over the link table at construction, so per-link heterogeneity
  /// is reflected without per-subclass overrides.
  virtual SimTime max_failure_timeout() const { return max_link_timeout_; }

  /// Lower bound on the delivery time of any message between two distinct
  /// nodes — the engine's conservative-window lookahead: no cross-node event
  /// scheduled at virtual time t can arrive before t + min_remote_latency().
  /// Provable over any route: every route between distinct nodes traverses
  /// at least one link (o + at least one hop of L with zero payload), every
  /// route variant is minimal, and the optional layers (contention waits,
  /// link timeouts) only ever *add* delay. For a HierarchicalNetwork this is
  /// the system level, matching the engine's node-aligned LP grouping
  /// (intra-node traffic never crosses groups).
  virtual SimTime min_remote_latency() const;

  virtual ~NetworkModel() = default;

 protected:
  /// Max link timeout over the canonical route between two *nodes*; the
  /// uniform fast path returns params_.failure_timeout without routing.
  SimTime link_pair_timeout(int src_node, int dst_node) const;

  /// Contention wait accumulated by the (src, dst) flow's next message when
  /// sent at `now` (0 with contention off). Advances the flow's seq counter
  /// and the busy windows of the chosen route's links.
  SimTime contention_delay(SimTime now, int src, int dst, std::size_t bytes) const;

  std::shared_ptr<const Topology> topology_;
  NetworkParams params_;
  RoutingSpec routing_spec_;
  std::unique_ptr<const RoutingPolicy> routing_policy_;
  /// Per-link failure timeouts; empty = uniform params_.failure_timeout.
  std::vector<SimTime> link_timeouts_;
  SimTime max_link_timeout_;

 private:
  /// Contention state (only touched when params_.contention). Guarded by
  /// net_mutex_: delivery queries come from any engine worker thread.
  mutable std::mutex net_mutex_;
  mutable std::vector<SimTime> link_busy_;  ///< Busy-until per link id.
  mutable std::unordered_map<std::uint64_t, std::uint64_t> flow_seq_;
  mutable std::vector<LinkId> route_scratch_;
};

/// Hierarchical network: on-chip / on-node / system levels, each with its own
/// parameters and failure-detection timeout (paper §IV-C: "each simulated
/// network, such as the on-chip, on-node, and system-wide network, has its
/// own network communication timeout"). The system level additionally
/// carries the per-link route layer (contention, link-timeout table) of the
/// base class; on-chip/on-node links are modeled as uncontended single hops.
///
/// Ranks are mapped to nodes/chips by `ranks_per_chip` and `chips_per_node`;
/// the system level routes between nodes over the given topology (node id =
/// rank / ranks_per_node). With ranks_per_node == 1 this degenerates to the
/// paper's experiment configuration (one MPI rank per node, MPI+X assumed).
class HierarchicalNetwork final : public NetworkModel {
 public:
  HierarchicalNetwork(std::shared_ptr<const Topology> system_topology,
                      NetworkParams system, NetworkParams on_node, NetworkParams on_chip,
                      int ranks_per_chip, int chips_per_node, RoutingSpec routing = {});

  enum class Level { kOnChip, kOnNode, kSystem };

  Level level_for(int src_rank, int dst_rank) const;
  const NetworkParams& params_for(Level level) const;

  int node_of_rank(int rank) const { return rank / ranks_per_node_; }
  int ranks_per_node() const { return ranks_per_node_; }

  SimTime delivery_time_ranks(int src_rank, int dst_rank, std::size_t bytes) const;
  /// delivery_time_ranks plus system-level contention when configured
  /// (on-chip/on-node levels never contend).
  SimTime delivery_time_ranks_at(SimTime now, int src_rank, int dst_rank,
                                 std::size_t bytes) const;
  SimTime failure_timeout(int src, int dst) const override;
  SimTime max_failure_timeout() const override;

 private:
  NetworkParams on_node_;
  NetworkParams on_chip_;
  int ranks_per_chip_;
  int ranks_per_node_;
};

}  // namespace exasim
