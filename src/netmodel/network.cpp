#include "netmodel/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace exasim {
namespace {

SimTime bytes_over_bandwidth(std::size_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  if (bytes_per_sec <= 0.0) throw std::invalid_argument("non-positive bandwidth");
  return sim_seconds(static_cast<double>(bytes) / bytes_per_sec);
}

}  // namespace

NetworkModel::NetworkModel(std::shared_ptr<const Topology> topology, NetworkParams params)
    : topology_(std::move(topology)), params_(params) {
  if (!topology_) throw std::invalid_argument("null topology");
}

SimTime NetworkModel::delivery_time(int src, int dst, std::size_t bytes) const {
  const int hops = topology_->hop_count(src, dst);
  return params_.per_message_overhead +
         static_cast<SimTime>(hops) * params_.link_latency +
         bytes_over_bandwidth(bytes, params_.bandwidth_bytes_per_sec);
}

SimTime NetworkModel::sender_occupancy(std::size_t bytes) const {
  return params_.per_message_overhead +
         bytes_over_bandwidth(bytes, params_.injection_bandwidth_bytes_per_sec);
}

SimTime NetworkModel::failure_timeout(int src, int dst) const {
  (void)src;
  (void)dst;
  return params_.failure_timeout;
}

SimTime NetworkModel::min_remote_latency() const {
  return params_.per_message_overhead + params_.link_latency;
}

HierarchicalNetwork::HierarchicalNetwork(std::shared_ptr<const Topology> system_topology,
                                         NetworkParams system, NetworkParams on_node,
                                         NetworkParams on_chip, int ranks_per_chip,
                                         int chips_per_node)
    : NetworkModel(std::move(system_topology), system),
      on_node_(on_node),
      on_chip_(on_chip),
      ranks_per_chip_(ranks_per_chip),
      ranks_per_node_(ranks_per_chip * chips_per_node) {
  if (ranks_per_chip <= 0 || chips_per_node <= 0) {
    throw std::invalid_argument("non-positive hierarchy factor");
  }
}

HierarchicalNetwork::Level HierarchicalNetwork::level_for(int src_rank, int dst_rank) const {
  if (src_rank / ranks_per_node_ != dst_rank / ranks_per_node_) return Level::kSystem;
  if (src_rank / ranks_per_chip_ != dst_rank / ranks_per_chip_) return Level::kOnNode;
  return Level::kOnChip;
}

const NetworkParams& HierarchicalNetwork::params_for(Level level) const {
  switch (level) {
    case Level::kOnChip: return on_chip_;
    case Level::kOnNode: return on_node_;
    case Level::kSystem: return params_;
  }
  throw std::logic_error("bad level");
}

SimTime HierarchicalNetwork::delivery_time_ranks(int src_rank, int dst_rank,
                                                 std::size_t bytes) const {
  const Level level = level_for(src_rank, dst_rank);
  const NetworkParams& p = params_for(level);
  int hops = 1;
  if (level == Level::kSystem) {
    hops = topology_->hop_count(node_of_rank(src_rank), node_of_rank(dst_rank));
  } else if (src_rank == dst_rank) {
    hops = 0;
  }
  return p.per_message_overhead + static_cast<SimTime>(hops) * p.link_latency +
         (bytes == 0 ? 0 : sim_seconds(static_cast<double>(bytes) / p.bandwidth_bytes_per_sec));
}

SimTime HierarchicalNetwork::failure_timeout(int src, int dst) const {
  return params_for(level_for(src, dst)).failure_timeout;
}

SimTime HierarchicalNetwork::max_failure_timeout() const {
  return std::max({params_.failure_timeout, on_node_.failure_timeout,
                   on_chip_.failure_timeout});
}

}  // namespace exasim
