#include "netmodel/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace exasim {
namespace {

SimTime bytes_over_bandwidth(std::size_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  if (bytes_per_sec <= 0.0) throw std::invalid_argument("non-positive bandwidth");
  return sim_seconds(static_cast<double>(bytes) / bytes_per_sec);
}

}  // namespace

NetworkModel::NetworkModel(std::shared_ptr<const Topology> topology, NetworkParams params,
                           RoutingSpec routing)
    : topology_(std::move(topology)),
      params_(params),
      routing_spec_(routing),
      routing_policy_(make_routing(routing)) {
  if (!topology_) throw std::invalid_argument("null topology");
  link_timeouts_ = build_link_timeouts(params_.link_timeouts, *topology_,
                                       params_.failure_timeout);
  max_link_timeout_ = params_.failure_timeout;
  for (const SimTime t : link_timeouts_) max_link_timeout_ = std::max(max_link_timeout_, t);
}

SimTime NetworkModel::delivery_time(int src, int dst, std::size_t bytes) const {
  const int hops = topology_->hop_count(src, dst);
  return params_.per_message_overhead +
         static_cast<SimTime>(hops) * params_.link_latency +
         bytes_over_bandwidth(bytes, params_.bandwidth_bytes_per_sec);
}

SimTime NetworkModel::delivery_time_at(SimTime now, int src, int dst,
                                       std::size_t bytes) const {
  SimTime base = delivery_time(src, dst, bytes);
  if (params_.contention && src != dst) base += contention_delay(now, src, dst, bytes);
  return base;
}

SimTime NetworkModel::contention_delay(SimTime now, int src, int dst,
                                       std::size_t bytes) const {
  // Per-link occupancy: a link is busy for one wire latency plus its share of
  // the payload serialization; a message waits wherever its route hits a
  // still-busy link (cut-through: only the waits are charged on top of the
  // uncontended pipeline cost). The per-pair seq counter follows fiber
  // program order, so variant choice is reproducible for a given worker
  // count; busy-window interleaving across pairs makes the added waits exact
  // only at --sim-workers=1 (core::Machine warns otherwise).
  const SimTime occupancy =
      params_.link_latency + bytes_over_bandwidth(bytes, params_.bandwidth_bytes_per_sec);
  std::lock_guard<std::mutex> lock(net_mutex_);
  if (link_busy_.empty()) link_busy_.resize(static_cast<std::size_t>(topology_->link_count()), 0);

  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                            static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  const std::uint64_t seq = flow_seq_[key]++;
  const std::uint64_t variant =
      routing_policy_->variant(src, dst, seq, topology_->route_count(src, dst));

  route_scratch_.clear();
  topology_->route_into(src, dst, variant, route_scratch_);

  SimTime cursor = now + params_.per_message_overhead;
  SimTime waited = 0;
  for (const LinkId link : route_scratch_) {
    auto& busy = link_busy_[static_cast<std::size_t>(link)];
    const SimTime start = std::max(cursor, busy);
    waited += start - cursor;
    busy = start + occupancy;
    cursor = start + occupancy;
  }
  return waited;
}

SimTime NetworkModel::sender_occupancy(std::size_t bytes) const {
  return params_.per_message_overhead +
         bytes_over_bandwidth(bytes, params_.injection_bandwidth_bytes_per_sec);
}

SimTime NetworkModel::link_pair_timeout(int src_node, int dst_node) const {
  if (link_timeouts_.empty() || src_node == dst_node) return params_.failure_timeout;
  // The canonical (variant-0) route: detection configuration must not depend
  // on per-flow adaptive variant choices or message interleaving.
  SimTime timeout = 0;
  std::vector<LinkId> links;
  topology_->route_into(src_node, dst_node, 0, links);
  for (const LinkId link : links) {
    timeout = std::max(timeout, link_timeouts_[static_cast<std::size_t>(link)]);
  }
  return timeout;
}

SimTime NetworkModel::failure_timeout(int src, int dst) const {
  return link_pair_timeout(src, dst);
}

SimTime NetworkModel::min_remote_latency() const {
  return params_.per_message_overhead + params_.link_latency;
}

HierarchicalNetwork::HierarchicalNetwork(std::shared_ptr<const Topology> system_topology,
                                         NetworkParams system, NetworkParams on_node,
                                         NetworkParams on_chip, int ranks_per_chip,
                                         int chips_per_node, RoutingSpec routing)
    : NetworkModel(std::move(system_topology), system, routing),
      on_node_(on_node),
      on_chip_(on_chip),
      ranks_per_chip_(ranks_per_chip),
      ranks_per_node_(ranks_per_chip * chips_per_node) {
  if (ranks_per_chip <= 0 || chips_per_node <= 0) {
    throw std::invalid_argument("non-positive hierarchy factor");
  }
}

HierarchicalNetwork::Level HierarchicalNetwork::level_for(int src_rank, int dst_rank) const {
  if (src_rank / ranks_per_node_ != dst_rank / ranks_per_node_) return Level::kSystem;
  if (src_rank / ranks_per_chip_ != dst_rank / ranks_per_chip_) return Level::kOnNode;
  return Level::kOnChip;
}

const NetworkParams& HierarchicalNetwork::params_for(Level level) const {
  switch (level) {
    case Level::kOnChip: return on_chip_;
    case Level::kOnNode: return on_node_;
    case Level::kSystem: return params_;
  }
  throw std::logic_error("bad level");
}

SimTime HierarchicalNetwork::delivery_time_ranks(int src_rank, int dst_rank,
                                                 std::size_t bytes) const {
  const Level level = level_for(src_rank, dst_rank);
  const NetworkParams& p = params_for(level);
  int hops = 1;
  if (level == Level::kSystem) {
    hops = topology_->hop_count(node_of_rank(src_rank), node_of_rank(dst_rank));
  } else if (src_rank == dst_rank) {
    hops = 0;
  }
  return p.per_message_overhead + static_cast<SimTime>(hops) * p.link_latency +
         (bytes == 0 ? 0 : sim_seconds(static_cast<double>(bytes) / p.bandwidth_bytes_per_sec));
}

SimTime HierarchicalNetwork::delivery_time_ranks_at(SimTime now, int src_rank, int dst_rank,
                                                    std::size_t bytes) const {
  SimTime base = delivery_time_ranks(src_rank, dst_rank, bytes);
  if (params_.contention && level_for(src_rank, dst_rank) == Level::kSystem) {
    base += contention_delay(now, node_of_rank(src_rank), node_of_rank(dst_rank), bytes);
  }
  return base;
}

SimTime HierarchicalNetwork::failure_timeout(int src, int dst) const {
  const Level level = level_for(src, dst);
  if (level == Level::kSystem) {
    return link_pair_timeout(node_of_rank(src), node_of_rank(dst));
  }
  return params_for(level).failure_timeout;
}

SimTime HierarchicalNetwork::max_failure_timeout() const {
  return std::max({NetworkModel::max_failure_timeout(), on_node_.failure_timeout,
                   on_chip_.failure_timeout});
}

}  // namespace exasim
