#include "netmodel/routing.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/parse.hpp"

namespace exasim {

namespace {

/// splitmix64 finalizer — a cheap, well-mixed stateless hash; the same mix
/// the failure-schedule and soft-error layers use for deterministic draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool parse_int_field(const std::string& v, int* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end != v.c_str() + v.size() || parsed < 1 || parsed > 1 << 20) return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool parse_u64_field(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end != v.c_str() + v.size()) return false;
  *out = parsed;
  return true;
}

std::string format_duration(SimTime t) {
  if (t % 1'000'000'000 == 0) return std::to_string(t / 1'000'000'000) + "s";
  if (t % 1'000'000 == 0) return std::to_string(t / 1'000'000) + "ms";
  if (t % 1'000 == 0) return std::to_string(t / 1'000) + "us";
  return std::to_string(t) + "ns";
}

}  // namespace

std::optional<RoutingSpec> parse_routing_spec(const std::string& text) {
  RoutingSpec spec;
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }
  if (head == "deterministic") {
    spec.kind = RoutingKind::kDeterministic;
    if (!opts.empty()) return std::nullopt;  // Deterministic takes no options.
    return spec;
  }
  if (head != "adaptive") return std::nullopt;
  spec.kind = RoutingKind::kAdaptive;
  for (const auto& field : split_trimmed(opts, ',')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "spread") {
      if (!parse_int_field(value, &spec.spread)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

std::string to_string(const RoutingSpec& spec) {
  if (spec.kind == RoutingKind::kDeterministic) return "deterministic";
  std::string s = "adaptive";
  const RoutingSpec defaults{RoutingKind::kAdaptive};
  if (spec.spread != defaults.spread) s += ":spread=" + std::to_string(spec.spread);
  return s;
}

const std::vector<std::string>& list_routings() {
  static const std::vector<std::string> kNames = {"deterministic", "adaptive"};
  return kNames;
}

RoutingSpec resolve_routing_spec(const std::string& configured) {
  if (!configured.empty()) {
    auto spec = parse_routing_spec(configured);
    if (!spec) throw std::invalid_argument("malformed routing spec: " + configured);
    return *spec;
  }
  if (const char* env = std::getenv(kRoutingEnvVar); env != nullptr && *env != '\0') {
    if (auto spec = parse_routing_spec(env)) return *spec;
  }
  return RoutingSpec{};
}

std::uint64_t AdaptiveRouting::variant(int src, int dst, std::uint64_t seq,
                                       std::uint64_t equal_cost) const {
  if (equal_cost <= 1) return 0;
  const std::uint64_t fanout =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(spread_), equal_cost);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  return mix64(mix64(key) ^ seq) % fanout;
}

std::unique_ptr<RoutingPolicy> make_routing(const RoutingSpec& spec) {
  if (spec.kind == RoutingKind::kAdaptive) {
    return std::make_unique<AdaptiveRouting>(spec.spread);
  }
  return std::make_unique<DeterministicRouting>();
}

std::optional<LinkTimeoutSpec> parse_link_timeout_spec(const std::string& text) {
  LinkTimeoutSpec spec;
  std::string head = text;
  std::string opts;
  if (auto colon = text.find(':'); colon != std::string::npos) {
    head = text.substr(0, colon);
    opts = text.substr(colon + 1);
  }

  if (head == "uniform") {
    if (opts.empty()) return spec;  // Plain "uniform": no table at all.
    spec.kind = LinkTimeoutKind::kDistribution;
    // "LO..HI[,seed=N]".
    std::string range = opts;
    if (auto comma = opts.find(','); comma != std::string::npos) {
      range = opts.substr(0, comma);
      for (const auto& field : split_trimmed(opts.substr(comma + 1), ',')) {
        const auto eq = field.find('=');
        if (eq == std::string::npos || field.substr(0, eq) != "seed") return std::nullopt;
        if (!parse_u64_field(field.substr(eq + 1), &spec.seed)) return std::nullopt;
      }
    }
    const auto dots = range.find("..");
    if (dots == std::string::npos) return std::nullopt;
    const auto lo = parse_duration(range.substr(0, dots));
    const auto hi = parse_duration(range.substr(dots + 2));
    if (!lo || !hi || *hi < *lo) return std::nullopt;
    spec.lo = *lo;
    spec.hi = *hi;
    return spec;
  }

  if (head == "hot" || head == "plane") {
    if (opts.empty()) return std::nullopt;
    // Accept ',' in place of ';' so the spec survives shells and ParamMaps
    // that treat ';' specially.
    std::replace(opts.begin(), opts.end(), ',', ';');
    for (const auto& field : split_trimmed(opts, ';')) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) return std::nullopt;
      const std::string key = field.substr(0, eq);
      const auto dur = parse_duration(field.substr(eq + 1));
      if (!dur) return std::nullopt;
      if (head == "hot") {
        std::uint64_t id = 0;
        if (!parse_u64_field(key, &id)) return std::nullopt;
        spec.hot.emplace_back(id, *dur);
      } else {
        int plane = -1;
        if (key.size() != 1 || key[0] < '0' || key[0] > '9') return std::nullopt;
        plane = key[0] - '0';
        spec.planes.emplace_back(plane, *dur);
      }
    }
    spec.kind = head == "hot" ? LinkTimeoutKind::kHot : LinkTimeoutKind::kPlane;
    return spec;
  }

  return std::nullopt;
}

std::string to_string(const LinkTimeoutSpec& spec) {
  switch (spec.kind) {
    case LinkTimeoutKind::kUniform:
      return "uniform";
    case LinkTimeoutKind::kDistribution: {
      std::string s = "uniform:" + format_duration(spec.lo) + ".." + format_duration(spec.hi);
      if (spec.seed != 1) s += ",seed=" + std::to_string(spec.seed);
      return s;
    }
    case LinkTimeoutKind::kHot: {
      std::string s = "hot:";
      for (std::size_t i = 0; i < spec.hot.size(); ++i) {
        if (i > 0) s += ';';
        s += std::to_string(spec.hot[i].first) + "=" + format_duration(spec.hot[i].second);
      }
      return s;
    }
    case LinkTimeoutKind::kPlane: {
      std::string s = "plane:";
      for (std::size_t i = 0; i < spec.planes.size(); ++i) {
        if (i > 0) s += ';';
        s += std::to_string(spec.planes[i].first) + "=" + format_duration(spec.planes[i].second);
      }
      return s;
    }
  }
  return "uniform";
}

LinkTimeoutSpec resolve_link_timeout_spec(const std::string& configured) {
  if (!configured.empty()) {
    auto spec = parse_link_timeout_spec(configured);
    if (!spec) throw std::invalid_argument("malformed link-timeout spec: " + configured);
    return *spec;
  }
  if (const char* env = std::getenv(kLinkTimeoutsEnvVar); env != nullptr && *env != '\0') {
    if (auto spec = parse_link_timeout_spec(env)) return *spec;
  }
  return LinkTimeoutSpec{};
}

std::vector<SimTime> build_link_timeouts(const LinkTimeoutSpec& spec,
                                         const Topology& topology, SimTime base) {
  if (spec.uniform()) return {};

  const std::uint64_t links = topology.link_count();
  // The table is a flat vector; refuse absurd id spaces rather than OOM.
  constexpr std::uint64_t kMaxTabulatedLinks = 1ull << 26;
  if (links > kMaxTabulatedLinks) {
    throw std::invalid_argument(
        "link-timeout table over " + topology.name() + " needs " + std::to_string(links) +
        " entries (limit " + std::to_string(kMaxTabulatedLinks) +
        "); use a uniform timeout for fabrics this large");
  }

  std::vector<SimTime> table(static_cast<std::size_t>(links), base);
  switch (spec.kind) {
    case LinkTimeoutKind::kUniform:
      break;
    case LinkTimeoutKind::kDistribution: {
      const std::uint64_t span = static_cast<std::uint64_t>(spec.hi - spec.lo) + 1;
      for (std::uint64_t id = 0; id < links; ++id) {
        table[static_cast<std::size_t>(id)] =
            spec.lo + static_cast<SimTime>(mix64(spec.seed ^ mix64(id)) % span);
      }
      break;
    }
    case LinkTimeoutKind::kHot:
      for (const auto& [id, timeout] : spec.hot) {
        if (id >= links) {
          throw std::invalid_argument("hot-link id " + std::to_string(id) + " out of range: " +
                                      topology.name() + " has " + std::to_string(links) +
                                      " link ids");
        }
        table[static_cast<std::size_t>(id)] = timeout;
      }
      break;
    case LinkTimeoutKind::kPlane: {
      for (const auto& [plane, timeout] : spec.planes) {
        bool found = false;
        for (std::uint64_t id = 0; id < links; ++id) {
          if (topology.link_plane(id) == plane) {
            table[static_cast<std::size_t>(id)] = timeout;
            found = true;
          }
        }
        if (!found) {
          throw std::invalid_argument("plane " + std::to_string(plane) + " has no links in " +
                                      topology.name() +
                                      " (planes are 0=x/terminal, 1=y/spine/local, 2=z/global)");
        }
      }
      break;
    }
  }
  return table;
}

}  // namespace exasim
