#include "netmodel/topology.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace exasim {
namespace {

void check_dims(int nx, int ny, int nz) {
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("non-positive dimension");
}

int ring_distance(int a, int b, int n) {
  int d = std::abs(a - b);
  return std::min(d, n - d);
}

int mod(int v, int n) {
  int r = v % n;
  return r < 0 ? r + n : r;
}

}  // namespace

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  check_dims(nx, ny, nz);
}

Coord3 Torus3D::coord_of(int node) const {
  return Coord3{node % nx_, (node / nx_) % ny_, node / (nx_ * ny_)};
}

int Torus3D::node_of(Coord3 c) const {
  return mod(c.x, nx_) + mod(c.y, ny_) * nx_ + mod(c.z, nz_) * nx_ * ny_;
}

int Torus3D::hop_count(int src, int dst) const {
  const Coord3 a = coord_of(src), b = coord_of(dst);
  return ring_distance(a.x, b.x, nx_) + ring_distance(a.y, b.y, ny_) +
         ring_distance(a.z, b.z, nz_);
}

int Torus3D::diameter() const { return nx_ / 2 + ny_ / 2 + nz_ / 2; }

std::string Torus3D::name() const {
  std::ostringstream os;
  os << "torus:" << nx_ << 'x' << ny_ << 'x' << nz_;
  return os.str();
}

std::array<int, 6> Torus3D::face_neighbors(int node) const {
  const Coord3 c = coord_of(node);
  return {node_of({c.x - 1, c.y, c.z}), node_of({c.x + 1, c.y, c.z}),
          node_of({c.x, c.y - 1, c.z}), node_of({c.x, c.y + 1, c.z}),
          node_of({c.x, c.y, c.z - 1}), node_of({c.x, c.y, c.z + 1})};
}

Mesh3D::Mesh3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  check_dims(nx, ny, nz);
}

Coord3 Mesh3D::coord_of(int node) const {
  return Coord3{node % nx_, (node / nx_) % ny_, node / (nx_ * ny_)};
}

int Mesh3D::node_of(Coord3 c) const { return c.x + c.y * nx_ + c.z * nx_ * ny_; }

int Mesh3D::hop_count(int src, int dst) const {
  const Coord3 a = coord_of(src), b = coord_of(dst);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

int Mesh3D::diameter() const { return (nx_ - 1) + (ny_ - 1) + (nz_ - 1); }

std::string Mesh3D::name() const {
  std::ostringstream os;
  os << "mesh:" << nx_ << 'x' << ny_ << 'x' << nz_;
  return os.str();
}

FatTree::FatTree(int radix, int leaf_switches) : radix_(radix), leaves_(leaf_switches) {
  if (radix <= 0 || leaf_switches <= 0) throw std::invalid_argument("non-positive dimension");
}

int FatTree::hop_count(int src, int dst) const {
  if (src == dst) return 0;
  return (src / radix_ == dst / radix_) ? 2 : 4;
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "fattree:" << radix_ << 'x' << leaves_;
  return os.str();
}

Dragonfly::Dragonfly(int groups, int routers_per_group, int nodes_per_router)
    : groups_(groups), routers_(routers_per_group), nodes_(nodes_per_router) {
  if (groups <= 0 || routers_per_group <= 0 || nodes_per_router <= 0) {
    throw std::invalid_argument("non-positive dimension");
  }
}

int Dragonfly::hop_count(int src, int dst) const {
  if (src == dst) return 0;
  if (router_of(src) == router_of(dst)) return 2;  // Up, down: same router.
  if (group_of(src) == group_of(dst)) return 3;    // Up, local link, down.
  // Up, (maybe) local to the global-link router, global, (maybe) local, down.
  // With all-to-all global links we charge the canonical minimal path of 5.
  return 5;
}

std::string Dragonfly::name() const {
  std::ostringstream os;
  os << "dragonfly:" << groups_ << 'x' << routers_ << 'x' << nodes_;
  return os.str();
}

Star::Star(int nodes) : nodes_(nodes) {
  if (nodes <= 0) throw std::invalid_argument("non-positive dimension");
}

std::string Star::name() const {
  std::ostringstream os;
  os << "star:" << nodes_;
  return os.str();
}

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) throw std::invalid_argument("topology spec missing ':'");
  const std::string kind = spec.substr(0, colon);
  const std::string dims = spec.substr(colon + 1);

  auto parse_xyz = [&](int expected) {
    std::vector<int> out;
    std::size_t start = 0;
    while (start <= dims.size()) {
      auto x = dims.find('x', start);
      std::string piece = dims.substr(start, x == std::string::npos ? x : x - start);
      if (piece.empty()) throw std::invalid_argument("bad topology dims: " + spec);
      out.push_back(std::stoi(piece));
      if (x == std::string::npos) break;
      start = x + 1;
    }
    if (static_cast<int>(out.size()) != expected) {
      throw std::invalid_argument("bad topology dims: " + spec);
    }
    return out;
  };

  if (kind == "torus") {
    auto d = parse_xyz(3);
    return std::make_unique<Torus3D>(d[0], d[1], d[2]);
  }
  if (kind == "mesh") {
    auto d = parse_xyz(3);
    return std::make_unique<Mesh3D>(d[0], d[1], d[2]);
  }
  if (kind == "fattree") {
    auto d = parse_xyz(2);
    return std::make_unique<FatTree>(d[0], d[1]);
  }
  if (kind == "star") {
    auto d = parse_xyz(1);
    return std::make_unique<Star>(d[0]);
  }
  if (kind == "dragonfly") {
    auto d = parse_xyz(3);
    return std::make_unique<Dragonfly>(d[0], d[1], d[2]);
  }
  throw std::invalid_argument("unknown topology kind: " + kind);
}

}  // namespace exasim
