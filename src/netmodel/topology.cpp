#include "netmodel/topology.hpp"

#include <cctype>
#include <climits>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace exasim {
namespace {

void check_dims(int nx, int ny, int nz) {
  if (nx <= 0 || ny <= 0 || nz <= 0) throw std::invalid_argument("non-positive dimension");
}

int ring_distance(int a, int b, int n) {
  int d = std::abs(a - b);
  return std::min(d, n - d);
}

int mod(int v, int n) {
  int r = v % n;
  return r < 0 ? r + n : r;
}

/// The dims (0=x, 1=y, 2=z) along which two coordinates differ, ascending.
/// Non-differing dims contribute no links, so route variants only permute
/// these.
int differing_dims(const Coord3& a, const Coord3& b, std::array<int, 3>& dims) {
  int n = 0;
  if (a.x != b.x) dims[n++] = 0;
  if (a.y != b.y) dims[n++] = 1;
  if (a.z != b.z) dims[n++] = 2;
  return n;
}

constexpr std::uint64_t kFactorial[4] = {1, 1, 2, 6};

/// Reorders dims[0..n) into its `index`-th lexicographic permutation
/// (Lehmer code). index must be < n!.
void permute_dims(std::array<int, 3>& dims, int n, std::uint64_t index) {
  for (int i = 0; i < n; ++i) {
    const std::uint64_t f = kFactorial[n - 1 - i];
    const int pick = static_cast<int>(index / f);
    index %= f;
    const int chosen = dims[i + pick];
    for (int j = i + pick; j > i; --j) dims[j] = dims[j - 1];
    dims[i] = chosen;
  }
}

int coord_axis(const Coord3& c, int dim) { return dim == 0 ? c.x : dim == 1 ? c.y : c.z; }

void set_coord_axis(Coord3& c, int dim, int v) {
  (dim == 0 ? c.x : dim == 1 ? c.y : c.z) = v;
}

}  // namespace

int Topology::hop_count(int src, int dst) const {
  std::vector<LinkId> links;
  route_into(src, dst, 0, links);
  return static_cast<int>(links.size());
}

std::vector<LinkId> Topology::route(int src, int dst, std::uint64_t variant) const {
  std::vector<LinkId> links;
  route_into(src, dst, variant, links);
  return links;
}

Torus3D::Torus3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  check_dims(nx, ny, nz);
}

Coord3 Torus3D::coord_of(int node) const {
  return Coord3{node % nx_, (node / nx_) % ny_, node / (nx_ * ny_)};
}

int Torus3D::node_of(Coord3 c) const {
  return mod(c.x, nx_) + mod(c.y, ny_) * nx_ + mod(c.z, nz_) * nx_ * ny_;
}

int Torus3D::hop_count(int src, int dst) const {
  const Coord3 a = coord_of(src), b = coord_of(dst);
  return ring_distance(a.x, b.x, nx_) + ring_distance(a.y, b.y, ny_) +
         ring_distance(a.z, b.z, nz_);
}

int Torus3D::diameter() const { return nx_ / 2 + ny_ / 2 + nz_ / 2; }

std::string Torus3D::name() const {
  std::ostringstream os;
  os << "torus:" << nx_ << 'x' << ny_ << 'x' << nz_;
  return os.str();
}

std::array<int, 6> Torus3D::face_neighbors(int node) const {
  const Coord3 c = coord_of(node);
  return {node_of({c.x - 1, c.y, c.z}), node_of({c.x + 1, c.y, c.z}),
          node_of({c.x, c.y - 1, c.z}), node_of({c.x, c.y + 1, c.z}),
          node_of({c.x, c.y, c.z - 1}), node_of({c.x, c.y, c.z + 1})};
}

std::uint64_t Torus3D::route_count(int src, int dst) const {
  std::array<int, 3> dims;
  return kFactorial[differing_dims(coord_of(src), coord_of(dst), dims)];
}

void Torus3D::route_into(int src, int dst, std::uint64_t variant,
                         std::vector<LinkId>& out) const {
  const Coord3 b = coord_of(dst);
  Coord3 cur = coord_of(src);
  std::array<int, 3> dims;
  const int ndiff = differing_dims(cur, b, dims);
  if (ndiff == 0) return;
  permute_dims(dims, ndiff, variant % kFactorial[ndiff]);

  const int sizes[3] = {nx_, ny_, nz_};
  for (int i = 0; i < ndiff; ++i) {
    const int dim = dims[i];
    const int n = sizes[dim];
    const int from = coord_axis(cur, dim), to = coord_axis(b, dim);
    const int forward = mod(to - from, n);
    const int steps = ring_distance(from, to, n);
    // A tie (forward == n - forward) breaks toward + so the canonical route
    // is unique and matches ring_distance exactly.
    const int dir = forward <= n - forward ? +1 : -1;
    for (int s = 0; s < steps; ++s) {
      if (dir > 0) {
        out.push_back(static_cast<LinkId>(node_of(cur)) * 3 + static_cast<LinkId>(dim));
        set_coord_axis(cur, dim, mod(coord_axis(cur, dim) + 1, n));
      } else {
        // A -dim step traverses the +dim link owned by the node stepped onto.
        set_coord_axis(cur, dim, mod(coord_axis(cur, dim) - 1, n));
        out.push_back(static_cast<LinkId>(node_of(cur)) * 3 + static_cast<LinkId>(dim));
      }
    }
  }
}

Mesh3D::Mesh3D(int nx, int ny, int nz) : nx_(nx), ny_(ny), nz_(nz) {
  check_dims(nx, ny, nz);
}

Coord3 Mesh3D::coord_of(int node) const {
  return Coord3{node % nx_, (node / nx_) % ny_, node / (nx_ * ny_)};
}

int Mesh3D::node_of(Coord3 c) const { return c.x + c.y * nx_ + c.z * nx_ * ny_; }

int Mesh3D::hop_count(int src, int dst) const {
  const Coord3 a = coord_of(src), b = coord_of(dst);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) + std::abs(a.z - b.z);
}

int Mesh3D::diameter() const { return (nx_ - 1) + (ny_ - 1) + (nz_ - 1); }

std::string Mesh3D::name() const {
  std::ostringstream os;
  os << "mesh:" << nx_ << 'x' << ny_ << 'x' << nz_;
  return os.str();
}

std::uint64_t Mesh3D::route_count(int src, int dst) const {
  std::array<int, 3> dims;
  return kFactorial[differing_dims(coord_of(src), coord_of(dst), dims)];
}

void Mesh3D::route_into(int src, int dst, std::uint64_t variant,
                        std::vector<LinkId>& out) const {
  const Coord3 b = coord_of(dst);
  Coord3 cur = coord_of(src);
  std::array<int, 3> dims;
  const int ndiff = differing_dims(cur, b, dims);
  if (ndiff == 0) return;
  permute_dims(dims, ndiff, variant % kFactorial[ndiff]);

  for (int i = 0; i < ndiff; ++i) {
    const int dim = dims[i];
    const int from = coord_axis(cur, dim), to = coord_axis(b, dim);
    const int dir = to > from ? +1 : -1;
    const int steps = std::abs(to - from);
    for (int s = 0; s < steps; ++s) {
      if (dir > 0) {
        out.push_back(static_cast<LinkId>(node_of(cur)) * 3 + static_cast<LinkId>(dim));
        set_coord_axis(cur, dim, coord_axis(cur, dim) + 1);
      } else {
        set_coord_axis(cur, dim, coord_axis(cur, dim) - 1);
        out.push_back(static_cast<LinkId>(node_of(cur)) * 3 + static_cast<LinkId>(dim));
      }
    }
  }
}

FatTree::FatTree(int radix, int leaf_switches) : radix_(radix), leaves_(leaf_switches) {
  if (radix <= 0 || leaf_switches <= 0) throw std::invalid_argument("non-positive dimension");
}

int FatTree::hop_count(int src, int dst) const {
  if (src == dst) return 0;
  return (src / radix_ == dst / radix_) ? 2 : 4;
}

int FatTree::diameter() const {
  if (node_count() <= 1) return 0;
  return leaves_ > 1 ? 4 : 2;
}

std::string FatTree::name() const {
  std::ostringstream os;
  os << "fattree:" << radix_ << 'x' << leaves_;
  return os.str();
}

std::uint64_t FatTree::route_count(int src, int dst) const {
  if (src == dst || src / radix_ == dst / radix_) return 1;
  return static_cast<std::uint64_t>(radix_);
}

void FatTree::route_into(int src, int dst, std::uint64_t variant,
                         std::vector<LinkId>& out) const {
  if (src == dst) return;
  const int leaf_s = src / radix_, leaf_d = dst / radix_;
  out.push_back(static_cast<LinkId>(src));  // Up the terminal link.
  if (leaf_s != leaf_d) {
    // Any of the radix_ spines reaches every leaf in one up + one down hop;
    // the canonical choice hashes the leaf pair so load spreads over spines
    // even under deterministic routing.
    const std::uint64_t r = static_cast<std::uint64_t>(radix_);
    const std::uint64_t spine =
        (static_cast<std::uint64_t>(leaf_s) + static_cast<std::uint64_t>(leaf_d) + variant % r) %
        r;
    const std::uint64_t base = static_cast<std::uint64_t>(node_count());
    out.push_back(base + static_cast<std::uint64_t>(leaf_s) * r + spine);
    out.push_back(base + static_cast<std::uint64_t>(leaf_d) * r + spine);
  }
  out.push_back(static_cast<LinkId>(dst));  // Down the terminal link.
}

Dragonfly::Dragonfly(int groups, int routers_per_group, int nodes_per_router)
    : groups_(groups), routers_(routers_per_group), nodes_(nodes_per_router) {
  if (groups <= 0 || routers_per_group <= 0 || nodes_per_router <= 0) {
    throw std::invalid_argument("non-positive dimension");
  }
}

int Dragonfly::hop_count(int src, int dst) const {
  if (src == dst) return 0;
  if (router_of(src) == router_of(dst)) return 2;  // Up, down: same router.
  if (group_of(src) == group_of(dst)) return 3;    // Up, local link, down.
  // Up, (maybe) local to the global-link router, global, (maybe) local, down.
  // With all-to-all global links we charge the canonical minimal path of 5.
  return 5;
}

int Dragonfly::diameter() const {
  if (node_count() <= 1) return 0;
  if (groups_ > 1) return 5;
  if (routers_ > 1) return 3;
  return 2;  // One router, several nodes.
}

std::string Dragonfly::name() const {
  std::ostringstream os;
  os << "dragonfly:" << groups_ << 'x' << routers_ << 'x' << nodes_;
  return os.str();
}

std::uint64_t Dragonfly::link_count() const {
  const std::uint64_t g = static_cast<std::uint64_t>(groups_);
  const std::uint64_t r = static_cast<std::uint64_t>(routers_);
  return static_cast<std::uint64_t>(node_count()) + g * r * r + g * g;
}

LinkId Dragonfly::local_link(int group, int a, int b) const {
  const std::uint64_t r = static_cast<std::uint64_t>(routers_);
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(a, b));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(a, b));
  return static_cast<std::uint64_t>(node_count()) +
         static_cast<std::uint64_t>(group) * r * r + lo * r + hi;
}

int Dragonfly::link_plane(LinkId link) const {
  const std::uint64_t n = static_cast<std::uint64_t>(node_count());
  if (link < n) return 0;
  const std::uint64_t locals =
      static_cast<std::uint64_t>(groups_) * static_cast<std::uint64_t>(routers_) *
      static_cast<std::uint64_t>(routers_);
  return link < n + locals ? 1 : 2;
}

std::uint64_t Dragonfly::route_count(int src, int dst) const {
  if (src == dst || group_of(src) == group_of(dst)) return 1;
  return static_cast<std::uint64_t>(routers_);
}

void Dragonfly::route_into(int src, int dst, std::uint64_t variant,
                           std::vector<LinkId>& out) const {
  if (src == dst) return;
  out.push_back(static_cast<LinkId>(src));  // Up the terminal link.
  const int g_s = group_of(src), g_d = group_of(dst);
  const int r_s = router_of(src) % routers_, r_d = router_of(dst) % routers_;
  if (g_s == g_d) {
    if (r_s != r_d) out.push_back(local_link(g_s, r_s, r_d));
  } else {
    // Gateway routers for the (g_s, g_d) global link; variant spreads flows
    // over the routers_ gateway pairs. When a gateway is the source or
    // destination router itself, the "local" hop is its internal crossbar
    // crossing (the degenerate a==b local link), keeping every inter-group
    // route at the canonical 5 links.
    const std::uint64_t r = static_cast<std::uint64_t>(routers_);
    const std::uint64_t v = variant % r;
    const int gw_s = static_cast<int>((static_cast<std::uint64_t>(g_d) + v) % r);
    const int gw_d = static_cast<int>((static_cast<std::uint64_t>(g_s) + v) % r);
    out.push_back(local_link(g_s, r_s, gw_s));
    const std::uint64_t g = static_cast<std::uint64_t>(groups_);
    const std::uint64_t lo = static_cast<std::uint64_t>(std::min(g_s, g_d));
    const std::uint64_t hi = static_cast<std::uint64_t>(std::max(g_s, g_d));
    out.push_back(static_cast<std::uint64_t>(node_count()) + g * r * r + lo * g + hi);
    out.push_back(local_link(g_d, gw_d, r_d));
  }
  out.push_back(static_cast<LinkId>(dst));  // Down the terminal link.
}

Star::Star(int nodes) : nodes_(nodes) {
  if (nodes <= 0) throw std::invalid_argument("non-positive dimension");
}

std::string Star::name() const {
  std::ostringstream os;
  os << "star:" << nodes_;
  return os.str();
}

void Star::route_into(int src, int dst, std::uint64_t variant,
                      std::vector<LinkId>& out) const {
  (void)variant;
  if (src == dst) return;
  out.push_back(static_cast<LinkId>(src));  // Into the hub.
  out.push_back(static_cast<LinkId>(dst));  // Out of the hub.
}

const std::vector<TopologyInfo>& list_topologies() {
  static const std::vector<TopologyInfo> kInfos = {
      {"torus", "torus:NXxNYxNZ",
       "3-D wrapped torus, dimension-ordered routing (paper's 32x32x32 system)"},
      {"mesh", "mesh:NXxNYxNZ", "3-D mesh without wrap links, dimension-ordered routing"},
      {"fattree", "fattree:RADIXxLEAVES",
       "two-level fat tree, RADIX nodes/leaf, RADIX spines, up-down routing"},
      {"dragonfly", "dragonfly:GROUPSxROUTERSxNODES",
       "dragonfly with all-to-all global links, local-global-local routing"},
      {"star", "star:NODES", "single central switch, every pair 2 hops"},
  };
  return kInfos;
}

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument(
        "topology spec missing ':' (expected KIND:DIMS, e.g. torus:32x32x32; "
        "see --list-topologies): " +
        spec);
  }
  const std::string kind = spec.substr(0, colon);
  const std::string dims = spec.substr(colon + 1);

  // Strict dimension parsing: digits only (no sign, no trailing garbage),
  // >= 1, and both each dimension and the node-count product must fit the
  // int node-id space.
  auto parse_xyz = [&](int expected, const char* format) {
    auto fail = [&](const std::string& why) -> void {
      throw std::invalid_argument("bad topology spec \"" + spec + "\": " + why + " (expected " +
                                  format + ")");
    };
    std::vector<int> out;
    long long product = 1;
    std::size_t start = 0;
    while (true) {
      auto x = dims.find('x', start);
      const std::string piece =
          dims.substr(start, x == std::string::npos ? std::string::npos : x - start);
      if (piece.empty()) fail("empty dimension");
      for (char c : piece) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          fail("dimension \"" + piece + "\" is not a positive integer");
        }
      }
      if (piece.size() > 9) fail("dimension \"" + piece + "\" is too large");
      const long long v = std::atoll(piece.c_str());
      if (v < 1) fail("dimension \"" + piece + "\" must be >= 1");
      product *= v;
      if (product > INT_MAX) {
        fail("node count overflows the int node-id space (max " + std::to_string(INT_MAX) + ")");
      }
      out.push_back(static_cast<int>(v));
      if (x == std::string::npos) break;
      start = x + 1;
    }
    if (static_cast<int>(out.size()) != expected) {
      fail("got " + std::to_string(out.size()) + " dimension(s), need " +
           std::to_string(expected));
    }
    return out;
  };

  if (kind == "torus") {
    auto d = parse_xyz(3, "torus:NXxNYxNZ");
    return std::make_unique<Torus3D>(d[0], d[1], d[2]);
  }
  if (kind == "mesh") {
    auto d = parse_xyz(3, "mesh:NXxNYxNZ");
    return std::make_unique<Mesh3D>(d[0], d[1], d[2]);
  }
  if (kind == "fattree") {
    auto d = parse_xyz(2, "fattree:RADIXxLEAVES");
    return std::make_unique<FatTree>(d[0], d[1]);
  }
  if (kind == "star") {
    auto d = parse_xyz(1, "star:NODES");
    return std::make_unique<Star>(d[0]);
  }
  if (kind == "dragonfly") {
    auto d = parse_xyz(3, "dragonfly:GROUPSxROUTERSxNODES");
    return std::make_unique<Dragonfly>(d[0], d[1], d[2]);
  }
  throw std::invalid_argument("unknown topology kind: " + kind +
                              " (see --list-topologies for the supported fabrics)");
}

}  // namespace exasim
