#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "netmodel/topology.hpp"
#include "util/time.hpp"

namespace exasim {

/// Which route-variant selection policy the network model runs (DESIGN.md
/// §12) — the policy half of the route split; the mechanism half is
/// Topology::route_into's equal-cost variants.
enum class RoutingKind : std::uint8_t {
  kDeterministic,  ///< Always the canonical variant 0 — byte-identical to the
                   ///< pre-route-refactor hop-count model.
  kAdaptive,       ///< Deterministically spreads flows over up to `spread`
                   ///< equal-cost variants keyed by (src, dst, seq).
};

/// Parsed `--routing` configuration. Canonical spec strings are
/// "deterministic" and "adaptive[:spread=K]".
struct RoutingSpec {
  RoutingKind kind = RoutingKind::kDeterministic;
  /// Maximum number of equal-cost route variants an adaptive policy spreads
  /// one (src, dst) flow over (clamped to the pair's route_count).
  int spread = 4;

  friend bool operator==(const RoutingSpec&, const RoutingSpec&) = default;
};

/// Parses a routing spec string ("deterministic", "adaptive",
/// "adaptive:spread=K"); nullopt on malformed input.
std::optional<RoutingSpec> parse_routing_spec(const std::string& text);

/// Canonical spec string for `spec` (round-trips through parse).
std::string to_string(const RoutingSpec& spec);

/// Registered routing policy names, registry order ("deterministic",
/// "adaptive") — the values of exp::routing_axis().
const std::vector<std::string>& list_routings();

/// Environment variable consulted when no --routing flag is given.
inline constexpr const char* kRoutingEnvVar = "EXASIM_ROUTING";

/// Resolves a configured spec string (e.g. core::SimConfig::routing) to a
/// RoutingSpec: empty defers to EXASIM_ROUTING, unset/malformed environment
/// means "deterministic". Throws std::invalid_argument on a malformed
/// non-empty `configured`.
RoutingSpec resolve_routing_spec(const std::string& configured);

/// Selects the route variant each flow takes. Pure and stateless: the
/// variant depends only on (src, dst, seq, equal_cost), so route choice is
/// reproducible across runs and engine worker counts.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const = 0;

  /// Variant (< equal_cost) for the seq-th message of the (src, dst) flow,
  /// where equal_cost = Topology::route_count(src, dst).
  virtual std::uint64_t variant(int src, int dst, std::uint64_t seq,
                                std::uint64_t equal_cost) const = 0;
};

/// Always the canonical route — the default, and the pre-refactor behavior.
class DeterministicRouting final : public RoutingPolicy {
 public:
  const char* name() const override { return "deterministic"; }
  std::uint64_t variant(int, int, std::uint64_t, std::uint64_t) const override { return 0; }
};

/// Hashes (src, dst, seq) onto min(spread, equal_cost) variants, modeling
/// per-packet/per-message adaptive routing while staying deterministic: the
/// per-pair seq counter follows fiber program order, which the engine keeps
/// identical across worker counts.
class AdaptiveRouting final : public RoutingPolicy {
 public:
  explicit AdaptiveRouting(int spread) : spread_(spread < 1 ? 1 : spread) {}

  const char* name() const override { return "adaptive"; }
  std::uint64_t variant(int src, int dst, std::uint64_t seq,
                        std::uint64_t equal_cost) const override;

 private:
  int spread_;
};

/// Policy instance for a spec (stateless; may be shared).
std::unique_ptr<RoutingPolicy> make_routing(const RoutingSpec& spec);

// -- Per-link failure-timeout overrides --------------------------------------

/// How NetworkParams::link_timeouts assigns a failure-detection timeout to
/// each link (DESIGN.md §12). The default (kUniform with no overrides) keeps
/// the single NetworkParams::failure_timeout for every link.
enum class LinkTimeoutKind : std::uint8_t {
  kUniform,       ///< One timeout for all links (NetworkParams::failure_timeout).
  kDistribution,  ///< Deterministic per-link draw from [lo, hi] keyed by seed.
  kHot,           ///< Base timeout + explicit per-link overrides ("hot links").
  kPlane,         ///< Base timeout + per-plane overrides (e.g. all global links).
};

/// Parsed `--link-timeouts` configuration. Grammar:
///   "uniform"                          (default)
///   "uniform:LO..HI[,seed=N]"          per-link draw from [LO, HI]
///   "hot:ID=DUR[;ID=DUR...]"           explicit link-id overrides
///   "plane:P=DUR[;P=DUR...]"           per-plane overrides
/// Durations use util/parse.hpp suffixes ("500ms", "2s"); ',' is accepted in
/// place of ';' in hot/plane lists.
struct LinkTimeoutSpec {
  LinkTimeoutKind kind = LinkTimeoutKind::kUniform;
  SimTime lo = 0, hi = 0;      ///< kDistribution range (inclusive).
  std::uint64_t seed = 1;      ///< kDistribution hash seed.
  std::vector<std::pair<std::uint64_t, SimTime>> hot;  ///< kHot (link id, timeout).
  std::vector<std::pair<int, SimTime>> planes;         ///< kPlane (plane, timeout).

  bool uniform() const { return kind == LinkTimeoutKind::kUniform; }

  friend bool operator==(const LinkTimeoutSpec&, const LinkTimeoutSpec&) = default;
};

/// Parses a link-timeout spec string; nullopt on malformed input.
std::optional<LinkTimeoutSpec> parse_link_timeout_spec(const std::string& text);

/// Canonical spec string for `spec` (round-trips through parse).
std::string to_string(const LinkTimeoutSpec& spec);

/// Environment variable consulted when no --link-timeouts flag is given.
inline constexpr const char* kLinkTimeoutsEnvVar = "EXASIM_LINK_TIMEOUTS";

/// Resolves a configured spec string: empty defers to EXASIM_LINK_TIMEOUTS,
/// unset/malformed environment means uniform. Throws std::invalid_argument
/// on a malformed non-empty `configured`.
LinkTimeoutSpec resolve_link_timeout_spec(const std::string& configured);

/// Materializes the per-link timeout table for `topology`: empty for the
/// uniform spec (callers fall back to the base timeout — the fast path), else
/// one entry per link id. Throws std::invalid_argument on hot-link ids >=
/// link_count(), planes the topology does not have, or link-id spaces too
/// large to tabulate.
std::vector<SimTime> build_link_timeouts(const LinkTimeoutSpec& spec,
                                         const Topology& topology, SimTime base);

}  // namespace exasim
