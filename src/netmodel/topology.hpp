#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace exasim {

/// Integer coordinates in a 3-D grid topology.
struct Coord3 {
  int x = 0, y = 0, z = 0;
  friend bool operator==(const Coord3&, const Coord3&) = default;
};

/// Stable identifier of one physical link of a topology. Ids are dense per
/// link class (see each topology's encoding) and always < link_count(); a
/// link's id never depends on which route traverses it, so per-link state
/// (failure timeouts, occupancy windows) can live in flat tables.
using LinkId = std::uint64_t;

/// Abstract interconnect topology over `node_count()` compute nodes.
///
/// The primary abstraction is the *route*: `route(src, dst)` names the
/// sequence of links a message traverses under minimal routing (dimension-
/// ordered for tori/meshes, up-down for fat trees, local-global-local for
/// dragonflies). `hop_count()` is derived from it — concrete topologies
/// override it with the equivalent closed form as a fast path, pinned equal
/// to `route().size()` by tests. Topologies with several equal-cost minimal
/// routes expose them as numbered variants (`route_count`), which the
/// RoutingPolicy layer spreads flows over.
class Topology {
 public:
  virtual ~Topology() = default;

  virtual int node_count() const = 0;

  /// Number of links traversed from src to dst under minimal routing.
  /// hop_count(a, a) == 0 for all a. Default: the canonical route's length;
  /// overrides must agree with it exactly.
  virtual int hop_count(int src, int dst) const;

  /// Largest hop count over all pairs (the network diameter).
  virtual int diameter() const = 0;

  virtual std::string name() const = 0;

  // -- Link/route layer ----------------------------------------------------

  /// Size of the link-id space: every id a route can emit is < link_count().
  /// Ids are dense per link class but not every id is necessarily in use
  /// (e.g. a grid dimension of size 1 has no links in that dimension).
  virtual std::uint64_t link_count() const = 0;

  /// Number of equal-cost minimal route variants between src and dst (>= 1).
  virtual std::uint64_t route_count(int src, int dst) const {
    (void)src;
    (void)dst;
    return 1;
  }

  /// Appends the links of one minimal route from src to dst to `out`, in
  /// traversal order. `variant` (taken modulo route_count(src, dst)) selects
  /// among the equal-cost minimal routes; variant 0 is the canonical
  /// deterministic route. The route from a node to itself is empty. Must be
  /// a pure function of its arguments — routes are computed from any engine
  /// worker thread.
  virtual void route_into(int src, int dst, std::uint64_t variant,
                          std::vector<LinkId>& out) const = 0;

  /// Convenience wrapper around route_into (canonical route by default).
  std::vector<LinkId> route(int src, int dst, std::uint64_t variant = 0) const;

  /// Plane (link class) of a link, for per-plane timeout overrides:
  /// grid dimension for torus/mesh (0 = x, 1 = y, 2 = z), 0 = terminal /
  /// 1 = spine for fattree, 0 = terminal / 1 = intra-group / 2 = global for
  /// dragonfly, 0 for star. -1 = unclassified.
  virtual int link_plane(LinkId link) const {
    (void)link;
    return -1;
  }
};

/// k x l x m torus with wrap-around links and dimension-ordered routing —
/// the paper's simulated system is a 32x32x32 3-D wrapped torus (§V-C).
///
/// Link encoding: id = node * 3 + dim is the link from `node` to its
/// +dim-direction neighbor (wrap included); a -dim step traverses the
/// neighbor's +dim link. Equal-cost variants are the 6 dimension orders.
class Torus3D final : public Topology {
 public:
  Torus3D(int nx, int ny, int nz);

  int node_count() const override { return nx_ * ny_ * nz_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  std::uint64_t link_count() const override {
    return 3ull * static_cast<std::uint64_t>(node_count());
  }
  std::uint64_t route_count(int src, int dst) const override;
  void route_into(int src, int dst, std::uint64_t variant,
                  std::vector<LinkId>& out) const override;
  int link_plane(LinkId link) const override { return static_cast<int>(link % 3); }

  Coord3 coord_of(int node) const;
  int node_of(Coord3 c) const;  ///< coordinates taken modulo the dimensions.

  /// The six face neighbors (x±1, y±1, z±1) of a node, in deterministic
  /// order (-x, +x, -y, +y, -z, +z) — the halo-exchange partner set.
  std::array<int, 6> face_neighbors(int node) const;

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

 private:
  int nx_, ny_, nz_;
};

/// k x l x m mesh (no wrap links). Same link encoding as the torus:
/// id = node * 3 + dim is the link from `node` toward +dim.
class Mesh3D final : public Topology {
 public:
  Mesh3D(int nx, int ny, int nz);

  int node_count() const override { return nx_ * ny_ * nz_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  std::uint64_t link_count() const override {
    return 3ull * static_cast<std::uint64_t>(node_count());
  }
  std::uint64_t route_count(int src, int dst) const override;
  void route_into(int src, int dst, std::uint64_t variant,
                  std::vector<LinkId>& out) const override;
  int link_plane(LinkId link) const override { return static_cast<int>(link % 3); }

  Coord3 coord_of(int node) const;
  int node_of(Coord3 c) const;

 private:
  int nx_, ny_, nz_;
};

/// Two-level k-ary fat tree: `radix` nodes per leaf switch, leaf switches
/// connected through `radix` spine switches (full bisection: as many up
/// links per leaf as down links). Same-switch pairs are 2 hops (up, down);
/// cross-switch pairs are 4 hops (up, up, down, down) with `radix`
/// equal-cost spine choices.
///
/// Link encoding: id = node for the node<->leaf terminal link;
/// id = node_count() + leaf * radix + spine for the leaf<->spine link.
class FatTree final : public Topology {
 public:
  FatTree(int radix, int leaf_switches);

  int node_count() const override { return radix_ * leaves_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  std::uint64_t link_count() const override {
    return static_cast<std::uint64_t>(node_count()) +
           static_cast<std::uint64_t>(leaves_) * static_cast<std::uint64_t>(radix_);
  }
  std::uint64_t route_count(int src, int dst) const override;
  void route_into(int src, int dst, std::uint64_t variant,
                  std::vector<LinkId>& out) const override;
  int link_plane(LinkId link) const override {
    return link < static_cast<std::uint64_t>(node_count()) ? 0 : 1;
  }

  int spine_count() const { return radix_; }

 private:
  int radix_, leaves_;
};

/// Dragonfly (simplified canonical form): `groups` groups of `routers_per_group`
/// routers, `nodes_per_router` nodes each. Minimal routing: up to the local
/// router (1 hop), across the group to the gateway router (1 hop), one global
/// link (1 hop), across the destination group (1 hop), down (1 hop). All-to-all
/// global links between groups are assumed, and the canonical 5-hop path is
/// charged for every inter-group pair — when the source router is itself the
/// gateway the "local" hop is its internal crossbar crossing, which carries
/// its own link id. Equal-cost variants are the `routers_per_group` gateway
/// choices.
///
/// Link encoding (N = node_count(), R = routers_per_group, G = groups):
///   id = node                                  node<->router terminal link
///   id = N + g*R*R + min(a,b)*R + max(a,b)     intra-group link a<->b in g
///   id = N + G*R*R + min(gs,gd)*G + max(gs,gd) global link between groups
class Dragonfly final : public Topology {
 public:
  Dragonfly(int groups, int routers_per_group, int nodes_per_router);

  int node_count() const override { return groups_ * routers_ * nodes_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  std::uint64_t link_count() const override;
  std::uint64_t route_count(int src, int dst) const override;
  void route_into(int src, int dst, std::uint64_t variant,
                  std::vector<LinkId>& out) const override;
  int link_plane(LinkId link) const override;

  int group_of(int node) const { return node / (routers_ * nodes_); }
  int router_of(int node) const { return node / nodes_; }  ///< Global router id.

 private:
  LinkId local_link(int group, int a, int b) const;

  int groups_, routers_, nodes_;
};

/// Star: every pair communicates through one central switch (2 hops).
/// Link encoding: id = node for the node<->hub link.
class Star final : public Topology {
 public:
  explicit Star(int nodes);

  int node_count() const override { return nodes_; }
  int hop_count(int src, int dst) const override { return src == dst ? 0 : 2; }
  int diameter() const override { return nodes_ > 1 ? 2 : 0; }
  std::string name() const override;

  std::uint64_t link_count() const override { return static_cast<std::uint64_t>(nodes_); }
  void route_into(int src, int dst, std::uint64_t variant,
                  std::vector<LinkId>& out) const override;
  int link_plane(LinkId link) const override {
    (void)link;
    return 0;
  }

 private:
  int nodes_;
};

/// One row of `exasim_run --list-topologies`.
struct TopologyInfo {
  std::string name;     ///< Kind keyword ("torus", ...).
  std::string format;   ///< Spec format ("torus:NXxNYxNZ", ...).
  std::string summary;  ///< One-line description.
};
const std::vector<TopologyInfo>& list_topologies();

/// Factory helper: "torus:32x32x32", "mesh:8x8x8", "fattree:16x8",
/// "dragonfly:4x4x4", "star:64". Throws std::invalid_argument with an
/// actionable message on malformed specs: unknown kinds, wrong dimension
/// counts, non-numeric/zero/negative dimensions, trailing garbage, and
/// node counts that overflow the int node-id space.
std::unique_ptr<Topology> make_topology(const std::string& spec);

}  // namespace exasim
