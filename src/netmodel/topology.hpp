#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace exasim {

/// Integer coordinates in a 3-D grid topology.
struct Coord3 {
  int x = 0, y = 0, z = 0;
  friend bool operator==(const Coord3&, const Coord3&) = default;
};

/// Abstract interconnect topology over `node_count()` compute nodes.
/// The simulator only needs hop counts (the latency model multiplies per-hop
/// link latency), not full paths; concrete topologies use their natural
/// minimal routing (dimension-ordered for tori/meshes, up-down for fat trees).
class Topology {
 public:
  virtual ~Topology() = default;

  virtual int node_count() const = 0;

  /// Number of links traversed from src to dst under minimal routing.
  /// hop_count(a, a) == 0 for all a.
  virtual int hop_count(int src, int dst) const = 0;

  /// Largest hop count over all pairs (the network diameter).
  virtual int diameter() const = 0;

  virtual std::string name() const = 0;
};

/// k x l x m torus with wrap-around links and dimension-ordered routing —
/// the paper's simulated system is a 32x32x32 3-D wrapped torus (§V-C).
class Torus3D final : public Topology {
 public:
  Torus3D(int nx, int ny, int nz);

  int node_count() const override { return nx_ * ny_ * nz_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  Coord3 coord_of(int node) const;
  int node_of(Coord3 c) const;  ///< coordinates taken modulo the dimensions.

  /// The six face neighbors (x±1, y±1, z±1) of a node, in deterministic
  /// order (-x, +x, -y, +y, -z, +z) — the halo-exchange partner set.
  std::array<int, 6> face_neighbors(int node) const;

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

 private:
  int nx_, ny_, nz_;
};

/// k x l x m mesh (no wrap links).
class Mesh3D final : public Topology {
 public:
  Mesh3D(int nx, int ny, int nz);

  int node_count() const override { return nx_ * ny_ * nz_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override;
  std::string name() const override;

  Coord3 coord_of(int node) const;
  int node_of(Coord3 c) const;

 private:
  int nx_, ny_, nz_;
};

/// Two-level k-ary fat tree: `radix` nodes per leaf switch, leaf switches
/// under a common spine. Same-switch pairs are 2 hops (up, down); cross-
/// switch pairs are 4 hops (up, up, down, down).
class FatTree final : public Topology {
 public:
  FatTree(int radix, int leaf_switches);

  int node_count() const override { return radix_ * leaves_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override { return node_count() > radix_ ? 4 : 2; }
  std::string name() const override;

 private:
  int radix_, leaves_;
};

/// Dragonfly (simplified canonical form): `groups` groups of `routers_per_group`
/// routers, `nodes_per_router` nodes each. Minimal routing: up to the local
/// router (1 hop), optionally across the group (1 hop), one global link
/// (1 hop), across the destination group (1 hop), down (1 hop). All-to-all
/// global links between groups are assumed.
class Dragonfly final : public Topology {
 public:
  Dragonfly(int groups, int routers_per_group, int nodes_per_router);

  int node_count() const override { return groups_ * routers_ * nodes_; }
  int hop_count(int src, int dst) const override;
  int diameter() const override { return 5; }
  std::string name() const override;

  int group_of(int node) const { return node / (routers_ * nodes_); }
  int router_of(int node) const { return node / nodes_; }  ///< Global router id.

 private:
  int groups_, routers_, nodes_;
};

/// Star: every pair communicates through one central switch (2 hops).
class Star final : public Topology {
 public:
  explicit Star(int nodes);

  int node_count() const override { return nodes_; }
  int hop_count(int src, int dst) const override { return src == dst ? 0 : 2; }
  int diameter() const override { return nodes_ > 1 ? 2 : 0; }
  std::string name() const override;

 private:
  int nodes_;
};

/// Factory helper: "torus:32x32x32", "mesh:8x8x8", "fattree:16x8", "star:64".
std::unique_ptr<Topology> make_topology(const std::string& spec);

}  // namespace exasim
