#include "vmpi/types.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace exasim::vmpi {

std::string to_string(Err e) {
  switch (e) {
    case Err::kSuccess: return "SUCCESS";
    case Err::kProcFailed: return "ERR_PROC_FAILED";
    case Err::kRevoked: return "ERR_REVOKED";
    case Err::kTruncate: return "ERR_TRUNCATE";
    case Err::kInvalidArg: return "ERR_INVALID_ARG";
    case Err::kPending: return "ERR_PENDING";
  }
  return "?";
}

std::string to_string(ProcOutcome o) {
  switch (o) {
    case ProcOutcome::kRunning: return "running";
    case ProcOutcome::kFinished: return "finished";
    case ProcOutcome::kFailed: return "failed";
    case ProcOutcome::kAborted: return "aborted";
  }
  return "?";
}

bool is_commutative(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kMin:
    case ReduceOp::kMax:
    case ReduceOp::kProd:
      return true;
    case ReduceOp::kReplace:
      return false;
  }
  return false;
}

std::size_t dtype_size(Dtype d) {
  switch (d) {
    case Dtype::kI32: return 4;
    case Dtype::kI64: return 8;
    case Dtype::kU64: return 8;
    case Dtype::kF64: return 8;
    case Dtype::kByte: return 1;
  }
  return 0;
}

namespace {

template <typename T>
void combine_typed(ReduceOp op, T* acc, const T* in, std::size_t count) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] + in[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < count; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < count; ++i) acc[i] = static_cast<T>(acc[i] * in[i]);
      break;
    case ReduceOp::kReplace:
      for (std::size_t i = 0; i < count; ++i) acc[i] = in[i];
      break;
  }
}

}  // namespace

void reduce_combine(ReduceOp op, Dtype dtype, void* acc, const void* in, std::size_t count) {
  switch (dtype) {
    case Dtype::kI32:
      combine_typed(op, static_cast<std::int32_t*>(acc), static_cast<const std::int32_t*>(in),
                    count);
      return;
    case Dtype::kI64:
      combine_typed(op, static_cast<std::int64_t*>(acc), static_cast<const std::int64_t*>(in),
                    count);
      return;
    case Dtype::kU64:
      combine_typed(op, static_cast<std::uint64_t*>(acc), static_cast<const std::uint64_t*>(in),
                    count);
      return;
    case Dtype::kF64:
      combine_typed(op, static_cast<double*>(acc), static_cast<const double*>(in), count);
      return;
    case Dtype::kByte:
      combine_typed(op, static_cast<std::uint8_t*>(acc), static_cast<const std::uint8_t*>(in),
                    count);
      return;
  }
  throw std::invalid_argument("bad dtype");
}

}  // namespace exasim::vmpi
