#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "resilience/policy.hpp"
#include "util/time.hpp"

namespace exasim::vmpi {

/// Simulated MPI rank (within MPI_COMM_WORLD unless stated otherwise).
using Rank = int;

inline constexpr Rank kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Error classes surfaced to the simulated application. Mirrors the subset of
/// MPI error semantics the paper exercises, plus the ULFM extension codes
/// (paper §VI: MPI_ERR_PROC_FAILED, MPI_Comm_revoke, MPI_Comm_shrink).
enum class Err : std::uint8_t {
  kSuccess = 0,
  kProcFailed,   ///< ULFM MPI_ERR_PROC_FAILED: a peer process failed.
  kRevoked,      ///< ULFM MPI_ERR_REVOKED: the communicator was revoked.
  kTruncate,     ///< Receive buffer smaller than the incoming message.
  kInvalidArg,   ///< Malformed call (bad rank/tag/comm).
  kPending,      ///< Internal: request not complete (never returned by wait).
};

std::string to_string(Err e);

/// Error handler attached to a communicator (paper §IV-D) — the resilience
/// subsystem's ErrorPolicy (kFatal/kReturn/kUser), whose dispatch is decided
/// by resilience::ErrorHandlerPolicy.
using ErrorHandlerKind = resilience::ErrorPolicy;

/// Receive/operation status returned by waits and receives.
struct MsgStatus {
  Rank source = kAnySource;   ///< Communicator rank of the sender.
  int tag = kAnyTag;
  std::size_t bytes = 0;      ///< Logical payload size.
  Err error = Err::kSuccess;
};

/// Element types for reductions.
enum class Dtype : std::uint8_t { kI32, kI64, kU64, kF64, kByte };

std::size_t dtype_size(Dtype d);

/// Reduction operations (applied element-wise on matching Dtype buffers).
/// kReplace (MPI_REPLACE) takes the later operand — associative but NOT
/// commutative, so tree algorithms must not reorder its operands.
enum class ReduceOp : std::uint8_t { kSum, kMin, kMax, kProd, kReplace };

/// Whether operand order is irrelevant for the op. Tree-shaped reduction
/// algorithms combine contributions in mask order rather than rank order and
/// are only valid for commutative ops; non-commutative ops fall back to the
/// linear algorithm (which combines in ascending rank order).
bool is_commutative(ReduceOp op);

/// In-place combine: acc[i] = op(acc[i], in[i]) for `count` elements.
void reduce_combine(ReduceOp op, Dtype dtype, void* acc, const void* in, std::size_t count);

/// Why a simulated process stopped executing.
enum class ProcOutcome : std::uint8_t {
  kRunning = 0,
  kFinished,  ///< Returned from app main after Finalize.
  kFailed,    ///< Injected (or self-inflicted) process failure.
  kAborted,   ///< Terminated by MPI_Abort (own or remote).
};

std::string to_string(ProcOutcome o);

}  // namespace exasim::vmpi
