#include "vmpi/process.hpp"

#include <ctime>

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "resilience/policy.hpp"
#include "util/log.hpp"
#include "util/parse.hpp"
#include "vmpi/context.hpp"

namespace exasim::vmpi {

namespace {

std::atomic<bool> g_eager_wakeup{[] {
  const char* env = std::getenv("EXASIM_EAGER_WAKEUP");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

}  // namespace

bool eager_wakeup_enabled() { return g_eager_wakeup.load(std::memory_order_relaxed); }

void set_eager_wakeup(bool eager) { g_eager_wakeup.store(eager, std::memory_order_relaxed); }

SimProcess::SimProcess(Rank world_rank, int world_size, Engine* engine, const Fabric* fabric,
                       const ProcessorModel* proc_model, SystemHooks* hooks,
                       CommRegistry* registry, AppMain app, ProcessConfig config,
                       SimTime initial_clock)
    : world_rank_(world_rank),
      world_size_(world_size),
      engine_(engine),
      fabric_(fabric),
      proc_model_(proc_model),
      hooks_(hooks),
      registry_(registry),
      app_(std::move(app)),
      config_(config),
      clock_(initial_clock) {
  if (engine_ == nullptr || fabric_ == nullptr || proc_model_ == nullptr || hooks_ == nullptr ||
      registry_ == nullptr) {
    throw std::invalid_argument("null wiring");
  }
  context_ = std::make_unique<Context>(this);

  auto world = std::make_unique<Comm>();
  world->id = CommRegistry::kWorldId;
  world->set_identity_members(world_size_);  // O(1): no per-process member list.
  world->my_rank = world_rank_;
  comms_.push_back(std::move(world));

  fiber_ = std::make_unique<Fiber>([this] { fiber_body(); }, config_.fiber_stack_bytes);
}

SimProcess::~SimProcess() = default;

// ---------------------------------------------------------------------------
// Fiber lifecycle
// ---------------------------------------------------------------------------

void SimProcess::fiber_body() {
  try {
    check_signals();  // "fail immediately" schedules activate before any work.
    app_(*context_);
    if (!finalized_) {
      // Returning from the application main without MPI_Finalize is a
      // failure-injection trigger (paper §IV-B).
      throw ProcessFailedSignal{};
    }
    terminate(ProcOutcome::kFinished, clock_);
  } catch (const ProcessFailedSignal&) {
    terminate(ProcOutcome::kFailed, clock_);
  } catch (const ProcessAbortSignal&) {
    terminate(ProcOutcome::kAborted, clock_);
  }
}

namespace {

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

void SimProcess::fold_native_time() {
  if (!config_.measured_compute) return;
  const std::uint64_t now = thread_cpu_ns();
  if (last_native_ns_ != 0 && now > last_native_ns_) {
    advance_clock(proc_model_->scale_native(now - last_native_ns_));
  }
  last_native_ns_ = now;
}

void SimProcess::run_fiber() {
  if (terminated() || fiber_->finished()) return;
  if (config_.measured_compute) last_native_ns_ = thread_cpu_ns();
  in_fiber_ = true;
  fiber_->resume();
  in_fiber_ = false;
}

void SimProcess::maybe_run_fiber() {
  if (!started_ || in_fiber_) return;
  // Resume unless a recorded block condition says this wake cannot matter.
  // kNone (blocked outside a registered wait, or not blocked at all) always
  // resumes — the filter only ever skips provably spurious wakes.
  if (eager_wakeup_enabled() || wait_kind_ == WaitKind::kNone || wake_pending_) {
    wake_pending_ = false;
    run_fiber();
    return;
  }
  fiber_note_wakeup_suppressed();
}

void SimProcess::register_probe_wait(int comm_id, Rank src, Rank src_world, int tag) {
  wait_kind_ = WaitKind::kProbe;
  wait_comm_id_ = comm_id;
  wait_src_ = src;
  wait_src_world_ = src_world;
  wait_tag_ = tag;
}

void SimProcess::clear_wait() {
  wait_kind_ = WaitKind::kNone;
  wake_pending_ = false;
}

void SimProcess::note_request_done(Request& r) {
  if (r.waited) wake_pending_ = true;
}

void SimProcess::note_unexpected(const Envelope& env) {
  // Mirrors the probe() scan: a blocked probe observes exactly the messages
  // matching its (comm, source, tag) spec.
  if (wait_kind_ != WaitKind::kProbe) return;
  if (env.comm_id != wait_comm_id_) return;
  if (wait_src_ != kAnySource && env.src_comm_rank != wait_src_) return;
  if (wait_tag_ != kAnyTag && env.tag != wait_tag_) return;
  wake_pending_ = true;
}

void SimProcess::block_until(const std::function<bool()>& ready) {
  for (;;) {
    if (fault_.forced_failure != kSimTimeNever) {
      clock_ = std::max(clock_, fault_.forced_failure);
      fault_.forced_failure = kSimTimeNever;
      throw ProcessFailedSignal{};
    }
    if (fault_.forced_abort != kSimTimeNever) {
      clock_ = std::max(clock_, fault_.forced_abort);
      fault_.forced_abort = kSimTimeNever;
      throw ProcessAbortSignal{};
    }
    if (ready()) return;
    Fiber::yield();
  }
}

void SimProcess::terminate(ProcOutcome outcome, SimTime when) {
  assert(outcome != ProcOutcome::kRunning);
  outcome_ = outcome;
  end_time_ = when;
  if (outcome == ProcOutcome::kFailed) {
    hooks_->process_failed(*this, when);
  }
  hooks_->process_terminated(*this);
}

// ---------------------------------------------------------------------------
// Clock & signals
// ---------------------------------------------------------------------------

void SimProcess::advance_clock(SimTime dt, bool busy) {
  if (busy) {
    busy_time_ += dt;
  } else {
    comm_time_ += dt;
  }
  if (energy_ != nullptr && dt > 0) {
    if (busy) {
      energy_->add_busy(world_rank_, dt);
    } else {
      energy_->add_comm(world_rank_, dt);
    }
  }
  clock_ += dt;
  if (soft_errors_.pending()) soft_errors_.apply_due(clock_);
  check_signals();
}

void SimProcess::register_memory(const std::string& name, void* ptr, std::size_t bytes) {
  soft_errors_.register_region(name, ptr, bytes);
}

void SimProcess::unregister_memory(const std::string& name) {
  soft_errors_.unregister_region(name);
}

std::size_t SimProcess::registered_bytes() const { return soft_errors_.registered_bytes(); }

void SimProcess::schedule_bit_flip(SimTime t, std::uint64_t bit_index) {
  soft_errors_.schedule_flip(t, bit_index);
}

void SimProcess::raise_clock_to(SimTime t, bool busy) {
  if (t > clock_) advance_clock(t - clock_, busy);
}

void SimProcess::check_signals() {
  // Failure takes precedence over abort at the same activation point.
  if (clock_ >= fault_.time_of_failure) throw ProcessFailedSignal{};
  if (clock_ >= fault_.pending_abort) throw ProcessAbortSignal{};
}

void SimProcess::fail_now() {
  fault_.time_of_failure = std::min(fault_.time_of_failure, clock_);
  throw ProcessFailedSignal{};
}

void SimProcess::abort_now() {
  // Paper §IV-D: informational message, then simulator-internal broadcast of
  // the abort and its time.
  hooks_->abort_called(*this, clock_);
  throw ProcessAbortSignal{};
}

Err SimProcess::apply_error_handler(Comm& comm, Err e) {
  if (e == Err::kSuccess) return e;
  using resilience::ErrorAction;
  switch (resilience::ErrorHandlerPolicy::dispatch(comm.handler,
                                                   static_cast<bool>(comm.user_handler))) {
    case ErrorAction::kAbort:
      abort_now();  // does not return
    case ErrorAction::kInvokeUserThenReturn:
      comm.user_handler(*context_, comm, e);
      return e;
    case ErrorAction::kReturn:
      return e;
  }
  return e;
}

// ---------------------------------------------------------------------------
// Engine-side event handling
// ---------------------------------------------------------------------------

void SimProcess::on_event(Engine& engine, Event&& ev) {
  (void)engine;
  if (ev.kind == kEvStart) {
    if (terminated()) return;
    started_ = true;
    run_fiber();
    return;
  }
  if (terminated()) return;  // Late arrivals to finished/aborted processes.

  switch (ev.kind) {
    case kEvMsgArrival:
      handle_msg_arrival(static_cast<MsgPayload&>(*ev.payload), ev.time);
      break;
    case kEvCtsArrival:
      handle_cts(static_cast<CtsPayload&>(*ev.payload), ev.time);
      break;
    case kEvDataArrival:
      handle_data(static_cast<DataPayload&>(*ev.payload), ev.time);
      break;
    case kEvFailureActivation:
      handle_failure_activation(ev.time);
      break;
    case kEvFailureNotice:
      handle_failure_notice(static_cast<FailureNoticePayload&>(*ev.payload), ev.time);
      break;
    case kEvAbortNotice:
      handle_abort_notice(static_cast<AbortNoticePayload&>(*ev.payload), ev.time);
      break;
    case kEvErrorWakeup:
      handle_error_wakeup(static_cast<ErrorWakeupPayload&>(*ev.payload));
      break;
    case kEvRevokeNotice: {
      auto& p = static_cast<RevokeNoticePayload&>(*ev.payload);
      apply_revoke(p.comm_id, p.time);
      break;
    }
    default:
      throw std::logic_error("unknown event kind");
  }
}

void SimProcess::handle_msg_arrival(MsgPayload& p, SimTime t) {
  if (!try_match_posted(p.env, std::move(p.data), t)) {
    // No matching posted receive yet: unexpected queue (normal MPI behavior).
    note_unexpected(p.env);
    auto& bucket = unexpected_[{p.env.comm_id, p.env.src_comm_rank}];
    bucket.push_back(UnexpectedMsg{p.env, std::move(p.data), t, next_arrival_seq_++});
  }
  maybe_run_fiber();
}

void SimProcess::handle_cts(CtsPayload& p, SimTime t) {
  for (auto& r : requests_) {
    if (r->kind == Request::Kind::kSend && r->stage == Request::Stage::kAwaitingCts &&
        r->rdv_id == p.rdv_id) {
      // Clear-to-send: the NIC injects the payload now. The sender's request
      // completes once injection finishes; the receiver gets the bulk data
      // after the in-flight time.
      const SimTime inject_done = t + fabric_->occupancy(r->bytes);
      auto data = std::make_unique<DataPayload>();
      data->rdv_id = r->rdv_id;
      data->bytes = r->bytes;
      data->data = std::move(r->send_data);
      engine_->schedule(t + fabric_->delivery_at(t, world_rank_, r->peer_world_rank, r->bytes),
                        r->peer_world_rank, kEvDataArrival, std::move(data));
      if (energy_ != nullptr) energy_->add_traffic(world_rank_, r->bytes);
      r->stage = Request::Stage::kDone;
      r->complete_time = inject_done;
      r->status.error = Err::kSuccess;
      note_request_done(*r);
      maybe_run_fiber();
      return;
    }
  }
  // Sender request vanished (errored out via timeout release) — drop the CTS.
}

void SimProcess::handle_data(DataPayload& p, SimTime t) {
  for (auto& r : requests_) {
    if (r->kind == Request::Kind::kRecv && r->stage == Request::Stage::kAwaitingData &&
        r->rdv_id == p.rdv_id) {
      if (r->recv_buffer != nullptr && !p.data.empty()) {
        std::memcpy(r->recv_buffer, p.data.data(), std::min(r->bytes, p.data.size()));
      }
      r->status.bytes = p.bytes;
      r->status.error = p.bytes > r->bytes ? Err::kTruncate : Err::kSuccess;
      r->stage = Request::Stage::kDone;
      r->complete_time = t + fabric_->receiver_overhead();
      note_request_done(*r);
      maybe_run_fiber();
      return;
    }
  }
}

void SimProcess::inject_failure_at(SimTime t) {
  const SimTime when = std::max(t, clock_);
  fault_.time_of_failure = std::min(fault_.time_of_failure, when);
  engine_->schedule(when, world_rank_, kEvFailureActivation, nullptr, EventPriority::kControl);
}

void SimProcess::handle_failure_activation(SimTime t) {
  // The scheduled time is the *earliest* failure time; the process actually
  // fails when the simulator has control with clock >= that time (§IV-B).
  if (fault_.time_of_failure == kSimTimeNever) fault_.time_of_failure = t;
  if (!started_) {
    // Failure before the process ever ran.
    terminate(ProcOutcome::kFailed, std::max(clock_, t));
    return;
  }
  // The process is blocked (a started, non-terminated process is always
  // parked in block_until between events). Force the unwind at
  // max(clock, scheduled time).
  fault_.forced_failure = std::max(clock_, t);
  run_fiber();
}

void SimProcess::handle_failure_notice(FailureNoticePayload& p, SimTime t) {
  if (notice_log_ != nullptr) {
    notice_log_->record(world_rank_, p.failed_rank, p.time_of_failure, t);
  }
  fault_.record_peer_failure(p.failed_rank, p.time_of_failure, p.detect_time);
  fail_requests_on_notice(p.failed_rank, p.time_of_failure, p.detect_time);
  // A probe on the failed rank can now return kProcFailed. Notices never
  // resume the fiber themselves (eager mode doesn't either); mark the flip so
  // the next wake site lets the probe re-scan.
  if (wait_kind_ == WaitKind::kProbe && wait_src_world_ == p.failed_rank) {
    wake_pending_ = true;
  }
}

void SimProcess::fail_requests_on_notice(Rank failed_rank, SimTime t_fail, SimTime t_detect) {
  // Release (and fail) blocked requests involving the failed process after a
  // simulated communication timeout (paper §IV-C).
  for (auto& r : requests_) {
    if (r->done() || r->error_wakeup_scheduled) continue;
    const bool unmatched_recv = r->kind == Request::Kind::kRecv &&
                                r->stage == Request::Stage::kPosted &&
                                r->peer_world_rank == failed_rank;
    const bool rendezvous_recv = r->kind == Request::Kind::kRecv &&
                                 r->stage == Request::Stage::kAwaitingData &&
                                 r->peer_world_rank == failed_rank;
    const bool waiting_send = r->kind == Request::Kind::kSend &&
                              r->stage == Request::Stage::kAwaitingCts &&
                              r->peer_world_rank == failed_rank;
    if (unmatched_recv || rendezvous_recv || waiting_send) {
      schedule_error_wakeup(*r, t_fail, failed_rank, t_detect);
    }
  }
}

void SimProcess::schedule_error_wakeup(Request& r, SimTime t_fail, Rank peer_world,
                                       SimTime t_detect) {
  auto p = std::make_unique<ErrorWakeupPayload>();
  p->request_serial = r.serial;
  p->error = Err::kProcFailed;
  // §IV-C timeout release, floored at the detector's notice delivery time:
  // the error cannot surface before this process learned of the failure.
  // With the paper-instant detector t_detect == t_fail and the floor is a
  // no-op, preserving the paper's exact release times.
  p->error_time = std::max(
      std::max(r.post_time, t_fail) + fabric_->failure_timeout(world_rank_, peer_world),
      t_detect);
  r.error_wakeup_scheduled = true;
  // Read the time out before std::move(p): parameter construction order is
  // unspecified, and moving first would null p under this call.
  const SimTime when = p->error_time;
  engine_->schedule(when, world_rank_, kEvErrorWakeup, std::move(p),
                    EventPriority::kControl);
}

void SimProcess::handle_error_wakeup(ErrorWakeupPayload& p) {
  Request* r = find_request(p.request_serial);
  if (r == nullptr || r->done()) return;  // Completed successfully in the meantime.
  unindex_posted(*r);
  r->stage = Request::Stage::kDone;
  r->complete_time = p.error_time;
  r->status.error = p.error;
  note_request_done(*r);
  maybe_run_fiber();
}

void SimProcess::handle_abort_notice(AbortNoticePayload& p, SimTime t) {
  (void)t;
  // Abort activates when the process's clock reaches/passes the abort time
  // (§IV-D). A process with a completion in flight finishes that operation
  // first; one blocked with nothing coming is released at engine stall.
  fault_.pending_abort = std::min(fault_.pending_abort, p.time_of_abort);
  if (started_ && !in_fiber_) run_fiber();  // Re-evaluate wait predicates.
}

bool SimProcess::on_stall(Engine& engine) {
  (void)engine;
  if (!started_ || terminated()) return false;

  // Pending abort with nothing left in flight: abort now at
  // max(clock, time of abort).
  if (fault_.pending_abort != kSimTimeNever) {
    fault_.forced_abort = std::max(clock_, fault_.pending_abort);
    run_fiber();
    return true;
  }

  // Scheduled failure whose activation event was consumed... cannot happen
  // (activation resumes us). What can strand us: unmatched MPI_ANY_SOURCE
  // receives (and probes) whose peers failed — released here through the
  // conservative-sync deadlock detection (paper §IV-C).
  bool progressed = false;
  for (auto& r : requests_) {
    if (r->done() || r->kind != Request::Kind::kRecv ||
        r->stage != Request::Stage::kPosted || r->peer_comm_rank != kAnySource) {
      continue;
    }
    // Earliest failed member of the request's communicator.
    const Comm* comm = nullptr;
    for (const auto& c : comms_) {
      if (c->id == r->comm_id) {
        comm = c.get();
        break;
      }
    }
    if (comm == nullptr) continue;
    Rank failed = -1;
    SimTime t_fail = kSimTimeNever;
    for (const auto& [peer, when] : fault_.failed_peers()) {
      if (comm->rank_of_world(peer) >= 0 && when < t_fail) {
        failed = peer;
        t_fail = when;
      }
    }
    if (failed < 0) continue;
    unindex_posted(*r);
    r->stage = Request::Stage::kDone;
    r->complete_time = std::max(
        std::max(r->post_time, t_fail) + fabric_->failure_timeout(world_rank_, failed),
        fault_.peer_detect_time(failed));
    r->status.error = Err::kProcFailed;
    progressed = true;
  }
  if (progressed) {
    run_fiber();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Matching engine
// ---------------------------------------------------------------------------

Request* SimProcess::find_request(std::uint64_t serial) {
  for (auto& r : requests_) {
    if (r->serial == serial) return r.get();
  }
  return nullptr;
}

bool SimProcess::match(const Envelope& env, const Request& r) const {
  if (r.kind != Request::Kind::kRecv || r.stage != Request::Stage::kPosted) return false;
  if (r.comm_id != env.comm_id) return false;
  if (r.peer_comm_rank != kAnySource && r.peer_comm_rank != env.src_comm_rank) return false;
  if (r.tag != kAnyTag && r.tag != env.tag) return false;
  return true;
}

void SimProcess::index_posted(Request& r) {
  if (r.peer_comm_rank == kAnySource) {
    posted_any_.push_back(&r);
  } else {
    posted_[{r.comm_id, r.peer_comm_rank}].push_back(&r);
  }
}

void SimProcess::unindex_posted(const Request& r) {
  // Only posted receives are indexed; anything else is a no-op. Callers
  // invoke this before changing the stage, so the guard sees kPosted.
  if (r.kind != Request::Kind::kRecv || r.stage != Request::Stage::kPosted) return;
  auto erase_from = [&r](std::deque<Request*>& dq) {
    for (auto it = dq.begin(); it != dq.end(); ++it) {
      if (*it == &r) {
        dq.erase(it);
        return;
      }
    }
  };
  if (r.peer_comm_rank == kAnySource) {
    erase_from(posted_any_);
  } else {
    auto bit = posted_.find({r.comm_id, r.peer_comm_rank});
    if (bit != posted_.end()) {
      erase_from(bit->second);
      if (bit->second.empty()) posted_.erase(bit);
    }
  }
}

void SimProcess::complete_recv_from_msg(Request& r, const Envelope& env,
                                        util::PayloadBuf&& data, SimTime arrival) {
  unindex_posted(r);
  if (r.recv_buffer != nullptr && !data.empty()) {
    std::memcpy(r.recv_buffer, data.data(), std::min(r.bytes, data.size()));
  }
  r.stage = Request::Stage::kDone;
  r.complete_time = std::max(r.post_time, arrival) + fabric_->receiver_overhead();
  r.status.source = env.src_comm_rank;
  r.status.tag = env.tag;
  r.status.bytes = env.bytes;
  r.status.error = env.bytes > r.bytes ? Err::kTruncate : Err::kSuccess;
  r.peer_world_rank = env.src_world_rank;
  note_request_done(r);
}

void SimProcess::start_rendezvous_recv(Request& r, const Envelope& env, SimTime arrival) {
  unindex_posted(r);
  // Match time: when this receiver processes the RTS. CTS flies back to the
  // sender; the bulk data will arrive as a kEvDataArrival.
  const SimTime match_time = std::max(r.post_time, arrival) + fabric_->receiver_overhead();
  auto cts = std::make_unique<CtsPayload>();
  cts->rdv_id = env.rdv_id;
  engine_->schedule(
      match_time + fabric_->delivery_at(match_time, world_rank_, env.src_world_rank, 0),
      env.src_world_rank, kEvCtsArrival, std::move(cts));
  r.stage = Request::Stage::kAwaitingData;
  r.rdv_id = env.rdv_id;
  r.peer_world_rank = env.src_world_rank;
  r.status.source = env.src_comm_rank;
  r.status.tag = env.tag;
}

bool SimProcess::try_match_posted(const Envelope& env, util::PayloadBuf&& data,
                                  SimTime arrival) {
  // MPI matching order: the earliest-posted matching receive wins. Serials
  // are post-ordered and both index structures keep post order, so the
  // winner is the lower-serial of the first tag-compatible entry in the
  // explicit (comm, source) bucket and in the ANY_SOURCE side list.
  Request* best = nullptr;
  auto bit = posted_.find({env.comm_id, env.src_comm_rank});
  if (bit != posted_.end()) {
    for (Request* r : bit->second) {
      if (match(env, *r)) {
        best = r;
        break;
      }
    }
  }
  for (Request* r : posted_any_) {
    if (best != nullptr && r->serial >= best->serial) break;
    if (match(env, *r)) {
      best = r;
      break;
    }
  }
  if (best == nullptr) return false;
  if (env.rendezvous) {
    start_rendezvous_recv(*best, env, arrival);
  } else {
    complete_recv_from_msg(*best, env, std::move(data), arrival);
  }
  return true;
}

bool SimProcess::try_match_unexpected(Request& r) {
  // Locate the matching unexpected message with the smallest arrival seq.
  std::deque<UnexpectedMsg>* best_bucket = nullptr;
  std::deque<UnexpectedMsg>::iterator best;

  auto consider_bucket = [&](std::deque<UnexpectedMsg>& bucket) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (!match(it->env, r)) continue;
      if (best_bucket == nullptr || it->arrival_seq < best->arrival_seq) {
        best_bucket = &bucket;
        best = it;
      }
      return;  // Per-source buckets are arrival-ordered: first match wins.
    }
  };

  if (r.peer_comm_rank != kAnySource) {
    auto bit = unexpected_.find({r.comm_id, r.peer_comm_rank});
    if (bit != unexpected_.end()) consider_bucket(bit->second);
  } else {
    // ANY_SOURCE: the earliest matching arrival across all of this
    // communicator's source buckets (deterministic via arrival_seq).
    for (auto bit = unexpected_.lower_bound({r.comm_id, 0});
         bit != unexpected_.end() && bit->first.first == r.comm_id; ++bit) {
      consider_bucket(bit->second);
    }
  }
  if (best_bucket == nullptr) return false;

  if (best->env.rendezvous) {
    start_rendezvous_recv(r, best->env, best->arrival_time);
  } else {
    complete_recv_from_msg(r, best->env, std::move(best->data), best->arrival_time);
  }
  best_bucket->erase(best);
  return true;
}

void SimProcess::record_trace(const Request& r) {
  TraceRecord rec;
  rec.op = r.kind == Request::Kind::kSend ? TraceRecord::Op::kSend : TraceRecord::Op::kRecv;
  rec.rank = world_rank_;
  rec.start = r.post_time;
  rec.end = r.complete_time;
  rec.peer = r.kind == Request::Kind::kSend ? r.peer_world_rank
                                            : (r.peer_world_rank >= 0 ? r.peer_world_rank
                                                                      : kAnySource);
  rec.tag = r.kind == Request::Kind::kSend ? r.tag : r.status.tag;
  rec.bytes = r.kind == Request::Kind::kSend ? r.bytes : r.status.bytes;
  rec.error = r.status.error;
  trace_->record(rec);
}

void SimProcess::release_request(std::uint64_t serial) {
  for (auto it = requests_.begin(); it != requests_.end(); ++it) {
    if ((*it)->serial == serial) {
      unindex_posted(**it);
      requests_.erase(it);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Posting & waiting (application-fiber side)
// ---------------------------------------------------------------------------

RequestHandle SimProcess::post_send(Comm& comm, Rank dest, int tag, const void* data,
                                    std::size_t bytes, bool allow_revoked) {
  if (dest < 0 || dest >= comm.size()) throw std::invalid_argument("bad destination rank");
  if (tag == kAnyTag) throw std::invalid_argument("kAnyTag invalid for sends");

  auto req = std::make_unique<Request>();
  req->serial = next_serial_++;
  req->kind = Request::Kind::kSend;
  req->comm_id = comm.id;
  req->peer_comm_rank = dest;
  req->peer_world_rank = comm.world_of(dest);
  req->tag = tag;
  req->bytes = bytes;
  req->post_time = clock_;

  if (comm.revoked && !allow_revoked) {
    req->stage = Request::Stage::kDone;
    req->complete_time = clock_;
    req->status.error = Err::kRevoked;
    RequestHandle h{req->serial};
    requests_.push_back(std::move(req));
    return h;
  }
  req->survives_revoke = allow_revoked;

  Envelope env;
  env.comm_id = comm.id;
  env.src_comm_rank = comm.my_rank;
  env.src_world_rank = world_rank_;
  env.tag = tag;
  env.bytes = bytes;

  const SimTime t0 = clock_;
  if (fabric_->protocol_for(bytes) == Protocol::kEager) {
    // Eager: payload is buffered into the network; the send request is
    // locally complete after NIC injection.
    advance_clock(fabric_->occupancy(bytes), /*busy=*/false);
    auto msg = std::make_unique<MsgPayload>();
    msg->env = env;
    if (data != nullptr && bytes > 0) msg->data.assign(data, bytes);
    engine_->schedule(t0 + fabric_->delivery_at(t0, world_rank_, req->peer_world_rank, bytes),
                      req->peer_world_rank, kEvMsgArrival, std::move(msg));
    if (energy_ != nullptr) energy_->add_traffic(world_rank_, bytes);
    req->stage = Request::Stage::kDone;
    req->complete_time = clock_;
    req->status.error = Err::kSuccess;
  } else {
    // Rendezvous: a zero-byte RTS goes out; the payload is captured so the
    // data can be injected when the CTS comes back (also for isend).
    env.rendezvous = true;
    env.rdv_id = (static_cast<std::uint64_t>(world_rank_) << 32) | next_rdv_++;
    req->rdv_id = env.rdv_id;
    if (data != nullptr && bytes > 0) req->send_data.assign(data, bytes);
    advance_clock(fabric_->occupancy(0), /*busy=*/false);
    auto rts = std::make_unique<MsgPayload>();
    rts->env = env;
    engine_->schedule(t0 + fabric_->delivery_at(t0, world_rank_, req->peer_world_rank, 0),
                      req->peer_world_rank, kEvMsgArrival, std::move(rts));
    req->stage = Request::Stage::kAwaitingCts;

    // Sending to a peer already known failed: the RTS will be dropped;
    // schedule the timeout release right away (§IV-C: "any message send
    // requests waited on after receiving the ... notification fail based on
    // this list").
    if (fault_.knows_failed(req->peer_world_rank)) {
      schedule_error_wakeup(*req, fault_.peer_failure_time(req->peer_world_rank),
                            req->peer_world_rank,
                            fault_.peer_detect_time(req->peer_world_rank));
    }
  }

  RequestHandle h{req->serial};
  requests_.push_back(std::move(req));
  return h;
}

RequestHandle SimProcess::post_recv(Comm& comm, Rank src, int tag, void* buffer,
                                    std::size_t capacity, bool allow_revoked) {
  if (src != kAnySource && (src < 0 || src >= comm.size())) {
    throw std::invalid_argument("bad source rank");
  }

  auto req = std::make_unique<Request>();
  req->serial = next_serial_++;
  req->kind = Request::Kind::kRecv;
  req->comm_id = comm.id;
  req->peer_comm_rank = src;
  req->peer_world_rank = src == kAnySource ? -1 : comm.world_of(src);
  req->tag = tag;
  req->bytes = capacity;
  req->recv_buffer = buffer;
  req->post_time = clock_;

  req->survives_revoke = allow_revoked;
  if (comm.revoked && !allow_revoked) {
    req->stage = Request::Stage::kDone;
    req->complete_time = clock_;
    req->status.error = Err::kRevoked;
  } else if (!try_match_unexpected(*req)) {
    // Unmatched: if the explicit source is already known failed, the receive
    // can only ever time out (§IV-C).
    if (src != kAnySource && fault_.knows_failed(req->peer_world_rank)) {
      schedule_error_wakeup(*req, fault_.peer_failure_time(req->peer_world_rank),
                            req->peer_world_rank,
                            fault_.peer_detect_time(req->peer_world_rank));
    }
  } else if (req->stage == Request::Stage::kAwaitingData) {
    // Matched a rendezvous RTS from a sender that already failed (the
    // failure notice predates this post): the CTS goes to a dead process and
    // the data will never come -- release by timeout like any other wait on
    // a failed peer.
    if (fault_.knows_failed(req->peer_world_rank)) {
      schedule_error_wakeup(*req, fault_.peer_failure_time(req->peer_world_rank),
                            req->peer_world_rank,
                            fault_.peer_detect_time(req->peer_world_rank));
    }
  }

  RequestHandle h{req->serial};
  Request* raw = req.get();
  requests_.push_back(std::move(req));
  // Still unmatched: make it findable by future arrivals.
  if (raw->stage == Request::Stage::kPosted) index_posted(*raw);
  return h;
}

Err SimProcess::wait_all(const std::vector<RequestHandle>& handles,
                         std::vector<MsgStatus>* statuses) {
  // Record the wait-set so event handlers can tell a completion that
  // satisfies this wait from unrelated traffic (wakeup filter).
  wait_kind_ = WaitKind::kRequests;
  for (const auto& h : handles) {
    Request* r = find_request(h.serial);
    if (r != nullptr && !r->done()) r->waited = true;
  }
  block_until([this, &handles] {
    for (const auto& h : handles) {
      Request* r = find_request(h.serial);
      if (r != nullptr && !r->done()) return false;
    }
    return true;
  });
  clear_wait();

  // Raise the clock to the latest completion among the waited requests (the
  // time the whole wait set is satisfied), then report.
  SimTime latest = clock_;
  Err first_error = Err::kSuccess;
  if (statuses != nullptr) statuses->clear();
  for (const auto& h : handles) {
    Request* r = find_request(h.serial);
    if (r == nullptr) {
      // Already released (double wait): report an empty success status.
      if (statuses != nullptr) statuses->push_back(MsgStatus{});
      continue;
    }
    latest = std::max(latest, r->complete_time);
    if (statuses != nullptr) statuses->push_back(r->status);
    if (first_error == Err::kSuccess && r->status.error != Err::kSuccess) {
      first_error = r->status.error;
    }
    if (trace_ != nullptr) record_trace(*r);
  }
  for (const auto& h : handles) release_request(h.serial);
  raise_clock_to(latest, /*busy=*/false);
  return first_error;
}

bool SimProcess::test(RequestHandle h, MsgStatus* status, Err* err) {
  advance_clock(0);  // Clock-update point: failure/abort activation (§IV-A).
  Request* r = find_request(h.serial);
  if (r == nullptr) {
    if (err != nullptr) *err = Err::kInvalidArg;
    return true;
  }
  if (!r->done()) return false;
  if (trace_ != nullptr) record_trace(*r);
  raise_clock_to(r->complete_time, /*busy=*/false);
  if (status != nullptr) *status = r->status;
  if (err != nullptr) *err = r->status.error;
  release_request(h.serial);
  return true;
}

Err SimProcess::probe(Comm& comm, Rank src, int tag, MsgStatus* status) {
  const SimTime post_time = clock_;
  const UnexpectedMsg* found = nullptr;
  Rank failed_peer = -1;
  SimTime t_fail = kSimTimeNever;

  auto scan = [&]() -> bool {
    auto scan_bucket = [&](const std::deque<UnexpectedMsg>& bucket) -> bool {
      for (const auto& m : bucket) {
        if (tag != kAnyTag && m.env.tag != tag) continue;
        if (found == nullptr || m.arrival_seq < found->arrival_seq) found = &m;
        return true;
      }
      return false;
    };
    found = nullptr;
    if (src != kAnySource) {
      auto bit = unexpected_.find({comm.id, src});
      if (bit != unexpected_.end()) scan_bucket(bit->second);
    } else {
      for (auto bit = unexpected_.lower_bound({comm.id, 0});
           bit != unexpected_.end() && bit->first.first == comm.id; ++bit) {
        scan_bucket(bit->second);
      }
    }
    if (found != nullptr) return true;
    if (src != kAnySource && fault_.knows_failed(comm.world_of(src))) {
      failed_peer = comm.world_of(src);
      t_fail = fault_.peer_failure_time(failed_peer);
      return true;
    }
    return false;
  };

  register_probe_wait(comm.id, src, src == kAnySource ? -1 : comm.world_of(src), tag);
  block_until(scan);
  clear_wait();
  if (found != nullptr) {
    raise_clock_to(std::max(post_time, found->arrival_time) + fabric_->receiver_overhead(),
                   /*busy=*/false);
    if (status != nullptr) {
      status->source = found->env.src_comm_rank;
      status->tag = found->env.tag;
      status->bytes = found->env.bytes;
      status->error = Err::kSuccess;
    }
    return Err::kSuccess;
  }
  raise_clock_to(
      std::max(std::max(post_time, t_fail) + fabric_->failure_timeout(world_rank_, failed_peer),
               fault_.peer_detect_time(failed_peer)),
      /*busy=*/false);
  if (status != nullptr) status->error = Err::kProcFailed;
  return Err::kProcFailed;
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm* SimProcess::new_comm(int id, std::vector<Rank> members, const Comm& inherit_from) {
  auto c = std::make_unique<Comm>();
  c->id = id;
  c->set_members(std::move(members));
  c->my_rank = c->rank_of_world(world_rank_);
  c->handler = inherit_from.handler;
  c->user_handler = inherit_from.user_handler;
  Comm* out = c.get();
  comms_.push_back(std::move(c));
  return out;
}

Comm* SimProcess::comm_dup(Comm& parent) {
  const int id = registry_->id_for(parent.id, parent.split_seq++, /*color=*/0);
  auto c = std::make_unique<Comm>();
  c->id = id;
  // A dup of the identity (world-shaped) communicator stays identity — O(1)
  // storage, which matters with tens of thousands of processes.
  if (parent.size() == world_size_ && parent.world_of(0) == 0 &&
      parent.world_of(parent.size() - 1) == parent.size() - 1) {
    c->set_identity_members(parent.size());
  } else {
    c->set_members(parent.members_snapshot());
  }
  c->my_rank = c->rank_of_world(world_rank_);
  c->handler = parent.handler;
  c->user_handler = parent.user_handler;
  Comm* out = c.get();
  comms_.push_back(std::move(c));
  return out;
}

Comm* SimProcess::comm_shrink(Comm& parent) {
  // Surviving membership from the simulator-global view (documented
  // shortcut); ordering preserved from the parent.
  const auto alive = hooks_->alive_world_ranks();
  std::vector<Rank> members;
  for (Rank r = 0; r < parent.size(); ++r) {
    const Rank m = parent.world_of(r);
    if (std::find(alive.begin(), alive.end(), m) != alive.end()) members.push_back(m);
  }
  const int id = registry_->id_for(parent.id, parent.split_seq++, /*color=*/-2);
  return new_comm(id, std::move(members), parent);
}

void SimProcess::comm_revoke(Comm& comm) {
  if (comm.revoked) return;
  comm.revoked = true;
  apply_revoke(comm.id, clock_);  // Fail own pending ops on this communicator too.
  hooks_->comm_revoked(*this, comm.id, clock_);
}

void SimProcess::apply_revoke(int comm_id, SimTime when) {
  for (auto& c : comms_) {
    if (c->id == comm_id) c->revoked = true;
  }
  // ULFM: pending operations on a revoked communicator complete with
  // kRevoked once the revoke notice reaches this process.
  bool any = false;
  for (auto& r : requests_) {
    if (r->done() || r->comm_id != comm_id || r->survives_revoke) continue;
    unindex_posted(*r);
    r->stage = Request::Stage::kDone;
    r->complete_time = std::max(r->post_time, when);
    r->status.error = Err::kRevoked;
    note_request_done(*r);
    any = true;
  }
  if (any) maybe_run_fiber();
}

void SimProcess::failure_ack(Comm& comm) {
  fault_.ack_failures(comm.id, [&comm](int world) { return comm.rank_of_world(world) >= 0; });
}

std::vector<Rank> SimProcess::failure_get_acked(Comm& comm) const {
  return fault_.acked(comm.id);
}

}  // namespace exasim::vmpi
