#include "vmpi/context.hpp"

#include <stdexcept>

#include "vmpi/process.hpp"

namespace exasim::vmpi {

// ---------------------------------------------------------------------------
// Identity & time
// ---------------------------------------------------------------------------

int Context::rank() const { return proc_->world_rank(); }
int Context::size() const { return proc_->world_size(); }
Comm& Context::world() { return proc_->world_comm(); }
double Context::wtime() const {
  const_cast<SimProcess*>(proc_)->fold_native_time();
  return to_seconds(proc_->clock());
}
SimTime Context::now() const {
  const_cast<SimProcess*>(proc_)->fold_native_time();
  return proc_->clock();
}

// ---------------------------------------------------------------------------
// Compute modeling
// ---------------------------------------------------------------------------

void Context::compute(double units) {
  proc_->fold_native_time();
  proc_->advance_clock(proc_->proc_model().work_time(units));
}

void Context::compute_reference_seconds(double s) {
  proc_->fold_native_time();
  proc_->advance_clock(proc_->proc_model().reference_seconds(s));
}

void Context::elapse(SimTime dt) {
  proc_->fold_native_time();
  proc_->advance_clock(dt);
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

Err Context::raw_send(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes) {
  proc_->fold_native_time();
  RequestHandle h = proc_->post_send(comm, dest, tag, data, bytes);
  std::vector<MsgStatus> st;
  return proc_->wait_all({h}, &st);
}

Err Context::raw_recv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
                      MsgStatus* status) {
  proc_->fold_native_time();
  RequestHandle h = proc_->post_recv(comm, src, tag, buffer, capacity);
  std::vector<MsgStatus> st;
  Err e = proc_->wait_all({h}, &st);
  if (status != nullptr && !st.empty()) *status = st.front();
  return e;
}

Err Context::send(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes) {
  if (tag < 0) throw std::invalid_argument("application tags must be >= 0");
  return proc_->apply_error_handler(comm, raw_send(comm, dest, tag, data, bytes));
}

Err Context::recv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
                  MsgStatus* status) {
  if (tag < 0 && tag != kAnyTag) throw std::invalid_argument("application tags must be >= 0");
  return proc_->apply_error_handler(comm, raw_recv(comm, src, tag, buffer, capacity, status));
}

Err Context::send_modeled(Comm& comm, Rank dest, int tag, std::size_t bytes) {
  if (tag < 0) throw std::invalid_argument("application tags must be >= 0");
  return proc_->apply_error_handler(comm, raw_send(comm, dest, tag, nullptr, bytes));
}

Err Context::recv_modeled(Comm& comm, Rank src, int tag, std::size_t bytes, MsgStatus* status) {
  if (tag < 0 && tag != kAnyTag) throw std::invalid_argument("application tags must be >= 0");
  return proc_->apply_error_handler(comm, raw_recv(comm, src, tag, nullptr, bytes, status));
}

Err Context::sendrecv(Comm& comm, Rank dest, int send_tag, const void* send_data,
                      std::size_t send_bytes, Rank src, int recv_tag, void* recv_buffer,
                      std::size_t recv_capacity, MsgStatus* status) {
  proc_->fold_native_time();
  RequestHandle rh = proc_->post_recv(comm, src, recv_tag, recv_buffer, recv_capacity);
  RequestHandle sh = proc_->post_send(comm, dest, send_tag, send_data, send_bytes);
  std::vector<MsgStatus> st;
  Err e = proc_->wait_all({rh, sh}, &st);
  if (status != nullptr && !st.empty()) *status = st.front();
  return proc_->apply_error_handler(comm, e);
}

Err Context::send(Rank dest, int tag, const void* data, std::size_t bytes) {
  return send(world(), dest, tag, data, bytes);
}

Err Context::recv(Rank src, int tag, void* buffer, std::size_t capacity, MsgStatus* status) {
  return recv(world(), src, tag, buffer, capacity, status);
}

RequestHandle Context::isend(Comm& comm, Rank dest, int tag, const void* data,
                             std::size_t bytes) {
  proc_->fold_native_time();
  return proc_->post_send(comm, dest, tag, data, bytes);
}

RequestHandle Context::irecv(Comm& comm, Rank src, int tag, void* buffer,
                             std::size_t capacity) {
  proc_->fold_native_time();
  return proc_->post_recv(comm, src, tag, buffer, capacity);
}

RequestHandle Context::isend_modeled(Comm& comm, Rank dest, int tag, std::size_t bytes) {
  return isend(comm, dest, tag, nullptr, bytes);
}

RequestHandle Context::irecv_modeled(Comm& comm, Rank src, int tag, std::size_t bytes) {
  return irecv(comm, src, tag, nullptr, bytes);
}

Err Context::wait(Comm& comm, RequestHandle h, MsgStatus* status) {
  proc_->fold_native_time();
  std::vector<MsgStatus> st;
  Err e = proc_->wait_all({h}, &st);
  if (status != nullptr && !st.empty()) *status = st.front();
  return proc_->apply_error_handler(comm, e);
}

Err Context::waitall(Comm& comm, const std::vector<RequestHandle>& handles,
                     std::vector<MsgStatus>* statuses) {
  proc_->fold_native_time();
  return proc_->apply_error_handler(comm, proc_->wait_all(handles, statuses));
}

bool Context::test(RequestHandle h, MsgStatus* status, Err* err) {
  proc_->fold_native_time();
  return proc_->test(h, status, err);
}

Err Context::probe(Comm& comm, Rank src, int tag, MsgStatus* status) {
  proc_->fold_native_time();
  return proc_->apply_error_handler(comm, proc_->probe(comm, src, tag, status));
}

// ---------------------------------------------------------------------------
// Communicator management
// ---------------------------------------------------------------------------

Comm* Context::comm_dup(Comm& comm) {
  Err e = barrier(comm);  // Communicator creation is collective.
  if (e != Err::kSuccess) return nullptr;
  return proc_->comm_dup(comm);
}

void Context::set_error_handler(Comm& comm, ErrorHandlerKind kind, UserErrorHandler handler) {
  comm.handler = kind;
  comm.user_handler = std::move(handler);
}

// ---------------------------------------------------------------------------
// Lifecycle & resilience
// ---------------------------------------------------------------------------

void Context::finalize() {
  proc_->fold_native_time();
  proc_->mark_finalized();
}

void Context::abort() { proc_->abort_now(); }

void Context::inject_failure_at(SimTime t) { proc_->inject_failure_at(t); }

void Context::inject_failure(SimTime delay) {
  proc_->inject_failure_at(proc_->clock() + delay);
}

void Context::fail_now() { proc_->fail_now(); }

const std::map<Rank, SimTime>& Context::failed_peers() const { return proc_->failed_peers(); }

// ---------------------------------------------------------------------------
// ULFM extension
// ---------------------------------------------------------------------------

void Context::trace_marker(const std::string& label) {
  if (proc_->trace() == nullptr) return;
  vmpi::TraceRecord rec;
  rec.op = vmpi::TraceRecord::Op::kMarker;
  rec.rank = proc_->world_rank();
  rec.start = rec.end = proc_->clock();
  rec.marker = label;
  proc_->trace()->record(rec);
}

void Context::register_memory(const std::string& name, void* ptr, std::size_t bytes) {
  proc_->register_memory(name, ptr, bytes);
}

void Context::unregister_memory(const std::string& name) { proc_->unregister_memory(name); }

void Context::schedule_bit_flip(SimTime t, std::uint64_t bit_index) {
  proc_->schedule_bit_flip(t, bit_index);
}

Err Context::comm_revoke(Comm& comm) {
  proc_->fold_native_time();
  proc_->comm_revoke(comm);
  return Err::kSuccess;
}

void Context::failure_ack(Comm& comm) { proc_->failure_ack(comm); }

std::vector<Rank> Context::failure_get_acked(Comm& comm) const {
  return proc_->failure_get_acked(comm);
}

}  // namespace exasim::vmpi
