#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "util/time.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/request.hpp"
#include "vmpi/types.hpp"

namespace exasim::vmpi {

class SimProcess;

/// The simulated application's view of the MPI layer — the analog of the MPI
/// API a native application links against under xSim's interposition library.
///
/// All calls run on the process's fiber. Blocking calls yield to the
/// simulator and resume when the simulated operation completes; every call
/// advances the process's virtual clock according to the network/processor
/// models and is a failure/abort activation point (paper §IV-A: the clock is
/// updated "every time a timing function is called ... or MPI communication
/// is performed").
///
/// Error reporting follows the communicator's error handler (paper §IV-D):
/// with the default kFatal handler a communication failure does not return —
/// it triggers MPI_Abort. With kReturn (or a user handler) the Err comes back
/// to the caller (ULFM-style).
class Context {
 public:
  explicit Context(SimProcess* proc) : proc_(proc) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // ---- Identity & time --------------------------------------------------
  int rank() const;           ///< World rank.
  int size() const;           ///< World size.
  Comm& world();              ///< MPI_COMM_WORLD.
  double wtime() const;       ///< MPI_Wtime: virtual seconds.
  SimTime now() const;        ///< Virtual clock in ns.

  // ---- Compute modeling ---------------------------------------------------
  /// Charges `units` abstract work units via the processor model.
  void compute(double units);
  /// Charges a duration given in reference-core seconds (the processor model
  /// applies the simulated node's slowdown).
  void compute_reference_seconds(double s);
  /// Advances the clock by an explicit simulated duration.
  void elapse(SimTime dt);

  // ---- Blocking point-to-point -------------------------------------------
  Err send(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes);
  Err recv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
           MsgStatus* status = nullptr);
  /// Size-only transfers for modeled (skeleton) applications: timing and
  /// matching as usual, no payload bytes carried.
  Err send_modeled(Comm& comm, Rank dest, int tag, std::size_t bytes);
  Err recv_modeled(Comm& comm, Rank src, int tag, std::size_t bytes,
                   MsgStatus* status = nullptr);
  /// Combined send+recv posted concurrently (deadlock-free halo exchanges).
  Err sendrecv(Comm& comm, Rank dest, int send_tag, const void* send_data,
               std::size_t send_bytes, Rank src, int recv_tag, void* recv_buffer,
               std::size_t recv_capacity, MsgStatus* status = nullptr);

  // World-communicator conveniences.
  Err send(Rank dest, int tag, const void* data, std::size_t bytes);
  Err recv(Rank src, int tag, void* buffer, std::size_t capacity, MsgStatus* status = nullptr);

  template <typename T>
  Err send_span(Comm& comm, Rank dest, int tag, std::span<const T> data) {
    return send(comm, dest, tag, data.data(), data.size_bytes());
  }
  template <typename T>
  Err recv_span(Comm& comm, Rank src, int tag, std::span<T> data, MsgStatus* status = nullptr) {
    return recv(comm, src, tag, data.data(), data.size_bytes(), status);
  }
  template <typename T>
  Err send_value(Comm& comm, Rank dest, int tag, const T& v) {
    return send(comm, dest, tag, &v, sizeof(T));
  }
  template <typename T>
  Err recv_value(Comm& comm, Rank src, int tag, T& v, MsgStatus* status = nullptr) {
    return recv(comm, src, tag, &v, sizeof(T), status);
  }

  // ---- Nonblocking point-to-point ------------------------------------------
  RequestHandle isend(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes);
  RequestHandle irecv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity);
  RequestHandle isend_modeled(Comm& comm, Rank dest, int tag, std::size_t bytes);
  RequestHandle irecv_modeled(Comm& comm, Rank src, int tag, std::size_t bytes);

  Err wait(Comm& comm, RequestHandle h, MsgStatus* status = nullptr);
  Err waitall(Comm& comm, const std::vector<RequestHandle>& handles,
              std::vector<MsgStatus>* statuses = nullptr);
  /// True if complete; on completion fills status/err and releases the handle.
  bool test(RequestHandle h, MsgStatus* status, Err* err);
  Err probe(Comm& comm, Rank src, int tag, MsgStatus* status);

  // ---- Collectives (linear algorithms, paper §V-C) ------------------------
  Err barrier(Comm& comm);
  Err bcast(Comm& comm, Rank root, void* data, std::size_t bytes);
  Err reduce(Comm& comm, Rank root, ReduceOp op, Dtype dtype, const void* in, void* out,
             std::size_t count);
  Err allreduce(Comm& comm, ReduceOp op, Dtype dtype, const void* in, void* out,
                std::size_t count);
  /// Gathers `bytes_each` from every rank into out (size * bytes_each) at root.
  Err gather(Comm& comm, Rank root, const void* in, std::size_t bytes_each, void* out);
  Err allgather(Comm& comm, const void* in, std::size_t bytes_each, void* out);
  /// Scatters consecutive `bytes_each` blocks from root to each rank.
  Err scatter(Comm& comm, Rank root, const void* in, std::size_t bytes_each, void* out);
  Err alltoall(Comm& comm, const void* in, std::size_t bytes_each, void* out);

  // ---- Communicator management ------------------------------------------
  Comm* comm_dup(Comm& comm);
  Comm* comm_split(Comm& comm, int color, int key);
  void set_error_handler(Comm& comm, ErrorHandlerKind kind, UserErrorHandler handler = {});

  // ---- Lifecycle & resilience ----------------------------------------------
  /// MPI_Finalize. Returning from the application main without calling this
  /// counts as a process failure (paper §IV-B).
  void finalize();
  /// MPI_Abort on MPI_COMM_WORLD. Does not return.
  [[noreturn]] void abort();
  /// Simulator-internal failure trigger (paper §IV-B): schedules this
  /// process's failure at virtual time t (>= current clock fires at the next
  /// clock update; pass now() to fail immediately at the next update).
  void inject_failure_at(SimTime t);
  /// Programmatic injection relative to now: schedules this process's failure
  /// `delay` after the current clock (delay 0 fires at the next clock update).
  void inject_failure(SimTime delay = 0);
  /// Fails this process right now. Does not return.
  [[noreturn]] void fail_now();

  /// This process's view of failed peers (world rank -> time of failure).
  const std::map<Rank, SimTime>& failed_peers() const;

  // ---- ULFM extension (paper §VI future-work item 3) ----------------------
  Err comm_revoke(Comm& comm);
  /// Collective among surviving members; returns the shrunken communicator.
  Comm* comm_shrink(Comm& comm);
  /// Collective agreement: flag becomes the AND of all alive contributions.
  Err comm_agree(Comm& comm, bool* flag);
  void failure_ack(Comm& comm);
  std::vector<Rank> failure_get_acked(Comm& comm) const;

  // ---- Soft-error injection (paper §VI future-work item 1) ----------------
  /// Registers an application state buffer with the simulator's memory
  /// tracking, making it a target for injected memory bit flips.
  void register_memory(const std::string& name, void* ptr, std::size_t bytes);
  void unregister_memory(const std::string& name);
  /// Schedules a memory bit flip at virtual time t (applies at the first
  /// clock update at/after t, like failure activation).
  void schedule_bit_flip(SimTime t, std::uint64_t bit_index);

  /// Emits a labeled marker into the machine's MPI trace (no-op when
  /// tracing is off) — phase annotations for performance investigation.
  void trace_marker(const std::string& label);

  /// Machine-provided service bag (checkpoint store, PFS model, ...).
  /// Opaque to vmpi; the core layer defines the concrete type.
  void* services = nullptr;

  SimProcess& process() { return *proc_; }

 private:
  // Raw p2p used by collectives: no error-handler application.
  Err raw_send(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes);
  Err raw_recv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
               MsgStatus* status);
  int coll_tag(Comm& comm, int phase) const;

  SimProcess* proc_;
};

}  // namespace exasim::vmpi
