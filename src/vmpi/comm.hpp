#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "vmpi/types.hpp"

namespace exasim::vmpi {

class Context;
struct Comm;

/// User-defined error handler (paper §IV-D: "xSim does support other error
/// handlers, such as MPI_ERRORS_RETURN and user-defined error handlers").
using UserErrorHandler = std::function<void(Context&, Comm&, Err)>;

/// A communicator as seen by one simulated process.
///
/// Membership is either *identity* (comm rank == world rank, used for
/// MPI_COMM_WORLD and its dups — O(1) storage, critical with tens of
/// thousands of simulated processes each holding their own communicator
/// objects) or an explicit ordered list of world ranks (splits/shrinks).
struct Comm {
  int id = 0;
  Rank my_rank = -1;          ///< This process's rank within the communicator.
  ErrorHandlerKind handler = ErrorHandlerKind::kFatal;
  UserErrorHandler user_handler;
  bool revoked = false;       ///< ULFM: set by Comm_revoke.
  std::uint64_t coll_seq = 0; ///< Per-communicator collective sequence number.
  std::uint64_t split_seq = 0;///< Per-communicator dup/split/shrink counter.
  /// ULFM recovery operations (shrink/agree) sequence their internal tags
  /// separately from coll_seq: after a failed collective, survivors'
  /// coll_seq values can legitimately diverge (some completed more phases
  /// than others before the error), but every survivor performs the same
  /// ordered sequence of recovery operations.
  std::uint64_t recovery_seq = 0;

  /// Sets identity membership over world ranks [0, n).
  void set_identity_members(int n) {
    identity_size_ = n;
    members_.clear();
  }

  /// Sets explicit membership (world ranks in communicator order).
  void set_members(std::vector<Rank> members) {
    identity_size_ = -1;
    members_ = std::move(members);
  }

  int size() const {
    return identity_size_ >= 0 ? identity_size_ : static_cast<int>(members_.size());
  }

  /// World rank of communicator rank r; r must be in [0, size()).
  Rank world_of(Rank r) const {
    return identity_size_ >= 0 ? r : members_.at(static_cast<std::size_t>(r));
  }

  /// Communicator rank of a world rank, or -1 if not a member.
  Rank rank_of_world(Rank world) const;

  /// Materializes the member list (world ranks in communicator order).
  std::vector<Rank> members_snapshot() const;

 private:
  int identity_size_ = -1;      ///< >= 0: identity membership of that size.
  std::vector<Rank> members_;   ///< Explicit membership when identity_size_ < 0.
};

/// Machine-global registry that hands out communicator ids.
///
/// Communicator creation (dup/split/shrink) is collective: every member calls
/// it in the same order, so the tuple (parent id, per-parent sequence number,
/// color) is identical at every member and maps to one new id. The registry
/// is shared simulator state — analogous to xSim keeping simulator-internal
/// bookkeeping outside the simulated processes.
class CommRegistry {
 public:
  static constexpr int kWorldId = 0;

  /// Returns the id for this (parent, seq, color) tuple, allocating on first
  /// use. Thread-safe: processes on different engine workers may create
  /// communicators concurrently. The *set* of (tuple → id) assignments is
  /// deterministic because every simulated schedule yields the same tuples;
  /// only the numeric ids may vary with first-request interleaving — nothing
  /// observable keys off the raw id value across runs.
  int id_for(int parent_id, std::uint64_t split_seq, int color);

 private:
  mutable std::mutex mu_;
  std::map<std::tuple<int, std::uint64_t, int>, int> ids_;
  int next_id_ = 1;
};

}  // namespace exasim::vmpi
