#pragma once

#include <cstddef>
#include <cstdint>

#include "pdes/event.hpp"
#include "resilience/notice.hpp"
#include "util/pool.hpp"
#include "util/time.hpp"
#include "vmpi/types.hpp"

namespace exasim::vmpi {

/// Event kinds used by the simulated MPI layer on the PDES engine.
enum EvKind : int {
  kEvStart = 1,         ///< Begin executing the process fiber.
  kEvMsgArrival,        ///< Eager payload or rendezvous RTS arrival.
  kEvCtsArrival,        ///< Rendezvous clear-to-send back at the sender.
  kEvDataArrival,       ///< Rendezvous bulk data arrival at the receiver.
  kEvFailureActivation, ///< Scheduled process failure reaches its time.
  kEvFailureNotice,     ///< Simulator-internal broadcast: a process failed.
  kEvAbortNotice,       ///< Simulator-internal broadcast: MPI_Abort happened.
  kEvErrorWakeup,       ///< Timed release of a request blocked on a dead peer.
  kEvRevokeNotice,      ///< ULFM: communicator revoked.
};

/// Match envelope. Matching is on (comm_id, src comm rank, tag), with
/// kAnySource / kAnyTag wildcards on the posted-receive side.
struct Envelope {
  int comm_id = 0;
  Rank src_comm_rank = 0;   ///< Sender's rank within the communicator.
  Rank src_world_rank = 0;  ///< Sender's world rank (routing, failure checks).
  int tag = 0;
  std::size_t bytes = 0;    ///< Logical payload size (drives the network model).
  bool rendezvous = false;  ///< True: this is an RTS; payload arrives separately.
  std::uint64_t rdv_id = 0; ///< Rendezvous transaction id (sender-unique).
};

/// Eager payload / rendezvous RTS. The byte buffer is a small-buffer-
/// optimized util::PayloadBuf: modeled (size-only) sends keep it empty, small
/// real payloads live inline inside the pooled payload block, and only large
/// payloads spill to one extra pool block — the eager path never touches the
/// general heap.
struct MsgPayload final : EventPayload {
  Envelope env;
  util::PayloadBuf data;  ///< May be empty for size-only (modeled) sends.
};

struct CtsPayload final : EventPayload {
  std::uint64_t rdv_id = 0;
};

struct DataPayload final : EventPayload {
  std::uint64_t rdv_id = 0;
  util::PayloadBuf data;
  std::size_t bytes = 0;
};

// Failure/abort/revoke notices are owned by the resilience subsystem (the
// NotificationBus schedules them); aliased here so the MPI layer's event
// dispatch reads naturally.
using FailureNoticePayload = resilience::FailureNoticePayload;
using AbortNoticePayload = resilience::AbortNoticePayload;
using RevokeNoticePayload = resilience::RevokeNoticePayload;

struct ErrorWakeupPayload final : EventPayload {
  std::uint64_t request_serial = 0;
  Err error = Err::kProcFailed;
  SimTime error_time = 0;  ///< Virtual time at which the request fails.
};

/// A message sitting in a process's unexpected queue (arrived before a
/// matching receive was posted). `arrival_seq` totally orders arrivals so
/// that ANY_SOURCE matching across per-source queues stays deterministic.
struct UnexpectedMsg {
  Envelope env;
  util::PayloadBuf data;
  SimTime arrival_time = 0;
  std::uint64_t arrival_seq = 0;
};

}  // namespace exasim::vmpi
