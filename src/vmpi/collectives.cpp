// Collective operations over the simulated point-to-point layer.
//
// All collectives use linear algorithms, matching the paper's simulated
// system configuration ("MPI collectives utilize linear algorithms", §V-C):
// rank 0 of the communicator (or the designated root) exchanges one message
// with every other member sequentially. The root's NIC occupancy serializes
// these messages, so linear collective cost grows linearly in communicator
// size — which is why the post-checkpoint barrier becomes a visible cost at
// 32,768 ranks (§V-E).

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "vmpi/context.hpp"
#include "vmpi/process.hpp"

namespace exasim::vmpi {
namespace {

/// Per-collective internal tag. Application tags are >= 0; collective tags
/// are negative, derived from the communicator's collective sequence number
/// so that back-to-back collectives on one communicator never cross-match.
int internal_tag(std::uint64_t seq, int phase) {
  return -static_cast<int>(2 + ((seq * 16 + static_cast<std::uint64_t>(phase)) & 0x0fffffffull));
}

/// Tag space for ULFM recovery traffic (shrink/agree), disjoint from the
/// regular collective tags and sequenced by Comm::recovery_seq.
int recovery_tag(std::uint64_t seq, int phase) {
  return -static_cast<int>((1 << 30) +
                           ((seq * 16 + static_cast<std::uint64_t>(phase)) & 0x0fffffffull));
}

}  // namespace

int Context::coll_tag(Comm& comm, int phase) const { return internal_tag(comm.coll_seq, phase); }

// Raw helpers used only inside this file: post + wait without applying the
// communicator's error handler (the collective applies it once at the end).
namespace {

Err coll_send(SimProcess& p, Comm& comm, Rank dest, int tag, const void* data,
              std::size_t bytes, bool allow_revoked = false) {
  RequestHandle h = p.post_send(comm, dest, tag, data, bytes, allow_revoked);
  return p.wait_all({h}, nullptr);
}

Err coll_recv(SimProcess& p, Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
              bool allow_revoked = false) {
  RequestHandle h = p.post_recv(comm, src, tag, buffer, capacity, allow_revoked);
  return p.wait_all({h}, nullptr);
}

}  // namespace

// ---------------------------------------------------------------------------
// Binomial-tree algorithms (co-design alternative to the paper's linear
// algorithms; selected via ProcessConfig::collective_algo).
// ---------------------------------------------------------------------------

namespace {

/// Binomial broadcast over comm from `root`; data/bytes as in bcast.
Err tree_bcast(SimProcess& p, Context& ctx, Comm& comm, Rank root, void* data,
               std::size_t bytes, int tag) {
  (void)ctx;
  const int n = comm.size();
  const int vrank = (comm.my_rank - root + n) % n;
  auto real = [&](int vr) { return static_cast<Rank>((vr + root) % n); };

  int mask = 1;
  Err e = Err::kSuccess;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      e = coll_recv(p, comm, real(vrank - mask), tag, data, bytes);
      if (e != Err::kSuccess) return e;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n && (vrank & (mask - 1)) == 0) {
      e = coll_send(p, comm, real(vrank + mask), tag, data, bytes);
      if (e != Err::kSuccess) return e;
    }
    mask >>= 1;
  }
  return Err::kSuccess;
}

/// Binomial reduce to `root`. Combines contributions in mask order, so it is
/// only valid for commutative ops — callers must check is_commutative(op)
/// and fall back to the linear algorithm otherwise. `out` holds the local
/// contribution on entry at every rank; on exit the root holds the result.
Err tree_reduce(SimProcess& p, Comm& comm, Rank root, ReduceOp op, Dtype dtype, void* out,
                std::size_t count, int tag) {
  const int n = comm.size();
  const int vrank = (comm.my_rank - root + n) % n;
  auto real = [&](int vr) { return static_cast<Rank>((vr + root) % n); };
  const std::size_t bytes = count * dtype_size(dtype);
  std::vector<std::byte> tmp(bytes);

  int mask = 1;
  Err e = Err::kSuccess;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      e = coll_send(p, comm, real(vrank - mask), tag, out, bytes);
      return e;  // Leaf/internal node done after sending up.
    }
    if (vrank + mask < n) {
      e = coll_recv(p, comm, real(vrank + mask), tag, tmp.data(), bytes);
      if (e != Err::kSuccess) return e;
      if (out != nullptr && bytes > 0) reduce_combine(op, dtype, out, tmp.data(), count);
    }
    mask <<= 1;
  }
  return Err::kSuccess;
}

}  // namespace

Err Context::barrier(Comm& comm) {
  proc_->fold_native_time();
  comm.coll_seq++;
  if (comm.size() <= 1) return Err::kSuccess;
  const int gather_tag = coll_tag(comm, 0);
  const int release_tag = coll_tag(comm, 1);

  Err e = Err::kSuccess;
  if (proc_->config().collective_algo == CollectiveAlgo::kBinomialTree) {
    // Tree barrier: zero-byte binomial reduce up, binomial broadcast down.
    e = tree_reduce(*proc_, comm, 0, ReduceOp::kSum, Dtype::kByte, nullptr, 0, gather_tag);
    if (e == Err::kSuccess) {
      e = tree_bcast(*proc_, *this, comm, 0, nullptr, 0, release_tag);
    }
    return proc_->apply_error_handler(comm, e);
  }
  if (comm.my_rank == 0) {
    for (Rank r = 1; r < comm.size() && e == Err::kSuccess; ++r) {
      e = coll_recv(*proc_, comm, r, gather_tag, nullptr, 0);
    }
    for (Rank r = 1; r < comm.size() && e == Err::kSuccess; ++r) {
      e = coll_send(*proc_, comm, r, release_tag, nullptr, 0);
    }
  } else {
    e = coll_send(*proc_, comm, 0, gather_tag, nullptr, 0);
    if (e == Err::kSuccess) e = coll_recv(*proc_, comm, 0, release_tag, nullptr, 0);
  }
  return proc_->apply_error_handler(comm, e);
}

Err Context::bcast(Comm& comm, Rank root, void* data, std::size_t bytes) {
  proc_->fold_native_time();
  if (root < 0 || root >= comm.size()) throw std::invalid_argument("bad root");
  comm.coll_seq++;
  if (comm.size() <= 1) return Err::kSuccess;
  const int tag = coll_tag(comm, 0);

  Err e = Err::kSuccess;
  if (proc_->config().collective_algo == CollectiveAlgo::kBinomialTree) {
    e = tree_bcast(*proc_, *this, comm, root, data, bytes, tag);
    return proc_->apply_error_handler(comm, e);
  }
  if (comm.my_rank == root) {
    for (Rank r = 0; r < comm.size() && e == Err::kSuccess; ++r) {
      if (r == root) continue;
      e = coll_send(*proc_, comm, r, tag, data, bytes);
    }
  } else {
    e = coll_recv(*proc_, comm, root, tag, data, bytes);
  }
  return proc_->apply_error_handler(comm, e);
}

Err Context::reduce(Comm& comm, Rank root, ReduceOp op, Dtype dtype, const void* in, void* out,
                    std::size_t count) {
  proc_->fold_native_time();
  if (root < 0 || root >= comm.size()) throw std::invalid_argument("bad root");
  comm.coll_seq++;
  const std::size_t bytes = count * dtype_size(dtype);
  const int tag = coll_tag(comm, 0);

  Err e = Err::kSuccess;
  // Non-commutative ops (kReplace) combine in rank order, which the binomial
  // tree does not preserve — they always take the linear algorithm.
  if (proc_->config().collective_algo == CollectiveAlgo::kBinomialTree &&
      is_commutative(op)) {
    // Every rank seeds `out` with its contribution; the tree folds upward.
    if (out != nullptr && in != nullptr) std::memcpy(out, in, bytes);
    std::vector<std::byte> scratch;
    void* acc = out;
    if (acc == nullptr && bytes > 0) {
      scratch.assign(bytes, std::byte{0});
      std::memcpy(scratch.data(), in, bytes);
      acc = scratch.data();
    }
    e = tree_reduce(*proc_, comm, root, op, dtype, acc, count, tag);
    return proc_->apply_error_handler(comm, e);
  }
  if (comm.my_rank == root) {
    if (out != nullptr && in != nullptr) std::memcpy(out, in, bytes);
    std::vector<std::byte> tmp(bytes);
    for (Rank r = 0; r < comm.size() && e == Err::kSuccess; ++r) {
      if (r == root) continue;
      e = coll_recv(*proc_, comm, r, tag, tmp.data(), bytes);
      if (e == Err::kSuccess && out != nullptr && bytes > 0) {
        reduce_combine(op, dtype, out, tmp.data(), count);
      }
    }
  } else {
    e = coll_send(*proc_, comm, root, tag, in, bytes);
  }
  return proc_->apply_error_handler(comm, e);
}

Err Context::allreduce(Comm& comm, ReduceOp op, Dtype dtype, const void* in, void* out,
                       std::size_t count) {
  // Linear allreduce = reduce to rank 0, then broadcast (two linear phases).
  Err e = reduce(comm, 0, op, dtype, in, out, count);
  if (e != Err::kSuccess) return e;  // Handler already applied by reduce.
  return bcast(comm, 0, out, count * dtype_size(dtype));
}

Err Context::gather(Comm& comm, Rank root, const void* in, std::size_t bytes_each, void* out) {
  proc_->fold_native_time();
  if (root < 0 || root >= comm.size()) throw std::invalid_argument("bad root");
  comm.coll_seq++;
  const int tag = coll_tag(comm, 0);

  Err e = Err::kSuccess;
  if (comm.my_rank == root) {
    auto* base = static_cast<std::byte*>(out);
    if (in != nullptr && out != nullptr) {
      std::memcpy(base + static_cast<std::size_t>(root) * bytes_each, in, bytes_each);
    }
    for (Rank r = 0; r < comm.size() && e == Err::kSuccess; ++r) {
      if (r == root) continue;
      void* slot = out == nullptr ? nullptr : base + static_cast<std::size_t>(r) * bytes_each;
      e = coll_recv(*proc_, comm, r, tag, slot, bytes_each);
    }
  } else {
    e = coll_send(*proc_, comm, root, tag, in, bytes_each);
  }
  return proc_->apply_error_handler(comm, e);
}

Err Context::allgather(Comm& comm, const void* in, std::size_t bytes_each, void* out) {
  Err e = gather(comm, 0, in, bytes_each, out);
  if (e != Err::kSuccess) return e;
  return bcast(comm, 0, out, bytes_each * static_cast<std::size_t>(comm.size()));
}

Err Context::scatter(Comm& comm, Rank root, const void* in, std::size_t bytes_each, void* out) {
  proc_->fold_native_time();
  if (root < 0 || root >= comm.size()) throw std::invalid_argument("bad root");
  comm.coll_seq++;
  const int tag = coll_tag(comm, 0);

  Err e = Err::kSuccess;
  if (comm.my_rank == root) {
    const auto* base = static_cast<const std::byte*>(in);
    if (in != nullptr && out != nullptr) {
      std::memcpy(out, base + static_cast<std::size_t>(root) * bytes_each, bytes_each);
    }
    for (Rank r = 0; r < comm.size() && e == Err::kSuccess; ++r) {
      if (r == root) continue;
      const void* slot =
          in == nullptr ? nullptr : base + static_cast<std::size_t>(r) * bytes_each;
      e = coll_send(*proc_, comm, r, tag, slot, bytes_each);
    }
  } else {
    e = coll_recv(*proc_, comm, root, tag, out, bytes_each);
  }
  return proc_->apply_error_handler(comm, e);
}

Err Context::alltoall(Comm& comm, const void* in, std::size_t bytes_each, void* out) {
  proc_->fold_native_time();
  comm.coll_seq++;
  const int tag = coll_tag(comm, 0);
  const auto* in_base = static_cast<const std::byte*>(in);
  auto* out_base = static_cast<std::byte*>(out);

  if (in != nullptr && out != nullptr) {
    std::memcpy(out_base + static_cast<std::size_t>(comm.my_rank) * bytes_each,
                in_base + static_cast<std::size_t>(comm.my_rank) * bytes_each, bytes_each);
  }
  // Post every receive first, then every send, then wait — deadlock-free for
  // both eager and rendezvous transfers.
  std::vector<RequestHandle> handles;
  handles.reserve(2 * static_cast<std::size_t>(comm.size()));
  for (Rank r = 0; r < comm.size(); ++r) {
    if (r == comm.my_rank) continue;
    void* slot =
        out == nullptr ? nullptr : out_base + static_cast<std::size_t>(r) * bytes_each;
    handles.push_back(proc_->post_recv(comm, r, tag, slot, bytes_each));
  }
  for (Rank r = 0; r < comm.size(); ++r) {
    if (r == comm.my_rank) continue;
    const void* slot =
        in == nullptr ? nullptr : in_base + static_cast<std::size_t>(r) * bytes_each;
    handles.push_back(proc_->post_send(comm, r, tag, slot, bytes_each));
  }
  return proc_->apply_error_handler(comm, proc_->wait_all(handles, nullptr));
}

// ---------------------------------------------------------------------------
// Communicator split (collective membership agreement via allgather)
// ---------------------------------------------------------------------------

Comm* Context::comm_split(Comm& comm, int color, int key) {
  struct ColorKey {
    int color;
    int key;
  };
  const ColorKey mine{color, key};
  std::vector<ColorKey> all(static_cast<std::size_t>(comm.size()));
  if (allgather(comm, &mine, sizeof(ColorKey), all.data()) != Err::kSuccess) return nullptr;

  const int id = proc_->registry().id_for(comm.id, comm.split_seq++, color);
  if (color < 0) return nullptr;  // MPI_UNDEFINED: participate, get no comm.

  // Deterministic membership: members of my color ordered by (key, rank).
  std::vector<std::pair<std::pair<int, Rank>, Rank>> group;  // ((key, comm rank), world)
  for (Rank r = 0; r < comm.size(); ++r) {
    if (all[static_cast<std::size_t>(r)].color == color) {
      group.push_back({{all[static_cast<std::size_t>(r)].key, r}, comm.world_of(r)});
    }
  }
  std::sort(group.begin(), group.end());
  std::vector<Rank> members;
  members.reserve(group.size());
  for (const auto& g : group) members.push_back(g.second);
  return proc_->new_comm(id, std::move(members), comm);
}

// ---------------------------------------------------------------------------
// ULFM shrink & agree (communicate even on revoked communicators)
// ---------------------------------------------------------------------------

namespace {

/// Surviving members of `comm` in communicator order, from the process's
/// (globally consistent) view. Root of recovery = first survivor.
std::vector<Rank> surviving_comm_ranks(SimProcess& p, const Comm& comm,
                                       const std::vector<Rank>& alive_world) {
  std::vector<Rank> out;
  for (Rank r = 0; r < comm.size(); ++r) {
    if (std::find(alive_world.begin(), alive_world.end(), comm.world_of(r)) !=
        alive_world.end()) {
      out.push_back(r);
    }
  }
  (void)p;
  return out;
}

}  // namespace

Comm* Context::comm_shrink(Comm& comm) {
  proc_->fold_native_time();
  const std::uint64_t epoch = comm.recovery_seq++;
  const int join_tag = recovery_tag(epoch, 0);
  const int release_tag = recovery_tag(epoch, 1);

  // Barrier among survivors so that everyone has entered the shrink before
  // membership is fixed. Uses revoke-immune traffic.
  const auto alive = proc_->alive_world_ranks_for_shrink();
  const auto survivors = surviving_comm_ranks(*proc_, comm, alive);
  if (!survivors.empty()) {
    const Rank recovery_root = survivors.front();
    if (comm.my_rank == recovery_root) {
      for (Rank r : survivors) {
        if (r == recovery_root) continue;
        // A survivor that fails mid-shrink times out; skip it.
        (void)coll_recv(*proc_, comm, r, join_tag, nullptr, 0, /*allow_revoked=*/true);
      }
      for (Rank r : survivors) {
        if (r == recovery_root) continue;
        (void)coll_send(*proc_, comm, r, release_tag, nullptr, 0, /*allow_revoked=*/true);
      }
    } else {
      (void)coll_send(*proc_, comm, recovery_root, join_tag, nullptr, 0, /*allow_revoked=*/true);
      (void)coll_recv(*proc_, comm, recovery_root, release_tag, nullptr, 0,
                      /*allow_revoked=*/true);
    }
  }
  return proc_->comm_shrink(comm);
}

Err Context::comm_agree(Comm& comm, bool* flag) {
  proc_->fold_native_time();
  const std::uint64_t epoch = comm.recovery_seq++;
  const int up_tag = recovery_tag(epoch, 2);
  const int down_tag = recovery_tag(epoch, 3);

  const auto alive = proc_->alive_world_ranks_for_shrink();
  const auto survivors = surviving_comm_ranks(*proc_, comm, alive);
  if (survivors.empty()) return Err::kProcFailed;
  const Rank root = survivors.front();

  std::uint8_t mine = (flag != nullptr && *flag) ? 1 : 0;
  if (comm.my_rank == root) {
    std::uint8_t acc = mine;
    for (Rank r : survivors) {
      if (r == root) continue;
      std::uint8_t v = 1;
      if (coll_recv(*proc_, comm, r, up_tag, &v, 1, /*allow_revoked=*/true) == Err::kSuccess) {
        acc = static_cast<std::uint8_t>(acc & v);
      }
    }
    for (Rank r : survivors) {
      if (r == root) continue;
      (void)coll_send(*proc_, comm, r, down_tag, &acc, 1, /*allow_revoked=*/true);
    }
    if (flag != nullptr) *flag = acc != 0;
  } else {
    Err e = coll_send(*proc_, comm, root, up_tag, &mine, 1, /*allow_revoked=*/true);
    std::uint8_t acc = 0;
    if (e == Err::kSuccess) {
      e = coll_recv(*proc_, comm, root, down_tag, &acc, 1, /*allow_revoked=*/true);
    }
    if (e != Err::kSuccess) return e;
    if (flag != nullptr) *flag = acc != 0;
  }
  return Err::kSuccess;
}

}  // namespace exasim::vmpi
