#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fiber/fiber.hpp"
#include "pdes/engine.hpp"
#include "powermodel/power.hpp"
#include "resilience/fault_state.hpp"
#include "resilience/notice_log.hpp"
#include "procmodel/processor.hpp"
#include "util/time.hpp"
#include "vmpi/comm.hpp"
#include "vmpi/fabric.hpp"
#include "vmpi/message.hpp"
#include "vmpi/request.hpp"
#include "vmpi/trace.hpp"
#include "vmpi/types.hpp"

namespace exasim::vmpi {

class Context;
class SimProcess;

/// Control-flow signals used to unwind the application fiber on process
/// failure / abort. Deliberately NOT derived from std::exception so that
/// application-level `catch (const std::exception&)` blocks cannot swallow
/// them; applications must not use `catch (...)` without rethrowing.
struct ProcessFailedSignal {};
struct ProcessAbortSignal {};

/// Machine-level services the per-process layer calls out to. Implemented by
/// core::Machine; this interface keeps vmpi below core in the layering.
class SystemHooks {
 public:
  virtual ~SystemHooks() = default;

  /// Called once when a process fails at `when` (actual failure time).
  /// Responsible for the simulator-internal notification broadcast, marking
  /// the LP dead, and the informational message (paper §IV-B).
  virtual void process_failed(SimProcess& proc, SimTime when) = 0;

  /// Called once when a process invokes MPI_Abort at `when` (paper §IV-D).
  virtual void abort_called(SimProcess& proc, SimTime when) = 0;

  /// ULFM: broadcast a communicator revocation (paper §VI).
  virtual void comm_revoked(SimProcess& proc, int comm_id, SimTime when) = 0;

  /// Called whenever a process reaches a terminal state.
  virtual void process_terminated(SimProcess& proc) = 0;

  /// Global list of world ranks not (yet) failed — the simulator-internal
  /// membership shortcut used by MPI_Comm_shrink (documented in DESIGN.md).
  virtual std::vector<Rank> alive_world_ranks() const = 0;
};

/// Collective algorithm family used by the simulated MPI library. The paper
/// configures linear algorithms (§V-C); binomial trees are the co-design
/// alternative the ablation benches compare against.
enum class CollectiveAlgo : std::uint8_t { kLinear, kBinomialTree };

/// Per-process configuration shared by the whole simulated machine.
struct ProcessConfig {
  std::size_t fiber_stack_bytes = 128 * 1024;
  bool measured_compute = false;  ///< Also fold scaled native fiber CPU time
                                  ///< into the virtual clock (xSim's mode).
  CollectiveAlgo collective_algo = CollectiveAlgo::kLinear;  ///< Paper default.
};

/// Application entry point. Runs on the process's fiber with plain
/// blocking-style calls on the Context — the analog of a native MPI main().
using AppMain = std::function<void(Context&)>;

/// One simulated MPI process: a PDES logical process owning an application
/// fiber, a virtual clock, message matching state, and failure/abort state
/// (paper §IV-A/§IV-B).
class SimProcess final : public LogicalProcess {
 public:
  SimProcess(Rank world_rank, int world_size, Engine* engine, const Fabric* fabric,
             const ProcessorModel* proc_model, SystemHooks* hooks, CommRegistry* registry,
             AppMain app, ProcessConfig config, SimTime initial_clock);
  ~SimProcess() override;

  SimProcess(const SimProcess&) = delete;
  SimProcess& operator=(const SimProcess&) = delete;

  // -- LogicalProcess ---------------------------------------------------
  void on_event(Engine& engine, Event&& ev) override;
  bool on_stall(Engine& engine) override;
  bool terminated() const override { return outcome() != ProcOutcome::kRunning; }

  // -- Identity / state --------------------------------------------------
  Rank world_rank() const { return world_rank_; }
  int world_size() const { return world_size_; }
  SimTime clock() const { return clock_; }
  ProcOutcome outcome() const { return outcome_.load(std::memory_order_relaxed); }
  /// Final virtual time (valid once terminated).
  SimTime end_time() const { return end_time_; }
  Comm& world_comm() { return *comms_.front(); }

  // -- Failure injection (paper §IV-B) ------------------------------------
  /// Sets the earliest virtual time at which this process fails. Called by
  /// the machine at startup from the failure schedule; also reachable from
  /// the application via Context::inject_failure (the "simulator-internal
  /// function" of §IV-B). kSimTimeNever = never fail.
  void set_time_of_failure(SimTime t) { fault_.time_of_failure = t; }
  SimTime time_of_failure() const { return fault_.time_of_failure; }

  /// Programmatic injection (Context::inject_failure): arms the earliest
  /// failure time AND schedules the activation event, so the process dies on
  /// time even while blocked — the same path the machine uses at startup.
  void inject_failure_at(SimTime t);

  /// Failed peers this process has been notified about (paper §IV-B: "each
  /// simulated MPI process maintains its own list of failed simulated MPI
  /// processes and their corresponding time of failure").
  const std::map<Rank, SimTime>& failed_peers() const { return fault_.failed_peers(); }

  /// Optional energy accounting (attached by the machine).
  void attach_energy(EnergyLedger* ledger) { energy_ = ledger; }

  /// Optional MPI-operation tracing (attached by the machine).
  void attach_trace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() { return trace_; }

  /// Optional failure-notice arrival log (attached by the machine): every
  /// failure notice actually delivered to this process is recorded, giving
  /// the model checker the per-rank arrival times it needs for
  /// missed-notification detection (DESIGN.md §15).
  void attach_notice_log(resilience::NoticeLog* log) { notice_log_ = log; }

  /// Always-on performance accounting: virtual time spent computing vs in
  /// communication (blocked or transferring) — the performance-investigation
  /// numbers xSim exists to produce.
  SimTime busy_time() const { return busy_time_; }
  SimTime comm_time() const { return comm_time_; }

  // -- Internal API used by Context (the simulated MPI implementation) ----
  // These run on the application fiber and may block (yield) or unwind via
  // ProcessFailedSignal / ProcessAbortSignal.

  /// Advances the virtual clock by dt, then applies failure/abort activation
  /// (paper §IV-B: failure activates when "the simulated MPI process is
  /// executing, updates its simulated process clock, and the clock reaches or
  /// goes beyond the ... time of failure").
  void advance_clock(SimTime dt, bool busy = true);
  /// Raises the clock to at least t (no-op if already past).
  void raise_clock_to(SimTime t, bool busy = false);

  /// Measured-compute mode (xSim's native path): folds the host CPU time the
  /// application fiber consumed since the last control point into the
  /// virtual clock, scaled by the processor model. No-op unless
  /// ProcessConfig::measured_compute is set.
  void fold_native_time();

  /// allow_revoked lets ULFM recovery operations (shrink/agree) communicate
  /// on a revoked communicator; ordinary traffic completes with kRevoked.
  RequestHandle post_send(Comm& comm, Rank dest, int tag, const void* data, std::size_t bytes,
                          bool allow_revoked = false);
  RequestHandle post_recv(Comm& comm, Rank src, int tag, void* buffer, std::size_t capacity,
                          bool allow_revoked = false);

  /// Blocks until every request is terminal; fills statuses (parallel array).
  /// Returns the first non-success error, Err::kSuccess otherwise. Completed
  /// requests are released.
  Err wait_all(const std::vector<RequestHandle>& handles, std::vector<MsgStatus>* statuses);

  /// Nonblocking completion check; releases the request when done.
  bool test(RequestHandle h, MsgStatus* status, Err* err);

  /// Blocking probe: waits until a matching message is available without
  /// receiving it. Fails like a receive if the source dies.
  Err probe(Comm& comm, Rank src, int tag, MsgStatus* status);

  /// Immediately fails this process at the current clock ("calling this
  /// simulator-internal function" — §IV-B). Does not return.
  [[noreturn]] void fail_now();

  /// MPI_Abort: prints, broadcasts the abort notification, unwinds.
  [[noreturn]] void abort_now();

  /// Applies the communicator's error handler to a non-success error from a
  /// completed operation: kFatal aborts (does not return), kUser invokes the
  /// user handler then returns e, kReturn returns e.
  Err apply_error_handler(Comm& comm, Err e);

  void mark_finalized() { finalized_ = true; }
  bool finalized() const { return finalized_; }

  // Communicator management (called by Context).
  Comm* comm_dup(Comm& parent);
  Comm* comm_shrink(Comm& parent);
  void comm_revoke(Comm& comm);
  /// Applies a revoke notice locally (called via hooks broadcast); pending
  /// operations on the communicator complete with kRevoked at `when`.
  void apply_revoke(int comm_id, SimTime when);

  const Fabric& fabric() const { return *fabric_; }
  const ProcessConfig& config() const { return config_; }
  const ProcessorModel& proc_model() const { return *proc_model_; }
  Engine& engine() { return *engine_; }
  CommRegistry& registry() { return *registry_; }
  Context& context() { return *context_; }

  /// ULFM acknowledgement state (MPI_Comm_failure_ack / get_acked).
  void failure_ack(Comm& comm);
  std::vector<Rank> failure_get_acked(Comm& comm) const;

  /// Simulator-global alive set used by shrink/agree membership agreement.
  std::vector<Rank> alive_world_ranks_for_shrink() const {
    return hooks_->alive_world_ranks();
  }

  // -- Soft-error injection (paper §VI future-work item 1) -----------------
  // xSim added "tracking of dynamic memory allocation of simulated MPI
  // processes ... the last piece needed to develop a soft error injector".
  // Applications register their state buffers; scheduled bit flips apply at
  // the first clock update at/after their time — same activation semantics
  // as process failures.

  /// Registers (or re-registers) a named application memory region.
  void register_memory(const std::string& name, void* ptr, std::size_t bytes);
  void unregister_memory(const std::string& name);
  std::size_t registered_bytes() const;

  /// Schedules a single bit flip at virtual time t. bit_index selects the
  /// target bit across all registered regions (modulo total bits at
  /// activation). Returns false if no memory could ever be registered —
  /// flips with no registered memory at activation are dropped and counted.
  void schedule_bit_flip(SimTime t, std::uint64_t bit_index);
  std::uint64_t bit_flips_applied() const { return soft_errors_.applied(); }
  std::uint64_t bit_flips_dropped() const { return soft_errors_.dropped(); }

 private:
  friend class Context;

  // Fiber body & scheduling.
  void fiber_body();
  void run_fiber();
  void block_until(const std::function<bool()>& ready);

  // Wakeup filter (DESIGN.md §13). While the fiber is blocked, the block
  // condition is recorded here: the wait-set of requests (each flagged
  // Request::waited) or a probe's match spec. Event handlers then resume the
  // fiber via maybe_run_fiber(), which skips the resume unless something
  // flipped the recorded condition — a waited request completed
  // (note_request_done) or a probe-visible unexpected message arrived
  // (note_unexpected). Handlers whose effect block_until itself re-evaluates
  // (abort notices) or that force an unwind (failure activation, stall
  // release) keep resuming unconditionally. Every resume the filter skips
  // would have been a pure no-op — the predicates are side-effect-free and
  // completion times never depend on when the fiber re-checks them — so the
  // delivered schedule is byte-identical to eager mode
  // (EXASIM_EAGER_WAKEUP=1 disables the filter to prove it).
  enum class WaitKind : std::uint8_t { kNone, kRequests, kProbe };
  void register_probe_wait(int comm_id, Rank src, Rank src_world, int tag);
  void clear_wait();
  void note_request_done(Request& r);
  void note_unexpected(const Envelope& env);
  void maybe_run_fiber();

  // Event handlers.
  void handle_msg_arrival(MsgPayload& p, SimTime t);
  void handle_cts(CtsPayload& p, SimTime t);
  void handle_data(DataPayload& p, SimTime t);
  void handle_failure_activation(SimTime t);
  void handle_failure_notice(FailureNoticePayload& p, SimTime t);
  void handle_abort_notice(AbortNoticePayload& p, SimTime t);
  void handle_error_wakeup(ErrorWakeupPayload& p);

  // Matching engine.
  Request* find_request(std::uint64_t serial);
  bool match(const Envelope& env, const Request& r) const;
  void complete_recv_from_msg(Request& r, const Envelope& env, util::PayloadBuf&& data,
                              SimTime arrival);
  void start_rendezvous_recv(Request& r, const Envelope& env, SimTime arrival);
  bool try_match_posted(const Envelope& env, util::PayloadBuf&& data, SimTime arrival);
  bool try_match_unexpected(Request& r);
  void release_request(std::uint64_t serial);
  void record_trace(const Request& r);

  // Failure/abort plumbing. Release times honor both the §IV-C per-request
  // timeout and the detector's notice delivery time (t_detect): an error
  // cannot surface before the process has been told about the failure.
  void check_signals();  ///< Throws Failed/Abort signals if activation is due.
  void schedule_error_wakeup(Request& r, SimTime t_fail, Rank peer_world, SimTime t_detect);
  void fail_requests_on_notice(Rank failed_rank, SimTime t_fail, SimTime t_detect);
  void terminate(ProcOutcome outcome, SimTime when);

  Comm* new_comm(int id, std::vector<Rank> members, const Comm& inherit_from);

  // Identity & wiring.
  Rank world_rank_;
  int world_size_;
  Engine* engine_;
  const Fabric* fabric_;
  const ProcessorModel* proc_model_;
  SystemHooks* hooks_;
  CommRegistry* registry_;
  AppMain app_;
  ProcessConfig config_;
  EnergyLedger* energy_ = nullptr;
  TraceSink* trace_ = nullptr;
  resilience::NoticeLog* notice_log_ = nullptr;
  SimTime busy_time_ = 0;
  SimTime comm_time_ = 0;

  // Execution state.
  std::unique_ptr<Context> context_;
  SimTime clock_ = 0;
  /// Atomic: Machine::alive_world_ranks reads every rank's outcome from
  /// whichever engine worker executes MPI_Comm_shrink.
  std::atomic<ProcOutcome> outcome_{ProcOutcome::kRunning};
  SimTime end_time_ = 0;
  bool started_ = false;
  bool finalized_ = false;
  bool in_fiber_ = false;
  std::uint64_t last_native_ns_ = 0;  ///< Measured-compute snapshot.

  // Recorded block condition (see the wakeup-filter note above).
  WaitKind wait_kind_ = WaitKind::kNone;
  bool wake_pending_ = false;  ///< Condition flipped; resume at next wake site.
  int wait_comm_id_ = 0;       ///< Probe spec: communicator id,
  Rank wait_src_ = kAnySource;        ///< source comm rank (may be kAnySource),
  Rank wait_src_world_ = -1;          ///< resolved world rank (-1 = ANY),
  int wait_tag_ = kAnyTag;            ///< tag (may be kAnyTag).

  // Failure/abort/ULFM-ack state and soft-error state, owned by the
  // resilience subsystem; this class is clock + matching + the glue.
  resilience::FaultState fault_;
  resilience::SoftErrorState soft_errors_;

  // Messaging state. The unexpected queue is indexed by (comm id, source
  // comm rank): a linear-algorithm collective at large scale floods the root
  // with tens of thousands of unexpected messages, and a flat queue would
  // make its sequential receives O(n^2).
  std::map<std::pair<int, Rank>, std::deque<UnexpectedMsg>> unexpected_;
  std::uint64_t next_arrival_seq_ = 1;
  // Posted-receive index mirroring the unexpected-queue bucketing: explicit
  // receives in (comm id, source) buckets plus a post-ordered ANY_SOURCE
  // side list, so a message arrival matches against the handful of receives
  // that could accept it instead of scanning every outstanding request.
  // Entries are raw pointers into requests_ (heap-stable via unique_ptr);
  // every transition out of Stage::kPosted calls unindex_posted first.
  void index_posted(Request& r);
  void unindex_posted(const Request& r);
  std::map<std::pair<int, Rank>, std::deque<Request*>> posted_;
  std::deque<Request*> posted_any_;
  std::vector<std::unique_ptr<Request>> requests_;
  std::uint64_t next_serial_ = 1;
  std::uint64_t next_rdv_ = 1;

  // Communicators (index 0 = world).
  std::vector<std::unique_ptr<Comm>> comms_;

  // Declared last: destroying the fiber unwinds any frames it still holds
  // (a process left blocked at teardown, e.g. after a deadlock verdict), and
  // those frames reference the context/request/comm state above.
  std::unique_ptr<Fiber> fiber_;
};

/// Whether spurious fiber resumes are allowed (true) or filtered against the
/// recorded block condition (false, the default). Initialized from
/// EXASIM_EAGER_WAKEUP (set and nonzero = eager); the delivered schedule is
/// identical either way — the hatch exists to prove it and to bisect.
bool eager_wakeup_enabled();
void set_eager_wakeup(bool eager);

}  // namespace exasim::vmpi
