#include "vmpi/comm.hpp"

#include <tuple>

namespace exasim::vmpi {

Rank Comm::rank_of_world(Rank world) const {
  if (identity_size_ >= 0) {
    return world >= 0 && world < identity_size_ ? world : -1;
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == world) return static_cast<Rank>(i);
  }
  return -1;
}

std::vector<Rank> Comm::members_snapshot() const {
  if (identity_size_ < 0) return members_;
  std::vector<Rank> out(static_cast<std::size_t>(identity_size_));
  for (int i = 0; i < identity_size_; ++i) out[static_cast<std::size_t>(i)] = i;
  return out;
}

int CommRegistry::id_for(int parent_id, std::uint64_t split_seq, int color) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_tuple(parent_id, split_seq, color);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  int id = next_id_++;
  ids_.emplace(key, id);
  return id;
}

}  // namespace exasim::vmpi
