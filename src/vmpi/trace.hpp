#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/time.hpp"
#include "vmpi/types.hpp"

namespace exasim::vmpi {

/// One traced MPI-level operation. xSim is first a *performance
/// investigation* toolkit; the trace is the *communication-accurate* output
/// that tools like SST/macro consume from DUMPI (paper §II-A) — here in a
/// simple self-describing text form.
struct TraceRecord {
  enum class Op : std::uint8_t { kSend, kRecv, kMarker };

  Op op = Op::kMarker;
  Rank rank = -1;         ///< World rank performing the operation.
  SimTime start = 0;      ///< Post time (virtual).
  SimTime end = 0;        ///< Completion time (virtual).
  Rank peer = -1;         ///< World rank of the peer (-1 for markers).
  int tag = 0;
  std::size_t bytes = 0;
  Err error = Err::kSuccess;
  std::string marker;     ///< Marker label (markers only).
};

/// Destination for trace records. Implementations must be thread-safe:
/// simulated processes on different engine workers record concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceRecord& rec) = 0;
};

/// Accumulates records in memory; render() emits the DUMPI-like text form,
/// sorted by (start, rank). Appends are interleaving-dependent across ranks,
/// but render()'s stable (start, rank) sort restores a deterministic output:
/// ties share a rank, and one rank's records are appended in that rank's
/// deterministic processing order.
class MemoryTraceSink final : public TraceSink {
 public:
  void record(const TraceRecord& rec) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(rec);
  }

  /// Read-side accessors are safe once the simulation has finished.
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

  /// One line per record:
  ///   <start_us> <end_us> rank=R op=send peer=P tag=T bytes=B err=SUCCESS
  std::string render() const;

  /// Writes render() to a file; returns false on I/O error.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceRecord> records_;
};

const char* to_string(TraceRecord::Op op);

}  // namespace exasim::vmpi
