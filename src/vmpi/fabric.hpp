#pragma once

#include <cstddef>
#include <memory>

#include "netmodel/network.hpp"
#include "util/time.hpp"

namespace exasim::vmpi {

/// Rank-addressed view of the network model used by the simulated MPI layer.
///
/// Adapts either a flat NetworkModel (ranks map to nodes 1:1 or blocked by
/// ranks_per_node) or a HierarchicalNetwork (per-level latency/bandwidth and
/// failure-detection timeouts, paper §IV-C).
class Fabric {
 public:
  /// ranks_per_node > 1 places consecutive ranks on the same node; intra-node
  /// messages then traverse zero system hops (flat model) or the on-node /
  /// on-chip level (hierarchical model).
  Fabric(std::shared_ptr<const NetworkModel> model, int ranks_per_node = 1);

  /// One-way in-flight time for `bytes` between two ranks, uncontended —
  /// the route-independent LogGP cost. Detector wiring keeps using this as
  /// its latency estimate: detection configuration must not depend on
  /// transient link occupancy.
  SimTime delivery(int src_rank, int dst_rank, std::size_t bytes) const;

  /// delivery() plus the flow's per-link contention wait when the model has
  /// NetworkParams::contention enabled (`now` is the send time); identical to
  /// delivery() otherwise. The message path in vmpi::Process uses this.
  SimTime delivery_at(SimTime now, int src_rank, int dst_rank, std::size_t bytes) const;

  /// Sender-side virtual-clock charge for injecting `bytes`.
  SimTime occupancy(std::size_t bytes) const;

  /// Receiver-side software overhead charged at match time.
  SimTime receiver_overhead() const;

  /// Failure-detection communication timeout for the pair (paper §IV-C).
  SimTime failure_timeout(int src_rank, int dst_rank) const;

  /// Protocol for a payload size (eager below threshold, else rendezvous).
  Protocol protocol_for(std::size_t bytes) const;

  int node_of(int rank) const { return rank / ranks_per_node_; }
  const NetworkModel& model() const { return *model_; }

 private:
  std::shared_ptr<const NetworkModel> model_;
  const HierarchicalNetwork* hier_ = nullptr;  ///< Non-null if model is hierarchical.
  int ranks_per_node_ = 1;
};

}  // namespace exasim::vmpi
