#pragma once

#include <cstddef>
#include <cstdint>

#include "util/pool.hpp"
#include "util/time.hpp"
#include "vmpi/types.hpp"

namespace exasim::vmpi {

/// Nonblocking operation state. Owned by the process; applications hold
/// opaque handles (serial numbers) via the Context API.
struct Request {
  enum class Kind : std::uint8_t { kSend, kRecv };
  enum class Stage : std::uint8_t {
    kPosted,        ///< Recv: unmatched. Send: eager in flight / RTS sent.
    kAwaitingCts,   ///< Rendezvous send waiting for clear-to-send.
    kAwaitingData,  ///< Rendezvous recv matched RTS, waiting for bulk data.
    kDone,          ///< Terminal: complete_time and error are valid.
  };

  std::uint64_t serial = 0;
  Kind kind = Kind::kRecv;
  Stage stage = Stage::kPosted;

  int comm_id = 0;
  Rank peer_comm_rank = kAnySource;  ///< Dest (send) or source (recv; may be kAnySource).
  Rank peer_world_rank = -1;         ///< Resolved world rank; -1 for kAnySource until match.
  int tag = kAnyTag;
  std::size_t bytes = 0;             ///< Send size / recv capacity.

  /// Receive destination; nullptr for modeled (size-only) transfers.
  void* recv_buffer = nullptr;

  /// Send payload (captured at post time); empty for modeled sends.
  util::PayloadBuf send_data;

  std::uint64_t rdv_id = 0;          ///< Rendezvous transaction, if any.
  SimTime post_time = 0;

  /// Terminal state.
  SimTime complete_time = 0;
  MsgStatus status;

  /// Guards against scheduling duplicate timeout releases for one request.
  bool error_wakeup_scheduled = false;

  /// ULFM recovery traffic (shrink/agree) is not failed by a revoke notice.
  bool survives_revoke = false;

  /// The process fiber is blocked in a wait_all that includes this request —
  /// its completion must wake the fiber (SimProcess wakeup filter).
  bool waited = false;

  bool done() const { return stage == Stage::kDone; }
};

/// Opaque request handle returned to applications.
struct RequestHandle {
  std::uint64_t serial = 0;
  bool valid() const { return serial != 0; }
};

}  // namespace exasim::vmpi
