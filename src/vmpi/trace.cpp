#include "vmpi/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace exasim::vmpi {

const char* to_string(TraceRecord::Op op) {
  switch (op) {
    case TraceRecord::Op::kSend: return "send";
    case TraceRecord::Op::kRecv: return "recv";
    case TraceRecord::Op::kMarker: return "marker";
  }
  return "?";
}

std::string MemoryTraceSink::render() const {
  std::vector<const TraceRecord*> sorted;
  sorted.reserve(records_.size());
  for (const auto& r : records_) sorted.push_back(&r);
  // Stable: (start, rank) ties are same-rank records, whose relative append
  // order is that rank's deterministic processing order.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceRecord* a, const TraceRecord* b) {
                     if (a->start != b->start) return a->start < b->start;
                     return a->rank < b->rank;
                   });

  std::ostringstream os;
  char buf[192];
  for (const TraceRecord* r : sorted) {
    if (r->op == TraceRecord::Op::kMarker) {
      std::snprintf(buf, sizeof buf, "%.3f %.3f rank=%d marker=%s\n", to_micros(r->start),
                    to_micros(r->end), r->rank, r->marker.c_str());
    } else {
      std::snprintf(buf, sizeof buf,
                    "%.3f %.3f rank=%d op=%s peer=%d tag=%d bytes=%zu err=%s\n",
                    to_micros(r->start), to_micros(r->end), r->rank, to_string(r->op),
                    r->peer, r->tag, r->bytes, vmpi::to_string(r->error).c_str());
    }
    os << buf;
  }
  return os.str();
}

bool MemoryTraceSink::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace exasim::vmpi
