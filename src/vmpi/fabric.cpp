#include "vmpi/fabric.hpp"

#include <stdexcept>
#include <utility>

namespace exasim::vmpi {

Fabric::Fabric(std::shared_ptr<const NetworkModel> model, int ranks_per_node)
    : model_(std::move(model)), ranks_per_node_(ranks_per_node) {
  if (!model_) throw std::invalid_argument("null network model");
  if (ranks_per_node_ <= 0) throw std::invalid_argument("ranks_per_node <= 0");
  hier_ = dynamic_cast<const HierarchicalNetwork*>(model_.get());
}

SimTime Fabric::delivery(int src_rank, int dst_rank, std::size_t bytes) const {
  if (hier_ != nullptr) return hier_->delivery_time_ranks(src_rank, dst_rank, bytes);
  return model_->delivery_time(node_of(src_rank), node_of(dst_rank), bytes);
}

SimTime Fabric::delivery_at(SimTime now, int src_rank, int dst_rank,
                            std::size_t bytes) const {
  if (hier_ != nullptr) return hier_->delivery_time_ranks_at(now, src_rank, dst_rank, bytes);
  return model_->delivery_time_at(now, node_of(src_rank), node_of(dst_rank), bytes);
}

SimTime Fabric::occupancy(std::size_t bytes) const { return model_->sender_occupancy(bytes); }

SimTime Fabric::receiver_overhead() const { return model_->receiver_overhead(); }

SimTime Fabric::failure_timeout(int src_rank, int dst_rank) const {
  if (hier_ != nullptr) return hier_->failure_timeout(src_rank, dst_rank);
  return model_->failure_timeout(node_of(src_rank), node_of(dst_rank));
}

Protocol Fabric::protocol_for(std::size_t bytes) const { return model_->protocol_for(bytes); }

}  // namespace exasim::vmpi
