#pragma once

#include <vector>

#include "vmpi/process.hpp"

namespace exasim::apps {

/// Allreduce-heavy iterative-solver proxy (CG-style): per iteration every
/// rank does local work, then the ranks perform two global dot-product
/// allreduces; every `checkpoint_interval` iterations the solver state is
/// checkpointed (write + barrier + old-checkpoint delete, like heat3d).
///
/// Models the second major HPC workload class the paper's co-design tool
/// targets: global-synchronization-bound solvers, where collective cost —
/// not halo exchange — dominates the communication phase.
struct CgProxyParams {
  int total_iterations = 50;
  int checkpoint_interval = 10;   ///< 0 = no checkpoints.
  std::size_t local_elements = 1024;  ///< Local vector length (dot products).
  double work_units_per_element = 1.0;
};

struct CgProxyReport {
  int completed_iterations = 0;
  int restarts_used = 0;
  double residual = 0;  ///< Final global dot value (verification).
};

vmpi::AppMain make_cgproxy(CgProxyParams params, std::vector<CgProxyReport>* reports = nullptr);

}  // namespace exasim::apps
