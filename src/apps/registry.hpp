#pragma once

#include <string>
#include <vector>

#include "util/parse.hpp"
#include "vmpi/process.hpp"

namespace exasim::apps {

/// Names of the built-in applications, in registry order.
const std::vector<std::string>& list_apps();

/// Builds a built-in application from its name and a `--app-params` bag
/// (shared by exasim_run and exasim_mc so both front doors accept the same
/// workloads). `ranks` selects scale-dependent defaults (heat3d drops to
/// skeleton compute above 4096 ranks, exactly as exasim_run always did).
/// Throws std::invalid_argument for an unknown name.
vmpi::AppMain make_app(const std::string& name, const ParamMap& params, int ranks);

/// One-line per-app parameter help (the `--app-params` section of usage text).
std::string app_params_help();

}  // namespace exasim::apps
