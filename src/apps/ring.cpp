#include "apps/ring.hpp"

#include <cstring>
#include <stdexcept>

#include "vmpi/context.hpp"

namespace exasim::apps {
namespace {

constexpr int kRingTag = 7;

void ring_main(vmpi::Context& ctx, const RingParams& p, std::vector<RingReport>* reports) {
  if (p.payload_bytes < sizeof(std::uint64_t)) {
    throw std::invalid_argument("ring payload too small");
  }
  const int rank = ctx.rank();
  const int size = ctx.size();
  const int next = (rank + 1) % size;
  const int prev = (rank + size - 1) % size;
  const double t0 = ctx.wtime();

  std::vector<std::byte> buf(p.payload_bytes);
  std::uint64_t token = 0;

  for (int lap = 0; lap < p.laps; ++lap) {
    if (rank == 0) {
      if (lap == 0) token = 1;  // Rank 0 injects the token.
      std::memcpy(buf.data(), &token, sizeof(token));
      if (ctx.send(ctx.world(), next, kRingTag, buf.data(), buf.size()) !=
          vmpi::Err::kSuccess) {
        return;
      }
      if (ctx.recv(ctx.world(), prev, kRingTag, buf.data(), buf.size()) !=
          vmpi::Err::kSuccess) {
        return;
      }
      std::memcpy(&token, buf.data(), sizeof(token));
      ++token;  // Rank 0's own increment closes the lap.
    } else {
      if (ctx.recv(ctx.world(), prev, kRingTag, buf.data(), buf.size()) !=
          vmpi::Err::kSuccess) {
        return;
      }
      std::memcpy(&token, buf.data(), sizeof(token));
      ++token;
      std::memcpy(buf.data(), &token, sizeof(token));
      if (p.compute_units_per_hop > 0) ctx.compute(p.compute_units_per_hop);
      if (ctx.send(ctx.world(), next, kRingTag, buf.data(), buf.size()) !=
          vmpi::Err::kSuccess) {
        return;
      }
    }
  }

  if (reports != nullptr) {
    auto& rep = reports->at(static_cast<std::size_t>(rank));
    rep.final_token = token;
    rep.elapsed_seconds = ctx.wtime() - t0;
  }
  ctx.finalize();
}

}  // namespace

vmpi::AppMain make_ring(RingParams params, std::vector<RingReport>* reports) {
  return [params, reports](vmpi::Context& ctx) { ring_main(ctx, params, reports); };
}

}  // namespace exasim::apps
