#include "apps/heat3d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/machine.hpp"

namespace exasim::apps {
namespace {

using vmpi::Context;
using vmpi::Err;
using vmpi::RequestHandle;

/// Face directions in deterministic order: -x, +x, -y, +y, -z, +z.
constexpr int kDirs = 6;
constexpr int opposite(int dir) { return dir ^ 1; }
constexpr int kHaloTagBase = 100;

struct Decomposition {
  int px, py, pz;       // process grid
  int lx, ly, lz;       // local interior dims
  int ix, iy, iz;       // my process coordinates
  int neighbor[kDirs];  // world rank per direction, -1 at physical boundary

  std::size_t points() const {
    return static_cast<std::size_t>(lx) * static_cast<std::size_t>(ly) *
           static_cast<std::size_t>(lz);
  }
  std::size_t face_bytes(int dir) const {
    const std::size_t d = dir / 2 == 0   ? static_cast<std::size_t>(ly) * lz
                          : dir / 2 == 1 ? static_cast<std::size_t>(lx) * lz
                                         : static_cast<std::size_t>(lx) * ly;
    return d * sizeof(double);
  }
};

Decomposition decompose(const HeatParams& p, int rank, int size) {
  if (p.px * p.py * p.pz != size) {
    throw std::invalid_argument("heat3d: process grid does not match world size");
  }
  if (p.nx % p.px != 0 || p.ny % p.py != 0 || p.nz % p.pz != 0) {
    throw std::invalid_argument("heat3d: grid does not divide evenly");
  }
  Decomposition d{};
  d.px = p.px;
  d.py = p.py;
  d.pz = p.pz;
  d.lx = p.nx / p.px;
  d.ly = p.ny / p.py;
  d.lz = p.nz / p.pz;
  d.ix = rank % p.px;
  d.iy = (rank / p.px) % p.py;
  d.iz = rank / (p.px * p.py);
  auto rank_of = [&](int x, int y, int z) -> int {
    if (x < 0 || x >= p.px || y < 0 || y >= p.py || z < 0 || z >= p.pz) return -1;
    return x + y * p.px + z * p.px * p.py;
  };
  d.neighbor[0] = rank_of(d.ix - 1, d.iy, d.iz);
  d.neighbor[1] = rank_of(d.ix + 1, d.iy, d.iz);
  d.neighbor[2] = rank_of(d.ix, d.iy - 1, d.iz);
  d.neighbor[3] = rank_of(d.ix, d.iy + 1, d.iz);
  d.neighbor[4] = rank_of(d.ix, d.iy, d.iz - 1);
  d.neighbor[5] = rank_of(d.ix, d.iy, d.iz + 1);
  return d;
}

/// Real-mode grid with one halo layer. Index (x,y,z) in [-1, l?] maps into a
/// dense (l+2)^3 block.
class Grid {
 public:
  Grid(const Decomposition& d) : d_(d) {
    const std::size_t n = static_cast<std::size_t>(d.lx + 2) * (d.ly + 2) * (d.lz + 2);
    cur_.assign(n, 0.0);
    next_.assign(n, 0.0);
  }

  double& at(std::vector<double>& a, int x, int y, int z) {
    const std::size_t sx = static_cast<std::size_t>(d_.lx) + 2;
    const std::size_t sy = static_cast<std::size_t>(d_.ly) + 2;
    return a[(static_cast<std::size_t>(z + 1) * sy + (y + 1)) * sx + (x + 1)];
  }
  const double& at(const std::vector<double>& a, int x, int y, int z) const {
    return const_cast<Grid*>(this)->at(const_cast<std::vector<double>&>(a), x, y, z);
  }

  void init(const HeatParams& p) {
    // Deterministic initial condition from global coordinates.
    for (int z = 0; z < d_.lz; ++z) {
      for (int y = 0; y < d_.ly; ++y) {
        for (int x = 0; x < d_.lx; ++x) {
          const int gx = d_.ix * d_.lx + x;
          const int gy = d_.iy * d_.ly + y;
          const int gz = d_.iz * d_.lz + z;
          at(cur_, x, y, z) =
              std::sin(0.1 * gx) + std::cos(0.13 * gy) + std::sin(0.07 * gz + 1.0);
        }
      }
    }
    (void)p;
  }

  void step() {
    constexpr double kAlpha = 0.1;
    for (int z = 0; z < d_.lz; ++z) {
      for (int y = 0; y < d_.ly; ++y) {
        for (int x = 0; x < d_.lx; ++x) {
          const double c = at(cur_, x, y, z);
          const double sum = at(cur_, x - 1, y, z) + at(cur_, x + 1, y, z) +
                             at(cur_, x, y - 1, z) + at(cur_, x, y + 1, z) +
                             at(cur_, x, y, z - 1) + at(cur_, x, y, z + 1);
          at(next_, x, y, z) = c + kAlpha * (sum - 6.0 * c);
        }
      }
    }
    // Carry the face-halo planes into the buffer about to become current:
    // halo state must be single-sourced (not alternate between the two
    // buffers) or a restart from a checkpointed interior could never
    // reproduce it.
    for (int dir = 0; dir < 6; ++dir) {
      iterate_face(dir, /*halo=*/true,
                   [&](int x, int y, int z) { at(next_, x, y, z) = at(cur_, x, y, z); });
    }
    cur_.swap(next_);
  }

  void pack_face(int dir, std::vector<double>& buf) const {
    buf.clear();
    iterate_face(dir, /*halo=*/false,
                 [&](int x, int y, int z) { buf.push_back(at(cur_, x, y, z)); });
  }

  void unpack_face(int dir, const std::vector<double>& buf) {
    std::size_t i = 0;
    iterate_face(dir, /*halo=*/true, [&](int x, int y, int z) { at(cur_, x, y, z) = buf[i++]; });
  }

  double checksum() const {
    double s = 0;
    for (int z = 0; z < d_.lz; ++z) {
      for (int y = 0; y < d_.ly; ++y) {
        for (int x = 0; x < d_.lx; ++x) s += at(cur_, x, y, z);
      }
    }
    return s;
  }

  /// Interior values, packed (for checkpointing).
  std::vector<double> interior() const {
    std::vector<double> out;
    out.reserve(d_.points());
    for (int z = 0; z < d_.lz; ++z) {
      for (int y = 0; y < d_.ly; ++y) {
        for (int x = 0; x < d_.lx; ++x) out.push_back(at(cur_, x, y, z));
      }
    }
    return out;
  }

  void restore_interior(const double* data) {
    std::size_t i = 0;
    for (int z = 0; z < d_.lz; ++z) {
      for (int y = 0; y < d_.ly; ++y) {
        for (int x = 0; x < d_.lx; ++x) at(cur_, x, y, z) = data[i++];
      }
    }
  }

  double* raw() { return cur_.data(); }
  std::size_t raw_bytes() const { return cur_.size() * sizeof(double); }

 private:
  template <typename F>
  void iterate_face(int dir, bool halo, F&& f) const {
    // Interior face (halo=false) is the boundary plane we send; halo plane
    // (halo=true) is where the neighbor's data lands.
    const int axis = dir / 2;
    const bool low = (dir % 2) == 0;
    int fx = low ? 0 : d_.lx - 1;
    int fy = low ? 0 : d_.ly - 1;
    int fz = low ? 0 : d_.lz - 1;
    if (halo) {
      fx = low ? -1 : d_.lx;
      fy = low ? -1 : d_.ly;
      fz = low ? -1 : d_.lz;
    }
    if (axis == 0) {
      for (int z = 0; z < d_.lz; ++z)
        for (int y = 0; y < d_.ly; ++y) f(fx, y, z);
    } else if (axis == 1) {
      for (int z = 0; z < d_.lz; ++z)
        for (int x = 0; x < d_.lx; ++x) f(x, fy, z);
    } else {
      for (int y = 0; y < d_.ly; ++y)
        for (int x = 0; x < d_.lx; ++x) f(x, y, fz);
    }
  }

  const Decomposition& d_;
  std::vector<double> cur_, next_;
};

void set_phase(const HeatParams& p, int rank, HeatPhase phase) {
  if (p.telemetry != nullptr) {
    p.telemetry->last_phase[static_cast<std::size_t>(rank)] = phase;
  }
}

/// Halo exchange with the (up to 6) face neighbors. Returns the first error
/// the underlying MPI operations reported (the error handler of the world
/// communicator already ran — under kFatal this call aborts instead of
/// returning).
Err halo_exchange(Context& ctx, const Decomposition& d, Grid* grid,
                  std::vector<std::vector<double>>& send_bufs,
                  std::vector<std::vector<double>>& recv_bufs) {
  auto& world = ctx.world();
  std::vector<RequestHandle> handles;
  handles.reserve(2 * kDirs);

  for (int dir = 0; dir < kDirs; ++dir) {
    if (d.neighbor[dir] < 0) continue;
    const std::size_t bytes = d.face_bytes(dir);
    if (grid != nullptr) {
      recv_bufs[static_cast<std::size_t>(dir)].assign(bytes / sizeof(double), 0.0);
      handles.push_back(ctx.irecv(world, d.neighbor[dir], kHaloTagBase + opposite(dir),
                                  recv_bufs[static_cast<std::size_t>(dir)].data(), bytes));
    } else {
      handles.push_back(
          ctx.irecv_modeled(world, d.neighbor[dir], kHaloTagBase + opposite(dir), bytes));
    }
  }
  for (int dir = 0; dir < kDirs; ++dir) {
    if (d.neighbor[dir] < 0) continue;
    const std::size_t bytes = d.face_bytes(dir);
    if (grid != nullptr) {
      grid->pack_face(dir, send_bufs[static_cast<std::size_t>(dir)]);
      handles.push_back(ctx.isend(world, d.neighbor[dir], kHaloTagBase + dir,
                                  send_bufs[static_cast<std::size_t>(dir)].data(), bytes));
    } else {
      handles.push_back(ctx.isend_modeled(world, d.neighbor[dir], kHaloTagBase + dir, bytes));
    }
  }

  Err e = ctx.waitall(world, handles, nullptr);
  if (e == Err::kSuccess && grid != nullptr) {
    for (int dir = 0; dir < kDirs; ++dir) {
      if (d.neighbor[dir] < 0) continue;
      grid->unpack_face(dir, recv_bufs[static_cast<std::size_t>(dir)]);
    }
  }
  return e;
}

void heat3d_main(Context& ctx, const HeatParams& p, std::vector<HeatReport>* reports) {
  const int rank = ctx.rank();
  auto& services = core::services_of(ctx);
  if (services.checkpoints == nullptr) {
    throw std::logic_error("heat3d requires a checkpoint store service");
  }
  auto& store = *services.checkpoints;
  ckpt::TieredWriter writer(*services.storage, services.ckpt_mode);

  set_phase(p, rank, HeatPhase::kStartup);
  const Decomposition d = decompose(p, rank, ctx.size());
  const std::size_t state_bytes = d.points() * sizeof(double);

  std::unique_ptr<Grid> grid;
  if (p.real_compute) {
    grid = std::make_unique<Grid>(d);
    grid->init(p);
    if (p.register_memory) ctx.register_memory("heat3d.grid", grid->raw(), grid->raw_bytes());
  }
  std::vector<std::vector<double>> send_bufs(kDirs), recv_bufs(kDirs);

  // Restart path (paper §V-B): "it automatically loads the last checkpoint".
  int start_iteration = 1;
  int restarts_used = 0;
  std::uint64_t restored_version = 0;
  if (auto payload = ckpt::read_latest_checkpoint_tiered(ctx, store, *services.storage,
                                                         &restored_version)) {
    HeatCkptHeader header{};
    if (payload->size() < sizeof(header)) throw std::runtime_error("corrupt checkpoint header");
    std::memcpy(&header, payload->data(), sizeof(header));
    if (header.magic != HeatCkptHeader{}.magic || header.rank != rank) {
      throw std::runtime_error("checkpoint mismatch");
    }
    start_iteration = header.iteration + 1;
    restarts_used = 1;
    if (grid) {
      if (payload->size() != sizeof(header) + state_bytes) {
        throw std::runtime_error("checkpoint payload size mismatch");
      }
      grid->restore_interior(
          reinterpret_cast<const double*>(payload->data() + sizeof(header)));
    }
    // Stale complete sets older than the one restored are garbage-collected.
    for (std::uint64_t v : store.versions()) {
      if (v < restored_version) store.remove_file(v, rank);
    }
    // Checkpoints persist interiors only; rebuild the halo layers so the
    // physics after restart is bit-identical to the uninterrupted run.
    set_phase(p, rank, HeatPhase::kHalo);
    if (halo_exchange(ctx, d, grid.get(), send_bufs, recv_bufs) != Err::kSuccess) return;
  }

  std::uint64_t prev_ckpt_version = restarts_used != 0 ? restored_version : 0;
  bool have_prev_ckpt = restarts_used != 0;

  for (int it = start_iteration; it <= p.total_iterations; ++it) {
    // Computation phase — by far the longest (§V-D), so most failures
    // activate here and are *detected* in the next halo exchange.
    set_phase(p, rank, HeatPhase::kCompute);
    if (grid) grid->step();
    ctx.compute(static_cast<double>(d.points()) * p.work_units_per_point);

    const bool do_halo = p.halo_interval > 0 && it % p.halo_interval == 0;
    const bool do_ckpt =
        (p.checkpoint_interval > 0 && it % p.checkpoint_interval == 0) ||
        it == p.total_iterations;

    if (do_halo) {
      set_phase(p, rank, HeatPhase::kHalo);
      if (halo_exchange(ctx, d, grid.get(), send_bufs, recv_bufs) != Err::kSuccess) return;
    }

    if (do_ckpt) {
      // Checkpoint phase: write file, then global barrier, then delete the
      // previous checkpoint ("such that the previous checkpoint can be
      // deleted safely", §V-B).
      set_phase(p, rank, HeatPhase::kCheckpoint);
      HeatCkptHeader header;
      header.rank = rank;
      header.iteration = it;
      header.nx = p.nx;
      header.ny = p.ny;
      header.nz = p.nz;
      std::vector<std::byte> payload(sizeof(header));
      std::memcpy(payload.data(), &header, sizeof(header));
      if (grid) {
        const auto interior = grid->interior();
        const auto* bytes = reinterpret_cast<const std::byte*>(interior.data());
        payload.insert(payload.end(), bytes, bytes + state_bytes);
      }
      writer.write(ctx, store, static_cast<std::uint64_t>(it), payload,
                   sizeof(header) + state_bytes);

      set_phase(p, rank, HeatPhase::kBarrier);
      if (ctx.barrier(ctx.world()) != Err::kSuccess) return;

      set_phase(p, rank, HeatPhase::kCleanup);
      if (have_prev_ckpt && prev_ckpt_version != static_cast<std::uint64_t>(it)) {
        store.remove_file(prev_ckpt_version, rank);
      }
      prev_ckpt_version = static_cast<std::uint64_t>(it);
      have_prev_ckpt = true;
    }
  }

  set_phase(p, rank, HeatPhase::kDone);
  if (reports != nullptr) {
    auto& rep = reports->at(static_cast<std::size_t>(rank));
    rep.completed_iterations = p.total_iterations;
    rep.restarts_used = restarts_used;
    rep.checksum = grid ? grid->checksum() : 0.0;
  }
  ctx.finalize();
}

}  // namespace

const char* to_string(HeatPhase p) {
  switch (p) {
    case HeatPhase::kStartup: return "startup";
    case HeatPhase::kCompute: return "compute";
    case HeatPhase::kHalo: return "halo";
    case HeatPhase::kCheckpoint: return "checkpoint";
    case HeatPhase::kBarrier: return "barrier";
    case HeatPhase::kCleanup: return "cleanup";
    case HeatPhase::kDone: return "done";
  }
  return "?";
}

vmpi::AppMain make_heat3d(HeatParams params, std::vector<HeatReport>* reports) {
  return [params, reports](Context& ctx) { heat3d_main(ctx, params, reports); };
}

}  // namespace exasim::apps
