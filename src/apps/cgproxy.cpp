#include "apps/cgproxy.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/machine.hpp"
#include "vmpi/context.hpp"

namespace exasim::apps {
namespace {

struct CgCkptHeader {
  std::uint32_t magic = 0x43475052;  // "CGPR"
  std::int32_t rank = -1;
  std::int32_t iteration = -1;
  double residual = 0;
};

void cg_main(vmpi::Context& ctx, const CgProxyParams& p, std::vector<CgProxyReport>* reports) {
  const int rank = ctx.rank();
  auto& services = core::services_of(ctx);
  const bool checkpointing = p.checkpoint_interval > 0 && services.checkpoints != nullptr;
  ckpt::TieredWriter writer(*services.storage, services.ckpt_mode);

  // Deterministic local vector.
  std::vector<double> x(p.local_elements);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.01 * static_cast<double>(i) + rank);
  }

  int start_iteration = 1;
  int restarts_used = 0;
  double residual = 0;
  std::uint64_t prev_version = 0;
  bool have_prev = false;

  if (checkpointing) {
    std::uint64_t version = 0;
    if (auto payload = ckpt::read_latest_checkpoint_tiered(ctx, *services.checkpoints,
                                                           *services.storage, &version)) {
      CgCkptHeader header{};
      if (payload->size() != sizeof(header) + x.size() * sizeof(double)) {
        throw std::runtime_error("cgproxy checkpoint size mismatch");
      }
      std::memcpy(&header, payload->data(), sizeof(header));
      if (header.magic != CgCkptHeader{}.magic || header.rank != rank) {
        throw std::runtime_error("cgproxy checkpoint mismatch");
      }
      start_iteration = header.iteration + 1;
      residual = header.residual;
      restarts_used = 1;
      std::memcpy(x.data(), payload->data() + sizeof(header), x.size() * sizeof(double));
      prev_version = version;
      have_prev = true;
    }
  }

  for (int it = start_iteration; it <= p.total_iterations; ++it) {
    // Local "matrix-vector" work.
    ctx.compute(static_cast<double>(p.local_elements) * p.work_units_per_element);
    double local_dot = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.999 * x[i] + 1e-6;
      local_dot += x[i] * x[i];
    }

    // Two global reductions per iteration, CG-style.
    double global_dot = 0;
    if (ctx.allreduce(ctx.world(), vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &local_dot,
                      &global_dot, 1) != vmpi::Err::kSuccess) {
      return;
    }
    double global_max = 0;
    double local_max = std::abs(x[0]);
    if (ctx.allreduce(ctx.world(), vmpi::ReduceOp::kMax, vmpi::Dtype::kF64, &local_max,
                      &global_max, 1) != vmpi::Err::kSuccess) {
      return;
    }
    residual = global_dot / (1.0 + global_max);

    if (checkpointing && (it % p.checkpoint_interval == 0 || it == p.total_iterations)) {
      CgCkptHeader header;
      header.rank = rank;
      header.iteration = it;
      header.residual = residual;
      std::vector<std::byte> payload(sizeof(header) + x.size() * sizeof(double));
      std::memcpy(payload.data(), &header, sizeof(header));
      std::memcpy(payload.data() + sizeof(header), x.data(), x.size() * sizeof(double));
      writer.write(ctx, *services.checkpoints, static_cast<std::uint64_t>(it), payload);
      if (ctx.barrier(ctx.world()) != vmpi::Err::kSuccess) return;
      if (have_prev && prev_version != static_cast<std::uint64_t>(it)) {
        services.checkpoints->remove_file(prev_version, rank);
      }
      prev_version = static_cast<std::uint64_t>(it);
      have_prev = true;
    }
  }

  if (reports != nullptr) {
    auto& rep = reports->at(static_cast<std::size_t>(rank));
    rep.completed_iterations = p.total_iterations;
    rep.restarts_used = restarts_used;
    rep.residual = residual;
  }
  ctx.finalize();
}

}  // namespace

vmpi::AppMain make_cgproxy(CgProxyParams params, std::vector<CgProxyReport>* reports) {
  return [params, reports](vmpi::Context& ctx) { cg_main(ctx, params, reports); };
}

}  // namespace exasim::apps
