#pragma once

#include <cstdint>
#include <vector>

#include "vmpi/process.hpp"

namespace exasim::apps {

/// Simple token-ring application: a counter circulates rank 0 -> 1 -> ... ->
/// n-1 -> 0 for `laps` laps; every hop increments it. Used by tests and the
/// quickstart example; exercises blocking p2p, wraparound routing, and
/// failure detection on explicit-source receives.
struct RingParams {
  int laps = 1;
  std::size_t payload_bytes = 8;  ///< >= 8; the counter rides in front.
  double compute_units_per_hop = 0.0;
};

struct RingReport {
  std::uint64_t final_token = 0;  ///< Valid at rank 0 after completion.
  double elapsed_seconds = 0;
};

vmpi::AppMain make_ring(RingParams params, std::vector<RingReport>* reports = nullptr);

}  // namespace exasim::apps
