#include "apps/registry.hpp"

#include <stdexcept>

#include "apps/cgproxy.hpp"
#include "apps/heat3d.hpp"
#include "apps/ring.hpp"

namespace exasim::apps {

const std::vector<std::string>& list_apps() {
  static const std::vector<std::string> names = {"heat3d", "cgproxy", "ring"};
  return names;
}

vmpi::AppMain make_app(const std::string& name, const ParamMap& params, int ranks) {
  if (name == "heat3d") {
    HeatParams p;
    p.nx = static_cast<int>(params.get_int("nx").value_or(64));
    p.ny = static_cast<int>(params.get_int("ny").value_or(p.nx));
    p.nz = static_cast<int>(params.get_int("nz").value_or(p.nx));
    p.px = static_cast<int>(params.get_int("px").value_or(2));
    p.py = static_cast<int>(params.get_int("py").value_or(p.px));
    p.pz = static_cast<int>(params.get_int("pz").value_or(p.px));
    p.total_iterations = static_cast<int>(params.get_int("iters").value_or(100));
    p.halo_interval = static_cast<int>(params.get_int("interval").value_or(25));
    p.checkpoint_interval = p.halo_interval;
    p.real_compute = ranks <= 4096;  // Skeleton mode at scale.
    return make_heat3d(p);
  }
  if (name == "cgproxy") {
    CgProxyParams p;
    p.total_iterations = static_cast<int>(params.get_int("iters").value_or(100));
    p.checkpoint_interval = static_cast<int>(params.get_int("interval").value_or(20));
    p.local_elements = static_cast<std::size_t>(params.get_int("elements").value_or(1024));
    return make_cgproxy(p);
  }
  if (name == "ring") {
    RingParams p;
    p.laps = static_cast<int>(params.get_int("laps").value_or(3));
    p.payload_bytes = static_cast<std::size_t>(params.get_int("bytes").value_or(8));
    return make_ring(p);
  }
  throw std::invalid_argument("unknown app: " + name);
}

std::string app_params_help() {
  return
      "  --app-params=k=v,...   application parameters:\n"
      "      heat3d: nx,ny,nz,px,py,pz,iters,interval (halo+ckpt)\n"
      "      cgproxy: iters,interval,elements\n"
      "      ring: laps,bytes\n";
}

}  // namespace exasim::apps
