#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "vmpi/context.hpp"
#include "vmpi/process.hpp"

namespace exasim::apps {

/// Execution phases of the heat application — the failure-mode census of the
/// paper's §V-D ("the observed application failure modes were quite
/// interesting") classifies detections by these phases.
enum class HeatPhase : std::uint8_t {
  kStartup = 0,
  kCompute,
  kHalo,
  kCheckpoint,
  kBarrier,
  kCleanup,
  kDone,
};

const char* to_string(HeatPhase p);

/// Optional per-rank phase telemetry. Each slot is written only by its own
/// rank's fiber (which the sharded engine pins to one worker thread), so
/// plain per-slot writes are safe; read after the run. `last_phase[rank]`
/// tracks the phase a rank was last executing (the phase an abort/failure
/// interrupted).
struct HeatTelemetry {
  std::vector<HeatPhase> last_phase;
  explicit HeatTelemetry(int ranks)
      : last_phase(static_cast<std::size_t>(ranks), HeatPhase::kStartup) {}
};

/// Parameters of the iterative 3-D heat equation application (paper §V-B):
/// cube decomposition across ranks, halo exchange every `halo_interval`
/// iterations, checkpoint + global barrier + old-checkpoint deletion every
/// `checkpoint_interval` iterations, auto-restart from the last complete
/// checkpoint.
///
/// Restart is bit-transparent to the physics (checkpointed interiors +
/// halo rebuild reproduce the uninterrupted run exactly) when
/// `halo_interval == checkpoint_interval` — the paper's configuration
/// ("the halo exchange interval is set to the checkpoint interval"). With
/// unequal intervals the restart's rebuilt halos are fresher than the
/// stale ones the uninterrupted run would have used, so real-compute
/// results may differ in low-order bits across a restart.
struct HeatParams {
  // Global grid and process grid (px*py*pz must equal world size; dimensions
  // must divide evenly).
  int nx = 64, ny = 64, nz = 64;
  int px = 2, py = 2, pz = 2;

  int total_iterations = 100;
  int halo_interval = 25;
  int checkpoint_interval = 25;

  /// Reference-core work units charged per point update per iteration. The
  /// Table II calibration (DESIGN.md §6) uses work-unit cost 1 with
  /// ProcessorParams::reference_ns_per_unit = 1281.
  double work_units_per_point = 1.0;

  /// Real mode allocates the local grid and executes the 7-point stencil
  /// natively (verifiable physics); modeled mode charges the same virtual
  /// compute and sends size-only messages — used for 32,768-rank benches.
  bool real_compute = true;

  /// Register grid memory for soft-error injection (real mode only).
  bool register_memory = false;

  HeatTelemetry* telemetry = nullptr;  ///< Optional phase tracking.
};

/// Result summary published by rank 0 on completion (for tests/examples).
struct HeatReport {
  int completed_iterations = 0;
  int restarts_used = 0;       ///< Times this rank restored from a checkpoint.
  double checksum = 0;         ///< Real mode: grid sum for verification.
};

/// Returns the application entry point for the given parameters. The report,
/// if non-null, is filled per rank index (size must be world size).
vmpi::AppMain make_heat3d(HeatParams params, std::vector<HeatReport>* reports = nullptr);

/// Checkpoint payload header (also the full payload in modeled mode).
struct HeatCkptHeader {
  std::uint32_t magic = 0x48453344;  // "HE3D"
  std::int32_t rank = -1;
  std::int32_t iteration = -1;       ///< Last completed iteration.
  std::int32_t nx = 0, ny = 0, nz = 0;
};

}  // namespace exasim::apps
