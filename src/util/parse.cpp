#include "util/parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace exasim {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

}  // namespace

std::string format_sim_time(SimTime t) {
  char buf[64];
  if (t >= sim_sec(1)) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(t));
  } else if (t >= sim_ms(1)) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(t) / 1e6);
  } else if (t >= sim_us(1)) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(t));
  }
  return buf;
}

std::optional<SimTime> parse_duration(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;

  // Find the split between the numeric part and the unit suffix.
  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '+' || text[i] == 'e' || text[i] == 'E' ||
          (text[i] == '-' && i > 0 && (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
    ++i;
  }
  std::string num(text.substr(0, i));
  std::string_view unit = trim(text.substr(i));
  if (num.empty()) return std::nullopt;

  double value = 0.0;
  try {
    std::size_t pos = 0;
    value = std::stod(num, &pos);
    if (pos != num.size()) return std::nullopt;
  } catch (...) {
    return std::nullopt;
  }
  if (value < 0.0 || !std::isfinite(value)) return std::nullopt;

  double scale;
  if (unit.empty() || unit == "s" || unit == "sec") {
    scale = 1e9;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ns") {
    scale = 1.0;
  } else if (unit == "m" || unit == "min") {
    scale = 60e9;
  } else if (unit == "h") {
    scale = 3600e9;
  } else {
    return std::nullopt;
  }
  return static_cast<SimTime>(value * scale + 0.5);
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      std::string_view piece = trim(text.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::optional<std::vector<FailureSpec>> parse_failure_schedule(std::string_view text) {
  // Accept both ',' and ';' as pair separators.
  std::string normalized(text);
  for (auto& c : normalized) {
    if (c == ';') c = ',';
  }

  std::vector<FailureSpec> specs;
  for (const auto& piece : split_trimmed(normalized, ',')) {
    auto at = piece.find('@');
    if (at == std::string::npos) return std::nullopt;
    std::string_view rank_str = trim(std::string_view(piece).substr(0, at));
    std::string_view time_str = trim(std::string_view(piece).substr(at + 1));

    int rank = -1;
    auto [p, ec] = std::from_chars(rank_str.data(), rank_str.data() + rank_str.size(), rank);
    if (ec != std::errc() || p != rank_str.data() + rank_str.size() || rank < 0) {
      return std::nullopt;
    }
    auto t = parse_duration(time_str);
    if (!t) return std::nullopt;
    specs.push_back(FailureSpec{rank, *t});
  }
  return specs;
}

std::string format_failure_schedule(const std::vector<FailureSpec>& specs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i) os << ',';
    os << specs[i].rank << '@' << to_seconds(specs[i].time) << 's';
  }
  return os.str();
}

std::optional<ParamMap> ParamMap::parse(std::string_view text) {
  ParamMap map;
  for (const auto& piece : split_trimmed(text, ',')) {
    auto eq = piece.find('=');
    if (eq == std::string::npos) return std::nullopt;
    std::string key(trim(std::string_view(piece).substr(0, eq)));
    std::string value(trim(std::string_view(piece).substr(eq + 1)));
    if (key.empty()) return std::nullopt;
    map.set(std::move(key), std::move(value));
  }
  return map;
}

bool ParamMap::contains(const std::string& key) const {
  return get(key).has_value();
}

std::optional<std::string> ParamMap::get(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::int64_t> ParamMap::get_int(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  std::int64_t out = 0;
  auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc() || p != v->data() + v->size()) return std::nullopt;
  return out;
}

std::optional<double> ParamMap::get_double(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  try {
    std::size_t pos = 0;
    double out = std::stod(*v, &pos);
    if (pos != v->size()) return std::nullopt;
    return out;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<SimTime> ParamMap::get_duration(const std::string& key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  return parse_duration(*v);
}

void ParamMap::set(std::string key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

}  // namespace exasim
