#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace exasim {

/// SplitMix64 — used to seed Xoshiro and for cheap hash-style mixing.
/// Reference: Sebastiano Vigna, public domain.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// Xoshiro256** — fast, high-quality, deterministic across platforms.
///
/// The simulator must be bit-reproducible (paper §V-E: "the experiments are
/// repeatable as the simulator and the application are deterministic"), so we
/// avoid std::mt19937's distribution objects whose results are
/// implementation-defined and implement explicit draw methods instead.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Weibull with shape k and scale lambda (both > 0).
  double weibull(double shape, double scale);

  /// Splits off an independent stream (for per-rank / per-run streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace exasim
