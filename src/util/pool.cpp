#include "util/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

// ASan integration: blocks parked on a free list are poisoned so that a
// use-after-free of pooled memory is reported just like one of heap memory
// (the EXASIM_ASAN tier-1 leg). Without the sanitizer these are no-ops.
#if defined(__SANITIZE_ADDRESS__)
#define EXASIM_ASAN_POOL 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EXASIM_ASAN_POOL 1
#endif
#endif
#if defined(EXASIM_ASAN_POOL)
extern "C" {
void __asan_poison_memory_region(void const volatile* addr, std::size_t size);
void __asan_unpoison_memory_region(void const volatile* addr, std::size_t size);
}
#define EXASIM_POISON(p, n) __asan_poison_memory_region((p), (n))
#define EXASIM_UNPOISON(p, n) __asan_unpoison_memory_region((p), (n))
#else
#define EXASIM_POISON(p, n) ((void)0)
#define EXASIM_UNPOISON(p, n) ((void)0)
#endif

namespace exasim::util {

namespace {

// Block layout: [BlockHeader (16 B)][user bytes]. The header keeps the user
// region 16-byte aligned, records provenance for pool_free, and doubles as
// the free-list link while the block is parked (so the poisoned region never
// includes the link).
struct BlockHeader {
  std::uint32_t magic;       ///< kPoolMagic or kHeapMagic.
  std::uint32_t size_class;  ///< Index into the class table (pool blocks).
  union {
    std::uint64_t user_bytes;  ///< Heap blocks: original allocation size.
    BlockHeader* next;         ///< Pool blocks: free-list link while parked.
  };
};
static_assert(sizeof(BlockHeader) == 16, "header must preserve 16-byte alignment");

constexpr std::uint32_t kPoolMagic = 0x50534158u;  // "XASP"
constexpr std::uint32_t kHeapMagic = 0x48534158u;  // "XASH"

// Size classes for the pooled fast path. Payload objects are 16–120 bytes;
// spilled PayloadBufs ride the larger classes. Anything above the last class
// goes straight to the heap (bulk checkpoint payloads — rare and already
// dominated by the memcpy).
constexpr std::size_t kClassSizes[] = {32,   64,   128,  256,   512,  1024,
                                       2048, 4096, 8192, 16384, 32768, 65536};
constexpr std::size_t kClassCount = sizeof(kClassSizes) / sizeof(kClassSizes[0]);
constexpr std::size_t kMaxPooled = kClassSizes[kClassCount - 1];
constexpr std::size_t kSlabBytes = 256 * 1024;

std::size_t class_for(std::size_t bytes) {
  for (std::size_t c = 0; c < kClassCount; ++c) {
    if (bytes <= kClassSizes[c]) return c;
  }
  return kClassCount;  // Oversize: heap.
}

std::atomic<bool> g_pool_enabled{[] {
  const char* env = std::getenv("EXASIM_NO_POOL");
  return env == nullptr || env[0] == '\0' || env[0] == '0';
}()};

/// Per-thread pool state. Allocated once per thread, never destroyed:
/// registered in a process-global registry (keeps counters readable after
/// thread exit and anchors everything for leak checkers). Free-listed blocks
/// and slabs are process-lifetime, so a block freed by a short-lived worker
/// thread stays valid wherever it migrated from.
/// Counters a foreign thread may read (pool_stats) while the owner bumps
/// them. Only the owner writes, so the increment is a relaxed load+store —
/// a plain register add on x86, no locked RMW on the hot path.
struct ThreadCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> recycled{0};
  std::atomic<std::uint64_t> heap_allocs{0};
  std::atomic<std::uint64_t> slab_allocs{0};
  std::atomic<std::uint64_t> slab_bytes{0};
};

void bump(std::atomic<std::uint64_t>& c, std::uint64_t n = 1) {
  c.store(c.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

struct ThreadPool {
  BlockHeader* free_list[kClassCount] = {nullptr};
  /// Bump region of the current slab per class carve source.
  std::byte* slab_cursor = nullptr;
  std::size_t slab_remaining = 0;
  ThreadCounters stats;
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadPool*> pools;
  std::vector<void*> slabs;  ///< Anchor: slabs are reachable until exit.
};

Registry& registry() {
  static Registry* r = new Registry;  // Immortal: outlives thread_local dtors.
  return *r;
}

ThreadPool& thread_pool() {
  thread_local ThreadPool* pool = [] {
    auto* p = new ThreadPool;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.pools.push_back(p);
    return p;
  }();
  return *pool;
}

void* heap_block(std::size_t bytes, ThreadPool& tp) {
  bump(tp.stats.heap_allocs);
  auto* h = static_cast<BlockHeader*>(::operator new(sizeof(BlockHeader) + bytes));
  h->magic = kHeapMagic;
  h->size_class = 0;
  h->user_bytes = bytes;
  return h + 1;
}

}  // namespace

bool pool_enabled() { return g_pool_enabled.load(std::memory_order_relaxed); }

void set_pool_enabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

void* pool_alloc(std::size_t bytes) {
  ThreadPool& tp = thread_pool();
  bump(tp.stats.allocs);
  const std::size_t c = class_for(bytes);
  if (c >= kClassCount || !pool_enabled()) return heap_block(bytes, tp);

  if (BlockHeader* h = tp.free_list[c]; h != nullptr) {
    tp.free_list[c] = h->next;
    bump(tp.stats.recycled);
    EXASIM_UNPOISON(h + 1, kClassSizes[c]);
    return h + 1;
  }

  const std::size_t block = sizeof(BlockHeader) + kClassSizes[c];
  if (tp.slab_remaining < block) {
    // Carve a fresh slab. Slabs are process-lifetime by design (see header);
    // anchoring them in the registry keeps cross-thread migration safe and
    // leak checkers quiet. The tail of the previous slab is abandoned —
    // bounded waste (< one max-class block per slab turnover).
    auto* slab = ::operator new(kSlabBytes);
    {
      Registry& r = registry();
      std::lock_guard<std::mutex> lock(r.mu);
      r.slabs.push_back(slab);
    }
    tp.slab_cursor = static_cast<std::byte*>(slab);
    tp.slab_remaining = kSlabBytes;
    bump(tp.stats.slab_allocs);
    bump(tp.stats.slab_bytes, kSlabBytes);
  }
  auto* h = reinterpret_cast<BlockHeader*>(tp.slab_cursor);
  tp.slab_cursor += block;
  tp.slab_remaining -= block;
  h->magic = kPoolMagic;
  h->size_class = static_cast<std::uint32_t>(c);
  return h + 1;
}

void pool_free(void* p) {
  if (p == nullptr) return;
  ThreadPool& tp = thread_pool();
  bump(tp.stats.frees);
  auto* h = static_cast<BlockHeader*>(p) - 1;
  if (h->magic == kHeapMagic) {
    ::operator delete(h);
    return;
  }
  // Pool block: park it on *this* thread's free list (migration — see
  // header). The user region is poisoned while parked; the header holding
  // the link stays accessible.
  const std::size_t c = h->size_class;
  EXASIM_POISON(h + 1, kClassSizes[c]);
  h->next = tp.free_list[c];
  tp.free_list[c] = h;
}

PoolStats pool_stats() {
  PoolStats total;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const ThreadPool* tp : r.pools) {
    total.allocs += tp->stats.allocs.load(std::memory_order_relaxed);
    total.frees += tp->stats.frees.load(std::memory_order_relaxed);
    total.recycled += tp->stats.recycled.load(std::memory_order_relaxed);
    total.heap_allocs += tp->stats.heap_allocs.load(std::memory_order_relaxed);
    total.slab_allocs += tp->stats.slab_allocs.load(std::memory_order_relaxed);
    total.slab_bytes += tp->stats.slab_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace exasim::util
