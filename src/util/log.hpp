#pragma once

#include <sstream>
#include <string>

namespace exasim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Minimal leveled logger writing to stderr.
///
/// The simulator prints informational messages about failures and aborts on
/// the command line (paper §IV-B/§IV-D); tests lower the level to kOff.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static void write(LogLevel lvl, const std::string& msg);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

#define EXASIM_LOG(lvl)                       \
  if (!::exasim::Log::enabled(lvl)) {         \
  } else                                      \
    ::exasim::detail::LogLine(lvl)

#define EXASIM_DEBUG() EXASIM_LOG(::exasim::LogLevel::kDebug)
#define EXASIM_INFO() EXASIM_LOG(::exasim::LogLevel::kInfo)
#define EXASIM_WARN() EXASIM_LOG(::exasim::LogLevel::kWarn)
#define EXASIM_ERROR() EXASIM_LOG(::exasim::LogLevel::kError)

}  // namespace exasim
