#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace exasim {

/// One scheduled process failure: MPI rank and earliest virtual failure time.
struct FailureSpec {
  int rank = -1;
  SimTime time = kSimTimeNever;

  friend bool operator==(const FailureSpec&, const FailureSpec&) = default;
};

/// Parses a duration with unit suffix: "12ns", "3us", "4ms", "5s", "1.5s".
/// A bare number is interpreted as seconds (the paper gives MTTFs in seconds).
std::optional<SimTime> parse_duration(std::string_view text);

/// Parses a failure schedule of the form "rank@time[,rank@time...]"
/// (also accepts ';' separators), e.g. "12@3000s,77@1.5s".
/// Returns std::nullopt on malformed input.
std::optional<std::vector<FailureSpec>> parse_failure_schedule(std::string_view text);

/// Renders a schedule back to its canonical "rank@time" form.
std::string format_failure_schedule(const std::vector<FailureSpec>& specs);

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

/// Simple "key=value" bag used for experiment configuration strings.
class ParamMap {
 public:
  /// Parses "a=1,b=2.5,c=torus"; returns nullopt on malformed pairs.
  static std::optional<ParamMap> parse(std::string_view text);

  bool contains(const std::string& key) const;
  std::optional<std::string> get(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<SimTime> get_duration(const std::string& key) const;

  void set(std::string key, std::string value);
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace exasim
