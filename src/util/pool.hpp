#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>

namespace exasim::util {

// ---------------------------------------------------------------------------
// Hot-path allocation pool (DESIGN.md §9)
//
// The simulator's per-event constant factor is the product: xSim's whole
// point is oversubscription, so a run delivers millions of events, each of
// which used to pay one general-purpose heap allocation for its payload (and
// a second for the payload's byte buffer). pool_alloc/pool_free replace that
// with per-thread size-class free lists carved from process-lifetime slabs:
// the steady-state cost is a pointer pop/push, with zero locks and zero
// heap traffic.
//
// Thread model. Free lists are thread-local, which for the sharded PDES
// engine means pool-local to the owning LP group (each group runs on exactly
// one worker thread). A payload scheduled cross-group is allocated on the
// producer's thread and freed on the consumer's; the block then simply joins
// the consumer's free list and re-enters circulation there. Window-barrier
// mailbox traffic is symmetric across groups, so the lists stay balanced
// without a central return path — and every hand-off is already separated by
// the window barriers, so no synchronization is needed at all.
//
// Provenance. Every block carries a 16-byte header recording whether it came
// from a slab or the plain heap, so the runtime toggle (--no-pool /
// EXASIM_NO_POOL / set_pool_enabled) can flip at any time: a block is always
// returned the way it was obtained. Slabs live for the whole process (they
// are anchored in a global registry, so leak checkers see them as reachable
// and cross-thread block migration can never dangle).
//
// Determinism. Pooling affects only *where* bytes live, never the engine's
// (time, priority, source, seq) event order — the simulated schedule is
// bit-identical with pools on or off, which tests/test_machine verifies.
// ---------------------------------------------------------------------------

/// Whether pool_alloc serves from the slab pool (true) or falls through to
/// the plain heap (false). Initialized from EXASIM_NO_POOL (set and nonzero
/// disables pooling); flip at runtime via set_pool_enabled (--no-pool).
bool pool_enabled();
void set_pool_enabled(bool enabled);

/// Allocates `bytes` (16-byte aligned). Never fails softly: throws
/// std::bad_alloc like operator new.
void* pool_alloc(std::size_t bytes);

/// Returns a pool_alloc block. Safe from any thread and under any toggle
/// state (provenance header). nullptr is ignored.
void pool_free(void* p);

/// Aggregate allocation counters over all threads since process start.
/// Monotonic; diff two snapshots to meter one region of execution.
struct PoolStats {
  std::uint64_t allocs = 0;       ///< pool_alloc calls.
  std::uint64_t frees = 0;        ///< pool_free calls (non-null).
  std::uint64_t recycled = 0;     ///< Allocs served from a free list.
  std::uint64_t heap_allocs = 0;  ///< Allocs that hit the general heap
                                  ///< (pool disabled or oversize block).
  std::uint64_t slab_allocs = 0;  ///< New slabs carved (heap traffic, cold).
  std::uint64_t slab_bytes = 0;   ///< Total bytes reserved in slabs.
};
PoolStats pool_stats();

/// Payload byte buffer with small-buffer optimization: up to kInlineBytes
/// live inside the object (inside the pooled payload block — zero extra
/// allocations for the common small-message case); larger payloads spill to
/// one pool_alloc block. Move-only, like the unique_ptr payloads that carry
/// it. Default state is empty.
class PayloadBuf {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  PayloadBuf() = default;
  ~PayloadBuf() { reset_spill(); }

  PayloadBuf(const PayloadBuf&) = delete;
  PayloadBuf& operator=(const PayloadBuf&) = delete;

  PayloadBuf(PayloadBuf&& other) noexcept { steal(other); }
  PayloadBuf& operator=(PayloadBuf&& other) noexcept {
    if (this != &other) {
      reset_spill();
      steal(other);
    }
    return *this;
  }

  /// Replaces the contents with a copy of [src, src+n).
  void assign(const void* src, std::size_t n) {
    resize_uninitialized(n);
    if (n != 0) std::memcpy(data(), src, n);
  }

  /// Sets the size to n without initializing new bytes (fill via data()).
  void resize_uninitialized(std::size_t n) {
    if (n > kInlineBytes) {
      if (n > spill_capacity_) {
        reset_spill();
        spill_ = static_cast<std::byte*>(pool_alloc(n));
        spill_capacity_ = n;
      }
    }
    size_ = n;
  }

  void clear() {
    reset_spill();
    size_ = 0;
  }

  std::byte* data() { return size_ > kInlineBytes ? spill_ : inline_; }
  const std::byte* data() const { return size_ > kInlineBytes ? spill_ : inline_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True if the contents spilled out of the inline buffer.
  bool spilled() const { return size_ > kInlineBytes; }

 private:
  void reset_spill() {
    if (spill_ != nullptr) {
      pool_free(spill_);
      spill_ = nullptr;
      spill_capacity_ = 0;
    }
  }

  void steal(PayloadBuf& other) {
    size_ = other.size_;
    spill_ = other.spill_;
    spill_capacity_ = other.spill_capacity_;
    if (size_ != 0 && size_ <= kInlineBytes) std::memcpy(inline_, other.inline_, size_);
    other.spill_ = nullptr;
    other.spill_capacity_ = 0;
    other.size_ = 0;
  }

  std::byte inline_[kInlineBytes];
  std::byte* spill_ = nullptr;
  std::size_t spill_capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace exasim::util
