#include "util/rng.hpp"

#include <cmath>

namespace exasim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  // Inverse CDF; guard next_double() == 0.
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::weibull(double shape, double scale) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace exasim
