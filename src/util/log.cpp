#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace exasim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void Log::write(LogLevel lvl, const std::string& msg) {
  std::fprintf(stderr, "[exasim %s] %s\n", level_name(lvl), msg.c_str());
}

}  // namespace exasim
