#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace exasim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void Log::write(LogLevel lvl, const std::string& msg) {
  // Emit the whole record as ONE stdio call so concurrent writers (the
  // parallel experiment executor runs one simulation per thread) cannot
  // interleave fragments of each other's lines: stdio locks the stream per
  // call, which makes a single fwrite line-atomic.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[exasim ";
  line += level_name(lvl);
  line += "] ";
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace exasim
