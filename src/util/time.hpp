#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace exasim {

/// Simulated (virtual) time in nanoseconds since simulation epoch.
///
/// A plain integer type keeps event-queue comparisons cheap and makes the
/// simulation bit-deterministic. 2^64 ns ~ 584 years, far beyond any run.
using SimTime = std::uint64_t;

/// Signed difference of two SimTime values.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

inline constexpr SimTime sim_ns(std::uint64_t v) { return v; }
inline constexpr SimTime sim_us(std::uint64_t v) { return v * 1000ull; }
inline constexpr SimTime sim_ms(std::uint64_t v) { return v * 1000'000ull; }
inline constexpr SimTime sim_sec(std::uint64_t v) { return v * 1000'000'000ull; }

/// Converts a floating-point second count to SimTime, rounding to nearest ns.
inline constexpr SimTime sim_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + 0.5);
}

inline constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
inline constexpr double to_micros(SimTime t) { return static_cast<double>(t) / 1e3; }

/// Renders a SimTime as a human-readable string ("12.345 s", "87 us", ...).
std::string format_sim_time(SimTime t);

}  // namespace exasim
