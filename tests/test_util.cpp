// util: time conversions, deterministic RNG, duration & failure-schedule
// parsing, ParamMap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "util/parse.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace exasim {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(sim_us(1), 1000u);
  EXPECT_EQ(sim_ms(1), 1000'000u);
  EXPECT_EQ(sim_sec(1), 1000'000'000u);
  EXPECT_EQ(sim_seconds(1.5), 1'500'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(sim_sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_micros(sim_us(7)), 7.0);
}

TEST(Time, FormatPicksUnits) {
  EXPECT_EQ(format_sim_time(sim_sec(2)), "2.000 s");
  EXPECT_EQ(format_sim_time(sim_ms(3)), "3.000 ms");
  EXPECT_EQ(format_sim_time(sim_us(4)), "4.000 us");
  EXPECT_EQ(format_sim_time(sim_ns(5)), "5 ns");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, WeibullShapeOneIsExponential) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.12);
}

TEST(Rng, SplitStreamsAreIndependentlyDeterministic) {
  Rng a(5);
  Rng s1 = a.split();
  Rng a2(5);
  Rng s2 = a2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

struct DurationCase {
  const char* text;
  SimTime expected;
};

class DurationParse : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationParse, Parses) {
  auto got = parse_duration(GetParam().text);
  ASSERT_TRUE(got.has_value()) << GetParam().text;
  EXPECT_EQ(*got, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DurationParse,
    ::testing::Values(DurationCase{"5s", sim_sec(5)}, DurationCase{"5", sim_sec(5)},
                      DurationCase{"1.5s", sim_seconds(1.5)}, DurationCase{"3ms", sim_ms(3)},
                      DurationCase{"250us", sim_us(250)}, DurationCase{"9ns", 9},
                      DurationCase{"2m", sim_sec(120)}, DurationCase{"1h", sim_sec(3600)},
                      DurationCase{" 10 ms ", sim_ms(10)}, DurationCase{"0", 0}));

TEST(DurationParseErrors, RejectsMalformed) {
  for (const char* bad : {"", "abc", "5x", "-3s", "1..2s", "s", "3 4s"}) {
    EXPECT_FALSE(parse_duration(bad).has_value()) << bad;
  }
}

TEST(FailureScheduleParse, ParsesPairs) {
  auto specs = parse_failure_schedule("12@3000s, 77@1.5s; 0@250ms");
  ASSERT_TRUE(specs.has_value());
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0], (FailureSpec{12, sim_sec(3000)}));
  EXPECT_EQ((*specs)[1], (FailureSpec{77, sim_seconds(1.5)}));
  EXPECT_EQ((*specs)[2], (FailureSpec{0, sim_ms(250)}));
}

TEST(FailureScheduleParse, EmptyIsEmpty) {
  auto specs = parse_failure_schedule("");
  ASSERT_TRUE(specs.has_value());
  EXPECT_TRUE(specs->empty());
}

TEST(FailureScheduleParse, RejectsMalformed) {
  for (const char* bad : {"12", "a@3s", "1@x", "-2@3s", "1@"}) {
    EXPECT_FALSE(parse_failure_schedule(bad).has_value()) << bad;
  }
}

TEST(FailureScheduleParse, FormatRoundTrips) {
  std::vector<FailureSpec> specs{{3, sim_sec(10)}, {1, sim_ms(1500)}};
  auto parsed = parse_failure_schedule(format_failure_schedule(specs));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, specs);
}

TEST(SplitTrimmed, SplitsAndTrims) {
  auto parts = split_trimmed("  a , b,, c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(ParamMap, ParsesTypedValues) {
  auto map = ParamMap::parse("ranks=32768, mttf=6000s, frac=0.5, topo=torus:32x32x32");
  ASSERT_TRUE(map.has_value());
  EXPECT_EQ(map->get_int("ranks"), 32768);
  EXPECT_EQ(map->get_duration("mttf"), sim_sec(6000));
  EXPECT_EQ(map->get_double("frac"), 0.5);
  EXPECT_EQ(map->get("topo"), "torus:32x32x32");
  EXPECT_FALSE(map->contains("missing"));
  EXPECT_FALSE(map->get_int("topo").has_value());
}

TEST(ParamMap, SetOverwrites) {
  ParamMap m;
  m.set("a", "1");
  m.set("a", "2");
  EXPECT_EQ(m.get_int("a"), 2);
  EXPECT_EQ(m.size(), 1u);
}

TEST(ParamMap, RejectsMalformed) {
  EXPECT_FALSE(ParamMap::parse("novalue").has_value());
  EXPECT_FALSE(ParamMap::parse("=x").has_value());
}

TEST(Pool, RecyclesWithinSizeClass) {
  if (!util::pool_enabled()) GTEST_SKIP() << "pooling disabled in this run";
  const auto s0 = util::pool_stats();
  void* a = util::pool_alloc(48);
  util::pool_free(a);
  void* b = util::pool_alloc(40);  // Same 64-byte class: must reuse a's block.
  EXPECT_EQ(b, a);
  util::pool_free(b);
  const auto s1 = util::pool_stats();
  EXPECT_EQ(s1.allocs - s0.allocs, 2u);
  EXPECT_EQ(s1.frees - s0.frees, 2u);
  EXPECT_GE(s1.recycled - s0.recycled, 1u);
  EXPECT_EQ(s1.heap_allocs, s0.heap_allocs);
}

TEST(Pool, OversizeAndDisabledFallBackToHeap) {
  // Larger than the biggest size class: heap-routed, still freed correctly.
  const auto s0 = util::pool_stats();
  void* big = util::pool_alloc(1 << 20);
  ASSERT_NE(big, nullptr);
  util::pool_free(big);
  const auto s1 = util::pool_stats();
  EXPECT_EQ(s1.heap_allocs - s0.heap_allocs, 1u);

  // Blocks allocated while pooling is off carry the heap provenance header,
  // so freeing them after pooling is re-enabled must route to the heap.
  const bool before = util::pool_enabled();
  util::set_pool_enabled(false);
  void* p = util::pool_alloc(64);
  util::set_pool_enabled(true);
  util::pool_free(p);
  util::set_pool_enabled(before);
  const auto s2 = util::pool_stats();
  EXPECT_EQ(s2.heap_allocs - s1.heap_allocs, 1u);
}

TEST(Pool, AllocationsAreWritableAndDistinct) {
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) {
    void* p = util::pool_alloc(128);
    std::memset(p, i, 128);
    blocks.push_back(p);
  }
  std::set<void*> unique(blocks.begin(), blocks.end());
  EXPECT_EQ(unique.size(), blocks.size());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<unsigned char*>(blocks[static_cast<std::size_t>(i)])[127],
              static_cast<unsigned char>(i));
  }
  for (void* p : blocks) util::pool_free(p);
}

TEST(PayloadBuf, InlineSmallBuffers) {
  util::PayloadBuf buf;
  EXPECT_TRUE(buf.empty());
  std::vector<std::byte> src(util::PayloadBuf::kInlineBytes, std::byte{0x2a});
  buf.assign(src.data(), src.size());
  EXPECT_EQ(buf.size(), src.size());
  EXPECT_FALSE(buf.spilled());  // Exactly kInlineBytes still fits inline.
  EXPECT_EQ(std::memcmp(buf.data(), src.data(), src.size()), 0);
}

TEST(PayloadBuf, SpillsLargeBuffersAndMoves) {
  std::vector<std::byte> src(4096);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i & 0xff);
  util::PayloadBuf buf;
  buf.assign(src.data(), src.size());
  EXPECT_TRUE(buf.spilled());
  EXPECT_EQ(buf.size(), src.size());
  EXPECT_EQ(std::memcmp(buf.data(), src.data(), src.size()), 0);

  const void* spill_ptr = buf.data();
  util::PayloadBuf moved(std::move(buf));
  EXPECT_EQ(moved.data(), spill_ptr);  // Spill storage moves by pointer swap.
  EXPECT_EQ(moved.size(), src.size());
  EXPECT_TRUE(buf.empty());  // NOLINT(bugprone-use-after-move): documented state.

  util::PayloadBuf assigned;
  assigned.assign(src.data(), 16);
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), src.size());
  EXPECT_EQ(std::memcmp(assigned.data(), src.data(), src.size()), 0);
}

TEST(PayloadBuf, ReassignShrinksBackInline) {
  std::vector<std::byte> big(1024, std::byte{0x11});
  util::PayloadBuf buf;
  buf.assign(big.data(), big.size());
  EXPECT_TRUE(buf.spilled());
  const std::byte small[4] = {std::byte{1}, std::byte{2}, std::byte{3}, std::byte{4}};
  buf.assign(small, sizeof small);
  EXPECT_FALSE(buf.spilled());
  EXPECT_EQ(buf.size(), sizeof small);
  EXPECT_EQ(std::memcmp(buf.data(), small, sizeof small), 0);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace exasim
