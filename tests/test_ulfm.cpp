// ULFM extension tests (paper §VI, future-work item 3): MPI_ERR_PROC_FAILED
// surfacing, failure_ack/get_acked, Comm_revoke, Comm_shrink, Comm_agree.

#include <gtest/gtest.h>

#include <vector>

#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;

test::QuietLogs quiet;

TEST(Ulfm, ProcFailedErrorCodeSurfacesUnderReturnHandler) {
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_us(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      int v = 0;
      got = ctx.recv(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);  // Dies blocked.
    }
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
}

TEST(Ulfm, FailureAckAndGetAcked) {
  std::vector<vmpi::Rank> acked;
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 2) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);
      ctx.finalize();
      return;
    }
    if (ctx.rank() == 0) {
      int v = 0;
      EXPECT_EQ(ctx.recv(2, 0, &v, sizeof v), Err::kProcFailed);  // Detect.
      EXPECT_TRUE(ctx.failure_get_acked(ctx.world()).empty());    // Before ack.
      ctx.failure_ack(ctx.world());
      acked = ctx.failure_get_acked(ctx.world());
    }
    ctx.finalize();
  };
  run_app(cfg, app);
  ASSERT_EQ(acked.size(), 1u);
  EXPECT_EQ(acked[0], 2);
}

TEST(Ulfm, RevokePoisonsPendingAndFutureOperations) {
  Err pending_err = Err::kSuccess, future_err = Err::kSuccess;
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      int v = 0;
      // Pending recv (from rank 2, which never sends) released by revoke.
      pending_err = ctx.recv(2, 0, &v, sizeof v);
      // Post-revoke operation fails immediately.
      future_err = ctx.recv(2, 1, &v, sizeof v);
    } else if (ctx.rank() == 1) {
      ctx.compute(1e6);  // 1 ms, then revoke.
      ctx.comm_revoke(ctx.world());
    } else {
      ctx.compute(5e6);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(3), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(pending_err, Err::kRevoked);
  EXPECT_EQ(future_err, Err::kRevoked);
}

TEST(Ulfm, ShrinkExcludesFailedRanksAndWorks) {
  std::vector<int> shrunk_size(4, -1), shrunk_rank(4, -1);
  long long sum_after = -1;
  auto cfg = tiny_config(4);
  cfg.failures = {FailureSpec{1, sim_ms(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 1) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Dies blocked at 1ms.
      ctx.finalize();
      return;
    }
    // Detect the failure (timeout on a receive from the dead rank).
    int v = 0;
    EXPECT_EQ(ctx.recv(1, 0, &v, sizeof v), Err::kProcFailed);
    // Recover: shrink the world and keep computing on the survivors.
    vmpi::Comm* shrunk = ctx.comm_shrink(ctx.world());
    ASSERT_NE(shrunk, nullptr);
    shrunk_size[ctx.rank()] = shrunk->size();
    shrunk_rank[ctx.rank()] = shrunk->my_rank;
    std::int64_t mine = ctx.rank(), out = 0;
    EXPECT_EQ(ctx.allreduce(*shrunk, vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &mine, &out, 1),
              Err::kSuccess);
    if (ctx.rank() == 0) sum_after = out;
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(shrunk_size[0], 3);
  EXPECT_EQ(shrunk_size[2], 3);
  EXPECT_EQ(shrunk_size[3], 3);
  EXPECT_EQ(shrunk_rank[0], 0);
  EXPECT_EQ(shrunk_rank[2], 1);  // World rank 2 -> shrunk rank 1.
  EXPECT_EQ(shrunk_rank[3], 2);
  EXPECT_EQ(sum_after, 0 + 2 + 3);
}

TEST(Ulfm, ShrinkOnRevokedCommunicatorStillWorks) {
  std::vector<int> sizes(3, -1);
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 2) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);
      ctx.finalize();
      return;
    }
    if (ctx.rank() == 0) {
      int v = 0;
      EXPECT_EQ(ctx.recv(2, 0, &v, sizeof v), Err::kProcFailed);
      ctx.comm_revoke(ctx.world());  // Tell everyone recovery is needed.
    } else {
      // Rank 1 learns via the revoke poisoning its pending operation.
      int v = 0;
      EXPECT_EQ(ctx.recv(0, 5, &v, sizeof v), Err::kRevoked);
    }
    vmpi::Comm* shrunk = ctx.comm_shrink(ctx.world());
    ASSERT_NE(shrunk, nullptr);
    sizes[ctx.rank()] = shrunk->size();
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 2);
}

TEST(Ulfm, AgreeComputesAndAcrossSurvivors) {
  std::vector<int> agreed(3, -1);
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 2) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);
      ctx.finalize();
      return;
    }
    // Wait until the failure is known so the survivor set is stable.
    int v = 0;
    EXPECT_EQ(ctx.recv(2, 0, &v, sizeof v), Err::kProcFailed);
    bool flag = ctx.rank() == 0;  // Rank 0: true, rank 1: false -> AND false.
    EXPECT_EQ(ctx.comm_agree(ctx.world(), &flag), Err::kSuccess);
    agreed[ctx.rank()] = flag ? 1 : 0;
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(agreed[0], 0);
  EXPECT_EQ(agreed[1], 0);
}

TEST(Ulfm, AgreeTrueWhenAllTrue) {
  std::vector<int> agreed(2, -1);
  auto app = [&](Context& ctx) {
    bool flag = true;
    EXPECT_EQ(ctx.comm_agree(ctx.world(), &flag), Err::kSuccess);
    agreed[ctx.rank()] = flag ? 1 : 0;
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_EQ(agreed[0], 1);
  EXPECT_EQ(agreed[1], 1);
}

}  // namespace
}  // namespace exasim
