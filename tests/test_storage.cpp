// Storage hierarchy + tiered checkpointing (DESIGN.md §14): spec parsing
// round-trips and rejection matrix, per-tier cost math, capacity budgets,
// occupancy-window contention, staged-drain back-pressure, and the
// partner-loss restart matrix (which tier survives which failure set).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "ckpt/tiered.hpp"
#include "iomodel/storage.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using ckpt::CheckpointStore;
using ckpt::CkptMode;
using ckpt::CopyRecord;
using test::run_app;
using test::tiny_config;
using vmpi::Context;

test::QuietLogs quiet;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

StorageSpec must_parse(const std::string& text) {
  auto spec = parse_storage_spec(text);
  EXPECT_TRUE(spec.has_value()) << text;
  return spec.value();
}

// ---------------------------------------------------------------------------
// Spec grammar.

TEST(StorageSpec, DefaultIsSingleFreePfsTier) {
  const StorageSpec spec;
  EXPECT_TRUE(spec.is_default());
  EXPECT_EQ(spec.tiers.size(), 1u);
  EXPECT_EQ(spec.tiers.front().kind, StorageTierKind::kPfs);
  EXPECT_EQ(to_string(spec), "pfs");
}

TEST(StorageSpec, PresetNamesParse) {
  EXPECT_TRUE(must_parse("pfs").is_default());
  const StorageSpec hpc = must_parse("hpc");
  EXPECT_EQ(hpc.tiers.size(), 3u);
  EXPECT_EQ(to_string(hpc), "hpc");  // Preset names survive round-trips.
  EXPECT_EQ(must_parse(to_string(hpc)), hpc);
}

TEST(StorageSpec, RegisteredPresetsAllRoundTrip) {
  ASSERT_GE(list_storage().size(), 2u);
  for (const auto& preset : list_storage()) {
    const StorageSpec spec = must_parse(preset.spec);
    EXPECT_EQ(must_parse(preset.name), spec) << preset.name;
    EXPECT_EQ(must_parse(to_string(spec)), spec) << preset.name;
  }
}

TEST(StorageSpec, TierListRoundTripsCanonically) {
  const std::string text = "mem:cbw=5e10,lat=1us,cap=4e9;bb:bw=2e11,cbw=1e10;pfs:lat=1ms";
  const StorageSpec spec = must_parse(text);
  ASSERT_EQ(spec.tiers.size(), 3u);
  EXPECT_EQ(spec.tiers[0].kind, StorageTierKind::kMemory);
  EXPECT_EQ(spec.tiers[0].io.per_client_bandwidth_bytes_per_sec, 5e10);
  EXPECT_EQ(spec.tiers[0].io.metadata_latency, sim_us(1));
  EXPECT_EQ(spec.tiers[0].capacity_bytes, 4e9);
  EXPECT_EQ(spec.tiers[1].io.aggregate_bandwidth_bytes_per_sec, 2e11);
  EXPECT_EQ(spec.tiers[2].io.metadata_latency, sim_ms(1));
  EXPECT_EQ(must_parse(to_string(spec)), spec);
}

TEST(StorageSpec, PlusSeparatorAndContendFlag) {
  const StorageSpec spec = must_parse("bb:lat=10us,contend=1+pfs:bw=1e11");
  ASSERT_EQ(spec.tiers.size(), 2u);
  EXPECT_TRUE(spec.tiers[0].contended);
  EXPECT_FALSE(spec.tiers[1].contended);
  EXPECT_EQ(spec, must_parse("bb:lat=10us,contend=1;pfs:bw=1e11"));
  EXPECT_EQ(must_parse(to_string(spec)), spec);
}

TEST(StorageSpec, RejectionMatrix) {
  const char* bad[] = {
      "",                        // No tiers at all.
      "mem",                     // Missing the mandatory pfs tier.
      "mem;bb",                  // Still no pfs.
      "pfs;mem",                 // Misordered: mem must precede pfs.
      "pfs;pfs",                 // Duplicate tier.
      "mem;mem;pfs",             // Duplicate tier.
      "ssd:bw=1e9;pfs",          // Unknown tier name.
      "mem:;pfs",                // Empty option list after ':'.
      "pfs:zzz=1",               // Unknown key.
      "pfs:bw",                  // Key without value.
      "pfs:bw=",                 // Empty value.
      "pfs:bw=abc",              // Non-numeric.
      "pfs:bw=1e9x",             // Trailing garbage.
      "pfs:bw=1e999",            // Overflow.
      "pfs:bw=-1",               // Negative bandwidth.
      "pfs:cap=-5",              // Negative capacity.
      "pfs:lat=5parsecs",        // Bad duration suffix.
      "pfs:lat=-1ms",            // Negative duration.
      "pfs:contend=2",           // Bool must be 0|1.
      "pfs:contend=yes",         // Bool must be 0|1.
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse_storage_spec(text).has_value()) << "\"" << text << "\"";
  }
}

TEST(StorageSpec, ResolveThrowsOnBadConfiguredAndFallsBackOnBadEnv) {
  EXPECT_THROW(resolve_storage_spec("nonsense"), std::invalid_argument);
  ::setenv(kStorageEnvVar, "hpc", 1);
  EXPECT_EQ(resolve_storage_spec("").tiers.size(), 3u);
  EXPECT_TRUE(resolve_storage_spec("pfs").is_default());  // Flag beats env.
  ::setenv(kStorageEnvVar, "garbage", 1);
  EXPECT_TRUE(resolve_storage_spec("").is_default());  // Bad env: silent default.
  ::unsetenv(kStorageEnvVar);
  EXPECT_TRUE(resolve_storage_spec("").is_default());
}

TEST(CkptModeSpec, ParseRoundTripAndResolve) {
  for (const std::string& name : ckpt::list_ckpt_modes()) {
    auto mode = ckpt::parse_ckpt_mode(name);
    ASSERT_TRUE(mode.has_value()) << name;
    EXPECT_EQ(ckpt::to_string(*mode), name);
  }
  EXPECT_FALSE(ckpt::parse_ckpt_mode("scr").has_value());
  EXPECT_THROW(ckpt::resolve_ckpt_mode("scr"), std::invalid_argument);
  ::setenv(ckpt::kCkptModeEnvVar, "staged", 1);
  EXPECT_EQ(ckpt::resolve_ckpt_mode(""), CkptMode::kStaged);
  EXPECT_EQ(ckpt::resolve_ckpt_mode("pfs"), CkptMode::kPfs);  // Flag beats env.
  ::unsetenv(ckpt::kCkptModeEnvVar);
  EXPECT_EQ(ckpt::resolve_ckpt_mode(""), CkptMode::kPfs);
}

// ---------------------------------------------------------------------------
// Hierarchy cost math, capacity, occupancy windows.

TEST(StorageHierarchy, UnpricedTiersAreFreeAndPfsModelMatchesFlatMath) {
  const StorageHierarchy h(must_parse("pfs:bw=8e6,cbw=2e6,lat=1ms"));
  EXPECT_TRUE(h.has(StorageTierKind::kPfs));
  EXPECT_FALSE(h.has(StorageTierKind::kMemory));
  EXPECT_TRUE(h.model(StorageTierKind::kMemory).is_free());
  EXPECT_FALSE(h.is_free());
  // 1 MB at min(2 MB/s, 8/1 MB/s) = 2 MB/s -> 500 ms, plus 1 ms metadata.
  EXPECT_EQ(h.pfs_model().write_time(1'000'000, 1), sim_ms(501));
  // 8 clients: min(2 MB/s, 1 MB/s) = 1 MB/s -> 1 s + 1 ms.
  EXPECT_EQ(h.pfs_model().write_time(1'000'000, 8), sim_sec(1) + sim_ms(1));
}

TEST(StorageHierarchy, CapacityBudgets) {
  const StorageHierarchy h(must_parse("mem:cap=1000;bb:cap=1000;pfs"));
  // Node memory: `replicas` images per rank must fit the per-node budget.
  EXPECT_TRUE(h.fits(StorageTierKind::kMemory, 500, /*world_ranks=*/64, /*replicas=*/2));
  EXPECT_FALSE(h.fits(StorageTierKind::kMemory, 501, 64, 2));
  // Shared tiers divide capacity over the world size.
  EXPECT_TRUE(h.fits(StorageTierKind::kBurstBuffer, 100, 10));
  EXPECT_FALSE(h.fits(StorageTierKind::kBurstBuffer, 101, 10));
  // Unlimited (cap 0) always fits.
  EXPECT_TRUE(h.fits(StorageTierKind::kPfs, 1u << 30, 1 << 20));
}

TEST(StorageHierarchy, OccupancyWindowQueuesLikeLinkContention) {
  const StorageHierarchy h(must_parse("bb:cbw=1e6,contend=1;pfs:cbw=1e6"));
  const auto bb = StorageTierKind::kBurstBuffer;
  EXPECT_TRUE(h.any_contended());
  EXPECT_EQ(h.occupy(bb, 0, sim_ms(10)), 0);          // Idle tier: no wait.
  EXPECT_EQ(h.occupy(bb, sim_ms(4), sim_ms(10)), sim_ms(6));   // Busy until 10.
  EXPECT_EQ(h.occupy(bb, sim_ms(30), sim_ms(1)), 0);  // After the window.
  // Uncontended and unpriced tiers never wait.
  EXPECT_EQ(h.occupy(StorageTierKind::kPfs, 0, sim_ms(10)), 0);
  EXPECT_EQ(h.occupy(StorageTierKind::kPfs, sim_ms(1), sim_ms(10)), 0);
  EXPECT_EQ(h.occupy(StorageTierKind::kMemory, 0, sim_ms(10)), 0);
}

// ---------------------------------------------------------------------------
// CheckpointStore copy records and the failure matrix.

TEST(CheckpointCopies, RecordSortsByLevelAndRequiresBegin) {
  CheckpointStore store(1);
  EXPECT_THROW(store.record_copy(1, 0, CopyRecord{}), std::logic_error);
  store.begin(1, 0);
  store.append(1, 0, bytes_of("payload"));
  store.finalize(1, 0);
  store.record_copy(1, 0, CopyRecord{.level = 2, .holder = -1});
  store.record_copy(1, 0, CopyRecord{.level = 0, .holder = 0});
  const auto copies = store.copies(1, 0);
  ASSERT_EQ(copies.size(), 2u);
  EXPECT_EQ(copies[0].level, 0);
  EXPECT_EQ(copies[1].level, 2);
  EXPECT_EQ(store.file_bytes(1, 0), 7u);
  EXPECT_EQ(store.file_bytes(1, 3), 0u);  // Unknown rank: no file.
}

TEST(CheckpointCopies, LegacyFilesWithoutCopiesAreIndestructible) {
  CheckpointStore store(1);
  store.begin(1, 0);
  store.finalize(1, 0);
  EXPECT_EQ(store.apply_failures({FailureSpec{0, sim_sec(1)}}, sim_sec(2)), 0);
  EXPECT_TRUE(store.set_complete(1));
}

TEST(CheckpointCopies, FailureMatrixVictimPartnerAndBoth) {
  // Rank 0's file exists in its own memory and in partner rank 1's memory.
  auto make_store = [] {
    auto store = std::make_unique<CheckpointStore>(2);
    for (int r = 0; r < 2; ++r) {
      store->begin(1, r);
      store->append(1, r, bytes_of("img"));
      store->finalize(1, r);
      store->record_copy(1, r, CopyRecord{.level = 0, .holder = r});
      store->record_copy(1, r, CopyRecord{.level = 0, .holder = 1 - r});
    }
    return store;
  };
  {
    // Victim dies: its local copy is lost, the partner-held replica survives.
    auto store = make_store();
    EXPECT_EQ(store->apply_failures({FailureSpec{0, sim_sec(1)}}, sim_sec(2)), 2);
    EXPECT_TRUE(store->set_complete(1));
    const auto copies = store->copies(1, 0);
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_EQ(copies[0].holder, 1);
  }
  {
    // Victim AND partner die: every memory copy is gone, the set with it.
    auto store = make_store();
    EXPECT_EQ(store->apply_failures(
                  {FailureSpec{0, sim_sec(1)}, FailureSpec{1, sim_sec(1)}}, sim_sec(2)),
              4);
    EXPECT_FALSE(store->set_complete(1));
    EXPECT_FALSE(store->latest_complete().has_value());
    EXPECT_FALSE(store->file_exists(1, 0));
  }
  {
    // Both die, but a drained PFS copy landed before the run ended.
    auto store = make_store();
    for (int r = 0; r < 2; ++r) {
      store->record_copy(1, r, CopyRecord{.level = 2, .holder = -1,
                                          .ready_time = sim_ms(500),
                                          .depends_on = r, .depends_until = sim_ms(500)});
    }
    EXPECT_EQ(store->apply_failures(
                  {FailureSpec{0, sim_sec(1)}, FailureSpec{1, sim_sec(1)}}, sim_sec(2)),
              4);
    EXPECT_TRUE(store->set_complete(1));
    EXPECT_EQ(store->copies(1, 0).front().level, 2);
  }
}

TEST(CheckpointCopies, InFlightDrainsDieWithTheRunOrTheSourceRank) {
  CheckpointStore store(1);
  store.begin(1, 0);
  store.finalize(1, 0);
  store.record_copy(1, 0, CopyRecord{.level = 0, .holder = 0});
  // PFS drain still in flight when the run ends at 1 s: not durable yet.
  store.record_copy(1, 0, CopyRecord{.level = 2, .holder = -1, .ready_time = sim_sec(5),
                                     .depends_on = 0, .depends_until = sim_sec(5)});
  EXPECT_EQ(store.apply_failures({}, sim_sec(1)), 1);
  ASSERT_EQ(store.copies(1, 0).size(), 1u);
  EXPECT_EQ(store.copies(1, 0).front().level, 0);

  // Source rank dies before the bb hand-off: the drain sourced from its
  // memory image, so the copy is lost even though ready_time has passed.
  store.record_copy(1, 0, CopyRecord{.level = 1, .holder = -1, .ready_time = sim_ms(800),
                                     .depends_on = 0, .depends_until = sim_ms(800)});
  EXPECT_EQ(store.apply_failures({FailureSpec{0, sim_ms(400)}}, sim_sec(1)), 2);
  EXPECT_FALSE(store.file_exists(1, 0));

  // Source rank dies *after* the hand-off: the shared-tier copy survives.
  CheckpointStore late(1);
  late.begin(1, 0);
  late.finalize(1, 0);
  late.record_copy(1, 0, CopyRecord{.level = 1, .holder = -1, .ready_time = sim_ms(200),
                                    .depends_on = 0, .depends_until = sim_ms(200)});
  EXPECT_EQ(late.apply_failures({FailureSpec{0, sim_ms(400)}}, sim_sec(1)), 0);
  EXPECT_TRUE(late.set_complete(1));
}

// ---------------------------------------------------------------------------
// TieredWriter in simulation.

TEST(TieredWriter, PartnerModeRecordsBothMemoryCopies) {
  CheckpointStore store(2);
  const StorageHierarchy storage(must_parse("mem:cbw=1e6;pfs:lat=1ms"));
  auto app = [&](Context& ctx) {
    ckpt::TieredWriter writer(storage, CkptMode::kPartner);
    std::vector<std::byte> payload(1000, std::byte{0x5a});
    ASSERT_EQ(writer.write(ctx, store, 1, payload), vmpi::Err::kSuccess);
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_TRUE(store.set_complete(1));
  for (int r = 0; r < 2; ++r) {
    const auto copies = store.copies(1, r);
    ASSERT_EQ(copies.size(), 2u) << "rank " << r;
    EXPECT_EQ(copies[0].level, 0);
    EXPECT_EQ(copies[1].level, 0);
    EXPECT_TRUE((copies[0].holder == r && copies[1].holder == 1 - r) ||
                (copies[0].holder == 1 - r && copies[1].holder == r));
  }
}

TEST(TieredWriter, FallsBackToPfsWhenAloneOrOverBudget) {
  {
    // World of one: no partner exists, degrade to the flat PFS path.
    CheckpointStore store(1);
    const StorageHierarchy storage(must_parse("mem;pfs"));
    auto app = [&](Context& ctx) {
      ckpt::TieredWriter writer(storage, CkptMode::kPartner);
      writer.write(ctx, store, 1, bytes_of("solo"));
      ctx.finalize();
    };
    run_app(tiny_config(1), app);
    ASSERT_EQ(store.copies(1, 0).size(), 1u);
    EXPECT_EQ(store.copies(1, 0).front().level, 2);
  }
  {
    // Two images (own + hosted replica) must fit the node-memory budget.
    CheckpointStore store(2);
    const StorageHierarchy storage(must_parse("mem:cap=1000;pfs"));
    auto app = [&](Context& ctx) {
      ckpt::TieredWriter writer(storage, CkptMode::kPartner);
      std::vector<std::byte> payload(600);  // 2 x 600 > 1000.
      writer.write(ctx, store, 1, payload);
      ctx.finalize();
    };
    run_app(tiny_config(2), app);
    EXPECT_EQ(store.copies(1, 0).front().level, 2);
  }
}

TEST(TieredWriter, StagedDrainBlocksTheNextCheckpointUntilHandOff) {
  // 1000-byte image, PFS at 1 KB/s (2 KB/s aggregate over 2 clients): the
  // mem -> pfs drain takes 1 s of background sim-time. Without a burst
  // buffer the staging buffer is held the whole way, so an immediate second
  // checkpoint must wait out the remaining drain.
  const StorageHierarchy storage(must_parse("mem:cbw=1e9;pfs:bw=2e3,cbw=1e3"));
  auto elapsed_between_writes = [&](CkptMode mode) {
    CheckpointStore store(2);
    SimTime delta = 0;
    auto app = [&](Context& ctx) {
      ckpt::TieredWriter writer(storage, mode);
      std::vector<std::byte> payload(1000, std::byte{1});
      ASSERT_EQ(writer.write(ctx, store, 1, payload), vmpi::Err::kSuccess);
      const SimTime t0 = ctx.now();
      ASSERT_EQ(writer.write(ctx, store, 2, payload), vmpi::Err::kSuccess);
      if (ctx.rank() == 0) delta = ctx.now() - t0;
      ctx.finalize();
    };
    run_app(tiny_config(2), app);
    return delta;
  };
  const SimTime staged = elapsed_between_writes(CkptMode::kStaged);
  const SimTime partner = elapsed_between_writes(CkptMode::kPartner);
  EXPECT_GE(staged, sim_ms(900));   // Blocked on the in-flight 1 s drain.
  EXPECT_LT(partner, sim_ms(100));  // No drain, no back-pressure.
}

TEST(TieredWriter, StagedWithBurstBufferReleasesAfterBbLeg) {
  // A fast burst buffer takes the hand-off: drain_ready is the bb landing
  // (1000 B at 1 MB/s = 1 ms), not the slow PFS leg behind it.
  const StorageHierarchy storage(
      must_parse("mem:cbw=1e9;bb:bw=2e6,cbw=1e6;pfs:bw=2e3,cbw=1e3"));
  CheckpointStore store(2);
  SimTime delta = 0;
  auto app = [&](Context& ctx) {
    ckpt::TieredWriter writer(storage, CkptMode::kStaged);
    std::vector<std::byte> payload(1000, std::byte{1});
    ASSERT_EQ(writer.write(ctx, store, 1, payload), vmpi::Err::kSuccess);
    const SimTime t0 = ctx.now();
    ASSERT_EQ(writer.write(ctx, store, 2, payload), vmpi::Err::kSuccess);
    if (ctx.rank() == 0) delta = ctx.now() - t0;
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_LT(delta, sim_ms(100));  // The 1 s PFS leg drains off the bb copy.
  // Each rank recorded mem (x2), bb, and pfs copies.
  const auto copies = store.copies(1, 0);
  ASSERT_EQ(copies.size(), 4u);
  EXPECT_EQ(copies[2].level, 1);
  EXPECT_EQ(copies[3].level, 2);
  EXPECT_GT(copies[3].ready_time, copies[2].ready_time);
}

// ---------------------------------------------------------------------------
// Tier-aware restore.

TEST(TieredRestore, FetchesFromSurvivingPartnerMemory) {
  // Rank 0 lost its local copy (it died last launch); its replica lives in
  // rank 1's memory. Restore must fetch it over the network and report the
  // memory tier.
  CheckpointStore store(2);
  const StorageHierarchy storage(must_parse("mem:cbw=1e6;pfs:lat=1ms"));
  auto seed_app = [&](Context& ctx) {
    ckpt::TieredWriter writer(storage, CkptMode::kPartner);
    std::vector<std::byte> payload(100, std::byte{static_cast<unsigned char>(ctx.rank())});
    writer.write(ctx, store, 1, payload);
    ctx.finalize();
  };
  run_app(tiny_config(2), seed_app);
  EXPECT_EQ(store.apply_failures({FailureSpec{0, sim_sec(1)}}, sim_sec(2)), 2);

  int tier0 = -1, tier1 = -1;
  std::uint64_t version = 0;
  bool ok = true;
  auto restore_app = [&](Context& ctx) {
    int tier = -1;
    auto data = ckpt::read_latest_checkpoint_tiered(ctx, store, storage, &version, &tier);
    ok = ok && data.has_value() &&
         data->front() == std::byte{static_cast<unsigned char>(ctx.rank())};
    (ctx.rank() == 0 ? tier0 : tier1) = tier;
    ctx.finalize();
  };
  run_app(tiny_config(2), restore_app);
  EXPECT_TRUE(ok);
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(tier0, 0);  // Fetched the partner-held memory replica.
  EXPECT_EQ(tier1, 0);  // Own memory copy survived.
}

TEST(TieredRestore, FallsToDeeperTierWhenMemoryCopiesDie) {
  // Staged checkpoints drained to bb + pfs; then both ranks die, wiping all
  // memory copies. Restore must come from the burst buffer (level 1).
  CheckpointStore store(2);
  const StorageHierarchy storage(must_parse("mem:cbw=1e9;bb:bw=2e6,cbw=1e6;pfs:lat=1ms"));
  auto seed_app = [&](Context& ctx) {
    ckpt::TieredWriter writer(storage, CkptMode::kStaged);
    std::vector<std::byte> payload(100, std::byte{7});
    writer.write(ctx, store, 1, payload);
    // Let the drains land inside the run's recorded end time.
    ctx.elapse(sim_sec(1));
    ctx.finalize();
  };
  run_app(tiny_config(2), seed_app);
  EXPECT_GT(store.apply_failures(
                {FailureSpec{0, sim_sec(2)}, FailureSpec{1, sim_sec(2)}}, sim_sec(3)),
            0);
  int tier = -1;
  auto restore_app = [&](Context& ctx) {
    int t = -1;
    auto data = ckpt::read_latest_checkpoint_tiered(ctx, store, storage, nullptr, &t);
    EXPECT_TRUE(data.has_value());
    if (ctx.rank() == 0) tier = t;
    ctx.finalize();
  };
  run_app(tiny_config(2), restore_app);
  EXPECT_EQ(tier, 1);  // Nearest surviving tier: the burst buffer.
}

TEST(TieredRestore, ColdStartAfterTotalLossReturnsNothing) {
  CheckpointStore store(2);
  const StorageHierarchy storage(must_parse("mem;pfs"));
  auto seed_app = [&](Context& ctx) {
    ckpt::TieredWriter writer(storage, CkptMode::kPartner);  // Memory only.
    std::vector<std::byte> payload(100);
    writer.write(ctx, store, 1, payload);
    ctx.finalize();
  };
  run_app(tiny_config(2), seed_app);
  // Both ranks die: every copy of every file is gone.
  store.apply_failures({FailureSpec{0, sim_sec(1)}, FailureSpec{1, sim_sec(1)}},
                       sim_sec(2));
  bool empty = true;
  auto restore_app = [&](Context& ctx) {
    empty = empty && !ckpt::read_latest_checkpoint_tiered(ctx, store, storage).has_value();
    ctx.finalize();
  };
  run_app(tiny_config(2), restore_app);
  EXPECT_TRUE(empty);
}

TEST(TieredHelpers, PartnerRingAndClients) {
  EXPECT_EQ(ckpt::partner_of(0, 2), 1);
  EXPECT_EQ(ckpt::partner_of(1, 2), 0);
  EXPECT_EQ(ckpt::partner_of(7, 8), 0);
  int clients = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) clients = ckpt::checkpoint_clients(ctx);
    ctx.finalize();
  };
  run_app(tiny_config(3), app);
  EXPECT_EQ(clients, 3);  // All ranks alive.
}

}  // namespace
}  // namespace exasim
