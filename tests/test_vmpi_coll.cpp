// Collectives (linear algorithms) and communicator management.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Dtype;
using vmpi::Err;
using vmpi::ReduceOp;

test::QuietLogs quiet;

TEST(Collectives, BarrierSynchronizesClocks) {
  // Ranks arrive at wildly different times; all leave the barrier at or
  // after the latest arrival.
  std::vector<SimTime> exit_time(4, 0);
  auto app = [&](Context& ctx) {
    ctx.compute(static_cast<double>(ctx.rank()) * 1e9);  // 0..3 s
    EXPECT_EQ(ctx.barrier(ctx.world()), Err::kSuccess);
    exit_time[ctx.rank()] = ctx.now();
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(4), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  for (int i = 0; i < 4; ++i) EXPECT_GE(exit_time[i], sim_sec(3));
}

TEST(Collectives, BcastDeliversFromNonzeroRoot) {
  std::vector<int> got(5, -1);
  auto app = [&](Context& ctx) {
    int v = ctx.rank() == 2 ? 777 : 0;
    EXPECT_EQ(ctx.bcast(ctx.world(), 2, &v, sizeof v), Err::kSuccess);
    got[ctx.rank()] = v;
    ctx.finalize();
  };
  run_app(tiny_config(5), app);
  for (int v : got) EXPECT_EQ(v, 777);
}

TEST(Collectives, ReduceSumsAtRoot) {
  long long at_root = -1;
  auto app = [&](Context& ctx) {
    const std::int64_t mine = ctx.rank() + 1;
    std::int64_t out = 0;
    EXPECT_EQ(ctx.reduce(ctx.world(), 0, ReduceOp::kSum, Dtype::kI64, &mine, &out, 1),
              Err::kSuccess);
    if (ctx.rank() == 0) at_root = out;
    ctx.finalize();
  };
  run_app(tiny_config(6), app);
  EXPECT_EQ(at_root, 21);  // 1+2+...+6
}

TEST(Collectives, AllreduceMinMaxEverywhere) {
  std::vector<double> mins(5, -1), maxs(5, -1);
  auto app = [&](Context& ctx) {
    const double mine = 10.0 + ctx.rank();
    double lo = 0, hi = 0;
    EXPECT_EQ(ctx.allreduce(ctx.world(), ReduceOp::kMin, Dtype::kF64, &mine, &lo, 1),
              Err::kSuccess);
    EXPECT_EQ(ctx.allreduce(ctx.world(), ReduceOp::kMax, Dtype::kF64, &mine, &hi, 1),
              Err::kSuccess);
    mins[ctx.rank()] = lo;
    maxs[ctx.rank()] = hi;
    ctx.finalize();
  };
  run_app(tiny_config(5), app);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(mins[i], 10.0);
    EXPECT_DOUBLE_EQ(maxs[i], 14.0);
  }
}

TEST(Collectives, AllreduceVectorOfElements) {
  std::vector<std::vector<std::int32_t>> results(3);
  auto app = [&](Context& ctx) {
    std::vector<std::int32_t> mine{ctx.rank(), 10 * ctx.rank(), 1};
    std::vector<std::int32_t> out(3);
    EXPECT_EQ(ctx.allreduce(ctx.world(), ReduceOp::kSum, Dtype::kI32, mine.data(), out.data(),
                            mine.size()),
              Err::kSuccess);
    results[ctx.rank()] = out;
    ctx.finalize();
  };
  run_app(tiny_config(3), app);
  for (const auto& out : results) {
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(out[1], 30);
    EXPECT_EQ(out[2], 3);
  }
}

TEST(Collectives, GatherCollectsInRankOrder) {
  std::vector<std::int32_t> gathered;
  auto app = [&](Context& ctx) {
    const std::int32_t mine = 100 + ctx.rank();
    std::vector<std::int32_t> out(ctx.rank() == 1 ? ctx.size() : 0);
    EXPECT_EQ(ctx.gather(ctx.world(), 1, &mine, sizeof mine,
                         out.empty() ? nullptr : out.data()),
              Err::kSuccess);
    if (ctx.rank() == 1) gathered = out;
    ctx.finalize();
  };
  run_app(tiny_config(4), app);
  EXPECT_EQ(gathered, (std::vector<std::int32_t>{100, 101, 102, 103}));
}

TEST(Collectives, AllgatherEverywhere) {
  std::vector<std::vector<std::int32_t>> results(4);
  auto app = [&](Context& ctx) {
    const std::int32_t mine = ctx.rank() * ctx.rank();
    std::vector<std::int32_t> out(ctx.size());
    EXPECT_EQ(ctx.allgather(ctx.world(), &mine, sizeof mine, out.data()), Err::kSuccess);
    results[ctx.rank()] = out;
    ctx.finalize();
  };
  run_app(tiny_config(4), app);
  for (const auto& out : results) EXPECT_EQ(out, (std::vector<std::int32_t>{0, 1, 4, 9}));
}

TEST(Collectives, ScatterDistributesSlices) {
  std::vector<std::int32_t> got(4, -1);
  auto app = [&](Context& ctx) {
    std::vector<std::int32_t> src;
    if (ctx.rank() == 0) src = {5, 6, 7, 8};
    std::int32_t mine = -1;
    EXPECT_EQ(ctx.scatter(ctx.world(), 0, src.empty() ? nullptr : src.data(), sizeof mine,
                          &mine),
              Err::kSuccess);
    got[ctx.rank()] = mine;
    ctx.finalize();
  };
  run_app(tiny_config(4), app);
  EXPECT_EQ(got, (std::vector<std::int32_t>{5, 6, 7, 8}));
}

TEST(Collectives, AlltoallTransposes) {
  std::vector<std::vector<std::int32_t>> results(3);
  auto app = [&](Context& ctx) {
    std::vector<std::int32_t> src(ctx.size());
    for (int i = 0; i < ctx.size(); ++i) src[i] = 10 * ctx.rank() + i;
    std::vector<std::int32_t> dst(ctx.size(), -1);
    EXPECT_EQ(ctx.alltoall(ctx.world(), src.data(), sizeof(std::int32_t), dst.data()),
              Err::kSuccess);
    results[ctx.rank()] = dst;
    ctx.finalize();
  };
  run_app(tiny_config(3), app);
  // dst[j] at rank i = src[i] at rank j = 10*j + i.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(results[i][j], 10 * j + i);
  }
}

TEST(Collectives, LinearBarrierCostGrowsWithRanks) {
  auto time_barrier = [&](int ranks) {
    SimTime end = 0;
    auto app = [&](Context& ctx) {
      ctx.barrier(ctx.world());
      if (ctx.rank() == 0) end = ctx.now();
      ctx.finalize();
    };
    run_app(tiny_config(ranks), app);
    return end;
  };
  const SimTime t4 = time_barrier(4);
  const SimTime t32 = time_barrier(32);
  EXPECT_GT(t32, t4);
  // Linear algorithm: 31 gathers+releases vs 3 -> at least ~8x.
  EXPECT_GT(t32, 5 * t4);
}

TEST(Collectives, SingleRankCollectivesAreNoOps) {
  auto app = [&](Context& ctx) {
    EXPECT_EQ(ctx.barrier(ctx.world()), Err::kSuccess);
    int v = 3;
    EXPECT_EQ(ctx.bcast(ctx.world(), 0, &v, sizeof v), Err::kSuccess);
    std::int64_t in = 7, out = 0;
    EXPECT_EQ(ctx.allreduce(ctx.world(), ReduceOp::kSum, Dtype::kI64, &in, &out, 1),
              Err::kSuccess);
    EXPECT_EQ(out, 7);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(1), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Comm, DupCreatesIndependentContext) {
  bool crossed = false;
  auto app = [&](Context& ctx) {
    vmpi::Comm* dup = ctx.comm_dup(ctx.world());
    ASSERT_NE(dup, nullptr);
    EXPECT_NE(dup->id, ctx.world().id);
    EXPECT_EQ(dup->size(), ctx.size());
    EXPECT_EQ(dup->my_rank, ctx.rank());
    // Same tag on different comms must not cross-match: send on dup, recv on
    // dup (world recv would hang).
    if (ctx.rank() == 0) {
      int v = 1;
      ctx.send(*dup, 1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(*dup, 0, 0, &v, sizeof v);
      crossed = v == 1;
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_TRUE(crossed);
}

TEST(Comm, SplitByParity) {
  std::vector<int> new_rank(6, -1), new_size(6, -1);
  auto app = [&](Context& ctx) {
    vmpi::Comm* sub = ctx.comm_split(ctx.world(), ctx.rank() % 2, ctx.rank());
    ASSERT_NE(sub, nullptr);
    new_rank[ctx.rank()] = sub->my_rank;
    new_size[ctx.rank()] = sub->size();
    // Reduce within the sub-communicator: evens sum even ranks.
    std::int64_t mine = ctx.rank(), out = 0;
    EXPECT_EQ(ctx.allreduce(*sub, ReduceOp::kSum, Dtype::kI64, &mine, &out, 1), Err::kSuccess);
    if (ctx.rank() % 2 == 0) {
      EXPECT_EQ(out, 0 + 2 + 4);
    } else {
      EXPECT_EQ(out, 1 + 3 + 5);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(6), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(new_size[i], 3);
    EXPECT_EQ(new_rank[i], i / 2);
  }
}

TEST(Comm, SplitWithNegativeColorYieldsNoComm) {
  auto app = [&](Context& ctx) {
    vmpi::Comm* sub = ctx.comm_split(ctx.world(), ctx.rank() == 0 ? -1 : 0, 0);
    if (ctx.rank() == 0) {
      EXPECT_EQ(sub, nullptr);
    } else {
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->size(), 2);
    }
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(3), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Comm, SplitKeyControlsOrdering) {
  std::vector<int> new_rank(3, -1);
  auto app = [&](Context& ctx) {
    // Reverse-key split: highest world rank becomes rank 0.
    vmpi::Comm* sub = ctx.comm_split(ctx.world(), 0, -ctx.rank());
    ASSERT_NE(sub, nullptr);
    new_rank[ctx.rank()] = sub->my_rank;
    ctx.finalize();
  };
  run_app(tiny_config(3), app);
  EXPECT_EQ(new_rank, (std::vector<int>{2, 1, 0}));
}

TEST(Collectives, ReduceFromFailedRankSurfacesError) {
  Err got = Err::kSuccess;
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_us(1)}};
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 2) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Dies blocked at 1us.
      ctx.finalize();
      return;
    }
    std::int64_t mine = 1, out = 0;
    Err e = ctx.reduce(ctx.world(), 0, ReduceOp::kSum, Dtype::kI64, &mine, &out, 1);
    if (ctx.rank() == 0) got = e;
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
}

// ---------------------------------------------------------------------------
// Binomial-tree collective algorithms (co-design alternative; the paper's
// configuration stays linear).
// ---------------------------------------------------------------------------

core::SimConfig tree_config(int ranks) {
  auto cfg = tiny_config(ranks);
  cfg.process.collective_algo = vmpi::CollectiveAlgo::kBinomialTree;
  return cfg;
}

class TreeCollectives : public ::testing::TestWithParam<int> {};

TEST_P(TreeCollectives, BarrierSynchronizes) {
  const int n = GetParam();
  std::vector<SimTime> exit_time(static_cast<std::size_t>(n), 0);
  SimTime latest_arrival = 0;
  auto app = [&](Context& ctx) {
    ctx.compute(static_cast<double>((ctx.rank() * 37) % n) * 1e6);
    latest_arrival = std::max(latest_arrival, ctx.now());
    EXPECT_EQ(ctx.barrier(ctx.world()), Err::kSuccess);
    exit_time[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    ctx.finalize();
  };
  ASSERT_EQ(run_app(tree_config(n), app).outcome, SimResult::Outcome::kCompleted);
  for (int i = 0; i < n; ++i) EXPECT_GE(exit_time[static_cast<std::size_t>(i)], latest_arrival);
}

TEST_P(TreeCollectives, BcastFromEveryRoot) {
  const int n = GetParam();
  auto app = [&](Context& ctx) {
    for (int root = 0; root < n; ++root) {
      std::uint64_t v = ctx.rank() == root ? 100u + static_cast<std::uint64_t>(root) : 0u;
      EXPECT_EQ(ctx.bcast(ctx.world(), root, &v, sizeof v), Err::kSuccess);
      EXPECT_EQ(v, 100u + static_cast<std::uint64_t>(root));
    }
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tree_config(n), app).outcome, SimResult::Outcome::kCompleted);
}

TEST_P(TreeCollectives, ReduceAndAllreduceMatchLinearResults) {
  const int n = GetParam();
  std::vector<std::int64_t> sums(static_cast<std::size_t>(n), -1);
  auto app = [&](Context& ctx) {
    const std::int64_t mine = 3 * ctx.rank() + 1;
    std::int64_t out = 0;
    EXPECT_EQ(ctx.allreduce(ctx.world(), ReduceOp::kSum, Dtype::kI64, &mine, &out, 1),
              Err::kSuccess);
    sums[static_cast<std::size_t>(ctx.rank())] = out;
    ctx.finalize();
  };
  ASSERT_EQ(run_app(tree_config(n), app).outcome, SimResult::Outcome::kCompleted);
  std::int64_t expected = 0;
  for (int r = 0; r < n; ++r) expected += 3 * r + 1;
  for (auto s : sums) EXPECT_EQ(s, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeCollectives, ::testing::Values(2, 3, 4, 7, 8, 16, 33));

TEST(TreeCollectives2, TreeBarrierIsAsymptoticallyCheaper) {
  auto barrier_time = [&](vmpi::CollectiveAlgo algo) {
    auto cfg = tiny_config(256);
    cfg.process.collective_algo = algo;
    SimTime end = 0;
    auto app = [&](Context& ctx) {
      ctx.barrier(ctx.world());
      if (ctx.rank() == 0) end = ctx.now();
      ctx.finalize();
    };
    run_app(cfg, app);
    return end;
  };
  const SimTime linear = barrier_time(vmpi::CollectiveAlgo::kLinear);
  const SimTime tree = barrier_time(vmpi::CollectiveAlgo::kBinomialTree);
  EXPECT_LT(tree * 4, linear);  // 2*log2(256)=16 steps vs 510 messages.
}

TEST(TreeCollectives2, TreeReduceNonzeroRoot) {
  std::int64_t at_root = -1;
  auto cfg = tiny_config(6);
  cfg.process.collective_algo = vmpi::CollectiveAlgo::kBinomialTree;
  auto app = [&](Context& ctx) {
    const std::int64_t mine = ctx.rank();
    std::int64_t out = 0;
    EXPECT_EQ(ctx.reduce(ctx.world(), 4, ReduceOp::kMax, Dtype::kI64, &mine, &out, 1),
              Err::kSuccess);
    if (ctx.rank() == 4) at_root = out;
    ctx.finalize();
  };
  ASSERT_EQ(run_app(cfg, app).outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(at_root, 5);
}

}  // namespace
}  // namespace exasim
