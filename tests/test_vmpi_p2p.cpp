// Point-to-point semantics of the simulated MPI layer: blocking and
// nonblocking transfers, matching (wildcards, tags, ordering), eager vs
// rendezvous protocols, virtual-clock behavior, probes, and truncation.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "metrics/perf.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"
#include "vmpi/process.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;
using vmpi::MsgStatus;

test::QuietLogs quiet;

TEST(P2P, BlockingSendRecvDeliversPayload) {
  double received = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      const double v = 42.5;
      EXPECT_EQ(ctx.send(1, 3, &v, sizeof v), Err::kSuccess);
    } else {
      double v = 0;
      MsgStatus st;
      EXPECT_EQ(ctx.recv(0, 3, &v, sizeof v, &st), Err::kSuccess);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 3);
      EXPECT_EQ(st.bytes, sizeof v);
      received = v;
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_DOUBLE_EQ(received, 42.5);
}

TEST(P2P, ReceiveCompletionAdvancesVirtualClock) {
  SimTime recv_end = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      std::uint64_t v = 7;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      std::uint64_t v = 0;
      ctx.recv(0, 0, &v, sizeof v);
      recv_end = ctx.now();
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  // One-way: overhead (500ns) + 2 hops (star) * 1us + 8B/1GBps (8ns), plus
  // receiver overhead 500ns.
  const SimTime expected = sim_ns(500) + 2 * sim_us(1) + sim_ns(8) + sim_ns(500);
  EXPECT_EQ(recv_end, expected);
}

TEST(P2P, SenderRacesAheadReceiverMatchesLateMessage) {
  // Receiver computes for 1 virtual second before posting the receive; the
  // message waits in the unexpected queue and matches at max(post, arrival).
  SimTime recv_end = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      std::uint64_t v = 1;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      ctx.compute(1e9);  // 1e9 units * 1 ns = 1 s.
      std::uint64_t v = 0;
      ctx.recv(0, 0, &v, sizeof v);
      recv_end = ctx.now();
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_EQ(recv_end, sim_sec(1) + sim_ns(500));  // post time + recv overhead
}

TEST(P2P, AnySourceAndAnyTagMatch) {
  int got_source = -1, got_tag = -1;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 2) {
      std::uint32_t v = 0;
      MsgStatus st;
      EXPECT_EQ(ctx.recv(vmpi::kAnySource, vmpi::kAnyTag, &v, sizeof v, &st), Err::kSuccess);
      got_source = st.source;
      got_tag = st.tag;
    } else if (ctx.rank() == 1) {
      std::uint32_t v = 9;
      ctx.send(2, 5, &v, sizeof v);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(3), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(got_source, 1);
  EXPECT_EQ(got_tag, 5);
}

TEST(P2P, TagSelectivityHoldsMessagesApart) {
  std::vector<int> order;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      int a = 1, b = 2;
      ctx.send(1, 10, &a, sizeof a);
      ctx.send(1, 20, &b, sizeof b);
    } else {
      int v = 0;
      // Receive tag 20 first even though tag 10 arrived first.
      ctx.recv(0, 20, &v, sizeof v);
      order.push_back(v);
      ctx.recv(0, 10, &v, sizeof v);
      order.push_back(v);
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(P2P, FifoOrderPerSenderAndTag) {
  std::vector<int> got;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 8; ++i) ctx.send(1, 0, &i, sizeof i);
    } else {
      for (int i = 0; i < 8; ++i) {
        int v = -1;
        ctx.recv(0, 0, &v, sizeof v);
        got.push_back(v);
      }
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(got, expected);
}

TEST(P2P, RendezvousTransfersLargePayloadIntact) {
  // 512 KiB > 256 KiB eager threshold -> rendezvous protocol.
  const std::size_t n = 512 * 1024 / sizeof(std::uint32_t);
  bool ok = false;
  auto app = [&](Context& ctx) {
    std::vector<std::uint32_t> buf(n);
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<std::uint32_t>(i * 2654435761u);
      EXPECT_EQ(ctx.send(1, 1, buf.data(), buf.size() * 4), Err::kSuccess);
    } else {
      EXPECT_EQ(ctx.recv(0, 1, buf.data(), buf.size() * 4), Err::kSuccess);
      ok = true;
      for (std::size_t i = 0; i < n; i += 1001) {
        if (buf[i] != static_cast<std::uint32_t>(i * 2654435761u)) ok = false;
      }
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_TRUE(ok);
}

TEST(P2P, RendezvousIsSlowerThanEagerForSamePayload) {
  // Time a 100 KiB transfer under a 64 KiB threshold (rendezvous) vs a
  // 256 KiB threshold (eager): the RTS/CTS round trip must show up.
  auto timed = [&](std::size_t threshold) {
    SimTime end = 0;
    auto cfg = tiny_config(2);
    cfg.net.eager_threshold = threshold;
    auto app = [&](Context& ctx) {
      std::vector<std::byte> buf(100 * 1024);
      if (ctx.rank() == 0) {
        ctx.send(1, 0, buf.data(), buf.size());
      } else {
        ctx.recv(0, 0, buf.data(), buf.size());
        end = ctx.now();
      }
      ctx.finalize();
    };
    run_app(cfg, app);
    return end;
  };
  const SimTime rendezvous = timed(64 * 1024);
  const SimTime eager = timed(256 * 1024);
  EXPECT_GT(rendezvous, eager);
  // The gap is at least one control-message round trip (2 x 2 hops x 1 us).
  EXPECT_GE(rendezvous - eager, 2 * 2 * sim_us(1));
}

TEST(P2P, IsendIrecvWaitall) {
  std::vector<int> got(4, -1);
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    if (ctx.rank() == 0) {
      int vals[4] = {10, 11, 12, 13};
      std::vector<vmpi::RequestHandle> hs;
      for (int i = 0; i < 4; ++i) hs.push_back(ctx.isend(w, 1, i, &vals[i], sizeof(int)));
      EXPECT_EQ(ctx.waitall(w, hs, nullptr), Err::kSuccess);
    } else {
      std::vector<vmpi::RequestHandle> hs;
      for (int i = 0; i < 4; ++i) hs.push_back(ctx.irecv(w, 0, i, &got[i], sizeof(int)));
      std::vector<MsgStatus> sts;
      EXPECT_EQ(ctx.waitall(w, hs, &sts), Err::kSuccess);
      ASSERT_EQ(sts.size(), 4u);
      EXPECT_EQ(sts[2].tag, 2);
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
}

TEST(P2P, TestPollsCompletion) {
  bool completed_eventually = false;
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    if (ctx.rank() == 0) {
      // Delay the send by a virtual millisecond.
      ctx.elapse(sim_ms(1));
      int v = 5;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      auto h = ctx.irecv(w, 0, 0, &v, sizeof v);
      MsgStatus st;
      Err e = Err::kSuccess;
      // Not yet complete: the sender has not even sent.
      EXPECT_FALSE(ctx.test(h, &st, &e));
      // Blocking wait finishes it.
      EXPECT_EQ(ctx.wait(w, h), Err::kSuccess);
      completed_eventually = (v == 5);
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_TRUE(completed_eventually);
}

TEST(P2P, SendrecvExchangesWithoutDeadlock) {
  // Classic head-to-head exchange with large (rendezvous) payloads: naive
  // blocking send/recv would deadlock; sendrecv must not.
  bool ok0 = false, ok1 = false;
  const std::size_t bytes = 512 * 1024;
  auto app = [&](Context& ctx) {
    std::vector<std::byte> out(bytes, std::byte{static_cast<unsigned char>(ctx.rank() + 1)});
    std::vector<std::byte> in(bytes);
    const int peer = 1 - ctx.rank();
    EXPECT_EQ(ctx.sendrecv(ctx.world(), peer, 0, out.data(), bytes, peer, 0, in.data(), bytes),
              Err::kSuccess);
    const bool ok = in[0] == std::byte{static_cast<unsigned char>(peer + 1)} &&
                    in[bytes - 1] == std::byte{static_cast<unsigned char>(peer + 1)};
    (ctx.rank() == 0 ? ok0 : ok1) = ok;
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

TEST(P2P, TruncationReportsError) {
  Err got = Err::kSuccess;
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    ctx.set_error_handler(w, vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      std::uint64_t big[4] = {1, 2, 3, 4};
      ctx.send(1, 0, big, sizeof big);
    } else {
      std::uint64_t small = 0;
      got = ctx.recv(0, 0, &small, sizeof small);
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_EQ(got, Err::kTruncate);
}

TEST(P2P, ProbeSeesMessageWithoutConsuming) {
  bool probe_ok = false, recv_ok = false;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 77;
      ctx.send(1, 4, &v, sizeof v);
    } else {
      MsgStatus st;
      EXPECT_EQ(ctx.probe(ctx.world(), 0, 4, &st), Err::kSuccess);
      probe_ok = st.bytes == sizeof(int) && st.source == 0 && st.tag == 4;
      int v = 0;
      EXPECT_EQ(ctx.recv(0, 4, &v, sizeof v), Err::kSuccess);
      recv_ok = v == 77;
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_TRUE(probe_ok);
  EXPECT_TRUE(recv_ok);
}

TEST(P2P, ModeledTransfersCarryTimingWithoutPayload) {
  SimTime modeled_end = 0, real_end = 0;
  const std::size_t bytes = 4096;
  auto run_variant = [&](bool modeled) {
    SimTime end = 0;
    auto app = [&](Context& ctx) {
      if (ctx.rank() == 0) {
        std::vector<std::byte> buf(bytes);
        if (modeled) {
          ctx.send_modeled(ctx.world(), 1, 0, bytes);
        } else {
          ctx.send(1, 0, buf.data(), bytes);
        }
      } else {
        std::vector<std::byte> buf(bytes);
        if (modeled) {
          ctx.recv_modeled(ctx.world(), 0, 0, bytes);
        } else {
          ctx.recv(0, 0, buf.data(), bytes);
        }
        end = ctx.now();
      }
      ctx.finalize();
    };
    run_app(tiny_config(2), app);
    return end;
  };
  modeled_end = run_variant(true);
  real_end = run_variant(false);
  EXPECT_EQ(modeled_end, real_end) << "modeled transfers must cost exactly like real ones";
}

TEST(P2P, SelfMessagingWorks) {
  int v_out = 123, v_in = 0;
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    auto r = ctx.irecv(w, 0, 9, &v_in, sizeof v_in);
    auto s = ctx.isend(w, 0, 9, &v_out, sizeof v_out);
    EXPECT_EQ(ctx.waitall(w, {r, s}, nullptr), Err::kSuccess);
    ctx.finalize();
  };
  SimResult res = run_app(tiny_config(1), app);
  EXPECT_EQ(res.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(v_in, 123);
}

TEST(P2P, DeterministicAcrossRuns) {
  auto run_once = [&] {
    auto cfg = tiny_config(8);
    auto app = [](Context& ctx) {
      // All-to-one with staggered compute: exercises matching order.
      ctx.compute(static_cast<double>(ctx.rank()) * 100.0);
      if (ctx.rank() == 0) {
        for (int i = 1; i < ctx.size(); ++i) {
          std::uint64_t v = 0;
          ctx.recv(vmpi::kAnySource, 0, &v, sizeof v);
        }
      } else {
        std::uint64_t v = ctx.rank();
        ctx.send(0, 0, &v, sizeof v);
      }
      ctx.finalize();
    };
    return run_app(cfg, app).max_end_time;
  };
  const SimTime a = run_once();
  const SimTime b = run_once();
  EXPECT_EQ(a, b);
}

// ---- Wakeup filter (DESIGN.md §13) ----------------------------------------

TEST(P2P, WakeupFilterMatchesEagerFieldForField) {
  // Fan-in: rank 0 receives from every peer in rank order, so most arrivals
  // reach it while it is blocked on a receive they cannot complete. The
  // filtered dispatcher must suppress those resumes (counted) without
  // changing any simulated quantity vs EXASIM_EAGER_WAKEUP-style dispatch.
  auto run_mode = [&](bool eager) {
    const bool before = vmpi::eager_wakeup_enabled();
    vmpi::set_eager_wakeup(eager);
    auto app = [](Context& ctx) {
      std::uint64_t v = static_cast<std::uint64_t>(ctx.rank());
      if (ctx.rank() == 0) {
        // Reverse source order: arrivals process in ascending source key
        // order, so while blocked on the highest source every lower-source
        // arrival is unexpected — suppressible under filtered dispatch.
        for (int src = ctx.size() - 1; src >= 1; --src) {
          std::uint64_t got = 0;
          EXPECT_EQ(ctx.recv(src, 0, &got, sizeof got), Err::kSuccess);
          EXPECT_EQ(got, static_cast<std::uint64_t>(src));
        }
      } else {
        ctx.send(0, 0, &v, sizeof v);
      }
      ctx.finalize();
    };
    SimResult r = run_app(tiny_config(8), app);
    vmpi::set_eager_wakeup(before);
    return r;
  };
  const PerfSnapshot t0 = perf_snapshot();
  const SimResult filtered = run_mode(false);
  const PerfSnapshot t1 = perf_snapshot();
  const SimResult eager = run_mode(true);
  const PerfSnapshot t2 = perf_snapshot();
  const PerfSnapshot df = perf_delta(t0, t1);
  const PerfSnapshot de = perf_delta(t1, t2);
  EXPECT_GT(df.wakeups_suppressed, 0u);
  EXPECT_EQ(de.wakeups_suppressed, 0u);
  EXPECT_LT(df.fiber_resumes, de.fiber_resumes);  // Fewer switches, same sim.
  EXPECT_EQ(filtered.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(filtered.outcome, eager.outcome);
  EXPECT_EQ(filtered.events_processed, eager.events_processed);
  EXPECT_EQ(filtered.max_end_time, eager.max_end_time);
  EXPECT_EQ(filtered.min_end_time, eager.min_end_time);
  EXPECT_EQ(filtered.total_busy_time, eager.total_busy_time);
  EXPECT_EQ(filtered.total_comm_time, eager.total_comm_time);
  EXPECT_EQ(filtered.finished_count, eager.finished_count);
}

TEST(P2P, AnySourceMatchForcesWakeupUnderFiltering) {
  // Rank 0 blocks on an ANY_SOURCE receive while an unrelated arrival
  // completes a request it is NOT waiting on (suppressible), then the real
  // sender's message matches the wildcard — which must force the wakeup, or
  // the run deadlocks.
  std::uint64_t side = 0, wanted = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      auto h = ctx.irecv(ctx.world(), 2, 9, &side, sizeof side);
      EXPECT_EQ(ctx.recv(vmpi::kAnySource, 0, &wanted, sizeof wanted), Err::kSuccess);
      EXPECT_EQ(ctx.wait(ctx.world(), h), Err::kSuccess);
    } else if (ctx.rank() == 1) {
      ctx.compute(1e6);  // Send after rank 2's side traffic arrived.
      std::uint64_t v = 41;
      ctx.send(0, 0, &v, sizeof v);
    } else {
      std::uint64_t v = 17;
      ctx.send(0, 9, &v, sizeof v);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(3), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(wanted, 41u);
  EXPECT_EQ(side, 17u);
}

// Deadlock: both ranks recv from each other with nothing sent.
TEST(P2P, GenuineDeadlockIsReported) {
  auto app = [](Context& ctx) {
    int v = 0;
    ctx.recv(1 - ctx.rank(), 0, &v, sizeof v);
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kDeadlock);
  EXPECT_EQ(r.deadlocked_ranks.size(), 2u);
}

// Parameterized sweep: payload sizes across the eager/rendezvous boundary
// all deliver intact.
class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, DeliversIntact) {
  const std::size_t bytes = GetParam();
  bool ok = false;
  auto app = [&](Context& ctx) {
    std::vector<std::uint8_t> buf(bytes);
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < bytes; ++i) buf[i] = static_cast<std::uint8_t>(i * 7 + 3);
      ctx.send(1, 0, buf.data(), bytes);
    } else {
      ctx.recv(0, 0, buf.data(), bytes);
      ok = true;
      for (std::size_t i = 0; i < bytes; i += 97) {
        if (buf[i] != static_cast<std::uint8_t>(i * 7 + 3)) ok = false;
      }
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_TRUE(ok);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSweep,
                         ::testing::Values(std::size_t{1}, std::size_t{8}, std::size_t{1024},
                                           std::size_t{256 * 1024},       // boundary (eager)
                                           std::size_t{256 * 1024 + 1},   // boundary+1 (rdv)
                                           std::size_t{1024 * 1024}));

}  // namespace
}  // namespace exasim
