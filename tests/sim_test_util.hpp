#pragma once

// Shared helpers for exasim tests: quick machine configurations and one-call
// application execution.

#include <memory>
#include <string>

#include "core/machine.hpp"
#include "core/runner.hpp"
#include "util/log.hpp"

namespace exasim::test {

/// Small star-network machine with fast, simple timing: 1 us latency,
/// 1 GB/s, no slowdown — convenient exact numbers for assertions.
inline core::SimConfig tiny_config(int ranks) {
  core::SimConfig cfg;
  cfg.ranks = ranks;
  cfg.topology = "star:" + std::to_string(ranks);
  cfg.net.link_latency = sim_us(1);
  cfg.net.bandwidth_bytes_per_sec = 1e9;
  cfg.net.injection_bandwidth_bytes_per_sec = 1e9;
  cfg.net.per_message_overhead = sim_ns(500);
  cfg.net.eager_threshold = 256 * 1024;
  cfg.net.failure_timeout = sim_ms(1);
  cfg.proc.slowdown = 1.0;
  cfg.proc.reference_ns_per_unit = 1.0;
  return cfg;
}

/// Runs one application launch; optionally with a persistent checkpoint
/// store.
inline core::SimResult run_app(core::SimConfig cfg, vmpi::AppMain app,
                               ckpt::CheckpointStore* store = nullptr) {
  core::Machine machine(std::move(cfg), std::move(app));
  if (store != nullptr) machine.set_checkpoint_store(store);
  return machine.run();
}

/// Quiets the logger for the whole test binary.
struct QuietLogs {
  QuietLogs() { Log::set_level(LogLevel::kError); }
};

}  // namespace exasim::test
