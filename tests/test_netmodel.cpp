// netmodel: topology routing properties and LogGP-style timing.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "netmodel/network.hpp"
#include "netmodel/routing.hpp"
#include "netmodel/topology.hpp"
#include "util/rng.hpp"

namespace exasim {
namespace {

TEST(Torus3D, CoordinateRoundTrip) {
  Torus3D t(4, 5, 6);
  EXPECT_EQ(t.node_count(), 120);
  for (int n = 0; n < t.node_count(); ++n) EXPECT_EQ(t.node_of(t.coord_of(n)), n);
}

TEST(Torus3D, WrapAroundShortensPaths) {
  Torus3D t(8, 8, 8);
  // Nodes 0 and 7 on the x ring: distance 1 via the wrap link.
  EXPECT_EQ(t.hop_count(0, 7), 1);
  // Opposite corners: each dimension contributes its half-ring (4).
  const int far = t.node_of({4, 4, 4});
  EXPECT_EQ(t.hop_count(0, far), 12);
  EXPECT_EQ(t.diameter(), 12);
}

TEST(Torus3D, PaperConfiguration) {
  // The paper's simulated system: 32,768 nodes in a 32x32x32 wrapped torus.
  Torus3D t(32, 32, 32);
  EXPECT_EQ(t.node_count(), 32768);
  EXPECT_EQ(t.diameter(), 48);
}

TEST(Torus3D, FaceNeighborsAreOneHop) {
  Torus3D t(4, 4, 4);
  for (int n : {0, 21, 63}) {
    for (int nb : t.face_neighbors(n)) {
      EXPECT_EQ(t.hop_count(n, nb), 1);
      EXPECT_NE(nb, n);
    }
  }
}

TEST(Mesh3D, NoWrapLinks) {
  Mesh3D m(8, 1, 1);
  EXPECT_EQ(m.hop_count(0, 7), 7);
  EXPECT_EQ(m.diameter(), 7);
}

TEST(FatTree, TwoAndFourHopTiers) {
  FatTree f(4, 3);
  EXPECT_EQ(f.node_count(), 12);
  EXPECT_EQ(f.hop_count(0, 0), 0);
  EXPECT_EQ(f.hop_count(0, 3), 2);   // Same leaf switch.
  EXPECT_EQ(f.hop_count(0, 4), 4);   // Cross switch.
  EXPECT_EQ(f.diameter(), 4);
}

TEST(Dragonfly, HopTiers) {
  Dragonfly d(4, 3, 2);  // 4 groups x 3 routers x 2 nodes = 24 nodes.
  EXPECT_EQ(d.node_count(), 24);
  EXPECT_EQ(d.hop_count(0, 0), 0);
  EXPECT_EQ(d.hop_count(0, 1), 2);   // Same router.
  EXPECT_EQ(d.hop_count(0, 2), 3);   // Same group, other router.
  EXPECT_EQ(d.hop_count(0, 6), 5);   // Other group.
  EXPECT_EQ(d.diameter(), 5);
  EXPECT_EQ(d.group_of(7), 1);
  EXPECT_EQ(d.name(), "dragonfly:4x3x2");
}

TEST(Star, TwoHopsViaHub) {
  Star s(5);
  EXPECT_EQ(s.hop_count(1, 4), 2);
  EXPECT_EQ(s.hop_count(2, 2), 0);
}

// Property sweep over all topology kinds: hop counts are symmetric,
// zero-on-diagonal, and bounded by the diameter.
class TopologyProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologyProperties, MetricInvariants) {
  auto topo = make_topology(GetParam());
  Rng rng(99);
  const int n = topo->node_count();
  for (int trial = 0; trial < 300; ++trial) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int ab = topo->hop_count(a, b);
    EXPECT_EQ(ab, topo->hop_count(b, a)) << GetParam();
    EXPECT_GE(ab, 0);
    EXPECT_LE(ab, topo->diameter()) << GetParam();
    EXPECT_EQ(topo->hop_count(a, a), 0);
    if (a != b) {
      EXPECT_GE(ab, 1);
    }
  }
}

// Route-level invariants across the full zoo: every route variant is
// minimal (same length as hop_count), uses only valid link ids with valid
// planes, and variant selection wraps modulo route_count.
TEST_P(TopologyProperties, RouteInvariants) {
  auto topo = make_topology(GetParam());
  Rng rng(42);
  const int n = topo->node_count();
  std::vector<LinkId> route;
  for (int trial = 0; trial < 200; ++trial) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int variants = topo->route_count(a, b);
    EXPECT_GE(variants, 1) << GetParam();
    if (a == b) {
      EXPECT_EQ(topo->route(a, b).size(), 0u) << GetParam();
      continue;
    }
    for (int v = 0; v < variants; ++v) {
      route = topo->route(a, b, v);
      EXPECT_EQ(static_cast<int>(route.size()), topo->hop_count(a, b))
          << GetParam() << " " << a << "->" << b << " variant " << v;
      for (LinkId id : route) {
        EXPECT_LT(id, topo->link_count()) << GetParam();
        EXPECT_GE(topo->link_plane(id), 0) << GetParam();
      }
      // Variant indices wrap: v + route_count picks the same route.
      EXPECT_EQ(route, topo->route(a, b, v + variants)) << GetParam();
    }
  }
}

// Exhaustive check on small instances: diameter() equals the max pairwise
// hop count, and routes agree with hop counts for every pair.
class TopologySmall : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologySmall, DiameterIsMaxPairwiseHops) {
  auto topo = make_topology(GetParam());
  const int n = topo->node_count();
  int max_hops = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const int ab = topo->hop_count(a, b);
      max_hops = std::max(max_hops, ab);
      EXPECT_EQ(static_cast<int>(topo->route(a, b).size()), ab)
          << GetParam() << " " << a << "->" << b;
    }
  }
  EXPECT_EQ(topo->diameter(), max_hops) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kinds, TopologyProperties,
                         ::testing::Values("torus:6x7x8", "mesh:5x4x3", "fattree:8x6",
                                           "star:40", "dragonfly:4x4x4"));

INSTANTIATE_TEST_SUITE_P(Kinds, TopologySmall,
                         ::testing::Values("torus:3x4x5", "mesh:4x3x2", "fattree:4x5",
                                           "star:7", "dragonfly:3x3x2", "torus:1x1x1",
                                           "mesh:1x1x1", "fattree:4x1", "star:1",
                                           "dragonfly:1x1x1", "dragonfly:1x3x2"));

TEST(TopologyFactory, ParsesSpecs) {
  EXPECT_EQ(make_topology("torus:2x3x4")->node_count(), 24);
  EXPECT_EQ(make_topology("mesh:2x2x2")->name(), "mesh:2x2x2");
  EXPECT_THROW(make_topology("torus:2x3"), std::invalid_argument);
  EXPECT_THROW(make_topology("blah:4"), std::invalid_argument);
  EXPECT_THROW(make_topology("noseparator"), std::invalid_argument);
}

TEST(TopologyFactory, RejectsMalformedDimensions) {
  // Trailing garbage, signs, and embedded spaces are errors, not silent
  // truncation (the pre-hardening parser accepted "4garbage" as 4).
  EXPECT_THROW(make_topology("torus:4x4x4garbage"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:4x4x"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:-2x4x4"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:0x4x4"), std::invalid_argument);
  EXPECT_THROW(make_topology("star:0"), std::invalid_argument);
  EXPECT_THROW(make_topology("fattree:4x0"), std::invalid_argument);
  EXPECT_THROW(make_topology("dragonfly:2x2"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:2x2x2x2"), std::invalid_argument);
  // Overflow: per-dimension and total node count.
  EXPECT_THROW(make_topology("torus:9999999999x2x2"), std::invalid_argument);
  EXPECT_THROW(make_topology("torus:2000000x2000000x2000000"), std::invalid_argument);
  // Errors carry the offending spec and the expected format.
  try {
    make_topology("torus:4x4x4garbage");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("torus:4x4x4garbage"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
  }
}

TEST(TopologyFactory, ListsEveryKind) {
  const auto& kinds = list_topologies();
  ASSERT_EQ(kinds.size(), 5u);
  for (const char* name : {"torus", "mesh", "fattree", "dragonfly", "star"}) {
    const bool found = std::any_of(kinds.begin(), kinds.end(),
                                   [&](const TopologyInfo& info) { return info.name == name; });
    EXPECT_TRUE(found) << name;
  }
  for (const auto& info : kinds) {
    EXPECT_FALSE(info.format.empty()) << info.name;
    EXPECT_FALSE(info.summary.empty()) << info.name;
  }
}

TEST(RoutingSpecParse, AcceptsAndRoundTrips) {
  auto det = parse_routing_spec("deterministic");
  ASSERT_TRUE(det.has_value());
  EXPECT_EQ(det->kind, RoutingKind::kDeterministic);
  EXPECT_EQ(to_string(*det), "deterministic");

  auto adp = parse_routing_spec("adaptive");
  ASSERT_TRUE(adp.has_value());
  EXPECT_EQ(adp->kind, RoutingKind::kAdaptive);
  EXPECT_EQ(adp->spread, 4);
  EXPECT_EQ(to_string(*adp), "adaptive");

  auto wide = parse_routing_spec("adaptive:spread=8");
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->spread, 8);
  EXPECT_EQ(to_string(*wide), "adaptive:spread=8");
}

TEST(RoutingSpecParse, RejectsMalformed) {
  EXPECT_FALSE(parse_routing_spec("bogus").has_value());
  EXPECT_FALSE(parse_routing_spec("adaptive:spread=0").has_value());
  EXPECT_FALSE(parse_routing_spec("adaptive:spread=").has_value());
  EXPECT_FALSE(parse_routing_spec("adaptive:width=2").has_value());
  EXPECT_FALSE(parse_routing_spec("deterministic:spread=2").has_value());
  EXPECT_FALSE(parse_routing_spec("").has_value());
}

TEST(AdaptiveRoutingPolicy, DeterministicBoundedAndSpreading) {
  AdaptiveRouting policy(4);
  bool hit_nonzero = false;
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    const std::uint64_t v = policy.variant(3, 9, seq, 6);
    EXPECT_LT(v, 4u);  // Clamped to spread, not route_count.
    EXPECT_EQ(v, policy.variant(3, 9, seq, 6));  // Pure function of args.
    if (v != 0) hit_nonzero = true;
  }
  EXPECT_TRUE(hit_nonzero);  // Actually spreads across variants.
  // A single equal-cost route leaves no choice.
  EXPECT_EQ(policy.variant(3, 9, 17, 1), 0u);
  // Deterministic policy always picks the canonical variant.
  EXPECT_EQ(DeterministicRouting().variant(3, 9, 17, 6), 0u);
}

TEST(LinkTimeoutSpecParse, AcceptsAndRoundTrips) {
  EXPECT_TRUE(parse_link_timeout_spec("uniform").has_value());
  EXPECT_TRUE(parse_link_timeout_spec("uniform")->uniform());

  auto dist = parse_link_timeout_spec("uniform:50us..200us,seed=7");
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->kind, LinkTimeoutKind::kDistribution);
  EXPECT_EQ(dist->lo, sim_us(50));
  EXPECT_EQ(dist->hi, sim_us(200));
  EXPECT_EQ(dist->seed, 7u);
  EXPECT_EQ(to_string(*dist), "uniform:50us..200us,seed=7");

  auto hot = parse_link_timeout_spec("hot:0=500ms,7=2s");  // ',' works as ';'.
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->kind, LinkTimeoutKind::kHot);
  ASSERT_EQ(hot->hot.size(), 2u);
  EXPECT_EQ(hot->hot[1], (std::pair<std::uint64_t, SimTime>{7, sim_seconds(2)}));
  EXPECT_EQ(to_string(*hot), "hot:0=500ms;7=2s");

  auto plane = parse_link_timeout_spec("plane:2=1s");
  ASSERT_TRUE(plane.has_value());
  EXPECT_EQ(plane->kind, LinkTimeoutKind::kPlane);
  EXPECT_EQ(to_string(*plane), "plane:2=1s");
}

TEST(LinkTimeoutSpecParse, RejectsMalformed) {
  EXPECT_FALSE(parse_link_timeout_spec("uniform:200us..50us").has_value());  // hi < lo.
  EXPECT_FALSE(parse_link_timeout_spec("uniform:50us").has_value());        // No range.
  EXPECT_FALSE(parse_link_timeout_spec("hot:").has_value());
  EXPECT_FALSE(parse_link_timeout_spec("hot:x=1s").has_value());
  EXPECT_FALSE(parse_link_timeout_spec("plane:x=1s").has_value());
  EXPECT_FALSE(parse_link_timeout_spec("bogus").has_value());
}

TEST(LinkTimeouts, TableSemantics) {
  const auto topo = make_topology("torus:4x4x4");  // 192 link ids.
  const SimTime base = sim_ms(100);

  // Uniform: no table — callers fall back to the base timeout.
  EXPECT_TRUE(build_link_timeouts(LinkTimeoutSpec{}, *topo, base).empty());

  // Distribution: every link lands in [lo, hi]; draws are seed-stable.
  const auto dist = *parse_link_timeout_spec("uniform:50ms..200ms,seed=7");
  const auto table = build_link_timeouts(dist, *topo, base);
  ASSERT_EQ(table.size(), topo->link_count());
  for (SimTime t : table) {
    EXPECT_GE(t, sim_ms(50));
    EXPECT_LE(t, sim_ms(200));
  }
  EXPECT_EQ(table, build_link_timeouts(dist, *topo, base));

  // Hot: overrides named ids, leaves the rest at base.
  const auto hot = build_link_timeouts(*parse_link_timeout_spec("hot:0=500ms"), *topo, base);
  EXPECT_EQ(hot[0], sim_ms(500));
  EXPECT_EQ(hot[1], base);

  // Out-of-range ids and absent planes are configuration errors.
  const auto star = make_topology("star:4");
  EXPECT_THROW(build_link_timeouts(*parse_link_timeout_spec("hot:999=1s"), *star, base),
               std::invalid_argument);
  EXPECT_THROW(build_link_timeouts(*parse_link_timeout_spec("plane:2=1s"), *star, base),
               std::invalid_argument);
}

TEST(NetworkModel, PerLinkFailureTimeouts) {
  NetworkParams p;
  p.failure_timeout = sim_ms(100);
  p.link_timeouts = *parse_link_timeout_spec("hot:0=500ms");
  NetworkModel net(make_topology("torus:4x4x4"), p);
  // Link 0 is node 0's +x link: the 0 -> 1 canonical route crosses it (in
  // both directions), so that pair's timeout stretches to the hot link's.
  EXPECT_EQ(net.failure_timeout(0, 1), sim_ms(500));
  EXPECT_EQ(net.failure_timeout(1, 0), sim_ms(500));
  // A pair routed elsewhere keeps the base timeout; self-pairs always do.
  EXPECT_EQ(net.failure_timeout(1, 2), sim_ms(100));
  EXPECT_EQ(net.failure_timeout(1, 1), sim_ms(100));
  // The detector-period bound reflects the hottest link, not just the base.
  EXPECT_EQ(net.max_failure_timeout(), sim_ms(500));

  // Detection config is independent of the routing policy: the canonical
  // route decides, even under adaptive spreading.
  NetworkModel adaptive(make_topology("torus:4x4x4"), p, RoutingSpec{RoutingKind::kAdaptive});
  EXPECT_EQ(adaptive.failure_timeout(0, 1), sim_ms(500));
  EXPECT_EQ(adaptive.max_failure_timeout(), sim_ms(500));
}

TEST(NetworkModel, PlaneTimeoutsOnDragonfly) {
  NetworkParams p;
  p.failure_timeout = sim_ms(100);
  p.link_timeouts = *parse_link_timeout_spec("plane:2=2s");  // All global links.
  NetworkModel net(make_topology("dragonfly:3x3x2"), p);
  // Cross-group routes traverse a global link; intra-router routes do not.
  EXPECT_EQ(net.failure_timeout(0, 6), sim_seconds(2));
  EXPECT_EQ(net.failure_timeout(0, 1), sim_ms(100));
  EXPECT_EQ(net.max_failure_timeout(), sim_seconds(2));
}

TEST(NetworkModel, ContentionQueuesFlowsOnSharedLinks) {
  NetworkParams p;
  p.link_latency = sim_us(1);
  p.bandwidth_bytes_per_sec = 1e9;
  p.contention = true;
  NetworkModel net(make_topology("star:4"), p);
  // First flow sees an idle fabric: contended == uncontended.
  const SimTime uncontended = net.delivery_time(1, 2, 100000);
  EXPECT_EQ(net.delivery_time_at(0, 1, 2, 100000), uncontended);
  // A second identical flow at the same instant queues behind the first's
  // occupancy windows on the shared hub links.
  EXPECT_GT(net.delivery_time_at(0, 1, 2, 100000), uncontended);
  // Self-delivery never touches links.
  EXPECT_EQ(net.delivery_time_at(0, 2, 2, 100000), net.delivery_time(2, 2, 100000));

  // With contention off (the default), delivery_time_at is delivery_time.
  NetworkParams quiet = p;
  quiet.contention = false;
  NetworkModel off(make_topology("star:4"), quiet);
  EXPECT_EQ(off.delivery_time_at(0, 1, 2, 100000), off.delivery_time(1, 2, 100000));
  EXPECT_EQ(off.delivery_time_at(0, 1, 2, 100000), off.delivery_time(1, 2, 100000));
}

TEST(NetworkModel, DeliveryTimeComposition) {
  NetworkParams p;
  p.link_latency = sim_us(1);
  p.bandwidth_bytes_per_sec = 1e9;
  p.per_message_overhead = sim_ns(100);
  NetworkModel net(make_topology("mesh:4x1x1"), p);
  // 0 -> 3: 3 hops; 1000 bytes -> 1 us serialization.
  EXPECT_EQ(net.delivery_time(0, 3, 1000), sim_ns(100) + 3 * sim_us(1) + sim_us(1));
  // Zero-byte control message.
  EXPECT_EQ(net.delivery_time(0, 1, 0), sim_ns(100) + sim_us(1));
}

TEST(NetworkModel, SenderOccupancyUsesInjectionBandwidth) {
  NetworkParams p;
  p.per_message_overhead = sim_ns(100);
  p.injection_bandwidth_bytes_per_sec = 1e9;
  NetworkModel net(make_topology("star:4"), p);
  EXPECT_EQ(net.sender_occupancy(1000), sim_ns(100) + sim_us(1));
}

TEST(NetworkModel, ProtocolThreshold) {
  NetworkParams p;
  p.eager_threshold = 1024;
  NetworkModel net(make_topology("star:2"), p);
  EXPECT_EQ(net.protocol_for(1024), Protocol::kEager);
  EXPECT_EQ(net.protocol_for(1025), Protocol::kRendezvous);
}

TEST(NetworkModel, MonotoneInSizeAndDistance) {
  NetworkParams p;
  NetworkModel net(make_topology("torus:8x8x8"), p);
  EXPECT_LE(net.delivery_time(0, 1, 100), net.delivery_time(0, 1, 10000));
  const Torus3D t(8, 8, 8);
  EXPECT_LT(net.delivery_time(0, t.node_of({1, 0, 0}), 64),
            net.delivery_time(0, t.node_of({4, 4, 4}), 64));
}

TEST(HierarchicalNetwork, LevelsAndTimeouts) {
  NetworkParams system, node, chip;
  system.failure_timeout = sim_ms(100);
  node.failure_timeout = sim_ms(10);
  chip.failure_timeout = sim_ms(1);
  chip.link_latency = sim_ns(50);
  node.link_latency = sim_ns(200);
  HierarchicalNetwork net(make_topology("torus:4x4x4"), system, node, chip,
                          /*ranks_per_chip=*/2, /*chips_per_node=*/2);
  using Level = HierarchicalNetwork::Level;
  EXPECT_EQ(net.level_for(0, 1), Level::kOnChip);    // Same chip.
  EXPECT_EQ(net.level_for(0, 2), Level::kOnNode);    // Same node, other chip.
  EXPECT_EQ(net.level_for(0, 4), Level::kSystem);    // Next node.
  EXPECT_EQ(net.failure_timeout(0, 1), sim_ms(1));
  EXPECT_EQ(net.failure_timeout(0, 2), sim_ms(10));
  EXPECT_EQ(net.failure_timeout(0, 4), sim_ms(100));
  EXPECT_EQ(net.ranks_per_node(), 4);
  EXPECT_EQ(net.node_of_rank(7), 1);
  // On-chip transfer is faster than cross-system.
  EXPECT_LT(net.delivery_time_ranks(0, 1, 64), net.delivery_time_ranks(0, 60, 64));
}

TEST(NetworkModel, RejectsBadParameters) {
  NetworkParams p;
  p.bandwidth_bytes_per_sec = -1;
  NetworkModel net(make_topology("star:2"), NetworkParams{});
  EXPECT_THROW(NetworkModel(nullptr, NetworkParams{}), std::invalid_argument);
  EXPECT_THROW(NetworkModel(make_topology("star:2"), p).delivery_time(0, 1, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace exasim
