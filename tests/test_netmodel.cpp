// netmodel: topology routing properties and LogGP-style timing.

#include <gtest/gtest.h>

#include <memory>

#include "netmodel/network.hpp"
#include "netmodel/topology.hpp"
#include "util/rng.hpp"

namespace exasim {
namespace {

TEST(Torus3D, CoordinateRoundTrip) {
  Torus3D t(4, 5, 6);
  EXPECT_EQ(t.node_count(), 120);
  for (int n = 0; n < t.node_count(); ++n) EXPECT_EQ(t.node_of(t.coord_of(n)), n);
}

TEST(Torus3D, WrapAroundShortensPaths) {
  Torus3D t(8, 8, 8);
  // Nodes 0 and 7 on the x ring: distance 1 via the wrap link.
  EXPECT_EQ(t.hop_count(0, 7), 1);
  // Opposite corners: each dimension contributes its half-ring (4).
  const int far = t.node_of({4, 4, 4});
  EXPECT_EQ(t.hop_count(0, far), 12);
  EXPECT_EQ(t.diameter(), 12);
}

TEST(Torus3D, PaperConfiguration) {
  // The paper's simulated system: 32,768 nodes in a 32x32x32 wrapped torus.
  Torus3D t(32, 32, 32);
  EXPECT_EQ(t.node_count(), 32768);
  EXPECT_EQ(t.diameter(), 48);
}

TEST(Torus3D, FaceNeighborsAreOneHop) {
  Torus3D t(4, 4, 4);
  for (int n : {0, 21, 63}) {
    for (int nb : t.face_neighbors(n)) {
      EXPECT_EQ(t.hop_count(n, nb), 1);
      EXPECT_NE(nb, n);
    }
  }
}

TEST(Mesh3D, NoWrapLinks) {
  Mesh3D m(8, 1, 1);
  EXPECT_EQ(m.hop_count(0, 7), 7);
  EXPECT_EQ(m.diameter(), 7);
}

TEST(FatTree, TwoAndFourHopTiers) {
  FatTree f(4, 3);
  EXPECT_EQ(f.node_count(), 12);
  EXPECT_EQ(f.hop_count(0, 0), 0);
  EXPECT_EQ(f.hop_count(0, 3), 2);   // Same leaf switch.
  EXPECT_EQ(f.hop_count(0, 4), 4);   // Cross switch.
  EXPECT_EQ(f.diameter(), 4);
}

TEST(Dragonfly, HopTiers) {
  Dragonfly d(4, 3, 2);  // 4 groups x 3 routers x 2 nodes = 24 nodes.
  EXPECT_EQ(d.node_count(), 24);
  EXPECT_EQ(d.hop_count(0, 0), 0);
  EXPECT_EQ(d.hop_count(0, 1), 2);   // Same router.
  EXPECT_EQ(d.hop_count(0, 2), 3);   // Same group, other router.
  EXPECT_EQ(d.hop_count(0, 6), 5);   // Other group.
  EXPECT_EQ(d.diameter(), 5);
  EXPECT_EQ(d.group_of(7), 1);
  EXPECT_EQ(d.name(), "dragonfly:4x3x2");
}

TEST(Star, TwoHopsViaHub) {
  Star s(5);
  EXPECT_EQ(s.hop_count(1, 4), 2);
  EXPECT_EQ(s.hop_count(2, 2), 0);
}

// Property sweep over all topology kinds: hop counts are symmetric,
// zero-on-diagonal, and bounded by the diameter.
class TopologyProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologyProperties, MetricInvariants) {
  auto topo = make_topology(GetParam());
  Rng rng(99);
  const int n = topo->node_count();
  for (int trial = 0; trial < 300; ++trial) {
    const int a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int b = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int ab = topo->hop_count(a, b);
    EXPECT_EQ(ab, topo->hop_count(b, a)) << GetParam();
    EXPECT_GE(ab, 0);
    EXPECT_LE(ab, topo->diameter()) << GetParam();
    EXPECT_EQ(topo->hop_count(a, a), 0);
    if (a != b) EXPECT_GE(ab, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, TopologyProperties,
                         ::testing::Values("torus:6x7x8", "mesh:5x4x3", "fattree:8x6",
                                           "star:40", "dragonfly:4x4x4"));

TEST(TopologyFactory, ParsesSpecs) {
  EXPECT_EQ(make_topology("torus:2x3x4")->node_count(), 24);
  EXPECT_EQ(make_topology("mesh:2x2x2")->name(), "mesh:2x2x2");
  EXPECT_THROW(make_topology("torus:2x3"), std::invalid_argument);
  EXPECT_THROW(make_topology("blah:4"), std::invalid_argument);
  EXPECT_THROW(make_topology("noseparator"), std::invalid_argument);
}

TEST(NetworkModel, DeliveryTimeComposition) {
  NetworkParams p;
  p.link_latency = sim_us(1);
  p.bandwidth_bytes_per_sec = 1e9;
  p.per_message_overhead = sim_ns(100);
  NetworkModel net(make_topology("mesh:4x1x1"), p);
  // 0 -> 3: 3 hops; 1000 bytes -> 1 us serialization.
  EXPECT_EQ(net.delivery_time(0, 3, 1000), sim_ns(100) + 3 * sim_us(1) + sim_us(1));
  // Zero-byte control message.
  EXPECT_EQ(net.delivery_time(0, 1, 0), sim_ns(100) + sim_us(1));
}

TEST(NetworkModel, SenderOccupancyUsesInjectionBandwidth) {
  NetworkParams p;
  p.per_message_overhead = sim_ns(100);
  p.injection_bandwidth_bytes_per_sec = 1e9;
  NetworkModel net(make_topology("star:4"), p);
  EXPECT_EQ(net.sender_occupancy(1000), sim_ns(100) + sim_us(1));
}

TEST(NetworkModel, ProtocolThreshold) {
  NetworkParams p;
  p.eager_threshold = 1024;
  NetworkModel net(make_topology("star:2"), p);
  EXPECT_EQ(net.protocol_for(1024), Protocol::kEager);
  EXPECT_EQ(net.protocol_for(1025), Protocol::kRendezvous);
}

TEST(NetworkModel, MonotoneInSizeAndDistance) {
  NetworkParams p;
  NetworkModel net(make_topology("torus:8x8x8"), p);
  EXPECT_LE(net.delivery_time(0, 1, 100), net.delivery_time(0, 1, 10000));
  const Torus3D t(8, 8, 8);
  EXPECT_LT(net.delivery_time(0, t.node_of({1, 0, 0}), 64),
            net.delivery_time(0, t.node_of({4, 4, 4}), 64));
}

TEST(HierarchicalNetwork, LevelsAndTimeouts) {
  NetworkParams system, node, chip;
  system.failure_timeout = sim_ms(100);
  node.failure_timeout = sim_ms(10);
  chip.failure_timeout = sim_ms(1);
  chip.link_latency = sim_ns(50);
  node.link_latency = sim_ns(200);
  HierarchicalNetwork net(make_topology("torus:4x4x4"), system, node, chip,
                          /*ranks_per_chip=*/2, /*chips_per_node=*/2);
  using Level = HierarchicalNetwork::Level;
  EXPECT_EQ(net.level_for(0, 1), Level::kOnChip);    // Same chip.
  EXPECT_EQ(net.level_for(0, 2), Level::kOnNode);    // Same node, other chip.
  EXPECT_EQ(net.level_for(0, 4), Level::kSystem);    // Next node.
  EXPECT_EQ(net.failure_timeout(0, 1), sim_ms(1));
  EXPECT_EQ(net.failure_timeout(0, 2), sim_ms(10));
  EXPECT_EQ(net.failure_timeout(0, 4), sim_ms(100));
  EXPECT_EQ(net.ranks_per_node(), 4);
  EXPECT_EQ(net.node_of_rank(7), 1);
  // On-chip transfer is faster than cross-system.
  EXPECT_LT(net.delivery_time_ranks(0, 1, 64), net.delivery_time_ranks(0, 60, 64));
}

TEST(NetworkModel, RejectsBadParameters) {
  NetworkParams p;
  p.bandwidth_bytes_per_sec = -1;
  NetworkModel net(make_topology("star:2"), NetworkParams{});
  EXPECT_THROW(NetworkModel(nullptr, NetworkParams{}), std::invalid_argument);
  EXPECT_THROW(NetworkModel(make_topology("star:2"), p).delivery_time(0, 1, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace exasim
