// Property-style sweeps across the whole stack: bit-determinism of arbitrary
// traffic patterns, no-hang-under-failure for every collective, rendezvous
// failure interleavings, and hierarchical-machine execution.

#include <gtest/gtest.h>

#include <vector>

#include "apps/heat3d.hpp"
#include "core/runner.hpp"
#include "sim_test_util.hpp"
#include "util/rng.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;

test::QuietLogs quiet;

// ---------------------------------------------------------------------------
// Determinism: a randomized (but seeded) traffic pattern must produce
// bit-identical virtual end times and event counts across repeated runs.
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismSweep, RandomTrafficIsBitReproducible) {
  const std::uint64_t seed = GetParam();
  auto run_once = [&]() {
    auto cfg = tiny_config(12);
    auto app = [seed](Context& ctx) {
      Rng rng(seed * 1000 + static_cast<std::uint64_t>(ctx.rank()));
      // Random mix of compute, sends to random peers, and matching receives:
      // every rank sends exactly 8 messages tagged by round; receives are
      // sourced via a fixed permutation so the pattern always completes.
      const int n = ctx.size();
      for (int round = 0; round < 8; ++round) {
        ctx.compute(rng.next_below(50'000));
        const int dest = (ctx.rank() + 1 + static_cast<int>(rng.next_below(3))) % n;
        std::uint64_t v = rng.next_u64();
        // Tag encodes the destination choice so receivers can match blindly.
        ctx.send(dest, round * 4 + (dest - ctx.rank() + n) % n, &v, sizeof v);
      }
      // Drain: receive everything addressed to me this round structure.
      // Senders chose me with offset 1..3; probe-free approach: ANY_SOURCE
      // receives until each round's expected count arrives is nondeterministic
      // in count, so instead every rank just receives its own mirrored count:
      // re-derive what each peer sent to me.
      for (int src_off = 1; src_off <= 3; ++src_off) {
        const int src = (ctx.rank() - src_off + 2 * n) % n;
        Rng peer_rng(seed * 1000 + static_cast<std::uint64_t>(src));
        for (int round = 0; round < 8; ++round) {
          (void)peer_rng.next_below(50'000);
          const int dest = (src + 1 + static_cast<int>(peer_rng.next_below(3))) % n;
          (void)peer_rng.next_u64();
          if (dest == ctx.rank()) {
            std::uint64_t v = 0;
            ctx.recv(src, round * 4 + src_off, &v, sizeof v);
          }
        }
      }
      ctx.finalize();
    };
    return run_app(cfg, app);
  };
  SimResult a = run_once();
  SimResult b = run_once();
  ASSERT_EQ(a.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(a.max_end_time, b.max_end_time);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.total_busy_time, b.total_busy_time);
  EXPECT_EQ(a.total_comm_time, b.total_comm_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismSweep, ::testing::Values(1, 2, 3, 17, 99));

// ---------------------------------------------------------------------------
// No-hang property: killing any rank mid-collective must end in an abort (or
// clean completion if the collective finished first) — never a deadlock.
// ---------------------------------------------------------------------------

enum class CollKind { kBarrier, kBcast, kReduce, kAllgather, kAlltoall };

struct CollFailCase {
  CollKind kind;
  int victim;
  SimTime when;
};

class CollectiveFailureSweep : public ::testing::TestWithParam<CollFailCase> {};

TEST_P(CollectiveFailureSweep, AbortsInsteadOfHanging) {
  const auto param = GetParam();
  auto cfg = tiny_config(8);
  cfg.failures = {FailureSpec{param.victim, param.when}};
  auto app = [&](Context& ctx) {
    // Skew arrival so the failure lands at different collective stages.
    ctx.compute(static_cast<double>(ctx.rank()) * 1e3);
    std::int64_t in = ctx.rank(), out = 0;
    std::vector<std::int64_t> buf(static_cast<std::size_t>(ctx.size()));
    switch (param.kind) {
      case CollKind::kBarrier: ctx.barrier(ctx.world()); break;
      case CollKind::kBcast: ctx.bcast(ctx.world(), 0, &in, sizeof in); break;
      case CollKind::kReduce:
        ctx.reduce(ctx.world(), 2, vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &in, &out, 1);
        break;
      case CollKind::kAllgather:
        ctx.allgather(ctx.world(), &in, sizeof in, buf.data());
        break;
      case CollKind::kAlltoall:
        ctx.alltoall(ctx.world(), buf.data(), sizeof(std::int64_t), buf.data());
        break;
    }
    ctx.barrier(ctx.world());  // Second collective exercises post-failure ops.
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  // Never a deadlock; with these early failure times, always an abort.
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(r.failed_count, 1);
  ASSERT_TRUE(r.abort_time.has_value());
  EXPECT_GE(*r.abort_time, param.when);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CollectiveFailureSweep,
    ::testing::Values(CollFailCase{CollKind::kBarrier, 0, sim_us(1)},
                      CollFailCase{CollKind::kBarrier, 7, sim_us(2)},
                      CollFailCase{CollKind::kBarrier, 3, sim_us(5)},
                      CollFailCase{CollKind::kBcast, 0, sim_us(1)},
                      CollFailCase{CollKind::kBcast, 5, sim_us(3)},
                      CollFailCase{CollKind::kReduce, 2, sim_us(1)},
                      CollFailCase{CollKind::kReduce, 6, sim_us(4)},
                      CollFailCase{CollKind::kAllgather, 1, sim_us(2)},
                      CollFailCase{CollKind::kAlltoall, 4, sim_us(3)}));

// ---------------------------------------------------------------------------
// Rendezvous failure interleavings.
// ---------------------------------------------------------------------------

TEST(RendezvousFailure, SenderDiesAfterRtsReceiverTimesOut) {
  // Receiver matches the RTS and waits for data that never comes (the sender
  // died before its CTS arrived): the kAwaitingData request must be released
  // by the failure notice.
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.net.eager_threshold = 1024;  // Force rendezvous for 4 KiB.
  cfg.failures = {FailureSpec{0, sim_us(10)}};
  auto app = [&](Context& ctx) {
    std::vector<std::byte> buf(4096);
    if (ctx.rank() == 0) {
      // Post the rendezvous send, then die while waiting for the CTS (the
      // receiver only posts its recv after 1 ms, far past our failure time).
      ctx.send(1, 0, buf.data(), buf.size());
    } else {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      ctx.compute(1e6);  // 1 ms: the sender is long dead.
      got = ctx.recv(0, 0, buf.data(), buf.size());
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(r.failed_count, 1);
  EXPECT_EQ(r.finished_count, 1);
}

TEST(RendezvousFailure, SendPostedToKnownDeadReceiverTimesOut) {
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.net.eager_threshold = 1024;
  cfg.failures = {FailureSpec{1, sim_us(50)}};
  auto app = [&](Context& ctx) {
    std::vector<std::byte> buf(1 << 20);  // 1 MiB: long transfer.
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      ctx.compute(1e5);  // Post the send around t=100us, after the failure.
      got = ctx.send(1, 0, buf.data(), buf.size());
    } else {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Blocked on an unrelated tag -> dies.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
}

TEST(RendezvousFailure, RecvPostedAfterNoticeMatchingDeadSendersRtsTimesOut) {
  // The RTS from the (now dead) sender already sits in the unexpected queue
  // and the failure notice has been processed; a receive posted afterwards
  // matches the RTS, enters the awaiting-data state, and must still be
  // released by timeout rather than hanging.
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.net.eager_threshold = 1024;
  cfg.failures = {FailureSpec{0, sim_us(10)}};
  auto app = [&](Context& ctx) {
    std::vector<std::byte> buf(4096);
    if (ctx.rank() == 0) {
      ctx.send(1, 0, buf.data(), buf.size());  // RTS out; dies awaiting CTS.
    } else {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      // Learn of the failure first (blocked past the notice), then post.
      int v = 0;
      Err first = ctx.recv(0, 9, &v, sizeof v);  // Unrelated tag: times out.
      EXPECT_EQ(first, Err::kProcFailed);
      EXPECT_FALSE(ctx.failed_peers().empty());
      got = ctx.recv(0, 0, buf.data(), buf.size());  // Matches the dead RTS.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
}

// ---------------------------------------------------------------------------
// Hierarchical machine end-to-end: multiple ranks per node.
// ---------------------------------------------------------------------------

TEST(Hierarchy, HeatRunsWithMultipleRanksPerNode) {
  NetworkParams system, node, chip;
  system.link_latency = sim_us(1);
  node.link_latency = sim_ns(200);
  chip.link_latency = sim_ns(50);
  auto net = std::make_shared<HierarchicalNetwork>(make_topology("mesh:2x1x1"), system, node,
                                                   chip, /*ranks_per_chip=*/2,
                                                   /*chips_per_node=*/2);
  core::SimConfig cfg = tiny_config(8);
  cfg.network = net;
  cfg.ranks_per_node = 4;

  apps::HeatParams heat;
  heat.nx = heat.ny = heat.nz = 8;
  heat.px = heat.py = heat.pz = 2;
  heat.total_iterations = 20;
  heat.halo_interval = 5;
  heat.checkpoint_interval = 5;
  core::RunnerConfig rc;
  rc.base = cfg;
  std::vector<apps::HeatReport> reports(8);
  core::ResilientRunner runner(rc, apps::make_heat3d(heat, &reports));
  core::RunnerResult res = runner.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(reports[0].completed_iterations, 20);
}

TEST(Hierarchy, IntraNodeTrafficIsFasterThanInterNode) {
  NetworkParams system, node, chip;
  system.link_latency = sim_us(10);
  node.link_latency = sim_ns(100);
  chip.link_latency = sim_ns(100);
  auto net = std::make_shared<HierarchicalNetwork>(make_topology("mesh:2x1x1"), system, node,
                                                   chip, 2, 1);
  auto timed_pair = [&](int src, int dst) {
    core::SimConfig cfg = tiny_config(4);
    cfg.network = net;
    cfg.ranks_per_node = 2;
    SimTime end = 0;
    auto app = [&](Context& ctx) {
      int v = 0;
      if (ctx.rank() == src) ctx.send(dst, 0, &v, sizeof v);
      if (ctx.rank() == dst) {
        ctx.recv(src, 0, &v, sizeof v);
        end = ctx.now();
      }
      ctx.finalize();
    };
    run_app(cfg, app);
    return end;
  };
  EXPECT_LT(timed_pair(0, 1), timed_pair(0, 2));  // Same node vs cross-node.
}

// ---------------------------------------------------------------------------
// Many outstanding requests complete regardless of posting order.
// ---------------------------------------------------------------------------

TEST(Stress, HundredOutstandingRequestsAnyOrder) {
  constexpr int kMsgs = 100;
  int received = 0;
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    if (ctx.rank() == 0) {
      std::vector<vmpi::RequestHandle> hs;
      std::vector<int> vals(kMsgs);
      for (int i = 0; i < kMsgs; ++i) {
        vals[static_cast<std::size_t>(i)] = i;
        hs.push_back(ctx.isend(w, 1, i, &vals[static_cast<std::size_t>(i)], sizeof(int)));
      }
      EXPECT_EQ(ctx.waitall(w, hs, nullptr), Err::kSuccess);
    } else {
      // Post receives in reverse tag order, forcing unexpected-queue matches.
      std::vector<vmpi::RequestHandle> hs;
      std::vector<int> got(kMsgs, -1);
      ctx.elapse(sim_ms(1));  // Let all sends land first.
      for (int i = kMsgs - 1; i >= 0; --i) {
        hs.push_back(ctx.irecv(w, 0, i, &got[static_cast<std::size_t>(i)], sizeof(int)));
      }
      EXPECT_EQ(ctx.waitall(w, hs, nullptr), Err::kSuccess);
      for (int i = 0; i < kMsgs; ++i) {
        if (got[static_cast<std::size_t>(i)] == i) ++received;
      }
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(received, kMsgs);
}

}  // namespace
}  // namespace exasim
