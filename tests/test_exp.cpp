// Tests for the exp experiment subsystem: plan enumeration, seed derivation
// stability, the parallel executor's determinism contract (identical result
// tables for any job count), and per-item error reporting.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/ring.hpp"
#include "core/runner.hpp"
#include "exp/emit.hpp"
#include "exp/executor.hpp"
#include "exp/plan.hpp"
#include "metrics/table.hpp"
#include "util/log.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"

using namespace exasim;
using exp::Axis;
using exp::ExperimentPlan;
using exp::ExecutorOptions;
using exp::ParallelExecutor;
using exp::ResultTable;
using exp::SeedMode;
using exp::WorkItem;

TEST(ExperimentPlan, CrossProductEnumeratesFirstAxisOutermost) {
  const auto plan = ExperimentPlan::cross_product(
      {Axis{"alpha", {"a0", "a1"}}, Axis{"beta", {"b0", "b1", "b2"}}});
  ASSERT_EQ(plan.axis_count(), 2u);
  ASSERT_EQ(plan.point_count(), 6u);
  // The order the old serial nested loops used: alpha outer, beta inner.
  const std::size_t expect[6][2] = {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(plan.point(i).index, i);
    EXPECT_EQ(plan.point(i).at(0), expect[i][0]);
    EXPECT_EQ(plan.point(i).at(1), expect[i][1]);
  }
}

TEST(ExperimentPlan, ItemsEnumeratePointMajor) {
  const auto plan =
      ExperimentPlan::cross_product({Axis{"x", {"0", "1"}}}, /*replicates=*/3, /*base_seed=*/9);
  ASSERT_EQ(plan.item_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const WorkItem w = plan.item(i);
    EXPECT_EQ(w.item_index, i);
    EXPECT_EQ(w.point_index, i / 3);
    EXPECT_EQ(w.replicate, static_cast<int>(i % 3));
  }
  EXPECT_THROW(plan.item(6), std::out_of_range);
}

TEST(ExperimentPlan, SeedDerivationIsStable) {
  // Pinned values: recorded experiment seeds must stay reproducible across
  // releases. If this test fails, derive_seed changed — that is a breaking
  // change to every published campaign result.
  EXPECT_EQ(ExperimentPlan::derive_seed(1, 0, 0), UINT64_C(0x1e1f5efcf993416d));
  EXPECT_EQ(ExperimentPlan::derive_seed(1, 1, 0), UINT64_C(0x8c38532494e82b7e));
  EXPECT_EQ(ExperimentPlan::derive_seed(1, 0, 1), UINT64_C(0xe5e2906340b7b270));
  EXPECT_EQ(ExperimentPlan::derive_seed(7, 3, 2), UINT64_C(0x996110b67c6095da));

  // Distinctness over a whole campaign.
  std::set<std::uint64_t> seen;
  for (std::size_t p = 0; p < 16; ++p) {
    for (int r = 0; r < 16; ++r) seen.insert(ExperimentPlan::derive_seed(1, p, r));
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(ExperimentPlan, SequentialSeedModeMatchesLegacyBenchScheme) {
  auto plan = ExperimentPlan::cross_product({Axis{"mttf", {"64", "16"}}}, /*replicates=*/10,
                                            /*base_seed=*/7000);
  plan.set_seed_mode(SeedMode::kSequentialPerReplicate);
  // The old serial loops seeded `7000 + seed_index` for every row.
  EXPECT_EQ(plan.item(0).seed, 7000u);
  EXPECT_EQ(plan.item(9).seed, 7009u);
  EXPECT_EQ(plan.item(10).seed, 7000u);  // Next point restarts the seeds.
  EXPECT_EQ(plan.item(19).seed, 7009u);
}

namespace {

/// Runs a tiny ring simulation — a real simulation, so parallel execution
/// exercises the whole engine/fiber/vmpi stack (and TSan sees it).
double ring_e2_seconds(int laps, int ranks, std::uint64_t seed) {
  core::SimConfig machine;
  machine.ranks = ranks;
  machine.topology = "star:" + std::to_string(ranks);
  core::RunnerConfig rc;
  rc.base = machine;
  rc.seed = seed;
  apps::RingParams ring;
  ring.laps = laps;
  return to_seconds(core::ResilientRunner(rc, apps::make_ring(ring)).run().total_time);
}

/// The determinism contract: one full campaign -> rendered result table.
std::string campaign_csv(int jobs) {
  auto plan = ExperimentPlan::cross_product(
      {Axis{"laps", {"1", "2"}}, Axis{"ranks", {"2", "4", "8"}}}, /*replicates=*/3,
      /*base_seed=*/11);
  const int laps_of[] = {1, 2};
  const int ranks_of[] = {2, 4, 8};

  ParallelExecutor pool(ExecutorOptions{jobs, {}});
  auto outcomes = pool.run(plan, [&](const exp::Point& point, const WorkItem& item) {
    // Mix the derived seed into the row so seed derivation differences would
    // show up in the table, not just run-to-run timing.
    Rng rng(item.seed);
    const double e2 =
        ring_e2_seconds(laps_of[point.at(0)], ranks_of[point.at(1)], item.seed);
    return e2 + 1e-9 * static_cast<double>(rng.next_below(1000));
  });

  ResultTable table({"laps", "ranks", "replicate", "seed", "e2"});
  for (std::size_t i = 0; i < plan.item_count(); ++i) {
    const WorkItem item = plan.item(i);
    const exp::Point& point = plan.point(item.point_index);
    EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    table.add_row({plan.axis(0).values[point.at(0)], plan.axis(1).values[point.at(1)],
                   TablePrinter::integer(item.replicate), std::to_string(item.seed),
                   TablePrinter::num(*outcomes[i] * 1e6, 6)});
  }
  return table.to_csv();
}

}  // namespace

TEST(ParallelExecutor, ResultTableIdenticalForAnyJobCount) {
  Log::set_level(LogLevel::kOff);
  const std::string serial = campaign_csv(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, campaign_csv(4));
  EXPECT_EQ(serial, campaign_csv(exp::hardware_jobs()));
}

TEST(ParallelExecutor, ResultTableIdenticalWithPoolingOff) {
  // The hot-path memory pools (DESIGN.md §9) must be invisible to campaign
  // results: the same table for pooling {on, off} x jobs {1, 4}. The
  // parallel/pooled case is where per-thread free lists and cross-thread
  // block migration actually engage.
  Log::set_level(LogLevel::kOff);
  const bool before = util::pool_enabled();
  util::set_pool_enabled(true);
  const std::string pooled = campaign_csv(1);
  const std::string pooled_parallel = campaign_csv(4);
  util::set_pool_enabled(false);
  const std::string heap = campaign_csv(1);
  const std::string heap_parallel = campaign_csv(4);
  util::set_pool_enabled(before);
  EXPECT_FALSE(pooled.empty());
  EXPECT_EQ(pooled, pooled_parallel);
  EXPECT_EQ(pooled, heap);
  EXPECT_EQ(pooled, heap_parallel);
}

TEST(ParallelExecutor, ThrowingEvaluateIsReportedPerItem) {
  ParallelExecutor pool(ExecutorOptions{4, {}});
  auto outcomes = pool.map(8, [](std::size_t i) -> int {
    if (i % 2 == 1) throw std::runtime_error("boom " + std::to_string(i));
    return static_cast<int>(i) * 10;
  });
  ASSERT_EQ(outcomes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i % 2 == 1) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error, "boom " + std::to_string(i));
    } else {
      ASSERT_TRUE(outcomes[i].ok());
      EXPECT_EQ(*outcomes[i], static_cast<int>(i) * 10);
    }
  }
}

TEST(ParallelExecutor, NonStandardExceptionIsCaptured) {
  ParallelExecutor pool(ExecutorOptions{2, {}});
  auto outcomes = pool.map(2, [](std::size_t i) -> int {
    if (i == 0) throw 42;  // NOLINT: deliberately not a std::exception.
    return 1;
  });
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].error, "non-standard exception");
  EXPECT_TRUE(outcomes[1].ok());
}

TEST(ParallelExecutor, ProgressCallbackIsSerializedAndComplete) {
  std::vector<std::size_t> done_values;
  ExecutorOptions options;
  options.jobs = 4;
  options.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 20u);
    done_values.push_back(done);
  };
  ParallelExecutor pool(options);
  auto outcomes = pool.map(20, [](std::size_t i) { return i; });
  ASSERT_EQ(outcomes.size(), 20u);
  ASSERT_EQ(done_values.size(), 20u);
  for (std::size_t i = 0; i < done_values.size(); ++i) EXPECT_EQ(done_values[i], i + 1);
}

TEST(ParallelExecutor, JobsOneRunsInOrder) {
  std::vector<std::size_t> order;
  ParallelExecutor pool(ExecutorOptions{1, {}});
  pool.map(5, [&](std::size_t i) {
    order.push_back(i);  // Safe: jobs=1 executes inline on this thread.
    return i;
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ResultTable, EmitsTextCsvAndJson) {
  ResultTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({R"(quo"te)", "2\n3"});
  EXPECT_NE(t.to_text().find("alpha"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,1\nquo\"te,2\n3\n");
  EXPECT_EQ(t.to_json(),
            "[\n  {\"name\": \"alpha\", \"value\": \"1\"},\n"
            "  {\"name\": \"quo\\\"te\", \"value\": \"2\\n3\"}\n]\n");
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
}

TEST(Jobs, ResolutionRules) {
  EXPECT_EQ(exp::resolve_jobs(3), 3);
  EXPECT_GE(exp::resolve_jobs(0), 1);  // 0 = all hardware threads.
  EXPECT_GE(exp::hardware_jobs(), 1);

  const char* args[] = {"bench", "--jobs=5"};
  EXPECT_EQ(exp::jobs_from_cli(2, const_cast<char**>(args)), 5);
  const char* args2[] = {"bench", "--jobs", "7"};
  EXPECT_EQ(exp::jobs_from_cli(3, const_cast<char**>(args2)), 7);
  const char* args3[] = {"bench"};
  EXPECT_EQ(exp::jobs_from_cli(1, const_cast<char**>(args3)), -1);
}
