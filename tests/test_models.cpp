// procmodel / iomodel / powermodel unit tests.

#include <gtest/gtest.h>

#include "iomodel/pfs.hpp"
#include "powermodel/power.hpp"
#include "procmodel/processor.hpp"

namespace exasim {
namespace {

TEST(ProcessorModel, ScalesNativeTimeBySlowdown) {
  ProcessorParams p;
  p.slowdown = 1000.0;  // The paper's configuration (§V-C).
  ProcessorModel m(p);
  EXPECT_EQ(m.scale_native(sim_us(1)), sim_ms(1));
}

TEST(ProcessorModel, HostToReferenceNormalization) {
  ProcessorParams p;
  p.slowdown = 2.0;
  p.host_to_reference = 0.5;  // Host is 2x faster than the reference core.
  ProcessorModel m(p);
  EXPECT_EQ(m.scale_native(sim_us(100)), sim_us(100));
}

TEST(ProcessorModel, WorkUnitsTimesCost) {
  ProcessorParams p;
  p.slowdown = 1000.0;
  p.reference_ns_per_unit = 1281.0;  // Table II calibration.
  ProcessorModel m(p);
  // 4096 points/iteration -> ~5.247 s of simulated time.
  const SimTime t = m.work_time(4096.0);
  EXPECT_NEAR(to_seconds(t), 5.247, 0.001);
}

TEST(ProcessorModel, ReferenceSecondsApplySlowdown) {
  ProcessorParams p;
  p.slowdown = 10.0;
  ProcessorModel m(p);
  EXPECT_EQ(m.reference_seconds(1.0), sim_sec(10));
}

TEST(ProcessorModel, RejectsBadInput) {
  ProcessorParams bad;
  bad.slowdown = 0;
  EXPECT_THROW(ProcessorModel{bad}, std::invalid_argument);
  ProcessorModel m{ProcessorParams{}};
  EXPECT_THROW(m.work_time(-1.0), std::invalid_argument);
  EXPECT_THROW(m.reference_seconds(-0.5), std::invalid_argument);
}

TEST(PfsModel, FreeModelChargesNothing) {
  // The paper's configuration: "the file system overhead for
  // checkpoint/restart was not considered" (§V-C).
  PfsModel pfs{PfsParams{}};
  EXPECT_TRUE(pfs.is_free());
  EXPECT_EQ(pfs.write_time(1 << 20, 32768), 0u);
  EXPECT_EQ(pfs.read_time(1 << 20, 1), 0u);
}

TEST(PfsModel, AggregateBandwidthSharesAcrossClients) {
  PfsParams p;
  p.aggregate_bandwidth_bytes_per_sec = 1e9;
  PfsModel pfs(p);
  // 1 client gets 1 GB/s; 10 clients get 100 MB/s each.
  EXPECT_EQ(pfs.write_time(1'000'000, 1), sim_ms(1));
  EXPECT_EQ(pfs.write_time(1'000'000, 10), sim_ms(10));
}

TEST(PfsModel, PerClientCapApplies) {
  PfsParams p;
  p.aggregate_bandwidth_bytes_per_sec = 100e9;
  p.per_client_bandwidth_bytes_per_sec = 1e9;
  PfsModel pfs(p);
  // Aggregate/1 = 100 GB/s but the per-client cap (1 GB/s) binds.
  EXPECT_EQ(pfs.write_time(1'000'000, 1), sim_ms(1));
}

TEST(PfsModel, MetadataLatencyAdds) {
  PfsParams p;
  p.metadata_latency = sim_us(50);
  p.per_client_bandwidth_bytes_per_sec = 1e9;
  PfsModel pfs(p);
  EXPECT_EQ(pfs.write_time(0, 4), sim_us(50));
  EXPECT_EQ(pfs.metadata_time(), sim_us(50));
  EXPECT_EQ(pfs.write_time(1000, 1), sim_us(50) + sim_us(1));
}

TEST(PfsModel, RejectsBadClients) {
  PfsModel pfs{PfsParams{}};
  EXPECT_THROW(pfs.write_time(10, 0), std::invalid_argument);
}

TEST(EnergyLedger, AccumulatesPerState) {
  PowerParams p;
  p.busy_watts = 100;
  p.comm_watts = 60;
  p.idle_watts = 40;
  p.joules_per_byte = 1e-9;
  EnergyLedger ledger(2, p);
  ledger.add_busy(0, sim_sec(2));   // 200 J
  ledger.add_comm(0, sim_sec(1));   // 60 J
  ledger.add_idle(0, sim_sec(1));   // 40 J
  ledger.add_traffic(0, 1'000'000'000);  // 1 J
  EXPECT_NEAR(ledger.rank_joules(0), 301.0, 1e-9);
  EXPECT_NEAR(ledger.rank_joules(1), 0.0, 1e-12);
  EXPECT_NEAR(ledger.total_joules(), 301.0, 1e-9);
  EXPECT_EQ(ledger.busy_time(0), sim_sec(2));
  EXPECT_EQ(ledger.traffic_bytes(0), 1'000'000'000u);
}

TEST(EnergyLedger, RejectsBadRanks) {
  EXPECT_THROW(EnergyLedger(0, PowerParams{}), std::invalid_argument);
  EnergyLedger ledger(1, PowerParams{});
  EXPECT_THROW(ledger.add_busy(5, 1), std::out_of_range);
}

}  // namespace
}  // namespace exasim
