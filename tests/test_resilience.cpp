// Resilience subsystem tests: detector specs and models, the failure
// schedule, error-handler policy dispatch, fault state, programmatic failure
// injection, and collective failure semantics under both error policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "metrics/perf.hpp"
#include "netmodel/network.hpp"
#include "netmodel/topology.hpp"
#include "pdes/engine.hpp"
#include "resilience/bus.hpp"
#include "resilience/detector.hpp"
#include "resilience/fault_state.hpp"
#include "resilience/policy.hpp"
#include "resilience/schedule.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"
#include "vmpi/fabric.hpp"
#include "vmpi/process.hpp"

namespace exasim {
namespace {

using core::SimConfig;
using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;

test::QuietLogs quiet;

// ---------------------------------------------------------------- detectors

TEST(DetectorSpec, ParsesEveryRegisteredName) {
  for (const resilience::DetectorInfo& info : resilience::list_detectors()) {
    auto spec = resilience::parse_detector_spec(info.name);
    ASSERT_TRUE(spec.has_value()) << info.name;
  }
}

TEST(DetectorSpec, ParsesHeadsAndHeartbeatOptions) {
  auto instant = resilience::parse_detector_spec("paper-instant");
  ASSERT_TRUE(instant.has_value());
  EXPECT_EQ(instant->kind, resilience::DetectorKind::kPaperInstant);

  auto timeout = resilience::parse_detector_spec("timeout");
  ASSERT_TRUE(timeout.has_value());
  EXPECT_EQ(timeout->kind, resilience::DetectorKind::kTimeout);

  auto hb = resilience::parse_detector_spec("heartbeat:period=5ms,miss=2");
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->kind, resilience::DetectorKind::kHeartbeat);
  EXPECT_EQ(hb->heartbeat_period, sim_ms(5));
  EXPECT_EQ(hb->heartbeat_miss, 2);

  auto defaults = resilience::parse_detector_spec("heartbeat");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->heartbeat_period, 0u);  // 0 = auto (network timeout).
  EXPECT_EQ(defaults->heartbeat_miss, 3);
}

TEST(DetectorSpec, ParsesGossipOptions) {
  auto defaults = resilience::parse_detector_spec("gossip");
  ASSERT_TRUE(defaults.has_value());
  EXPECT_EQ(defaults->kind, resilience::DetectorKind::kGossip);
  EXPECT_EQ(defaults->gossip_period, 0u);  // 0 = auto (network timeout).
  EXPECT_EQ(defaults->gossip_fanout, 2);
  EXPECT_EQ(defaults->gossip_seed, 1u);

  auto full = resilience::parse_detector_spec("gossip:period=1ms,fanout=3,seed=42");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->gossip_period, sim_ms(1));
  EXPECT_EQ(full->gossip_fanout, 3);
  EXPECT_EQ(full->gossip_seed, 42u);
}

TEST(DetectorSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(resilience::parse_detector_spec("swim").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("timeout:period=1s").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("paper-instant:x").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:period=0").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:miss=0").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:miss=x").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:flavor=fast").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:period").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("heartbeat:fanout=2").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("gossip:period=0").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("gossip:fanout=0").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("gossip:fanout=x").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("gossip:seed=-1").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("gossip:miss=3").has_value());
  EXPECT_FALSE(resilience::parse_detector_spec("timeout:fanout=2").has_value());
}

TEST(DetectorSpec, ToStringRoundTrips) {
  for (const char* text : {"paper-instant", "timeout", "heartbeat:period=auto,miss=3",
                           "gossip:period=auto,fanout=2,seed=1",
                           "gossip:period=5ms,fanout=4,seed=7"}) {
    auto spec = resilience::parse_detector_spec(text);
    ASSERT_TRUE(spec.has_value()) << text;
    EXPECT_EQ(resilience::to_string(*spec), text);
  }
  auto hb = resilience::parse_detector_spec("heartbeat:period=5ms,miss=2");
  ASSERT_TRUE(hb.has_value());
  auto again = resilience::parse_detector_spec(resilience::to_string(*hb));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->heartbeat_period, hb->heartbeat_period);
  EXPECT_EQ(again->heartbeat_miss, hb->heartbeat_miss);
}

TEST(DetectorModel, InstantDetectsAtFailureTime) {
  resilience::InstantDetector d;
  EXPECT_EQ(d.detection_time(0, 1, sim_ms(7)), sim_ms(7));
}

TEST(DetectorModel, TimeoutAddsPerPairTimeout) {
  resilience::TimeoutDetector d(
      [](int observer, int failed) { return sim_us(observer * 100 + failed); });
  EXPECT_EQ(d.detection_time(2, 3, sim_ms(1)), sim_ms(1) + sim_us(203));
  EXPECT_THROW(resilience::TimeoutDetector(nullptr), std::invalid_argument);
}

TEST(DetectorModel, HeartbeatRoundsUpToMissedPeriods) {
  resilience::HeartbeatDetector d(sim_ms(100), 3);
  // Failure inside period 0 -> declared after 3 more period boundaries.
  EXPECT_EQ(d.detection_time(0, 1, sim_ms(5)), sim_ms(300));
  // Failure exactly on a boundary counts that period as already begun.
  EXPECT_EQ(d.detection_time(0, 1, sim_ms(100)), sim_ms(400));
  EXPECT_THROW(resilience::HeartbeatDetector(0, 3), std::invalid_argument);
  EXPECT_THROW(resilience::HeartbeatDetector(sim_ms(1), 0), std::invalid_argument);
}

TEST(DetectorModel, MakeDetectorSubstitutesAutoHeartbeatPeriod) {
  auto spec = resilience::parse_detector_spec("heartbeat:miss=1");
  ASSERT_TRUE(spec.has_value());
  auto d = resilience::make_detector(*spec, nullptr, sim_ms(50));
  // Auto period = the supplied default (the network's max failure timeout).
  EXPECT_EQ(d->detection_time(0, 1, 0), sim_ms(50));
}

TEST(DetectorModel, GossipRoundsFollowEpidemicGrowth) {
  // Observers of rank 7, latency strictly increasing with rank: position
  // order == rank order. fanout=2 -> the rumor triples per round: positions
  // 0-1 in round 1 (3 infected), positions 2-6 in round 2 (9 infected).
  resilience::GossipDetector d(
      sim_ms(1), 2, 1, [](int o, int) { return sim_us(o * 10 + 1); }, 8);
  EXPECT_EQ(d.rounds(7, 7), 0);  // The failed rank itself.
  EXPECT_EQ(d.rounds(0, 7), 1);
  EXPECT_EQ(d.rounds(1, 7), 1);
  EXPECT_EQ(d.rounds(2, 7), 2);
  EXPECT_EQ(d.rounds(6, 7), 2);
  EXPECT_EQ(d.detection_time(0, 7, sim_ms(10)), sim_ms(11) + sim_us(1));
  EXPECT_EQ(d.detection_time(6, 7, sim_ms(10)), sim_ms(12) + sim_us(61));
}

TEST(DetectorModel, GossipDetectionTimeMonotoneInLatency) {
  auto latency = [](int o, int) { return sim_us(o * 3 + 2); };
  resilience::GossipDetector d(sim_ms(1), 2, 1, latency, 32);
  SimTime prev = 0;
  for (int o = 0; o < 32; ++o) {
    if (o == 31) continue;  // Rank 31 is the failed one.
    const SimTime t = d.detection_time(o, 31, sim_ms(5));
    EXPECT_GT(t, prev) << "observer " << o;
    EXPECT_GE(t, sim_ms(5));
    prev = t;
  }
}

TEST(DetectorModel, GossipMonotoneWithHierarchicalNetworkHops) {
  // 2-level machine: 8 nodes in a 1-D mesh line, 2 ranks per node. The
  // zero-byte pair latency grows with node hop count, so detection times
  // must strictly increase with hop distance from the failed rank.
  NetworkParams system;
  system.link_latency = sim_us(10);
  NetworkParams on_node;
  on_node.link_latency = sim_us(1);
  NetworkParams on_chip;
  on_chip.link_latency = sim_ns(100);
  auto net = std::make_shared<HierarchicalNetwork>(
      std::shared_ptr<const Topology>(make_topology("mesh:8x1x1")), system, on_node,
      on_chip, /*ranks_per_chip=*/2, /*chips_per_node=*/1);
  vmpi::Fabric fabric(net, net->ranks_per_node());
  const int ranks = 16;
  auto pair_latency = [&](int o, int f) { return fabric.delivery(o, f, 0); };
  resilience::GossipDetector d(sim_ms(1), 2, 1, pair_latency, ranks);

  const int failed = 0;
  for (int a = 1; a < ranks; ++a) {
    for (int b = 1; b < ranks; ++b) {
      if (pair_latency(a, failed) < pair_latency(b, failed)) {
        EXPECT_LT(d.detection_time(a, failed, sim_ms(1)),
                  d.detection_time(b, failed, sim_ms(1)))
            << "observers " << a << " vs " << b;
      }
    }
  }
}

TEST(DetectorModel, GossipSeedStableAndSeedSensitive) {
  // A star network gives every observer the same latency, so the epidemic
  // order is purely the seeded shuffle: the same seed must reproduce the
  // same times across instances, a different seed must change some of them,
  // and the multiset of rounds (the epidemic's shape) must not depend on
  // the seed.
  auto flat = [](int, int) { return sim_us(5); };
  const int ranks = 64;
  resilience::GossipDetector a(sim_ms(1), 2, 9, flat, ranks);
  resilience::GossipDetector b(sim_ms(1), 2, 9, flat, ranks);
  resilience::GossipDetector c(sim_ms(1), 2, 10, flat, ranks);
  bool any_diff = false;
  std::vector<int> rounds_a, rounds_c;
  for (int o = 1; o < ranks; ++o) {
    EXPECT_EQ(a.detection_time(o, 0, 0), b.detection_time(o, 0, 0)) << o;
    if (a.detection_time(o, 0, 0) != c.detection_time(o, 0, 0)) any_diff = true;
    rounds_a.push_back(a.rounds(o, 0));
    rounds_c.push_back(c.rounds(o, 0));
  }
  EXPECT_TRUE(any_diff);
  std::sort(rounds_a.begin(), rounds_a.end());
  std::sort(rounds_c.begin(), rounds_c.end());
  EXPECT_EQ(rounds_a, rounds_c);
}

TEST(DetectorModel, GossipValidatesWiring) {
  auto flat = [](int, int) { return sim_us(1); };
  EXPECT_THROW(resilience::GossipDetector(0, 2, 1, flat, 4), std::invalid_argument);
  EXPECT_THROW(resilience::GossipDetector(sim_ms(1), 0, 1, flat, 4), std::invalid_argument);
  EXPECT_THROW(resilience::GossipDetector(sim_ms(1), 2, 1, nullptr, 4),
               std::invalid_argument);
  EXPECT_THROW(resilience::GossipDetector(sim_ms(1), 2, 1, flat, 0), std::invalid_argument);
  // make_detector substitutes the default period and forwards the wiring.
  auto spec = resilience::parse_detector_spec("gossip:fanout=1");
  ASSERT_TRUE(spec.has_value());
  resilience::DetectorWiring wiring;
  wiring.pair_latency = [](int o, int) { return sim_us(o); };  // Rank 1 is closest.
  wiring.default_period = sim_ms(50);
  wiring.ranks = 4;
  auto d = resilience::make_detector(*spec, std::move(wiring));
  EXPECT_EQ(d->detection_time(1, 0, 0), sim_ms(50) + sim_us(1));
}

// ---------------------------------------------------------- failure schedule

TEST(FailureSchedule, ParsesRankAtTimePairs) {
  auto s = resilience::FailureSchedule::parse("1@5ms,2@1s");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->size(), 2u);
  EXPECT_EQ(s->specs()[0], (FailureSpec{1, sim_ms(5)}));
  EXPECT_EQ(s->specs()[1], (FailureSpec{2, sim_seconds(1.0)}));
  EXPECT_FALSE(resilience::FailureSchedule::parse("1@").has_value());
  EXPECT_FALSE(resilience::FailureSchedule::parse("nope").has_value());
}

TEST(FailureSchedule, FromEnvHandlesUnsetSetAndMalformed) {
  ::unsetenv(resilience::FailureSchedule::kEnvVar);
  auto unset = resilience::FailureSchedule::from_env();
  ASSERT_TRUE(unset.has_value());
  EXPECT_TRUE(unset->empty());

  ::setenv(resilience::FailureSchedule::kEnvVar, "3@250us", 1);
  auto set = resilience::FailureSchedule::from_env();
  ASSERT_TRUE(set.has_value());
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(set->specs()[0], (FailureSpec{3, sim_us(250)}));

  ::setenv(resilience::FailureSchedule::kEnvVar, "garbage", 1);
  EXPECT_FALSE(resilience::FailureSchedule::from_env().has_value());
  ::unsetenv(resilience::FailureSchedule::kEnvVar);
}

TEST(FailureSchedule, ShiftAndValidation) {
  resilience::FailureSchedule s;
  s.add(FailureSpec{0, sim_ms(1)});
  s.add(FailureSpec{5, sim_ms(2)});
  s.shift(sim_seconds(1.0));
  EXPECT_EQ(s.specs()[0].time, sim_seconds(1.0) + sim_ms(1));
  EXPECT_EQ(s.specs()[1].time, sim_seconds(1.0) + sim_ms(2));

  EXPECT_EQ(s.first_invalid_rank(4), std::optional<int>(5));
  EXPECT_FALSE(s.first_invalid_rank(6).has_value());
}

// ------------------------------------------------------------ policy + state

TEST(ErrorHandlerPolicy, DispatchMatrix) {
  using resilience::ErrorAction;
  using resilience::ErrorHandlerPolicy;
  using resilience::ErrorPolicy;
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kFatal, false), ErrorAction::kAbort);
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kFatal, true), ErrorAction::kAbort);
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kReturn, false), ErrorAction::kReturn);
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kReturn, true), ErrorAction::kReturn);
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kUser, true),
            ErrorAction::kInvokeUserThenReturn);
  // kUser with no handler installed degrades to a plain return.
  EXPECT_EQ(ErrorHandlerPolicy::dispatch(ErrorPolicy::kUser, false), ErrorAction::kReturn);
}

TEST(FaultState, RecordsPeerFailuresWithDetectTimes) {
  resilience::FaultState fs;
  EXPECT_FALSE(fs.knows_failed(4));
  EXPECT_EQ(fs.peer_failure_time(4), kSimTimeNever);
  EXPECT_EQ(fs.peer_detect_time(4), kSimTimeNever);

  fs.record_peer_failure(4, sim_ms(1), sim_ms(3));
  EXPECT_TRUE(fs.knows_failed(4));
  EXPECT_EQ(fs.peer_failure_time(4), sim_ms(1));
  EXPECT_EQ(fs.peer_detect_time(4), sim_ms(3));
  EXPECT_EQ(fs.failed_peers().size(), 1u);
}

TEST(FaultState, AckSnapshotsPerCommunicatorMembership) {
  resilience::FaultState fs;
  fs.record_peer_failure(1, sim_ms(1), sim_ms(1));
  fs.record_peer_failure(2, sim_ms(2), sim_ms(2));
  EXPECT_TRUE(fs.acked(7).empty());
  // Communicator 7 contains only even world ranks.
  fs.ack_failures(7, [](int world) { return world % 2 == 0; });
  EXPECT_EQ(fs.acked(7), std::vector<int>{2});
  EXPECT_TRUE(fs.acked(8).empty());  // Other communicators unaffected.
}

TEST(SoftErrorState, AppliesDueFlipsAndDropsWithoutMemory) {
  resilience::SoftErrorState se;
  se.schedule_flip(sim_ms(1), 0);
  se.apply_due(sim_ms(2));  // No registered regions -> dropped.
  EXPECT_EQ(se.applied(), 0u);
  EXPECT_EQ(se.dropped(), 1u);

  std::uint8_t byte = 0;
  se.register_region("buf", &byte, sizeof byte);
  EXPECT_EQ(se.registered_bytes(), 1u);
  se.schedule_flip(sim_ms(3), 0);
  se.apply_due(sim_ms(2));  // Not yet due.
  EXPECT_TRUE(se.pending());
  se.apply_due(sim_ms(3));
  EXPECT_EQ(se.applied(), 1u);
  EXPECT_EQ(byte, 1);  // Bit 0 flipped.
  se.unregister_region("buf");
  EXPECT_EQ(se.registered_bytes(), 0u);
}

// ------------------------------------------------------- detector simulation

TEST(ResilienceSim, HeartbeatDetectorDelaysErrorRelease) {
  // Rank 1 dies at 5 ms; a 100 ms / miss=3 heartbeat declares it dead at
  // 300 ms. The survivor's blocked receive is released at
  // max(max(post, t_fail) + failure_timeout, t_detect) = 300 ms exactly.
  Err got = Err::kSuccess;
  SimTime released_at = 0;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ms(5)}};
  auto spec = resilience::parse_detector_spec("heartbeat:period=100ms,miss=3");
  ASSERT_TRUE(spec.has_value());
  cfg.detector = *spec;
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      int v = 0;
      got = ctx.recv(1, 0, &v, sizeof v);
      released_at = ctx.now();
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);  // Dies blocked.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(released_at, sim_ms(300));
  EXPECT_EQ(r.detector, "heartbeat:period=100ms,miss=3");
  EXPECT_EQ(r.failure_notices, 1u);
  EXPECT_EQ(r.max_detection_latency, sim_ms(295));
}

TEST(ResilienceSim, FailureNoticeForcesProbeWakeupUnderFiltering) {
  // A probe blocked on a rank that dies never sees a matching arrival; the
  // failure notice flips its predicate instead. The filtered dispatcher must
  // honor that flip (wake_pending_) when the next unrelated event arrives —
  // identically to eager dispatch, where the same arrival triggers a re-scan.
  auto run_mode = [&](bool eager, Err* got, SimTime* released_at) {
    const bool before = vmpi::eager_wakeup_enabled();
    vmpi::set_eager_wakeup(eager);
    auto cfg = tiny_config(3);
    cfg.failures = {FailureSpec{1, sim_ms(1)}};
    auto app = [&](Context& ctx) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      if (ctx.rank() == 0) {
        vmpi::MsgStatus st;
        *got = ctx.probe(ctx.world(), 1, 7, &st);
        *released_at = ctx.now();
        int v = 0;
        EXPECT_EQ(ctx.recv(2, 3, &v, sizeof v), Err::kSuccess);
      } else if (ctx.rank() == 2) {
        // The unrelated arrival that gives the blocked probe its wake site
        // (tag 3 does not match the probe's tag-7 spec on rank 1).
        ctx.compute(2.5e6);
        int v = 99;
        ctx.send(0, 3, &v, sizeof v);
      } else {
        int v = 0;
        ctx.recv(0, 1, &v, sizeof v);  // Dies blocked at 1 ms.
      }
      ctx.finalize();
    };
    SimResult r = run_app(cfg, app);
    vmpi::set_eager_wakeup(before);
    return r;
  };
  Err got_f = Err::kSuccess, got_e = Err::kSuccess;
  SimTime rel_f = 0, rel_e = 0;
  SimResult rf = run_mode(false, &got_f, &rel_f);
  SimResult re = run_mode(true, &got_e, &rel_e);
  EXPECT_EQ(got_f, Err::kProcFailed);
  EXPECT_EQ(got_e, Err::kProcFailed);
  // Release bound: max(max(post, t_fail) + failure_timeout, t_detect) = 2 ms.
  EXPECT_EQ(rel_f, sim_ms(2));
  EXPECT_EQ(rel_e, rel_f);
  EXPECT_EQ(rf.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(rf.outcome, re.outcome);
  EXPECT_EQ(rf.max_end_time, re.max_end_time);
  EXPECT_EQ(rf.failure_notices, re.failure_notices);
}

TEST(ResilienceSim, TimeoutDetectorReportsDetectionLatency) {
  // The timeout detector delivers each notice one per-pair failure-detection
  // timeout after the failure. Release times match paper-instant (the notice
  // floor is always <= the §IV-C wakeup bound), so the observable difference
  // is the detection-latency accounting.
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}};
  auto spec = resilience::parse_detector_spec("timeout");
  ASSERT_TRUE(spec.has_value());
  cfg.detector = *spec;
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 2) {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Dies blocked.
    } else {
      int v = 0;
      EXPECT_EQ(ctx.recv(2, 0, &v, sizeof v), Err::kProcFailed);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(r.detector, "timeout");
  EXPECT_EQ(r.failure_notices, 2u);  // One notice per survivor.
  EXPECT_EQ(r.max_detection_latency, sim_ms(1));  // = tiny_config timeout.
  EXPECT_DOUBLE_EQ(r.mean_detection_latency_sec, to_seconds(sim_ms(1)));
}

TEST(ResilienceSim, DefaultDetectorIdenticalAcrossSimWorkers) {
  // The paper-instant default must reproduce the sequential schedule exactly
  // on the sharded engine: every simulated quantity of a failing launch
  // matches across 1/2/4 workers.
  auto run_with = [&](int workers) {
    auto cfg = tiny_config(4);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.failures = {FailureSpec{2, sim_ms(1)}};
    auto app = [](Context& ctx) {
      std::int64_t mine = ctx.rank(), out = 0;
      for (int i = 0; i < 20; ++i) {
        ctx.compute(1e5);
        if (ctx.allreduce(ctx.world(), vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &mine, &out,
                          1) != Err::kSuccess) {
          break;
        }
      }
      ctx.finalize();
    };
    return run_app(cfg, app);
  };
  const SimResult ref = run_with(1);
  EXPECT_EQ(ref.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(ref.detector, "paper-instant");
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const SimResult r = run_with(workers);
    EXPECT_EQ(r.outcome, ref.outcome);
    EXPECT_EQ(r.max_end_time, ref.max_end_time);
    EXPECT_EQ(r.min_end_time, ref.min_end_time);
    EXPECT_DOUBLE_EQ(r.avg_end_time_sec, ref.avg_end_time_sec);
    EXPECT_EQ(r.abort_time, ref.abort_time);
    EXPECT_EQ(r.abort_origin, ref.abort_origin);
    ASSERT_EQ(r.activated_failures.size(), ref.activated_failures.size());
    for (std::size_t i = 0; i < ref.activated_failures.size(); ++i) {
      EXPECT_EQ(r.activated_failures[i], ref.activated_failures[i]);
    }
    EXPECT_EQ(r.failure_notices, ref.failure_notices);
    EXPECT_EQ(r.max_detection_latency, ref.max_detection_latency);
    EXPECT_EQ(r.finished_count, ref.finished_count);
    EXPECT_EQ(r.failed_count, ref.failed_count);
    EXPECT_EQ(r.aborted_count, ref.aborted_count);
    EXPECT_EQ(r.total_busy_time, ref.total_busy_time);
    EXPECT_EQ(r.total_comm_time, ref.total_comm_time);
  }
}

TEST(ResilienceSim, GossipDetectorIdenticalAcrossSimWorkers) {
  // With gossip active the per-observer notice times are NOT rank-ordered
  // (the epidemic order is latency+hash), which exercises the min-key relay
  // batching: every simulated quantity — including the detection-latency
  // stats — must still match across 1/2/4 workers.
  auto run_with = [&](int workers) {
    auto cfg = tiny_config(4);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.failures = {FailureSpec{2, sim_ms(1)}};
    auto spec = resilience::parse_detector_spec("gossip:period=1ms,fanout=2,seed=3");
    EXPECT_TRUE(spec.has_value());
    cfg.detector = *spec;
    auto app = [](Context& ctx) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      std::int64_t mine = ctx.rank(), out = 0;
      for (int i = 0; i < 20; ++i) {
        ctx.compute(1e5);
        if (ctx.allreduce(ctx.world(), vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &mine, &out,
                          1) != Err::kSuccess) {
          break;
        }
      }
      ctx.finalize();
    };
    return run_app(cfg, app);
  };
  const SimResult ref = run_with(1);
  EXPECT_EQ(ref.detector, "gossip:period=1ms,fanout=2,seed=3");
  EXPECT_EQ(ref.failure_notices, 3u);
  EXPECT_GT(ref.max_detection_latency, sim_ms(1));  // >= one epidemic round.
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const SimResult r = run_with(workers);
    EXPECT_EQ(r.outcome, ref.outcome);
    EXPECT_EQ(r.max_end_time, ref.max_end_time);
    EXPECT_EQ(r.min_end_time, ref.min_end_time);
    EXPECT_DOUBLE_EQ(r.avg_end_time_sec, ref.avg_end_time_sec);
    EXPECT_EQ(r.failure_notices, ref.failure_notices);
    EXPECT_EQ(r.max_detection_latency, ref.max_detection_latency);
    EXPECT_DOUBLE_EQ(r.mean_detection_latency_sec, ref.mean_detection_latency_sec);
    EXPECT_EQ(r.finished_count, ref.finished_count);
    EXPECT_EQ(r.failed_count, ref.failed_count);
    EXPECT_EQ(r.aborted_count, ref.aborted_count);
    EXPECT_EQ(r.total_busy_time, ref.total_busy_time);
    EXPECT_EQ(r.total_comm_time, ref.total_comm_time);
  }
}

TEST(ResilienceSim, RepeatedFailuresDontInflateMeanLatency) {
  // Rank 2 dies at 1 ms, rank 1 at 2 ms. With the 1 ms timeout detector,
  // rank 1's would-be notice about rank 2 lands at 2 ms — exactly when rank
  // 1 itself dies, so the engine drops it (dead destinations are skipped)
  // and the stats must not count it: each failure contributes exactly the
  // live observers, not every non-failed rank.
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}, FailureSpec{1, sim_ms(2)}};
  auto spec = resilience::parse_detector_spec("timeout");
  ASSERT_TRUE(spec.has_value());
  cfg.detector = *spec;
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      int v = 0;
      EXPECT_EQ(ctx.recv(2, 0, &v, sizeof v), Err::kProcFailed);
      EXPECT_EQ(ctx.recv(1, 0, &v, sizeof v), Err::kProcFailed);
    } else {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Dies blocked.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  ASSERT_EQ(r.activated_failures.size(), 2u);
  // Rank 0 observes both failures; dead observers contribute nothing.
  EXPECT_EQ(r.failure_notices, 2u);
  EXPECT_EQ(r.max_detection_latency, sim_ms(1));
  EXPECT_DOUBLE_EQ(r.mean_detection_latency_sec, to_seconds(sim_ms(1)));
}

TEST(ResilienceSim, InjectFailureKillsProcessProgrammatically) {
  // Context::inject_failure arms the same activation path as the schedule:
  // the process dies at clock + delay, survivors get notices.
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 1) {
      ctx.inject_failure(sim_ms(2));
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Blocks; dies at 2 ms.
    } else {
      int v = 0;
      got = ctx.recv(1, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  ASSERT_EQ(r.activated_failures.size(), 1u);
  EXPECT_EQ(r.activated_failures[0].rank, 1);
  EXPECT_EQ(r.activated_failures[0].time, sim_ms(2));
}

// ----------------------------------------------- batched notification fan-out

// An LP that ignores every event; LP 0 optionally fires a one-shot hook on
// its first event (used to broadcast a failure from inside a worker thread).
struct NullLp final : LogicalProcess {
  std::function<void(Engine&)> on_first_event;
  void on_event(Engine& engine, Event&& ev) override {
    (void)ev;
    if (on_first_event) {
      auto hook = std::move(on_first_event);
      on_first_event = nullptr;
      hook(engine);
    }
  }
  bool terminated() const override { return true; }
};

TEST(FanoutBatching, FailureCostsAtMostGroupsPlusRanks) {
  // Acceptance criterion: a failure on a 32768-rank / 8-group run generates
  // <= (groups + ranks) bus events — one relay per remote group plus one
  // notice per survivor — instead of O(ranks) cross-group mailbox events.
  constexpr int kRanks = 32768;
  constexpr int kGroups = 8;
  Engine engine;
  std::vector<NullLp> lps(kRanks);
  for (int id = 0; id < kRanks; ++id) engine.add_process(id, &lps[id]);
  Engine::ShardingOptions shard;
  shard.workers = kGroups;
  shard.lookahead = sim_us(1);
  shard.block_alignment = kRanks / kGroups;
  engine.set_sharding(shard);

  resilience::NotificationBus::Wiring wiring;
  wiring.engine = &engine;
  wiring.ranks = kRanks;
  wiring.failure_kind = 1;
  wiring.abort_kind = 2;
  wiring.revoke_kind = 3;
  resilience::NotificationBus bus(wiring);

  lps[0].on_first_event = [&](Engine& eng) { bus.broadcast_failure(0, eng.now()); };
  engine.schedule(sim_us(2), 0, /*kind=*/99, nullptr);

  const PerfSnapshot before = perf_snapshot();
  engine.run();
  const PerfSnapshot d = perf_delta(before, perf_snapshot());

  EXPECT_EQ(engine.worker_groups(), kGroups);
  EXPECT_EQ(d.fanout_notices, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(d.fanout_relays, static_cast<std::uint64_t>(kGroups - 1));
  EXPECT_EQ(d.fanout_dead_skips, 0u);
  EXPECT_LE(d.fanout_relays, static_cast<std::uint64_t>(kGroups));
  EXPECT_LE(d.fanout_notices + d.fanout_relays,
            static_cast<std::uint64_t>(kGroups + kRanks));
  // Relays are transport, not delivery: processed events = kick + notices.
  EXPECT_EQ(engine.events_processed(), static_cast<std::uint64_t>(kRanks));

  const resilience::NotificationBus::DetectionStats stats = bus.detection_stats();
  EXPECT_EQ(stats.notices, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(stats.max_latency, 0u);  // Instant detector (null).
}

TEST(FanoutBatching, DeadDestinationsAreSkippedEverywhere) {
  // Destinations already dead never receive a notice, whether they live in
  // the broadcasting group (skipped at enqueue) or a remote one (skipped at
  // unpack) — and the drop counter sees each exactly once.
  constexpr int kRanks = 64;
  constexpr int kGroups = 4;
  Engine engine;
  std::vector<NullLp> lps(kRanks);
  for (int id = 0; id < kRanks; ++id) engine.add_process(id, &lps[id]);
  Engine::ShardingOptions shard;
  shard.workers = kGroups;
  shard.lookahead = sim_us(1);
  shard.block_alignment = kRanks / kGroups;
  engine.set_sharding(shard);

  resilience::NotificationBus::Wiring wiring;
  wiring.engine = &engine;
  wiring.ranks = kRanks;
  wiring.failure_kind = 1;
  resilience::NotificationBus bus(wiring);

  engine.mark_dead(3);   // Same group as the broadcasting LP 0.
  engine.mark_dead(40);  // Remote group.
  lps[0].on_first_event = [&](Engine& eng) { bus.broadcast_failure(7, eng.now()); };
  engine.schedule(sim_us(2), 0, /*kind=*/99, nullptr);

  const PerfSnapshot before = perf_snapshot();
  engine.run();
  const PerfSnapshot d = perf_delta(before, perf_snapshot());

  // 63 observers of rank 7, of which ranks 3 and 40 are dead.
  EXPECT_EQ(d.fanout_dead_skips, 2u);
  EXPECT_EQ(d.fanout_notices + d.fanout_dead_skips, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(engine.events_processed(), static_cast<std::uint64_t>(kRanks - 2));
}

// -------------------------------------------- reduce commutativity (MPI_REPLACE)

TEST(ReduceSemantics, ReplaceMatchesAcrossCollectiveAlgorithms) {
  // MPI_REPLACE is associative but not commutative: the linear algorithm
  // combines in ascending rank order, so the result is the last rank's
  // buffer. The binomial tree must fall back to linear for non-commutative
  // ops and produce the identical result.
  for (auto algo : {vmpi::CollectiveAlgo::kLinear, vmpi::CollectiveAlgo::kBinomialTree}) {
    SCOPED_TRACE(algo == vmpi::CollectiveAlgo::kLinear ? "linear" : "tree");
    std::vector<std::int32_t> got(4, -1);
    auto cfg = tiny_config(4);
    cfg.process.collective_algo = algo;
    auto app = [&](Context& ctx) {
      std::vector<std::int32_t> in(4);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = ctx.rank() * 10 + static_cast<std::int32_t>(i);
      }
      std::vector<std::int32_t> out(4, -1);
      EXPECT_EQ(ctx.reduce(ctx.world(), 0, vmpi::ReduceOp::kReplace, vmpi::Dtype::kI32,
                           in.data(), out.data(), out.size()),
                Err::kSuccess);
      if (ctx.rank() == 0) got = out;
      ctx.finalize();
    };
    run_app(cfg, app);
    EXPECT_EQ(got, (std::vector<std::int32_t>{30, 31, 32, 33}));  // Rank 3's buffer.
  }
}

TEST(ReduceSemantics, CommutativeResultsMatchAcrossAlgorithms) {
  std::vector<std::int64_t> sums;
  for (auto algo : {vmpi::CollectiveAlgo::kLinear, vmpi::CollectiveAlgo::kBinomialTree}) {
    std::int64_t got = -1;
    auto cfg = tiny_config(5);
    cfg.process.collective_algo = algo;
    auto app = [&](Context& ctx) {
      std::int64_t mine = (ctx.rank() + 1) * 7, out = 0;
      EXPECT_EQ(ctx.reduce(ctx.world(), 0, vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &mine,
                           &out, 1),
                Err::kSuccess);
      if (ctx.rank() == 0) got = out;
      ctx.finalize();
    };
    run_app(cfg, app);
    sums.push_back(got);
  }
  EXPECT_EQ(sums[0], 7 * (1 + 2 + 3 + 4 + 5));
  EXPECT_EQ(sums[1], sums[0]);
}

// ------------------------------------ collective failure semantics (matrix)

// Every collective, executed by 4 ranks of which rank 3 is dead from t=0.
// Payloads are 64 ints = 256 bytes against an eager threshold of 64 bytes,
// so sends to the dead rank take the rendezvous path and surface the error.
enum class Coll {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall
};

const char* coll_name(Coll c) {
  switch (c) {
    case Coll::kBarrier: return "barrier";
    case Coll::kBcast: return "bcast";
    case Coll::kReduce: return "reduce";
    case Coll::kAllreduce: return "allreduce";
    case Coll::kGather: return "gather";
    case Coll::kAllgather: return "allgather";
    case Coll::kScatter: return "scatter";
    case Coll::kAlltoall: return "alltoall";
  }
  return "?";
}

constexpr std::size_t kCount = 64;  // 64 x i32 = 256 bytes > eager threshold.

Err do_collective(Context& ctx, Coll c) {
  vmpi::Comm& w = ctx.world();
  const std::size_t bytes = kCount * sizeof(std::int32_t);
  std::vector<std::int32_t> in(kCount, ctx.rank());
  std::vector<std::int32_t> all_in(kCount * static_cast<std::size_t>(w.size()), ctx.rank());
  std::vector<std::int32_t> out(kCount * static_cast<std::size_t>(w.size()), 0);
  switch (c) {
    case Coll::kBarrier:
      return ctx.barrier(w);
    case Coll::kBcast:
      return ctx.bcast(w, 0, in.data(), bytes);
    case Coll::kReduce:
      return ctx.reduce(w, 0, vmpi::ReduceOp::kSum, vmpi::Dtype::kI32, in.data(), out.data(),
                        kCount);
    case Coll::kAllreduce:
      return ctx.allreduce(w, vmpi::ReduceOp::kSum, vmpi::Dtype::kI32, in.data(), out.data(),
                           kCount);
    case Coll::kGather:
      return ctx.gather(w, 0, in.data(), bytes, out.data());
    case Coll::kAllgather:
      return ctx.allgather(w, in.data(), bytes, out.data());
    case Coll::kScatter:
      return ctx.scatter(w, 0, all_in.data(), bytes, in.data());
    case Coll::kAlltoall:
      return ctx.alltoall(w, all_in.data(), bytes, out.data());
  }
  return Err::kSuccess;
}

const Coll kAllCollectives[] = {Coll::kBarrier,   Coll::kBcast,   Coll::kReduce,
                                Coll::kAllreduce, Coll::kGather,  Coll::kAllgather,
                                Coll::kScatter,   Coll::kAlltoall};

SimConfig failed_peer_config(vmpi::CollectiveAlgo algo) {
  auto cfg = tiny_config(4);
  cfg.process.collective_algo = algo;
  cfg.net.eager_threshold = 64;     // Force rendezvous for 256-byte payloads.
  cfg.failures = {FailureSpec{3, 0}};  // Dead before the app starts.
  return cfg;
}

TEST(CollectiveFailure, FatalHandlerAbortsEveryCollective) {
  for (auto algo : {vmpi::CollectiveAlgo::kLinear, vmpi::CollectiveAlgo::kBinomialTree}) {
    for (Coll c : kAllCollectives) {
      SCOPED_TRACE(std::string(coll_name(c)) +
                   (algo == vmpi::CollectiveAlgo::kLinear ? "/linear" : "/tree"));
      auto app = [&](Context& ctx) {
        do_collective(ctx, c);  // kFatal: an error aborts, no return.
        ctx.finalize();
      };
      SimResult r = run_app(failed_peer_config(algo), app);
      EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
      EXPECT_TRUE(r.abort_time.has_value());
      ASSERT_EQ(r.activated_failures.size(), 1u);
      EXPECT_EQ(r.activated_failures[0].rank, 3);
    }
  }
}

TEST(CollectiveFailure, UlfmRevokeReleasesEveryCollective) {
  // ULFM recovery: the first rank that sees MPI_ERR_PROC_FAILED revokes the
  // communicator, which releases every peer still blocked inside the
  // collective. No combination may deadlock and all survivors finalize.
  for (auto algo : {vmpi::CollectiveAlgo::kLinear, vmpi::CollectiveAlgo::kBinomialTree}) {
    for (Coll c : kAllCollectives) {
      SCOPED_TRACE(std::string(coll_name(c)) +
                   (algo == vmpi::CollectiveAlgo::kLinear ? "/linear" : "/tree"));
      // Per-rank slots: app fibers may run on different engine workers.
      std::vector<int> saw_proc_failed(4, 0);
      auto app = [&](Context& ctx) {
        ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
        Err e = do_collective(ctx, c);
        if (e == Err::kProcFailed) saw_proc_failed[ctx.rank()] = 1;
        if (e != Err::kSuccess) ctx.comm_revoke(ctx.world());
        ctx.finalize();
      };
      SimResult r = run_app(failed_peer_config(algo), app);
      EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
      EXPECT_EQ(r.failed_count, 1);
      EXPECT_EQ(r.finished_count, 3);
      // Someone observed the failure directly (not just the revoke).
      EXPECT_GE(saw_proc_failed[0] + saw_proc_failed[1] + saw_proc_failed[2], 1);
    }
  }
}

}  // namespace
}  // namespace exasim
