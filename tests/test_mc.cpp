// Failure-scenario model checker (src/mc, DESIGN.md §15): lattice geometry,
// signature-equivalence pruning, bisection convergence, job-count
// byte-identity, and budget degradation.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/registry.hpp"
#include "mc/explorer.hpp"
#include "mc/lattice.hpp"
#include "mc/report.hpp"
#include "mc/signature.hpp"
#include "sim_test_util.hpp"

using namespace exasim;

namespace {

test::QuietLogs quiet;

/// Small ring lattice on the tiny test machine: fast (E1 ~ a few ms of
/// virtual time) and rich enough to have an abort regime, a completion
/// regime, and detector-dependent behavior.
mc::ExplorerConfig ring_config(int ranks = 8) {
  mc::ExplorerConfig config;
  config.runner.base = test::tiny_config(ranks);
  auto params = ParamMap::parse("laps=10,bytes=8");
  config.app = apps::make_app("ring", *params, ranks);
  config.app_name = "ring";
  config.app_params = "laps=10,bytes=8";
  config.lattice.victims = {1, ranks / 2};
  config.lattice.detectors = {*resilience::parse_detector_spec("paper-instant"),
                              *resilience::parse_detector_spec("timeout")};
  config.lattice.policies = {ckpt::CkptMode::kPfs};
  config.lattice.grid = 5;
  config.lattice.depth = 3;
  // Inherit the EXASIM_JOBS default (1 when unset): scripts/tier1.sh's mc leg
  // re-runs this whole suite with EXASIM_JOBS=4 under TSan, and the report is
  // byte-identical either way, so every test here doubles as a race probe.
  config.jobs = -1;
  return config;
}

/// (row, time) -> signature for every *evaluated-or-inferred* finest point
/// is awkward to reconstruct; the class list is the comparable summary:
/// signature -> covered count.
std::map<std::uint64_t, std::uint64_t> class_map(const mc::McReport& rep) {
  std::map<std::uint64_t, std::uint64_t> m;
  for (const auto& c : rep.classes) m[c.signature] = c.covered;
  return m;
}

}  // namespace

TEST(McLattice, IntegerGridGeometry) {
  mc::LatticeSpec spec;
  spec.victims = {0};
  spec.detectors = {resilience::DetectorSpec{}};
  spec.policies = {ckpt::CkptMode::kPfs};
  spec.window_lo = sim_ms(10);
  spec.window_hi = sim_ms(10) + 64;  // 64 ns span: indices map 1:1 onto ns.
  spec.grid = 5;
  spec.depth = 4;
  const mc::ScenarioLattice lat(spec);
  EXPECT_EQ(lat.finest_points(), 4 * 16 + 1);
  EXPECT_EQ(lat.finest_step(), 1u);
  EXPECT_EQ(lat.time_of(0), spec.window_lo);
  EXPECT_EQ(lat.time_of(lat.finest_points() - 1), spec.window_hi);
  const auto initial = lat.initial_indices();
  ASSERT_EQ(initial.size(), 5u);
  EXPECT_EQ(initial[1], 16);
  // Every midpoint of adjacent coarse points is again a finest-grid index —
  // integer arithmetic, no rounding drift.
  EXPECT_EQ((initial[1] + initial[2]) / 2 * 2, initial[1] + initial[2]);
}

TEST(McLattice, VictimParsing) {
  auto all = mc::parse_victims("all", 4);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, (std::vector<int>{0, 1, 2, 3}));
  auto stride = mc::parse_victims("stride:3", 8);
  ASSERT_TRUE(stride.has_value());
  EXPECT_EQ(*stride, (std::vector<int>{0, 3, 6}));
  auto list = mc::parse_victims("0,5", 8);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(*list, (std::vector<int>{0, 5}));
  EXPECT_FALSE(mc::parse_victims("9", 8).has_value());
  EXPECT_FALSE(mc::parse_victims("", 8).has_value());
  EXPECT_FALSE(mc::parse_victims("stride:0", 8).has_value());
}

TEST(McSignature, QuantizationCollapsesNearbyOutcomes) {
  mc::ScenarioOutcome a;
  a.completed = true;
  a.launches = 2;
  a.failures = 1;
  a.aborted = true;
  a.actual_fail_time = sim_ms(10);
  a.abort_time = sim_ms(11);
  a.e2 = sim_ms(100);
  mc::ScenarioOutcome b = a;
  // Shift the whole story later in time by less than one quantum: raw times
  // differ, the detrended story does not.
  b.actual_fail_time = sim_ms(12);
  b.abort_time = sim_ms(13);
  b.e2 = sim_ms(100) + sim_us(300);
  const SimTime q = sim_ms(1);
  EXPECT_EQ(mc::signature_of(a, q, sim_ms(90)), mc::signature_of(b, q, sim_ms(90)));
  // A different launch count is a different story at any quantum.
  b.launches = 3;
  EXPECT_NE(mc::signature_of(a, q, sim_ms(90)), mc::signature_of(b, q, sim_ms(90)));
  // An evaluation error classes by its message, never with real outcomes.
  mc::ScenarioOutcome err;
  err.error = "boom";
  EXPECT_NE(mc::signature_of(err, q, 0), mc::signature_of(a, q, sim_ms(90)));
}

TEST(McExplorer, PruningPreservesTheClassMap) {
  auto config = ring_config();
  const mc::McReport pruned = mc::explore(config);
  config.lattice.prune = false;
  const mc::McReport full = mc::explore(config);

  // The full run evaluated every finest point; the pruned run inferred most
  // of them from interval endpoints. Same classes, same coverage.
  EXPECT_EQ(full.explored, full.raw_scenarios);
  EXPECT_LT(pruned.explored, full.explored / 2);  // >= 50% saved.
  EXPECT_EQ(pruned.unknown, 0u);
  EXPECT_EQ(pruned.explored + pruned.pruned, pruned.raw_scenarios);
  EXPECT_EQ(class_map(pruned), class_map(full));

  // Identical outcomes collapsed: far fewer classes than scenarios, and the
  // count is pinned — a class appearing or vanishing on this fixed lattice
  // is a behavior change in the simulator, not noise.
  EXPECT_EQ(pruned.classes.size(), 5u);
  // Both detector rows abort, restart, and complete for early injections.
  ASSERT_FALSE(pruned.classes.empty());
  EXPECT_TRUE(pruned.classes.front().rep.completed);
}

TEST(McExplorer, BisectionLocalizesBoundariesToOneGridStep) {
  auto config = ring_config();
  const mc::McReport pruned = mc::explore(config);
  config.lattice.prune = false;
  const mc::McReport full = mc::explore(config);

  // Ground truth: every signature change between adjacent finest-grid points
  // of the exhaustive run. The pruned run's bisection must find exactly
  // these intervals — each one finest step wide.
  auto key = [](const mc::McReport::Boundary& b) {
    return std::tuple(b.row, b.t_lo, b.t_hi);
  };
  std::set<std::tuple<std::size_t, SimTime, SimTime>> want, got;
  for (const auto& b : full.boundaries) want.insert(key(b));
  for (const auto& b : pruned.boundaries) got.insert(key(b));
  EXPECT_EQ(got, want);
  EXPECT_FALSE(pruned.boundaries.empty());
  for (const auto& b : pruned.boundaries) {
    EXPECT_EQ(b.t_hi - b.t_lo, pruned.finest_step);
  }
  EXPECT_TRUE(pruned.frontier.empty());

  // One of those boundaries is the completion edge: the last injection that
  // still fired before the app finished. Its interval must bracket the
  // boundary the exhaustive run saw.
  bool found_completion_edge = false;
  for (const auto& c : full.classes) {
    if (c.rep.actual_fail_time == kSimTimeNever) found_completion_edge = true;
  }
  EXPECT_TRUE(found_completion_edge);
}

TEST(McExplorer, ReportBytesIdenticalAcrossJobCounts) {
  auto config = ring_config();
  config.jobs = 1;
  const std::string serial = mc::explore(config).to_json();
  config.jobs = 4;
  const std::string parallel = mc::explore(config).to_json();
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(McExplorer, BudgetExhaustionDegradesGracefully) {
  auto config = ring_config();
  // Enough for the coarse grid (2 rows x 2 detectors x 5 points = 20) plus a
  // couple of refinements, then stop.
  config.lattice.budget = 24;
  const mc::McReport rep = mc::explore(config);
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_LE(rep.explored, 24u);
  // Whatever was not resolved is reported, not silently dropped: every
  // finest point is explored, inferred, or flagged unknown; disagreeing
  // unrefined intervals surface as frontier work.
  EXPECT_EQ(rep.explored + rep.pruned + rep.unknown, rep.raw_scenarios);
  EXPECT_GT(rep.unknown, 0u);
  EXPECT_FALSE(rep.frontier.empty());
  // The report still serializes (the CI gate reads it even on truncated
  // runs).
  EXPECT_NE(rep.to_json().find("\"budget_exhausted\": 1"), std::string::npos);
}

TEST(McExplorer, MissedNotificationsDetectedUnderGossip) {
  // Ring is pure point-to-point: ranks far from the victim have no pending
  // operation on a communicator containing it, so when the abort fans out
  // before their (late, epidemic) gossip notice arrives, they die
  // uninformed. The checker must surface that window.
  mc::ExplorerConfig config;
  const int ranks = 16;
  config.runner.base = test::tiny_config(ranks);
  auto params = ParamMap::parse("laps=10,bytes=8");
  config.app = apps::make_app("ring", *params, ranks);
  config.app_name = "ring";
  config.app_params = "laps=10,bytes=8";
  for (int v = 0; v < ranks; ++v) config.lattice.victims.push_back(v);
  config.lattice.detectors = {*resilience::parse_detector_spec("gossip")};
  config.lattice.policies = {ckpt::CkptMode::kPfs};
  config.lattice.grid = 3;
  config.lattice.depth = 1;
  config.jobs = 2;
  const mc::McReport rep = mc::explore(config);
  EXPECT_GT(rep.missed_scenarios, 0u);
  EXPECT_GT(rep.max_missed, 0);
  EXPECT_FALSE(rep.missed_windows.empty());
}

TEST(McExplorer, PolicyAxisChangesBaselinesNotDetection) {
  auto config = ring_config();
  config.lattice.victims = {1};
  config.lattice.detectors = {*resilience::parse_detector_spec("paper-instant")};
  config.lattice.policies = {ckpt::CkptMode::kPfs, ckpt::CkptMode::kPartner};
  config.lattice.grid = 3;
  config.lattice.depth = 1;
  const mc::McReport rep = mc::explore(config);
  ASSERT_EQ(rep.baseline_e2.size(), 2u);
  EXPECT_GT(rep.baseline_e2[0], 0u);
  EXPECT_GT(rep.baseline_e2[1], 0u);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.policy_names, (std::vector<std::string>{"pfs", "partner"}));
}

TEST(McExplorer, RejectsOutOfRangeVictim) {
  auto config = ring_config();
  config.lattice.victims = {64};
  EXPECT_THROW(mc::explore(config), std::invalid_argument);
}
