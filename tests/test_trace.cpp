// vmpi trace + performance accounting: MPI-operation records, markers,
// rendering, and the always-on compute/communication breakdown.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/machine.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"
#include "vmpi/trace.hpp"

namespace exasim {
namespace {

using core::Machine;
using core::SimResult;
using test::tiny_config;
using vmpi::Context;
using vmpi::TraceRecord;

test::QuietLogs quiet;

TEST(Trace, RecordsSendAndRecvWithTimes) {
  auto cfg = tiny_config(2);
  cfg.trace = true;
  Machine m(cfg, [](Context& ctx) {
    std::uint64_t v = 7;
    if (ctx.rank() == 0) {
      ctx.send(1, 5, &v, sizeof v);
    } else {
      ctx.recv(0, 5, &v, sizeof v);
    }
    ctx.finalize();
  });
  m.run();
  ASSERT_NE(m.trace(), nullptr);
  const auto& recs = m.trace()->records();
  ASSERT_EQ(recs.size(), 2u);

  const TraceRecord* send = nullptr;
  const TraceRecord* recv = nullptr;
  for (const auto& r : recs) {
    if (r.op == TraceRecord::Op::kSend) send = &r;
    if (r.op == TraceRecord::Op::kRecv) recv = &r;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_EQ(send->rank, 0);
  EXPECT_EQ(send->peer, 1);
  EXPECT_EQ(send->tag, 5);
  EXPECT_EQ(send->bytes, sizeof(std::uint64_t));
  EXPECT_EQ(recv->rank, 1);
  EXPECT_EQ(recv->peer, 0);
  EXPECT_GE(recv->end, send->start);
  EXPECT_LE(send->start, send->end);
}

TEST(Trace, RecordsErrorsOnFailedOperations) {
  auto cfg = tiny_config(2);
  cfg.trace = true;
  cfg.failures = {FailureSpec{1, sim_us(1)}};
  Machine m(cfg, [](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      int v = 0;
      ctx.recv(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 9, &v, sizeof v);  // Dies blocked.
    }
    ctx.finalize();
  });
  m.run();
  bool saw_failed = false;
  for (const auto& r : m.trace()->records()) {
    if (r.error == vmpi::Err::kProcFailed) saw_failed = true;
  }
  EXPECT_TRUE(saw_failed);
}

TEST(Trace, MarkersCarryLabels) {
  auto cfg = tiny_config(1);
  cfg.trace = true;
  Machine m(cfg, [](Context& ctx) {
    ctx.compute(1e3);
    ctx.trace_marker("phase:checkpoint");
    ctx.finalize();
  });
  m.run();
  ASSERT_EQ(m.trace()->size(), 1u);
  const auto& rec = m.trace()->records().front();
  EXPECT_EQ(rec.op, TraceRecord::Op::kMarker);
  EXPECT_EQ(rec.marker, "phase:checkpoint");
  EXPECT_EQ(rec.start, sim_us(1));
}

TEST(Trace, MarkerIsNoOpWithoutTracing) {
  auto cfg = tiny_config(1);
  Machine m(cfg, [](Context& ctx) {
    ctx.trace_marker("ignored");
    ctx.finalize();
  });
  EXPECT_EQ(m.run().outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(m.trace(), nullptr);
}

TEST(Trace, RenderSortsByTimeAndFormats) {
  vmpi::MemoryTraceSink sink;
  TraceRecord a;
  a.op = TraceRecord::Op::kSend;
  a.rank = 1;
  a.start = sim_us(20);
  a.end = sim_us(22);
  a.peer = 0;
  a.tag = 3;
  a.bytes = 64;
  TraceRecord b;
  b.op = TraceRecord::Op::kMarker;
  b.rank = 0;
  b.start = b.end = sim_us(10);
  b.marker = "begin";
  sink.record(a);
  sink.record(b);
  const std::string text = sink.render();
  const auto marker_pos = text.find("marker=begin");
  const auto send_pos = text.find("op=send");
  ASSERT_NE(marker_pos, std::string::npos);
  ASSERT_NE(send_pos, std::string::npos);
  EXPECT_LT(marker_pos, send_pos);  // Sorted by start time.
  EXPECT_NE(text.find("peer=0"), std::string::npos);
  EXPECT_NE(text.find("bytes=64"), std::string::npos);
}

TEST(Trace, CollectiveTrafficAppearsAtP2pLevel) {
  auto cfg = tiny_config(4);
  cfg.trace = true;
  Machine m(cfg, [](Context& ctx) {
    ctx.barrier(ctx.world());
    ctx.finalize();
  });
  m.run();
  // Linear barrier over 4 ranks: 2 * 3 sends + 2 * 3 recvs = 12 records.
  EXPECT_EQ(m.trace()->size(), 12u);
}

TEST(Accounting, ComputeAndCommSplitIsSane) {
  auto cfg = tiny_config(2);
  SimResult result;
  Machine m(cfg, [](Context& ctx) {
    ctx.compute(1e6);  // 1 ms busy.
    std::uint64_t v = 1;
    if (ctx.rank() == 0) {
      ctx.send(1, 0, &v, sizeof v);
    } else {
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  });
  result = m.run();
  EXPECT_EQ(result.total_busy_time, 2 * sim_ms(1));
  EXPECT_GT(result.total_comm_time, 0u);
  EXPECT_LT(result.total_comm_time, sim_ms(1));
  EXPECT_GT(result.compute_fraction, 0.5);
  EXPECT_LT(result.compute_fraction, 1.0);
  // Per-rank accessors agree with the totals.
  EXPECT_EQ(m.rank_busy_time(0) + m.rank_busy_time(1), result.total_busy_time);
}

TEST(Accounting, CommBoundAppHasLowComputeFraction) {
  auto cfg = tiny_config(2);
  Machine m(cfg, [](Context& ctx) {
    std::uint64_t v = 0;
    for (int i = 0; i < 50; ++i) {
      if (ctx.rank() == 0) {
        ctx.send(1, 0, &v, sizeof v);
        ctx.recv(1, 1, &v, sizeof v);
      } else {
        ctx.recv(0, 0, &v, sizeof v);
        ctx.send(0, 1, &v, sizeof v);
      }
    }
    ctx.finalize();
  });
  SimResult result = m.run();
  EXPECT_LT(result.compute_fraction, 0.05);
}

TEST(Trace, WriteFileRoundTrips) {
  vmpi::MemoryTraceSink sink;
  TraceRecord r;
  r.op = TraceRecord::Op::kRecv;
  r.rank = 2;
  r.start = sim_us(1);
  r.end = sim_us(3);
  r.peer = 5;
  r.bytes = 128;
  sink.record(r);
  const std::string path = "/tmp/exasim_trace_test.txt";
  ASSERT_TRUE(sink.write_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_NE(line.find("op=recv"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace exasim
