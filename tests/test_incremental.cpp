// ckpt::IncrementalCheckpointer — delta detection, chain reconstruction,
// full-every policy, PFS cost proportional to written bytes, and broken-chain
// fallback.

#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/incremental.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using ckpt::CheckpointStore;
using ckpt::IncrementalCheckpointer;
using ckpt::IncrementalPolicy;
using test::run_app;
using test::tiny_config;
using vmpi::Context;

test::QuietLogs quiet;

std::vector<std::byte> make_state(std::size_t bytes, unsigned seed) {
  std::vector<std::byte> out(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>((i * 31 + seed * 17) & 0xff);
  }
  return out;
}

/// Runs `body` inside a 1-rank simulation.
template <typename F>
void in_sim(F&& body) {
  auto app = [&](Context& ctx) {
    body(ctx);
    ctx.finalize();
  };
  ASSERT_EQ(run_app(tiny_config(1), app).outcome, core::SimResult::Outcome::kCompleted);
}

TEST(Incremental, FullThenDeltaRoundTrip) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalPolicy policy;
    policy.block_bytes = 64;
    IncrementalCheckpointer inc(policy);

    auto v1 = make_state(1000, 1);
    inc.write(ctx, store, 1, v1, pfs, 1);
    auto v2 = v1;
    v2[130] = std::byte{0xAA};  // One block changes.
    inc.write(ctx, store, 2, v2, pfs, 1);

    std::uint64_t version = 0;
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1, &version);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(version, 2u);
    EXPECT_EQ(*got, v2);
  });
}

TEST(Incremental, DeltaStoresOnlyChangedBlocks) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalPolicy policy;
    policy.block_bytes = 128;
    IncrementalCheckpointer inc(policy);

    auto v1 = make_state(4096, 2);  // 32 blocks.
    inc.write(ctx, store, 1, v1, pfs, 1);
    auto v2 = v1;
    v2[0] = std::byte{1};     // Block 0.
    v2[4000] = std::byte{2};  // Block 31.
    inc.write(ctx, store, 2, v2, pfs, 1);

    EXPECT_GT(inc.bytes_written_full(), 4096u);
    // Delta: header + 2 records of ~136 bytes each.
    EXPECT_LT(inc.bytes_written_delta(), 500u);
    EXPECT_GT(inc.bytes_written_delta(), 2 * 128u);
  });
}

TEST(Incremental, UnchangedStateWritesEmptyDelta) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalCheckpointer inc(IncrementalPolicy{});
    auto v = make_state(5000, 3);
    inc.write(ctx, store, 1, v, pfs, 1);
    inc.write(ctx, store, 2, v, pfs, 1);
    EXPECT_LT(inc.bytes_written_delta(), 100u);  // Header only.
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v);
  });
}

TEST(Incremental, FullEveryPolicyBoundsChains) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalPolicy policy;
    policy.block_bytes = 64;
    policy.full_every = 3;
    IncrementalCheckpointer inc(policy);

    auto state = make_state(512, 4);
    for (std::uint64_t v = 1; v <= 7; ++v) {
      state[static_cast<std::size_t>(v * 13 % state.size())] ^= std::byte{0xFF};
      inc.write(ctx, store, v, state, pfs, 1);
    }
    // Versions 1, 4, 7 are full -> retention floor is 7.
    EXPECT_EQ(inc.retention_floor(), 7u);
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, state);
  });
}

TEST(Incremental, LongChainReconstructsExactly) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalPolicy policy;
    policy.block_bytes = 32;
    policy.full_every = 100;  // One full, many deltas.
    IncrementalCheckpointer inc(policy);

    auto state = make_state(1024, 5);
    for (std::uint64_t v = 1; v <= 20; ++v) {
      for (int k = 0; k < 5; ++k) {
        state[static_cast<std::size_t>((v * 97 + k * 41) % state.size())] ^= std::byte{0x3C};
      }
      inc.write(ctx, store, v, state, pfs, 1);
    }
    std::uint64_t version = 0;
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1, &version);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(version, 20u);
    EXPECT_EQ(*got, state);
  });
}

TEST(Incremental, BrokenChainFallsBackToOlderRestorePoint) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalPolicy policy;
    policy.block_bytes = 64;
    policy.full_every = 2;  // Fulls at 1, 3, 5; deltas at 2, 4.
    IncrementalCheckpointer inc(policy);

    std::vector<std::vector<std::byte>> states;
    auto state = make_state(256, 6);
    for (std::uint64_t v = 1; v <= 4; ++v) {
      state[static_cast<std::size_t>(v * 7 % state.size())] ^= std::byte{0x55};
      inc.write(ctx, store, v, state, pfs, 1);
      states.push_back(state);
    }
    // Destroy version 3 (the full that delta 4 depends on).
    store.remove_version(3);
    std::uint64_t version = 0;
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1, &version);
    ASSERT_TRUE(got.has_value());
    // Version 4's chain is broken -> fall back to version 2 (full 1 + delta 2).
    EXPECT_EQ(version, 2u);
    EXPECT_EQ(*got, states[1]);
  });
}

TEST(Incremental, PfsTimeProportionalToBytesWritten) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsParams pp;
    pp.per_client_bandwidth_bytes_per_sec = 1e6;  // 1 B/us.
    PfsModel pfs(pp);
    IncrementalPolicy policy;
    policy.block_bytes = 1024;
    IncrementalCheckpointer inc(policy);

    auto state = make_state(64 * 1024, 7);
    const SimTime t0 = ctx.now();
    inc.write(ctx, store, 1, state, pfs, 1);  // Full: ~65 ms.
    const SimTime t_full = ctx.now() - t0;
    state[10] ^= std::byte{1};  // One block.
    const SimTime t1 = ctx.now();
    inc.write(ctx, store, 2, state, pfs, 1);  // Delta: ~1 ms.
    const SimTime t_delta = ctx.now() - t1;
    EXPECT_GT(t_full, 30 * t_delta);
  });
}

TEST(Incremental, SizeChangeForcesFull) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalCheckpointer inc(IncrementalPolicy{});
    inc.write(ctx, store, 1, make_state(1000, 8), pfs, 1);
    auto bigger = make_state(2000, 9);
    inc.write(ctx, store, 2, bigger, pfs, 1);
    EXPECT_EQ(inc.retention_floor(), 2u);  // Second write was full.
    auto got = IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, bigger);
  });
}

TEST(Incremental, RejectsBadPolicyAndVersions) {
  in_sim([&](Context& ctx) {
    IncrementalPolicy bad;
    bad.block_bytes = 0;
    EXPECT_THROW(IncrementalCheckpointer{bad}, std::invalid_argument);

    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    IncrementalCheckpointer inc(IncrementalPolicy{});
    auto v = make_state(100, 10);
    inc.write(ctx, store, 5, v, pfs, 1);
    EXPECT_THROW(inc.write(ctx, store, 5, v, pfs, 1), std::invalid_argument);
  });
}

TEST(Incremental, ColdStartReturnsNothing) {
  in_sim([&](Context& ctx) {
    CheckpointStore store(1);
    PfsModel pfs{PfsParams{}};
    EXPECT_FALSE(IncrementalCheckpointer::read_latest(ctx, store, 0, pfs, 1).has_value());
  });
}

}  // namespace
}  // namespace exasim
