// fiber: cooperative user-space threads (the per-simulated-process contexts).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "fiber/fiber.hpp"
#include "fiber/stack_pool.hpp"
#include "util/pool.hpp"

namespace exasim {
namespace {

TEST(Fiber, RunsToCompletion) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.started());
  f.resume();
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::yield();
    trace.push_back(3);
    Fiber::yield();
    trace.push_back(5);
  });
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, LocalStateSurvivesYields) {
  long sum = 0;
  Fiber f([&] {
    long local = 0;
    for (int i = 1; i <= 5; ++i) {
      local += i;
      Fiber::yield();
    }
    sum = local;
  });
  while (!f.finished()) f.resume();
  EXPECT_EQ(sum, 15);
}

TEST(Fiber, ResumeAfterFinishThrows) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, YieldOutsideFiberThrows) { EXPECT_THROW(Fiber::yield(), std::logic_error); }

TEST(Fiber, DestroyingSuspendedFiberUnwindsItsFrames) {
  // Frame-held resources of a fiber abandoned mid-yield must be released via
  // stack unwinding (Fiber::Unwind), not leaked with the parked stack. This
  // is what keeps a deadlocked simulation LeakSanitizer-clean.
  auto resource = std::make_shared<int>(7);
  std::weak_ptr<int> observer = resource;
  bool resumed_past_yield = false;
  {
    Fiber f([held = std::move(resource), &resumed_past_yield] {
      Fiber::yield();
      resumed_past_yield = true;  // Unreachable: the fiber is never resumed.
    });
    f.resume();
    EXPECT_FALSE(f.finished());
    EXPECT_FALSE(observer.expired());
  }  // ~Fiber drives the unwind.
  EXPECT_TRUE(observer.expired());
  EXPECT_FALSE(resumed_past_yield);
}

TEST(Fiber, DestroyingUnstartedFiberDoesNotRunBody) {
  bool ran = false;
  { Fiber f([&] { ran = true; }); }
  EXPECT_FALSE(ran);
}

TEST(Fiber, InFiberReflectsState) {
  bool inside = false;
  EXPECT_FALSE(Fiber::in_fiber());
  Fiber f([&] { inside = Fiber::in_fiber(); });
  f.resume();
  EXPECT_TRUE(inside);
  EXPECT_FALSE(Fiber::in_fiber());
}

TEST(Fiber, InterleavesManyFibers) {
  constexpr int kFibers = 50;
  std::vector<int> counters(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&counters, i] {
      for (int k = 0; k < 10; ++k) {
        ++counters[static_cast<std::size_t>(i)];
        Fiber::yield();
      }
    }));
  }
  bool any = true;
  while (any) {
    any = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any = true;
      }
    }
  }
  for (int c : counters) EXPECT_EQ(c, 10);
}

TEST(Fiber, StackIsRoundedUpAndUsable) {
  Fiber f([] {}, 1);  // Below minimum -> rounded to >= 16 KiB.
  EXPECT_GE(f.stack_bytes(), std::size_t{16 * 1024});
  f.resume();
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, DeepStackUseWithinBounds) {
  // Touch a decent chunk of a 256 KiB stack via recursion.
  int depth_reached = 0;
  Fiber f(
      [&] {
        struct Rec {
          static int go(int d, int* max_out) {
            volatile char pad[512];
            pad[0] = static_cast<char>(d);
            *max_out = d;
            if (d >= 200) return d + pad[0] - pad[0];
            return Rec::go(d + 1, max_out);
          }
        };
        Rec::go(0, &depth_reached);
      },
      256 * 1024);
  f.resume();
  EXPECT_EQ(depth_reached, 200);
}

TEST(Fiber, ThousandsOfLazyStacksAreCheap) {
  // 4,096 fibers with 128 KiB virtual stacks: must construct fine (lazy
  // commit) and each runs.
  constexpr int kMany = 4096;
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(kMany);
  int ran = 0;
  for (int i = 0; i < kMany; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&ran] { ++ran; }));
  }
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(ran, kMany);
}

TEST(Fiber, DestroyUnstartedAndSuspendedFibersSafely) {
  {
    Fiber f([] {});  // Never started.
  }
  {
    auto f = std::make_unique<Fiber>([] {
      Fiber::yield();
      Fiber::yield();
    });
    f->resume();  // Suspended at first yield, then destroyed.
  }
  SUCCEED();
}

TEST(FiberDeathTest, StackOverflowHitsGuardPage) {
  // Running off the low end of the stack must fault on the PROT_NONE guard
  // page (SIGSEGV), not silently scribble over a neighboring mapping.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Fiber f(
            [] {
              struct Rec {
                static std::uint64_t go(std::uint64_t d) {
                  volatile char pad[1024];
                  pad[0] = static_cast<char>(d);
                  if (d > 1'000'000) return d;
                  return Rec::go(d + 1) + static_cast<std::uint64_t>(pad[0]);
                }
              };
              Rec::go(0);
            },
            16 * 1024);
        f.resume();
      },
      "");
}

TEST(FiberStackPool, RecyclesStacksAndTracksHighWater) {
  if (!util::pool_enabled()) GTEST_SKIP() << "pooling disabled in this run";
  auto& pool = FiberStackPool::instance();
  pool.trim();  // Isolate from earlier tests: start with empty free lists.
  const auto before = pool.stats();

  constexpr std::size_t kBytes = 128 * 1024;
  {
    Fiber a([] {}, kBytes);
    Fiber b([] {}, kBytes);
    a.resume();
    b.resume();
  }  // Both stacks parked.
  const auto parked = pool.stats();
  EXPECT_EQ(parked.mapped - before.mapped, 2u);
  EXPECT_GE(parked.pooled, 2u);
  EXPECT_GE(parked.high_water, before.outstanding + 2);

  {
    Fiber c([] {}, kBytes);  // Must reuse a parked stack, not map.
    c.resume();
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.mapped, parked.mapped);
  EXPECT_EQ(after.reused - parked.reused, 1u);

  // trim() unmaps every parked stack and empties the pool.
  pool.trim();
  const auto trimmed = pool.stats();
  EXPECT_EQ(trimmed.pooled, 0u);
  EXPECT_GT(trimmed.unmapped, after.unmapped);
}

TEST(FiberStackPool, UnpooledReleaseUnmaps) {
  const bool before = util::pool_enabled();
  util::set_pool_enabled(false);
  auto& pool = FiberStackPool::instance();
  const auto s0 = pool.stats();
  {
    Fiber f([] {}, 64 * 1024);
    f.resume();
  }
  const auto s1 = pool.stats();
  util::set_pool_enabled(before);
  EXPECT_EQ(s1.mapped - s0.mapped, 1u);
  EXPECT_EQ(s1.unmapped - s0.unmapped, 1u);
  EXPECT_EQ(s1.pooled, s0.pooled);
}

}  // namespace
}  // namespace exasim
