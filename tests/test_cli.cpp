// core::cli — xSim-style command-line / environment configuration,
// including the paper's failure-schedule environment variable (§IV-B).

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/cli.hpp"
#include "util/pool.hpp"

namespace exasim {
namespace {

using core::CliOptions;
using core::parse_cli;

std::optional<CliOptions> parse(std::initializer_list<const char*> args,
                                std::string* error = nullptr) {
  std::vector<const char*> argv{"exasim_run"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::string local;
  return parse_cli(static_cast<int>(argv.size()), argv.data(),
                   error != nullptr ? error : &local);
}

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    if (value != nullptr) {
      ::setenv(core::kFailureScheduleEnvVar, value, 1);
    } else {
      ::unsetenv(core::kFailureScheduleEnvVar);
    }
  }
  ~EnvGuard() { ::unsetenv(core::kFailureScheduleEnvVar); }
};

TEST(Cli, DefaultsAreSane) {
  EnvGuard env(nullptr);
  auto opts = parse({});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->machine.ranks, 1);
  EXPECT_TRUE(opts->machine.failures.empty());
  EXPECT_FALSE(opts->mttf.has_value());
}

TEST(Cli, ParsesMachineOptions) {
  EnvGuard env(nullptr);
  auto opts = parse({"--ranks=4096", "--topology=torus:16x16x16", "--link-latency=2us",
                     "--bandwidth=32e9", "--eager-threshold=262144",
                     "--failure-timeout=100ms", "--slowdown=1000", "--ns-per-unit=1281",
                     "--stack-bytes=65536"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->machine.ranks, 4096);
  EXPECT_EQ(opts->machine.topology, "torus:16x16x16");
  EXPECT_EQ(opts->machine.net.link_latency, sim_us(2));
  EXPECT_DOUBLE_EQ(opts->machine.net.bandwidth_bytes_per_sec, 32e9);
  EXPECT_EQ(opts->machine.net.eager_threshold, 262144u);
  EXPECT_EQ(opts->machine.net.failure_timeout, sim_ms(100));
  EXPECT_DOUBLE_EQ(opts->machine.proc.slowdown, 1000.0);
  EXPECT_EQ(opts->machine.process.fiber_stack_bytes, 65536u);
}

TEST(Cli, ParsesFailureScheduleOption) {
  EnvGuard env(nullptr);
  auto opts = parse({"--ranks=100", "--failures=12@3s,77@1.5s"});
  ASSERT_TRUE(opts.has_value());
  ASSERT_EQ(opts->machine.failures.size(), 2u);
  EXPECT_EQ(opts->machine.failures[0], (FailureSpec{12, sim_sec(3)}));
  EXPECT_EQ(opts->machine.failures[1], (FailureSpec{77, sim_seconds(1.5)}));
}

TEST(Cli, ReadsScheduleFromEnvironment) {
  // Paper §IV-B: schedule "via an environment variable on startup".
  EnvGuard env("3@250ms");
  auto opts = parse({"--ranks=8"});
  ASSERT_TRUE(opts.has_value());
  ASSERT_EQ(opts->machine.failures.size(), 1u);
  EXPECT_EQ(opts->machine.failures[0], (FailureSpec{3, sim_ms(250)}));
}

TEST(Cli, CommandLineOverridesEnvironment) {
  EnvGuard env("3@250ms");
  auto opts = parse({"--ranks=8", "--failures=1@1s"});
  ASSERT_TRUE(opts.has_value());
  ASSERT_EQ(opts->machine.failures.size(), 1u);
  EXPECT_EQ(opts->machine.failures[0].rank, 1);
}

TEST(Cli, ValidatesScheduleRanks) {
  EnvGuard env(nullptr);
  std::string error;
  EXPECT_FALSE(parse({"--ranks=4", "--failures=9@1s"}, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(Cli, ParsesExperimentOptions) {
  EnvGuard env(nullptr);
  auto opts = parse({"--mttf=3000s", "--distribution=exponential", "--seed=77",
                     "--max-restarts=5", "--sim-time-file=/tmp/t.txt"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->mttf, sim_sec(3000));
  EXPECT_EQ(opts->distribution, core::FailureDistribution::kExponential);
  EXPECT_EQ(opts->seed, 77u);
  EXPECT_EQ(opts->max_restarts, 5);
  EXPECT_EQ(opts->sim_time_file, "/tmp/t.txt");
}

TEST(Cli, ParsesSimWorkers) {
  EnvGuard env(nullptr);
  auto defaulted = parse({"--ranks=8"});
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_EQ(defaulted->machine.sim_workers, 0);  // 0 = EXASIM_SIM_WORKERS env.
  auto literal = parse({"--sim-workers=4"});
  ASSERT_TRUE(literal.has_value());
  EXPECT_EQ(literal->machine.sim_workers, 4);
  auto automatic = parse({"--sim-workers=auto"});
  ASSERT_TRUE(automatic.has_value());
  EXPECT_EQ(automatic->machine.sim_workers, -1);  // -1 = hardware threads.
  for (auto bad : {"--sim-workers=0", "--sim-workers=-2", "--sim-workers=x"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Cli, ParsesSchedulerAndSpeculate) {
  EnvGuard env(nullptr);
  auto defaulted = parse({"--ranks=8"});
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_TRUE(defaulted->machine.scheduler.empty());  // "" = EXASIM_SCHEDULER env.
  EXPECT_EQ(defaulted->machine.speculate, -1);        // -1 = EXASIM_SPECULATE env.

  auto adaptive = parse({"--scheduler=adaptive:stretch=16,gpw=2", "--speculate=32"});
  ASSERT_TRUE(adaptive.has_value());
  EXPECT_EQ(adaptive->machine.scheduler, "adaptive:stretch=16,gpw=2");
  EXPECT_EQ(adaptive->machine.speculate, 32);

  auto off = parse({"--scheduler=fixed", "--speculate=0"});
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(off->machine.scheduler, "fixed");
  EXPECT_EQ(off->machine.speculate, 0);

  for (auto bad : {"--scheduler=bogus", "--scheduler=adaptive:stretch=0",
                   "--scheduler=adaptive:nope=1", "--speculate=-1", "--speculate=x"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Cli, ParsesRoutingAndLinkModel) {
  EnvGuard env(nullptr);
  auto defaulted = parse({"--ranks=8"});
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_TRUE(defaulted->machine.routing.empty());  // "" = EXASIM_ROUTING env.
  EXPECT_TRUE(defaulted->machine.net.link_timeouts.uniform());
  EXPECT_FALSE(defaulted->machine.net.contention);

  auto tuned = parse({"--routing=adaptive:spread=8",
                      "--link-timeouts=hot:0=500ms,3=2s", "--contention"});
  ASSERT_TRUE(tuned.has_value());
  EXPECT_EQ(tuned->machine.routing, "adaptive:spread=8");
  EXPECT_EQ(tuned->machine.net.link_timeouts.kind, LinkTimeoutKind::kHot);
  ASSERT_EQ(tuned->machine.net.link_timeouts.hot.size(), 2u);
  EXPECT_EQ(tuned->machine.net.link_timeouts.hot[0],
            (std::pair<std::uint64_t, SimTime>{0, sim_ms(500)}));
  EXPECT_TRUE(tuned->machine.net.contention);

  auto dist = parse({"--link-timeouts=uniform:50ms..200ms,seed=7"});
  ASSERT_TRUE(dist.has_value());
  EXPECT_EQ(dist->machine.net.link_timeouts.kind, LinkTimeoutKind::kDistribution);
  EXPECT_EQ(dist->machine.net.link_timeouts.seed, 7u);

  for (auto bad : {"--routing=bogus", "--routing=adaptive:spread=0",
                   "--routing=deterministic:spread=2", "--link-timeouts=bogus",
                   "--link-timeouts=uniform:200ms..50ms", "--link-timeouts=plane:x=1s"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Cli, ParsesStorageAndCkptMode) {
  EnvGuard env(nullptr);
  auto defaulted = parse({"--ranks=8"});
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_TRUE(defaulted->machine.storage.empty());    // "" = EXASIM_STORAGE env.
  EXPECT_TRUE(defaulted->machine.ckpt_mode.empty());  // "" = EXASIM_CKPT_MODE env.

  auto tiered = parse({"--storage=hpc", "--ckpt-mode=staged"});
  ASSERT_TRUE(tiered.has_value());
  EXPECT_EQ(tiered->machine.storage, "hpc");
  EXPECT_EQ(tiered->machine.ckpt_mode, "staged");

  auto custom = parse({"--storage=mem:cbw=5e10,cap=4e9;bb:lat=10us;pfs:bw=1e11,lat=1ms",
                       "--ckpt-mode=partner"});
  ASSERT_TRUE(custom.has_value());
  EXPECT_EQ(custom->machine.storage, "mem:cbw=5e10,cap=4e9;bb:lat=10us;pfs:bw=1e11,lat=1ms");
  EXPECT_EQ(custom->machine.ckpt_mode, "partner");

  for (auto bad : {"--storage=bogus", "--storage=mem", "--storage=pfs;mem",
                   "--storage=pfs:bw=1e999", "--storage=pfs:bw=1e9x",
                   "--storage=pfs:contend=2", "--ckpt-mode=scr", "--ckpt-mode="}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Cli, ReadsLinkTimeoutsFromEnvironment) {
  EnvGuard env(nullptr);
  ::setenv(kLinkTimeoutsEnvVar, "plane:0=300ms", 1);
  auto opts = parse({"--ranks=8"});
  ::unsetenv(kLinkTimeoutsEnvVar);
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->machine.net.link_timeouts.kind, LinkTimeoutKind::kPlane);

  // The flag wins over the environment.
  ::setenv(kLinkTimeoutsEnvVar, "plane:0=300ms", 1);
  auto flag = parse({"--link-timeouts=uniform"});
  ::unsetenv(kLinkTimeoutsEnvVar);
  ASSERT_TRUE(flag.has_value());
  EXPECT_TRUE(flag->machine.net.link_timeouts.uniform());
}

TEST(Cli, ParsesNoPool) {
  EnvGuard env(nullptr);
  const bool before = util::pool_enabled();
  auto defaulted = parse({"--ranks=8"});
  ASSERT_TRUE(defaulted.has_value());
  EXPECT_FALSE(defaulted->no_pool);
  EXPECT_EQ(util::pool_enabled(), before);  // Parsing alone must not flip it.

  auto off = parse({"--no-pool"});
  ASSERT_TRUE(off.has_value());
  EXPECT_TRUE(off->no_pool);
  EXPECT_FALSE(util::pool_enabled());  // Parse side effect: pools disabled.
  util::set_pool_enabled(before);      // Restore for the rest of the suite.
}

TEST(Cli, RejectsMalformedOptions) {
  EnvGuard env(nullptr);
  for (auto bad : {"--ranks=abc", "--mttf=xyz", "--distribution=bogus", "--unknown=1",
                   "--failures=nope"}) {
    std::string error;
    EXPECT_FALSE(parse({bad}, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(Cli, RejectsMalformedEnvironment) {
  EnvGuard env("garbage");
  std::string error;
  EXPECT_FALSE(parse({}, &error).has_value());
}

TEST(Cli, CollectsPositionalArguments) {
  EnvGuard env(nullptr);
  auto opts = parse({"heat3d", "--ranks=8"});
  ASSERT_TRUE(opts.has_value());
  ASSERT_EQ(opts->positional.size(), 1u);
  EXPECT_EQ(opts->positional[0], "heat3d");
}

TEST(Cli, RunnerConfigMovesScheduleToFirstLaunch) {
  EnvGuard env(nullptr);
  auto opts = parse({"--ranks=16", "--failures=2@1s", "--mttf=100s", "--seed=5"});
  ASSERT_TRUE(opts.has_value());
  core::RunnerConfig rc = core::runner_config_from(*opts);
  EXPECT_TRUE(rc.base.failures.empty());
  ASSERT_EQ(rc.first_run_failures.size(), 1u);
  EXPECT_EQ(rc.first_run_failures[0].rank, 2);
  EXPECT_EQ(rc.system_mttf, sim_sec(100));
  EXPECT_EQ(rc.seed, 5u);
}

}  // namespace
}  // namespace exasim
