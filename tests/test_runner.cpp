// ResilientRunner: the paper's operational loop — E1/E2/F/MTTF_a accounting,
// virtual-clock continuity across restarts, checkpoint scrubbing, and
// determinism (paper §IV-E, §V-E).

#include <gtest/gtest.h>

#include <filesystem>

#include "apps/heat3d.hpp"
#include "core/runner.hpp"
#include "core/simtimefile.hpp"
#include "sim_test_util.hpp"

namespace exasim {
namespace {

using apps::HeatParams;
using core::ResilientRunner;
using core::RunnerConfig;
using core::RunnerResult;

test::QuietLogs quiet;

HeatParams small_heat(int ckpt_interval) {
  HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;  // 8 ranks, 4^3 local cubes.
  p.total_iterations = 40;
  p.halo_interval = ckpt_interval;
  p.checkpoint_interval = ckpt_interval;
  p.real_compute = true;
  p.work_units_per_point = 1000.0;  // 64 us/iteration/rank at 1 ns/unit.
  return p;
}

RunnerConfig small_runner(int ckpt_interval) {
  RunnerConfig rc;
  rc.base = test::tiny_config(8);
  (void)ckpt_interval;
  return rc;
}

TEST(Runner, BaselineWithoutFailuresCompletesInOneLaunch) {
  RunnerConfig rc = small_runner(10);
  ResilientRunner runner(rc, apps::make_heat3d(small_heat(10)));
  RunnerResult res = runner.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.launches, 1);
  EXPECT_EQ(res.failures, 0);
  EXPECT_GT(res.total_time, 0u);
  EXPECT_DOUBLE_EQ(res.app_mttf_seconds, to_seconds(res.total_time));
}

TEST(Runner, DeterministicFirstRunFailureCausesOneRestart) {
  RunnerConfig rc = small_runner(10);
  // Fail rank 3 mid-run (iteration ~20 of 40).
  rc.first_run_failures = {FailureSpec{3, sim_us(20 * 64)}};
  std::vector<apps::HeatReport> reports(8);
  ResilientRunner runner(rc, apps::make_heat3d(small_heat(10), &reports));
  RunnerResult res = runner.run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.launches, 2);
  EXPECT_EQ(res.failures, 1);
  EXPECT_EQ(reports[0].restarts_used, 1);  // Second launch restored a checkpoint.
  EXPECT_NEAR(res.app_mttf_seconds, to_seconds(res.total_time) / 2.0, 1e-12);
}

TEST(Runner, E2ExceedsE1UnderFailures) {
  // E1: no failures.
  RunnerResult e1 = ResilientRunner(small_runner(10), apps::make_heat3d(small_heat(10))).run();
  ASSERT_TRUE(e1.completed);

  // E2: random failures with an MTTF comparable to the run length.
  RunnerConfig rc = small_runner(10);
  rc.system_mttf = e1.total_time;  // Aggressive but finite.
  rc.seed = 7;
  RunnerResult e2 = ResilientRunner(rc, apps::make_heat3d(small_heat(10))).run();
  ASSERT_TRUE(e2.completed);
  if (e2.failures > 0) {
    EXPECT_GT(e2.total_time, e1.total_time);
    EXPECT_LT(e2.app_mttf_seconds, to_seconds(e2.total_time));
  } else {
    EXPECT_EQ(e2.total_time, e1.total_time);
  }
}

TEST(Runner, VirtualClockIsContinuousAcrossRestarts) {
  RunnerConfig rc = small_runner(10);
  rc.first_run_failures = {FailureSpec{1, sim_us(500)}};
  ResilientRunner runner(rc, apps::make_heat3d(small_heat(10)));
  RunnerResult res = runner.run();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.run_results.size(), 2u);
  // The second launch's end time continues past the first launch's abort
  // time (clocks initialized from the persisted exit time, §IV-E).
  EXPECT_GT(res.run_results[1].max_end_time, res.run_results[0].max_end_time);
  EXPECT_EQ(res.total_time, res.run_results[1].max_end_time);
}

TEST(Runner, DeterministicAcrossRepetitions) {
  auto run_once = [] {
    RunnerConfig rc;
    rc.base = test::tiny_config(8);
    rc.system_mttf = sim_ms(3);
    rc.seed = 12345;
    ResilientRunner runner(rc, apps::make_heat3d(small_heat(5)));
    return runner.run();
  };
  RunnerResult a = run_once();
  RunnerResult b = run_once();
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.launches, b.launches);
}

TEST(Runner, SeedChangesOutcome) {
  auto run_with_seed = [](std::uint64_t seed) {
    RunnerConfig rc;
    rc.base = test::tiny_config(8);
    rc.system_mttf = sim_ms(2);
    rc.seed = seed;
    ResilientRunner runner(rc, apps::make_heat3d(small_heat(5)));
    return runner.run().total_time;
  };
  // Not guaranteed different for every pair, but these seeds diverge.
  EXPECT_NE(run_with_seed(1), run_with_seed(999));
}

TEST(Runner, RestartOverheadAccumulates) {
  RunnerConfig rc = small_runner(10);
  rc.first_run_failures = {FailureSpec{1, sim_us(500)}};
  RunnerResult without = ResilientRunner(rc, apps::make_heat3d(small_heat(10))).run();
  rc.restart_overhead = sim_sec(1);
  RunnerResult with = ResilientRunner(rc, apps::make_heat3d(small_heat(10))).run();
  ASSERT_TRUE(without.completed);
  ASSERT_TRUE(with.completed);
  EXPECT_EQ(with.total_time, without.total_time + sim_sec(1));
}

TEST(Runner, RejectsManagedFieldsInBase) {
  RunnerConfig rc;
  rc.base = test::tiny_config(2);
  rc.base.initial_time = 5;
  EXPECT_THROW(ResilientRunner(rc, apps::make_heat3d(small_heat(10))), std::invalid_argument);
}

TEST(Runner, ScrubRemovesBrokenSetsBetweenLaunches) {
  RunnerConfig rc = small_runner(10);
  // Failure at an iteration boundary likely to interrupt checkpointing at
  // some rank; regardless, after completion only complete sets remain.
  rc.first_run_failures = {FailureSpec{2, sim_us(10 * 64 + 5)}};
  ResilientRunner runner(rc, apps::make_heat3d(small_heat(10)));
  RunnerResult res = runner.run();
  ASSERT_TRUE(res.completed);
  for (auto v : runner.checkpoints().versions()) {
    EXPECT_TRUE(runner.checkpoints().set_complete(v));
  }
}

TEST(SimTimeFile, SaveLoadResetRoundTrip) {
  const std::string path = "/tmp/exasim_test_simtime.txt";
  core::SimTimeFile f(path);
  f.reset();
  EXPECT_FALSE(f.load().has_value());
  ASSERT_TRUE(f.save(sim_sec(1234)));
  EXPECT_EQ(f.load(), sim_sec(1234));
  f.reset();
  EXPECT_FALSE(f.load().has_value());
}

TEST(Runner, WritesSimTimeFileWhenConfigured) {
  const std::string path = "/tmp/exasim_test_runner_time.txt";
  RunnerConfig rc = small_runner(10);
  rc.sim_time_file = path;
  ResilientRunner runner(rc, apps::make_heat3d(small_heat(10)));
  RunnerResult res = runner.run();
  ASSERT_TRUE(res.completed);
  core::SimTimeFile f(path);
  EXPECT_EQ(f.load(), res.total_time);
  f.reset();
}

}  // namespace
}  // namespace exasim
