// metrics: streaming stats, full-sample stats (Table I statistic set),
// histogram, label counter, and table/CSV rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace exasim {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // Population stddev of this classic set.
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(SampleStats, TableOneStatisticSet) {
  // min/max/mean/median/mode/stddev — exactly Table I's fields.
  SampleStats s;
  for (double v : {1.0, 4.0, 4.0, 4.0, 17.0, 21.0, 98.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 98.0);
  EXPECT_NEAR(s.mean(), 21.2857, 1e-3);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
  EXPECT_DOUBLE_EQ(s.mode(), 4.0);
  EXPECT_GT(s.stddev(), 0.0);
}

TEST(SampleStats, MedianInterpolatesEvenCount) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleStats, ModeTieBreaksSmallest) {
  SampleStats s;
  for (double v : {5.0, 5.0, 2.0, 2.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mode(), 2.0);
}

TEST(SampleStats, PercentileEdges) {
  SampleStats s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleStats, SampleStddevMatchesFormula) {
  SampleStats s;
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  // Sample variance = ((2-4)^2 + 0 + (6-4)^2) / (3-1) = 4.
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LabelCounter, CountsAndTotals) {
  LabelCounter c;
  c.add("halo");
  c.add("halo", 2);
  c.add("barrier");
  EXPECT_EQ(c.count("halo"), 3u);
  EXPECT_EQ(c.count("barrier"), 1u);
  EXPECT_EQ(c.count("missing"), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(TablePrinter, RendersAlignedRows) {
  TablePrinter t({"MTTF_s", "C", "E2"});
  t.add_row({"6000", "500", "7957"});
  t.add_row({"3000", "125", "7948"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("MTTF_s"), std::string::npos);
  EXPECT_NE(s.find("7948"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinter, RejectsWidthMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::integer(-42), "-42");
}

TEST(CsvWriter, RendersCsv) {
  CsvWriter w({"x", "y"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.to_string(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace exasim
