// Application tests: heat3d physics + checkpoint/restart transparency, ring,
// cgproxy, and the §V-D failure-mode observations.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/cgproxy.hpp"
#include "apps/heat3d.hpp"
#include "apps/ring.hpp"
#include "core/runner.hpp"
#include "sim_test_util.hpp"

namespace exasim {
namespace {

using apps::HeatParams;
using apps::HeatReport;
using core::ResilientRunner;
using core::RunnerConfig;
using core::RunnerResult;
using core::SimResult;
using test::run_app;
using test::tiny_config;

test::QuietLogs quiet;

HeatParams heat_8ranks(int interval, int iters = 40) {
  HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = iters;
  p.halo_interval = interval;
  p.checkpoint_interval = interval;
  p.work_units_per_point = 100.0;
  return p;
}

TEST(Heat3D, CompletesAndProducesFiniteChecksum) {
  std::vector<HeatReport> reports(8);
  RunnerConfig rc;
  rc.base = tiny_config(8);
  ResilientRunner runner(rc, apps::make_heat3d(heat_8ranks(10), &reports));
  RunnerResult res = runner.run();
  ASSERT_TRUE(res.completed);
  for (const auto& r : reports) {
    EXPECT_EQ(r.completed_iterations, 40);
    EXPECT_TRUE(std::isfinite(r.checksum));
  }
}

TEST(Heat3D, DiffusionConservesHeatApproximately) {
  // With the explicit scheme and halo exchange every iteration, the global
  // sum is conserved up to boundary losses; with a symmetric initial
  // condition it stays finite and bounded.
  std::vector<HeatReport> reports(8);
  RunnerConfig rc;
  rc.base = tiny_config(8);
  ResilientRunner runner(rc, apps::make_heat3d(heat_8ranks(1, 10), &reports));
  ASSERT_TRUE(runner.run().completed);
  double total = 0;
  for (const auto& r : reports) total += r.checksum;
  EXPECT_TRUE(std::isfinite(total));
  EXPECT_LT(std::abs(total), 1e6);
}

TEST(Heat3D, ChecksumIdenticalWithAndWithoutFailure) {
  // The acid test of application-level checkpoint/restart: a failure +
  // restart must reproduce the exact same physics as a failure-free run
  // (same iteration count, bit-identical state at halo-exchange points).
  auto run_heat = [&](std::vector<FailureSpec> failures) {
    std::vector<HeatReport> reports(8);
    RunnerConfig rc;
    rc.base = tiny_config(8);
    rc.first_run_failures = std::move(failures);
    ResilientRunner runner(rc, apps::make_heat3d(heat_8ranks(10), &reports));
    EXPECT_TRUE(runner.run().completed);
    std::vector<double> sums;
    for (const auto& r : reports) sums.push_back(r.checksum);
    return sums;
  };
  const auto clean = run_heat({});
  // ~6.4 us/iteration: this failure lands around iteration 16 of 40.
  const auto failed = run_heat({FailureSpec{5, sim_us(100)}});
  ASSERT_EQ(clean.size(), failed.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean[i], failed[i]) << "rank " << i;
  }
}

TEST(Heat3D, ModeledModeMatchesRealModeTiming) {
  auto total_time = [&](bool real) {
    HeatParams p = heat_8ranks(10);
    p.real_compute = real;
    RunnerConfig rc;
    rc.base = tiny_config(8);
    ResilientRunner runner(rc, apps::make_heat3d(p));
    RunnerResult res = runner.run();
    EXPECT_TRUE(res.completed);
    return res.total_time;
  };
  // Modeled (skeleton) execution must produce the same virtual time as real
  // execution — the whole point of the modeled path (DESIGN.md §2).
  EXPECT_EQ(total_time(true), total_time(false));
}

TEST(Heat3D, ShorterCheckpointIntervalCostsMoreWithoutFailures) {
  // The E1 column of Table II: more checkpoint cycles -> more time.
  auto e1 = [&](int interval) {
    RunnerConfig rc;
    rc.base = tiny_config(8);
    ResilientRunner runner(rc, apps::make_heat3d(heat_8ranks(interval)));
    RunnerResult res = runner.run();
    EXPECT_TRUE(res.completed);
    return res.total_time;
  };
  EXPECT_LT(e1(40), e1(5));
}

TEST(Heat3D, PhaseTelemetryTracksProgress) {
  apps::HeatTelemetry telemetry(8);
  HeatParams p = heat_8ranks(10);
  p.telemetry = &telemetry;
  RunnerConfig rc;
  rc.base = tiny_config(8);
  ResilientRunner runner(rc, apps::make_heat3d(p));
  ASSERT_TRUE(runner.run().completed);
  for (auto phase : telemetry.last_phase) {
    EXPECT_EQ(phase, apps::HeatPhase::kDone);
  }
}

TEST(Heat3D, FailureDuringComputeIsDetectedInHaloOrBarrier) {
  // §V-D: failures during the (dominant) compute phase are detected in the
  // halo exchange; the abort leaves survivors whose last phase is halo,
  // checkpoint, or barrier — never compute-completed-normally.
  apps::HeatTelemetry telemetry(8);
  HeatParams p = heat_8ranks(10);
  p.telemetry = &telemetry;
  auto cfg = tiny_config(8);
  // Mid-compute failure around iteration 15 of 40 (~6.4 us/iteration).
  cfg.failures = {FailureSpec{4, sim_us(96)}};
  core::Machine machine(cfg, apps::make_heat3d(p));
  ckpt::CheckpointStore store(8);
  machine.set_checkpoint_store(&store);
  SimResult r = machine.run();
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  int halo_or_later = 0;
  for (int rank = 0; rank < 8; ++rank) {
    if (rank == 4) continue;
    const auto phase = telemetry.last_phase[static_cast<std::size_t>(rank)];
    if (phase == apps::HeatPhase::kHalo || phase == apps::HeatPhase::kCheckpoint ||
        phase == apps::HeatPhase::kBarrier || phase == apps::HeatPhase::kCleanup) {
      ++halo_or_later;
    }
  }
  EXPECT_GT(halo_or_later, 0);
}

TEST(Heat3D, RejectsBadDecomposition) {
  HeatParams p = heat_8ranks(10);
  p.px = 3;  // 3*2*2 != 8 ranks.
  RunnerConfig rc;
  rc.base = tiny_config(8);
  // The app throws inside the fiber -> uncaught app exception is a test
  // failure; instead verify the decomposition check via a 1-rank config.
  HeatParams q;
  q.nx = 7;  // Does not divide by px=2.
  q.px = 2;
  q.py = q.pz = 1;
  (void)p;
  core::SimConfig cfg = tiny_config(2);
  ckpt::CheckpointStore store(2);
  core::Machine machine(cfg, [&](vmpi::Context& ctx) {
    EXPECT_THROW(
        {
          auto app = apps::make_heat3d(q);
          app(ctx);
        },
        std::invalid_argument);
    ctx.finalize();
  });
  machine.set_checkpoint_store(&store);
  machine.run();
}

TEST(Ring, TokenAccumulatesAcrossLaps) {
  apps::RingParams p;
  p.laps = 3;
  std::vector<apps::RingReport> reports(5);
  SimResult r = run_app(tiny_config(5), apps::make_ring(p, &reports));
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Token starts at 1, +1 per hop (5 hops/lap incl. rank 0), 3 laps.
  EXPECT_EQ(reports[0].final_token, 1u + 3u * 5u - 1u + 1u);
}

TEST(Ring, ElapsedTimeGrowsWithLaps) {
  auto elapsed = [&](int laps) {
    apps::RingParams p;
    p.laps = laps;
    std::vector<apps::RingReport> reports(4);
    run_app(tiny_config(4), apps::make_ring(p, &reports));
    return reports[0].elapsed_seconds;
  };
  EXPECT_GT(elapsed(10), elapsed(1));
}

TEST(CgProxy, ConvergesIdenticallyWithAndWithoutFailure) {
  auto run_cg = [&](std::vector<FailureSpec> failures) {
    apps::CgProxyParams p;
    p.total_iterations = 30;
    p.checkpoint_interval = 5;
    p.local_elements = 64;
    std::vector<apps::CgProxyReport> reports(4);
    RunnerConfig rc;
    rc.base = tiny_config(4);
    rc.first_run_failures = std::move(failures);
    ResilientRunner runner(rc, apps::make_cgproxy(p, &reports));
    EXPECT_TRUE(runner.run().completed);
    return reports[0].residual;
  };
  const double clean = run_cg({});
  const double failed = run_cg({FailureSpec{2, sim_us(400)}});
  EXPECT_DOUBLE_EQ(clean, failed);
}

TEST(CgProxy, RunsWithoutCheckpointing) {
  apps::CgProxyParams p;
  p.total_iterations = 10;
  p.checkpoint_interval = 0;
  std::vector<apps::CgProxyReport> reports(3);
  core::SimConfig cfg = tiny_config(3);
  ckpt::CheckpointStore store(3);
  core::Machine machine(cfg, apps::make_cgproxy(p, &reports));
  machine.set_checkpoint_store(&store);
  SimResult r = machine.run();
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(reports[0].completed_iterations, 10);
}

}  // namespace
}  // namespace exasim
