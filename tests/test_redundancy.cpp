// redundancy: redMPI-style process-level replication — transparent
// plane/group mapping, SDC detection via message-hash comparison, majority
// correction under triple redundancy, isolation mode as a propagation
// tracker (paper §II-C).

#include <gtest/gtest.h>

#include <cstring>

#include "redundancy/redundant.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using redundancy::RedundancyConfig;
using redundancy::RedundantContext;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;

test::QuietLogs quiet;

TEST(Redundancy, HashIsStableAndSensitive) {
  const char a[] = "hello world";
  const char b[] = "hello worle";
  EXPECT_EQ(redundancy::message_hash(a, sizeof a), redundancy::message_hash(a, sizeof a));
  EXPECT_NE(redundancy::message_hash(a, sizeof a), redundancy::message_hash(b, sizeof b));
  EXPECT_NE(redundancy::message_hash(a, 5), redundancy::message_hash(a, 6));
}

TEST(Redundancy, MappingSplitsPlanesAndGroups) {
  // 4 app ranks x 2 replicas = 8 world ranks.
  std::vector<int> app_rank(8, -1), replica(8, -1);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    RedundantContext red(ctx, cfg);
    app_rank[ctx.rank()] = red.rank();
    replica[ctx.rank()] = red.replica();
    EXPECT_EQ(red.size(), 4);
    red.finalize();
  };
  SimResult r = run_app(tiny_config(8), app);
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(app_rank[w], w % 4);
    EXPECT_EQ(replica[w], w / 4);
  }
}

TEST(Redundancy, RejectsBadConfiguration) {
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    if (ctx.size() % 2 != 0) {
      EXPECT_THROW(RedundantContext(ctx, cfg), std::invalid_argument);
    }
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(3), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Redundancy, CleanTrafficFlowsWithoutDivergence) {
  // Ring of sends under dual redundancy: all replicas see identical data.
  std::vector<std::uint64_t> divergences(12, 99);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    RedundantContext red(ctx, cfg);
    const int next = (red.rank() + 1) % red.size();
    const int prev = (red.rank() + red.size() - 1) % red.size();
    std::uint64_t out = 42 + red.rank(), in = 0;
    if (red.rank() == 0) {
      EXPECT_EQ(red.send(next, 1, &out, sizeof out), Err::kSuccess);
      EXPECT_EQ(red.recv(prev, 1, &in, sizeof in), Err::kSuccess);
    } else {
      EXPECT_EQ(red.recv(prev, 1, &in, sizeof in), Err::kSuccess);
      EXPECT_EQ(red.send(next, 1, &out, sizeof out), Err::kSuccess);
    }
    divergences[ctx.rank()] = red.stats().divergences;
    red.finalize();
  };
  SimResult r = run_app(tiny_config(12), app);  // 6 app ranks x 2.
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  for (auto d : divergences) EXPECT_EQ(d, 0u);
}

TEST(Redundancy, DualRedundancyDetectsCorruptionButCannotCorrect) {
  // Replica 1 of app rank 0 sends corrupted data; the receiving group
  // (replicas of app rank 1) must detect the divergence.
  std::vector<std::uint64_t> detected(4, 0), uncorrectable(4, 0);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    RedundantContext red(ctx, cfg);
    std::uint64_t payload = 1000;
    if (red.rank() == 0) {
      if (red.replica() == 1) payload ^= 1ull << 17;  // Injected SDC.
      EXPECT_EQ(red.send(1, 0, &payload, sizeof payload), Err::kSuccess);
    } else {
      std::uint64_t in = 0;
      EXPECT_EQ(red.recv(0, 0, &in, sizeof in), Err::kSuccess);
    }
    detected[ctx.rank()] = red.stats().divergences;
    uncorrectable[ctx.rank()] = red.stats().uncorrectable;
    red.finalize();
  };
  SimResult r = run_app(tiny_config(4), app);  // 2 app ranks x 2.
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Both replicas of app rank 1 observed the divergence, uncorrectable.
  EXPECT_EQ(detected[1], 1u);
  EXPECT_EQ(detected[3], 1u);
  EXPECT_EQ(uncorrectable[1], 1u);
  EXPECT_EQ(uncorrectable[3], 1u);
}

TEST(Redundancy, TripleRedundancyCorrectsTheDivergedReplica) {
  // One of three sender replicas corrupts its message; the diverged receiver
  // replica must end up with the majority payload.
  std::vector<std::uint64_t> received(6, 0);
  std::vector<std::uint64_t> corrected(6, 0);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 3;
    RedundantContext red(ctx, cfg);
    std::uint64_t payload = 5555;
    if (red.rank() == 0) {
      if (red.replica() == 2) payload = 6666;  // Injected SDC at one replica.
      EXPECT_EQ(red.send(1, 0, &payload, sizeof payload), Err::kSuccess);
    } else {
      std::uint64_t in = 0;
      EXPECT_EQ(red.recv(0, 0, &in, sizeof in), Err::kSuccess);
      received[ctx.rank()] = in;
      corrected[ctx.rank()] = red.stats().corrected;
    }
    red.finalize();
  };
  SimResult r = run_app(tiny_config(6), app);  // 2 app ranks x 3.
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // All receiving replicas (world ranks 1, 3, 5) hold the majority value.
  EXPECT_EQ(received[1], 5555u);
  EXPECT_EQ(received[3], 5555u);
  EXPECT_EQ(received[5], 5555u);
  // Exactly the replica that got the corrupt copy was corrected.
  EXPECT_EQ(corrected[1] + corrected[3] + corrected[5], 1u);
  EXPECT_EQ(corrected[5], 1u);
}

TEST(Redundancy, IsolationModeLetsCorruptionPropagate) {
  // redMPI as a fault-injection observation tool: correction and detection
  // off, replicas isolated; a corrupted replica plane diverges while the
  // clean plane computes the truth — comparing the planes afterwards tracks
  // propagation (paper §II-C).
  std::vector<double> plane_result(6, 0);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    cfg.detect = false;
    RedundantContext red(ctx, cfg);
    double x = red.rank() + 1.0;
    if (red.replica() == 1 && red.rank() == 0) x += 1000.0;  // Injected SDC.
    double sum = 0;
    EXPECT_EQ(red.allreduce(vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &x, &sum, 1),
              Err::kSuccess);
    plane_result[ctx.rank()] = sum;
    red.finalize();
  };
  SimResult r = run_app(tiny_config(6), app);  // 3 app ranks x 2.
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Clean plane (world 0..2): 1+2+3 = 6. Corrupted plane (world 3..5): 1006.
  for (int w : {0, 1, 2}) EXPECT_DOUBLE_EQ(plane_result[w], 6.0);
  for (int w : {3, 4, 5}) EXPECT_DOUBLE_EQ(plane_result[w], 1006.0);
}

TEST(Redundancy, AllreduceComparisonDetectsSingleReplicaCorruption) {
  std::vector<std::uint64_t> divergences(6, 0);
  std::vector<double> results(6, 0);
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 3;
    RedundantContext red(ctx, cfg);
    double x = 1.0;
    if (ctx.rank() == 4) x = 1.0000001;  // Replica 2 of app rank 0 diverges.
    double sum = 0;
    EXPECT_EQ(red.allreduce(vmpi::ReduceOp::kSum, vmpi::Dtype::kF64, &x, &sum, 1),
              Err::kSuccess);
    divergences[ctx.rank()] = red.stats().divergences;
    results[ctx.rank()] = sum;
    red.finalize();
  };
  SimResult r = run_app(tiny_config(6), app);  // 2 app ranks x 3.
  ASSERT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Every group saw the divergence (the corrupt value spread through the
  // corrupted plane's allreduce), and correction restored the majority.
  for (int w = 0; w < 6; ++w) {
    EXPECT_EQ(divergences[w], 1u) << "world rank " << w;
    EXPECT_DOUBLE_EQ(results[w], 2.0) << "world rank " << w;
  }
}

TEST(Redundancy, StatsCountMessages) {
  auto app = [&](Context& ctx) {
    RedundancyConfig cfg;
    cfg.replication = 2;
    RedundantContext red(ctx, cfg);
    std::uint64_t v = 1;
    for (int i = 0; i < 5; ++i) {
      if (red.rank() == 0) {
        EXPECT_EQ(red.send(1, i, &v, sizeof v), Err::kSuccess);
      } else {
        EXPECT_EQ(red.recv(0, i, &v, sizeof v), Err::kSuccess);
        EXPECT_EQ(red.stats().messages, static_cast<std::uint64_t>(i + 1));
      }
    }
    red.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(4), app).outcome, SimResult::Outcome::kCompleted);
}

}  // namespace
}  // namespace exasim
