// ckpt: checkpoint store state machine (complete/incomplete/corrupted),
// scrub, and the failure-during-write corruption path (paper §V-B/§V-D).

#include <gtest/gtest.h>

#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using ckpt::CheckpointStore;
using test::run_app;
using test::tiny_config;
using vmpi::Context;

test::QuietLogs quiet;

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out(std::strlen(s));
  std::memcpy(out.data(), s, out.size());
  return out;
}

TEST(CheckpointStore, CompleteSetLifecycle) {
  CheckpointStore store(2);
  for (int r = 0; r < 2; ++r) {
    store.begin(1, r);
    store.append(1, r, bytes_of("data"));
    store.finalize(1, r);
  }
  EXPECT_TRUE(store.set_complete(1));
  EXPECT_EQ(store.latest_complete(), 1u);
  EXPECT_EQ(store.read(1, 0), bytes_of("data"));
  EXPECT_EQ(store.file_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 8u);
}

TEST(CheckpointStore, MissingFileMakesSetIncomplete) {
  CheckpointStore store(3);
  for (int r = 0; r < 2; ++r) {  // Rank 2 never wrote.
    store.begin(5, r);
    store.finalize(5, r);
  }
  EXPECT_FALSE(store.set_complete(5));
  EXPECT_FALSE(store.latest_complete().has_value());
}

TEST(CheckpointStore, UnfinalizedFileIsCorrupted) {
  // "Checkpoint file that exists, but misses some information" (§V-B).
  CheckpointStore store(1);
  store.begin(2, 0);
  store.append(2, 0, bytes_of("partial"));
  EXPECT_TRUE(store.file_exists(2, 0));
  EXPECT_FALSE(store.file_finalized(2, 0));
  EXPECT_FALSE(store.set_complete(2));
}

TEST(CheckpointStore, LatestCompleteSkipsNewerBrokenSets) {
  CheckpointStore store(1);
  store.begin(1, 0);
  store.finalize(1, 0);
  store.begin(2, 0);  // Newer but corrupted.
  EXPECT_EQ(store.latest_complete(), 1u);
}

TEST(CheckpointStore, ScrubRemovesOnlyBrokenSets) {
  // The paper's pre-restart shell script.
  CheckpointStore store(2);
  store.begin(1, 0);
  store.finalize(1, 0);
  store.begin(1, 1);
  store.finalize(1, 1);
  store.begin(2, 0);  // Incomplete: rank 1 missing, rank 0 unfinalized.
  EXPECT_EQ(store.scrub(), 1);
  EXPECT_TRUE(store.set_complete(1));
  EXPECT_FALSE(store.file_exists(2, 0));
  EXPECT_EQ(store.scrub(), 0);
}

TEST(CheckpointStore, RemoveFileAndVersion) {
  CheckpointStore store(2);
  store.begin(1, 0);
  store.finalize(1, 0);
  store.begin(1, 1);
  store.finalize(1, 1);
  store.remove_file(1, 0);
  EXPECT_FALSE(store.file_exists(1, 0));
  EXPECT_TRUE(store.file_exists(1, 1));
  store.remove_version(1);
  EXPECT_TRUE(store.versions().empty());
}

TEST(CheckpointStore, BeginOverwritesPreviousAttempt) {
  CheckpointStore store(1);
  store.begin(1, 0);
  store.append(1, 0, bytes_of("old"));
  store.begin(1, 0);  // Restart of the same version.
  store.append(1, 0, bytes_of("new"));
  store.finalize(1, 0);
  EXPECT_EQ(store.read(1, 0), bytes_of("new"));
}

TEST(CheckpointStore, ApiMisuseThrows) {
  CheckpointStore store(1);
  EXPECT_THROW(store.append(1, 0, bytes_of("x")), std::logic_error);
  EXPECT_THROW(store.finalize(1, 0), std::logic_error);
  EXPECT_THROW(store.begin(1, 5), std::invalid_argument);
  EXPECT_THROW(CheckpointStore(0), std::invalid_argument);
}

TEST(CheckpointWriter, ChargesPfsTimeBeforeFinalize) {
  CheckpointStore store(1);
  PfsParams pp;
  pp.per_client_bandwidth_bytes_per_sec = 1e6;  // 1 MB/s.
  PfsModel pfs(pp);
  SimTime before = 0, after = 0;
  auto app = [&](Context& ctx) {
    auto payload = bytes_of("0123456789");
    before = ctx.now();
    ckpt::write_rank_checkpoint(ctx, store, 1, payload, pfs, 1);
    after = ctx.now();
    ctx.finalize();
  };
  run_app(tiny_config(1), app);
  EXPECT_EQ(after - before, sim_us(10));  // 10 B at 1 MB/s.
  EXPECT_TRUE(store.set_complete(1));
}

TEST(CheckpointWriter, LogicalBytesOverrideChargesFullSize) {
  CheckpointStore store(1);
  PfsParams pp;
  pp.per_client_bandwidth_bytes_per_sec = 1e6;
  PfsModel pfs(pp);
  SimTime delta = 0;
  auto app = [&](Context& ctx) {
    auto payload = bytes_of("hdr");  // 3 bytes stored...
    const SimTime t0 = ctx.now();
    ckpt::write_rank_checkpoint(ctx, store, 1, payload, pfs, 1, /*logical_bytes=*/1'000'000);
    delta = ctx.now() - t0;  // ...but one logical second charged.
    ctx.finalize();
  };
  run_app(tiny_config(1), app);
  EXPECT_EQ(delta, sim_sec(1));
  EXPECT_EQ(store.read(1, 0).size(), 3u);
}

TEST(CheckpointWriter, FailureDuringWriteLeavesCorruptedFile) {
  // The §V-D failure mode: a process failure during the checkpoint phase
  // leaves a file that exists but was never finalized.
  CheckpointStore store(2);
  PfsParams pp;
  pp.per_client_bandwidth_bytes_per_sec = 1e3;  // Slow: 1 KB/s.
  PfsModel pfs(pp);
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{0, sim_ms(500)}};  // Mid-write (write takes 1 s).
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<std::byte> payload(1000);
      ckpt::write_rank_checkpoint(ctx, store, 7, payload, pfs, 1);
    }
    ctx.finalize();
  };
  auto r = run_app(cfg, app);
  EXPECT_EQ(r.failed_count, 1);
  EXPECT_TRUE(store.file_exists(7, 0));        // Created...
  EXPECT_FALSE(store.file_finalized(7, 0));    // ...but corrupted.
  EXPECT_FALSE(store.set_complete(7));
  EXPECT_EQ(store.scrub(), 1);                 // The shell script removes it.
}

TEST(CheckpointReader, ReadsLatestAndChargesTime) {
  CheckpointStore store(1);
  store.begin(3, 0);
  store.append(3, 0, bytes_of("abcdefghij"));
  store.finalize(3, 0);
  PfsParams pp;
  pp.per_client_bandwidth_bytes_per_sec = 1e6;
  PfsModel pfs(pp);
  std::vector<std::byte> got;
  SimTime delta = 0;
  std::uint64_t version = 0;
  auto app = [&](Context& ctx) {
    const SimTime t0 = ctx.now();
    auto data = ckpt::read_latest_checkpoint(ctx, store, 0, pfs, 1, &version);
    delta = ctx.now() - t0;
    ASSERT_TRUE(data.has_value());
    got = *data;
    ctx.finalize();
  };
  run_app(tiny_config(1), app);
  EXPECT_EQ(got, bytes_of("abcdefghij"));
  EXPECT_EQ(version, 3u);
  EXPECT_EQ(delta, sim_us(10));
}

TEST(CheckpointReader, ColdStartReturnsNothing) {
  CheckpointStore store(1);
  PfsModel pfs{PfsParams{}};
  bool empty = false;
  auto app = [&](Context& ctx) {
    empty = !ckpt::read_latest_checkpoint(ctx, store, 0, pfs, 1).has_value();
    ctx.finalize();
  };
  run_app(tiny_config(1), app);
  EXPECT_TRUE(empty);
}

}  // namespace
}  // namespace exasim
