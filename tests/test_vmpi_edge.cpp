// Edge cases of the simulated MPI layer: zero-byte messages, double
// wildcards, handle reuse, nested communicator construction, capacity-zero
// receives, and invalid handles.

#include <gtest/gtest.h>

#include <vector>

#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;
using vmpi::MsgStatus;

test::QuietLogs quiet;

TEST(Edge, ZeroByteMessageMatchesAndReportsZeroLength) {
  MsgStatus st;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_EQ(ctx.send(1, 3, nullptr, 0), Err::kSuccess);
    } else {
      EXPECT_EQ(ctx.recv(0, 3, nullptr, 0, &st), Err::kSuccess);
    }
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(2), app).outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 3);
}

TEST(Edge, DoubleWildcardReceivesInArrivalOrder) {
  std::vector<int> tags;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 0;
      ctx.send(2, 11, &v, sizeof v);
    } else if (ctx.rank() == 1) {
      ctx.compute(5e3);  // Arrives second.
      int v = 1;
      ctx.send(2, 22, &v, sizeof v);
    } else {
      for (int i = 0; i < 2; ++i) {
        int v = -1;
        MsgStatus st;
        EXPECT_EQ(ctx.recv(vmpi::kAnySource, vmpi::kAnyTag, &v, sizeof v, &st), Err::kSuccess);
        tags.push_back(st.tag);
      }
    }
    ctx.finalize();
  };
  run_app(tiny_config(3), app);
  EXPECT_EQ(tags, (std::vector<int>{11, 22}));
}

TEST(Edge, DoubleWaitOnSameHandleIsBenign) {
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    if (ctx.rank() == 0) {
      int v = 9;
      auto h = ctx.isend(w, 1, 0, &v, sizeof v);
      EXPECT_EQ(ctx.wait(w, h), Err::kSuccess);
      // Second wait on a released handle: empty success, no crash.
      EXPECT_EQ(ctx.wait(w, h), Err::kSuccess);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(2), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Edge, TestOnUnknownHandleReportsInvalidArg) {
  auto app = [&](Context& ctx) {
    vmpi::RequestHandle bogus{999999};
    Err e = Err::kSuccess;
    MsgStatus st;
    EXPECT_TRUE(ctx.test(bogus, &st, &e));
    EXPECT_EQ(e, Err::kInvalidArg);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(1), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Edge, SplitOfSplitNestsCorrectly) {
  // 8 ranks -> parity split (4 each) -> half split (2 each): communication
  // within the innermost communicator stays isolated.
  std::vector<int> inner_sum(8, -1);
  auto app = [&](Context& ctx) {
    vmpi::Comm* level1 = ctx.comm_split(ctx.world(), ctx.rank() % 2, ctx.rank());
    ASSERT_NE(level1, nullptr);
    vmpi::Comm* level2 = ctx.comm_split(*level1, level1->my_rank / 2, level1->my_rank);
    ASSERT_NE(level2, nullptr);
    EXPECT_EQ(level2->size(), 2);
    std::int64_t mine = ctx.rank(), out = 0;
    EXPECT_EQ(ctx.allreduce(*level2, vmpi::ReduceOp::kSum, vmpi::Dtype::kI64, &mine, &out, 1),
              Err::kSuccess);
    inner_sum[ctx.rank()] = static_cast<int>(out);
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(8), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Parity groups: evens {0,2,4,6} -> pairs {0,2} and {4,6}; odds likewise.
  EXPECT_EQ(inner_sum[0], 2);
  EXPECT_EQ(inner_sum[2], 2);
  EXPECT_EQ(inner_sum[4], 10);
  EXPECT_EQ(inner_sum[6], 10);
  EXPECT_EQ(inner_sum[1], 4);
  EXPECT_EQ(inner_sum[3], 4);
  EXPECT_EQ(inner_sum[5], 12);
  EXPECT_EQ(inner_sum[7], 12);
}

TEST(Edge, DupOfSplitPreservesMembership) {
  auto app = [&](Context& ctx) {
    vmpi::Comm* odd_even = ctx.comm_split(ctx.world(), ctx.rank() % 2, ctx.rank());
    ASSERT_NE(odd_even, nullptr);
    vmpi::Comm* dup = ctx.comm_dup(*odd_even);
    ASSERT_NE(dup, nullptr);
    EXPECT_EQ(dup->size(), odd_even->size());
    EXPECT_EQ(dup->my_rank, odd_even->my_rank);
    for (int r = 0; r < dup->size(); ++r) {
      EXPECT_EQ(dup->world_of(r), odd_even->world_of(r));
    }
    EXPECT_NE(dup->id, odd_even->id);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(6), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Edge, CapacityZeroReceiveOfNonEmptyMessageTruncates) {
  Err got = Err::kSuccess;
  auto app = [&](Context& ctx) {
    ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
    if (ctx.rank() == 0) {
      std::uint64_t v = 5;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      got = ctx.recv(0, 0, nullptr, 0);
    }
    ctx.finalize();
  };
  run_app(tiny_config(2), app);
  EXPECT_EQ(got, Err::kTruncate);
}

TEST(Edge, RendezvousToSelfCompletes) {
  auto cfg = tiny_config(1);
  cfg.net.eager_threshold = 16;  // Force rendezvous.
  bool ok = false;
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    std::vector<std::uint8_t> out(256), in(256);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<std::uint8_t>(i);
    auto r = ctx.irecv(w, 0, 1, in.data(), in.size());
    auto s = ctx.isend(w, 0, 1, out.data(), out.size());
    EXPECT_EQ(ctx.waitall(w, {r, s}, nullptr), Err::kSuccess);
    ok = in == out;
    ctx.finalize();
  };
  EXPECT_EQ(run_app(cfg, app).outcome, SimResult::Outcome::kCompleted);
  EXPECT_TRUE(ok);
}

TEST(Edge, CommAccessorsValidateMembership) {
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    EXPECT_EQ(w.rank_of_world(ctx.rank()), ctx.rank());
    EXPECT_EQ(w.rank_of_world(-1), -1);
    EXPECT_EQ(w.rank_of_world(ctx.size()), -1);
    EXPECT_EQ(w.world_of(0), 0);
    auto members = w.members_snapshot();
    EXPECT_EQ(static_cast<int>(members.size()), ctx.size());
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(4), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Edge, InvalidPostArgumentsThrow) {
  auto app = [&](Context& ctx) {
    int v = 0;
    EXPECT_THROW(ctx.send(ctx.world(), 99, 0, &v, sizeof v), std::invalid_argument);
    EXPECT_THROW(ctx.send(ctx.world(), 0, -5, &v, sizeof v), std::invalid_argument);
    EXPECT_THROW(ctx.recv(ctx.world(), -7, 0, &v, sizeof v), std::invalid_argument);
    EXPECT_THROW(ctx.bcast(ctx.world(), 99, &v, sizeof v), std::invalid_argument);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(2), app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Edge, FinalizeWithOutstandingRequestsIsClean) {
  // An isend that nobody receives and an irecv that never matches: the
  // process may still finalize; pending state dies with the simulation.
  auto app = [&](Context& ctx) {
    auto& w = ctx.world();
    int v = 1;
    (void)ctx.isend(w, 1 - ctx.rank(), 7, &v, sizeof v);
    int in = 0;
    (void)ctx.irecv(w, 1 - ctx.rank(), 8, &in, sizeof in);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(tiny_config(2), app).outcome, SimResult::Outcome::kCompleted);
}

}  // namespace
}  // namespace exasim
