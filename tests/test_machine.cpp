// core::Machine: configuration validation, outcomes, energy accounting,
// soft-error injection, reliability models, and measured-compute mode.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure.hpp"
#include "sim_test_util.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::Machine;
using core::ReliabilityModel;
using core::SimConfig;
using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;

test::QuietLogs quiet;

TEST(Machine, RejectsBadConfiguration) {
  auto noop = [](Context& ctx) { ctx.finalize(); };
  {
    SimConfig cfg = tiny_config(0);
    cfg.ranks = 0;
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
  {
    SimConfig cfg = tiny_config(2);
    cfg.failures = {FailureSpec{5, 0}};  // Rank out of range.
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
  {
    SimConfig cfg = tiny_config(4);
    cfg.topology = "star:2";  // Too small for 4 ranks.
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
}

TEST(Machine, InitialTimeShiftsAllClocks) {
  SimTime t0 = 0;
  SimConfig cfg = tiny_config(2);
  cfg.initial_time = sim_sec(100);  // Restart continuity (§IV-E).
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) t0 = ctx.now();
    ctx.compute(1e6);
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(t0, sim_sec(100));
  EXPECT_EQ(r.max_end_time, sim_sec(100) + sim_ms(1));
}

TEST(Machine, EnergyLedgerTracksComputeAndComm) {
  SimConfig cfg = tiny_config(2);
  cfg.power = PowerParams{};
  auto app = [](Context& ctx) {
    ctx.compute(1e9);  // 1 s busy.
    if (ctx.rank() == 0) {
      int v = 1;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  Machine machine(cfg, app);
  SimResult r = machine.run();
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // 2 ranks x 1 s busy at 100 W = 200 J plus a little comm energy.
  EXPECT_GT(r.total_energy_joules, 199.0);
  EXPECT_LT(r.total_energy_joules, 210.0);
  ASSERT_NE(machine.energy(), nullptr);
  EXPECT_EQ(machine.energy()->busy_time(0), sim_sec(1));
  EXPECT_GT(machine.energy()->traffic_bytes(0), 0u);
}

TEST(Machine, SoftErrorFlipsRegisteredMemory) {
  // Paper future-work item 1: bit flip into tracked application memory.
  double value_after = 0;
  SimConfig cfg = tiny_config(1);
  cfg.soft_errors = {core::SoftErrorSpec{0, sim_ms(1), /*bit_index=*/52}};
  auto app = [&](Context& ctx) {
    double state = 1.0;
    ctx.register_memory("state", &state, sizeof state);
    ctx.compute(2e6);  // 2 ms: the flip activates mid-way.
    value_after = state;
    ctx.unregister_memory("state");
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Bit 52 of the double 1.0 flips a mantissa bit -> not 1.0 anymore.
  EXPECT_NE(value_after, 1.0);
  EXPECT_TRUE(std::isfinite(value_after));
}

TEST(Machine, SoftErrorWithoutRegisteredMemoryIsDropped) {
  SimConfig cfg = tiny_config(1);
  cfg.soft_errors = {core::SoftErrorSpec{0, sim_us(1), 7}};
  auto app = [](Context& ctx) {
    ctx.compute(1e6);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(cfg, app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Machine, MeasuredComputeFoldsNativeTime) {
  SimConfig cfg = tiny_config(1);
  cfg.process.measured_compute = true;
  cfg.proc.slowdown = 1000.0;
  SimTime t_end = 0;
  auto app = [&](Context& ctx) {
    // Burn real CPU time.
    volatile double x = 1.0;
    for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 0.5;
    t_end = ctx.now();
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // A couple million FLOPs take >= 1 ms native -> >= 1 s at 1000x slowdown.
  EXPECT_GT(t_end, sim_ms(100));
}

TEST(Machine, PrebuiltNetworkOverridesTopologySpec) {
  NetworkParams system, node, chip;
  chip.link_latency = sim_ns(10);
  auto net = std::make_shared<HierarchicalNetwork>(make_topology("star:2"), system, node,
                                                   chip, 2, 1);
  SimConfig cfg = tiny_config(4);
  cfg.network = net;
  cfg.topology = "";  // Ignored.
  cfg.ranks_per_node = 2;
  SimTime end = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 1;
      ctx.send(1, 0, &v, sizeof v);  // On-chip: rank 0 -> 1.
    } else if (ctx.rank() == 1) {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
      end = ctx.now();
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // On-chip latency (10 ns link) keeps this well under a microsecond path.
  EXPECT_LT(end, sim_us(2));
}

TEST(Machine, EventsProcessedIsReported) {
  auto app = [](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 0;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_GE(r.events_processed, 3u);  // 2 starts + >=1 arrival.
}

TEST(ReliabilityModel, Uniform2MttfDrawsInRange) {
  ReliabilityModel m(core::FailureDistribution::kUniform2Mttf, sim_sec(6000), 32768, 42);
  for (int i = 0; i < 500; ++i) {
    FailureSpec f = m.draw();
    EXPECT_GE(f.rank, 0);
    EXPECT_LT(f.rank, 32768);
    EXPECT_LT(f.time, sim_sec(12000));
  }
}

TEST(ReliabilityModel, ExponentialMeanRoughlyMttf) {
  ReliabilityModel m(core::FailureDistribution::kExponential, sim_sec(100), 8, 7);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += to_seconds(m.draw().time);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(ReliabilityModel, WeibullMeanRoughlyMttf) {
  ReliabilityModel m(core::FailureDistribution::kWeibull, sim_sec(100), 8, 9);
  double sum = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) sum += to_seconds(m.draw().time);
  EXPECT_NEAR(sum / n, 100.0, 8.0);
}

TEST(ReliabilityModel, ExpectedFailuresFormulas) {
  ReliabilityModel uniform(core::FailureDistribution::kUniform2Mttf, sim_sec(100), 8, 1);
  EXPECT_DOUBLE_EQ(uniform.expected_failures(sim_sec(50)), 0.25);
  EXPECT_DOUBLE_EQ(uniform.expected_failures(sim_sec(500)), 1.0);  // Capped.
  ReliabilityModel expo(core::FailureDistribution::kExponential, sim_sec(100), 8, 1);
  EXPECT_DOUBLE_EQ(expo.expected_failures(sim_sec(50)), 0.5);
}

TEST(ReliabilityModel, RejectsBadArgs) {
  EXPECT_THROW(ReliabilityModel(core::FailureDistribution::kExponential, 0, 8, 1),
               std::invalid_argument);
  EXPECT_THROW(ReliabilityModel(core::FailureDistribution::kExponential, sim_sec(1), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace exasim
