// core::Machine: configuration validation, outcomes, energy accounting,
// soft-error injection, reliability models, and measured-compute mode.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/heat3d.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/failure.hpp"
#include "netmodel/routing.hpp"
#include "resilience/detector.hpp"
#include "sim_test_util.hpp"
#include "util/pool.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::Machine;
using core::ReliabilityModel;
using core::SimConfig;
using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;

test::QuietLogs quiet;

TEST(Machine, RejectsBadConfiguration) {
  auto noop = [](Context& ctx) { ctx.finalize(); };
  {
    SimConfig cfg = tiny_config(0);
    cfg.ranks = 0;
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
  {
    SimConfig cfg = tiny_config(2);
    cfg.failures = {FailureSpec{5, 0}};  // Rank out of range.
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
  {
    SimConfig cfg = tiny_config(4);
    cfg.topology = "star:2";  // Too small for 4 ranks.
    EXPECT_THROW(Machine(cfg, noop), std::invalid_argument);
  }
}

TEST(Machine, InitialTimeShiftsAllClocks) {
  SimTime t0 = 0;
  SimConfig cfg = tiny_config(2);
  cfg.initial_time = sim_sec(100);  // Restart continuity (§IV-E).
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) t0 = ctx.now();
    ctx.compute(1e6);
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(t0, sim_sec(100));
  EXPECT_EQ(r.max_end_time, sim_sec(100) + sim_ms(1));
}

TEST(Machine, EnergyLedgerTracksComputeAndComm) {
  SimConfig cfg = tiny_config(2);
  cfg.power = PowerParams{};
  auto app = [](Context& ctx) {
    ctx.compute(1e9);  // 1 s busy.
    if (ctx.rank() == 0) {
      int v = 1;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  Machine machine(cfg, app);
  SimResult r = machine.run();
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // 2 ranks x 1 s busy at 100 W = 200 J plus a little comm energy.
  EXPECT_GT(r.total_energy_joules, 199.0);
  EXPECT_LT(r.total_energy_joules, 210.0);
  ASSERT_NE(machine.energy(), nullptr);
  EXPECT_EQ(machine.energy()->busy_time(0), sim_sec(1));
  EXPECT_GT(machine.energy()->traffic_bytes(0), 0u);
}

TEST(Machine, SoftErrorFlipsRegisteredMemory) {
  // Paper future-work item 1: bit flip into tracked application memory.
  double value_after = 0;
  SimConfig cfg = tiny_config(1);
  cfg.soft_errors = {core::SoftErrorSpec{0, sim_ms(1), /*bit_index=*/52}};
  auto app = [&](Context& ctx) {
    double state = 1.0;
    ctx.register_memory("state", &state, sizeof state);
    ctx.compute(2e6);  // 2 ms: the flip activates mid-way.
    value_after = state;
    ctx.unregister_memory("state");
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // Bit 52 of the double 1.0 flips a mantissa bit -> not 1.0 anymore.
  EXPECT_NE(value_after, 1.0);
  EXPECT_TRUE(std::isfinite(value_after));
}

TEST(Machine, SoftErrorWithoutRegisteredMemoryIsDropped) {
  SimConfig cfg = tiny_config(1);
  cfg.soft_errors = {core::SoftErrorSpec{0, sim_us(1), 7}};
  auto app = [](Context& ctx) {
    ctx.compute(1e6);
    ctx.finalize();
  };
  EXPECT_EQ(run_app(cfg, app).outcome, SimResult::Outcome::kCompleted);
}

TEST(Machine, MeasuredComputeFoldsNativeTime) {
  SimConfig cfg = tiny_config(1);
  cfg.process.measured_compute = true;
  cfg.proc.slowdown = 1000.0;
  SimTime t_end = 0;
  auto app = [&](Context& ctx) {
    // Burn real CPU time.
    volatile double x = 1.0;
    for (int i = 0; i < 2'000'000; ++i) x = x * 1.0000001 + 0.5;
    t_end = ctx.now();
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // A couple million FLOPs take >= 1 ms native -> >= 1 s at 1000x slowdown.
  EXPECT_GT(t_end, sim_ms(100));
}

TEST(Machine, PrebuiltNetworkOverridesTopologySpec) {
  NetworkParams system, node, chip;
  chip.link_latency = sim_ns(10);
  auto net = std::make_shared<HierarchicalNetwork>(make_topology("star:2"), system, node,
                                                   chip, 2, 1);
  SimConfig cfg = tiny_config(4);
  cfg.network = net;
  cfg.topology = "";  // Ignored.
  cfg.ranks_per_node = 2;
  SimTime end = 0;
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 1;
      ctx.send(1, 0, &v, sizeof v);  // On-chip: rank 0 -> 1.
    } else if (ctx.rank() == 1) {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
      end = ctx.now();
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  // On-chip latency (10 ns link) keeps this well under a microsecond path.
  EXPECT_LT(end, sim_us(2));
}

TEST(Machine, EventsProcessedIsReported) {
  auto app = [](Context& ctx) {
    if (ctx.rank() == 0) {
      int v = 0;
      ctx.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_GE(r.events_processed, 3u);  // 2 starts + >=1 arrival.
}

TEST(Machine, ShardedRunMatchesSequentialUnderFailure) {
  // A failing heat3d launch must produce the same SimResult on one engine
  // worker and on four — the sharded engine delivers the identical event
  // schedule, so every simulated quantity matches. (events_processed and
  // causality_violations are excluded: a stop request takes effect after
  // the current *event* sequentially but after the current *window* in
  // parallel, so the post-abort drain length may differ.)
  apps::HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = 40;
  p.halo_interval = 10;
  p.checkpoint_interval = 10;
  auto run_with = [&](int workers) {
    core::SimConfig cfg = tiny_config(8);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.failures = {FailureSpec{3, sim_us(50)}};
    ckpt::CheckpointStore store(8);
    return run_app(cfg, apps::make_heat3d(p), &store);
  };
  const SimResult r1 = run_with(1);
  const SimResult r4 = run_with(4);
  EXPECT_EQ(r1.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(r4.outcome, r1.outcome);
  EXPECT_EQ(r4.max_end_time, r1.max_end_time);
  EXPECT_EQ(r4.min_end_time, r1.min_end_time);
  EXPECT_DOUBLE_EQ(r4.avg_end_time_sec, r1.avg_end_time_sec);
  ASSERT_EQ(r4.activated_failures.size(), r1.activated_failures.size());
  for (std::size_t i = 0; i < r1.activated_failures.size(); ++i) {
    EXPECT_EQ(r4.activated_failures[i], r1.activated_failures[i]);
  }
  EXPECT_EQ(r4.abort_time, r1.abort_time);
  EXPECT_EQ(r4.abort_origin, r1.abort_origin);
  EXPECT_EQ(r4.finished_count, r1.finished_count);
  EXPECT_EQ(r4.failed_count, r1.failed_count);
  EXPECT_EQ(r4.aborted_count, r1.aborted_count);
  EXPECT_EQ(r4.deadlocked_ranks, r1.deadlocked_ranks);
  EXPECT_EQ(r4.total_busy_time, r1.total_busy_time);
  EXPECT_EQ(r4.total_comm_time, r1.total_comm_time);
  EXPECT_DOUBLE_EQ(r4.compute_fraction, r1.compute_fraction);
}

TEST(Machine, ResultJsonIsSchedulerAndWorkerInvariant) {
  // ISSUE 6 acceptance: the emitted --result-json must be byte-identical
  // across --sim-workers 1/2/4 for both scheduling policies and with
  // speculation on. A completing (failure-free) run is used so
  // events_processed is exact for every worker count; the wall-clock tail
  // (wall_seconds / events_per_sec) is stripped exactly as
  // scripts/bench_smoke.sh does. Across policies the only legal difference
  // is the "scheduler" config-echo field itself.
  apps::HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = 20;
  p.halo_interval = 5;
  p.checkpoint_interval = 10;
  auto json_with = [&](int workers, const std::string& scheduler, int speculate) {
    core::SimConfig cfg = tiny_config(8);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.scheduler = scheduler;
    cfg.speculate = speculate;
    ckpt::CheckpointStore store(8);
    std::string json = core::sim_result_json(run_app(cfg, apps::make_heat3d(p), &store));
    const std::size_t tail = json.find(",\"wall_seconds\"");
    EXPECT_NE(tail, std::string::npos);
    return json.substr(0, tail);
  };
  const std::string ref = json_with(1, "fixed", 0);
  EXPECT_NE(ref.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(ref.find("\"scheduler\":\"fixed\""), std::string::npos);
  for (int workers : {1, 2, 4}) {
    for (const char* scheduler : {"fixed", "adaptive"}) {
      for (int speculate : {0, 16}) {
        SCOPED_TRACE(std::string("workers=") + std::to_string(workers) +
                     " scheduler=" + scheduler + " speculate=" + std::to_string(speculate));
        std::string json = json_with(workers, scheduler, speculate);
        // Normalize the config echo so only real result divergence remains.
        const std::string adaptive_echo = "\"scheduler\":\"adaptive\"";
        const std::size_t echo = json.find(adaptive_echo);
        if (echo != std::string::npos) {
          json.replace(echo, adaptive_echo.size(), "\"scheduler\":\"fixed\"");
        }
        EXPECT_EQ(json, ref);
      }
    }
  }
}

TEST(Machine, StagedCheckpointResultJsonIsWorkerInvariant) {
  // ISSUE 9 acceptance: a priced storage hierarchy with staged (SCR-style)
  // checkpointing must stay byte-identical across --sim-workers 1/2/4 —
  // tier costs and background drains are computed from sim-time, not worker
  // interleaving. Off-default runs echo storage/ckpt_mode into the json;
  // the default config must NOT grow new fields (the golden stays pinned).
  apps::HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = 20;
  p.halo_interval = 5;
  p.checkpoint_interval = 10;
  auto json_with = [&](int workers, const std::string& storage,
                       const std::string& ckpt_mode) {
    core::SimConfig cfg = tiny_config(8);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.storage = storage;
    cfg.ckpt_mode = ckpt_mode;
    ckpt::CheckpointStore store(8);
    std::string json = core::sim_result_json(run_app(cfg, apps::make_heat3d(p), &store));
    const std::size_t tail = json.find(",\"wall_seconds\"");
    EXPECT_NE(tail, std::string::npos);
    return json.substr(0, tail);
  };
  const std::string ref = json_with(1, "hpc", "staged");
  EXPECT_NE(ref.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(ref.find("\"storage\":\"hpc\""), std::string::npos);
  EXPECT_NE(ref.find("\"ckpt_mode\":\"staged\""), std::string::npos);
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(json_with(workers, "hpc", "staged"), ref);
  }
  // Default config: no new fields, same simulated results as ever.
  const std::string plain = json_with(1, "", "");
  EXPECT_EQ(plain.find("\"storage\""), std::string::npos);
  EXPECT_EQ(plain.find("\"ckpt_mode\""), std::string::npos);
}

TEST(Machine, LinkLevelNetworkIsWorkerInvariant) {
  // ISSUE 7 acceptance: the link-level path — adaptive routing over
  // equal-cost route variants, a per-link failure-timeout distribution, and
  // the timeout detector reading per-pair timeouts off canonical routes —
  // must produce identical simulated results across --sim-workers 1/2/4.
  // The run aborts on a failure, so the comparison is field-wise (parallel
  // runs may drain differently after the abort); every simulated quantity,
  // including the detection-latency statistics the link-timeout table
  // feeds, must match the sequential reference exactly.
  apps::HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = 40;
  p.halo_interval = 10;
  p.checkpoint_interval = 10;
  auto run_with = [&](int workers, const char* link_timeouts) {
    core::SimConfig cfg = tiny_config(8);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.routing = "adaptive:spread=8";
    cfg.net.failure_timeout = sim_ms(10);
    cfg.net.link_timeouts = *parse_link_timeout_spec(link_timeouts);
    cfg.detector = *resilience::parse_detector_spec("timeout");
    cfg.failures = {FailureSpec{3, sim_us(50)}};
    ckpt::CheckpointStore store(8);
    return run_app(cfg, apps::make_heat3d(p), &store);
  };
  const SimResult ref = run_with(1, "uniform:50ms..200ms,seed=7");
  EXPECT_EQ(ref.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(ref.routing, "adaptive:spread=8");
  EXPECT_EQ(ref.link_timeouts, "uniform:50ms..200ms,seed=7");
  // The per-link draws land in [50 ms, 200 ms], all above the 10 ms base:
  // detection is visibly slower than under the uniform timeout.
  EXPECT_GT(ref.failure_notices, 0u);
  EXPECT_GE(ref.max_detection_latency, sim_ms(50));
  EXPECT_LE(ref.max_detection_latency, sim_ms(200));
  const SimResult uniform = run_with(1, "uniform");
  EXPECT_EQ(uniform.max_detection_latency, sim_ms(10));
  // The config echo stays out of the pinned --result-json schema.
  const std::string json = core::sim_result_json(ref);
  EXPECT_EQ(json.find("\"routing\""), std::string::npos);
  EXPECT_EQ(json.find("\"link_timeouts\""), std::string::npos);
  for (int workers : {2, 4}) {
    const SimResult r = run_with(workers, "uniform:50ms..200ms,seed=7");
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(r.outcome, ref.outcome);
    EXPECT_EQ(r.max_end_time, ref.max_end_time);
    EXPECT_EQ(r.min_end_time, ref.min_end_time);
    EXPECT_DOUBLE_EQ(r.avg_end_time_sec, ref.avg_end_time_sec);
    ASSERT_EQ(r.activated_failures.size(), ref.activated_failures.size());
    for (std::size_t i = 0; i < ref.activated_failures.size(); ++i) {
      EXPECT_EQ(r.activated_failures[i], ref.activated_failures[i]);
    }
    EXPECT_EQ(r.abort_time, ref.abort_time);
    EXPECT_EQ(r.abort_origin, ref.abort_origin);
    EXPECT_EQ(r.finished_count, ref.finished_count);
    EXPECT_EQ(r.failed_count, ref.failed_count);
    EXPECT_EQ(r.aborted_count, ref.aborted_count);
    EXPECT_EQ(r.failure_notices, ref.failure_notices);
    EXPECT_EQ(r.max_detection_latency, ref.max_detection_latency);
    EXPECT_DOUBLE_EQ(r.mean_detection_latency_sec, ref.mean_detection_latency_sec);
    EXPECT_EQ(r.total_busy_time, ref.total_busy_time);
    EXPECT_EQ(r.total_comm_time, ref.total_comm_time);
    EXPECT_DOUBLE_EQ(r.compute_fraction, ref.compute_fraction);
  }
}

TEST(Machine, PoolingDoesNotChangeSimulatedResults) {
  // The Table II invariance contract of DESIGN.md §9: the memory pools are
  // invisible to the simulation. The same failing heat3d launch must produce
  // identical simulated quantities for pooling {on, off} x workers {1,2,4};
  // every combination is compared against the pooled sequential reference.
  apps::HeatParams p;
  p.nx = p.ny = p.nz = 8;
  p.px = p.py = p.pz = 2;
  p.total_iterations = 40;
  p.halo_interval = 10;
  p.checkpoint_interval = 10;
  auto run_with = [&](int workers, bool pooled) {
    const bool before = util::pool_enabled();
    util::set_pool_enabled(pooled);
    core::SimConfig cfg = tiny_config(8);
    cfg.sim_workers = workers;
    cfg.ranks_per_node = 2;
    cfg.failures = {FailureSpec{3, sim_us(50)}};
    ckpt::CheckpointStore store(8);
    SimResult r = run_app(cfg, apps::make_heat3d(p), &store);
    util::set_pool_enabled(before);
    return r;
  };
  const SimResult ref = run_with(1, true);
  EXPECT_EQ(ref.outcome, SimResult::Outcome::kAborted);
  for (int workers : {1, 2, 4}) {
    for (bool pooled : {true, false}) {
      if (workers == 1 && pooled) continue;
      const SimResult r = run_with(workers, pooled);
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " pooled=" + std::to_string(pooled));
      EXPECT_EQ(r.outcome, ref.outcome);
      EXPECT_EQ(r.max_end_time, ref.max_end_time);
      EXPECT_EQ(r.min_end_time, ref.min_end_time);
      EXPECT_DOUBLE_EQ(r.avg_end_time_sec, ref.avg_end_time_sec);
      ASSERT_EQ(r.activated_failures.size(), ref.activated_failures.size());
      for (std::size_t i = 0; i < ref.activated_failures.size(); ++i) {
        EXPECT_EQ(r.activated_failures[i], ref.activated_failures[i]);
      }
      EXPECT_EQ(r.abort_time, ref.abort_time);
      EXPECT_EQ(r.abort_origin, ref.abort_origin);
      EXPECT_EQ(r.finished_count, ref.finished_count);
      EXPECT_EQ(r.failed_count, ref.failed_count);
      EXPECT_EQ(r.aborted_count, ref.aborted_count);
      EXPECT_EQ(r.deadlocked_ranks, ref.deadlocked_ranks);
      EXPECT_EQ(r.total_busy_time, ref.total_busy_time);
      EXPECT_EQ(r.total_comm_time, ref.total_comm_time);
      EXPECT_DOUBLE_EQ(r.compute_fraction, ref.compute_fraction);
      // Sequential runs also process the identical event count; parallel
      // ones may drain differently after the abort (see the test above).
      if (workers == 1) EXPECT_EQ(r.events_processed, ref.events_processed);
    }
  }
}

TEST(ReliabilityModel, Uniform2MttfDrawsInRange) {
  ReliabilityModel m(core::FailureDistribution::kUniform2Mttf, sim_sec(6000), 32768, 42);
  for (int i = 0; i < 500; ++i) {
    FailureSpec f = m.draw();
    EXPECT_GE(f.rank, 0);
    EXPECT_LT(f.rank, 32768);
    EXPECT_LT(f.time, sim_sec(12000));
  }
}

TEST(ReliabilityModel, ExponentialMeanRoughlyMttf) {
  ReliabilityModel m(core::FailureDistribution::kExponential, sim_sec(100), 8, 7);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += to_seconds(m.draw().time);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(ReliabilityModel, WeibullMeanRoughlyMttf) {
  ReliabilityModel m(core::FailureDistribution::kWeibull, sim_sec(100), 8, 9);
  double sum = 0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) sum += to_seconds(m.draw().time);
  EXPECT_NEAR(sum / n, 100.0, 8.0);
}

TEST(ReliabilityModel, ExpectedFailuresFormulas) {
  ReliabilityModel uniform(core::FailureDistribution::kUniform2Mttf, sim_sec(100), 8, 1);
  EXPECT_DOUBLE_EQ(uniform.expected_failures(sim_sec(50)), 0.25);
  EXPECT_DOUBLE_EQ(uniform.expected_failures(sim_sec(500)), 1.0);  // Capped.
  ReliabilityModel expo(core::FailureDistribution::kExponential, sim_sec(100), 8, 1);
  EXPECT_DOUBLE_EQ(expo.expected_failures(sim_sec(50)), 0.5);
}

TEST(ReliabilityModel, RejectsBadArgs) {
  EXPECT_THROW(ReliabilityModel(core::FailureDistribution::kExponential, 0, 8, 1),
               std::invalid_argument);
  EXPECT_THROW(ReliabilityModel(core::FailureDistribution::kExponential, sim_sec(1), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace exasim
