// Paper-semantics tests: MPI process failure injection (§IV-B), timeout-based
// detection and notification (§IV-C), MPI abort propagation (§IV-D), and
// error handlers.

#include <gtest/gtest.h>

#include <vector>

#include "sim_test_util.hpp"
#include "util/parse.hpp"
#include "vmpi/context.hpp"

namespace exasim {
namespace {

using core::SimResult;
using test::run_app;
using test::tiny_config;
using vmpi::Context;
using vmpi::Err;

test::QuietLogs quiet;

TEST(FailureInjection, ScheduledFailureActivatesAtClockUpdate) {
  // Rank 1 computes in 10 x 100ms chunks; failure scheduled at 250ms must
  // activate at the *first clock update at/after* 250ms -> 300ms (§IV-B:
  // scheduled time is the earliest time of failure).
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ms(250)}};
  auto app = [](Context& ctx) {
    if (ctx.rank() == 1) {
      for (int i = 0; i < 10; ++i) ctx.compute(100e6);  // 100 ms each
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  ASSERT_EQ(r.activated_failures.size(), 1u);
  EXPECT_EQ(r.activated_failures[0].rank, 1);
  EXPECT_EQ(r.activated_failures[0].time, sim_ms(300));
  EXPECT_EQ(r.failed_count, 1);
}

TEST(FailureInjection, ActualTimeEqualsScheduledWhenBlocked) {
  // Rank 1 blocks immediately in a receive that never completes; the
  // activation event fails it exactly at the scheduled time.
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ms(50)}};
  auto app = [](Context& ctx) {
    if (ctx.rank() == 1) {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);  // Never sent.
    } else {
      ctx.compute(1e9);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  ASSERT_EQ(r.activated_failures.size(), 1u);
  EXPECT_EQ(r.activated_failures[0].time, sim_ms(50));
}

TEST(FailureInjection, FailNowFromApplication) {
  // The simulator-internal function is callable by the application (§IV-B).
  auto app = [](Context& ctx) {
    if (ctx.rank() == 1) {
      ctx.compute(5e6);
      ctx.fail_now();
    }
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  ASSERT_EQ(r.activated_failures.size(), 1u);
  EXPECT_EQ(r.activated_failures[0].rank, 1);
  EXPECT_EQ(r.activated_failures[0].time, sim_ms(5));
}

TEST(FailureInjection, ReturnFromMainWithoutFinalizeIsFailure) {
  // "...or returning from main() or calling exit() without having called
  // MPI_Finalize()" (§IV-B).
  auto app = [](Context& ctx) {
    if (ctx.rank() == 0) ctx.finalize();
    // Rank 1 returns without finalize.
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.failed_count, 1);
  ASSERT_EQ(r.activated_failures.size(), 1u);
  EXPECT_EQ(r.activated_failures[0].rank, 1);
}

TEST(FailureInjection, ScheduleStringParsesAndInjects) {
  auto specs = parse_failure_schedule("1@30ms,0@2s");
  ASSERT_TRUE(specs.has_value());
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].rank, 1);
  EXPECT_EQ((*specs)[0].time, sim_ms(30));

  auto cfg = tiny_config(2);
  cfg.failures = *specs;
  auto app = [](Context& ctx) {
    ctx.compute(10e9);  // 10 s: both failures activate.
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.failed_count, 2);
}

TEST(Detection, BlockedRecvOnFailedRankTimesOut) {
  // Rank 0 blocks receiving from rank 1; rank 1 fails at 10ms. Detection =
  // max(post, t_fail) + timeout (1ms in tiny_config) (§IV-C).
  Err got = Err::kSuccess;
  SimTime detect_time = 0;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ms(10)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      int v = 0;
      got = ctx.recv(1, 0, &v, sizeof v);
      detect_time = ctx.now();
    } else {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);  // Blocks forever -> dies at 10ms.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(detect_time, sim_ms(10) + sim_ms(1));
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);  // Handler = return.
}

TEST(Detection, RecvPostedAfterNoticeAlsoFails) {
  // "Any similar receive requests waited on after receiving the ...
  // notification fail based on the per-process list" (§IV-C).
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ms(1)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      ctx.compute(100e6);  // 100 ms: failure long past, notice received.
      int v = 0;
      got = ctx.recv(1, 0, &v, sizeof v);
      EXPECT_FALSE(ctx.failed_peers().empty());
    }
    // Rank 1 idles into its failure.
    if (ctx.rank() == 1) ctx.compute(1e9);
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
}

TEST(Detection, AnySourceReleasedViaSynchronizationMechanism) {
  // ANY_SOURCE receives cannot fail eagerly; they are released through the
  // conservative-sync deadlock detection once nothing can match (§IV-C).
  Err got = Err::kSuccess;
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(5)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      int v = 0;
      // First receive matches rank 1's message; second can only be satisfied
      // by rank 2, which dies.
      EXPECT_EQ(ctx.recv(vmpi::kAnySource, 0, &v, sizeof v), Err::kSuccess);
      got = ctx.recv(vmpi::kAnySource, 0, &v, sizeof v);
    } else if (ctx.rank() == 1) {
      int v = 1;
      ctx.send(0, 0, &v, sizeof v);
    } else {
      ctx.compute(1e9);  // Dies at 5ms mid-compute... activation at 1e9 ns.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
}

TEST(Detection, BlockedRendezvousSendToFailedRankTimesOut) {
  Err got = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_us(1)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kReturn);
      std::vector<std::byte> big(512 * 1024);  // Rendezvous: blocks on CTS.
      ctx.compute(1e6);                        // Let the failure happen first.
      got = ctx.send(1, 0, big.data(), big.size());
    } else {
      ctx.compute(1e9);
    }
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(got, Err::kProcFailed);
}

TEST(Detection, MessagesToFailedProcessAreDeleted) {
  // Eager sends to a dead process are dropped by the engine (§IV-B: "all
  // messages directed to this simulated MPI process are deleted").
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_ns(1)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.compute(1e6);
      int v = 3;
      // Eager send: completes locally (fire and forget).
      EXPECT_EQ(ctx.send(1, 0, &v, sizeof v), Err::kSuccess);
    } else {
      ctx.compute(1e9);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
  EXPECT_EQ(r.failed_count, 1);
  EXPECT_EQ(r.finished_count, 1);
}

TEST(Detection, InFlightMessageFromFailedProcessStillArrives) {
  // A message sent *before* the failure is already in the network and must
  // be delivered (only messages TO the dead process are deleted).
  int got = 0;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_us(10)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 1) {
      int v = 55;
      ctx.send(0, 0, &v, sizeof v);  // At t~0, well before 10us.
      ctx.compute(1e9);              // Dies mid-compute.
      ctx.finalize();
    } else {
      ctx.compute(50e3);  // 50 us: arrival (~2.5us) is in the unexpected queue.
      ctx.recv(1, 0, &got, sizeof got);
      ctx.finalize();
    }
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(got, 55);
  EXPECT_EQ(r.finished_count, 1);
}

TEST(Abort, FatalHandlerAbortsWholeApplication) {
  // Default MPI_ERRORS_ARE_FATAL: a detected failure triggers MPI_Abort and
  // every process terminates (§IV-D).
  auto cfg = tiny_config(4);
  cfg.failures = {FailureSpec{3, sim_ms(1)}};
  auto app = [](Context& ctx) {
    int v = 0;
    if (ctx.rank() == 0) {
      ctx.recv(3, 0, &v, sizeof v);  // Detects the failure -> abort.
    } else if (ctx.rank() != 3) {
      ctx.recv(0, 1, &v, sizeof v);  // Blocked forever -> released by abort.
    } else {
      ctx.recv(0, 2, &v, sizeof v);  // Blocked -> fails exactly at 1ms.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(r.abort_origin, 0);
  ASSERT_TRUE(r.abort_time.has_value());
  // Abort time = detection time = t_fail + timeout.
  EXPECT_EQ(*r.abort_time, sim_ms(1) + sim_ms(1));
  EXPECT_EQ(r.aborted_count, 3);
  EXPECT_EQ(r.failed_count, 1);
}

TEST(Abort, ProcessesAbortAtOrAfterAbortTime) {
  // A process whose clock is already past the abort time aborts at its own
  // clock; one blocked earlier aborts at the abort time (§IV-D).
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(1)}};
  auto app = [](Context& ctx) {
    int v = 0;
    if (ctx.rank() == 0) {
      ctx.recv(2, 0, &v, sizeof v);  // Detect at ~2ms -> abort.
    } else if (ctx.rank() == 1) {
      ctx.compute(100e6);  // Runs to 100 ms, well past the abort.
      ctx.recv(0, 1, &v, sizeof v);
    } else {
      ctx.recv(0, 2, &v, sizeof v);  // Blocked -> fails exactly at 1ms.
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  // Max end time is rank 1's clock (100 ms), not the abort time.
  EXPECT_EQ(r.max_end_time, sim_ms(100));
}

TEST(Abort, ExplicitAbortFromApplication) {
  auto app = [](Context& ctx) {
    if (ctx.rank() == 1) {
      ctx.compute(2e6);
      ctx.abort();
    }
    int v = 0;
    ctx.recv(1, 0, &v, sizeof v);  // Blocked; released by the abort.
    ctx.finalize();
  };
  SimResult r = run_app(tiny_config(2), app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  EXPECT_EQ(r.abort_origin, 1);
  EXPECT_EQ(*r.abort_time, sim_ms(2));
  EXPECT_EQ(r.failed_count, 0);
}

TEST(Abort, UserErrorHandlerRunsBeforeReturn) {
  int handler_calls = 0;
  Err seen = Err::kSuccess;
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, sim_us(1)}};
  auto app = [&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.set_error_handler(ctx.world(), vmpi::ErrorHandlerKind::kUser,
                            [&](Context&, vmpi::Comm&, Err e) {
                              ++handler_calls;
                              seen = e;
                            });
      ctx.compute(1e6);
      int v = 0;
      Err e = ctx.recv(1, 0, &v, sizeof v);
      EXPECT_EQ(e, Err::kProcFailed);
    } else {
      ctx.compute(1e9);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(seen, Err::kProcFailed);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kCompleted);
}

TEST(Abort, TimingStatisticsCoverAllProcesses) {
  auto cfg = tiny_config(4);
  cfg.failures = {FailureSpec{0, sim_ms(1)}};
  auto app = [](Context& ctx) {
    ctx.compute(static_cast<double>(ctx.rank() + 1) * 1e6);
    if (ctx.rank() != 0) {
      int v = 0;
      ctx.recv(0, 0, &v, sizeof v);
    } else {
      ctx.compute(1e9);
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.outcome, SimResult::Outcome::kAborted);
  EXPECT_GT(r.max_end_time, 0u);
  EXPECT_LE(r.min_end_time, r.max_end_time);
  EXPECT_GT(r.avg_end_time_sec, 0.0);
}

TEST(FailureInjection, FailureBeforeStartTerminatesImmediately) {
  auto cfg = tiny_config(2);
  cfg.failures = {FailureSpec{1, 0}};
  auto app = [](Context& ctx) {
    if (ctx.rank() == 1) {
      ADD_FAILURE() << "rank 1 must never run";
    }
    ctx.finalize();
  };
  SimResult r = run_app(cfg, app);
  EXPECT_EQ(r.failed_count, 1);
}

TEST(Detection, PerProcessFailedListsAreMaintained) {
  // Every surviving process learns rank+time of each failure (§IV-B).
  std::vector<std::size_t> list_sizes(3, 0);
  std::vector<SimTime> recorded_times(3, 0);
  auto cfg = tiny_config(3);
  cfg.failures = {FailureSpec{2, sim_ms(7)}};
  auto app = [&](Context& ctx) {
    int v = 0;
    if (ctx.rank() == 2) {
      ctx.recv(0, 99, &v, sizeof v);  // Blocked -> fails exactly at 7ms.
    } else if (ctx.rank() == 0) {
      // Block until rank 1's 50ms message: the 7ms notice arrives first.
      ctx.recv(1, 0, &v, sizeof v);
      list_sizes[0] = ctx.failed_peers().size();
      if (!ctx.failed_peers().empty()) {
        recorded_times[0] = ctx.failed_peers().begin()->second;
      }
      ctx.send(1, 1, &v, sizeof v);
    } else {
      ctx.compute(50e6);
      ctx.send(0, 0, &v, sizeof v);
      ctx.recv(0, 1, &v, sizeof v);  // Blocks past the notice.
      list_sizes[1] = ctx.failed_peers().size();
      if (!ctx.failed_peers().empty()) {
        recorded_times[1] = ctx.failed_peers().begin()->second;
      }
    }
    ctx.finalize();
  };
  run_app(cfg, app);
  EXPECT_EQ(list_sizes[0], 1u);
  EXPECT_EQ(list_sizes[1], 1u);
  EXPECT_EQ(recorded_times[0], sim_ms(7));
  EXPECT_EQ(recorded_times[1], sim_ms(7));
}

}  // namespace
}  // namespace exasim
